#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, and optionally
# the benchmark harness or a sanitizer pass.
# Usage: scripts/check.sh [--bench] [--asan]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

if [[ "${1:-}" == "--asan" ]]; then
  cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
fi

if [[ "${1:-}" == "--bench" ]]; then
  for b in build/bench/*; do
    [[ -f "$b" && -x "$b" ]] || continue
    echo "===== $b ====="
    "$b"
  done
fi
