#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, and optionally
# the benchmark harness and/or a sanitizer pass.
# Usage: scripts/check.sh [--bench] [--asan]   (flags combine, any order)
set -euo pipefail
cd "$(dirname "$0")/.."

run_bench=0
run_asan=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench=1 ;;
    --asan) run_asan=1 ;;
    *)
      echo "unknown argument: $arg" >&2
      echo "usage: scripts/check.sh [--bench] [--asan]" >&2
      exit 2
      ;;
  esac
done

# Pick a generator only for fresh build trees; an existing cache keeps its
# generator (passing -G against a differently-configured cache is an error).
generator_args() {
  local build_dir="$1"
  if [[ ! -f "$build_dir/CMakeCache.txt" ]] && command -v ninja >/dev/null; then
    echo "-G Ninja"
  fi
}

# shellcheck disable=SC2046
cmake -B build $(generator_args build)
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure

if [[ "$run_asan" == 1 ]]; then
  # shellcheck disable=SC2046
  cmake -B build-asan $(generator_args build-asan) -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
  cmake --build build-asan -j "$(nproc)"
  ctest --test-dir build-asan --output-on-failure
fi

if [[ "$run_bench" == 1 ]]; then
  for b in build/bench/*; do
    [[ -f "$b" && -x "$b" ]] || continue
    echo "===== $b ====="
    "$b"
  done
fi
