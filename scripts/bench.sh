#!/usr/bin/env bash
# Regenerates BENCH_PR2.json (repo root) from bench_search_report: the
# before/after numbers for the plan-space-search optimizations (closure
# dedup, DPccp vs all-masks DP, borrowed-key probes).
#
# Usage: scripts/bench.sh [--smoke]
#   --smoke   one repetition at reduced sizes (CI sanity run)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-bench
SMOKE=""
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE="--smoke" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target bench_search_report -j"$(nproc)"
"$BUILD_DIR/bench/bench_search_report" $SMOKE > BENCH_PR2.json
echo "wrote BENCH_PR2.json:"
cat BENCH_PR2.json
