#!/usr/bin/env bash
# Regenerates the benchmark reports at the repo root:
#   BENCH_PR2.json  bench_search_report — plan-space-search optimizations
#                   (closure dedup, DPccp vs all-masks DP, borrowed keys)
#   BENCH_PR3.json  bench_server — fro_serve under open-loop load, plan
#                   cache off vs on (QPS, p50/p99, hit rate)
#   BENCH_PR6.json  bench_parallel — morsel-driven parallel scaling at
#                   1/2/4/8 workers (records hardware_concurrency)
#   BENCH_PR7.json  bench_batch — tuple vs (columnar) batch engine on
#                   scan/filter/hash-join pipelines (streaming +
#                   materializing; median of >=5 reps with min/max)
#   BENCH_PR8.json  bench_wcoj — leapfrog multiway join vs the best
#                   binary plan on cyclic cores (triangle, 4-cycle,
#                   diamond; speedup_vs_binary per scale)
#   BENCH_PR9.json  bench_acyclic — cost-gated Yannakakis semijoin
#                   program vs the best binary plan on skewed acyclic
#                   chains (speedup_vs_binary per scale)
#   BENCH_PR10.json bench_feedback — static plan vs the cardinality-
#                   feedback re-plan on a mispriced skewed chain
#                   (speedup_vs_static and max_q_error per scale)
#
# BENCH_PR4.json stays frozen as the pre-columnar row-batch baseline
# the PR 7 speedup target is measured against; bench_batch now writes
# BENCH_PR7.json, and scripts/bench_compare.py gates regressions of
# PR7 against its committed copy.
#
# Usage: scripts/bench.sh [--smoke]
#   --smoke   reduced sizes / request counts (CI sanity run)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-bench
SMOKE=""
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE="--smoke" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target bench_search_report bench_server bench_batch bench_parallel bench_wcoj bench_acyclic bench_feedback -j"$(nproc)"
"$BUILD_DIR/bench/bench_search_report" $SMOKE > BENCH_PR2.json
echo "wrote BENCH_PR2.json:"
cat BENCH_PR2.json
"$BUILD_DIR/bench/bench_server" $SMOKE > BENCH_PR3.json
echo "wrote BENCH_PR3.json:"
cat BENCH_PR3.json
"$BUILD_DIR/bench/bench_batch" $SMOKE > BENCH_PR7.json
echo "wrote BENCH_PR7.json:"
cat BENCH_PR7.json
"$BUILD_DIR/bench/bench_parallel" $SMOKE > BENCH_PR6.json
echo "wrote BENCH_PR6.json:"
cat BENCH_PR6.json
"$BUILD_DIR/bench/bench_wcoj" $SMOKE > BENCH_PR8.json
echo "wrote BENCH_PR8.json:"
cat BENCH_PR8.json
"$BUILD_DIR/bench/bench_acyclic" $SMOKE > BENCH_PR9.json
echo "wrote BENCH_PR9.json:"
cat BENCH_PR9.json
"$BUILD_DIR/bench/bench_feedback" $SMOKE > BENCH_PR10.json
echo "wrote BENCH_PR10.json:"
cat BENCH_PR10.json
