#!/usr/bin/env python3
"""Gate benchmark regressions against a committed baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold 0.25]

Both files are bench_batch reports: a JSON array of per-pipeline rows
keyed by "pipeline". For every metric under comparison (the batch
engine's streaming and materializing medians), the current run fails
when even its *fastest* repetition is more than THRESHOLD slower than
the baseline's median:

    current_min > baseline * (1 + threshold)  ->  regression

Comparing the current minimum (rather than median) against the
baseline keeps the gate one-sided against noise: a scheduler hiccup
inflates medians and maxima long before it inflates the best-of-run,
so a pipeline only fails when every repetition was slow. Old-format
baselines without *_min_ns fields compare median-to-median.

Exit status: 0 = no regression, 1 = regression, 2 = usage/parse error.
"""

import argparse
import json
import sys

# (median field, min field) pairs gated per pipeline.
METRICS = [
    ("batch_ns", "batch_min_ns"),
    ("batch_materialize_ns", "batch_materialize_min_ns"),
]


def load_rows(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, list):
        print(f"bench_compare: {path}: expected a JSON array", file=sys.stderr)
        sys.exit(2)
    return {row["pipeline"]: row for row in data}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)

    regressions = []
    for pipeline, base_row in sorted(baseline.items()):
        cur_row = current.get(pipeline)
        if cur_row is None:
            regressions.append(f"{pipeline}: missing from current run")
            continue
        for median_key, min_key in METRICS:
            if median_key not in base_row:
                continue  # baseline predates this metric
            base = base_row[median_key]
            cur_best = cur_row.get(min_key, cur_row.get(median_key))
            limit = base * (1.0 + args.threshold)
            ratio = cur_best / base if base else float("inf")
            status = "REGRESSION" if cur_best > limit else "ok"
            print(f"{pipeline:24s} {median_key:24s} baseline={base:>12d} "
                  f"current_best={cur_best:>12d} ratio={ratio:5.2f}  {status}")
            if cur_best > limit:
                regressions.append(
                    f"{pipeline}/{median_key}: {cur_best} vs baseline {base} "
                    f"({ratio:.2f}x > {1.0 + args.threshold:.2f}x allowed)")

    if regressions:
        print("\nbench_compare: FAILED", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print("\nbench_compare: no regression beyond "
          f"{args.threshold:.0%} threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
