// Quickstart: build a small database, write a join/outerjoin query, check
// free reorderability, enumerate its implementing trees, optimize, and
// run it.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "algebra/eval.h"
#include "enumerate/it_enum.h"
#include "graph/from_expr.h"
#include "graph/nice.h"
#include "optimizer/optimizer.h"

using namespace fro;

int main() {
  // --- 1. A database: customers, orders, optional shipments. ----------
  Database db;
  RelId customer = *db.AddRelation("CUSTOMER", {"id", "name"});
  RelId orders = *db.AddRelation("ORDERS", {"id", "cust_id", "total"});
  RelId shipment = *db.AddRelation("SHIPMENT", {"order_id", "carrier"});

  db.AddRow(customer, {Value::Int(1), Value::String("ada")});
  db.AddRow(customer, {Value::Int(2), Value::String("bob")});
  db.AddRow(orders, {Value::Int(10), Value::Int(1), Value::Int(99)});
  db.AddRow(orders, {Value::Int(11), Value::Int(1), Value::Int(45)});
  db.AddRow(orders, {Value::Int(12), Value::Int(2), Value::Int(70)});
  // Order 11 has not shipped yet — the outerjoin must keep it.
  db.AddRow(shipment, {Value::Int(10), Value::String("dhl")});
  db.AddRow(shipment, {Value::Int(12), Value::String("post")});

  // --- 2. The query: CUSTOMER - ORDERS -> SHIPMENT. --------------------
  ExprPtr query = Expr::Join(
      Expr::Leaf(customer, db),
      Expr::OuterJoin(
          Expr::Leaf(orders, db), Expr::Leaf(shipment, db),
          EqCols(db.Attr("ORDERS", "id"), db.Attr("SHIPMENT", "order_id"))),
      EqCols(db.Attr("CUSTOMER", "id"), db.Attr("ORDERS", "cust_id")));
  std::printf("query:  %s\n", query->ToString(&db.catalog()).c_str());

  // --- 3. Its query graph and the Theorem 1 check. ---------------------
  Result<QueryGraph> graph = GraphOf(query, db);
  if (!graph.ok()) {
    std::printf("graph undefined: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph:\n%s", graph->ToString(&db.catalog()).c_str());
  ReorderabilityCheck check = CheckFreelyReorderable(*graph);
  std::printf("freely reorderable: %s\n",
              check.freely_reorderable() ? "yes" : "no");

  // --- 4. All implementing trees evaluate to the same result. ----------
  std::printf("implementing trees (%llu):\n",
              static_cast<unsigned long long>(CountIts(*graph)));
  for (const ExprPtr& tree : EnumerateIts(*graph, db)) {
    Relation out = Eval(tree, db);
    std::printf("  %-42s => %zu rows\n",
                tree->ToString(&db.catalog()).c_str(), out.NumRows());
  }

  // --- 5. Let the optimizer pick the cheapest one. ----------------------
  Result<OptimizeOutcome> outcome = Optimize(query, db);
  if (!outcome.ok()) {
    std::printf("optimize failed: %s\n",
                outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("optimizer: %s\n", outcome->Summary().c_str());
  std::printf("plan:   %s  (cost %.1f, was %.1f)\n",
              outcome->plan->ToString(&db.catalog()).c_str(), outcome->cost,
              outcome->original_cost);

  // --- 6. Run it. -------------------------------------------------------
  Relation result = Eval(outcome->plan, db);
  std::printf("result:\n%s", CanonicalString(result, &db.catalog()).c_str());
  return 0;
}
