// Reorder explorer: contrasts a freely-reorderable query with Example 2's
// non-reorderable one — enumerating implementing trees, evaluating each,
// showing the basic-transform closure, and the GOJ fallback plan.
//
//   $ ./build/examples/reorder_explorer

#include <cstdio>

#include "algebra/eval.h"
#include "algebra/transform.h"
#include "enumerate/bt_path.h"
#include "enumerate/closure.h"
#include "enumerate/it_enum.h"
#include "graph/from_expr.h"
#include "graph/nice.h"
#include "optimizer/explain.h"
#include "optimizer/optimizer.h"

using namespace fro;

namespace {

void Explore(const char* title, const ExprPtr& query, const Database& db) {
  std::printf("\n=== %s ===\n", title);
  std::printf("query: %s\n", query->ToString(&db.catalog()).c_str());
  Result<QueryGraph> graph = GraphOf(query, db);
  if (!graph.ok()) {
    std::printf("graph undefined: %s\n", graph.status().ToString().c_str());
    return;
  }
  NiceCheck nice = CheckNice(*graph);
  std::printf("nice: %s%s%s\n", nice.nice ? "yes" : "no",
              nice.nice ? "" : " — ", nice.violation.c_str());
  ReorderabilityCheck check = CheckFreelyReorderable(*graph);
  std::printf("freely reorderable: %s\n",
              check.freely_reorderable() ? "yes" : "no");

  std::printf("implementing trees and their results:\n");
  for (const ExprPtr& tree : EnumerateIts(*graph, db)) {
    Relation out = Eval(tree, db);
    std::printf("  %-36s => %zu rows\n",
                tree->ToString(&db.catalog()).c_str(), out.NumRows());
  }

  ExprPtr start = EnumerateIts(*graph, db, 1)[0];
  ClosureOptions preserving;
  preserving.only_result_preserving = true;
  std::printf(
      "BT closure from %s: %zu tree(s) with all BTs, %zu with "
      "result-preserving BTs only\n",
      start->ToString(&db.catalog()).c_str(),
      BtClosure(start).trees.size(),
      BtClosure(start, preserving).trees.size());

  // The constructive Theorem 1 witness: a result-preserving BT sequence
  // from the given association to some other implementing tree.
  std::vector<ExprPtr> all_trees = EnumerateIts(*graph, db);
  for (const ExprPtr& other : all_trees) {
    if (ExprEquals(CanonicalOrientation(other),
                   CanonicalOrientation(query))) {
      continue;
    }
    BtPathResult path = FindBtPath(query, other);
    if (!path.found) {
      std::printf("no result-preserving BT path to %s\n",
                  other->ToString(&db.catalog()).c_str());
      continue;
    }
    std::printf("preserving BT path to %s:\n",
                other->ToString(&db.catalog()).c_str());
    for (size_t i = 1; i < path.steps.size(); ++i) {
      std::printf("  ~[%s]~> %s\n", path.steps[i].rule.c_str(),
                  path.steps[i].tree->ToString(&db.catalog()).c_str());
    }
    break;  // one witness is enough per query
  }

  Result<OptimizeOutcome> outcome = Optimize(query, db);
  if (outcome.ok()) {
    std::printf("optimizer: %s\n", outcome->Summary().c_str());
    std::printf("plan: %s\n",
                outcome->plan->ToString(&db.catalog()).c_str());
    std::printf("plan agrees with query: %s\n",
                BagEquals(Eval(query, db), Eval(outcome->plan, db))
                    ? "yes"
                    : "NO (bug!)");
    ExplainAnalyzeResult analyzed = ExplainAnalyze(outcome->plan, db);
    std::printf("explain analyze (pipelined execution):\n%s",
                analyzed.text.c_str());
    std::printf("  => %zu rows, %llu base tuples read, worst q-error %.2f\n",
                analyzed.result.NumRows(),
                static_cast<unsigned long long>(analyzed.base_tuples_read),
                analyzed.max_q_error);
  }
}

}  // namespace

int main() {
  Database db;
  RelId rx = *db.AddRelation("X", {"a"});
  RelId ry = *db.AddRelation("Y", {"b"});
  RelId rz = *db.AddRelation("Z", {"c"});
  AttrId a = db.Attr("X", "a");
  AttrId b = db.Attr("Y", "b");
  AttrId c = db.Attr("Z", "c");
  // Example 2's witness data: x matches y; y does not match z.
  db.AddRow(rx, {Value::Int(1)});
  db.AddRow(ry, {Value::Int(1)});
  db.AddRow(rz, {Value::Int(9)});

  ExprPtr x = Expr::Leaf(rx, db);
  ExprPtr y = Expr::Leaf(ry, db);
  ExprPtr z = Expr::Leaf(rz, db);

  // Freely reorderable: X - Y -> Z (Example 1's shape).
  Explore("freely reorderable: (X - Y) -> Z",
          Expr::OuterJoin(Expr::Join(x, y, EqCols(a, b)), z, EqCols(b, c)),
          db);

  // NOT freely reorderable: X -> (Y - Z) (Example 2). The two
  // implementing trees return different results, the preserving closure
  // is stuck at one tree, and the optimizer falls back to a GOJ plan.
  Explore("not freely reorderable: X -> (Y - Z)",
          Expr::OuterJoin(x, Expr::Join(y, z, EqCols(b, c)), EqCols(a, b)),
          db);

  // Nice graph but a weak predicate (Example 3's failure mode).
  PredicatePtr weak =
      Predicate::Or({EqCols(b, c), Predicate::IsNull(Operand::Column(b))});
  Explore("nice graph, non-strong predicate: (X -> Y) -> Z",
          Expr::OuterJoin(Expr::OuterJoin(x, y, EqCols(a, b)), z, weak),
          db);
  return 0;
}
