// fro_shell — a small interactive/batch shell over the Section 5 query
// language, running against the paper's company database.
//
//   $ ./build/examples/fro_shell                       # demo queries
//   $ echo "Select All From EMPLOYEE*ChildName" | ./build/examples/fro_shell
//
// Commands (one per line):
//   Select All From ...        run a query, print the result
//   \explain <query>           show the optimized plan with estimates
//   \analyze <query>           execute the plan, show actual vs. estimated
//   \graph <query>             show the derived query graph (text + DOT)
//   \trees <query>             enumerate all implementing trees
//   \help                      this text

#include <cstdio>
#include <iostream>
#include <string>

#include "algebra/eval.h"
#include "common/str_util.h"
#include "enumerate/it_enum.h"
#include "lang/lang.h"
#include "relational/pretty.h"
#include "optimizer/explain.h"
#include "testing/nested_sample.h"

using namespace fro;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  Select All From <items> [Where <conjuncts>]   run a query\n"
      "  \\explain <query>   optimized plan with cardinality estimates\n"
      "  \\analyze <query>   EXPLAIN ANALYZE: run the plan, actual counters\n"
      "  \\graph <query>     derived query graph (text and Graphviz DOT)\n"
      "  \\trees <query>     all implementing trees and their results\n"
      "  \\help              this text\n"
      "schema: EMPLOYEE(D#, Rank, ChildName*), REPORT(Title, Cost),\n"
      "        DEPARTMENT(D#, Location, ->Manager, ->Secretary, ->Audit)\n");
}

void RunPlain(const NestedDb& db, const std::string& query) {
  Result<QueryRunResult> run = RunQuery(db, query);
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  const Catalog& catalog = run->translation.db->catalog();
  std::printf("%s", PrettyTable(run->relation, &catalog).c_str());
  std::printf("(%zu rows; %s)\n", run->relation.NumRows(),
              run->optimize.notes.c_str());
}

void RunExplain(const NestedDb& db, const std::string& query) {
  Result<QueryRunResult> run = RunQuery(db, query);
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  std::printf("%s",
              Explain(run->optimize.plan, *run->translation.db).c_str());
}

void RunAnalyze(const NestedDb& db, const std::string& query) {
  Result<QueryRunResult> run = RunQuery(db, query);
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  ExplainAnalyzeResult analyzed =
      ExplainAnalyze(run->optimize.plan, *run->translation.db);
  std::printf("%s", analyzed.text.c_str());
  std::printf(
      "(%zu rows; %llu base tuples read; %llu tuples read in total; "
      "worst q-error %.2f)\n",
      analyzed.result.NumRows(),
      static_cast<unsigned long long>(analyzed.base_tuples_read),
      static_cast<unsigned long long>(analyzed.totals.tuples_read()),
      analyzed.max_q_error);
}

void RunGraph(const NestedDb& db, const std::string& query) {
  Result<QueryRunResult> run = RunQuery(db, query);
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  const Catalog& catalog = run->translation.db->catalog();
  std::printf("%s", run->translation.graph.ToString(&catalog).c_str());
  std::printf("freely reorderable: %s\n",
              run->translation.audit.freely_reorderable() ? "yes" : "no");
  std::printf("%s", GraphToDot(run->translation.graph,
                               *run->translation.db).c_str());
}

void RunTrees(const NestedDb& db, const std::string& query) {
  Result<QueryRunResult> run = RunQuery(db, query);
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  const Database& rel_db = *run->translation.db;
  uint64_t count = CountIts(run->translation.graph);
  std::printf("%llu implementing tree(s)\n",
              static_cast<unsigned long long>(count));
  size_t shown = 0;
  for (const ExprPtr& tree :
       EnumerateIts(run->translation.graph, rel_db, 20)) {
    Relation out = Eval(tree, rel_db);
    std::printf("  %s => %zu rows\n",
                tree->ToString(&rel_db.catalog()).c_str(), out.NumRows());
    if (++shown >= 20) break;
  }
  if (count > shown) std::printf("  ... (%llu more)\n",
                                 static_cast<unsigned long long>(count - shown));
}

void Dispatch(const NestedDb& db, const std::string& line) {
  if (line.empty()) return;
  std::printf("fro> %s\n", line.c_str());
  if (StartsWith(line, "\\help")) {
    PrintHelp();
  } else if (StartsWith(line, "\\explain ")) {
    RunExplain(db, line.substr(9));
  } else if (StartsWith(line, "\\analyze ")) {
    RunAnalyze(db, line.substr(9));
  } else if (StartsWith(line, "\\graph ")) {
    RunGraph(db, line.substr(7));
  } else if (StartsWith(line, "\\trees ")) {
    RunTrees(db, line.substr(7));
  } else {
    RunPlain(db, line);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  NestedDb db = MakeCompanyNestedDb();
  if (argc > 1) {
    std::string query;
    for (int i = 1; i < argc; ++i) {
      if (i > 1) query += " ";
      query += argv[i];
    }
    Dispatch(db, query);
    return 0;
  }
  std::string line;
  bool saw_input = false;
  while (std::getline(std::cin, line)) {
    saw_input = true;
    Dispatch(db, line);
  }
  if (!saw_input) {
    // Demo mode: the paper's queries.
    PrintHelp();
    Dispatch(db,
             "Select All From EMPLOYEE*ChildName, DEPARTMENT "
             "Where EMPLOYEE.D# = DEPARTMENT.D# and "
             "DEPARTMENT.Location = 'Queretaro'");
    Dispatch(db,
             "\\graph Select All From EMPLOYEE*ChildName, "
             "DEPARTMENT-->Manager-->Audit "
             "Where EMPLOYEE.D# = DEPARTMENT.D#");
    Dispatch(db,
             "\\explain Select All From DEPARTMENT-->Manager-->Audit "
             "Where DEPARTMENT.Location = 'Zurich'");
    Dispatch(db,
             "\\analyze Select All From EMPLOYEE*ChildName, DEPARTMENT "
             "Where EMPLOYEE.D# = DEPARTMENT.D#");
    Dispatch(db, "\\trees Select All From DEPARTMENT-->Manager*ChildName");
  }
  return 0;
}
