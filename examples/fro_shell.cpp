// fro_shell — a small interactive/batch shell over the Section 5 query
// language, running against the paper's company database.
//
//   $ ./build/examples/fro_shell                       # demo queries
//   $ echo "Select All From EMPLOYEE*ChildName" | ./build/examples/fro_shell
//
// Commands (one per line):
//   Select All From ...        run a query, print the result
//   \explain <query>           show the optimized plan with estimates
//   \analyze <query>           execute the plan, show actual vs. estimated
//   \graph <query>             show the derived query graph (text + DOT)
//   \trees <query>             enumerate all implementing trees
//   \connect host:port         switch to remote mode against a fro_serve
//   \disconnect                back to local execution
//   \cachestats                plan-cache counters (local or remote)
//   \indexes [<query>]         build + list the IndexManager entries the
//                              query's optimized plan can exploit
//   \help                      this text
//
// In remote mode plain queries, \explain, and \analyze travel over the
// fro_serve protocol; local execution keeps its own plan cache so
// \cachestats is meaningful either way.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "algebra/eval.h"
#include "common/str_util.h"
#include "enumerate/it_enum.h"
#include "lang/lang.h"
#include "relational/index_manager.h"
#include "relational/ops.h"
#include "relational/pretty.h"
#include "optimizer/explain.h"
#include "server/client.h"
#include "optimizer/plan_cache.h"
#include "testing/nested_sample.h"
#include "wcoj/leapfrog.h"
#include "wcoj/trie_index.h"

using namespace fro;

namespace {

/// Local plan cache: repeated shell queries skip the DP search, and
/// \cachestats has numbers to show without a server.
LruPlanCache& LocalPlanCache() {
  static LruPlanCache cache(64);
  return cache;
}

/// Local cardinality-feedback store: every shell query feeds its actuals
/// in, repeated queries plan against the corrections, and \feedback has
/// the loop's state to show (optimizer/feedback.h).
FeedbackStore& LocalFeedback() {
  static FeedbackStore store;
  return store;
}

/// Non-null while \connect is active.
FroClient* g_remote = nullptr;

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  Select All From <items> [Where <conjuncts>]   run a query\n"
      "  \\explain <query>   optimized plan with cardinality estimates\n"
      "  \\analyze <query>   EXPLAIN ANALYZE: run the plan, actual counters\n"
      "  \\graph <query>     derived query graph (text and Graphviz DOT)\n"
      "  \\trees <query>     all implementing trees and their results\n"
      "  \\connect h:p       speak the fro_serve protocol to h:p\n"
      "  \\disconnect        return to local execution\n"
      "  \\cachestats        plan-cache counters (local or remote)\n"
      "  \\feedback          cardinality-feedback store: corrections,\n"
      "                     Q-error histogram, re-plan counters\n"
      "  \\indexes [query]   build + list the IndexManager entries the\n"
      "                     query's plan can exploit (always local)\n"
      "  \\help              this text\n"
      "schema: EMPLOYEE(D#, Rank, ChildName*), REPORT(Title, Cost),\n"
      "        DEPARTMENT(D#, Location, ->Manager, ->Secretary, ->Audit)\n");
}

RunOptions LocalRunOptions() {
  RunOptions options;
  options.plan_cache = &LocalPlanCache();
  options.feedback = &LocalFeedback();
  return options;
}

void PrintRemote(const Result<Response>& reply) {
  if (!reply.ok()) {
    std::printf("transport error: %s\n", reply.status().ToString().c_str());
    return;
  }
  if (!reply->status.ok()) {
    std::printf("server error: %s\n", reply->status.ToString().c_str());
    return;
  }
  std::printf("%s", reply->body.c_str());
}

void RunConnect(const std::string& target) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::printf("usage: \\connect host:port\n");
    return;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.substr(colon + 1).c_str());
  static FroClient client;
  client.Close();
  Status status = client.Connect(host, port);
  if (!status.ok()) {
    std::printf("connect failed: %s\n", status.ToString().c_str());
    g_remote = nullptr;
    return;
  }
  g_remote = &client;
  std::printf("connected to %s:%d; queries now run remotely\n", host.c_str(),
              port);
}

void RunDisconnect() {
  if (g_remote != nullptr) {
    g_remote->Close();
    g_remote = nullptr;
  }
  std::printf("local execution\n");
}

void RunCacheStats() {
  if (g_remote != nullptr) {
    PrintRemote(g_remote->Stats());
    return;
  }
  std::printf("local plan_cache %s\n",
              LocalPlanCache().stats().ToString().c_str());
}

void RunFeedback() {
  if (g_remote != nullptr) {
    // The server's STATS payload carries its feedback rollup.
    PrintRemote(g_remote->Stats());
    return;
  }
  std::printf("%s", LocalFeedback().Describe().c_str());
  std::printf("local plan_cache %s\n",
              LocalPlanCache().stats().ToString().c_str());
}

void RunPlain(const NestedDb& db, const std::string& query) {
  Result<QueryRunResult> run = RunQuery(db, query, LocalRunOptions());
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  const Catalog& catalog = run->translation.db->catalog();
  std::printf("%s", PrettyTable(run->relation, &catalog).c_str());
  std::printf("(%zu rows; %s)\n", run->relation.NumRows(),
              run->optimize.Summary().c_str());
}

void RunExplain(const NestedDb& db, const std::string& query) {
  Result<QueryRunResult> run = RunQuery(db, query, LocalRunOptions());
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  std::printf("%s",
              Explain(run->optimize.plan, *run->translation.db).c_str());
}

void RunAnalyze(const NestedDb& db, const std::string& query) {
  Result<QueryRunResult> run = RunQuery(db, query, LocalRunOptions());
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  const CardinalityFeedback feedback = LocalFeedback().Snapshot();
  ExplainAnalyzeResult analyzed =
      ExplainAnalyze(run->optimize.plan, *run->translation.db,
                     JoinAlgo::kAuto, ExecEngine::kBatch, /*threads=*/1,
                     &feedback);
  std::printf("%s", analyzed.text.c_str());
  // Same per-pass rendering as the server's ANALYZE verb and STATS.
  std::printf("%s", FormatPassStats(run->optimize.passes).c_str());
  std::printf(
      "(%zu rows; %llu base tuples read; %llu tuples read in total; "
      "worst q-error %.2f)\n",
      analyzed.result.NumRows(),
      static_cast<unsigned long long>(analyzed.base_tuples_read),
      static_cast<unsigned long long>(analyzed.totals.tuples_read()),
      analyzed.max_q_error);
}

/// Walks an optimized plan and materializes, through `manager`, the
/// persistent indexes its operators can exploit: a hash index per
/// join-like node whose build (inner) side is a base relation with
/// equi-keys, and a trie per multiway-join operand that is a base
/// relation, using the level order implied by the node's variable order.
void CollectPlanIndexes(const ExprPtr& expr, const Database& db,
                        IndexManager* manager) {
  if (expr == nullptr || expr->is_leaf()) return;
  if (expr->is_multiway()) {
    MultiwaySpec spec = AnalyzeMultiwayJoin(expr);
    for (size_t c = 0; c < expr->mj_children().size(); ++c) {
      const ExprPtr& child = expr->mj_children()[c];
      if (child->is_leaf()) {
        std::unique_ptr<TrieIndex> owned;
        BuildTrieIndex(db, child->rel(), spec.child_levels[c], manager,
                       &owned);
      } else {
        CollectPlanIndexes(child, db, manager);
      }
    }
    return;
  }
  if (expr->is_join_like()) {
    // Same operand anchoring as the plan builder: the hash table is
    // built over the non-preserved side.
    ExprPtr outer = expr->left();
    ExprPtr inner = expr->right();
    if (!expr->preserves_left() && expr->kind() != OpKind::kJoin) {
      std::swap(outer, inner);
    }
    if (inner->is_leaf()) {
      EquiKeys keys =
          ExtractEquiKeys(expr->pred(), Scheme(outer->attrs().ids()),
                          db.scheme(inner->rel()));
      if (keys.Usable()) {
        manager->CreateIndex(db, inner->rel(), std::move(keys.right));
      }
    }
  }
  CollectPlanIndexes(expr->left(), db, manager);
  CollectPlanIndexes(expr->right(), db, manager);
}

void RunIndexes(const NestedDb& db, const std::string& query) {
  // The manager and the run that owns its database persist across
  // commands, so a bare \indexes re-lists the current entries (with
  // their build generations) without re-planning.
  static std::unique_ptr<IndexManager> manager;
  static std::optional<QueryRunResult> last;
  if (!query.empty()) {
    Result<QueryRunResult> run = RunQuery(db, query, LocalRunOptions());
    if (!run.ok()) {
      std::printf("error: %s\n", run.status().ToString().c_str());
      return;
    }
    manager = std::make_unique<IndexManager>();
    last.emplace(std::move(*run));
    CollectPlanIndexes(last->optimize.plan, *last->translation.db,
                       manager.get());
  }
  if (manager == nullptr) {
    std::printf("no indexes built yet; usage: \\indexes <query>\n");
    return;
  }
  const Database& rel_db = *last->translation.db;
  const Catalog& catalog = rel_db.catalog();
  std::vector<IndexInfo> infos = manager->ListIndexes(rel_db);
  if (infos.empty()) {
    std::printf("no index-eligible operators in the last plan\n");
    return;
  }
  std::printf("%-24s %-5s %-36s %6s %4s %s\n", "relation", "kind", "keys",
              "rows", "gen", "stale");
  for (const IndexInfo& info : infos) {
    std::string keys;
    for (AttrId a : info.key_attrs) {
      if (!keys.empty()) keys += ",";
      keys += catalog.AttrName(a);
    }
    std::printf("%-24s %-5s %-36s %6zu %4llu %s\n",
                catalog.RelationName(info.rel).c_str(),
                info.is_trie ? "trie" : "hash", keys.c_str(), info.rows,
                static_cast<unsigned long long>(info.generation),
                info.stale ? "yes" : "no");
  }
}

void RunGraph(const NestedDb& db, const std::string& query) {
  Result<QueryRunResult> run = RunQuery(db, query);
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  const Catalog& catalog = run->translation.db->catalog();
  std::printf("%s", run->translation.graph.ToString(&catalog).c_str());
  std::printf("freely reorderable: %s\n",
              run->translation.audit.freely_reorderable() ? "yes" : "no");
  std::printf("%s", GraphToDot(run->translation.graph,
                               *run->translation.db).c_str());
}

void RunTrees(const NestedDb& db, const std::string& query) {
  Result<QueryRunResult> run = RunQuery(db, query);
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  const Database& rel_db = *run->translation.db;
  uint64_t count = CountIts(run->translation.graph);
  std::printf("%llu implementing tree(s)\n",
              static_cast<unsigned long long>(count));
  size_t shown = 0;
  for (const ExprPtr& tree :
       EnumerateIts(run->translation.graph, rel_db, 20)) {
    Relation out = Eval(tree, rel_db);
    std::printf("  %s => %zu rows\n",
                tree->ToString(&rel_db.catalog()).c_str(), out.NumRows());
    if (++shown >= 20) break;
  }
  if (count > shown) std::printf("  ... (%llu more)\n",
                                 static_cast<unsigned long long>(count - shown));
}

void Dispatch(const NestedDb& db, const std::string& line) {
  if (line.empty()) return;
  std::printf("fro> %s\n", line.c_str());
  if (StartsWith(line, "\\help")) {
    PrintHelp();
  } else if (StartsWith(line, "\\connect ")) {
    RunConnect(line.substr(9));
  } else if (StartsWith(line, "\\disconnect")) {
    RunDisconnect();
  } else if (StartsWith(line, "\\cachestats")) {
    RunCacheStats();
  } else if (StartsWith(line, "\\feedback")) {
    RunFeedback();
  } else if (StartsWith(line, "\\explain ")) {
    if (g_remote != nullptr) {
      PrintRemote(g_remote->Explain(line.substr(9)));
    } else {
      RunExplain(db, line.substr(9));
    }
  } else if (StartsWith(line, "\\analyze ")) {
    if (g_remote != nullptr) {
      PrintRemote(g_remote->Analyze(line.substr(9)));
    } else {
      RunAnalyze(db, line.substr(9));
    }
  } else if (StartsWith(line, "\\indexes")) {
    std::string rest = line.substr(8);
    while (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
    RunIndexes(db, rest);
  } else if (StartsWith(line, "\\graph ")) {
    RunGraph(db, line.substr(7));
  } else if (StartsWith(line, "\\trees ")) {
    RunTrees(db, line.substr(7));
  } else if (g_remote != nullptr) {
    PrintRemote(g_remote->Query(line));
  } else {
    RunPlain(db, line);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  NestedDb db = MakeCompanyNestedDb();
  if (argc > 1) {
    std::string query;
    for (int i = 1; i < argc; ++i) {
      if (i > 1) query += " ";
      query += argv[i];
    }
    Dispatch(db, query);
    return 0;
  }
  std::string line;
  bool saw_input = false;
  while (std::getline(std::cin, line)) {
    saw_input = true;
    Dispatch(db, line);
  }
  if (!saw_input) {
    // Demo mode: the paper's queries.
    PrintHelp();
    Dispatch(db,
             "Select All From EMPLOYEE*ChildName, DEPARTMENT "
             "Where EMPLOYEE.D# = DEPARTMENT.D# and "
             "DEPARTMENT.Location = 'Queretaro'");
    Dispatch(db,
             "\\graph Select All From EMPLOYEE*ChildName, "
             "DEPARTMENT-->Manager-->Audit "
             "Where EMPLOYEE.D# = DEPARTMENT.D#");
    Dispatch(db,
             "\\explain Select All From DEPARTMENT-->Manager-->Audit "
             "Where DEPARTMENT.Location = 'Zurich'");
    Dispatch(db,
             "\\analyze Select All From EMPLOYEE*ChildName, DEPARTMENT "
             "Where EMPLOYEE.D# = DEPARTMENT.D#");
    Dispatch(db, "\\trees Select All From DEPARTMENT-->Manager*ChildName");
    Dispatch(db,
             "\\indexes Select All From EMPLOYEE*ChildName, DEPARTMENT "
             "Where EMPLOYEE.D# = DEPARTMENT.D#");
  }
  return 0;
}
