// The Section 5 language end to end, on the paper's own example queries —
// including the "prosecutor" query that combines UnNest (*) and Link
// (->). Demonstrates that every generated query block is freely
// reorderable (the Section 5.3 observation) and shows the derived query
// graph and chosen plan.
//
//   $ ./build/examples/prosecutor

#include <cstdio>

#include "lang/lang.h"
#include "testing/nested_sample.h"

using namespace fro;

namespace {

void Run(const NestedDb& db, const char* title, const char* text) {
  std::printf("\n=== %s ===\n%s\n", title, text);
  Result<QueryRunResult> run = RunQuery(db, text);
  if (!run.ok()) {
    std::printf("error: %s\n", run.status().ToString().c_str());
    return;
  }
  const Catalog& catalog = run->translation.db->catalog();
  std::printf("derived query graph:\n%s",
              run->translation.graph.ToString(&catalog).c_str());
  std::printf("block freely reorderable: %s\n",
              run->translation.audit.freely_reorderable() ? "yes" : "no");
  std::printf("plan: %s\n",
              run->optimize.plan->ToString(&catalog).c_str());
  std::printf("result (%zu rows):\n%s", run->relation.NumRows(),
              CanonicalString(run->relation, &catalog).c_str());
}

}  // namespace

int main() {
  NestedDb db = MakeCompanyNestedDb();

  // Section 5.1, first example: one tuple per employee in a Queretaro
  // department; per child if any, with null ChildName otherwise.
  Run(db, "Queretaro employees and children",
      "Select All From EMPLOYEE*ChildName, DEPARTMENT "
      "Where EMPLOYEE.D# = DEPARTMENT.D# and "
      "DEPARTMENT.Location = 'Queretaro'");

  // Section 5.1, second example: Zurich departments completed with their
  // manager's employee attributes and the audit report.
  Run(db, "Zurich departments with manager and audit",
      "Select All From DEPARTMENT-->Manager-->Audit "
      "Where DEPARTMENT.Location = 'Zurich'");

  // Section 5.1, third example: the prosecutor's query.
  Run(db, "Prosecutor: money siphoned to employees or their children",
      "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit "
      "Where EMPLOYEE.D# = DEPARTMENT.D# and "
      "DEPARTMENT.Location = 'Zurich' and EMPLOYEE.Rank > 10");

  // Section 5.2's nested chain: DEPARTMENT-->Manager*ChildName becomes
  // two outerjoins, "the position of parenthesis is arbitrary".
  Run(db, "Managers' children per department",
      "Select All From DEPARTMENT-->Manager*ChildName");
  return 0;
}
