// The paper's motivating scenario (Section 1.1): "when we want a listing
// of departments and their employees, we often want to see all
// departments, even those without employees." Shows the outerjoin
// listing, the effect of a strong WHERE filter, and the Section 4
// simplification rule firing automatically inside the optimizer.
//
//   $ ./build/examples/dept_emp

#include <cstdio>

#include "algebra/eval.h"
#include "algebra/simplify.h"
#include "optimizer/optimizer.h"
#include "testing/datagen.h"

using namespace fro;

int main() {
  std::unique_ptr<Database> db = MakeDeptEmpDatabase();
  RelId dept = db->Rel("DEPT");
  RelId emp = db->Rel("EMP");

  // DEPT -> EMP on dno: every department appears, employee columns padded
  // with nulls where there are none.
  ExprPtr listing = Expr::OuterJoin(
      Expr::Leaf(dept, *db), Expr::Leaf(emp, *db),
      EqCols(db->Attr("DEPT", "dno"), db->Attr("EMP", "dno")));
  std::printf("— departments and their employees (outerjoin) —\n");
  std::printf("%s", CanonicalString(Eval(listing, *db),
                                    &db->catalog()).c_str());

  // Contrast: a regular join silently drops the Archive department.
  ExprPtr inner = Expr::Join(
      Expr::Leaf(dept, *db), Expr::Leaf(emp, *db),
      EqCols(db->Attr("DEPT", "dno"), db->Attr("EMP", "dno")));
  std::printf("\n— the regular join loses the empty department —\n");
  std::printf("%zu rows (outerjoin had %zu)\n",
              Eval(inner, *db).NumRows(), Eval(listing, *db).NumRows());

  // Now filter on an employee attribute: sigma[rank >= 10](DEPT -> EMP).
  // The filter is strong on EMP attributes, so the padded tuples cannot
  // survive — the Section 4 rule converts the outerjoin to a join.
  ExprPtr filtered = Expr::Restrict(
      listing, CmpLit(CmpOp::kGe, db->Attr("EMP", "rank"), Value::Int(10)));
  SimplifyResult simplified = SimplifyOuterjoins(filtered);
  std::printf("\n— Section 4 simplification —\n");
  std::printf("before: %s\n", filtered->ToString(&db->catalog()).c_str());
  std::printf("after:  %s   (%d outerjoin(s) converted)\n",
              simplified.expr->ToString(&db->catalog()).c_str(),
              simplified.outerjoins_converted);
  std::printf("results agree: %s\n",
              BagEquals(Eval(filtered, *db), Eval(simplified.expr, *db))
                  ? "yes"
                  : "NO (bug!)");

  // A non-strong filter (IS NULL — "departments with no employees") must
  // NOT trigger the conversion: the padded tuples are the answer.
  ExprPtr empty_depts = Expr::Restrict(
      listing, Predicate::IsNull(Operand::Column(db->Attr("EMP", "eno"))));
  SimplifyResult untouched = SimplifyOuterjoins(empty_depts);
  std::printf("\n— IS NULL filter keeps the outerjoin —\n");
  std::printf("converted: %d (expected 0)\n",
              untouched.outerjoins_converted);
  std::printf("departments without employees:\n%s",
              CanonicalString(Eval(empty_depts, *db),
                              &db->catalog()).c_str());

  // The optimizer facade runs the whole pipeline.
  Result<OptimizeOutcome> outcome = Optimize(filtered, *db);
  if (!outcome.ok()) {
    std::printf("optimize failed: %s\n",
                outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("\n— optimizer pipeline —\n");
  std::printf("simplified %d outerjoin(s); %s\n",
              outcome->PassApplications("simplify"),
              outcome->Summary().c_str());
  std::printf("plan: %s\n",
              outcome->plan->ToString(&db->catalog()).c_str());
  return 0;
}
