// A small analytics scenario built entirely through the umbrella header:
// load a warehouse from the textual format, write queries with the
// algebra parser, EXPLAIN the optimizer's plans, and run them on the
// pipelined executor.
//
//   $ ./build/examples/analytics

#include <cstdio>

#include "fro.h"

using namespace fro;

namespace {

// An embedded mini-warehouse: regions, suppliers, orders, reviews.
// Supplier 4 has no orders; order 103 has no review; supplier 3 has no
// region (dangling rno) — outerjoin food.
const char kWarehouse[] = R"(
relation REGION rno rname
1,'emea'
2,'apac'
relation SUPPLIER sno sname rno
1,'acme',1
2,'bolt',1
3,'corr',
4,'dyne',2
relation ORDERS ono sno total
101,1,500
102,1,120
103,2,75
104,3,980
relation REVIEW ono stars
101,5
102,3
104,1
)";

void Report(const Database& db, const char* title, const char* query_text) {
  std::printf("\n=== %s ===\n%s\n", title, query_text);
  Result<ExprPtr> query = ParseAlgebra(query_text, db);
  if (!query.ok()) {
    std::printf("parse error: %s\n", query.status().ToString().c_str());
    return;
  }
  Result<OptimizeOutcome> plan = Optimize(*query, db);
  if (!plan.ok()) {
    std::printf("optimize error: %s\n", plan.status().ToString().c_str());
    return;
  }
  std::printf("-- %s\n", plan->Summary().c_str());
  std::printf("%s", Explain(plan->plan, db).c_str());
  Relation out = ExecutePipelined(plan->plan, db);
  std::printf("%s(%zu rows)\n", CanonicalString(out, &db.catalog()).c_str(),
              out.NumRows());
  // Cross-check the two executors while we are at it.
  if (!BagEquals(out, Eval(plan->plan, db))) {
    std::printf("BUG: executors disagree!\n");
  }
}

}  // namespace

int main() {
  Result<std::unique_ptr<Database>> loaded = LoadDatabaseText(kWarehouse);
  if (!loaded.ok()) {
    std::printf("load error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Database& db = **loaded;

  // All suppliers with their region, even region-less ones, and their
  // orders, even order-less ones: a freely-reorderable join/outerjoin
  // mix the optimizer may associate at will.
  Report(db, "supplier directory",
         "((SUPPLIER ->[REGION.rno=SUPPLIER.rno] REGION) "
         "->[SUPPLIER.sno=ORDERS.sno] ORDERS)");

  // Orders with reviews kept optional, restricted to large totals: the
  // strong restriction converts nothing here (it filters ORDERS, the
  // preserved side) but pushes down to the scan.
  Report(db, "large orders with optional reviews",
         "(ORDERS ->[ORDERS.ono=REVIEW.ono] REVIEW)");

  // The full chain: regions <- suppliers -> orders -> reviews.
  Report(db, "region/supplier/order/review chain",
         "(((SUPPLIER ->[REGION.rno=SUPPLIER.rno] REGION) "
         "->[SUPPLIER.sno=ORDERS.sno] ORDERS) "
         "->[ORDERS.ono=REVIEW.ono] REVIEW)");

  // Suppliers with no orders at all (antijoin).
  Report(db, "suppliers without orders",
         "(SUPPLIER |>[SUPPLIER.sno=ORDERS.sno] ORDERS)");
  return 0;
}
