// Morsel-driven parallel execution (exec/morsel.h): the parallel batch
// pipeline must be result-transparent against the serial batch engine —
// identical result bags AND identical ExecStats counter totals — for
// every operator kind, at every worker count, down to one-row morsels.
// With threads <= 1 it must be *byte-identical* (same plan, same row
// order). Also covers the MorselQueue work-claiming contract, the GOJ
// cross-partition padding merge (each eq. 14 pad emitted exactly once,
// no matter how unmatched left rows scatter across morsels),
// cancellation/deadline propagation into worker pipelines, empty
// drivers, and EXPLAIN ANALYZE's Exchange rendering with serial-equal
// totals.

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/batch_operators.h"
#include "exec/build.h"
#include "exec/morsel.h"
#include "exec/stats_view.h"
#include "lang/lang.h"
#include "optimizer/explain.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

void ExpectCountersEq(const ExecStats& got, const ExecStats& want,
                      const std::string& context) {
  EXPECT_EQ(got.left_reads, want.left_reads) << context;
  EXPECT_EQ(got.right_reads, want.right_reads) << context;
  EXPECT_EQ(got.emitted, want.emitted) << context;
  EXPECT_EQ(got.probes, want.probes) << context;
  EXPECT_EQ(got.predicate_evals, want.predicate_evals) << context;
}

// Runs `expr` serially and with `threads` workers over tiny morsels, and
// asserts equal result bags and exactly equal pipeline counter totals.
void ExpectParallelMatchesSerial(const ExprPtr& expr, const Database& db,
                                 int threads, size_t morsel_rows,
                                 JoinAlgo algo = JoinAlgo::kAuto) {
  const std::string context = expr->ToString() + " w=" +
                              std::to_string(threads) + " morsel=" +
                              std::to_string(morsel_rows);

  BatchIteratorPtr serial = BuildBatchIterator(expr, db, algo);
  Relation serial_out = DrainBatches(serial.get());

  ParallelOptions par;
  par.threads = threads;
  par.morsel_rows = morsel_rows;
  par.batch_capacity = 4;
  par.algo = algo;
  BatchIteratorPtr parallel = BuildParallelBatchIterator(expr, db, par);
  Relation parallel_out = DrainBatches(parallel.get());

  EXPECT_TRUE(BagEquals(serial_out, parallel_out)) << context;
  ExpectCountersEq(CollectPipelineStats(parallel.get()),
                   CollectPipelineStats(serial.get()), context);
}

// --- MorselQueue ------------------------------------------------------------

TEST(MorselQueueTest, ClaimsCoverRangeDisjointly) {
  MorselQueue queue(/*total_rows=*/103, /*morsel_rows=*/8);
  size_t begin = 0, end = 0;
  size_t covered = 0, claims = 0, next_expected = 0;
  while (queue.Claim(&begin, &end)) {
    EXPECT_EQ(begin, next_expected);
    EXPECT_GT(end, begin);
    EXPECT_LE(end - begin, 8u);
    covered += end - begin;
    next_expected = end;
    ++claims;
  }
  EXPECT_EQ(covered, 103u);
  EXPECT_EQ(claims, 13u);  // 12 full morsels + one 7-row tail
  EXPECT_FALSE(queue.Claim(&begin, &end));  // stays exhausted

  queue.Reset();
  ASSERT_TRUE(queue.Claim(&begin, &end));
  EXPECT_EQ(begin, 0u);
}

TEST(MorselQueueTest, ConcurrentClaimsPartitionTheRange) {
  MorselQueue queue(/*total_rows=*/1000, /*morsel_rows=*/7);
  std::vector<std::vector<std::pair<size_t, size_t>>> claimed(4);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&queue, &claimed, w] {
      size_t begin = 0, end = 0;
      while (queue.Claim(&begin, &end)) claimed[w].push_back({begin, end});
    });
  }
  for (std::thread& t : workers) t.join();
  std::vector<bool> seen(1000, false);
  for (const auto& ranges : claimed) {
    for (const auto& [begin, end] : ranges) {
      for (size_t i = begin; i < end; ++i) {
        EXPECT_FALSE(seen[i]) << "row " << i << " claimed twice";
        seen[i] = true;
      }
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "row " << i << " never claimed";
  }
}

// --- operator-by-operator transparency -------------------------------------

class ParallelEquivTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = *db_.AddRelation("R", {"a", "b"});
    s_ = *db_.AddRelation("S", {"c", "d"});
    a_ = db_.Attr("R", "a");
    b_ = db_.Attr("R", "b");
    c_ = db_.Attr("S", "c");
    d_ = db_.Attr("S", "d");
    // Enough driver rows that 1-row morsels make every worker claim
    // several; duplicate and null keys on both sides.
    for (int i = 0; i < 37; ++i) {
      const int key = i % 7;
      db_.AddRow(r_, {key == 5 ? Value::Null() : Value::Int(key),
                      Value::Int(i)});
    }
    for (int i = 0; i < 11; ++i) {
      const int key = i % 5;
      db_.AddRow(s_, {key == 3 ? Value::Null() : Value::Int(key),
                      Value::Int(100 + i)});
    }
  }

  ExprPtr LeafR() const { return Expr::Leaf(r_, db_); }
  ExprPtr LeafS() const { return Expr::Leaf(s_, db_); }

  std::vector<ExprPtr> SpineShapes() const {
    return {
        LeafR(),
        Expr::Restrict(LeafR(), CmpLit(CmpOp::kGe, b_, Value::Int(10))),
        Expr::Project(LeafR(), {a_}, /*dedup=*/false),
        Expr::Join(LeafR(), LeafS(), EqCols(a_, c_)),
        Expr::Join(LeafR(), LeafS(), CmpCols(CmpOp::kLt, a_, c_)),
        Expr::OuterJoin(LeafR(), LeafS(), EqCols(a_, c_),
                        /*preserves_left=*/true),
        Expr::OuterJoin(LeafR(), LeafS(), EqCols(a_, c_),
                        /*preserves_left=*/false),
        Expr::Antijoin(LeafR(), LeafS(), EqCols(a_, c_), /*keeps_left=*/true),
        Expr::Semijoin(LeafR(), LeafS(), EqCols(a_, c_), /*keeps_left=*/true),
        Expr::Goj(LeafR(), LeafS(), EqCols(a_, c_), AttrSet::Of({a_, b_})),
        // Multi-operator spine: filter, hash join, then project.
        Expr::Project(
            Expr::Restrict(Expr::Join(LeafR(), LeafS(), EqCols(a_, c_)),
                           CmpLit(CmpOp::kGe, d_, Value::Int(100))),
            {a_, d_}, /*dedup=*/false),
        // Serial-root shapes: dedup project and union over parallel
        // children.
        Expr::Project(LeafR(), {a_}, /*dedup=*/true),
        Expr::Union(Expr::Project(LeafR(), {a_}, /*dedup=*/false),
                    Expr::Project(LeafS(), {c_}, /*dedup=*/false)),
    };
  }

  Database db_;
  RelId r_, s_;
  AttrId a_, b_, c_, d_;
};

TEST_F(ParallelEquivTest, EveryShapeAgreesAtEveryWorkerCount) {
  for (const ExprPtr& expr : SpineShapes()) {
    for (int threads : {2, 4, 8}) {
      for (size_t morsel_rows : {size_t{1}, size_t{5}}) {
        ExpectParallelMatchesSerial(expr, db_, threads, morsel_rows);
      }
    }
  }
}

TEST_F(ParallelEquivTest, NestedLoopAlgoAgrees) {
  for (const ExprPtr& expr : SpineShapes()) {
    ExpectParallelMatchesSerial(expr, db_, 4, 3, JoinAlgo::kNestedLoop);
  }
}

TEST_F(ParallelEquivTest, ThreadsOneIsByteIdentical) {
  for (const ExprPtr& expr : SpineShapes()) {
    BatchIteratorPtr serial = BuildBatchIterator(expr, db_);
    ParallelOptions par;  // threads = 1
    BatchIteratorPtr parallel = BuildParallelBatchIterator(expr, db_, par);
    // Same physical plan: identical row order, not just identical bags.
    EXPECT_EQ(CanonicalString(DrainBatches(parallel.get())),
              CanonicalString(DrainBatches(serial.get())))
        << expr->ToString();
  }
}

TEST_F(ParallelEquivTest, EmptyDriverRelation) {
  Database db;
  RelId r = *db.AddRelation("R", {"a"});
  RelId s = *db.AddRelation("S", {"c"});
  AttrId a = db.Attr("R", "a");
  AttrId c = db.Attr("S", "c");
  db.AddRow(s, {Value::Int(1)});
  for (int threads : {2, 8}) {
    ExpectParallelMatchesSerial(Expr::Leaf(r, db), db, threads, 4);
    ExpectParallelMatchesSerial(
        Expr::Join(Expr::Leaf(r, db), Expr::Leaf(s, db), EqCols(a, c)), db,
        threads, 4);
    ExpectParallelMatchesSerial(
        Expr::OuterJoin(Expr::Leaf(r, db), Expr::Leaf(s, db), EqCols(a, c),
                        /*preserves_left=*/true),
        db, threads, 4);
  }
}

// The novel piece: eq. 14's padding term π[S](L) − π[S](JN) is computed
// from per-worker partial views and must come out exactly once however
// the unmatched left rows scatter across morsels.
TEST_F(ParallelEquivTest, GojPadsEmittedExactlyOnceAcrossPartitions) {
  // Distinct-projection padding: S = {a} only, so duplicate unmatched
  // a-values collapse to ONE pad row even when different workers saw
  // them.
  ExprPtr goj = Expr::Goj(LeafR(), LeafS(), EqCols(a_, c_),
                          AttrSet::Of({a_}));
  for (int threads : {2, 3, 8}) {
    ExpectParallelMatchesSerial(goj, db_, threads, 1);
  }

  // Direct count check: every unmatched DISTINCT π[S] value pads once.
  ParallelOptions par;
  par.threads = 4;
  par.morsel_rows = 1;
  BatchIteratorPtr root = BuildParallelBatchIterator(goj, db_, par);
  Relation out = DrainBatches(root.get());
  BatchIteratorPtr serial = BuildBatchIterator(goj, db_);
  Relation serial_out = DrainBatches(serial.get());
  EXPECT_EQ(out.NumRows(), serial_out.NumRows());
  EXPECT_TRUE(BagEquals(out, serial_out));
}

// --- control propagation ----------------------------------------------------

TEST_F(ParallelEquivTest, CancellationStopsWorkers) {
  ExprPtr expr = Expr::Join(LeafR(), LeafS(), EqCols(a_, c_));
  ParallelOptions par;
  par.threads = 4;
  par.morsel_rows = 1;
  BatchIteratorPtr root = BuildParallelBatchIterator(expr, db_, par);
  ExecControl control;
  root->SetControl(&control);
  control.RequestCancel();
  Result<Relation> result = DrainChecked(root.get(), &control);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(ParallelEquivTest, ExpiredDeadlineSurfaces) {
  ExprPtr expr = Expr::Join(LeafR(), LeafS(), EqCols(a_, c_));
  ParallelOptions par;
  par.threads = 4;
  BatchIteratorPtr root = BuildParallelBatchIterator(expr, db_, par);
  ExecControl control;
  control.set_deadline(std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1));
  root->SetControl(&control);
  Result<Relation> result = DrainChecked(root.get(), &control);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// --- exchange reuse ---------------------------------------------------------

TEST_F(ParallelEquivTest, ExchangeReopensCleanly) {
  ExprPtr expr = Expr::OuterJoin(LeafR(), LeafS(), EqCols(a_, c_),
                                 /*preserves_left=*/true);
  ParallelOptions par;
  par.threads = 3;
  par.morsel_rows = 2;
  BatchIteratorPtr root = BuildParallelBatchIterator(expr, db_, par);
  Relation first = DrainBatches(root.get());
  Relation second = DrainBatches(root.get());
  EXPECT_TRUE(BagEquals(first, second));
}

// --- EXPLAIN ANALYZE --------------------------------------------------------

TEST_F(ParallelEquivTest, ExplainAnalyzeShowsExchangeWithSerialTotals) {
  ExprPtr expr = Expr::Join(LeafR(), LeafS(), EqCols(a_, c_));
  ExplainAnalyzeResult serial =
      ExplainAnalyze(expr, db_, JoinAlgo::kAuto, ExecEngine::kBatch,
                     /*threads=*/1);
  ExplainAnalyzeResult parallel =
      ExplainAnalyze(expr, db_, JoinAlgo::kAuto, ExecEngine::kBatch,
                     /*threads=*/4);
  EXPECT_EQ(serial.text.find("Exchange"), std::string::npos) << serial.text;
  EXPECT_NE(parallel.text.find("Exchange"), std::string::npos)
      << parallel.text;
  EXPECT_TRUE(BagEquals(serial.result, parallel.result));
  ExpectCountersEq(parallel.totals, serial.totals, "explain-analyze totals");
  EXPECT_EQ(parallel.base_tuples_read, serial.base_tuples_read);
}

// --- facade -----------------------------------------------------------------

TEST(ParallelFacadeTest, RunQueryWithThreadsMatchesSerial) {
  NestedDb db = MakeCompanyNestedDb();
  const std::string query =
      "Select All From EMPLOYEE*ChildName, DEPARTMENT "
      "Where EMPLOYEE.D# = DEPARTMENT.D#";
  Result<QueryRunResult> serial = RunQuery(db, query);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  Result<QueryRunResult> parallel =
      RunQuery(db, query, RunOptions().WithThreads(4));
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_TRUE(BagEquals(serial->relation, parallel->relation));
  const ExecStats s = SumPipelineStats(serial->plan_stats);
  const ExecStats p = SumPipelineStats(parallel->plan_stats);
  ExpectCountersEq(p, s, "facade totals");
}

}  // namespace
}  // namespace fro
