// Batch-engine equivalence suite: the batch executor must be
// result-transparent — byte-identical results (canonical form) and
// identical ExecStats counters — against BOTH the tuple-at-a-time
// executor and the materializing evaluator, operator by operator, on
// the paper's example databases, null-heavy outerjoin inputs, empty
// relations, and batch-boundary input sizes (0, 1, capacity,
// capacity+1). Also covers the engine-bridging adapters, the
// Status-carrying DrainChecked surface (kCancelled /
// kDeadlineExceeded), and RunQuery's engine/deadline options.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "exec/batch_operators.h"
#include "exec/build.h"
#include "exec/operators.h"
#include "exec/stats_view.h"
#include "lang/lang.h"
#include "testing/datagen.h"
#include "testing/graphgen.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

// Counter equality ignoring wall-clock fields (the evaluator keeps none).
void ExpectCountersEq(const ExecStats& got, const ExecStats& want,
                      const std::string& context) {
  EXPECT_EQ(got.left_reads, want.left_reads) << context;
  EXPECT_EQ(got.right_reads, want.right_reads) << context;
  EXPECT_EQ(got.emitted, want.emitted) << context;
  EXPECT_EQ(got.probes, want.probes) << context;
  EXPECT_EQ(got.predicate_evals, want.predicate_evals) << context;
}

// Runs `expr` through all three engines — evaluator, tuple pipeline,
// batch pipeline (at `capacity` tuples per batch) — and asserts results
// byte-identical in canonical form and pipeline counter totals equal.
void ExpectAllEnginesAgree(const ExprPtr& expr, const Database& db,
                           JoinAlgo algo, size_t capacity) {
  const std::string context =
      expr->ToString() + " cap=" + std::to_string(capacity);

  EvalOptions eval_options;
  eval_options.algo = algo;
  EvalStats eval_stats;
  Relation reference = Eval(expr, db, eval_options, &eval_stats);

  IteratorPtr tuple_root = BuildIterator(expr, db, algo);
  Relation tuple_out = Drain(tuple_root.get());

  BatchIteratorPtr batch_root = BuildBatchIterator(expr, db, algo, capacity);
  Relation batch_out = DrainBatches(batch_root.get());

  // Byte-identical: canonical renderings match exactly.
  EXPECT_EQ(CanonicalString(batch_out), CanonicalString(tuple_out)) << context;
  EXPECT_TRUE(BagEquals(reference, batch_out)) << context;

  const ExecStats tuple_totals = CollectPipelineStats(tuple_root.get());
  const ExecStats batch_totals = CollectPipelineStats(batch_root.get());
  ExpectCountersEq(batch_totals, tuple_totals, context + " [batch vs tuple]");
  ExpectCountersEq(batch_totals, eval_stats.totals,
                   context + " [batch vs eval]");
}

void ExpectAllEnginesAgreeAllCapacities(const ExprPtr& expr,
                                        const Database& db, JoinAlgo algo) {
  for (size_t capacity : {size_t{1}, size_t{3}, TupleBatch::kDefaultCapacity}) {
    ExpectAllEnginesAgree(expr, db, algo, capacity);
  }
}

// --- TupleBatch container semantics -----------------------------------

TEST(TupleBatchTest, AppendSizeAndSelection) {
  TupleBatch batch(4);
  EXPECT_TRUE(batch.empty());
  EXPECT_FALSE(batch.full());
  for (int i = 0; i < 4; ++i) {
    batch.Append(Tuple({Value::Int(i)}));
  }
  EXPECT_TRUE(batch.full());
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.NumRows(), 4u);

  // Keep even values only: selection narrows without moving tuples.
  batch.NarrowSelection([](const Tuple& row, uint32_t) {
    return row.value(0).AsInt() % 2 == 0;
  });
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.NumRows(), 4u);  // raw rows untouched
  EXPECT_EQ(batch.selected(0).value(0).AsInt(), 0);
  EXPECT_EQ(batch.selected(1).value(0).AsInt(), 2);

  // Narrowing composes: a second predicate sees only live rows.
  batch.NarrowSelection([](const Tuple& row, uint32_t) {
    return row.value(0).AsInt() > 0;
  });
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.selected(0).value(0).AsInt(), 2);
}

TEST(TupleBatchTest, PeekSlotCommitsOnlyOnRequest) {
  TupleBatch batch(2);
  Tuple* slot = batch.PeekSlot();
  slot->AssignFrom(Tuple({Value::Int(7)}));
  EXPECT_EQ(batch.size(), 0u);  // peeked, not committed: row is dead
  batch.CommitSlot();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.selected(0).value(0).AsInt(), 7);

  // A peeked-but-uncommitted candidate is simply overwritten next time.
  batch.PeekSlot()->AssignFrom(Tuple({Value::Int(8)}));
  batch.PeekSlot()->AssignFrom(Tuple({Value::Int(9)}));
  batch.CommitSlot();
  EXPECT_EQ(batch.selected(1).value(0).AsInt(), 9);
}

TEST(TupleBatchTest, ClearRetainsSlotsAndDropsSelection) {
  TupleBatch batch(3);
  batch.Append(Tuple({Value::Int(1), Value::Int(2)}));
  batch.NarrowSelection([](const Tuple&, uint32_t) { return false; });
  EXPECT_TRUE(batch.empty());
  batch.Clear();
  EXPECT_FALSE(batch.sel_active());
  EXPECT_EQ(batch.NumRows(), 0u);
  // Slots survive Clear(): refilling reuses them (same address).
  Tuple* slot = batch.PeekSlot();
  EXPECT_EQ(slot, &batch.mutable_row(0));
  slot->AssignFrom(Tuple({Value::Int(3), Value::Int(4)}));
  batch.CommitSlot();
  EXPECT_EQ(batch.size(), 1u);
}

// --- Operator-by-operator equivalence ---------------------------------

class BatchEquivTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = *db_.AddRelation("R", {"a", "b"});
    s_ = *db_.AddRelation("S", {"c", "d"});
    a_ = db_.Attr("R", "a");
    b_ = db_.Attr("R", "b");
    c_ = db_.Attr("S", "c");
    d_ = db_.Attr("S", "d");
    db_.AddRow(r_, {Value::Int(1), Value::Int(10)});
    db_.AddRow(r_, {Value::Int(2), Value::Int(20)});
    db_.AddRow(r_, {Value::Int(2), Value::Int(21)});
    db_.AddRow(r_, {Value::Null(), Value::Int(30)});
    db_.AddRow(s_, {Value::Int(1), Value::Int(100)});
    db_.AddRow(s_, {Value::Int(1), Value::Int(101)});
    db_.AddRow(s_, {Value::Int(3), Value::Int(102)});
    db_.AddRow(s_, {Value::Null(), Value::Int(103)});
  }

  ExprPtr LeafR() const { return Expr::Leaf(r_, db_); }
  ExprPtr LeafS() const { return Expr::Leaf(s_, db_); }

  std::vector<ExprPtr> AllOperatorKinds() const {
    return {
        Expr::Join(LeafR(), LeafS(), EqCols(a_, c_)),
        Expr::OuterJoin(LeafR(), LeafS(), EqCols(a_, c_),
                        /*preserves_left=*/true),
        Expr::OuterJoin(LeafR(), LeafS(), EqCols(a_, c_),
                        /*preserves_left=*/false),
        Expr::Antijoin(LeafR(), LeafS(), EqCols(a_, c_), /*keeps_left=*/true),
        Expr::Antijoin(LeafR(), LeafS(), EqCols(a_, c_), /*keeps_left=*/false),
        Expr::Semijoin(LeafR(), LeafS(), EqCols(a_, c_), /*keeps_left=*/true),
        Expr::Semijoin(LeafR(), LeafS(), EqCols(a_, c_), /*keeps_left=*/false),
        Expr::Goj(LeafR(), LeafS(), EqCols(a_, c_), AttrSet::Of({a_, b_})),
        Expr::Restrict(LeafR(), CmpLit(CmpOp::kGe, b_, Value::Int(20))),
        Expr::Project(LeafR(), {a_}, /*dedup=*/false),
        Expr::Project(LeafR(), {a_}, /*dedup=*/true),
        Expr::Union(LeafR(), LeafS()),
        // A non-equi predicate forces the nested-loop path even under kAuto.
        Expr::Join(LeafR(), LeafS(), CmpCols(CmpOp::kLt, a_, c_)),
    };
  }

  Database db_;
  RelId r_, s_;
  AttrId a_, b_, c_, d_;
};

TEST_F(BatchEquivTest, EveryOperatorKindAgreesAcrossEngines) {
  for (const ExprPtr& expr : AllOperatorKinds()) {
    for (JoinAlgo algo : {JoinAlgo::kAuto, JoinAlgo::kNestedLoop}) {
      ExpectAllEnginesAgreeAllCapacities(expr, db_, algo);
    }
  }
}

TEST_F(BatchEquivTest, CompositePipelineAgrees) {
  ExprPtr expr = Expr::Project(
      Expr::Restrict(Expr::Join(LeafR(), LeafS(), EqCols(a_, c_)),
                     CmpLit(CmpOp::kGe, d_, Value::Int(100))),
      {a_, d_}, /*dedup=*/true);
  for (JoinAlgo algo : {JoinAlgo::kAuto, JoinAlgo::kNestedLoop}) {
    ExpectAllEnginesAgreeAllCapacities(expr, db_, algo);
  }
}

// Null join keys on both sides: the SQL three-valued-logic corners that
// distinguish outerjoin, antijoin, and semijoin.
TEST(BatchNullKeyTest, NullHeavyOuterAntiSemiAgree) {
  Database db;
  RelId r = *db.AddRelation("R", {"a"});
  RelId s = *db.AddRelation("S", {"c"});
  AttrId a = db.Attr("R", "a");
  AttrId c = db.Attr("S", "c");
  db.AddRow(r, {Value::Int(1)});
  db.AddRow(r, {Value::Null()});
  db.AddRow(r, {Value::Int(2)});
  db.AddRow(r, {Value::Null()});
  db.AddRow(s, {Value::Int(1)});
  db.AddRow(s, {Value::Null()});
  db.AddRow(s, {Value::Null()});

  auto leaf_r = [&] { return Expr::Leaf(r, db); };
  auto leaf_s = [&] { return Expr::Leaf(s, db); };
  std::vector<ExprPtr> exprs;
  for (bool flag : {true, false}) {
    exprs.push_back(Expr::OuterJoin(leaf_r(), leaf_s(), EqCols(a, c), flag));
    exprs.push_back(Expr::Antijoin(leaf_r(), leaf_s(), EqCols(a, c), flag));
    exprs.push_back(Expr::Semijoin(leaf_r(), leaf_s(), EqCols(a, c), flag));
  }
  for (const ExprPtr& expr : exprs) {
    for (JoinAlgo algo : {JoinAlgo::kAuto, JoinAlgo::kNestedLoop}) {
      ExpectAllEnginesAgreeAllCapacities(expr, db, algo);
    }
  }
}

// Empty inputs on either or both sides of every join mode.
TEST(BatchEmptyInputTest, EmptyRelationsAgree) {
  for (bool left_empty : {true, false}) {
    for (bool right_empty : {true, false}) {
      Database db;
      RelId r = *db.AddRelation("R", {"a"});
      RelId s = *db.AddRelation("S", {"c"});
      AttrId a = db.Attr("R", "a");
      AttrId c = db.Attr("S", "c");
      if (!left_empty) {
        db.AddRow(r, {Value::Int(1)});
        db.AddRow(r, {Value::Int(2)});
      }
      if (!right_empty) {
        db.AddRow(s, {Value::Int(1)});
      }
      std::vector<ExprPtr> exprs = {
          Expr::Leaf(r, db),
          Expr::Restrict(Expr::Leaf(r, db),
                         CmpLit(CmpOp::kGe, a, Value::Int(2))),
          Expr::Project(Expr::Leaf(r, db), {a}, /*dedup=*/true),
          Expr::Union(Expr::Leaf(r, db), Expr::Leaf(s, db)),
          Expr::Join(Expr::Leaf(r, db), Expr::Leaf(s, db), EqCols(a, c)),
          Expr::OuterJoin(Expr::Leaf(r, db), Expr::Leaf(s, db), EqCols(a, c),
                          /*preserves_left=*/true),
          Expr::Antijoin(Expr::Leaf(r, db), Expr::Leaf(s, db), EqCols(a, c),
                         /*keeps_left=*/true),
          Expr::Semijoin(Expr::Leaf(r, db), Expr::Leaf(s, db), EqCols(a, c),
                         /*keeps_left=*/true),
          Expr::Goj(Expr::Leaf(r, db), Expr::Leaf(s, db), EqCols(a, c),
                    AttrSet::Of({a})),
      };
      for (const ExprPtr& expr : exprs) {
        for (JoinAlgo algo : {JoinAlgo::kAuto, JoinAlgo::kNestedLoop}) {
          ExpectAllEnginesAgreeAllCapacities(expr, db, algo);
        }
      }
    }
  }
}

// Input sizes straddling the batch boundary: 0, 1, capacity, capacity+1
// rows through scan -> filter -> hash join at capacity 4, so every
// resume point (mid-left-row, unmatched-left epilogue) is exercised.
TEST(BatchBoundaryTest, SizesAroundCapacityAgree) {
  constexpr size_t kCapacity = 4;
  for (int rows : {0, 1, 4, 5}) {
    Database db;
    RelId r = *db.AddRelation("R", {"a", "b"});
    RelId s = *db.AddRelation("S", {"c"});
    AttrId a = db.Attr("R", "a");
    AttrId b = db.Attr("R", "b");
    AttrId c = db.Attr("S", "c");
    for (int i = 0; i < rows; ++i) {
      db.AddRow(r, {Value::Int(i % 3), Value::Int(i)});
    }
    // Build side fans out: two matches per key 0/1, none for key 2.
    db.AddRow(s, {Value::Int(0)});
    db.AddRow(s, {Value::Int(0)});
    db.AddRow(s, {Value::Int(1)});
    db.AddRow(s, {Value::Int(1)});

    ExprPtr expr = Expr::Join(
        Expr::Restrict(Expr::Leaf(r, db),
                       CmpLit(CmpOp::kGe, b, Value::Int(0))),
        Expr::Leaf(s, db), EqCols(a, c));
    ExprPtr outer = Expr::OuterJoin(Expr::Leaf(r, db), Expr::Leaf(s, db),
                                    EqCols(a, c), /*preserves_left=*/true);
    for (JoinAlgo algo : {JoinAlgo::kAuto, JoinAlgo::kNestedLoop}) {
      ExpectAllEnginesAgree(expr, db, algo, kCapacity);
      ExpectAllEnginesAgree(outer, db, algo, kCapacity);
    }
  }
}

// The paper's Example 1 and DEPT/EMP databases through both engines.
TEST(BatchExampleDatabasesTest, Example1OrdersAgree) {
  std::unique_ptr<Database> db = MakeExample1Database(100);
  RelId r1 = db->Rel("R1");
  RelId r2 = db->Rel("R2");
  RelId r3 = db->Rel("R3");
  AttrId r1k = db->Attr("R1", "k");
  AttrId r2k = db->Attr("R2", "k");
  AttrId r2fk = db->Attr("R2", "fk");
  AttrId r3k = db->Attr("R3", "k");

  ExprPtr naive = Expr::OuterJoin(
      Expr::Leaf(r1, *db),
      Expr::OuterJoin(Expr::Leaf(r2, *db), Expr::Leaf(r3, *db),
                      EqCols(r2fk, r3k), /*preserves_left=*/true),
      EqCols(r1k, r2k), /*preserves_left=*/true);
  ExprPtr reordered = Expr::OuterJoin(
      Expr::OuterJoin(Expr::Leaf(r1, *db), Expr::Leaf(r2, *db),
                      EqCols(r1k, r2k), /*preserves_left=*/true),
      Expr::Leaf(r3, *db), EqCols(r2fk, r3k), /*preserves_left=*/true);

  for (const ExprPtr& expr : {naive, reordered}) {
    ExpectAllEnginesAgreeAllCapacities(expr, *db, JoinAlgo::kAuto);
  }
  EXPECT_TRUE(BagEquals(ExecuteBatched(naive, *db),
                        ExecuteBatched(reordered, *db)));
}

TEST(BatchExampleDatabasesTest, DeptEmpOuterjoinAgrees) {
  std::unique_ptr<Database> db = MakeDeptEmpDatabase();
  RelId dept = db->Rel("DEPT");
  RelId emp = db->Rel("EMP");
  AttrId dept_dno = db->Attr("DEPT", "dno");
  AttrId emp_dno = db->Attr("EMP", "dno");
  ExprPtr expr =
      Expr::OuterJoin(Expr::Leaf(dept, *db), Expr::Leaf(emp, *db),
                      EqCols(dept_dno, emp_dno), /*preserves_left=*/true);
  for (JoinAlgo algo : {JoinAlgo::kAuto, JoinAlgo::kNestedLoop}) {
    ExpectAllEnginesAgreeAllCapacities(expr, *db, algo);
  }
}

// Example 2: the two bracketings of R1 -> (R2 - R3) genuinely differ
// (that is the paper's counterexample) — but *within* each bracketing,
// every engine must produce the same rows. Engine equivalence has to
// hold exactly where plan equivalence fails.
TEST(BatchExampleDatabasesTest, Example2BracketingsAgreePerTree) {
  Database db;
  RelId r1 = *db.AddRelation("R1", {"a"});
  RelId r2 = *db.AddRelation("R2", {"b"});
  RelId r3 = *db.AddRelation("R3", {"c"});
  AttrId a = db.Attr("R1", "a");
  AttrId b = db.Attr("R2", "b");
  AttrId c = db.Attr("R3", "c");
  db.AddRow(r1, {Value::Int(1)});
  db.AddRow(r2, {Value::Int(1)});   // matches r1 on the outerjoin pred
  db.AddRow(r3, {Value::Int(99)});  // does NOT match r2 on the join pred
  PredicatePtr poj = EqCols(a, b);
  PredicatePtr pjn = EqCols(b, c);
  ExprPtr oj_of_join = Expr::OuterJoin(
      Expr::Leaf(r1, db),
      Expr::Join(Expr::Leaf(r2, db), Expr::Leaf(r3, db), pjn), poj,
      /*preserves_left=*/true);
  ExprPtr join_of_oj = Expr::Join(
      Expr::OuterJoin(Expr::Leaf(r1, db), Expr::Leaf(r2, db), poj,
                      /*preserves_left=*/true),
      Expr::Leaf(r3, db), pjn);
  for (JoinAlgo algo : {JoinAlgo::kAuto, JoinAlgo::kNestedLoop}) {
    ExpectAllEnginesAgreeAllCapacities(oj_of_join, db, algo);
    ExpectAllEnginesAgreeAllCapacities(join_of_oj, db, algo);
  }
  // The counterexample itself still holds through the batch engine.
  EXPECT_EQ(ExecuteBatched(oj_of_join, db).NumRows(), 1u);
  EXPECT_EQ(ExecuteBatched(join_of_oj, db).NumRows(), 0u);
}

// Example 3: the non-strong predicate (… OR … IS NULL) that breaks
// identity 12. Null-supplied tuples satisfying a predicate via the
// IS NULL disjunct are exactly the case batched predicate evaluation
// must not get wrong.
TEST(BatchExampleDatabasesTest, Example3NonstrongPredicateAgreesPerTree) {
  Database db;
  RelId ra = *db.AddRelation("A", {"attr1"});
  RelId rb = *db.AddRelation("B", {"attr1", "attr2"});
  RelId rc = *db.AddRelation("C", {"attr1"});
  AttrId a1 = db.Attr("A", "attr1");
  AttrId b1 = db.Attr("B", "attr1");
  AttrId b2 = db.Attr("B", "attr2");
  AttrId c1 = db.Attr("C", "attr1");
  db.AddRow(ra, {Value::Int(0)});
  db.AddRow(rb, {Value::Int(1), Value::Null()});  // (b, -): b != a
  db.AddRow(rc, {Value::Int(2)});
  PredicatePtr pab = EqCols(a1, b1);
  PredicatePtr pbc = Predicate::Or(
      {EqCols(b2, c1), Predicate::IsNull(Operand::Column(b2))});
  ExprPtr left_assoc = Expr::OuterJoin(
      Expr::OuterJoin(Expr::Leaf(ra, db), Expr::Leaf(rb, db), pab,
                      /*preserves_left=*/true),
      Expr::Leaf(rc, db), pbc, /*preserves_left=*/true);
  ExprPtr right_assoc = Expr::OuterJoin(
      Expr::Leaf(ra, db),
      Expr::OuterJoin(Expr::Leaf(rb, db), Expr::Leaf(rc, db), pbc,
                      /*preserves_left=*/true),
      pab, /*preserves_left=*/true);
  for (JoinAlgo algo : {JoinAlgo::kAuto, JoinAlgo::kNestedLoop}) {
    ExpectAllEnginesAgreeAllCapacities(left_assoc, db, algo);
    ExpectAllEnginesAgreeAllCapacities(right_assoc, db, algo);
  }
  EXPECT_FALSE(BagEquals(ExecuteBatched(left_assoc, db),
                         ExecuteBatched(right_assoc, db)));
}

TEST(BatchPropertyTest, RandomQueriesAgreeAcrossEngines) {
  Rng rng(8804);
  for (int trial = 0; trial < 25; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(3));
    options.rows.null_prob = 0.25;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
    ASSERT_NE(tree, nullptr);
    for (JoinAlgo algo : {JoinAlgo::kAuto, JoinAlgo::kNestedLoop}) {
      const size_t capacity = 1 + rng.Uniform(5);
      ExpectAllEnginesAgree(tree, *q.db, algo, capacity);
      ExpectAllEnginesAgree(tree, *q.db, algo, TupleBatch::kDefaultCapacity);
    }
  }
}

// --- Adapters: tuple subtrees under batch pipelines and vice versa ----

TEST_F(BatchEquivTest, TupleBatchAdapterBridgesTupleSubtree) {
  ExprPtr join = Expr::Join(LeafR(), LeafS(), EqCols(a_, c_));
  Relation direct = ExecutePipelined(join, db_);

  // Wrap the whole tuple plan and narrow it with a batch filter on top.
  PredicatePtr pred = CmpLit(CmpOp::kGe, b_, Value::Int(20));
  auto wrapped = std::make_unique<TupleBatchAdapter>(
      BuildIterator(join, db_, JoinAlgo::kAuto));
  BatchFilterIterator filter(std::move(wrapped), pred);

  Relation out = DrainBatches(&filter);
  ExprPtr filtered = Expr::Restrict(join, pred);
  EXPECT_EQ(CanonicalString(out),
            CanonicalString(ExecutePipelined(filtered, db_)));

  // Stats rollup reaches through the adapter into the tuple subtree:
  // the wrapped join's reads are visible in the batch-side totals.
  ExecStats totals = CollectPipelineStats(&filter);
  EXPECT_GT(totals.left_reads, 0u);
  EXPECT_GT(totals.probes, 0u);

  // The snapshot marks the adapter node itself as a passthrough, so its
  // re-emitted rows are not double-counted by SumPipelineStats.
  PlanOpStats snapshot = SnapshotPlanStats(&filter);
  ASSERT_EQ(snapshot.children.size(), 1u);
  EXPECT_TRUE(snapshot.children[0].passthrough);
  EXPECT_EQ(direct.NumRows(), snapshot.children[0].stats.emitted);
}

TEST_F(BatchEquivTest, BatchTupleAdapterBridgesBatchSubtree) {
  ExprPtr join = Expr::Join(LeafR(), LeafS(), EqCols(a_, c_));
  Relation direct = ExecutePipelined(join, db_);

  for (size_t capacity : {size_t{1}, size_t{2}, TupleBatch::kDefaultCapacity}) {
    BatchTupleAdapter adapter(
        BuildBatchIterator(join, db_, JoinAlgo::kAuto, capacity), capacity);
    Relation out = Drain(&adapter);
    EXPECT_EQ(CanonicalString(out), CanonicalString(direct))
        << "cap=" << capacity;

    // The adapter is the snapshot root and is marked passthrough; its
    // child is the wrapped batch join. Passthrough emission is excluded
    // from the rollup, so totals show the join's output once, not twice.
    PlanOpStats snapshot = SnapshotPlanStats(&adapter);
    EXPECT_TRUE(snapshot.passthrough);
    ASSERT_EQ(snapshot.children.size(), 1u);
    EXPECT_EQ(snapshot.children[0].stats.emitted, direct.NumRows());
    EXPECT_EQ(SumPipelineStats(snapshot).emitted, direct.NumRows());
  }
}

TEST_F(BatchEquivTest, AdapterRoundTripIsIdentity) {
  ExprPtr expr = Expr::Restrict(LeafR(), CmpLit(CmpOp::kGe, b_, Value::Int(20)));
  // batch -> tuple -> batch sandwich.
  auto inner = std::make_unique<BatchTupleAdapter>(
      BuildBatchIterator(expr, db_, JoinAlgo::kAuto, 2), 2);
  TupleBatchAdapter sandwich(std::move(inner));
  EXPECT_EQ(CanonicalString(DrainBatches(&sandwich)),
            CanonicalString(ExecutePipelined(expr, db_)));
}

// --- DrainChecked: the Status-carrying execution surface --------------

TEST_F(BatchEquivTest, DrainCheckedSurfacesCancellation) {
  ExprPtr expr = Expr::Join(LeafR(), LeafS(), EqCols(a_, c_));
  {
    ExecControl control;
    control.RequestCancel();
    IteratorPtr root = BuildIterator(expr, db_, JoinAlgo::kAuto);
    root->SetControl(&control);
    Result<Relation> result = DrainChecked(root.get(), &control);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  {
    ExecControl control;
    control.RequestCancel();
    BatchIteratorPtr root = BuildBatchIterator(expr, db_, JoinAlgo::kAuto);
    root->SetControl(&control);
    Result<Relation> result = DrainChecked(root.get(), &control);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
}

TEST_F(BatchEquivTest, DrainCheckedSurfacesDeadline) {
  ExprPtr expr = Expr::Join(LeafR(), LeafS(), EqCols(a_, c_));
  {
    ExecControl control;
    control.set_deadline(std::chrono::steady_clock::now());  // already due
    IteratorPtr root = BuildIterator(expr, db_, JoinAlgo::kAuto);
    root->SetControl(&control);
    Result<Relation> result = DrainChecked(root.get(), &control);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
  {
    ExecControl control;
    control.set_deadline(std::chrono::steady_clock::now());
    BatchIteratorPtr root = BuildBatchIterator(expr, db_, JoinAlgo::kAuto);
    root->SetControl(&control);
    Result<Relation> result = DrainChecked(root.get(), &control);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST_F(BatchEquivTest, DrainCheckedWithoutControlMatchesDrain) {
  ExprPtr expr = Expr::Join(LeafR(), LeafS(), EqCols(a_, c_));
  {
    IteratorPtr root = BuildIterator(expr, db_, JoinAlgo::kAuto);
    Result<Relation> checked = DrainChecked(root.get(), nullptr);
    ASSERT_TRUE(checked.ok());
    EXPECT_EQ(CanonicalString(*checked),
              CanonicalString(ExecutePipelined(expr, db_)));
  }
  {
    BatchIteratorPtr root = BuildBatchIterator(expr, db_, JoinAlgo::kAuto);
    Result<Relation> checked = DrainChecked(root.get(), nullptr);
    ASSERT_TRUE(checked.ok());
    EXPECT_EQ(CanonicalString(*checked),
              CanonicalString(ExecutePipelined(expr, db_)));
  }
}

// Adapters forward the control into the subtree they wrap: a cancelled
// control stops a tuple pipeline running under a batch root.
TEST_F(BatchEquivTest, AdapterForwardsControlToWrappedSubtree) {
  ExprPtr expr = Expr::Join(LeafR(), LeafS(), EqCols(a_, c_));
  ExecControl control;
  control.RequestCancel();
  TupleBatchAdapter adapter(BuildIterator(expr, db_, JoinAlgo::kAuto));
  adapter.SetControl(&control);
  Result<Relation> result = DrainChecked(&adapter, &control);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// --- RunQuery: engine choice and deadline through RunOptions ----------

TEST(BatchRunQueryTest, EnginesAgreeThroughTheFacade) {
  NestedDb db = MakeCompanyNestedDb();
  const std::string query =
      "Select All From EMPLOYEE*ChildName, DEPARTMENT "
      "Where EMPLOYEE.D# = DEPARTMENT.D#";
  Result<QueryRunResult> batch =
      RunQuery(db, query, RunOptions().WithEngine(ExecEngine::kBatch));
  Result<QueryRunResult> tuple =
      RunQuery(db, query, RunOptions().WithEngine(ExecEngine::kTuple));
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(tuple.ok()) << tuple.status().ToString();
  EXPECT_EQ(batch->engine, ExecEngine::kBatch);
  EXPECT_EQ(tuple->engine, ExecEngine::kTuple);
  EXPECT_EQ(CanonicalString(batch->relation), CanonicalString(tuple->relation));
  ExpectCountersEq(SumPipelineStats(batch->plan_stats),
                   SumPipelineStats(tuple->plan_stats), query);
}

TEST(BatchRunQueryTest, ExpiredDeadlineSurfacesThroughRunQuery) {
  NestedDb db = MakeScaledCompanyNestedDb(50);
  const std::string query =
      "Select All From EMPLOYEE e1, EMPLOYEE e2 Where e1.Rank = e2.Rank";
  for (ExecEngine engine : {ExecEngine::kTuple, ExecEngine::kBatch}) {
    Result<QueryRunResult> run =
        RunQuery(db, query,
                 RunOptions().WithEngine(engine).WithDeadline(
                     std::chrono::milliseconds(0)));
    ASSERT_FALSE(run.ok()) << ExecEngineName(engine);
    EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded)
        << ExecEngineName(engine);
  }
}

TEST(BatchRunQueryTest, CancelledControlSurfacesThroughRunQuery) {
  NestedDb db = MakeCompanyNestedDb();
  ExecControl control;
  control.RequestCancel();
  Result<QueryRunResult> run =
      RunQuery(db, "Select All From EMPLOYEE",
               RunOptions().WithControl(&control));
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace fro
