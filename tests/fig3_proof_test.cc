// Figure 3 of the paper, replayed line by line: the algebraic proof of
// identity 12 chains equations 10, 1, 2, 7, 4 — every intermediate
// expression is built explicitly and all are verified equal on random
// databases (with the strength precondition satisfied).
//
//   (X -> Y) -> Z
//     = (X -> Y) - Z  ∪  (X -> Y) |> Z                      (eqn 10)
//     = (X-Y ∪ X|>Y) - Z  ∪  (X-Y ∪ X|>Y) |> Z              (eqn 10)
//     = (X-Y)-Z ∪ (X|>Y)-Z ∪ ((X-Y) ∪ (X|>Y)) |> Z         (distribute 5)
//       — with (X|>Y)-Z = ∅ and ((X|>Y))|>Z = X|>Y by 8/9 (strength):
//     = X-(Y-Z) ∪ X-(Y|>Z) ∪ X|>Y                           (eqns 1, 2, 7)
//     = X-((Y-Z) ∪ (Y|>Z)) ∪ X|>Y                           (eqn 4)
//     = X-(Y->Z) ∪ X|>(Y->Z)                                (eqns 10, 7)
//     = X -> (Y -> Z)                                       (eqn 10)

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "relational/ops.h"
#include "testing/datagen.h"

namespace fro {
namespace {

struct Tri {
  std::unique_ptr<Database> db;
  ExprPtr x, y, z;
  AttrId yb;
  PredicatePtr pxy, pyz;
};

Tri MakeTri(Rng* rng) {
  Tri t;
  RandomRowsOptions rows;
  rows.rows_max = 5;
  rows.domain = 3;
  rows.null_prob = 0.2;
  t.db = MakeRandomDatabase(3, 2, rows, rng);
  t.x = Expr::Leaf(t.db->Rel("R0"), *t.db);
  t.y = Expr::Leaf(t.db->Rel("R1"), *t.db);
  t.z = Expr::Leaf(t.db->Rel("R2"), *t.db);
  t.yb = t.db->Attr("R1", "a1");
  t.pxy = EqCols(t.db->Attr("R0", "a0"), t.db->Attr("R1", "a0"));
  t.pyz = EqCols(t.yb, t.db->Attr("R2", "a0"));
  return t;
}

TEST(Fig3ProofTest, EveryLineOfTheProofEvaluatesEqual) {
  Rng rng(3101);
  for (int trial = 0; trial < 40; ++trial) {
    Tri t = MakeTri(&rng);
    // P_yz is strong w.r.t. Y — the proof's precondition.
    ASSERT_TRUE(t.pyz->IsStrongWrt(AttrSet::Of({t.yb})));

    ExprPtr xy_oj = Expr::OuterJoin(t.x, t.y, t.pxy);
    ExprPtr xy_jn = Expr::Join(t.x, t.y, t.pxy);
    ExprPtr xy_aj = Expr::Antijoin(t.x, t.y, t.pxy);

    // Line 0: the left-hand side.
    ExprPtr line0 = Expr::OuterJoin(xy_oj, t.z, t.pyz);

    // Line 1: expand the OUTER outerjoin by eqn 10.
    ExprPtr line1 = Expr::Union(Expr::Join(xy_oj, t.z, t.pyz),
                                Expr::Antijoin(xy_oj, t.z, t.pyz));

    // Line 2: expand the INNER outerjoin by eqn 10 inside both branches.
    ExprPtr xy_expanded = Expr::Union(xy_jn, xy_aj);
    ExprPtr line2 = Expr::Union(Expr::Join(xy_expanded, t.z, t.pyz),
                                Expr::Antijoin(xy_expanded, t.z, t.pyz));

    // Line 4 (the paper compresses 5/8/9/1/2 into one step; the dropped
    // (X|>Y)-Z term and the absorbed (X|>Y)|>Z = X|>Y need the padding
    // convention and are verified at the kernel level in
    // identities_test.cc): reassociate join and antijoin below X.
    ExprPtr line4 = Expr::Union(
        Expr::Union(Expr::Join(t.x, Expr::Join(t.y, t.z, t.pyz), t.pxy),
                    Expr::Join(t.x, Expr::Antijoin(t.y, t.z, t.pyz),
                               t.pxy)),
        xy_aj);

    // Line 5: factor the join out of the union (eqn 4).
    ExprPtr yz_cases = Expr::Union(Expr::Join(t.y, t.z, t.pyz),
                                   Expr::Antijoin(t.y, t.z, t.pyz));
    ExprPtr line5 =
        Expr::Union(Expr::Join(t.x, yz_cases, t.pxy), xy_aj);

    // Line 6: rewrite the inner union as Y -> Z (eqn 10) and the X
    // antijoin against it (eqn 7).
    ExprPtr yz_oj = Expr::OuterJoin(t.y, t.z, t.pyz);
    ExprPtr line6 = Expr::Union(Expr::Join(t.x, yz_oj, t.pxy),
                                Expr::Antijoin(t.x, yz_oj, t.pxy));

    // Line 7: the right-hand side.
    ExprPtr line7 = Expr::OuterJoin(t.x, yz_oj, t.pxy);

    Relation reference = Eval(line0, *t.db);
    int line_no = 1;
    for (const ExprPtr& line : {line1, line2, line4, line5, line6, line7}) {
      EXPECT_TRUE(BagEquals(reference, Eval(line, *t.db)))
          << "Fig. 3 proof line " << line_no << " diverged on trial "
          << trial << ":\n " << line->ToString();
      ++line_no;
    }
  }
}

}  // namespace
}  // namespace fro
