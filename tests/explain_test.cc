#include <gtest/gtest.h>

#include "graph/from_expr.h"
#include "optimizer/explain.h"
#include "testing/datagen.h"

namespace fro {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeExample1Database(5);
    ExprPtr r1 = Expr::Leaf(db_->Rel("R1"), *db_);
    ExprPtr r2 = Expr::Leaf(db_->Rel("R2"), *db_);
    ExprPtr r3 = Expr::Leaf(db_->Rel("R3"), *db_);
    query_ = Expr::Join(
        r1,
        Expr::OuterJoin(r2, r3,
                        EqCols(db_->Attr("R2", "fk"), db_->Attr("R3", "k"))),
        EqCols(db_->Attr("R1", "k"), db_->Attr("R2", "k")));
  }

  std::unique_ptr<Database> db_;
  ExprPtr query_;
};

TEST_F(ExplainTest, ShowsOperatorsIndentedWithCardinalities) {
  std::string text = Explain(query_, *db_);
  EXPECT_NE(text.find("Join [R1.k=R2.k]"), std::string::npos);
  EXPECT_NE(text.find("OuterJoin (preserves left)"), std::string::npos);
  EXPECT_NE(text.find("Scan R1"), std::string::npos);
  EXPECT_NE(text.find("  Scan"), std::string::npos);  // indentation
  EXPECT_NE(text.find("rows"), std::string::npos);
  // The outerjoin of two 5-row key-linked relations estimates ~5 rows.
  EXPECT_NE(text.find("Scan R2  ~5 rows"), std::string::npos);
}

TEST_F(ExplainTest, OptionsSuppressAnnotations) {
  ExplainOptions options;
  options.show_cardinalities = false;
  options.show_predicates = false;
  std::string text = Explain(query_, *db_, options);
  EXPECT_EQ(text.find("rows"), std::string::npos);
  EXPECT_EQ(text.find("R1.k="), std::string::npos);
}

TEST_F(ExplainTest, RestrictProjectUnionLabels) {
  ExprPtr q = Expr::Project(
      Expr::Restrict(Expr::Leaf(db_->Rel("R2"), *db_),
                     CmpLit(CmpOp::kGt, db_->Attr("R2", "k"), Value::Int(1))),
      {db_->Attr("R2", "fk")}, /*dedup=*/true);
  std::string text = Explain(q, *db_);
  EXPECT_NE(text.find("Project distinct [R2.fk]"), std::string::npos);
  EXPECT_NE(text.find("Restrict [R2.k>1]"), std::string::npos);
}

TEST_F(ExplainTest, GojLabelShowsSubset) {
  ExprPtr r2 = Expr::Leaf(db_->Rel("R2"), *db_);
  ExprPtr r3 = Expr::Leaf(db_->Rel("R3"), *db_);
  ExprPtr goj =
      Expr::Goj(r2, r3, EqCols(db_->Attr("R2", "fk"), db_->Attr("R3", "k")),
                AttrSet::Of({db_->Attr("R2", "k")}));
  std::string text = Explain(goj, *db_);
  EXPECT_NE(text.find("Goj [S = {R2.k}]"), std::string::npos);
}

TEST_F(ExplainTest, ExplainAnalyzeRendersEstimatedAndActual) {
  ExplainAnalyzeResult run = ExplainAnalyze(query_, *db_);
  // Physical operators with their logical labels.
  EXPECT_NE(run.text.find("HashJoin: Join [R1.k=R2.k]"), std::string::npos);
  EXPECT_NE(run.text.find("Scan: Scan R1"), std::string::npos);
  // Estimated next to actual, plus the per-node Q-error column.
  EXPECT_NE(run.text.find("~"), std::string::npos);
  EXPECT_NE(run.text.find("actual rows="), std::string::npos);
  EXPECT_NE(run.text.find("reads="), std::string::npos);
  EXPECT_NE(run.text.find("time="), std::string::npos);
  EXPECT_NE(run.text.find("q-err="), std::string::npos);
  // The plan really executed: one result row for Example 1.
  EXPECT_EQ(run.result.NumRows(), 1u);
  EXPECT_GE(run.max_q_error, 1.0);
  // Naive order over n = 5: all of R2 and R3 plus one R1 row.
  EXPECT_EQ(run.base_tuples_read, 11u);
}

TEST_F(ExplainTest, ExplainAnalyzeHonorsJoinAlgo) {
  ExplainAnalyzeResult run =
      ExplainAnalyze(query_, *db_, JoinAlgo::kNestedLoop);
  EXPECT_NE(run.text.find("NestedLoopJoin"), std::string::npos);
  EXPECT_EQ(run.text.find("HashJoin"), std::string::npos);
  EXPECT_EQ(run.result.NumRows(), 1u);
}

TEST_F(ExplainTest, ExprToDotWellFormed) {
  std::string dot = ExprToDot(query_, *db_);
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  // 5 nodes (2 operators + 3 scans), 4 edges.
  int nodes = 0, edges = 0;
  size_t pos = 0;
  while ((pos = dot.find("[label=", pos)) != std::string::npos) {
    ++nodes;
    ++pos;
  }
  pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++edges;
    ++pos;
  }
  EXPECT_EQ(nodes, 5);
  EXPECT_EQ(edges, 4);
}

TEST_F(ExplainTest, GraphToDotMarksEdgeKinds) {
  Result<QueryGraph> graph = GraphOf(query_, *db_);
  ASSERT_TRUE(graph.ok());
  std::string dot = GraphToDot(*graph, *db_);
  EXPECT_NE(dot.find("digraph query_graph"), std::string::npos);
  // One undirected (join) edge and one directed (outerjoin) edge.
  EXPECT_NE(dot.find("dir=none"), std::string::npos);
  int arrows = 0;
  size_t pos = 0;
  while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
    ++arrows;
    ++pos;
  }
  EXPECT_EQ(arrows, 2);  // both edges use ->; the join edge hides the head
}

}  // namespace
}  // namespace fro
