// Sort-merge kernel tests: behaviour and exact parity with the hash and
// nested-loop strategies.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/sort_merge.h"
#include "testing/datagen.h"

namespace fro {
namespace {

class SortMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = *db_.AddRelation("R", {"a", "b"});
    s_ = *db_.AddRelation("S", {"c", "d"});
    a_ = db_.Attr("R", "a");
    b_ = db_.Attr("R", "b");
    c_ = db_.Attr("S", "c");
    d_ = db_.Attr("S", "d");
    db_.AddRow(r_, {Value::Int(1), Value::Int(10)});
    db_.AddRow(r_, {Value::Int(2), Value::Int(20)});
    db_.AddRow(r_, {Value::Int(1), Value::Int(11)});
    db_.AddRow(r_, {Value::Null(), Value::Int(30)});
    db_.AddRow(s_, {Value::Int(1), Value::Int(100)});
    db_.AddRow(s_, {Value::Int(3), Value::Int(103)});
    db_.AddRow(s_, {Value::Null(), Value::Int(104)});
  }
  const Relation& R() { return db_.relation(r_); }
  const Relation& S() { return db_.relation(s_); }

  Database db_;
  RelId r_, s_;
  AttrId a_, b_, c_, d_;
};

TEST_F(SortMergeTest, InnerJoinMatches) {
  Relation out = SortMergeJoin(R(), S(), EqCols(a_, c_), nullptr);
  EXPECT_EQ(out.NumRows(), 2u);  // two a=1 rows x one c=1 row
  EXPECT_TRUE(
      BagEquals(out, Join(R(), S(), EqCols(a_, c_), JoinAlgo::kHash,
                          nullptr)));
}

TEST_F(SortMergeTest, LeftOuterPadsNullAndUnmatchedKeys) {
  Relation out = SortMergeLeftOuterJoin(R(), S(), EqCols(a_, c_), nullptr);
  // 2 matches + a=2 padded + null-a padded.
  EXPECT_EQ(out.NumRows(), 4u);
  EXPECT_TRUE(BagEquals(out, LeftOuterJoin(R(), S(), EqCols(a_, c_),
                                           JoinAlgo::kNestedLoop, nullptr)));
}

TEST_F(SortMergeTest, AntiAndSemi) {
  Relation anti = SortMergeAntijoin(R(), S(), EqCols(a_, c_), nullptr);
  EXPECT_EQ(anti.NumRows(), 2u);
  Relation semi = SortMergeSemijoin(R(), S(), EqCols(a_, c_), nullptr);
  EXPECT_EQ(semi.NumRows(), 2u);  // both a=1 rows, once each
  EXPECT_TRUE(BagEquals(
      anti, Antijoin(R(), S(), EqCols(a_, c_), JoinAlgo::kHash, nullptr)));
  EXPECT_TRUE(BagEquals(
      semi, Semijoin(R(), S(), EqCols(a_, c_), JoinAlgo::kHash, nullptr)));
}

TEST_F(SortMergeTest, ResidualPredicateRechecked) {
  PredicatePtr pred = Predicate::And(
      {EqCols(a_, c_), CmpCols(CmpOp::kLt, b_, d_)});
  Relation out = SortMergeJoin(R(), S(), pred, nullptr);
  EXPECT_TRUE(BagEquals(out, Join(R(), S(), pred, JoinAlgo::kNestedLoop,
                                  nullptr)));
}

TEST_F(SortMergeTest, RequiresEquiKeys) {
  EXPECT_DEATH(
      SortMergeJoin(R(), S(), CmpCols(CmpOp::kLt, a_, c_), nullptr),
      "equi-key");
}

TEST_F(SortMergeTest, EmptyInputs) {
  Relation empty_s((Scheme({c_, d_})));
  Relation oj =
      SortMergeLeftOuterJoin(R(), empty_s, EqCols(a_, c_), nullptr);
  EXPECT_EQ(oj.NumRows(), R().NumRows());
  Relation empty_r((Scheme({a_, b_})));
  EXPECT_EQ(SortMergeJoin(empty_r, S(), EqCols(a_, c_), nullptr).NumRows(),
            0u);
}

// Parity property across random data for all four modes.
TEST(SortMergePropertyTest, AgreesWithOtherStrategies) {
  Rng rng(2701);
  for (int trial = 0; trial < 50; ++trial) {
    RandomRowsOptions rows;
    rows.rows_max = 10;
    rows.null_prob = 0.2;
    rows.domain = 4;
    auto db = MakeRandomDatabase(2, 2, rows, &rng);
    const Relation& l = db->relation(0);
    const Relation& r = db->relation(1);
    AttrId la = db->Attr("R0", "a0");
    AttrId lb = db->Attr("R0", "a1");
    AttrId ra = db->Attr("R1", "a0");
    AttrId rb = db->Attr("R1", "a1");
    PredicatePtr pred =
        trial % 2 == 0
            ? EqCols(la, ra)
            : Predicate::And({EqCols(la, ra), CmpCols(CmpOp::kLe, lb, rb)});
    EXPECT_TRUE(BagEquals(SortMergeJoin(l, r, pred, nullptr),
                          Join(l, r, pred, JoinAlgo::kHash, nullptr)));
    EXPECT_TRUE(
        BagEquals(SortMergeLeftOuterJoin(l, r, pred, nullptr),
                  LeftOuterJoin(l, r, pred, JoinAlgo::kHash, nullptr)));
    EXPECT_TRUE(BagEquals(SortMergeAntijoin(l, r, pred, nullptr),
                          Antijoin(l, r, pred, JoinAlgo::kHash, nullptr)));
    EXPECT_TRUE(BagEquals(SortMergeSemijoin(l, r, pred, nullptr),
                          Semijoin(l, r, pred, JoinAlgo::kHash, nullptr)));
  }
}

TEST(SortMergePropertyTest, MixedIntDoubleKeysMatch) {
  // SqlEq(1, 1.0) is true; the normalized sort keys must agree.
  Database db;
  RelId l = *db.AddRelation("L", {"x"});
  RelId r = *db.AddRelation("R", {"y"});
  db.AddRow(l, {Value::Int(1)});
  db.AddRow(r, {Value::Double(1.0)});
  Relation out = SortMergeJoin(db.relation(l), db.relation(r),
                               EqCols(db.Attr("L", "x"), db.Attr("R", "y")),
                               nullptr);
  EXPECT_EQ(out.NumRows(), 1u);
}

}  // namespace
}  // namespace fro
