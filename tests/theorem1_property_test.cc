// The main theorem, verified empirically (paper Section 3.2, Theorem 1):
// if graph(Q) is nice and outerjoin predicates are strong, then EVERY
// implementing tree of graph(Q) evaluates to the same result — on every
// database.
//
// The converse directions are exercised too: breaking niceness or
// strength admits implementing trees that disagree.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "graph/nice.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

// Evaluates all (or up to `limit`) ITs and returns the number of distinct
// results.
int DistinctResults(const QueryGraph& graph, const Database& db,
                    size_t limit) {
  std::vector<ExprPtr> trees = EnumerateIts(graph, db, limit);
  std::vector<Relation> distinct;
  for (const ExprPtr& t : trees) {
    Relation r = Eval(t, db);
    bool found = false;
    for (const Relation& seen : distinct) {
      if (BagEquals(r, seen)) {
        found = true;
        break;
      }
    }
    if (!found) distinct.push_back(std::move(r));
  }
  return static_cast<int>(distinct.size());
}

TEST(Theorem1Test, AllItsAgreeOnNiceStrongGraphs) {
  Rng rng(701);
  int graphs = 0;
  uint64_t trees_checked = 0;
  for (int trial = 0; trial < 60 && graphs < 40; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(5));
    options.rows.null_prob = 0.2;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ASSERT_TRUE(CheckFreelyReorderable(q.graph).freely_reorderable());
    uint64_t count = CountIts(q.graph);
    if (count > 600) continue;
    ++graphs;
    trees_checked += count;
    EXPECT_EQ(DistinctResults(q.graph, *q.db, 600), 1)
        << "ITs disagree on a freely-reorderable graph:\n"
        << q.graph.ToString(&q.db->catalog());
  }
  EXPECT_GE(graphs, 30);
  EXPECT_GT(trees_checked, 500u);
}

TEST(Theorem1Test, HoldsUnderHashAndNestedLoopKernels) {
  // Free reorderability is a semantic property; verify it is independent
  // of the execution algorithm.
  Rng rng(702);
  RandomQueryOptions options;
  options.num_relations = 5;
  GeneratedQuery q = GenerateRandomQuery(options, &rng);
  std::vector<ExprPtr> trees = EnumerateIts(q.graph, *q.db, 50);
  EvalOptions nl;
  nl.algo = JoinAlgo::kNestedLoop;
  EvalOptions hash;
  hash.algo = JoinAlgo::kHash;
  Relation reference = Eval(trees[0], *q.db, nl);
  for (const ExprPtr& t : trees) {
    EXPECT_TRUE(BagEquals(reference, Eval(t, *q.db, nl)));
    EXPECT_TRUE(BagEquals(reference, Eval(t, *q.db, hash)));
  }
}

// Violating niceness admits disagreeing implementing trees. Not every
// random database exposes the disagreement, so accumulate over many
// trials and require a substantial disagreement rate.
TEST(Theorem1Test, NonNiceGraphsProduceDisagreements) {
  Rng rng(703);
  int disagreeing = 0;
  int total = 0;
  for (int trial = 0; trial < 60; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(3));
    options.violation = trial % 2 == 0
                            ? RandomQueryOptions::Violation::kJoinAtNullSupplied
                            : RandomQueryOptions::Violation::kTwoInEdges;
    options.rows.rows_min = 1;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    if (CheckNice(q.graph).nice) continue;  // injection may have no room
    if (CountIts(q.graph) > 300) continue;
    ++total;
    if (DistinctResults(q.graph, *q.db, 300) > 1) ++disagreeing;
  }
  ASSERT_GT(total, 20);
  EXPECT_GT(disagreeing, total / 4)
      << "expected frequent disagreements on non-nice graphs";
}

// Weak (non-strong) outerjoin predicates on nice graphs also admit
// disagreements (Example 3's failure mode).
TEST(Theorem1Test, WeakPredicatesProduceDisagreements) {
  Rng rng(704);
  int disagreeing = 0;
  int total = 0;
  for (int trial = 0; trial < 80; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(3));
    options.oj_fraction = 0.8;
    options.weak_pred_prob = 1.0;
    options.rows.rows_min = 1;
    options.rows.null_prob = 0.3;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ReorderabilityCheck check = CheckFreelyReorderable(q.graph);
    if (check.all_outerjoin_preds_strong) continue;  // need a weak pred
    ASSERT_TRUE(check.nice.nice);
    if (CountIts(q.graph) > 300) continue;
    ++total;
    if (DistinctResults(q.graph, *q.db, 300) > 1) ++disagreeing;
  }
  ASSERT_GT(total, 20);
  EXPECT_GT(disagreeing, 0)
      << "expected some disagreements under weak predicates";
}

// The flagship end-to-end statement: for a freely-reorderable query, an
// optimizer may pick ANY implementing tree. Example 1's graph is such a
// graph; check every one of its ITs returns the identical relation.
TEST(Theorem1Test, Example1GraphFullyInterchangeable) {
  Database db;
  RelId r1 = *db.AddRelation("R1", {"k"});
  RelId r2 = *db.AddRelation("R2", {"k", "fk"});
  RelId r3 = *db.AddRelation("R3", {"k"});
  db.AddRow(r1, {Value::Int(0)});
  for (int i = 0; i < 5; ++i) {
    db.AddRow(r2, {Value::Int(i), Value::Int(i)});
    db.AddRow(r3, {Value::Int(i)});
  }
  QueryGraph g;
  g.AddNode(r1, db.scheme(r1).ToAttrSet());
  g.AddNode(r2, db.scheme(r2).ToAttrSet());
  g.AddNode(r3, db.scheme(r3).ToAttrSet());
  ASSERT_TRUE(
      g.AddJoinEdge(0, 1, EqCols(db.Attr("R1", "k"), db.Attr("R2", "k")))
          .ok());
  ASSERT_TRUE(g.AddOuterJoinEdge(1, 2, EqCols(db.Attr("R2", "fk"),
                                              db.Attr("R3", "k")))
                  .ok());
  ASSERT_TRUE(CheckFreelyReorderable(g).freely_reorderable());
  EXPECT_EQ(CountIts(g), 2u);
  EXPECT_EQ(DistinctResults(g, db, 10), 1);
}

}  // namespace
}  // namespace fro
