#include <gtest/gtest.h>

#include "algebra/expr.h"
#include "relational/database.h"

namespace fro {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = *db_.AddRelation("X", {"a"});
    y_ = *db_.AddRelation("Y", {"b"});
    z_ = *db_.AddRelation("Z", {"c"});
    a_ = db_.Attr("X", "a");
    b_ = db_.Attr("Y", "b");
    c_ = db_.Attr("Z", "c");
  }

  Database db_;
  RelId x_, y_, z_;
  AttrId a_, b_, c_;
};

TEST_F(ExprTest, LeafProperties) {
  ExprPtr leaf = Expr::Leaf(x_, db_);
  EXPECT_TRUE(leaf->is_leaf());
  EXPECT_EQ(leaf->rel(), x_);
  EXPECT_EQ(leaf->rel_mask(), 1ULL << x_);
  EXPECT_EQ(leaf->num_leaves(), 1);
  EXPECT_TRUE(leaf->attrs().Contains(a_));
}

TEST_F(ExprTest, JoinAggregatesMasksAndAttrs) {
  ExprPtr j = Expr::Join(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                         EqCols(a_, b_));
  EXPECT_EQ(j->kind(), OpKind::kJoin);
  EXPECT_EQ(j->rel_mask(), (1ULL << x_) | (1ULL << y_));
  EXPECT_EQ(j->num_leaves(), 2);
  EXPECT_TRUE(j->attrs().Contains(a_));
  EXPECT_TRUE(j->attrs().Contains(b_));
  EXPECT_TRUE(j->is_join_like());
}

TEST_F(ExprTest, SharedLeavesDie) {
  ExprPtr leaf = Expr::Leaf(x_, db_);
  EXPECT_DEATH(Expr::Join(leaf, Expr::Leaf(x_, db_), EqCols(a_, a_)),
               "share ground relations");
}

TEST_F(ExprTest, AntijoinKeepsOneSideAttrs) {
  ExprPtr keeps_left = Expr::Antijoin(Expr::Leaf(x_, db_),
                                      Expr::Leaf(y_, db_), EqCols(a_, b_),
                                      /*keeps_left=*/true);
  EXPECT_TRUE(keeps_left->attrs().Contains(a_));
  EXPECT_FALSE(keeps_left->attrs().Contains(b_));
  ExprPtr keeps_right = Expr::Antijoin(Expr::Leaf(x_, db_),
                                       Expr::Leaf(y_, db_), EqCols(a_, b_),
                                       /*keeps_left=*/false);
  EXPECT_FALSE(keeps_right->attrs().Contains(a_));
  EXPECT_TRUE(keeps_right->attrs().Contains(b_));
}

TEST_F(ExprTest, ToStringInfix) {
  ExprPtr q = Expr::OuterJoin(
      Expr::Join(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_), EqCols(a_, b_)),
      Expr::Leaf(z_, db_), EqCols(b_, c_));
  EXPECT_EQ(q->ToString(&db_.catalog()), "((X - Y) -> Z)");
  ExprPtr flipped = Expr::OuterJoin(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                                    EqCols(a_, b_), /*preserves_left=*/false);
  EXPECT_EQ(flipped->ToString(&db_.catalog()), "(X <- Y)");
}

TEST_F(ExprTest, ToStringWithPreds) {
  ExprPtr q = Expr::Join(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                         EqCols(a_, b_));
  EXPECT_EQ(q->ToString(&db_.catalog(), /*with_preds=*/true),
            "(X -[X.a=Y.b] Y)");
}

TEST_F(ExprTest, FingerprintDistinguishesOrientationAndShape) {
  ExprPtr xy = Expr::OuterJoin(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                               EqCols(a_, b_), true);
  ExprPtr yx = Expr::OuterJoin(Expr::Leaf(y_, db_), Expr::Leaf(x_, db_),
                               EqCols(a_, b_), false);
  EXPECT_NE(xy->Fingerprint(), yx->Fingerprint());
  EXPECT_FALSE(ExprEquals(xy, yx));
  // Structurally identical trees built separately are equal.
  ExprPtr xy2 = Expr::OuterJoin(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                                EqCols(a_, b_), true);
  EXPECT_TRUE(ExprEquals(xy, xy2));
}

TEST_F(ExprTest, GojSubsetValidation) {
  ExprPtr x = Expr::Leaf(x_, db_);
  ExprPtr y = Expr::Leaf(y_, db_);
  ExprPtr goj = Expr::Goj(x, y, EqCols(a_, b_), AttrSet::Of({a_}));
  EXPECT_EQ(goj->kind(), OpKind::kGoj);
  EXPECT_EQ(goj->goj_subset().ids(), (std::vector<AttrId>{a_}));
  EXPECT_DEATH(Expr::Goj(x, y, EqCols(a_, b_), AttrSet::Of({b_})),
               "left operand");
}

TEST_F(ExprTest, RestrictProjectUnion) {
  ExprPtr x = Expr::Leaf(x_, db_);
  ExprPtr r = Expr::Restrict(x, CmpLit(CmpOp::kGt, a_, Value::Int(0)));
  EXPECT_EQ(r->kind(), OpKind::kRestrict);
  EXPECT_EQ(r->attrs(), x->attrs());
  ExprPtr p = Expr::Project(r, {a_}, true);
  EXPECT_EQ(p->kind(), OpKind::kProject);
  ExprPtr u = Expr::Union(Expr::Leaf(y_, db_), Expr::Leaf(z_, db_));
  EXPECT_TRUE(u->attrs().Contains(b_));
  EXPECT_TRUE(u->attrs().Contains(c_));
}

TEST_F(ExprTest, OpSymbols) {
  ExprPtr x = Expr::Leaf(x_, db_);
  ExprPtr y = Expr::Leaf(y_, db_);
  EXPECT_EQ(OpSymbol(*Expr::Join(x, y, EqCols(a_, b_))), "-");
  EXPECT_EQ(OpSymbol(*Expr::OuterJoin(x, y, EqCols(a_, b_), true)), "->");
  EXPECT_EQ(OpSymbol(*Expr::OuterJoin(x, y, EqCols(a_, b_), false)), "<-");
  EXPECT_EQ(OpSymbol(*Expr::Antijoin(x, y, EqCols(a_, b_), true)), "|>");
  EXPECT_EQ(OpSymbol(*Expr::Antijoin(x, y, EqCols(a_, b_), false)), "<|");
  EXPECT_EQ(OpSymbol(*Expr::Semijoin(x, y, EqCols(a_, b_), true)), ">-");
}

TEST_F(ExprTest, InterningSharesStructurallyEqualNodes) {
  // Structurally-equal construction returns the same node: leaves...
  ExprPtr l1 = Expr::Leaf(x_, db_);
  ExprPtr l2 = Expr::Leaf(x_, db_);
  EXPECT_EQ(l1.get(), l2.get());
  // ...and whole trees built from independently-created parts.
  ExprPtr j1 = Expr::Join(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                          EqCols(a_, b_));
  ExprPtr j2 = Expr::Join(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                          EqCols(a_, b_));
  EXPECT_EQ(j1.get(), j2.get());
  EXPECT_EQ(j1->hash(), j2->hash());
  // Different structure means a different node (and, with overwhelming
  // probability, a different hash).
  ExprPtr other = Expr::Join(Expr::Leaf(x_, db_), Expr::Leaf(z_, db_),
                             EqCols(a_, c_));
  EXPECT_NE(j1.get(), other.get());
  EXPECT_NE(j1->hash(), other->hash());
}

TEST_F(ExprTest, InternStatsCountHitsAndMisses) {
  ExprInternStats before = GetExprInternStats();
  ExprPtr j1 = Expr::OuterJoin(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                               EqCols(a_, b_), /*preserves_left=*/true);
  ExprInternStats mid = GetExprInternStats();
  ExprPtr j2 = Expr::OuterJoin(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                               EqCols(a_, b_), /*preserves_left=*/true);
  ExprInternStats after = GetExprInternStats();
  EXPECT_EQ(j1.get(), j2.get());
  EXPECT_GT(mid.misses, before.misses);   // first build interns new nodes
  EXPECT_GT(after.hits, mid.hits);        // second build reuses them
}

TEST_F(ExprTest, HashDistinguishesOperatorVariants) {
  ExprPtr x = Expr::Leaf(x_, db_);
  ExprPtr y = Expr::Leaf(y_, db_);
  PredicatePtr p = EqCols(a_, b_);
  std::vector<uint64_t> hashes = {
      Expr::Join(x, y, p)->hash(),
      Expr::OuterJoin(x, y, p, true)->hash(),
      Expr::OuterJoin(x, y, p, false)->hash(),
      Expr::Semijoin(x, y, p, true)->hash(),
      Expr::Antijoin(x, y, p, true)->hash(),
  };
  for (size_t i = 0; i < hashes.size(); ++i) {
    for (size_t j = i + 1; j < hashes.size(); ++j) {
      EXPECT_NE(hashes[i], hashes[j]) << i << " vs " << j;
    }
  }
}

}  // namespace
}  // namespace fro
