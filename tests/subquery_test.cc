// Section 6.1's extension: reordering freely-reorderable subqueries of a
// query that is not freely reorderable as a whole.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "optimizer/subquery.h"
#include "testing/datagen.h"

namespace fro {
namespace {

// W -> (X - Y - Z): the outerjoin over a join makes the whole query
// non-reorderable (Example 2's pattern), but the inner join chain
// X - Y - Z is a freely-reorderable island.
struct Fixture {
  std::unique_ptr<Database> db;
  ExprPtr query;
  ExprPtr inner;  // the island, in a deliberately bad association
};

Fixture MakeFixture(int n) {
  Fixture f;
  f.db = std::make_unique<Database>();
  RelId w = *f.db->AddRelation("W", {"a"});
  RelId x = *f.db->AddRelation("X", {"b", "c"});
  RelId y = *f.db->AddRelation("Y", {"d", "e"});
  RelId z = *f.db->AddRelation("Z", {"f"});
  Rng rng(5);
  // W: 1 row; X: n rows keyed; Y: n rows; Z: 1 row — so the good join
  // order starts from the small relations.
  f.db->AddRow(w, {Value::Int(0)});
  for (int i = 0; i < n; ++i) {
    f.db->AddRow(x, {Value::Int(i), Value::Int(i)});
    f.db->AddRow(y, {Value::Int(i), Value::Int(i)});
  }
  f.db->AddRow(z, {Value::Int(0)});
  PredicatePtr pwx = EqCols(f.db->Attr("W", "a"), f.db->Attr("X", "b"));
  PredicatePtr pxy = EqCols(f.db->Attr("X", "c"), f.db->Attr("Y", "d"));
  PredicatePtr pyz = EqCols(f.db->Attr("Y", "e"), f.db->Attr("Z", "f"));
  // Bad association inside the island: X joins Y first (n rows), then Z.
  f.inner = Expr::Join(
      Expr::Join(Expr::Leaf(x, *f.db), Expr::Leaf(y, *f.db), pxy),
      Expr::Leaf(z, *f.db), pyz);
  f.query = Expr::OuterJoin(Expr::Leaf(w, *f.db), f.inner, pwx);
  return f;
}

TEST(SubqueryTest, ReordersTheIslandAndPreservesResults) {
  Fixture f = MakeFixture(50);
  CostModel model(*f.db, CostKind::kCout);
  SubqueryReorderResult result = ReorderSubqueries(f.query, *f.db, model);
  EXPECT_EQ(result.subqueries_reordered, 1);
  // The island was re-associated: Z (1 row) now joins before the big
  // X-Y pair, dropping the island's intermediate cost.
  EXPECT_LT(model.PlanCost(result.expr->right()),
            model.PlanCost(f.inner));
  // Semantics intact.
  EXPECT_TRUE(BagEquals(Eval(f.query, *f.db), Eval(result.expr, *f.db)));
  // The outer (non-reorderable) operator is untouched.
  EXPECT_EQ(result.expr->kind(), OpKind::kOuterJoin);
  EXPECT_TRUE(result.expr->left()->is_leaf());
}

TEST(SubqueryTest, FullyReorderableTreeBecomesOneIsland) {
  auto db = MakeExample1Database(10);
  ExprPtr naive = Expr::Join(
      Expr::Leaf(db->Rel("R1"), *db),
      Expr::OuterJoin(Expr::Leaf(db->Rel("R2"), *db),
                      Expr::Leaf(db->Rel("R3"), *db),
                      EqCols(db->Attr("R2", "fk"), db->Attr("R3", "k"))),
      EqCols(db->Attr("R1", "k"), db->Attr("R2", "k")));
  CostModel model(*db, CostKind::kCout);
  SubqueryReorderResult result = ReorderSubqueries(naive, *db, model);
  EXPECT_EQ(result.subqueries_reordered, 1);
  EXPECT_TRUE(BagEquals(Eval(naive, *db), Eval(result.expr, *db)));
}

TEST(SubqueryTest, TwoRelationSubtreesLeftAlone) {
  Database db;
  RelId x = *db.AddRelation("X", {"a"});
  RelId y = *db.AddRelation("Y", {"b"});
  db.AddRow(x, {Value::Int(1)});
  db.AddRow(y, {Value::Int(1)});
  ExprPtr q = Expr::Join(Expr::Leaf(x, db), Expr::Leaf(y, db),
                         EqCols(db.Attr("X", "a"), db.Attr("Y", "b")));
  CostModel model(db, CostKind::kCout);
  SubqueryReorderResult result = ReorderSubqueries(q, db, model);
  EXPECT_EQ(result.subqueries_reordered, 0);
  EXPECT_EQ(result.expr, q);
}

TEST(SubqueryTest, FacadeAppliesItToNonReorderableQueries) {
  Fixture f = MakeFixture(30);
  Result<OptimizeOutcome> outcome = Optimize(f.query, *f.db);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->freely_reorderable);
  EXPECT_EQ(outcome->PassApplications("reorder"), 1);
  EXPECT_TRUE(BagEquals(Eval(f.query, *f.db), Eval(outcome->plan, *f.db)));
}

}  // namespace
}  // namespace fro
