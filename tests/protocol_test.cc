// The wire protocol, exercised at every layer: request/response
// parse/serialize round trips (including the `?threads=` option),
// strict OK-line parsing ("OKgarbage" is a malformed frame, not an
// empty-body success), and the socket framing over a socketpair —
// truncated headers, over-limit declared lengths, and the peer dying
// between a frame's header and its payload, which must be reported as a
// mid-frame EOF (and counted as a frame error by the server), never as
// a clean close. Plus the ThreadBudget admission-control pool and an
// end-to-end `?threads=` query against a live server.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/session.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

// --- request parse/serialize ----------------------------------------------

TEST(ParseRequestTest, VerbTagThreadsArgumentRoundTrip) {
  Request request;
  request.verb = Verb::kQuery;
  request.tag = "t7";
  request.threads = 4;
  request.argument = "Select All From EMPLOYEE";
  const std::string payload = SerializeRequest(request);
  EXPECT_EQ(payload, "QUERY@t7?threads=4 Select All From EMPLOYEE");

  Result<Request> parsed = ParseRequest(payload);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->verb, Verb::kQuery);
  EXPECT_EQ(parsed->tag, "t7");
  EXPECT_EQ(parsed->threads, 4);
  EXPECT_EQ(parsed->argument, request.argument);
}

TEST(ParseRequestTest, ThreadsWithoutTag) {
  Result<Request> parsed = ParseRequest("ANALYZE?threads=2 Select All From X");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->verb, Verb::kAnalyze);
  EXPECT_TRUE(parsed->tag.empty());
  EXPECT_EQ(parsed->threads, 2);
  EXPECT_EQ(parsed->argument, "Select All From X");
}

TEST(ParseRequestTest, ThreadsDefaultsToUnset) {
  Result<Request> parsed = ParseRequest("PING");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->threads, 0);
}

TEST(ParseRequestTest, MalformedOptionsRejected) {
  EXPECT_FALSE(ParseRequest("QUERY? Select All From X").ok());
  EXPECT_FALSE(ParseRequest("QUERY?threads= Select All From X").ok());
  EXPECT_FALSE(ParseRequest("QUERY?threads=abc Select All From X").ok());
  EXPECT_FALSE(ParseRequest("QUERY?workers=4 Select All From X").ok());
  EXPECT_FALSE(ParseRequest("QUERY?threads=2,threads=x Sel").ok());
}

TEST(ParseRequestTest, HostileThreadCountIsCappedNotOverflowed) {
  Result<Request> parsed =
      ParseRequest("QUERY?threads=99999999999999999999 Select All From X");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_GT(parsed->threads, 0);
  EXPECT_LE(parsed->threads, 4096);
}

TEST(ParseRequestTest, UnknownVerbAndMissingArgumentStillFail) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("FROB x").ok());
  EXPECT_FALSE(ParseRequest("QUERY").ok());
  EXPECT_FALSE(ParseRequest("QUERY@ x").ok());
}

// --- response parse/serialize ---------------------------------------------

TEST(ParseResponseTest, OkBodyRoundTrip) {
  Response response;
  response.body = "a table\nwith rows\n";
  const std::string payload = SerializeResponse(response);
  Result<Response> parsed = ParseResponse(payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->status.ok());
  EXPECT_EQ(parsed->body, response.body);
}

TEST(ParseResponseTest, BareOkIsEmptyBody) {
  Result<Response> parsed = ParseResponse("OK");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->status.ok());
  EXPECT_TRUE(parsed->body.empty());

  parsed = ParseResponse("OK\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->body.empty());
}

TEST(ParseResponseTest, OkGluedToGarbageIsMalformed) {
  // The historical bug: any payload *starting* with "OK" parsed as a
  // successful empty-body response, silently discarding the rest.
  Result<Response> parsed = ParseResponse("OKgarbage");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(ParseResponse("OK2\nbody").ok());
  EXPECT_FALSE(ParseResponse("ERRInvalidArgument nope").ok());
  EXPECT_FALSE(ParseResponse("").ok());
}

TEST(ParseResponseTest, ErrRoundTrip) {
  Response response;
  response.status = NotFound("no such\nthing");
  Result<Response> parsed = ParseResponse(SerializeResponse(response));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status.code(), StatusCode::kNotFound);
  // Newlines are folded to keep the status line parseable.
  EXPECT_EQ(parsed->status.message(), "no such thing");
}

// --- socket framing over a socketpair -------------------------------------

class FramePairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    CloseWriter();
    CloseReader();
  }
  void CloseWriter() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    fds_[0] = -1;
  }
  void CloseReader() {
    if (fds_[1] >= 0) ::close(fds_[1]);
    fds_[1] = -1;
  }
  int writer() const { return fds_[0]; }
  int reader() const { return fds_[1]; }

  int fds_[2] = {-1, -1};
};

TEST_F(FramePairTest, WriteReadRoundTrip) {
  const std::string payloads[] = {"", "x", std::string(100000, 'q'),
                                  "QUERY?threads=3 Select All From X"};
  for (const std::string& sent : payloads) {
    ASSERT_TRUE(WriteFrame(writer(), sent).ok());
    std::string got;
    bool mid_frame_eof = true;
    ASSERT_TRUE(ReadFrame(reader(), &got, &mid_frame_eof).ok());
    EXPECT_EQ(got, sent);
    EXPECT_FALSE(mid_frame_eof);
  }
}

TEST_F(FramePairTest, CleanCloseAtFrameBoundary) {
  ASSERT_TRUE(WriteFrame(writer(), "ping").ok());
  CloseWriter();
  std::string got;
  ASSERT_TRUE(ReadFrame(reader(), &got).ok());
  EXPECT_EQ(got, "ping");
  bool mid_frame_eof = true;
  Status status = ReadFrame(reader(), &got, &mid_frame_eof);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(status.message(), "connection closed");
  EXPECT_FALSE(mid_frame_eof);
}

TEST_F(FramePairTest, TruncatedHeaderIsMidFrame) {
  const char partial[2] = {0, 0};
  ASSERT_EQ(::send(writer(), partial, 2, MSG_NOSIGNAL), 2);
  CloseWriter();
  std::string got;
  bool mid_frame_eof = false;
  Status status = ReadFrame(reader(), &got, &mid_frame_eof);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(status.message(), "connection closed mid-frame");
  EXPECT_TRUE(mid_frame_eof);
}

TEST_F(FramePairTest, DeathBetweenHeaderAndPayloadIsMidFrame) {
  // The historical bug: a peer that sent a complete header declaring a
  // payload and then died was reported as a clean "connection closed",
  // indistinguishable from a frame-boundary EOF.
  const char header[4] = {0, 0, 0, 8};  // declares 8 bytes, sends none
  ASSERT_EQ(::send(writer(), header, 4, MSG_NOSIGNAL), 4);
  CloseWriter();
  std::string got;
  bool mid_frame_eof = false;
  Status status = ReadFrame(reader(), &got, &mid_frame_eof);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(status.message(), "connection closed mid-frame");
  EXPECT_TRUE(mid_frame_eof);
}

TEST_F(FramePairTest, DeathInsidePayloadIsMidFrame) {
  const char header[4] = {0, 0, 0, 8};
  ASSERT_EQ(::send(writer(), header, 4, MSG_NOSIGNAL), 4);
  ASSERT_EQ(::send(writer(), "abc", 3, MSG_NOSIGNAL), 3);
  CloseWriter();
  std::string got;
  bool mid_frame_eof = false;
  Status status = ReadFrame(reader(), &got, &mid_frame_eof);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(mid_frame_eof);
}

TEST_F(FramePairTest, OverLimitDeclaredLengthRejected) {
  // 0x7FFFFFFF bytes declared: must fail fast on the four header bytes,
  // not attempt the allocation or wait for a payload.
  const char header[4] = {0x7F, (char)0xFF, (char)0xFF, (char)0xFF};
  ASSERT_EQ(::send(writer(), header, 4, MSG_NOSIGNAL), 4);
  std::string got;
  bool mid_frame_eof = false;
  Status status = ReadFrame(reader(), &got, &mid_frame_eof);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(mid_frame_eof);
}

TEST_F(FramePairTest, OversizedPayloadRefusedBeforeSending) {
  const std::string big(kMaxFrameBytes + 1, 'z');
  EXPECT_EQ(WriteFrame(writer(), big).code(), StatusCode::kInvalidArgument);
}

// --- ThreadBudget ----------------------------------------------------------

TEST(ThreadBudgetTest, GrantsAtMostAvailable) {
  ThreadBudget budget(3);
  EXPECT_EQ(budget.available(), 3u);
  EXPECT_EQ(budget.TryAcquire(2), 2u);
  EXPECT_EQ(budget.available(), 1u);
  // Best-effort: asking for more than remains grants what's left.
  EXPECT_EQ(budget.TryAcquire(5), 1u);
  // A dry pool grants zero — the query runs serially.
  EXPECT_EQ(budget.TryAcquire(4), 0u);
  budget.Release(3);
  EXPECT_EQ(budget.available(), 3u);
}

TEST(ThreadBudgetTest, ConcurrentAcquireReleaseConserves) {
  ThreadBudget budget(4);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&budget] {
      for (int round = 0; round < 200; ++round) {
        const size_t granted = budget.TryAcquire(3);
        budget.Release(granted);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(budget.available(), 4u);
}

// --- end to end ------------------------------------------------------------

class ProtocolServerTest : public ::testing::Test {
 protected:
  ProtocolServerTest() : db_(MakeCompanyNestedDb()) {}

  void StartServer(ServerOptions options) {
    server_ = std::make_unique<FroServer>(&db_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  NestedDb db_;
  std::unique_ptr<FroServer> server_;
};

TEST_F(ProtocolServerTest, ThreadsOptionServedAndBudgetRestored) {
  ServerOptions options;
  options.max_query_threads = 4;
  options.exec_thread_budget = 3;
  StartServer(options);

  FroClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  // Warm the plan cache so both bodies carry the same provenance note
  // (cold and warm responses differ in the notes line by design).
  const std::string query =
      "Select All From EMPLOYEE*ChildName, DEPARTMENT "
      "Where EMPLOYEE.D# = DEPARTMENT.D#";
  {
    Result<Response> warmup = client.Query(query);
    ASSERT_TRUE(warmup.ok());
    ASSERT_TRUE(warmup->status.ok()) << warmup->status.ToString();
  }
  Result<Response> serial = client.Query(query);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(serial->status.ok()) << serial->status.ToString();

  Request request;
  request.verb = Verb::kQuery;
  request.threads = 4;
  request.argument = query;
  Result<Response> parallel = client.Call(request);
  ASSERT_TRUE(parallel.ok());
  ASSERT_TRUE(parallel->status.ok()) << parallel->status.ToString();
  // Canonical rendering: the parallel run must be byte-identical.
  EXPECT_EQ(parallel->body, serial->body);

  // The extras were returned to the pool.
  Result<Response> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("exec_threads max_per_query=4 budget=3 "
                             "available=3"),
            std::string::npos)
      << stats->body;
}

TEST_F(ProtocolServerTest, MidFrameDeathCountsAsFrameError) {
  StartServer(ServerOptions());
  const uint64_t before = server_->metrics().frame_errors();
  {
    FroClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    Result<Response> pong = client.Ping();
    ASSERT_TRUE(pong.ok());
  }
  // Raw connection: send a header declaring a payload, then vanish.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char header[4] = {0, 0, 0, 42};
  ASSERT_EQ(::send(fd, header, 4, MSG_NOSIGNAL), 4);
  ::close(fd);
  // The worker notices the torn frame as soon as it reads the EOF.
  for (int i = 0; i < 200 && server_->metrics().frame_errors() == before;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(server_->metrics().frame_errors(), before);
}

}  // namespace
}  // namespace fro
