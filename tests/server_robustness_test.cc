// Fuzz-style robustness: malformed and truncated protocol frames plus
// malformed Section 5 query texts must produce error responses (or a
// dropped connection) while the server keeps serving everyone else. The
// sanitizer CI jobs run this binary under ASan/TSan, so surviving also
// means no leaks and no races on the error paths.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "server/client.h"
#include "server/server.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

// A raw TCP connection that bypasses the framing helpers, for sending
// deliberately broken bytes.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void SendBytes(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Half-closes the write side so the server sees EOF once it has
  /// consumed every frame — required before DrainUntilClose on a
  /// connection the server would otherwise keep serving.
  void FinishWrites() { ::shutdown(fd_, SHUT_WR); }

  void SendFramed(const std::string& payload) {
    const uint32_t n = static_cast<uint32_t>(payload.size());
    std::string wire;
    wire.push_back(static_cast<char>(n >> 24));
    wire.push_back(static_cast<char>(n >> 16));
    wire.push_back(static_cast<char>(n >> 8));
    wire.push_back(static_cast<char>(n));
    wire += payload;
    SendBytes(wire);
  }

  /// Reads whatever arrives until the peer closes or `max` bytes.
  std::string DrainUntilClose(size_t max = 1 << 16) {
    std::string out;
    char buf[4096];
    while (out.size() < max) {
      ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r <= 0) break;
      out.append(buf, static_cast<size_t>(r));
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class ServerRobustnessTest : public ::testing::Test {
 protected:
  ServerRobustnessTest() : db_(MakeCompanyNestedDb()) {}

  void SetUp() override {
    ServerOptions options;
    options.num_workers = 4;
    // Deep admission queue: this suite floods the server with dozens of
    // short-lived garbage connections, and shedding the liveness probe
    // with ResourceExhausted would be a false failure.
    options.max_pending = 128;
    server_ = std::make_unique<FroServer>(&db_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  /// The liveness probe every scenario ends with: a fresh well-formed
  /// client must still get served.
  void AssertServerAlive() {
    FroClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    Result<Response> pong = client.Ping();
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_TRUE(pong->status.ok());
    Result<Response> result =
        client.Query("Select All From EMPLOYEE Where EMPLOYEE.Rank = 7");
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->status.ok()) << result->status.ToString();
  }

  NestedDb db_;
  std::unique_ptr<FroServer> server_;
};

TEST_F(ServerRobustnessTest, OversizedDeclaredLength) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.SendBytes(std::string("\xFF\xFF\xFF\xFF", 4));
  const std::string reply = conn.DrainUntilClose();
  EXPECT_NE(reply.find("InvalidArgument"), std::string::npos) << reply;
  AssertServerAlive();
}

TEST_F(ServerRobustnessTest, TruncatedFrameThenClose) {
  {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.connected());
    // Declares 100 bytes, delivers 10, disappears.
    conn.SendBytes(std::string("\x00\x00\x00\x64", 4) + "QUERY Sele");
  }
  AssertServerAlive();
}

TEST_F(ServerRobustnessTest, HeaderOnlyThenClose) {
  {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.connected());
    conn.SendBytes(std::string("\x00\x00", 2));  // half a header
  }
  AssertServerAlive();
}

TEST_F(ServerRobustnessTest, EmptyAndGarbagePayloadsKeepConnectionUsable) {
  // An empty frame and assorted garbage verbs: each one answered with an
  // error on the same connection.
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.connected());
  conn.SendFramed("");
  conn.SendFramed("BOGUSVERB do things");
  conn.SendFramed("QUERY");    // missing argument
  conn.SendFramed("CANCEL");   // missing argument
  conn.SendFramed("QUERY@ x");  // empty tag
  conn.SendFramed(std::string("\x01\x02\x03\x7f garbage", 12));
  conn.SendFramed("PING");  // still parseable => the connection survived
  conn.FinishWrites();
  const std::string replies = conn.DrainUntilClose(1 << 12);
  EXPECT_NE(replies.find("ERR InvalidArgument"), std::string::npos);
  EXPECT_NE(replies.find("pong"), std::string::npos);
  AssertServerAlive();
}

TEST_F(ServerRobustnessTest, MalformedQueriesReturnErrorsNotCrashes) {
  FroClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const char* bad_queries[] = {
      "Select",
      "Select All",
      "Select All From",
      "Select All From NOSUCHTYPE",
      "Select All From EMPLOYEE*NoSuchField",
      "Select All From EMPLOYEE-->Rank",  // scalar, not entity-valued
      "Select All From EMPLOYEE, REPORT",  // disconnected
      "Select All From EMPLOYEE Where",
      "Select All From EMPLOYEE Where EMPLOYEE.Rank",
      "Select All From EMPLOYEE Where EMPLOYEE.Rank = ",
      "Select All From EMPLOYEE, EMPLOYEE",  // duplicate variable
      ")(*&^%$#@!",
  };
  for (const char* bad : bad_queries) {
    Result<Response> r = client.Query(bad);
    ASSERT_TRUE(r.ok()) << "transport died on: " << bad;
    EXPECT_FALSE(r->status.ok()) << "accepted: " << bad;
  }
  AssertServerAlive();
}

TEST_F(ServerRobustnessTest, RandomBytesNeverKillTheServer) {
  Rng rng(20260806);
  for (int round = 0; round < 32; ++round) {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.connected());
    // Random length prefix (bounded sane) + random payload bytes, or raw
    // unframed noise every third round.
    std::string noise;
    const size_t len = rng.Uniform(64) + 1;
    for (size_t i = 0; i < len; ++i) {
      noise.push_back(static_cast<char>(rng.Uniform(256)));
    }
    if (round % 3 == 0) {
      conn.SendBytes(noise);
    } else {
      conn.SendFramed(noise);
    }
  }
  AssertServerAlive();
  // The error paths were actually exercised, not silently skipped.
  EXPECT_GT(server_->metrics().frame_errors(), 0u);
}

}  // namespace
}  // namespace fro
