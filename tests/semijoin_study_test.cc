// Section 6.3's closing remark, studied empirically: "for join/semijoin
// queries, it appears that fewer basic transforms preserve the result ...
// semijoin edges in series appear to be an additional forbidden
// subgraph."

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/transform.h"
#include "common/rng.h"
#include "testing/datagen.h"

namespace fro {
namespace {

struct Tri {
  std::unique_ptr<Database> db;
  ExprPtr x, y, z;
  PredicatePtr pxy, pyz, pxz;
};

Tri MakeTri(Rng* rng) {
  Tri t;
  RandomRowsOptions rows;
  rows.rows_max = 6;
  rows.domain = 3;
  rows.null_prob = 0.15;
  t.db = MakeRandomDatabase(3, 2, rows, rng);
  t.x = Expr::Leaf(t.db->Rel("R0"), *t.db);
  t.y = Expr::Leaf(t.db->Rel("R1"), *t.db);
  t.z = Expr::Leaf(t.db->Rel("R2"), *t.db);
  t.pxy = EqCols(t.db->Attr("R0", "a0"), t.db->Attr("R1", "a0"));
  t.pyz = EqCols(t.db->Attr("R1", "a1"), t.db->Attr("R2", "a0"));
  t.pxz = EqCols(t.db->Attr("R0", "a1"), t.db->Attr("R2", "a1"));
  return t;
}

constexpr int kTrials = 60;

// A semijoin "hanging off" a join reassociates freely:
// (X - Y) >- Z  =  X - (Y >- Z).
TEST(SemijoinStudyTest, SemijoinOverJoinPreserves) {
  Rng rng(1201);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::Semijoin(Expr::Join(t.x, t.y, t.pxy), t.z, t.pyz);
    ExprPtr rhs = Expr::Join(t.x, Expr::Semijoin(t.y, t.z, t.pyz), t.pxy);
    EXPECT_TRUE(BagEquals(Eval(lhs, *t.db), Eval(rhs, *t.db)))
        << lhs->ToString() << " vs " << rhs->ToString();
  }
}

// ... and over the preserved side of an outerjoin:
// (X <- Y) >- Z  =  X <- (Y >- Z).
TEST(SemijoinStudyTest, SemijoinOverPreservedOuterjoinPreserves) {
  Rng rng(1202);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::Semijoin(
        Expr::OuterJoin(t.x, t.y, t.pxy, /*preserves_left=*/false), t.z,
        t.pyz);
    ExprPtr rhs = Expr::OuterJoin(t.x, Expr::Semijoin(t.y, t.z, t.pyz),
                                  t.pxy, /*preserves_left=*/false);
    EXPECT_TRUE(BagEquals(Eval(lhs, *t.db), Eval(rhs, *t.db)));
  }
}

// The classification table knows both patterns.
TEST(SemijoinStudyTest, ClassificationMarksThemPreserving) {
  Rng rng(1203);
  Tri t = MakeTri(&rng);
  ExprPtr over_join =
      Expr::Semijoin(Expr::Join(t.x, t.y, t.pxy), t.z, t.pyz);
  BtClassification c1 =
      ClassifyBt(over_join, {BtSite::Kind::kAssocLR, {}});
  EXPECT_EQ(c1.preservation, Preservation::kAlways);
  ExprPtr over_oj = Expr::Semijoin(
      Expr::OuterJoin(t.x, t.y, t.pxy, false), t.z, t.pyz);
  BtClassification c2 = ClassifyBt(over_oj, {BtSite::Kind::kAssocLR, {}});
  EXPECT_EQ(c2.preservation, Preservation::kAlways);
}

// Semijoin under an outerjoin's preserved side does NOT reassociate:
// (X -> Y) >- Z vs X -> (Y >- Z) differ (the semijoin filter applies to
// padded tuples on the left but to Y tuples on the right).
TEST(SemijoinStudyTest, SemijoinOverNullSuppliedSideBreaks) {
  Rng rng(1204);
  int disagreements = 0;
  for (int i = 0; i < 200; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs =
        Expr::Semijoin(Expr::OuterJoin(t.x, t.y, t.pxy), t.z, t.pyz);
    ExprPtr rhs = Expr::OuterJoin(t.x, Expr::Semijoin(t.y, t.z, t.pyz),
                                  t.pxy);
    if (!BagEquals(Eval(lhs, *t.db), Eval(rhs, *t.db))) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
  // And the table classifies the pattern as non-preserving.
  Tri t = MakeTri(&rng);
  ExprPtr q = Expr::Semijoin(Expr::OuterJoin(t.x, t.y, t.pxy), t.z, t.pyz);
  EXPECT_EQ(ClassifyBt(q, {BtSite::Kind::kAssocLR, {}}).preservation,
            Preservation::kNever);
}

// "Semijoin edges in series": X >- (Y >- Z) cannot be reassociated into
// (X >- Y) >- Z at all — the inner semijoin drops Z's attributes, so the
// outer predicate could never reference Z, and the BT machinery reports
// no applicable reassociation.
TEST(SemijoinStudyTest, SeriesSemijoinsHaveNoReassociation) {
  Rng rng(1205);
  Tri t = MakeTri(&rng);
  ExprPtr series =
      Expr::Semijoin(t.x, Expr::Semijoin(t.y, t.z, t.pyz), t.pxy);
  for (const BtSite& site : FindApplicableBts(series)) {
    EXPECT_EQ(site.kind, BtSite::Kind::kReversal)
        << "unexpected reassociation applicable on series semijoins";
  }
}

// Contrast: two semijoins in a "star" off the same relation commute.
// (X >- Y) >- Z = (X >- Z) >- Y with predicates P_xy, P_xz.
TEST(SemijoinStudyTest, StarSemijoinsCommute) {
  Rng rng(1206);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::Semijoin(Expr::Semijoin(t.x, t.y, t.pxy), t.z,
                                 t.pxz);
    ExprPtr rhs = Expr::Semijoin(Expr::Semijoin(t.x, t.z, t.pxz), t.y,
                                 t.pxy);
    EXPECT_TRUE(BagEquals(Eval(lhs, *t.db), Eval(rhs, *t.db)));
  }
}

// Semijoin absorbs duplicates of the filter side: X >- Y unchanged when
// Y's rows are duplicated — a property regular join lacks. (This is why
// the paper treats semijoin separately.)
TEST(SemijoinStudyTest, SemijoinInsensitiveToFilterSideDuplicates) {
  Rng rng(1207);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr once = Expr::Semijoin(t.x, t.y, t.pxy);
    ExprPtr doubled =
        Expr::Semijoin(t.x, Expr::Union(t.y, t.y), t.pxy);
    EXPECT_TRUE(BagEquals(Eval(once, *t.db), Eval(doubled, *t.db)));
    ExprPtr join_once = Expr::Join(t.x, t.y, t.pxy);
    ExprPtr join_doubled = Expr::Join(t.x, Expr::Union(t.y, t.y), t.pxy);
    // The join is duplicate-sensitive whenever it matched anything.
    if (Eval(join_once, *t.db).NumRows() > 0) {
      EXPECT_FALSE(
          BagEquals(Eval(join_once, *t.db), Eval(join_doubled, *t.db)));
    }
  }
}

}  // namespace
}  // namespace fro
