// Lemma 3 / Theorem 1 closure tests: basic transforms connect all
// implementing trees of a nice graph, and the *result-preserving* subset
// already suffices when predicates are strong.

#include <gtest/gtest.h>

#include <set>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/closure.h"
#include "enumerate/it_enum.h"
#include "graph/nice.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

std::set<std::string> Fingerprints(const std::vector<ExprPtr>& trees) {
  std::set<std::string> out;
  for (const ExprPtr& t : trees) out.insert(t->Fingerprint());
  return out;
}

TEST(ClosureTest, SingleJoinIsItsOwnClosure) {
  Database db;
  RelId x = *db.AddRelation("X", {"a"});
  RelId y = *db.AddRelation("Y", {"b"});
  ExprPtr q = Expr::Join(Expr::Leaf(x, db), Expr::Leaf(y, db),
                         EqCols(db.Attr("X", "a"), db.Attr("Y", "b")));
  ClosureResult closure = BtClosure(q);
  EXPECT_EQ(closure.trees.size(), 1u);
  EXPECT_FALSE(closure.truncated);
}

TEST(ClosureTest, MaxStatesTruncates) {
  Rng rng(601);
  RandomQueryOptions options;
  options.num_relations = 6;
  options.oj_fraction = 0.0;  // pure join graph: many trees
  GeneratedQuery q = GenerateRandomQuery(options, &rng);
  ExprPtr start = RandomIt(q.graph, *q.db, &rng);
  ASSERT_NE(start, nullptr);
  ClosureOptions copts;
  copts.max_states = 3;
  ClosureResult closure = BtClosure(start, copts);
  EXPECT_TRUE(closure.truncated);
  EXPECT_LE(closure.trees.size(), 3u);
}

// Lemma 3: starting from ANY implementing tree of a nice graph, the BT
// closure reaches ALL implementing trees.
TEST(ClosurePropertyTest, Lemma3ClosureReachesAllIts) {
  Rng rng(602);
  int graphs_checked = 0;
  for (int trial = 0; trial < 30 && graphs_checked < 15; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(4));
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    uint64_t count = CountIts(q.graph);
    if (count > 500) continue;
    ++graphs_checked;
    std::set<std::string> all =
        Fingerprints(EnumerateIts(q.graph, *q.db));
    ExprPtr start = RandomIt(q.graph, *q.db, &rng);
    ASSERT_NE(start, nullptr);
    ClosureResult closure = BtClosure(start);
    EXPECT_EQ(Fingerprints(closure.trees), all)
        << "closure != all ITs for graph:\n"
        << q.graph.ToString() << "start: " << start->ToString();
  }
  EXPECT_GE(graphs_checked, 10);
}

// Theorem 1's mechanism: for nice graphs with strong predicates, the
// closure under *result-preserving* BTs alone already reaches every
// implementing tree (Lemma 2 + Lemma 3).
TEST(ClosurePropertyTest, PreservingClosureSufficesWhenStrong) {
  Rng rng(603);
  int graphs_checked = 0;
  for (int trial = 0; trial < 30 && graphs_checked < 15; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(4));
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ASSERT_TRUE(CheckFreelyReorderable(q.graph).freely_reorderable());
    if (CountIts(q.graph) > 500) continue;
    ++graphs_checked;
    std::set<std::string> all =
        Fingerprints(EnumerateIts(q.graph, *q.db));
    ExprPtr start = RandomIt(q.graph, *q.db, &rng);
    ClosureOptions copts;
    copts.only_result_preserving = true;
    ClosureResult closure = BtClosure(start, copts);
    EXPECT_EQ(Fingerprints(closure.trees), all);
  }
  EXPECT_GE(graphs_checked, 10);
}

// On a NON-nice graph (Example 2's X -> Y - Z) the preserving closure is a
// strict subset of all implementing trees: the two associations cannot be
// connected by result-preserving BTs.
TEST(ClosureTest, NonNiceGraphPreservingClosureIsStrictSubset) {
  Database db;
  RelId rx = *db.AddRelation("X", {"a"});
  RelId ry = *db.AddRelation("Y", {"b"});
  RelId rz = *db.AddRelation("Z", {"c"});
  AttrId a = db.Attr("X", "a");
  AttrId b = db.Attr("Y", "b");
  AttrId c = db.Attr("Z", "c");
  QueryGraph g;
  g.AddNode(rx, AttrSet::Of({a}));
  g.AddNode(ry, AttrSet::Of({b}));
  g.AddNode(rz, AttrSet::Of({c}));
  ASSERT_TRUE(g.AddOuterJoinEdge(0, 1, EqCols(a, b)).ok());
  ASSERT_TRUE(g.AddJoinEdge(1, 2, EqCols(b, c)).ok());
  ASSERT_FALSE(CheckNice(g).nice);

  std::vector<ExprPtr> all = EnumerateIts(g, db);
  ASSERT_EQ(all.size(), 2u);  // X -> (Y - Z) and (X -> Y) - Z
  for (const ExprPtr& start : all) {
    ClosureOptions copts;
    copts.only_result_preserving = true;
    ClosureResult closure = BtClosure(start, copts);
    EXPECT_EQ(closure.trees.size(), 1u)
        << "preserving closure escaped " << start->ToString();
    // The unrestricted closure still reaches both (Lemma 3 holds for this
    // graph even though it is not nice: the BT is applicable, just not
    // preserving).
    ClosureResult full = BtClosure(start);
    EXPECT_EQ(full.trees.size(), 2u);
  }
}

}  // namespace
}  // namespace fro
