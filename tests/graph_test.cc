// Query-graph construction and graph(Q) extraction tests.

#include <gtest/gtest.h>

#include "graph/from_expr.h"
#include "graph/query_graph.h"
#include "relational/database.h"

namespace fro {
namespace {

class GraphOfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = *db_.AddRelation("X", {"a", "b"});
    y_ = *db_.AddRelation("Y", {"c", "d"});
    z_ = *db_.AddRelation("Z", {"e"});
    xa_ = db_.Attr("X", "a");
    xb_ = db_.Attr("X", "b");
    yc_ = db_.Attr("Y", "c");
    yd_ = db_.Attr("Y", "d");
    ze_ = db_.Attr("Z", "e");
  }

  Database db_;
  RelId x_, y_, z_;
  AttrId xa_, xb_, yc_, yd_, ze_;
};

TEST_F(GraphOfTest, JoinChain) {
  ExprPtr q = Expr::Join(
      Expr::Join(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_), EqCols(xa_, yc_)),
      Expr::Leaf(z_, db_), EqCols(yd_, ze_));
  Result<QueryGraph> g = GraphOf(q, db_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3);
  EXPECT_EQ(g->num_edges(), 2);
  EXPECT_FALSE(g->edge(0).directed);
  EXPECT_FALSE(g->edge(1).directed);
  EXPECT_TRUE(g->IsConnected(g->AllMask()));
}

TEST_F(GraphOfTest, OuterJoinDirection) {
  ExprPtr q = Expr::OuterJoin(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                              EqCols(xa_, yc_), /*preserves_left=*/true);
  Result<QueryGraph> g = GraphOf(q, db_);
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->num_edges(), 1);
  EXPECT_TRUE(g->edge(0).directed);
  EXPECT_EQ(g->node_rel(g->edge(0).u), x_);  // preserved
  EXPECT_EQ(g->node_rel(g->edge(0).v), y_);  // null-supplied
  // The symmetric form points the same way.
  ExprPtr sym = Expr::OuterJoin(Expr::Leaf(y_, db_), Expr::Leaf(x_, db_),
                                EqCols(xa_, yc_), /*preserves_left=*/false);
  Result<QueryGraph> g2 = GraphOf(sym, db_);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->node_rel(g2->edge(0).u), x_);
}

TEST_F(GraphOfTest, ParallelConjunctsCollapse) {
  // Two conjuncts between X and Y collapse into one edge (Section 1.2's
  // F-Name / L-Name example).
  PredicatePtr pred = Predicate::And(
      {EqCols(xa_, yc_), EqCols(xb_, yd_)});
  ExprPtr q = Expr::Join(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_), pred);
  Result<QueryGraph> g = GraphOf(q, db_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
  EXPECT_EQ(g->edge(0).pred->Conjuncts(g->edge(0).pred).size(), 2u);
}

TEST_F(GraphOfTest, ThreeRelationConjunctIsUndefined) {
  // A conjunct referencing three ground relations leaves the graph
  // undefined.
  PredicatePtr three = Predicate::Or({EqCols(xa_, yc_), EqCols(xa_, ze_)});
  ExprPtr q = Expr::Join(
      Expr::Join(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_), EqCols(xa_, yc_)),
      Expr::Leaf(z_, db_), three);
  EXPECT_FALSE(GraphOf(q, db_).ok());
}

TEST_F(GraphOfTest, OuterjoinPredicateMustSpanExactlyTwoRelations) {
  PredicatePtr three = Predicate::Or({EqCols(xa_, ze_), EqCols(yd_, ze_)});
  ExprPtr q = Expr::OuterJoin(
      Expr::Join(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_), EqCols(xa_, yc_)),
      Expr::Leaf(z_, db_), three);
  EXPECT_FALSE(GraphOf(q, db_).ok());
}

TEST_F(GraphOfTest, NonCrossingConjunctIsRejected) {
  // A "join" conjunct between two relations on the same side.
  PredicatePtr pxy = EqCols(xa_, yc_);
  ExprPtr q = Expr::Join(
      Expr::Join(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_), pxy),
      Expr::Leaf(z_, db_),
      Predicate::And({EqCols(yd_, ze_), EqCols(xb_, yd_)}));
  // The X-Y conjunct on the upper operator does not cross it... it does
  // reference both sides? X and Y are both on the left. Rejected.
  EXPECT_FALSE(GraphOf(q, db_).ok());
}

TEST_F(GraphOfTest, NonJoinOperatorsHaveNoGraph) {
  ExprPtr aj = Expr::Antijoin(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                              EqCols(xa_, yc_));
  EXPECT_FALSE(GraphOf(aj, db_).ok());
  ExprPtr restrict = Expr::Restrict(Expr::Leaf(x_, db_),
                                    CmpLit(CmpOp::kGt, xa_, Value::Int(0)));
  EXPECT_FALSE(GraphOf(restrict, db_).ok());
}

TEST_F(GraphOfTest, CartesianProductRejected) {
  ExprPtr q = Expr::Join(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                         Predicate::Const(true));
  EXPECT_FALSE(GraphOf(q, db_).ok());
}

TEST(QueryGraphTest, MaskHelpers) {
  QueryGraph g;
  g.AddNode(0, AttrSet::Of({0}));
  g.AddNode(1, AttrSet::Of({1}));
  g.AddNode(2, AttrSet::Of({2}));
  ASSERT_TRUE(g.AddJoinEdge(0, 1, EqCols(0, 1)).ok());
  ASSERT_TRUE(g.AddOuterJoinEdge(1, 2, EqCols(1, 2)).ok());
  EXPECT_EQ(g.AllMask(), 0b111u);
  EXPECT_TRUE(g.IsConnected(0b111));
  EXPECT_TRUE(g.IsConnected(0b011));
  EXPECT_FALSE(g.IsConnected(0b101));  // 0 and 2 not adjacent
  EXPECT_TRUE(g.IsConnected(0b001));
  EXPECT_FALSE(g.IsConnected(0));
  EXPECT_EQ(g.Neighbors(0b001), 0b010u);
  EXPECT_EQ(g.Neighbors(0b010), 0b101u);
  EXPECT_EQ(g.EdgesCrossing(0b001, 0b110).size(), 1u);
  EXPECT_EQ(g.EdgesWithin(0b011).size(), 1u);
  EXPECT_EQ(g.EdgesWithin(0b111).size(), 2u);
}

TEST(QueryGraphTest, ParallelOuterjoinEdgeRejected) {
  QueryGraph g;
  g.AddNode(0, AttrSet::Of({0}));
  g.AddNode(1, AttrSet::Of({1}));
  ASSERT_TRUE(g.AddJoinEdge(0, 1, EqCols(0, 1)).ok());
  EXPECT_FALSE(g.AddOuterJoinEdge(0, 1, EqCols(0, 1)).ok());
  QueryGraph g2;
  g2.AddNode(0, AttrSet::Of({0}));
  g2.AddNode(1, AttrSet::Of({1}));
  ASSERT_TRUE(g2.AddOuterJoinEdge(0, 1, EqCols(0, 1)).ok());
  EXPECT_FALSE(g2.AddJoinEdge(0, 1, EqCols(0, 1)).ok());
  EXPECT_FALSE(g2.AddOuterJoinEdge(1, 0, EqCols(0, 1)).ok());
}

}  // namespace
}  // namespace fro
