// Implementing-tree enumeration and counting tests.

#include <gtest/gtest.h>

#include <set>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "graph/from_expr.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

// Builds db with n single-column relations and a chain query graph
// R0 - R1 - ... with the given edge kinds ('j' join, 'o' outerjoin
// directed forward, 'b' outerjoin directed backward).
struct ChainFixture {
  std::unique_ptr<Database> db;
  QueryGraph graph;
};

ChainFixture MakeChain(const std::string& kinds) {
  ChainFixture f;
  f.db = std::make_unique<Database>();
  int n = static_cast<int>(kinds.size()) + 1;
  for (int i = 0; i < n; ++i) {
    RelId r = *f.db->AddRelation("R" + std::to_string(i), {"a"});
    f.graph.AddNode(r, f.db->scheme(r).ToAttrSet());
  }
  for (int i = 0; i < n - 1; ++i) {
    AttrId left = f.db->Attr("R" + std::to_string(i), "a");
    AttrId right = f.db->Attr("R" + std::to_string(i + 1), "a");
    PredicatePtr pred = EqCols(left, right);
    Status s;
    switch (kinds[static_cast<size_t>(i)]) {
      case 'j':
        s = f.graph.AddJoinEdge(i, i + 1, pred);
        break;
      case 'o':
        s = f.graph.AddOuterJoinEdge(i, i + 1, pred);
        break;
      case 'b':
        s = f.graph.AddOuterJoinEdge(i + 1, i, pred);
        break;
    }
    EXPECT_TRUE(s.ok());
  }
  return f;
}

// The number of binary trees over a chain of n leaves where every subtree
// is an interval: the Catalan number C(n-1).
uint64_t Catalan(int n) {
  uint64_t c = 1;
  for (int i = 0; i < n; ++i) {
    c = c * 2 * (2 * i + 1) / (i + 2);
  }
  return c;
}

TEST(CountItsTest, JoinChainsAreCatalan) {
  // A pure join chain of n relations has C(n-1) connectivity-preserving
  // parenthesizations (canonical trees, i.e. modulo reversal).
  EXPECT_EQ(CountIts(MakeChain("j").graph), 1u);
  EXPECT_EQ(CountIts(MakeChain("jj").graph), 2u);
  EXPECT_EQ(CountIts(MakeChain("jjj").graph), 5u);
  EXPECT_EQ(CountIts(MakeChain("jjjj").graph), 14u);
  EXPECT_EQ(CountIts(MakeChain("jjjjj").graph), Catalan(5));
  EXPECT_EQ(CountIts(MakeChain("jjjjjj").graph), Catalan(6));
}

TEST(CountItsTest, OuterjoinChainsCountLikeJoins) {
  // Outerjoin edges do not reduce the count of implementing trees; every
  // bipartition cutting one directed edge is realizable.
  EXPECT_EQ(CountIts(MakeChain("oo").graph), 2u);
  EXPECT_EQ(CountIts(MakeChain("ooo").graph), 5u);
  EXPECT_EQ(CountIts(MakeChain("job").graph), 5u);
}

TEST(CountItsTest, StarGraph) {
  // Star with center R0 and k rays: every permutation of attaching rays
  // gives a distinct tree: k! trees... but subtrees must be connected, so
  // each tree attaches rays to the center one at a time: k! orderings,
  // each producing a left-deep canonical tree. For k=3: 6.
  auto db = std::make_unique<Database>();
  QueryGraph g;
  for (int i = 0; i < 4; ++i) {
    RelId r = *db->AddRelation("R" + std::to_string(i), {"a"});
    g.AddNode(r, db->scheme(r).ToAttrSet());
  }
  for (int i = 1; i < 4; ++i) {
    ASSERT_TRUE(
        g.AddJoinEdge(0, i,
                      EqCols(db->Attr("R0", "a"),
                             db->Attr("R" + std::to_string(i), "a")))
            .ok());
  }
  EXPECT_EQ(CountIts(g), 6u);
}

TEST(CountItsTest, CycleGraphAllowsAllOrders) {
  // A triangle of join edges: any pair may combine first (3 choices); the
  // remaining relation joins on the two remaining edges (collapsed into
  // one operator): 3 trees.
  auto db = std::make_unique<Database>();
  QueryGraph g;
  for (int i = 0; i < 3; ++i) {
    RelId r = *db->AddRelation("R" + std::to_string(i), {"a"});
    g.AddNode(r, db->scheme(r).ToAttrSet());
  }
  ASSERT_TRUE(g.AddJoinEdge(0, 1, EqCols(db->Attr("R0", "a"),
                                         db->Attr("R1", "a"))).ok());
  ASSERT_TRUE(g.AddJoinEdge(1, 2, EqCols(db->Attr("R1", "a"),
                                         db->Attr("R2", "a"))).ok());
  ASSERT_TRUE(g.AddJoinEdge(0, 2, EqCols(db->Attr("R0", "a"),
                                         db->Attr("R2", "a"))).ok());
  EXPECT_EQ(CountIts(g), 3u);
}

TEST(CountItsTest, DisconnectedGraphHasNoIts) {
  auto db = std::make_unique<Database>();
  QueryGraph g;
  for (int i = 0; i < 2; ++i) {
    RelId r = *db->AddRelation("R" + std::to_string(i), {"a"});
    g.AddNode(r, db->scheme(r).ToAttrSet());
  }
  EXPECT_EQ(CountIts(g), 0u);
}

TEST(EnumerateItsTest, MatchesCountAndAllImplementGraph) {
  ChainFixture f = MakeChain("jo");
  std::vector<ExprPtr> trees = EnumerateIts(f.graph, *f.db);
  EXPECT_EQ(trees.size(), CountIts(f.graph));
  // Every enumerated tree is distinct and implements the same graph.
  std::set<std::string> fingerprints;
  for (const ExprPtr& t : trees) {
    EXPECT_TRUE(fingerprints.insert(t->Fingerprint()).second);
    Result<QueryGraph> g = GraphOf(t, *f.db);
    ASSERT_TRUE(g.ok()) << t->ToString();
    EXPECT_EQ(g->num_edges(), f.graph.num_edges());
  }
}

TEST(EnumerateItsTest, RespectsOuterjoinDirection) {
  ChainFixture f = MakeChain("o");
  std::vector<ExprPtr> trees = EnumerateIts(f.graph, *f.db);
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0]->kind(), OpKind::kOuterJoin);
  // Canonical orientation puts R0 on the left, and R0 is preserved.
  EXPECT_TRUE(trees[0]->preserves_left());
  ChainFixture b = MakeChain("b");
  std::vector<ExprPtr> btrees = EnumerateIts(b.graph, *b.db);
  ASSERT_EQ(btrees.size(), 1u);
  EXPECT_FALSE(btrees[0]->preserves_left());
}

TEST(EnumerateItsTest, LimitStopsEarly) {
  ChainFixture f = MakeChain("jjjjj");
  std::vector<ExprPtr> trees = EnumerateIts(f.graph, *f.db, /*limit=*/3);
  EXPECT_LE(trees.size(), 3u);
}

TEST(RandomItTest, ProducesValidDistinctTrees) {
  Rng rng(501);
  ChainFixture f = MakeChain("jjjj");
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) {
    ExprPtr t = RandomIt(f.graph, *f.db, &rng);
    ASSERT_NE(t, nullptr);
    Result<QueryGraph> g = GraphOf(t, *f.db);
    ASSERT_TRUE(g.ok());
    seen.insert(t->Fingerprint());
  }
  // 14 trees exist; uniform sampling should find most of them.
  EXPECT_GE(seen.size(), 10u);
}

TEST(CanonicalOrientationTest, NormalizesReversals) {
  ChainFixture f = MakeChain("o");
  ExprPtr canonical = EnumerateIts(f.graph, *f.db)[0];
  // Build the reversed form by hand: R1 <- R0.
  ExprPtr reversed = Expr::OuterJoin(Expr::Leaf(1, *f.db),
                                     Expr::Leaf(0, *f.db),
                                     f.graph.edge(0).pred,
                                     /*preserves_left=*/false);
  EXPECT_TRUE(ExprEquals(CanonicalOrientation(reversed), canonical));
  EXPECT_TRUE(
      ExprEquals(CanonicalOrientation(canonical), canonical));
}

TEST(CanonicalOrientationTest, RecursesThroughTree) {
  ChainFixture f = MakeChain("jj");
  std::vector<ExprPtr> trees = EnumerateIts(f.graph, *f.db);
  for (const ExprPtr& t : trees) {
    // Enumerated trees are already canonical.
    EXPECT_TRUE(ExprEquals(CanonicalOrientation(t), t));
  }
}

// Property: on random nice graphs the enumeration (a) matches the DP
// count, and (b) every enumerated tree has graph(Q) == G.
TEST(EnumeratePropertyTest, EnumerationConsistentOnRandomGraphs) {
  Rng rng(502);
  for (int trial = 0; trial < 20; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(4));
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    uint64_t count = CountIts(q.graph);
    ASSERT_GT(count, 0u);
    if (count > 2000) continue;  // keep the test fast
    std::vector<ExprPtr> trees = EnumerateIts(q.graph, *q.db);
    EXPECT_EQ(trees.size(), count);
    std::set<std::string> fingerprints;
    for (const ExprPtr& t : trees) {
      EXPECT_TRUE(fingerprints.insert(t->Fingerprint()).second);
    }
  }
}

}  // namespace
}  // namespace fro
