// Instrumented-execution tests: the per-operator counters kept by the
// pipelined Volcano executor must agree, operator by operator, with the
// kernel counters the materializing evaluator accumulates; EXPLAIN
// ANALYZE must reproduce Example 1's retrieval arithmetic (2n+1 base
// tuples for the naive order, 3 for the reordered one) through the
// pipelined executor; plus regression tests for the hash-index lifetime
// bug and null-key anti/semijoin agreement.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "exec/build.h"
#include "exec/operators.h"
#include "optimizer/explain.h"
#include "testing/datagen.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

// Counter equality ignoring wall-clock fields (the evaluator keeps none).
void ExpectCountersEq(const ExecStats& exec, const ExecStats& eval,
                      const std::string& context) {
  EXPECT_EQ(exec.left_reads, eval.left_reads) << context;
  EXPECT_EQ(exec.right_reads, eval.right_reads) << context;
  EXPECT_EQ(exec.emitted, eval.emitted) << context;
  EXPECT_EQ(exec.probes, eval.probes) << context;
  EXPECT_EQ(exec.predicate_evals, eval.predicate_evals) << context;
}

// Runs `expr` through both engines and checks results and counters.
void ExpectEnginesAgree(const ExprPtr& expr, const Database& db,
                        JoinAlgo algo) {
  EvalOptions options;
  options.algo = algo;
  EvalStats eval_stats;
  Relation reference = Eval(expr, db, options, &eval_stats);

  IteratorPtr root = BuildIterator(expr, db, algo);
  Relation piped = Drain(root.get());
  EXPECT_TRUE(BagEquals(reference, piped)) << expr->ToString();

  ExecStats exec_totals = CollectPipelineStats(root.get());
  ExpectCountersEq(exec_totals, eval_stats.totals, expr->ToString());
}

class ExecStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = *db_.AddRelation("R", {"a", "b"});
    s_ = *db_.AddRelation("S", {"c", "d"});
    a_ = db_.Attr("R", "a");
    b_ = db_.Attr("R", "b");
    c_ = db_.Attr("S", "c");
    d_ = db_.Attr("S", "d");
    db_.AddRow(r_, {Value::Int(1), Value::Int(10)});
    db_.AddRow(r_, {Value::Int(2), Value::Int(20)});
    db_.AddRow(r_, {Value::Int(2), Value::Int(21)});
    db_.AddRow(r_, {Value::Null(), Value::Int(30)});
    db_.AddRow(s_, {Value::Int(1), Value::Int(100)});
    db_.AddRow(s_, {Value::Int(1), Value::Int(101)});
    db_.AddRow(s_, {Value::Int(3), Value::Int(102)});
    db_.AddRow(s_, {Value::Null(), Value::Int(103)});
  }

  ExprPtr LeafR() const { return Expr::Leaf(r_, db_); }
  ExprPtr LeafS() const { return Expr::Leaf(s_, db_); }

  Database db_;
  RelId r_, s_;
  AttrId a_, b_, c_, d_;
};

// Every operator kind, both engines' join strategies: the root iterator's
// counters must equal the evaluator's kernel counters for the same
// single-operator expression.
TEST_F(ExecStatsTest, AgreementMatrixOverAllOperatorKinds) {
  std::vector<ExprPtr> exprs = {
      Expr::Join(LeafR(), LeafS(), EqCols(a_, c_)),
      Expr::OuterJoin(LeafR(), LeafS(), EqCols(a_, c_),
                      /*preserves_left=*/true),
      Expr::OuterJoin(LeafR(), LeafS(), EqCols(a_, c_),
                      /*preserves_left=*/false),
      Expr::Antijoin(LeafR(), LeafS(), EqCols(a_, c_), /*keeps_left=*/true),
      Expr::Antijoin(LeafR(), LeafS(), EqCols(a_, c_), /*keeps_left=*/false),
      Expr::Semijoin(LeafR(), LeafS(), EqCols(a_, c_), /*keeps_left=*/true),
      Expr::Semijoin(LeafR(), LeafS(), EqCols(a_, c_), /*keeps_left=*/false),
      Expr::Goj(LeafR(), LeafS(), EqCols(a_, c_), AttrSet::Of({a_, b_})),
      Expr::Restrict(LeafR(), CmpLit(CmpOp::kGe, b_, Value::Int(20))),
      Expr::Project(LeafR(), {a_}, /*dedup=*/false),
      Expr::Project(LeafR(), {a_}, /*dedup=*/true),
      Expr::Union(LeafR(), LeafS()),
      // A non-equi predicate forces the nested-loop path even under kAuto.
      Expr::Join(LeafR(), LeafS(), CmpCols(CmpOp::kLt, a_, c_)),
  };
  for (const ExprPtr& expr : exprs) {
    for (JoinAlgo algo : {JoinAlgo::kAuto, JoinAlgo::kNestedLoop}) {
      ExpectEnginesAgree(expr, db_, algo);
    }
  }
}

// Multi-operator pipeline: summing counters over all non-scan iterators
// must match the evaluator's tree-wide totals.
TEST_F(ExecStatsTest, CompositePipelineTotalsAgree) {
  ExprPtr expr = Expr::Project(
      Expr::Restrict(Expr::Join(LeafR(), LeafS(), EqCols(a_, c_)),
                     CmpLit(CmpOp::kGe, d_, Value::Int(100))),
      {a_, d_}, /*dedup=*/true);
  for (JoinAlgo algo : {JoinAlgo::kAuto, JoinAlgo::kNestedLoop}) {
    ExpectEnginesAgree(expr, db_, algo);
  }
}

TEST(ExecStatsPropertyTest, CountersAgreeOnRandomQueries) {
  Rng rng(4207);
  for (int trial = 0; trial < 30; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(3));
    options.rows.null_prob = 0.2;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
    ASSERT_NE(tree, nullptr);
    ExpectEnginesAgree(tree, *q.db, JoinAlgo::kAuto);
    ExpectEnginesAgree(tree, *q.db, JoinAlgo::kNestedLoop);
  }
}

// Per-operator stats: the root join of a two-join plan must report its own
// counters (not tree totals), and Scan nodes report only emitted rows.
TEST_F(ExecStatsTest, PerOperatorAttribution) {
  ExprPtr expr = Expr::Join(LeafR(), LeafS(), EqCols(a_, c_));
  IteratorPtr root = BuildIterator(expr, db_, JoinAlgo::kAuto);
  Relation out = Drain(root.get());
  EXPECT_EQ(root->stats().emitted, out.NumRows());
  // Hash join: one probe per left row, including the null-key row.
  EXPECT_EQ(root->stats().probes, 4u);
  EXPECT_EQ(root->stats().left_reads, 4u);
  ASSERT_EQ(root->children().size(), 2u);
  for (TupleIterator* child : root->children()) {
    EXPECT_STREQ(child->physical_name(), "Scan");
    EXPECT_EQ(child->stats().left_reads, 0u);
    EXPECT_EQ(child->stats().probes, 0u);
    EXPECT_GT(child->stats().emitted, 0u);
  }
}

// --- Example 1 through the pipelined executor -------------------------

// The paper's Example 1 at scale n: the naive order R1 -> (R2 -> R3)
// retrieves 2n+1 base tuples while the reordered (R1 -> R2) -> R3
// retrieves 3, both for the same single-row result. (The paper uses
// n = 10^7; the arithmetic 2n+1 vs. 3 is what matters, so the test
// sweeps moderate n.)
TEST(ExecStatsExample1Test, PipelinedBaseRetrievalAccounting) {
  for (int n : {10, 50, 500}) {
    std::unique_ptr<Database> db = MakeExample1Database(n);
    RelId r1 = db->Rel("R1");
    RelId r2 = db->Rel("R2");
    RelId r3 = db->Rel("R3");
    AttrId r1k = db->Attr("R1", "k");
    AttrId r2k = db->Attr("R2", "k");
    AttrId r2fk = db->Attr("R2", "fk");
    AttrId r3k = db->Attr("R3", "k");

    ExprPtr naive = Expr::OuterJoin(
        Expr::Leaf(r1, *db),
        Expr::OuterJoin(Expr::Leaf(r2, *db), Expr::Leaf(r3, *db),
                        EqCols(r2fk, r3k), /*preserves_left=*/true),
        EqCols(r1k, r2k), /*preserves_left=*/true);
    ExprPtr reordered = Expr::OuterJoin(
        Expr::OuterJoin(Expr::Leaf(r1, *db), Expr::Leaf(r2, *db),
                        EqCols(r1k, r2k), /*preserves_left=*/true),
        Expr::Leaf(r3, *db), EqCols(r2fk, r3k), /*preserves_left=*/true);

    ExplainAnalyzeResult naive_run = ExplainAnalyze(naive, *db);
    ExplainAnalyzeResult reordered_run = ExplainAnalyze(reordered, *db);

    EXPECT_TRUE(BagEquals(naive_run.result, reordered_run.result)) << n;
    EXPECT_EQ(naive_run.result.NumRows(), 1u) << n;
    EXPECT_EQ(naive_run.base_tuples_read, 2u * static_cast<uint64_t>(n) + 1u)
        << n;
    EXPECT_EQ(reordered_run.base_tuples_read, 3u) << n;

    // The executor's accounting must equal the evaluator's.
    for (const ExprPtr& expr : {naive, reordered}) {
      EvalStats eval_stats;
      Eval(expr, *db, EvalOptions(), &eval_stats);
      ExplainAnalyzeResult run = ExplainAnalyze(expr, *db);
      ExpectCountersEq(run.totals, eval_stats.totals, expr->ToString());
      EXPECT_EQ(run.base_tuples_read, eval_stats.base_tuples_read);
    }
  }
}

// --- Regression: hash-index lifetime (satellite 1) --------------------

// HashJoinIterator::Open used to build its HashIndex over a local
// normalized copy of the build side that was destroyed when Open
// returned. With keys that actually require normalization (ints probed
// by doubles) the index must keep a live normalized relation to hash
// probe keys consistently.
TEST(HashIndexLifetimeTest, NormalizedBuildSideSurvivesOpen) {
  Database db;
  RelId r = *db.AddRelation("R", {"x"});
  RelId s = *db.AddRelation("S", {"y"});
  AttrId x = db.Attr("R", "x");
  AttrId y = db.Attr("S", "y");
  // Probe side: doubles. Build side: ints. SQL equality makes 1 == 1.0,
  // so the index must be built over key-normalized build rows.
  db.AddRow(r, {Value::Double(1.0)});
  db.AddRow(r, {Value::Double(2.5)});
  db.AddRow(r, {Value::Double(3.0)});
  db.AddRow(s, {Value::Int(1)});
  db.AddRow(s, {Value::Int(2)});
  db.AddRow(s, {Value::Int(3)});

  auto make_join = [&] {
    return std::make_unique<HashJoinIterator>(
        std::make_unique<ScanIterator>(&db.relation(r)),
        std::make_unique<ScanIterator>(&db.relation(s)), EqCols(x, y),
        JoinMode::kInner, std::vector<AttrId>{x}, std::vector<AttrId>{y});
  };

  auto join = make_join();
  Relation out = Drain(join.get());
  EXPECT_EQ(out.NumRows(), 2u);  // 1.0 == 1 and 3.0 == 3

  // Output rows must carry the build side's *original* values, not the
  // normalized copies used for hashing.
  int y_pos = out.scheme().IndexOf(y);
  ASSERT_GE(y_pos, 0);
  for (size_t i = 0; i < out.NumRows(); ++i) {
    EXPECT_EQ(out.row(i).value(static_cast<size_t>(y_pos)).kind(),
              Value::Kind::kInt)
        << "row " << i;
  }

  // Rescan exercises a second build over the member relation.
  auto again = make_join();
  Relation first = Drain(again.get());
  Relation second = Drain(again.get());
  EXPECT_TRUE(BagEquals(first, second));

  // And through the full stack: evaluator and executor agree.
  ExprPtr expr = Expr::Join(Expr::Leaf(r, db), Expr::Leaf(s, db),
                            EqCols(x, y));
  ExpectEnginesAgree(expr, db, JoinAlgo::kAuto);
}

// --- Null join keys on both sides of anti/semijoin (satellite 4) ------

class NullKeyAntiSemiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = *db_.AddRelation("R", {"a"});
    s_ = *db_.AddRelation("S", {"c"});
    a_ = db_.Attr("R", "a");
    c_ = db_.Attr("S", "c");
    // Null keys on the probe side...
    db_.AddRow(r_, {Value::Int(1)});
    db_.AddRow(r_, {Value::Null()});
    db_.AddRow(r_, {Value::Int(2)});
    db_.AddRow(r_, {Value::Null()});
    // ...and on the build side.
    db_.AddRow(s_, {Value::Int(1)});
    db_.AddRow(s_, {Value::Null()});
    db_.AddRow(s_, {Value::Null()});
  }

  Database db_;
  RelId r_, s_;
  AttrId a_, c_;
};

TEST_F(NullKeyAntiSemiTest, AntijoinKeepsNullKeyRows) {
  // NULL = anything is unknown, so null-key R rows survive the antijoin.
  for (bool keeps_left : {true, false}) {
    ExprPtr expr =
        Expr::Antijoin(Expr::Leaf(r_, db_), Expr::Leaf(s_, db_),
                       EqCols(a_, c_), keeps_left);
    for (JoinAlgo algo : {JoinAlgo::kAuto, JoinAlgo::kNestedLoop}) {
      ExpectEnginesAgree(expr, db_, algo);
    }
    if (keeps_left) {
      Relation out = ExecutePipelined(expr, db_, JoinAlgo::kAuto);
      // {null, 2, null} survive; 1 is matched.
      EXPECT_EQ(out.NumRows(), 3u);
    }
  }
}

TEST_F(NullKeyAntiSemiTest, SemijoinDropsNullKeyRows) {
  for (bool keeps_left : {true, false}) {
    ExprPtr expr =
        Expr::Semijoin(Expr::Leaf(r_, db_), Expr::Leaf(s_, db_),
                       EqCols(a_, c_), keeps_left);
    for (JoinAlgo algo : {JoinAlgo::kAuto, JoinAlgo::kNestedLoop}) {
      ExpectEnginesAgree(expr, db_, algo);
    }
    if (keeps_left) {
      Relation out = ExecutePipelined(expr, db_, JoinAlgo::kAuto);
      EXPECT_EQ(out.NumRows(), 1u);  // only a=1 has a match
    }
  }
}

// --- Union padding with partially-overlapping schemes (satellite 4) ---

TEST_F(ExecStatsTest, UnionPadsPartiallyOverlappingSchemes) {
  // Left scheme {a, b}, right scheme {b} (shared attribute): the union
  // scheme is {a, b}; right rows must be padded with null for `a` while
  // keeping their `b` values in the right column.
  ExprPtr expr =
      Expr::Union(LeafR(), Expr::Project(LeafR(), {b_}, /*dedup=*/false));
  ExpectEnginesAgree(expr, db_, JoinAlgo::kAuto);

  Relation out = ExecutePipelined(expr, db_, JoinAlgo::kAuto);
  EXPECT_EQ(out.NumRows(), 8u);
  ASSERT_EQ(out.scheme().size(), 2u);
  size_t a_pos = static_cast<size_t>(out.scheme().IndexOf(a_));
  size_t b_pos = static_cast<size_t>(out.scheme().IndexOf(b_));
  size_t padded = 0;
  for (size_t i = 0; i < out.NumRows(); ++i) {
    EXPECT_FALSE(out.row(i).value(b_pos).is_null()) << "row " << i;
    if (out.row(i).value(a_pos).is_null()) ++padded;
  }
  // One original null `a` from R plus four padded right-side rows.
  EXPECT_EQ(padded, 5u);
}

// --- Blocking iterators thread stats through the kernels --------------

TEST_F(ExecStatsTest, SortMergeAndGojIteratorsReportKernelCounters) {
  {
    auto smj = std::make_unique<SortMergeJoinIterator>(
        std::make_unique<ScanIterator>(&db_.relation(r_)),
        std::make_unique<ScanIterator>(&db_.relation(s_)),
        EqCols(a_, c_), JoinMode::kInner);
    Relation out = Drain(smj.get());
    EXPECT_GT(out.NumRows(), 0u);
    EXPECT_EQ(smj->stats().emitted, out.NumRows());
    // The kernel read both inputs; the stats are no longer dropped.
    EXPECT_GT(smj->stats().left_reads, 0u);
  }
  {
    ExprPtr goj = Expr::Goj(LeafR(), LeafS(), EqCols(a_, c_),
                            AttrSet::Of({a_, b_}));
    IteratorPtr root = BuildIterator(goj, db_, JoinAlgo::kAuto);
    Relation out = Drain(root.get());
    EXPECT_EQ(root->stats().emitted, out.NumRows());
    EXPECT_GT(root->stats().left_reads, 0u);
  }
}

// Timing is off by default and populated once enabled.
TEST_F(ExecStatsTest, TimingOnlyWhenEnabled) {
  ExprPtr expr = Expr::Join(LeafR(), LeafS(), EqCols(a_, c_));
  {
    IteratorPtr root = BuildIterator(expr, db_, JoinAlgo::kAuto);
    Drain(root.get());
    EXPECT_EQ(root->stats().open_ns, 0u);
    EXPECT_EQ(root->stats().next_ns, 0u);
  }
  {
    IteratorPtr root = BuildIterator(expr, db_, JoinAlgo::kAuto);
    root->EnableTiming();
    Drain(root.get());
    EXPECT_GT(root->stats().open_ns + root->stats().next_ns, 0u);
  }
}

}  // namespace
}  // namespace fro
