// Tests for restriction pushdown and constraint-based outerjoin
// conversion (the two remaining Section 4 discussions).

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/pushdown.h"
#include "common/rng.h"
#include "optimizer/constraints.h"
#include "testing/datagen.h"

namespace fro {
namespace {

class PushdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = *db_.AddRelation("X", {"a"});
    y_ = *db_.AddRelation("Y", {"b"});
    a_ = db_.Attr("X", "a");
    b_ = db_.Attr("Y", "b");
    db_.AddRow(x_, {Value::Int(1)});
    db_.AddRow(x_, {Value::Int(2)});
    db_.AddRow(y_, {Value::Int(1)});
  }
  ExprPtr X() { return Expr::Leaf(x_, db_); }
  ExprPtr Y() { return Expr::Leaf(y_, db_); }

  Database db_;
  RelId x_, y_;
  AttrId a_, b_;
};

TEST_F(PushdownTest, PushesThroughJoinToTheRightSide) {
  ExprPtr q = Expr::Restrict(Expr::Join(X(), Y(), EqCols(a_, b_)),
                             CmpLit(CmpOp::kGt, a_, Value::Int(0)));
  PushdownResult result = PushDownRestrictions(q);
  EXPECT_EQ(result.conjuncts_pushed, 1);
  // Restrict now sits on the X leaf.
  EXPECT_EQ(result.expr->kind(), OpKind::kJoin);
  EXPECT_EQ(result.expr->left()->kind(), OpKind::kRestrict);
  EXPECT_TRUE(result.expr->left()->left()->is_leaf());
  EXPECT_TRUE(BagEquals(Eval(q, db_), Eval(result.expr, db_)));
}

TEST_F(PushdownTest, SpanningConjunctStays) {
  ExprPtr q = Expr::Restrict(Expr::Join(X(), Y(), EqCols(a_, b_)),
                             CmpCols(CmpOp::kLe, a_, b_));
  PushdownResult result = PushDownRestrictions(q);
  EXPECT_EQ(result.conjuncts_pushed, 0);
  EXPECT_EQ(result.expr->kind(), OpKind::kRestrict);
}

TEST_F(PushdownTest, PreservedSideOfOuterjoinAccepts) {
  ExprPtr q = Expr::Restrict(Expr::OuterJoin(X(), Y(), EqCols(a_, b_)),
                             CmpLit(CmpOp::kGt, a_, Value::Int(0)));
  PushdownResult result = PushDownRestrictions(q);
  EXPECT_EQ(result.conjuncts_pushed, 1);
  EXPECT_EQ(result.expr->kind(), OpKind::kOuterJoin);
  EXPECT_EQ(result.expr->left()->kind(), OpKind::kRestrict);
  EXPECT_TRUE(BagEquals(Eval(q, db_), Eval(result.expr, db_)));
}

TEST_F(PushdownTest, NullSuppliedSideRefuses) {
  // The IS NULL restriction selects padded tuples; pushing it would be
  // wrong, and the pass must keep it above.
  ExprPtr q = Expr::Restrict(Expr::OuterJoin(X(), Y(), EqCols(a_, b_)),
                             Predicate::IsNull(Operand::Column(b_)));
  PushdownResult result = PushDownRestrictions(q);
  EXPECT_EQ(result.conjuncts_pushed, 0);
  EXPECT_EQ(result.expr->kind(), OpKind::kRestrict);
  EXPECT_TRUE(BagEquals(Eval(q, db_), Eval(result.expr, db_)));
  // Demonstrate why: pushing would change the result.
  ExprPtr wrong = Expr::OuterJoin(
      X(), Expr::Restrict(Y(), Predicate::IsNull(Operand::Column(b_))),
      EqCols(a_, b_));
  EXPECT_FALSE(BagEquals(Eval(q, db_), Eval(wrong, db_)));
}

TEST_F(PushdownTest, MergesStackedRestrictsAndSplitsConjuncts) {
  ExprPtr q = Expr::Restrict(
      Expr::Restrict(Expr::Join(X(), Y(), EqCols(a_, b_)),
                     CmpLit(CmpOp::kGt, a_, Value::Int(0))),
      CmpLit(CmpOp::kLt, b_, Value::Int(5)));
  PushdownResult result = PushDownRestrictions(q);
  EXPECT_EQ(result.conjuncts_pushed, 2);
  EXPECT_EQ(result.expr->kind(), OpKind::kJoin);
  EXPECT_TRUE(BagEquals(Eval(q, db_), Eval(result.expr, db_)));
}

// Property: pushdown never changes results across random shapes.
TEST(PushdownPropertyTest, AlwaysEquivalent) {
  Rng rng(2601);
  for (int trial = 0; trial < 60; ++trial) {
    RandomRowsOptions rows;
    rows.rows_max = 6;
    rows.domain = 3;
    rows.null_prob = 0.2;
    auto db = MakeRandomDatabase(3, 2, rows, &rng);
    AttrId xa = db->Attr("R0", "a0");
    AttrId ya = db->Attr("R1", "a0");
    AttrId yb = db->Attr("R1", "a1");
    AttrId za = db->Attr("R2", "a0");
    ExprPtr x = Expr::Leaf(db->Rel("R0"), *db);
    ExprPtr y = Expr::Leaf(db->Rel("R1"), *db);
    ExprPtr z = Expr::Leaf(db->Rel("R2"), *db);
    ExprPtr core = Expr::OuterJoin(Expr::Join(x, y, EqCols(xa, ya)), z,
                                   EqCols(yb, za));
    PredicatePtr filter;
    switch (trial % 4) {
      case 0:
        filter = CmpLit(CmpOp::kGe, xa, Value::Int(1));
        break;
      case 1:
        filter = Predicate::IsNull(Operand::Column(za));
        break;
      case 2:
        filter = Predicate::And({CmpLit(CmpOp::kGe, xa, Value::Int(1)),
                                 CmpLit(CmpOp::kLe, yb, Value::Int(2))});
        break;
      case 3:
        filter = CmpCols(CmpOp::kLe, xa, yb);
        break;
    }
    ExprPtr q = Expr::Restrict(core, filter);
    PushdownResult result = PushDownRestrictions(q);
    EXPECT_TRUE(BagEquals(Eval(q, *db), Eval(result.expr, *db)))
        << q->ToString() << " => " << result.expr->ToString();
  }
}

// --- Constraint-based conversion ----------------------------------------

class ConstraintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeExample1Database(5);
    r1_ = db_->Rel("R1");
    r2_ = db_->Rel("R2");
    r3_ = db_->Rel("R3");
    r2fk_ = db_->Attr("R2", "fk");
    r3k_ = db_->Attr("R3", "k");
    r1k_ = db_->Attr("R1", "k");
    r2k_ = db_->Attr("R2", "k");
  }

  std::unique_ptr<Database> db_;
  RelId r1_, r2_, r3_;
  AttrId r1k_, r2k_, r2fk_, r3k_;
};

TEST_F(ConstraintTest, ValidationAcceptsAndRejects) {
  ConstraintSet good;
  good.AddForeignKey(r2fk_, r3k_);  // every R2.fk appears in R3.k
  EXPECT_TRUE(good.Validate(*db_).ok());
  ConstraintSet bad;
  bad.AddForeignKey(r3k_, r1k_);  // R3 keys 1..4 missing from R1
  EXPECT_FALSE(bad.Validate(*db_).ok());
}

TEST_F(ConstraintTest, LosslessOuterjoinConverts) {
  ConstraintSet constraints;
  constraints.AddForeignKey(r2fk_, r3k_);
  ExprPtr q = Expr::OuterJoin(Expr::Leaf(r2_, *db_), Expr::Leaf(r3_, *db_),
                              EqCols(r2fk_, r3k_));
  Result<ConstraintSimplifyResult> result =
      SimplifyWithConstraints(q, constraints, *db_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->converted, 1);
  EXPECT_EQ(result->expr->kind(), OpKind::kJoin);
  EXPECT_TRUE(BagEquals(Eval(q, *db_), Eval(result->expr, *db_)));
  EXPECT_TRUE(result->still_freely_reorderable);
}

TEST_F(ConstraintTest, UncoveredOuterjoinKept) {
  ConstraintSet constraints;  // empty
  ExprPtr q = Expr::OuterJoin(Expr::Leaf(r2_, *db_), Expr::Leaf(r3_, *db_),
                              EqCols(r2fk_, r3k_));
  Result<ConstraintSimplifyResult> result =
      SimplifyWithConstraints(q, constraints, *db_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->converted, 0);
}

TEST_F(ConstraintTest, PaperCaveatReorderabilityLost) {
  // R1 -> R2 -> R3 is freely reorderable; converting the inner outerjoin
  // via the R2.fk -> R3.k constraint yields R1 -> (R2 - R3): still equal
  // on this database, but no longer freely reorderable.
  ConstraintSet constraints;
  constraints.AddForeignKey(r2fk_, r3k_);
  ExprPtr chain = Expr::OuterJoin(
      Expr::Leaf(r1_, *db_),
      Expr::OuterJoin(Expr::Leaf(r2_, *db_), Expr::Leaf(r3_, *db_),
                      EqCols(r2fk_, r3k_)),
      EqCols(r1k_, r2k_));
  Result<ConstraintSimplifyResult> result =
      SimplifyWithConstraints(chain, constraints, *db_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->converted, 1);
  EXPECT_TRUE(BagEquals(Eval(chain, *db_), Eval(result->expr, *db_)));
  EXPECT_FALSE(result->still_freely_reorderable);
}

TEST_F(ConstraintTest, PaddedReferencingColumnBlocksConversion) {
  // (R1 -> R2) -> R3 with fk R2.fk -> R3.k: R2.fk may be padded to null
  // by the inner outerjoin, so the outer conversion must NOT fire.
  ConstraintSet constraints;
  constraints.AddForeignKey(r2fk_, r3k_);
  ExprPtr q = Expr::OuterJoin(
      Expr::OuterJoin(Expr::Leaf(r1_, *db_), Expr::Leaf(r2_, *db_),
                      EqCols(r1k_, r2k_)),
      Expr::Leaf(r3_, *db_), EqCols(r2fk_, r3k_));
  Result<ConstraintSimplifyResult> result =
      SimplifyWithConstraints(q, constraints, *db_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->converted, 0);
}

TEST_F(ConstraintTest, ViolatedConstraintRefusesToRewrite) {
  ConstraintSet constraints;
  constraints.AddForeignKey(r3k_, r1k_);  // violated by the data
  ExprPtr q = Expr::OuterJoin(Expr::Leaf(r3_, *db_), Expr::Leaf(r1_, *db_),
                              EqCols(r3k_, r1k_));
  EXPECT_FALSE(SimplifyWithConstraints(q, constraints, *db_).ok());
}

}  // namespace
}  // namespace fro
