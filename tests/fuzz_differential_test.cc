// The differential harness end to end: randomized seeds must be
// divergence-free, a synthetically injected engine bug must be caught
// and shrunk to a tiny repro, and corpus serialization must round-trip.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "fuzz/case_gen.h"
#include "fuzz/corpus.h"
#include "fuzz/differential.h"
#include "fuzz/oracle.h"
#include "fuzz/shrink.h"
#include "optimizer/goj_rewrite.h"
#include "optimizer/optimizer.h"
#include "relational/ops.h"

namespace fro {
namespace {

// The tier-1 sweep: every check on a spread of seeds across all
// profiles. (CI's fuzz tier runs 500+ cases; this keeps tier 1 fast.)
TEST(FuzzDifferentialTest, RandomSeedsAreDivergenceFree) {
  for (uint64_t i = 0; i < 60; ++i) {
    FuzzCase fuzz_case = GenerateFuzzCase(DeriveSeed(0xd1ff, i));
    DiffReport report = RunDifferential(fuzz_case);
    EXPECT_TRUE(report.ok())
        << "case seed " << fuzz_case.seed << " profile "
        << FuzzProfileName(fuzz_case.profile) << "\n"
        << report.ToString();
  }
}

TEST(FuzzDifferentialTest, CaseGenerationIsDeterministic) {
  for (uint64_t seed : {1ull, 0xdecafull, 0x123456789abcull}) {
    FuzzCase a = GenerateFuzzCase(seed);
    FuzzCase b = GenerateFuzzCase(seed);
    EXPECT_EQ(a.profile, b.profile);
    EXPECT_EQ(a.query->Fingerprint(), b.query->Fingerprint());
    ASSERT_EQ(a.db->num_relations(), b.db->num_relations());
    for (RelId rel = 0; rel < static_cast<RelId>(a.db->num_relations());
         ++rel) {
      EXPECT_TRUE(BagEquals(a.db->relation(rel), b.db->relation(rel)));
    }
  }
}

// A buggy "engine" that silently drops outerjoin padding (exactly the
// mutation class a missing null-extension bug produces): evaluate the
// query with every outerjoin demoted to an inner join.
Relation EvalWithPaddingDropped(const ExprPtr& expr, const Database& db) {
  if (expr->is_leaf()) return OracleEval(expr, db);
  if (expr->kind() == OpKind::kOuterJoin) {
    ExprPtr as_join = Expr::Join(expr->left(), expr->right(), expr->pred());
    return OracleEval(as_join, db);
  }
  return OracleEval(expr, db);
}

// The acceptance-bar scenario: an injected engine bug must be caught by
// a differential sweep and shrunk to a <= 5-tuple repro that still
// serializes, parses back, and reproduces.
TEST(FuzzShrinkTest, InjectedPaddingBugShrinksToTinyRepro) {
  // The synthetic bug only fires when padding actually happens, so the
  // interesting-case predicate is "buggy engine disagrees with oracle".
  auto diverges = [](const FuzzCase& candidate) {
    return !BagEquals(OracleEval(candidate.query, *candidate.db),
                      EvalWithPaddingDropped(candidate.query, *candidate.db));
  };

  int caught = 0;
  for (uint64_t i = 0; i < 40 && caught < 3; ++i) {
    FuzzCase fuzz_case = GenerateFuzzCase(DeriveSeed(0xbadbeef, i));
    if (!diverges(fuzz_case)) continue;
    ++caught;

    ShrinkStats stats;
    FuzzCase shrunk = ShrinkCaseWith(fuzz_case, diverges, &stats);
    EXPECT_TRUE(diverges(shrunk)) << "shrinking lost the bug";
    EXPECT_LE(CaseTupleCount(shrunk), 5u)
        << "seed " << fuzz_case.seed << ": shrunk repro still has "
        << CaseTupleCount(shrunk) << " tuples";
    EXPECT_LE(CaseTupleCount(shrunk), CaseTupleCount(fuzz_case));
    EXPECT_GT(stats.property_evaluations, 0);

    // The minimized case must survive the corpus round trip and still
    // reproduce after reparsing.
    Result<CorpusCase> reloaded =
        ParseCorpusCase(CorpusCaseToText(shrunk, "synthetic-padding"));
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    EXPECT_EQ(reloaded->check, "synthetic-padding");
    EXPECT_TRUE(diverges(reloaded->fuzz_case));
  }
  EXPECT_GE(caught, 1) << "generator never produced a padding case";
}

// ShrinkCase (the named-check entry point) drives CheckStillDiverges;
// on a healthy library nothing diverges, so the predicate must be false
// and a shrink request must leave the case intact.
TEST(FuzzShrinkTest, HealthyCaseDoesNotDiverge) {
  FuzzCase fuzz_case = GenerateFuzzCase(0x5eed);
  EXPECT_FALSE(CheckStillDiverges(fuzz_case, "tuple-engine"));
  EXPECT_FALSE(CheckStillDiverges(fuzz_case, "optimizer"));
  EXPECT_FALSE(CheckStillDiverges(fuzz_case, "bt:*"));
}

// The GOJ gate the fuzzer forced into the optimizer: with a duplicated
// preserved-side row, Optimize must not left-deepen with GOJ, and its
// plan must match the oracle. (This is the shrunken fuzzer finding
// tests/corpus/goj-duplicate-rows.case, inlined.)
TEST(FuzzDifferentialTest, OptimizerSkipsGojOnDuplicateRows) {
  Database db;
  RelId r0 = *db.AddRelation("R0", {"a0"});
  RelId r1 = *db.AddRelation("R1", {"a0"});
  RelId r2 = *db.AddRelation("R2", {"a0"});
  RelId r3 = *db.AddRelation("R3", {"a0"});
  AttrId a0 = db.Attr("R0", "a0");
  AttrId a1 = db.Attr("R1", "a0");
  AttrId a2 = db.Attr("R2", "a0");
  AttrId a3 = db.Attr("R3", "a0");
  db.AddRow(r0, {Value::Int(1)});
  db.AddRow(r1, {Value::Int(1)});
  db.AddRow(r1, {Value::Int(1)});  // the duplicate that breaks identity 15
  ExprPtr query = Expr::OuterJoin(
      Expr::Join(Expr::Leaf(r0, db), Expr::Leaf(r1, db), EqCols(a0, a1)),
      Expr::Join(Expr::Leaf(r2, db), Expr::Leaf(r3, db), EqCols(a2, a3)),
      EqCols(a1, a2),
      /*preserves_left=*/true);
  EXPECT_FALSE(BaseRelationsDuplicateFree(query, db));

  Result<OptimizeOutcome> outcome = Optimize(query, db);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->PassApplications("goj"), 0);
  EXPECT_TRUE(BagEquals(Eval(outcome->plan, db), OracleEval(query, db)));

  // Removing the duplicate re-enables the rewrite on the same shape.
  db.SetRows(r1, {Tuple({Value::Int(1)})});
  EXPECT_TRUE(BaseRelationsDuplicateFree(query, db));
  Result<OptimizeOutcome> dedup_outcome = Optimize(query, db);
  ASSERT_TRUE(dedup_outcome.ok());
  EXPECT_GT(dedup_outcome->PassApplications("goj"), 0);
  EXPECT_TRUE(
      BagEquals(Eval(dedup_outcome->plan, db), OracleEval(query, db)));
}

}  // namespace
}  // namespace fro
