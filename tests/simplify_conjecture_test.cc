// Section 4's conjecture: "if the restriction predicate occurs after all
// outerjoins, then the simplification cannot introduce new violations of
// free reorderability."
//
// Verified empirically: starting from freely-reorderable queries under
// top-level restrictions, the Section 4 rule's output core is still
// freely reorderable. The section's closing caveat is reproduced too:
// replacing an outerjoin by a join because of a referential-integrity
// constraint CAN leave the reduced graph non-reorderable.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/simplify.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "graph/from_expr.h"
#include "graph/nice.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

// Strips top Restrict nodes.
ExprPtr Core(ExprPtr expr) {
  while (expr->kind() == OpKind::kRestrict) expr = expr->left();
  return expr;
}

TEST(SimplifyConjectureTest, SimplificationPreservesReorderability) {
  Rng rng(1901);
  int converted_cases = 0;
  for (int trial = 0; trial < 80; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(4));
    options.oj_fraction = 0.6;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ASSERT_TRUE(CheckFreelyReorderable(q.graph).freely_reorderable());
    ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
    ASSERT_NE(tree, nullptr);
    // A restriction strong on a random relation's attribute, applied
    // after all outerjoins (on top).
    RelId target = static_cast<RelId>(rng.Uniform(q.db->num_relations()));
    const std::vector<AttrId>& attrs =
        q.db->catalog().RelationAttrs(target);
    PredicatePtr filter = CmpLit(CmpOp::kGe, attrs[0], Value::Int(0));
    ExprPtr query = Expr::Restrict(tree, filter);

    SimplifyResult simplified = SimplifyOuterjoins(query);
    if (simplified.outerjoins_converted > 0) ++converted_cases;
    // The simplified core still has a defined graph...
    Result<QueryGraph> graph = GraphOf(Core(simplified.expr), *q.db);
    ASSERT_TRUE(graph.ok()) << simplified.expr->ToString();
    // ...that is still freely reorderable (the conjecture).
    EXPECT_TRUE(CheckFreelyReorderable(*graph).freely_reorderable())
        << "simplification broke reorderability:\n before: "
        << query->ToString() << "\n after: " << simplified.expr->ToString();
    // And of course the results agree.
    EXPECT_TRUE(BagEquals(Eval(query, *q.db), Eval(simplified.expr, *q.db)));
  }
  EXPECT_GT(converted_cases, 10);
}

// The paper's closing caveat (Section 4): R1 -> R2 -> R3 is freely
// reorderable, but replacing R2 -> R3 by R2 - R3 on the strength of a
// referential-integrity constraint yields R1 -> (R2 - R3), which is NOT.
TEST(SimplifyConjectureTest, IntegrityConstraintRewriteBreaksIt) {
  Database db;
  RelId r1 = *db.AddRelation("R1", {"a"});
  RelId r2 = *db.AddRelation("R2", {"b"});
  RelId r3 = *db.AddRelation("R3", {"c"});
  PredicatePtr p12 = EqCols(db.Attr("R1", "a"), db.Attr("R2", "b"));
  PredicatePtr p23 = EqCols(db.Attr("R2", "b"), db.Attr("R3", "c"));
  ExprPtr chain = Expr::OuterJoin(
      Expr::Leaf(r1, db),
      Expr::OuterJoin(Expr::Leaf(r2, db), Expr::Leaf(r3, db), p23), p12);
  Result<QueryGraph> before = GraphOf(chain, db);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(CheckFreelyReorderable(*before).freely_reorderable());

  // The "legal but dangerous" rewrite: inner outerjoin -> join.
  ExprPtr rewritten = Expr::OuterJoin(
      Expr::Leaf(r1, db),
      Expr::Join(Expr::Leaf(r2, db), Expr::Leaf(r3, db), p23), p12);
  Result<QueryGraph> after = GraphOf(rewritten, db);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(CheckNice(*after).nice);
  EXPECT_FALSE(CheckFreelyReorderable(*after).freely_reorderable());
}

}  // namespace
}  // namespace fro
