// Basic-transform engine tests: applicability, graph invariance
// (Observation in Section 3.2), the classification table, and Lemma 2
// (all BTs applicable on ITs of nice graphs with strong predicates are
// result preserving) — cross-validated empirically.

#include <gtest/gtest.h>

#include <algorithm>

#include "algebra/eval.h"
#include "algebra/transform.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "graph/from_expr.h"
#include "graph/nice.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

// Order-insensitive rendering of a query graph for equality checks.
std::string CanonicalGraphString(const QueryGraph& graph) {
  std::vector<std::string> lines;
  for (const GraphEdge& e : graph.edges()) {
    RelId ru = graph.node_rel(e.u);
    RelId rv = graph.node_rel(e.v);
    std::vector<std::string> conjuncts;
    for (const PredicatePtr& c : e.pred->Conjuncts(e.pred)) {
      conjuncts.push_back(c->ToString(nullptr));
    }
    std::sort(conjuncts.begin(), conjuncts.end());
    std::string label;
    for (const std::string& c : conjuncts) label += c + "&";
    std::string line;
    if (e.directed) {
      line = std::to_string(ru) + ">" + std::to_string(rv);
    } else {
      line = std::to_string(std::min(ru, rv)) + "-" +
             std::to_string(std::max(ru, rv));
    }
    lines.push_back(line + ":" + label);
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) out += line + "\n";
  return out;
}

class TransformTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = *db_.AddRelation("X", {"a", "b"});
    y_ = *db_.AddRelation("Y", {"c", "d"});
    z_ = *db_.AddRelation("Z", {"e", "f"});
    xa_ = db_.Attr("X", "a");
    xb_ = db_.Attr("X", "b");
    yc_ = db_.Attr("Y", "c");
    yd_ = db_.Attr("Y", "d");
    ze_ = db_.Attr("Z", "e");
    zf_ = db_.Attr("Z", "f");
    db_.AddRow(x_, {Value::Int(1), Value::Int(2)});
    db_.AddRow(y_, {Value::Int(1), Value::Int(3)});
    db_.AddRow(z_, {Value::Int(3), Value::Int(2)});
  }

  ExprPtr X() { return Expr::Leaf(x_, db_); }
  ExprPtr Y() { return Expr::Leaf(y_, db_); }
  ExprPtr Z() { return Expr::Leaf(z_, db_); }

  Database db_;
  RelId x_, y_, z_;
  AttrId xa_, xb_, yc_, yd_, ze_, zf_;
};

TEST_F(TransformTest, ReversalSwapsAndFlips) {
  ExprPtr q = Expr::OuterJoin(X(), Y(), EqCols(xa_, yc_), true);
  Result<ExprPtr> rev = ApplyBt(q, BtSite{BtSite::Kind::kReversal, {}});
  ASSERT_TRUE(rev.ok());
  EXPECT_EQ((*rev)->ToString(&db_.catalog()), "(Y <- X)");
  // Reversal twice is the identity.
  Result<ExprPtr> back = ApplyBt(*rev, BtSite{BtSite::Kind::kReversal, {}});
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(ExprEquals(*back, q));
  // Reversal preserves results.
  EXPECT_TRUE(BagEquals(Eval(q, db_), Eval(*rev, db_)));
}

TEST_F(TransformTest, AssocLRRestructures) {
  ExprPtr q = Expr::Join(Expr::Join(X(), Y(), EqCols(xa_, yc_)), Z(),
                         EqCols(yd_, ze_));
  BtSite site{BtSite::Kind::kAssocLR, {}};
  ASSERT_TRUE(IsApplicable(q, site));
  Result<ExprPtr> out = ApplyBt(q, site);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->ToString(&db_.catalog()), "(X - (Y - Z))");
  EXPECT_TRUE(BagEquals(Eval(q, db_), Eval(*out, db_)));
}

TEST_F(TransformTest, AssocRLIsInverse) {
  ExprPtr q = Expr::Join(X(), Expr::Join(Y(), Z(), EqCols(yd_, ze_)),
                         EqCols(xa_, yc_));
  BtSite site{BtSite::Kind::kAssocRL, {}};
  ASSERT_TRUE(IsApplicable(q, site));
  Result<ExprPtr> out = ApplyBt(q, site);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->ToString(&db_.catalog()), "((X - Y) - Z)");
}

TEST_F(TransformTest, ConjunctMigrationOnCyclicGraph) {
  // ((X - Y) -[Pxz & Pyz] Z): the Pxz conjunct must migrate to the other
  // operator when reassociating (identity 1's cyclic case).
  PredicatePtr pxz = EqCols(xb_, zf_);
  PredicatePtr pyz = EqCols(yd_, ze_);
  ExprPtr q = Expr::Join(Expr::Join(X(), Y(), EqCols(xa_, yc_)), Z(),
                         Predicate::And({pxz, pyz}));
  BtSite site{BtSite::Kind::kAssocLR, {}};
  ASSERT_TRUE(IsApplicable(q, site));
  Result<ExprPtr> out = ApplyBt(q, site);
  ASSERT_TRUE(out.ok());
  // The new upper operator holds Pxy AND Pxz; the lower holds Pyz.
  const Expr* root = out->get();
  EXPECT_EQ(root->pred()->Conjuncts(root->pred()).size(), 2u);
  EXPECT_EQ(root->right()->pred()->Conjuncts(root->right()->pred()).size(),
            1u);
  EXPECT_TRUE(BagEquals(Eval(q, db_), Eval(*out, db_)));
}

TEST_F(TransformTest, ConjunctMigrationRequiresJoins) {
  // Same shape but the upper operator is an outerjoin referencing X: such
  // a query has no defined graph, and the BT must refuse to move a
  // conjunct through a non-join.
  PredicatePtr pxz = EqCols(xb_, zf_);
  ExprPtr q = Expr::OuterJoin(Expr::Join(X(), Y(), EqCols(xa_, yc_)), Z(),
                              Predicate::And({pxz, EqCols(yd_, ze_)}));
  EXPECT_FALSE(IsApplicable(q, BtSite{BtSite::Kind::kAssocLR, {}}));
}

TEST_F(TransformTest, NotApplicableWhenPredicateIgnoresMiddle) {
  // ((X - Y) - Z) where the upper predicate references only X: the paper's
  // applicability condition fails (the lower op would become a product).
  ExprPtr q = Expr::Join(Expr::Join(X(), Y(), EqCols(xa_, yc_)), Z(),
                         EqCols(xb_, zf_));
  EXPECT_FALSE(IsApplicable(q, BtSite{BtSite::Kind::kAssocLR, {}}));
}

TEST_F(TransformTest, GraphInvariance) {
  // Observation (Section 3.2): a BT never changes graph(Q).
  PredicatePtr pxz = EqCols(xb_, zf_);
  ExprPtr q = Expr::Join(Expr::Join(X(), Y(), EqCols(xa_, yc_)), Z(),
                         Predicate::And({pxz, EqCols(yd_, ze_)}));
  std::string before = CanonicalGraphString(*GraphOf(q, db_));
  for (const BtSite& site : FindApplicableBts(q)) {
    Result<ExprPtr> out = ApplyBt(q, site);
    ASSERT_TRUE(out.ok());
    Result<QueryGraph> g = GraphOf(*out, db_);
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(CanonicalGraphString(*g), before);
  }
}

TEST_F(TransformTest, ClassificationTable) {
  PredicatePtr pxy = EqCols(xa_, yc_);
  PredicatePtr pyz = EqCols(yd_, ze_);
  // (-,-) always.
  ExprPtr jj = Expr::Join(Expr::Join(X(), Y(), pxy), Z(), pyz);
  EXPECT_EQ(ClassifyBt(jj, {BtSite::Kind::kAssocLR, {}}).preservation,
            Preservation::kAlways);
  // (->,-) never: Example 2's pattern.
  ExprPtr oj_join =
      Expr::Join(Expr::OuterJoin(X(), Y(), pxy), Z(), pyz);
  BtClassification never =
      ClassifyBt(oj_join, {BtSite::Kind::kAssocLR, {}});
  EXPECT_EQ(never.preservation, Preservation::kNever);
  EXPECT_FALSE(never.IsPreserving());
  // (->,->) conditional on strength: holds with equality...
  ExprPtr oj_oj =
      Expr::OuterJoin(Expr::OuterJoin(X(), Y(), pxy), Z(), pyz);
  BtClassification cond = ClassifyBt(oj_oj, {BtSite::Kind::kAssocLR, {}});
  EXPECT_EQ(cond.preservation, Preservation::kConditional);
  EXPECT_TRUE(cond.condition_holds);
  EXPECT_TRUE(cond.IsPreserving());
  // ...and fails with Example 3's weak predicate.
  PredicatePtr weak = Predicate::Or(
      {EqCols(yd_, ze_), Predicate::IsNull(Operand::Column(yd_))});
  ExprPtr weak_oj =
      Expr::OuterJoin(Expr::OuterJoin(X(), Y(), pxy), Z(), weak);
  BtClassification fails =
      ClassifyBt(weak_oj, {BtSite::Kind::kAssocLR, {}});
  EXPECT_EQ(fails.preservation, Preservation::kConditional);
  EXPECT_FALSE(fails.condition_holds);
  EXPECT_FALSE(fails.IsPreserving());
}

TEST_F(TransformTest, FindApplicableBtsFindsAllSites) {
  ExprPtr q = Expr::Join(Expr::Join(X(), Y(), EqCols(xa_, yc_)), Z(),
                         EqCols(yd_, ze_));
  std::vector<BtSite> sites = FindApplicableBts(q);
  // Two reversals (root + left child) and the root AssocLR.
  int reversals = 0, assoc_lr = 0, assoc_rl = 0;
  for (const BtSite& s : sites) {
    switch (s.kind) {
      case BtSite::Kind::kReversal:
        ++reversals;
        break;
      case BtSite::Kind::kAssocLR:
        ++assoc_lr;
        break;
      case BtSite::Kind::kAssocRL:
        ++assoc_rl;
        break;
    }
  }
  EXPECT_EQ(reversals, 2);
  EXPECT_EQ(assoc_lr, 1);
  EXPECT_EQ(assoc_rl, 0);
}

// --- Property tests over random queries ---------------------------------

// Lemma 2: on an IT of a nice graph with strong predicates, every
// applicable BT is result preserving — by classification AND empirically.
TEST(TransformPropertyTest, Lemma2AllBtsPreservingOnNiceGraphs) {
  Rng rng(301);
  int checked_bts = 0;
  for (int trial = 0; trial < 40; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 4 + static_cast<int>(rng.Uniform(3));
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ASSERT_TRUE(CheckFreelyReorderable(q.graph).freely_reorderable());
    ExprPtr it = RandomIt(q.graph, *q.db, &rng);
    ASSERT_NE(it, nullptr);
    Relation reference = Eval(it, *q.db);
    for (const BtSite& site : FindApplicableBts(it)) {
      BtClassification c = ClassifyBt(it, site);
      EXPECT_TRUE(c.IsPreserving())
          << "non-preserving BT (" << c.rule << ") applicable on nice IT "
          << it->ToString();
      Result<ExprPtr> out = ApplyBt(it, site);
      ASSERT_TRUE(out.ok());
      EXPECT_TRUE(BagEquals(reference, Eval(*out, *q.db)))
          << "BT changed the result: " << it->ToString() << " => "
          << (*out)->ToString();
      ++checked_bts;
    }
  }
  EXPECT_GT(checked_bts, 100);
}

// Soundness of the classification table: whenever a BT is classified as
// preserving, applying it must not change the result — on any query,
// including non-nice graphs and weak predicates.
TEST(TransformPropertyTest, PreservingClassificationIsSound) {
  Rng rng(302);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 4 + static_cast<int>(rng.Uniform(3));
    options.weak_pred_prob = 0.5;
    switch (trial % 4) {
      case 0:
        options.violation = RandomQueryOptions::Violation::kNone;
        break;
      case 1:
        options.violation =
            RandomQueryOptions::Violation::kJoinAtNullSupplied;
        break;
      case 2:
        options.violation = RandomQueryOptions::Violation::kTwoInEdges;
        break;
      case 3:
        options.violation = RandomQueryOptions::Violation::kOjCycle;
        break;
    }
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ExprPtr it = RandomIt(q.graph, *q.db, &rng);
    if (it == nullptr) continue;  // some violated graphs have no IT
    Relation reference = Eval(it, *q.db);
    for (const BtSite& site : FindApplicableBts(it)) {
      if (!ClassifyBt(it, site).IsPreserving()) continue;
      Result<ExprPtr> out = ApplyBt(it, site);
      ASSERT_TRUE(out.ok());
      EXPECT_TRUE(BagEquals(reference, Eval(*out, *q.db)))
          << "classified-preserving BT changed the result on "
          << it->ToString() << " => " << (*out)->ToString();
      ++checked;
    }
  }
  EXPECT_GT(checked, 50);
}

}  // namespace
}  // namespace fro
