// Tests for the generalized outerjoin kernel (paper Section 6.2, eq. 14).

#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/index.h"
#include "relational/ops.h"

namespace fro {
namespace {

class GojOpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = *db_.AddRelation("R", {"a", "b"});
    s_ = *db_.AddRelation("S", {"c"});
    a_ = db_.Attr("R", "a");
    b_ = db_.Attr("R", "b");
    c_ = db_.Attr("S", "c");
  }

  Database db_;
  RelId r_, s_;
  AttrId a_, b_, c_;
};

TEST_F(GojOpTest, WithFullLeftSchemeGojEqualsOuterjoin) {
  db_.AddRow(r_, {Value::Int(1), Value::Int(10)});
  db_.AddRow(r_, {Value::Int(2), Value::Int(20)});
  db_.AddRow(s_, {Value::Int(1)});
  AttrSet full = db_.scheme(r_).ToAttrSet();
  Relation goj = GeneralizedOuterJoin(db_.relation(r_), db_.relation(s_),
                                      EqCols(a_, c_), full, JoinAlgo::kAuto,
                                      nullptr);
  Relation oj = LeftOuterJoin(db_.relation(r_), db_.relation(s_),
                              EqCols(a_, c_), JoinAlgo::kAuto, nullptr);
  // On duplicate-free relations GOJ[sch(R1)] degenerates to the outerjoin.
  EXPECT_TRUE(BagEquals(goj, oj));
}

TEST_F(GojOpTest, ProjectionDeduplicatesUnmatched) {
  // Two R rows share the same S-projection a=2; both are unmatched, but
  // eq. 14 emits the missing projection once.
  db_.AddRow(r_, {Value::Int(1), Value::Int(10)});
  db_.AddRow(r_, {Value::Int(2), Value::Int(20)});
  db_.AddRow(r_, {Value::Int(2), Value::Int(21)});
  db_.AddRow(s_, {Value::Int(1)});
  Relation goj = GeneralizedOuterJoin(db_.relation(r_), db_.relation(s_),
                                      EqCols(a_, c_), AttrSet::Of({a_}),
                                      JoinAlgo::kAuto, nullptr);
  // 1 join row + 1 padded row for projection {a=2}.
  ASSERT_EQ(goj.NumRows(), 2u);
  size_t padded = 0;
  for (size_t i = 0; i < goj.NumRows(); ++i) {
    if (goj.ValueOf(i, c_).is_null()) {
      ++padded;
      EXPECT_EQ(goj.ValueOf(i, a_).AsInt(), 2);
      EXPECT_TRUE(goj.ValueOf(i, b_).is_null());  // outside S: padded
    }
  }
  EXPECT_EQ(padded, 1u);
}

TEST_F(GojOpTest, MatchedProjectionSuppressesPaddedTuple) {
  // The refinement over Dayal's Generalized-Join: an unmatched R tuple
  // whose S-projection appears in the join adds nothing.
  db_.AddRow(r_, {Value::Int(1), Value::Int(10)});   // matches
  db_.AddRow(r_, {Value::Int(1), Value::Int(11)});   // also matches
  db_.AddRow(s_, {Value::Int(1)});
  Relation goj = GeneralizedOuterJoin(db_.relation(r_), db_.relation(s_),
                                      EqCols(a_, c_), AttrSet::Of({a_}),
                                      JoinAlgo::kAuto, nullptr);
  EXPECT_EQ(goj.NumRows(), 2u);  // only the two join rows
  for (size_t i = 0; i < goj.NumRows(); ++i) {
    EXPECT_FALSE(goj.ValueOf(i, c_).is_null());
  }
}

TEST_F(GojOpTest, SuppressionAppliesEvenWhenAnotherTupleMatched) {
  // R tuple (1,10) matches; R tuple (1,11) does not (residual fails), but
  // its S-projection {a=1} appeared in the join, so no padded tuple.
  db_.AddRow(r_, {Value::Int(1), Value::Int(10)});
  db_.AddRow(r_, {Value::Int(1), Value::Int(11)});
  db_.AddRow(s_, {Value::Int(1)});
  PredicatePtr pred = Predicate::And(
      {EqCols(a_, c_), CmpLit(CmpOp::kEq, b_, Value::Int(10))});
  Relation goj = GeneralizedOuterJoin(db_.relation(r_), db_.relation(s_),
                                      pred, AttrSet::Of({a_}),
                                      JoinAlgo::kAuto, nullptr);
  EXPECT_EQ(goj.NumRows(), 1u);
}

TEST_F(GojOpTest, EmptyRightPadsDistinctProjections) {
  db_.AddRow(r_, {Value::Int(1), Value::Int(10)});
  db_.AddRow(r_, {Value::Int(1), Value::Int(11)});
  db_.AddRow(r_, {Value::Int(2), Value::Int(20)});
  Relation goj = GeneralizedOuterJoin(db_.relation(r_), db_.relation(s_),
                                      EqCols(a_, c_), AttrSet::Of({a_}),
                                      JoinAlgo::kAuto, nullptr);
  EXPECT_EQ(goj.NumRows(), 2u);  // projections {1} and {2}
}

TEST_F(GojOpTest, EmptySubsetYieldsSingleAllNullWitness) {
  // GOJ[{}]: the empty projection of a nonempty R "appears" in the join
  // iff the join is nonempty; otherwise one all-null tuple witnesses it.
  db_.AddRow(r_, {Value::Int(1), Value::Int(10)});
  Relation goj = GeneralizedOuterJoin(db_.relation(r_), db_.relation(s_),
                                      EqCols(a_, c_), AttrSet(),
                                      JoinAlgo::kAuto, nullptr);
  ASSERT_EQ(goj.NumRows(), 1u);
  EXPECT_TRUE(goj.ValueOf(0, a_).is_null());
  EXPECT_TRUE(goj.ValueOf(0, b_).is_null());
  EXPECT_TRUE(goj.ValueOf(0, c_).is_null());
}

TEST_F(GojOpTest, SubsetMustComeFromLeft) {
  EXPECT_DEATH(GeneralizedOuterJoin(db_.relation(r_), db_.relation(s_),
                                    EqCols(a_, c_), AttrSet::Of({c_}),
                                    JoinAlgo::kAuto, nullptr),
               "subset");
}

TEST(HashIndexTest, ProbeFindsRowsSkipsNullKeys) {
  Database db;
  RelId r = *db.AddRelation("R", {"a", "b"});
  AttrId a = db.Attr("R", "a");
  db.AddRow(r, {Value::Int(1), Value::Int(10)});
  db.AddRow(r, {Value::Int(1), Value::Int(11)});
  db.AddRow(r, {Value::Null(), Value::Int(12)});
  HashIndex index(db.relation(r), {a});
  EXPECT_EQ(index.Probe({Value::Int(1)}).size(), 2u);
  EXPECT_TRUE(index.Probe({Value::Int(9)}).empty());
  // Null keys are neither indexed nor matched.
  EXPECT_TRUE(index.Probe({Value::Null()}).empty());
  EXPECT_EQ(index.num_keys(), 1u);
}

TEST(HashIndexTest, CompositeKey) {
  Database db;
  RelId r = *db.AddRelation("R", {"a", "b"});
  AttrId a = db.Attr("R", "a");
  AttrId b = db.Attr("R", "b");
  db.AddRow(r, {Value::Int(1), Value::Int(10)});
  db.AddRow(r, {Value::Int(1), Value::Int(11)});
  HashIndex index(db.relation(r), {a, b});
  EXPECT_EQ(index.Probe({Value::Int(1), Value::Int(10)}).size(), 1u);
  EXPECT_TRUE(index.Probe({Value::Int(1), Value::Int(12)}).empty());
}

}  // namespace
}  // namespace fro
