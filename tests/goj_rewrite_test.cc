// Generalized-outerjoin reassociation identities (Section 6.2,
// eqns 15-16) and the left-deepening driver.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "optimizer/goj_rewrite.h"
#include "testing/datagen.h"

namespace fro {
namespace {

struct Tri {
  std::unique_ptr<Database> db;
  ExprPtr x, y, z;
  AttrId xa, ya, yb, za;
  PredicatePtr pxy, pyz;
};

// Duplicate-free relations, as identities 15/16 require.
Tri MakeTri(Rng* rng) {
  Tri t;
  RandomRowsOptions rows;
  rows.rows_min = 0;
  rows.rows_max = 6;
  rows.domain = 3;
  rows.null_prob = 0.15;
  rows.unique_rows = true;
  t.db = MakeRandomDatabase(3, 2, rows, rng);
  t.x = Expr::Leaf(t.db->Rel("R0"), *t.db);
  t.y = Expr::Leaf(t.db->Rel("R1"), *t.db);
  t.z = Expr::Leaf(t.db->Rel("R2"), *t.db);
  t.xa = t.db->Attr("R0", "a0");
  t.ya = t.db->Attr("R1", "a0");
  t.yb = t.db->Attr("R1", "a1");
  t.za = t.db->Attr("R2", "a0");
  t.pxy = EqCols(t.xa, t.ya);
  t.pyz = EqCols(t.yb, t.za);
  return t;
}

constexpr int kTrials = 80;

TEST(GojRewriteTest, Identity15Correct) {
  Rng rng(1001);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs =
        Expr::OuterJoin(t.x, Expr::Join(t.y, t.z, t.pyz), t.pxy);
    Result<ExprPtr> rhs = ApplyIdentity15(lhs);
    ASSERT_TRUE(rhs.ok());
    EXPECT_EQ((*rhs)->kind(), OpKind::kGoj);
    EXPECT_EQ((*rhs)->goj_subset(), t.x->attrs());
    EXPECT_TRUE(BagEquals(Eval(lhs, *t.db), Eval(*rhs, *t.db)))
        << "trial " << i << "\n lhs=" << lhs->ToString() << "\n rhs="
        << (*rhs)->ToString();
  }
}

TEST(GojRewriteTest, Identity16Correct) {
  Rng rng(1002);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    // Inner GOJ: Y GOJ[{ya, yb}] Z — the subset covers Y's attributes the
    // X-Y join touches (ya).
    AttrSet subset = AttrSet::Of({t.ya, t.yb});
    ExprPtr inner = Expr::Goj(t.y, t.z, t.pyz, subset);
    ExprPtr lhs = Expr::Join(t.x, inner, t.pxy);
    Result<ExprPtr> rhs = ApplyIdentity16(lhs);
    ASSERT_TRUE(rhs.ok());
    EXPECT_EQ((*rhs)->kind(), OpKind::kGoj);
    EXPECT_EQ((*rhs)->goj_subset(), subset.Union(t.x->attrs()));
    EXPECT_TRUE(BagEquals(Eval(lhs, *t.db), Eval(*rhs, *t.db)))
        << "trial " << i << "\n lhs=" << lhs->ToString() << "\n rhs="
        << (*rhs)->ToString();
  }
}

TEST(GojRewriteTest, Identity16RequiresSubsetToCoverJoinAttrs) {
  Rng rng(1003);
  Tri t = MakeTri(&rng);
  // Subset {yb} does not cover the X-Y join attribute ya.
  ExprPtr inner = Expr::Goj(t.y, t.z, t.pyz, AttrSet::Of({t.yb}));
  ExprPtr lhs = Expr::Join(t.x, inner, t.pxy);
  EXPECT_FALSE(ApplyIdentity16(lhs).ok());
}

TEST(GojRewriteTest, Identity15RequiresShape) {
  Rng rng(1004);
  Tri t = MakeTri(&rng);
  // Join at the root: identity 15 does not apply.
  EXPECT_FALSE(ApplyIdentity15(Expr::Join(t.x, t.y, t.pxy)).ok());
  // Outerjoin whose null side is a leaf: nothing to pull up.
  EXPECT_FALSE(ApplyIdentity15(Expr::OuterJoin(t.x, t.y, t.pxy)).ok());
  // Predicate reaching into Z is out of form.
  PredicatePtr pxz = EqCols(t.xa, t.za);
  ExprPtr bad = Expr::OuterJoin(t.x, Expr::Join(t.y, t.z, t.pyz), pxz);
  EXPECT_FALSE(ApplyIdentity15(bad).ok());
}

TEST(GojRewriteTest, LeftDeepenExample2Shape) {
  Rng rng(1005);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr q = Expr::OuterJoin(t.x, Expr::Join(t.y, t.z, t.pyz), t.pxy);
    int rewrites = 0;
    ExprPtr deep = LeftDeepenWithGoj(q, &rewrites);
    EXPECT_EQ(rewrites, 1);
    EXPECT_EQ(deep->kind(), OpKind::kGoj);
    EXPECT_TRUE(deep->right()->is_leaf());
    EXPECT_TRUE(BagEquals(Eval(q, *t.db), Eval(deep, *t.db)));
  }
}

TEST(GojRewriteTest, LeftDeepenFourRelationChain) {
  // W - (X -> (Y - Z)): inner identity 15 creates a GOJ, then identity 16
  // pulls it through the join.
  Rng rng(1006);
  for (int i = 0; i < 40; ++i) {
    RandomRowsOptions rows;
    rows.rows_max = 5;
    rows.domain = 3;
    rows.unique_rows = true;
    auto db = MakeRandomDatabase(4, 2, rows, &rng);
    ExprPtr w = Expr::Leaf(db->Rel("R0"), *db);
    ExprPtr x = Expr::Leaf(db->Rel("R1"), *db);
    ExprPtr y = Expr::Leaf(db->Rel("R2"), *db);
    ExprPtr z = Expr::Leaf(db->Rel("R3"), *db);
    PredicatePtr pwx = EqCols(db->Attr("R0", "a0"), db->Attr("R1", "a0"));
    PredicatePtr pxy = EqCols(db->Attr("R1", "a1"), db->Attr("R2", "a0"));
    PredicatePtr pyz = EqCols(db->Attr("R2", "a1"), db->Attr("R3", "a0"));
    ExprPtr q = Expr::Join(
        w, Expr::OuterJoin(x, Expr::Join(y, z, pyz), pxy), pwx);
    int rewrites = 0;
    ExprPtr deep = LeftDeepenWithGoj(q, &rewrites);
    EXPECT_GE(rewrites, 2) << deep->ToString();
    // Fully left-deep: every right child is a leaf.
    const Expr* node = deep.get();
    while (!node->is_leaf()) {
      EXPECT_TRUE(node->right()->is_leaf()) << deep->ToString();
      node = node->left().get();
    }
    EXPECT_TRUE(BagEquals(Eval(q, *db), Eval(deep, *db)))
        << "trial " << i << "\n q=" << q->ToString() << "\n deep="
        << deep->ToString();
  }
}

TEST(GojRewriteTest, LeftDeepenLeavesLeftDeepPlansAlone) {
  Rng rng(1007);
  Tri t = MakeTri(&rng);
  ExprPtr q = Expr::OuterJoin(Expr::Join(t.x, t.y, t.pxy), t.z, t.pyz);
  int rewrites = 0;
  ExprPtr out = LeftDeepenWithGoj(q, &rewrites);
  EXPECT_EQ(rewrites, 0);
  EXPECT_TRUE(ExprEquals(out, q));
}

}  // namespace
}  // namespace fro
