// End-to-end tests of fro_serve over real loopback sockets: concurrent
// clients against serial baselines, plan-cache behavior under load,
// deadlines, cancellation, and admission control.

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/server.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

const char* kWorkload[] = {
    "Select All From EMPLOYEE*ChildName, DEPARTMENT "
    "Where EMPLOYEE.D# = DEPARTMENT.D#",
    "Select All From DEPARTMENT-->Manager-->Audit",
    "Select All From DEPARTMENT-->Manager*ChildName "
    "Where DEPARTMENT.Location = 'Zurich'",
    "Select All From EMPLOYEE Where EMPLOYEE.Rank = 7",
    "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Secretary "
    "Where EMPLOYEE.D# = DEPARTMENT.D#",
    "Select EMPLOYEE.Rank, DEPARTMENT.Location From EMPLOYEE, DEPARTMENT "
    "Where EMPLOYEE.D# = DEPARTMENT.D#",
};
constexpr size_t kWorkloadSize = std::size(kWorkload);

class ServerIntegrationTest : public ::testing::Test {
 protected:
  ServerIntegrationTest() : db_(MakeCompanyNestedDb()) {}

  void StartServer(ServerOptions options) {
    server_ = std::make_unique<FroServer>(&db_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  FroClient MakeClient() {
    FroClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  NestedDb db_;
  std::unique_ptr<FroServer> server_;
};

TEST_F(ServerIntegrationTest, PingAndStats) {
  StartServer(ServerOptions());
  FroClient client = MakeClient();
  Result<Response> pong = client.Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->body, "pong\n");
  Result<Response> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("plan_cache"), std::string::npos);
  EXPECT_NE(stats->body.find("latency_p50_us"), std::string::npos);
}

TEST_F(ServerIntegrationTest, ConcurrentClientsMatchSerialByteForByte) {
  ServerOptions options;
  options.num_workers = 6;
  StartServer(options);

  // Warm the plan cache so serial baseline and concurrent phase both see
  // cache-hit responses (the notes line in the body names the plan's
  // provenance, so cold and warm bodies differ by design).
  {
    FroClient warmup = MakeClient();
    for (const char* query : kWorkload) {
      Result<Response> r = warmup.Query(query);
      ASSERT_TRUE(r.ok());
      ASSERT_TRUE(r->status.ok()) << r->status.ToString();
    }
  }

  // Serial baseline.
  std::vector<std::string> baseline(kWorkloadSize);
  {
    FroClient serial = MakeClient();
    for (size_t i = 0; i < kWorkloadSize; ++i) {
      Result<Response> r = serial.Query(kWorkload[i]);
      ASSERT_TRUE(r.ok());
      ASSERT_TRUE(r->status.ok());
      ASSERT_FALSE(r->body.empty());
      baseline[i] = r->body;
    }
  }

  // 6 concurrent clients, several passes each, every response compared
  // against the serial baseline byte for byte.
  constexpr int kClients = 6;
  constexpr int kPasses = 4;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      FroClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int pass = 0; pass < kPasses; ++pass) {
        for (size_t i = 0; i < kWorkloadSize; ++i) {
          // Stagger start offsets so clients collide on all queries.
          const size_t q = (i + static_cast<size_t>(c)) % kWorkloadSize;
          Result<Response> r = client.Query(kWorkload[q]);
          if (!r.ok() || !r->status.ok()) {
            failures.fetch_add(1);
            continue;
          }
          if (r->body != baseline[q]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // Repeated-query workload: the plan cache must be carrying the load.
  PlanCacheStats stats = server_->plan_cache().stats();
  EXPECT_GT(stats.hit_rate(), 0.9)
      << "hit rate " << stats.hit_rate() << " on " << stats.hits << "/"
      << stats.hits + stats.misses;
  // And the parse-once AST memo equally so.
  EXPECT_GT(server_->session().ast_hits(), 0u);
}

TEST_F(ServerIntegrationTest, ExplainAndAnalyzeVerbs) {
  StartServer(ServerOptions());
  FroClient client = MakeClient();
  Result<Response> explain =
      client.Explain("Select All From DEPARTMENT-->Manager-->Audit");
  ASSERT_TRUE(explain.ok());
  ASSERT_TRUE(explain->status.ok()) << explain->status.ToString();
  EXPECT_NE(explain->body.find("Scan"), std::string::npos);

  Result<Response> analyze =
      client.Analyze("Select All From DEPARTMENT-->Manager-->Audit");
  ASSERT_TRUE(analyze.ok());
  ASSERT_TRUE(analyze->status.ok());
  EXPECT_NE(analyze->body.find("rows"), std::string::npos);
}

TEST_F(ServerIntegrationTest, DeadlineExceededOnHeavyQuery) {
  db_ = MakeScaledCompanyNestedDb(150);
  ServerOptions options;
  options.default_deadline_ms = 30;
  StartServer(options);
  FroClient client = MakeClient();
  // A cubic self-join on the low-cardinality Rank column: ~600^3/16
  // result tuples, far beyond what 30ms allows.
  Result<Response> r = client.Query(
      "Select All From EMPLOYEE E1, EMPLOYEE E2, EMPLOYEE E3 "
      "Where E1.Rank = E2.Rank and E2.Rank = E3.Rank");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->status.code(), StatusCode::kDeadlineExceeded)
      << r->status.ToString();
}

TEST_F(ServerIntegrationTest, CancelStopsTaggedQuery) {
  db_ = MakeScaledCompanyNestedDb(150);
  ServerOptions options;
  options.default_deadline_ms = 120000;  // cancel, not the deadline
  StartServer(options);

  std::atomic<bool> done{false};
  Status query_status = Internal("never ran");
  std::thread runner([&] {
    FroClient client;
    if (!client.Connect("127.0.0.1", server_->port()).ok()) return;
    Result<Response> r = client.Query(
        "Select All From EMPLOYEE E1, EMPLOYEE E2, EMPLOYEE E3 "
        "Where E1.Rank = E2.Rank and E2.Rank = E3.Rank",
        /*tag=*/"victim");
    if (r.ok()) query_status = r->status;
    done.store(true);
  });

  // Poll CANCEL until the tag is visible as in-flight (NotFound until the
  // worker registers it), then confirm the runner observed cancellation.
  FroClient canceller = MakeClient();
  bool cancelled = false;
  for (int attempt = 0; attempt < 2000 && !done.load(); ++attempt) {
    Result<Response> c = canceller.Cancel("victim");
    ASSERT_TRUE(c.ok());
    if (c->status.ok()) {
      cancelled = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  runner.join();
  ASSERT_TRUE(cancelled) << "query finished before CANCEL could land";
  EXPECT_EQ(query_status.code(), StatusCode::kCancelled)
      << query_status.ToString();
}

TEST_F(ServerIntegrationTest, AdmissionControlShedsLoad) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_pending = 0;  // every connection is refused at admission
  StartServer(options);
  FroClient client = MakeClient();
  Result<Response> r = client.Ping();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->status.code(), StatusCode::kResourceExhausted)
      << r->status.ToString();
  EXPECT_GE(server_->metrics().rejected(), 1u);
}

TEST_F(ServerIntegrationTest, StopWhileClientsConnected) {
  StartServer(ServerOptions());
  FroClient client = MakeClient();
  ASSERT_TRUE(client.Ping().ok());
  server_->Stop();  // must not hang with the connection still open
  Result<Response> after = client.Ping();
  EXPECT_FALSE(after.ok());
}

}  // namespace
}  // namespace fro
