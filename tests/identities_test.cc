// Randomized verification of the Section 2 identities (equations 1-10).
//
// Each identity is checked on many random three-relation databases with
// nulls and duplicates in play. X, Y, Z are relations R0, R1, R2 with two
// integer columns each; P_xy, P_yz, P_xz are equality predicates between
// them (strong, as the identities with preconditions require).

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "relational/ops.h"
#include "testing/datagen.h"

namespace fro {
namespace {

struct Tri {
  std::unique_ptr<Database> db;
  ExprPtr x, y, z;
  AttrId xa, xb, ya, yb, za, zb;
  PredicatePtr pxy, pyz, pxz;
};

Tri MakeTri(Rng* rng, double null_prob = 0.2) {
  Tri t;
  RandomRowsOptions rows;
  rows.rows_min = 0;
  rows.rows_max = 5;
  rows.domain = 3;  // small domain: matches, misses, and duplicates
  rows.null_prob = null_prob;
  t.db = MakeRandomDatabase(3, 2, rows, rng);
  t.x = Expr::Leaf(t.db->Rel("R0"), *t.db);
  t.y = Expr::Leaf(t.db->Rel("R1"), *t.db);
  t.z = Expr::Leaf(t.db->Rel("R2"), *t.db);
  t.xa = t.db->Attr("R0", "a0");
  t.xb = t.db->Attr("R0", "a1");
  t.ya = t.db->Attr("R1", "a0");
  t.yb = t.db->Attr("R1", "a1");
  t.za = t.db->Attr("R2", "a0");
  t.zb = t.db->Attr("R2", "a1");
  t.pxy = EqCols(t.xa, t.ya);
  t.pyz = EqCols(t.yb, t.za);
  t.pxz = EqCols(t.xb, t.zb);
  return t;
}

constexpr int kTrials = 60;

#define EXPECT_SAME_RESULT(lhs, rhs, t, trial)                          \
  EXPECT_TRUE(BagEquals(Eval((lhs), *(t).db), Eval((rhs), *(t).db)))    \
      << "trial " << (trial) << "\n lhs=" << (lhs)->ToString()          \
      << "\n rhs=" << (rhs)->ToString()

// Identity 1 with the optional P_xz conjunct: the query graph has a cycle
// and the conjunct must migrate between the two join operators.
TEST(JoinIdentitiesTest, Identity1JoinAssociativityWithConjunctMigration) {
  Rng rng(101);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::Join(Expr::Join(t.x, t.y, t.pxy),
                             t.z, Predicate::And({t.pxz, t.pyz}));
    ExprPtr rhs = Expr::Join(t.x,
                             Expr::Join(t.y, t.z, t.pyz),
                             Predicate::And({t.pxy, t.pxz}));
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

TEST(JoinIdentitiesTest, Identity1PlainJoinAssociativity) {
  Rng rng(102);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::Join(Expr::Join(t.x, t.y, t.pxy), t.z, t.pyz);
    ExprPtr rhs = Expr::Join(t.x, Expr::Join(t.y, t.z, t.pyz), t.pxy);
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

// Identity 2: (X - Y) |> Z = X - (Y |> Z).
TEST(JoinIdentitiesTest, Identity2JoinAntijoin) {
  Rng rng(103);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::Antijoin(Expr::Join(t.x, t.y, t.pxy), t.z, t.pyz);
    ExprPtr rhs = Expr::Join(t.x, Expr::Antijoin(t.y, t.z, t.pyz), t.pxy);
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

// Identity 3: (X <| Y) |> Z = X <| (Y |> Z).
TEST(JoinIdentitiesTest, Identity3AntijoinAssociativity) {
  Rng rng(104);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::Antijoin(
        Expr::Antijoin(t.x, t.y, t.pxy, /*keeps_left=*/false), t.z, t.pyz);
    ExprPtr rhs = Expr::Antijoin(t.x, Expr::Antijoin(t.y, t.z, t.pyz),
                                 t.pxy, /*keeps_left=*/false);
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

// Identities 4-6: distributivity of join/antijoin over (padded) union,
// exercised in the shapes the paper's Fig. 3 proof uses: the union operands
// are Y - Z and Y |> Z.
TEST(JoinIdentitiesTest, Identity4JoinDistributesOverUnionFromRight) {
  Rng rng(105);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr u1 = Expr::Join(t.y, t.z, t.pyz);
    ExprPtr u2 = Expr::Antijoin(t.y, t.z, t.pyz);
    ExprPtr lhs = Expr::Join(t.x, Expr::Union(u1, u2), t.pxy);
    ExprPtr rhs = Expr::Union(Expr::Join(t.x, u1, t.pxy),
                              Expr::Join(t.x, u2, t.pxy));
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

TEST(JoinIdentitiesTest, Identity5JoinDistributesOverUnionFromLeft) {
  Rng rng(106);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr u1 = Expr::Join(t.y, t.z, t.pyz);
    ExprPtr u2 = Expr::Antijoin(t.y, t.z, t.pyz);
    ExprPtr lhs = Expr::Join(Expr::Union(u1, u2), t.x, t.pxy);
    ExprPtr rhs = Expr::Union(Expr::Join(u1, t.x, t.pxy),
                              Expr::Join(u2, t.x, t.pxy));
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

TEST(JoinIdentitiesTest, Identity6AntijoinDistributesOverUnion) {
  Rng rng(107);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr u1 = Expr::Join(t.y, t.z, t.pyz);
    ExprPtr u2 = Expr::Antijoin(t.y, t.z, t.pyz);
    ExprPtr lhs = Expr::Antijoin(Expr::Union(u1, u2), t.x, t.pxy);
    ExprPtr rhs = Expr::Union(Expr::Antijoin(u1, t.x, t.pxy),
                              Expr::Antijoin(u2, t.x, t.pxy));
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

// Identity 7 (pseudo-distributivity of antijoin):
// X |> Y = X |> (Y - Z  union  Y |> Z).
TEST(JoinIdentitiesTest, Identity7AntijoinPseudoDistributivity) {
  Rng rng(108);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::Antijoin(t.x, t.y, t.pxy);
    ExprPtr rhs = Expr::Antijoin(
        t.x,
        Expr::Union(Expr::Join(t.y, t.z, t.pyz),
                    Expr::Antijoin(t.y, t.z, t.pyz)),
        t.pxy);
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

// Identities 8 and 9 operate on the *padded* antijoin (the union
// convention of Section 2.1), so they are checked at the kernel level.
TEST(JoinIdentitiesTest, Identity8PaddedAntijoinJoinIsEmpty) {
  Rng rng(109);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    // P_yz is an equality on Y.a1, hence strong w.r.t. Y.
    ASSERT_TRUE(t.pyz->IsStrongWrt(AttrSet::Of({t.yb})));
    Relation aj = Eval(Expr::Antijoin(t.x, t.y, t.pxy), *t.db);
    Scheme xy = Scheme(t.x->attrs().Union(t.y->attrs()).ids());
    Relation padded = PadToScheme(aj, xy);
    Relation joined =
        Join(padded, Eval(t.z, *t.db), t.pyz, JoinAlgo::kAuto, nullptr);
    EXPECT_EQ(joined.NumRows(), 0u) << "trial " << i;
  }
}

TEST(JoinIdentitiesTest, Identity9PaddedAntijoinAntijoinIsIdentity) {
  Rng rng(110);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    Relation aj = Eval(Expr::Antijoin(t.x, t.y, t.pxy), *t.db);
    Scheme xy = Scheme(t.x->attrs().Union(t.y->attrs()).ids());
    Relation padded = PadToScheme(aj, xy);
    Relation again =
        Antijoin(padded, Eval(t.z, *t.db), t.pyz, JoinAlgo::kAuto, nullptr);
    EXPECT_TRUE(BagEquals(again, padded)) << "trial " << i;
  }
}

// Identity 10: X -> Y = (X - Y) union (X |> Y).
TEST(JoinIdentitiesTest, Identity10OuterjoinDecomposition) {
  Rng rng(111);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::OuterJoin(t.x, t.y, t.pxy);
    ExprPtr rhs = Expr::Union(Expr::Join(t.x, t.y, t.pxy),
                              Expr::Antijoin(t.x, t.y, t.pxy));
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

// Identity 8's precondition is necessary: with a non-strong P_yz the
// padded antijoin CAN join with Z.
TEST(JoinIdentitiesTest, Identity8RequiresStrength) {
  Database db;
  RelId x = *db.AddRelation("X", {"a"});
  RelId y = *db.AddRelation("Y", {"b"});
  RelId z = *db.AddRelation("Z", {"c"});
  AttrId xa = db.Attr("X", "a");
  AttrId yb = db.Attr("Y", "b");
  AttrId zc = db.Attr("Z", "c");
  db.AddRow(x, {Value::Int(1)});
  db.AddRow(z, {Value::Int(7)});
  // Y empty: the antijoin keeps X's row; padded Y.b is null.
  PredicatePtr weak_pyz = Predicate::Or(
      {EqCols(yb, zc), Predicate::IsNull(Operand::Column(yb))});
  ASSERT_FALSE(weak_pyz->IsStrongWrt(AttrSet::Of({yb})));
  ExprPtr ex = Expr::Leaf(x, db);
  ExprPtr ey = Expr::Leaf(y, db);
  Relation aj = Eval(Expr::Antijoin(ex, ey, EqCols(xa, yb)), db);
  Relation padded = PadToScheme(aj, Scheme({xa, yb}));
  Relation joined =
      Join(padded, db.relation(z), weak_pyz, JoinAlgo::kAuto, nullptr);
  EXPECT_EQ(joined.NumRows(), 1u);  // not empty: identity 8 fails
}

}  // namespace
}  // namespace fro
