// Facade-level invariants: optimizer idempotence and stability, and
// composition with the pipelined executor.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "exec/build.h"
#include "optimizer/optimizer.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

TEST(FacadePropertyTest, OptimizeIsIdempotent) {
  Rng rng(2801);
  for (int trial = 0; trial < 25; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(4));
    options.rows.rows_min = 1;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
    Result<OptimizeOutcome> once = Optimize(tree, *q.db);
    ASSERT_TRUE(once.ok());
    Result<OptimizeOutcome> twice = Optimize(once->plan, *q.db);
    ASSERT_TRUE(twice.ok());
    // Re-optimizing an already-optimal plan changes neither the cost nor
    // the result.
    EXPECT_NEAR(once->cost, twice->cost, 1e-9 * (1 + once->cost))
        << once->plan->ToString() << " vs " << twice->plan->ToString();
    EXPECT_TRUE(BagEquals(Eval(once->plan, *q.db), Eval(twice->plan, *q.db)));
  }
}

TEST(FacadePropertyTest, OptimizeIsDeterministic) {
  Rng rng(2802);
  RandomQueryOptions options;
  options.num_relations = 5;
  GeneratedQuery q = GenerateRandomQuery(options, &rng);
  ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
  Result<OptimizeOutcome> a = Optimize(tree, *q.db);
  Result<OptimizeOutcome> b = Optimize(tree, *q.db);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(ExprEquals(a->plan, b->plan));
  EXPECT_EQ(a->cost, b->cost);
}

TEST(FacadePropertyTest, OptimizedPlansExecutePipelined) {
  Rng rng(2803);
  for (int trial = 0; trial < 25; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(4));
    options.weak_pred_prob = trial % 2 == 0 ? 0.0 : 0.5;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
    Result<OptimizeOutcome> outcome = Optimize(tree, *q.db);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(BagEquals(ExecutePipelined(outcome->plan, *q.db),
                          Eval(tree, *q.db)))
        << tree->ToString() << " => " << outcome->plan->ToString();
  }
}

TEST(FacadePropertyTest, CostNeverWorseThanOriginalWhenReorderable) {
  Rng rng(2804);
  for (int trial = 0; trial < 25; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 4 + static_cast<int>(rng.Uniform(3));
    options.rows.rows_min = 2;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
    Result<OptimizeOutcome> outcome = Optimize(tree, *q.db);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->freely_reorderable);
    EXPECT_LE(outcome->cost, outcome->original_cost + 1e-9)
        << tree->ToString();
  }
}

TEST(FacadePropertyTest, LargeGraphsFallBackToGreedy) {
  Rng rng(2805);
  RandomQueryOptions options;
  options.num_relations = 20;  // beyond the exact DP threshold
  options.rows.rows_min = 1;
  options.rows.rows_max = 3;
  GeneratedQuery q = GenerateRandomQuery(options, &rng);
  ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
  ASSERT_NE(tree, nullptr);
  Result<OptimizeOutcome> outcome = Optimize(tree, *q.db);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->freely_reorderable);
  EXPECT_NE(outcome->classification.find("greedy"), std::string::npos);
  EXPECT_TRUE(BagEquals(Eval(tree, *q.db), Eval(outcome->plan, *q.db)));
  // Forcing a higher DP limit keeps the exact path available.
  OptimizeOptions exact;
  exact.max_dp_relations = 10;
  Result<OptimizeOutcome> still_greedy = Optimize(tree, *q.db, exact);
  ASSERT_TRUE(still_greedy.ok());
  EXPECT_NE(still_greedy->classification.find("greedy"), std::string::npos);
}

}  // namespace
}  // namespace fro
