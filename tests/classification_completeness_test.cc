// Completeness of the basic-transform classification table: the
// soundness direction (preserving-classified BTs never change results) is
// covered by transform_test.cc; here we check the table is not overly
// conservative — every join/outerjoin reassociation pattern classified
// NON-preserving admits an actual counterexample database, and the
// conditional pattern fails exactly when its strength condition fails.
//
// Pattern naming follows transform.h: the identity's left-hand side is
// (X o1 Y) o2 Z with P_xy on the lower operator and P_yz on the upper.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/transform.h"
#include "common/rng.h"
#include "testing/datagen.h"

namespace fro {
namespace {

struct Tri {
  std::unique_ptr<Database> db;
  ExprPtr x, y, z;
  PredicatePtr pxy, pyz;
};

Tri MakeTri(Rng* rng, bool weak_pyz = false, bool weak_pxy = false) {
  Tri t;
  RandomRowsOptions rows;
  rows.rows_min = 1;
  rows.rows_max = 4;
  rows.domain = 3;
  rows.null_prob = 0.25;
  t.db = MakeRandomDatabase(3, 2, rows, rng);
  AttrId xa = t.db->Attr("R0", "a0");
  AttrId ya = t.db->Attr("R1", "a0");
  AttrId yb = t.db->Attr("R1", "a1");
  AttrId za = t.db->Attr("R2", "a0");
  t.x = Expr::Leaf(t.db->Rel("R0"), *t.db);
  t.y = Expr::Leaf(t.db->Rel("R1"), *t.db);
  t.z = Expr::Leaf(t.db->Rel("R2"), *t.db);
  t.pxy = weak_pxy ? Predicate::Or({EqCols(xa, ya), Predicate::IsNull(
                                                        Operand::Column(ya))})
                   : EqCols(xa, ya);
  t.pyz = weak_pyz ? Predicate::Or({EqCols(yb, za), Predicate::IsNull(
                                                        Operand::Column(yb))})
                   : EqCols(yb, za);
  return t;
}

// Builds (X o1 Y) o2 Z for operator codes '-', '>', '<'.
ExprPtr BuildLhs(const Tri& t, char o1, char o2) {
  auto mk = [](char code, ExprPtr l, ExprPtr r, PredicatePtr p) -> ExprPtr {
    switch (code) {
      case '-':
        return Expr::Join(l, r, p);
      case '>':
        return Expr::OuterJoin(l, r, p, true);
      case '<':
        return Expr::OuterJoin(l, r, p, false);
    }
    return nullptr;
  };
  ExprPtr lower = mk(o1, t.x, t.y, t.pxy);
  return mk(o2, lower, t.z, t.pyz);
}

ExprPtr BuildRhs(const Tri& t, char o1, char o2) {
  auto mk = [](char code, ExprPtr l, ExprPtr r, PredicatePtr p) -> ExprPtr {
    switch (code) {
      case '-':
        return Expr::Join(l, r, p);
      case '>':
        return Expr::OuterJoin(l, r, p, true);
      case '<':
        return Expr::OuterJoin(l, r, p, false);
    }
    return nullptr;
  };
  ExprPtr lower = mk(o2, t.y, t.z, t.pyz);
  return mk(o1, t.x, lower, t.pxy);
}

// Searches random databases for a disagreement between the two
// associations of the pattern.
bool DisagreementExists(char o1, char o2, bool weak_pyz, bool weak_pxy,
                        uint64_t seed, int trials = 400) {
  Rng rng(seed);
  for (int i = 0; i < trials; ++i) {
    Tri t = MakeTri(&rng, weak_pyz, weak_pxy);
    ExprPtr lhs = BuildLhs(t, o1, o2);
    ExprPtr rhs = BuildRhs(t, o1, o2);
    if (!BagEquals(Eval(lhs, *t.db), Eval(rhs, *t.db))) return true;
  }
  return false;
}

TEST(ClassificationCompletenessTest, NeverPatternsHaveCounterexamples) {
  // (>,-): Example 2's pattern.
  EXPECT_TRUE(DisagreementExists('>', '-', false, false, 3001));
  // (-,<): join under a backwards outerjoin.
  EXPECT_TRUE(DisagreementExists('-', '<', false, false, 3002));
  // (>,<): two inward outerjoins.
  EXPECT_TRUE(DisagreementExists('>', '<', false, false, 3003));
}

TEST(ClassificationCompletenessTest, ConditionalFailsExactlyWithoutStrength) {
  // (>,>) with weak P_yz: identity 12's condition broken.
  EXPECT_TRUE(DisagreementExists('>', '>', /*weak_pyz=*/true,
                                 /*weak_pxy=*/false, 3004));
  // (<,<) with weak P_xy: the mirrored condition broken.
  EXPECT_TRUE(DisagreementExists('<', '<', /*weak_pyz=*/false,
                                 /*weak_pxy=*/true, 3005));
}

TEST(ClassificationCompletenessTest, AlwaysPatternsNeverDisagree) {
  // The four unconditional patterns: exhaustive random search finds no
  // counterexample (complementing the per-identity tests).
  EXPECT_FALSE(DisagreementExists('-', '-', false, false, 3006, 150));
  EXPECT_FALSE(DisagreementExists('-', '>', false, false, 3007, 150));
  EXPECT_FALSE(DisagreementExists('<', '-', false, false, 3008, 150));
  EXPECT_FALSE(DisagreementExists('<', '>', false, false, 3009, 150));
}

TEST(ClassificationCompletenessTest, ConditionalHoldsWithStrength) {
  EXPECT_FALSE(DisagreementExists('>', '>', false, false, 3010, 150));
  EXPECT_FALSE(DisagreementExists('<', '<', false, false, 3011, 150));
}

// Weak predicates do NOT break the unconditional patterns: strength is
// needed exactly where the table says.
TEST(ClassificationCompletenessTest, AlwaysPatternsSurviveWeakPredicates) {
  EXPECT_FALSE(DisagreementExists('-', '>', true, true, 3012, 150));
  EXPECT_FALSE(DisagreementExists('<', '>', true, true, 3013, 150));
  EXPECT_FALSE(DisagreementExists('<', '-', true, true, 3014, 150));
  EXPECT_FALSE(DisagreementExists('-', '-', true, true, 3015, 150));
}

}  // namespace
}  // namespace fro
