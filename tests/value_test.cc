#include <gtest/gtest.h>

#include "relational/tribool.h"
#include "relational/value.h"

namespace fro {
namespace {

TEST(TriBoolTest, KleeneTables) {
  const TriBool f = TriBool::kFalse;
  const TriBool u = TriBool::kUnknown;
  const TriBool t = TriBool::kTrue;
  EXPECT_EQ(TriAnd(t, t), t);
  EXPECT_EQ(TriAnd(t, u), u);
  EXPECT_EQ(TriAnd(f, u), f);
  EXPECT_EQ(TriAnd(u, u), u);
  EXPECT_EQ(TriOr(f, f), f);
  EXPECT_EQ(TriOr(f, u), u);
  EXPECT_EQ(TriOr(t, u), t);
  EXPECT_EQ(TriOr(u, u), u);
  EXPECT_EQ(TriNot(t), f);
  EXPECT_EQ(TriNot(f), t);
  EXPECT_EQ(TriNot(u), u);
  EXPECT_TRUE(IsTrue(t));
  EXPECT_FALSE(IsTrue(u));
  EXPECT_FALSE(IsTrue(f));
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(5).AsInt(), 5);
  EXPECT_EQ(Value::Double(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value::Int(3).NumericValue(), 3.0);
}

TEST(ValueTest, StructuralEquality) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  // Int and double are structurally distinct even if numerically equal.
  EXPECT_FALSE(Value::Int(1) == Value::Double(1.0));
  EXPECT_FALSE(Value::Int(1) == Value::Null());
}

TEST(ValueTest, StructuralOrderIsTotal) {
  // null < int < double < string by kind.
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Int(99), Value::Double(0.0));
  EXPECT_LT(Value::Double(99), Value::String(""));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
}

TEST(ValueTest, SqlComparisonWithNullIsUnknown) {
  EXPECT_EQ(SqlEq(Value::Null(), Value::Int(1)), TriBool::kUnknown);
  EXPECT_EQ(SqlEq(Value::Int(1), Value::Null()), TriBool::kUnknown);
  EXPECT_EQ(SqlEq(Value::Null(), Value::Null()), TriBool::kUnknown);
  EXPECT_EQ(SqlNe(Value::Null(), Value::Int(1)), TriBool::kUnknown);
  EXPECT_EQ(SqlLt(Value::Null(), Value::Int(1)), TriBool::kUnknown);
}

TEST(ValueTest, SqlComparisonNumeric) {
  EXPECT_EQ(SqlEq(Value::Int(2), Value::Int(2)), TriBool::kTrue);
  EXPECT_EQ(SqlEq(Value::Int(2), Value::Double(2.0)), TriBool::kTrue);
  EXPECT_EQ(SqlLt(Value::Int(1), Value::Double(1.5)), TriBool::kTrue);
  EXPECT_EQ(SqlGt(Value::Int(1), Value::Int(3)), TriBool::kFalse);
  EXPECT_EQ(SqlGe(Value::Int(3), Value::Int(3)), TriBool::kTrue);
  EXPECT_EQ(SqlLe(Value::Int(4), Value::Int(3)), TriBool::kFalse);
  EXPECT_EQ(SqlNe(Value::Int(4), Value::Int(3)), TriBool::kTrue);
}

TEST(ValueTest, SqlComparisonStrings) {
  EXPECT_EQ(SqlEq(Value::String("a"), Value::String("a")), TriBool::kTrue);
  EXPECT_EQ(SqlLt(Value::String("a"), Value::String("b")), TriBool::kTrue);
}

TEST(ValueTest, CrossKindComparisonIsUnknown) {
  EXPECT_EQ(SqlEq(Value::String("1"), Value::Int(1)), TriBool::kUnknown);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "-");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("q").ToString(), "'q'");
}

}  // namespace
}  // namespace fro
