#include <gtest/gtest.h>

#include "optimizer/cardinality.h"
#include "testing/datagen.h"

namespace fro {
namespace {

class CardinalityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = *db_.AddRelation("R", {"a", "b"});
    s_ = *db_.AddRelation("S", {"c"});
    a_ = db_.Attr("R", "a");
    b_ = db_.Attr("R", "b");
    c_ = db_.Attr("S", "c");
    // R: 4 rows, a has 4 distinct, b has 2 distinct and one null.
    db_.AddRow(r_, {Value::Int(1), Value::Int(10)});
    db_.AddRow(r_, {Value::Int(2), Value::Int(10)});
    db_.AddRow(r_, {Value::Int(3), Value::Int(20)});
    db_.AddRow(r_, {Value::Int(4), Value::Null()});
    // S: 2 rows, c has 2 distinct.
    db_.AddRow(s_, {Value::Int(1)});
    db_.AddRow(s_, {Value::Int(2)});
  }

  Database db_;
  RelId r_, s_;
  AttrId a_, b_, c_;
};

TEST_F(CardinalityTest, StatsCollection) {
  CardinalityEstimator est(db_);
  EXPECT_EQ(est.BaseRows(r_), 4.0);
  EXPECT_EQ(est.StatsOf(a_).distinct, 4.0);
  EXPECT_EQ(est.StatsOf(b_).distinct, 2.0);
  EXPECT_DOUBLE_EQ(est.StatsOf(b_).null_fraction, 0.25);
  EXPECT_EQ(est.StatsOf(c_).distinct, 2.0);
}

TEST_F(CardinalityTest, EqualitySelectivity) {
  CardinalityEstimator est(db_);
  // 1 / max(d(a), d(c)) = 1/4.
  EXPECT_DOUBLE_EQ(est.Selectivity(EqCols(a_, c_)), 0.25);
  // Literal equality: 1 / d(a).
  EXPECT_DOUBLE_EQ(est.Selectivity(CmpLit(CmpOp::kEq, a_, Value::Int(1))),
                   0.25);
}

TEST_F(CardinalityTest, BooleanCombinators) {
  CardinalityEstimator est(db_);
  PredicatePtr eq = EqCols(a_, c_);  // 0.25
  EXPECT_DOUBLE_EQ(est.Selectivity(Predicate::And({eq, eq})), 0.0625);
  EXPECT_DOUBLE_EQ(est.Selectivity(Predicate::Or({eq, eq})),
                   1.0 - 0.75 * 0.75);
  EXPECT_DOUBLE_EQ(est.Selectivity(Predicate::Not(eq)), 0.75);
  EXPECT_DOUBLE_EQ(
      est.Selectivity(Predicate::IsNull(Operand::Column(b_))), 0.25);
  EXPECT_DOUBLE_EQ(est.Selectivity(Predicate::Const(false)), 0.0);
}

TEST_F(CardinalityTest, JoinEstimate) {
  CardinalityEstimator est(db_);
  ExprPtr join = Expr::Join(Expr::Leaf(r_, db_), Expr::Leaf(s_, db_),
                            EqCols(a_, c_));
  // 4 * 2 * 0.25 = 2.
  EXPECT_DOUBLE_EQ(est.Estimate(join), 2.0);
}

TEST_F(CardinalityTest, OuterJoinAtLeastPreserved) {
  CardinalityEstimator est(db_);
  ExprPtr oj = Expr::OuterJoin(Expr::Leaf(r_, db_), Expr::Leaf(s_, db_),
                               EqCols(a_, c_));
  // join part 2 + 4 * max(0, 1 - 0.25*2) = 2 + 2 = 4.
  EXPECT_DOUBLE_EQ(est.Estimate(oj), 4.0);
  EXPECT_GE(est.Estimate(oj), est.BaseRows(r_) * 0.999);
}

TEST_F(CardinalityTest, AntiSemiJoinEstimates) {
  CardinalityEstimator est(db_);
  ExprPtr aj = Expr::Antijoin(Expr::Leaf(r_, db_), Expr::Leaf(s_, db_),
                              EqCols(a_, c_));
  EXPECT_DOUBLE_EQ(est.Estimate(aj), 4.0 * 0.5);
  ExprPtr sj = Expr::Semijoin(Expr::Leaf(r_, db_), Expr::Leaf(s_, db_),
                              EqCols(a_, c_));
  EXPECT_DOUBLE_EQ(est.Estimate(sj), 4.0 * 0.5);
}

TEST_F(CardinalityTest, RestrictProjectUnionEstimates) {
  CardinalityEstimator est(db_);
  ExprPtr r = Expr::Leaf(r_, db_);
  EXPECT_DOUBLE_EQ(
      est.Estimate(Expr::Restrict(r, CmpLit(CmpOp::kEq, a_, Value::Int(1)))),
      1.0);
  EXPECT_DOUBLE_EQ(est.Estimate(Expr::Project(r, {b_}, /*dedup=*/true)),
                   2.0);
  EXPECT_DOUBLE_EQ(est.Estimate(Expr::Project(r, {b_}, /*dedup=*/false)),
                   4.0);
  EXPECT_DOUBLE_EQ(
      est.Estimate(Expr::Union(r, Expr::Leaf(s_, db_))), 6.0);
}

TEST_F(CardinalityTest, EmptyRelationSafe) {
  Database db;
  RelId e = *db.AddRelation("E", {"x"});
  CardinalityEstimator est(db);
  EXPECT_EQ(est.BaseRows(e), 0.0);
  EXPECT_EQ(est.StatsOf(db.Attr("E", "x")).distinct, 1.0);  // floor
}

}  // namespace
}  // namespace fro
