#include <gtest/gtest.h>

#include <vector>

#include "optimizer/cardinality.h"
#include "optimizer/optimizer.h"
#include "testing/datagen.h"

namespace fro {
namespace {

class CardinalityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = *db_.AddRelation("R", {"a", "b"});
    s_ = *db_.AddRelation("S", {"c"});
    a_ = db_.Attr("R", "a");
    b_ = db_.Attr("R", "b");
    c_ = db_.Attr("S", "c");
    // R: 4 rows, a has 4 distinct, b has 2 distinct and one null.
    db_.AddRow(r_, {Value::Int(1), Value::Int(10)});
    db_.AddRow(r_, {Value::Int(2), Value::Int(10)});
    db_.AddRow(r_, {Value::Int(3), Value::Int(20)});
    db_.AddRow(r_, {Value::Int(4), Value::Null()});
    // S: 2 rows, c has 2 distinct.
    db_.AddRow(s_, {Value::Int(1)});
    db_.AddRow(s_, {Value::Int(2)});
  }

  Database db_;
  RelId r_, s_;
  AttrId a_, b_, c_;
};

TEST_F(CardinalityTest, StatsCollection) {
  CardinalityEstimator est(db_);
  EXPECT_EQ(est.BaseRows(r_), 4.0);
  EXPECT_EQ(est.StatsOf(a_).distinct, 4.0);
  EXPECT_EQ(est.StatsOf(b_).distinct, 2.0);
  EXPECT_DOUBLE_EQ(est.StatsOf(b_).null_fraction, 0.25);
  EXPECT_EQ(est.StatsOf(c_).distinct, 2.0);
}

TEST_F(CardinalityTest, EqualitySelectivity) {
  CardinalityEstimator est(db_);
  // 1 / max(d(a), d(c)) = 1/4.
  EXPECT_DOUBLE_EQ(est.Selectivity(EqCols(a_, c_)), 0.25);
  // Literal equality: 1 / d(a).
  EXPECT_DOUBLE_EQ(est.Selectivity(CmpLit(CmpOp::kEq, a_, Value::Int(1))),
                   0.25);
}

TEST_F(CardinalityTest, BooleanCombinators) {
  CardinalityEstimator est(db_);
  PredicatePtr eq = EqCols(a_, c_);  // 0.25
  EXPECT_DOUBLE_EQ(est.Selectivity(Predicate::And({eq, eq})), 0.0625);
  EXPECT_DOUBLE_EQ(est.Selectivity(Predicate::Or({eq, eq})),
                   1.0 - 0.75 * 0.75);
  EXPECT_DOUBLE_EQ(est.Selectivity(Predicate::Not(eq)), 0.75);
  EXPECT_DOUBLE_EQ(
      est.Selectivity(Predicate::IsNull(Operand::Column(b_))), 0.25);
  EXPECT_DOUBLE_EQ(est.Selectivity(Predicate::Const(false)), 0.0);
}

TEST_F(CardinalityTest, JoinEstimate) {
  CardinalityEstimator est(db_);
  ExprPtr join = Expr::Join(Expr::Leaf(r_, db_), Expr::Leaf(s_, db_),
                            EqCols(a_, c_));
  // 4 * 2 * 0.25 = 2.
  EXPECT_DOUBLE_EQ(est.Estimate(join), 2.0);
}

TEST_F(CardinalityTest, OuterJoinAtLeastPreserved) {
  CardinalityEstimator est(db_);
  ExprPtr oj = Expr::OuterJoin(Expr::Leaf(r_, db_), Expr::Leaf(s_, db_),
                               EqCols(a_, c_));
  // join part 2 + 4 * max(0, 1 - 0.25*2) = 2 + 2 = 4.
  EXPECT_DOUBLE_EQ(est.Estimate(oj), 4.0);
  EXPECT_GE(est.Estimate(oj), est.BaseRows(r_) * 0.999);
}

TEST_F(CardinalityTest, AntiSemiJoinEstimates) {
  CardinalityEstimator est(db_);
  ExprPtr aj = Expr::Antijoin(Expr::Leaf(r_, db_), Expr::Leaf(s_, db_),
                              EqCols(a_, c_));
  EXPECT_DOUBLE_EQ(est.Estimate(aj), 4.0 * 0.5);
  ExprPtr sj = Expr::Semijoin(Expr::Leaf(r_, db_), Expr::Leaf(s_, db_),
                              EqCols(a_, c_));
  EXPECT_DOUBLE_EQ(est.Estimate(sj), 4.0 * 0.5);
}

TEST_F(CardinalityTest, RestrictProjectUnionEstimates) {
  CardinalityEstimator est(db_);
  ExprPtr r = Expr::Leaf(r_, db_);
  EXPECT_DOUBLE_EQ(
      est.Estimate(Expr::Restrict(r, CmpLit(CmpOp::kEq, a_, Value::Int(1)))),
      1.0);
  EXPECT_DOUBLE_EQ(est.Estimate(Expr::Project(r, {b_}, /*dedup=*/true)),
                   2.0);
  EXPECT_DOUBLE_EQ(est.Estimate(Expr::Project(r, {b_}, /*dedup=*/false)),
                   4.0);
  EXPECT_DOUBLE_EQ(
      est.Estimate(Expr::Union(r, Expr::Leaf(s_, db_))), 6.0);
}

TEST_F(CardinalityTest, EmptyRelationSafe) {
  Database db;
  RelId e = *db.AddRelation("E", {"x"});
  CardinalityEstimator est(db);
  EXPECT_EQ(est.BaseRows(e), 0.0);
  EXPECT_EQ(est.StatsOf(db.Attr("E", "x")).distinct, 1.0);  // floor
}

// --- feedback-driven gate flips ---------------------------------------
//
// The wcoj and acyclic rewrite gates both compare
// PlanCost(rewritten) < PlanCost(baseline), and PlanCost recurses through
// CardinalityEstimator::Estimate — so runtime corrections for the binary
// plan's subtree hashes re-price the baseline and can flip a gate that
// the static model decided the other way.

void CollectKind(const ExprPtr& node, OpKind kind,
                 std::vector<uint64_t>* out) {
  if (node == nullptr) return;
  if (node->kind() == kind) out->push_back(node->hash());
  CollectKind(node->left(), kind, out);
  CollectKind(node->right(), kind, out);
  for (const ExprPtr& child : node->mj_children()) {
    CollectKind(child, kind, out);
  }
}

bool ContainsKind(const ExprPtr& node, OpKind kind) {
  std::vector<uint64_t> hashes;
  CollectKind(node, kind, &hashes);
  return !hashes.empty();
}

TEST(FeedbackGateFlipTest, AcyclicGateFlipsWhenBinaryPlanIsRepriced) {
  // A 3-chain whose statically-estimated joins are cheap: the Yannakakis
  // program's semijoin nodes cost more (Cout) than they save, so the
  // static gate keeps the binary plan.
  Database db;
  RelId r1 = *db.AddRelation("R1", {"a", "b"});
  RelId r2 = *db.AddRelation("R2", {"b", "c"});
  RelId r3 = *db.AddRelation("R3", {"c", "d"});
  for (int i = 0; i < 4; ++i) {
    db.AddRow(r1, {Value::Int(i), Value::Int(i)});
    db.AddRow(r3, {Value::Int(i), Value::Int(i)});
  }
  for (int i = 0; i < 8; ++i) {
    db.AddRow(r2, {Value::Int(i), Value::Int(i)});
  }
  ExprPtr query = Expr::Join(
      Expr::Join(Expr::Leaf(r1, db), Expr::Leaf(r2, db),
                 EqCols(db.Attr("R1", "b"), db.Attr("R2", "b"))),
      Expr::Leaf(r3, db), EqCols(db.Attr("R2", "c"), db.Attr("R3", "c")));

  Result<OptimizeOutcome> cold = Optimize(query, db);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_EQ(cold->PassApplications("acyclic"), 0)
      << "static gate must decline for the flip to be observable";
  ASSERT_FALSE(ContainsKind(cold->plan, OpKind::kSemijoin));

  // Execution "revealed" the binary joins explode: correct every join
  // node of the chosen plan to a huge cardinality. Re-planning must now
  // prefer the semijoin program, whose internal nodes hash differently
  // and keep their static estimates.
  CardinalityFeedback feedback;
  std::vector<uint64_t> joins;
  CollectKind(cold->plan, OpKind::kJoin, &joins);
  ASSERT_FALSE(joins.empty());
  for (uint64_t h : joins) feedback.Set(h, 1e6);

  OptimizeOptions with_feedback;
  with_feedback.feedback = &feedback;
  Result<OptimizeOutcome> warm = Optimize(query, db, with_feedback);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_GE(warm->PassApplications("acyclic"), 1);
  EXPECT_TRUE(ContainsKind(warm->plan, OpKind::kSemijoin));
}

TEST(FeedbackGateFlipTest, WcojGateFlipsWhenMultiwayOutputIsRepriced) {
  // A triangle: the static model prices the leapfrog multiway join below
  // the binary plan (one output charge instead of two), so the cold gate
  // collapses the core.
  Database db;
  RelId r = *db.AddRelation("R", {"a", "b"});
  RelId s = *db.AddRelation("S", {"b", "c"});
  RelId t = *db.AddRelation("T", {"c", "a"});
  for (int i = 0; i < 4; ++i) {
    db.AddRow(r, {Value::Int(i), Value::Int(i)});
    db.AddRow(s, {Value::Int(i), Value::Int(i)});
    db.AddRow(t, {Value::Int(i), Value::Int(i)});
  }
  ExprPtr query = Expr::Join(
      Expr::Join(Expr::Leaf(r, db), Expr::Leaf(s, db),
                 EqCols(db.Attr("R", "b"), db.Attr("S", "b"))),
      Expr::Leaf(t, db),
      Predicate::And({EqCols(db.Attr("S", "c"), db.Attr("T", "c")),
                      EqCols(db.Attr("T", "a"), db.Attr("R", "a"))}));

  Result<OptimizeOutcome> cold = Optimize(query, db);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_GE(cold->PassApplications("wcoj"), 1)
      << "static gate must collapse the core for the flip to be "
         "observable";
  std::vector<uint64_t> multiway;
  CollectKind(cold->plan, OpKind::kMultiwayJoin, &multiway);
  ASSERT_FALSE(multiway.empty());

  // Execution measured the multiway join's true output as enormous:
  // with the correction in place the binary baseline wins the gate back.
  CardinalityFeedback feedback;
  for (uint64_t h : multiway) feedback.Set(h, 1e9);
  OptimizeOptions with_feedback;
  with_feedback.feedback = &feedback;
  Result<OptimizeOutcome> warm = Optimize(query, db, with_feedback);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->PassApplications("wcoj"), 0);
  EXPECT_FALSE(ContainsKind(warm->plan, OpKind::kMultiwayJoin));
}

}  // namespace
}  // namespace fro
