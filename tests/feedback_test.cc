// The cardinality-feedback loop (optimizer/feedback.h): store
// bookkeeping (EWMA, decay, bounded eviction), the Q-error guard,
// estimator override precedence, plan-cache staleness marking, the
// re-plan-once protocol, and generation-bump invalidation.

#include <gtest/gtest.h>

#include "exec/build.h"
#include "exec/stats_view.h"
#include "optimizer/cardinality.h"
#include "optimizer/feedback.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_cache.h"
#include "testing/datagen.h"

namespace fro {
namespace {

TEST(QErrorTest, ZeroCardinalityGuard) {
  // Both sides clamp to one row, so empty intermediates never divide by
  // zero and the error floor is exactly 1.
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0.0, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(QError(8.0, 0.0), 8.0);
  EXPECT_DOUBLE_EQ(QError(0.25, 0.5), 1.0);  // sub-row estimates clamp too
}

TEST(QErrorTest, SymmetricRatio) {
  EXPECT_DOUBLE_EQ(QError(4.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(2.0, 8.0), 4.0);
  EXPECT_DOUBLE_EQ(QError(8.0, 2.0), 4.0);
}

TEST(FeedbackStoreTest, ObserveEwmaAndSnapshot) {
  FeedbackStore store;
  store.Observe(/*plan_hash=*/1, /*op_hash=*/100, /*est=*/10.0,
                /*actual=*/40.0);
  ASSERT_TRUE(store.CorrectedRows(100).has_value());
  EXPECT_DOUBLE_EQ(*store.CorrectedRows(100), 40.0);

  // Re-observation blends with alpha 0.5: 0.5*20 + 0.5*40.
  store.Observe(1, 100, 40.0, 20.0);
  EXPECT_DOUBLE_EQ(*store.CorrectedRows(100), 30.0);

  // A snapshot is a detached copy: later observations do not leak in.
  CardinalityFeedback snapshot = store.Snapshot();
  ASSERT_NE(snapshot.Lookup(100), nullptr);
  EXPECT_DOUBLE_EQ(*snapshot.Lookup(100), 30.0);
  EXPECT_EQ(snapshot.Lookup(999), nullptr);
  store.Observe(1, 100, 30.0, 100.0);
  EXPECT_DOUBLE_EQ(*snapshot.Lookup(100), 30.0);
}

TEST(FeedbackStoreTest, WeightDecaysWithoutReobservation) {
  FeedbackStore store;
  store.Observe(1, 100, 1.0, 1.0);
  const double fresh = *store.WeightOf(100);
  // Ten ticks of other subexpressions executing: 100's mass fades.
  for (uint64_t i = 0; i < 10; ++i) store.Observe(1, 200 + i, 1.0, 1.0);
  const double faded = *store.WeightOf(100);
  EXPECT_LT(faded, fresh);
  // Re-observation restores a full unit of fresh mass on top.
  store.Observe(1, 100, 1.0, 1.0);
  EXPECT_GT(*store.WeightOf(100), faded);
}

TEST(FeedbackStoreTest, BoundedEvictionDropsFadedEntry) {
  FeedbackOptions options;
  options.capacity = 4;
  FeedbackStore store(options);
  store.Observe(1, 100, 1.0, 1.0);  // oldest: decays while the rest land
  for (uint64_t i = 0; i < 4; ++i) store.Observe(1, 200 + i, 1.0, 1.0);
  const FeedbackStoreStats stats = store.stats();
  EXPECT_EQ(stats.size, 4u);
  EXPECT_GE(stats.evictions, 1u);
  // The faded entry lost the eviction contest; the live ones survive.
  EXPECT_FALSE(store.CorrectedRows(100).has_value());
  EXPECT_TRUE(store.CorrectedRows(203).has_value());
}

TEST(FeedbackStoreTest, MergeFoldsExternalSnapshot) {
  FeedbackStore a;
  a.Observe(1, 100, 1.0, 8.0);
  FeedbackStore b;
  b.Merge(a.Snapshot());
  ASSERT_TRUE(b.CorrectedRows(100).has_value());
  EXPECT_DOUBLE_EQ(*b.CorrectedRows(100), 8.0);
  EXPECT_EQ(b.stats().merged, 1u);
  // Merged corrections arrive estimate-free and count as exact.
  EXPECT_DOUBLE_EQ(b.stats().max_q_error, 1.0);
}

TEST(FeedbackStoreTest, QErrorHistogramBuckets) {
  FeedbackStore store;
  store.Observe(1, 100, 4.0, 4.0);   // q = 1 -> bucket [1,2)
  store.Observe(1, 101, 2.0, 16.0);  // q = 8 -> bucket [8,16)
  const FeedbackStoreStats stats = store.stats();
  EXPECT_EQ(stats.observations, 2u);
  EXPECT_DOUBLE_EQ(stats.max_q_error, 8.0);
  EXPECT_EQ(stats.q_error_hist[0], 1u);
  EXPECT_EQ(stats.q_error_hist[3], 1u);
}

class FeedbackPlanningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = *db_.AddRelation("R", {"a", "b"});
    s_ = *db_.AddRelation("S", {"c"});
    a_ = db_.Attr("R", "a");
    c_ = db_.Attr("S", "c");
    db_.AddRow(r_, {Value::Int(1), Value::Int(10)});
    db_.AddRow(r_, {Value::Int(2), Value::Int(10)});
    db_.AddRow(r_, {Value::Int(3), Value::Int(20)});
    db_.AddRow(r_, {Value::Int(4), Value::Null()});
    db_.AddRow(s_, {Value::Int(1)});
    db_.AddRow(s_, {Value::Int(2)});
    query_ = Expr::Join(Expr::Leaf(r_, db_), Expr::Leaf(s_, db_),
                        EqCols(a_, c_));
  }

  Database db_;
  RelId r_, s_;
  AttrId a_, c_;
  ExprPtr query_;
};

TEST_F(FeedbackPlanningTest, OverrideShadowsStaticModel) {
  CardinalityEstimator est(db_);
  ExprPtr leaf = Expr::Leaf(r_, db_);
  EXPECT_DOUBLE_EQ(est.Estimate(leaf), 4.0);
  EXPECT_DOUBLE_EQ(est.Estimate(query_), 2.0);

  // A correction shadows everything below it — including the exact base
  // row count a leaf would otherwise report.
  CardinalityFeedback feedback;
  feedback.Set(leaf->hash(), 99.0);
  est.set_feedback(&feedback);
  EXPECT_DOUBLE_EQ(est.Estimate(leaf), 99.0);
  EXPECT_TRUE(est.IsCorrected(leaf));
  EXPECT_FALSE(est.IsCorrected(query_));
  // The uncorrected parent re-derives from the corrected child:
  // 99 * 2 * 1/4.
  EXPECT_DOUBLE_EQ(est.Estimate(query_), 99.0 * 2.0 * 0.25);

  // Detaching restores the static model.
  est.set_feedback(nullptr);
  EXPECT_DOUBLE_EQ(est.Estimate(leaf), 4.0);
  EXPECT_FALSE(est.IsCorrected(leaf));
}

TEST_F(FeedbackPlanningTest, ObservePlanExecutionClosesTheLoop) {
  CardinalityEstimator est(db_);
  const OpEstimates estimates = CollectOpEstimates(query_, est);
  EXPECT_NE(estimates.Find(query_->hash()), nullptr);

  BatchIteratorPtr root = BuildBatchIterator(query_, db_);
  DrainBatches(root.get());
  FeedbackStore store;
  const double q = ObservePlanExecution(&store, query_->hash(),
                                        SnapshotPlanStats(root.get()),
                                        estimates);
  // R.a = {1,2,3,4} joins S.c = {1,2}: exactly 2 rows, which is also the
  // static estimate — the loop reports a perfect execution.
  EXPECT_DOUBLE_EQ(q, 1.0);
  ASSERT_TRUE(store.CorrectedRows(query_->hash()).has_value());
  EXPECT_DOUBLE_EQ(*store.CorrectedRows(query_->hash()), 2.0);
}

TEST_F(FeedbackPlanningTest, StalenessMarkGrantsExactlyOneClaim) {
  LruPlanCache cache(4, /*q_error_threshold=*/2.0);
  CachedPlan plan;
  plan.db_generation = 7;
  cache.Insert(42, plan);

  // First execution seeds the running Q-error directly; 10 > 2 marks.
  cache.RecordExecution(42, 10.0);
  ASSERT_TRUE(cache.RunningQError(42).has_value());
  EXPECT_DOUBLE_EQ(*cache.RunningQError(42), 10.0);

  bool claimed = false;
  EXPECT_FALSE(cache.LookupForPlanning(42, 7, &claimed).has_value());
  EXPECT_TRUE(claimed);
  // While the claim is outstanding, everyone else keeps the old plan.
  bool second_claim = true;
  EXPECT_TRUE(cache.LookupForPlanning(42, 7, &second_claim).has_value());
  EXPECT_FALSE(second_claim);
  // The claimant's Insert resolves the claim and resets the error state.
  cache.Insert(42, plan);
  bool third_claim = true;
  EXPECT_TRUE(cache.LookupForPlanning(42, 7, &third_claim).has_value());
  EXPECT_FALSE(third_claim);
  EXPECT_FALSE(cache.RunningQError(42).has_value());

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.stale_marks, 1u);
  EXPECT_EQ(stats.replans, 1u);
}

TEST_F(FeedbackPlanningTest, EwmaSmoothsOneOffSpikes) {
  LruPlanCache cache(4, /*q_error_threshold=*/4.0);
  cache.Insert(42, CachedPlan{});
  cache.RecordExecution(42, 1.0);
  cache.RecordExecution(42, 6.0);  // EWMA 3.5: under the threshold
  bool claimed = false;
  EXPECT_TRUE(cache.LookupForPlanning(42, 0, &claimed).has_value());
  EXPECT_FALSE(claimed);
  cache.RecordExecution(42, 6.0);  // EWMA 4.75: sustained drift marks
  EXPECT_FALSE(cache.LookupForPlanning(42, 0, &claimed).has_value());
  EXPECT_TRUE(claimed);
}

TEST_F(FeedbackPlanningTest, GenerationMismatchInvalidates) {
  LruPlanCache cache(4);
  CachedPlan plan;
  plan.db_generation = 7;
  cache.Insert(42, plan);
  bool claimed = false;
  EXPECT_TRUE(cache.LookupForPlanning(42, 7, &claimed).has_value());
  // The data moved on: the entry is dropped, not served.
  EXPECT_FALSE(cache.LookupForPlanning(42, 8, &claimed).has_value());
  EXPECT_FALSE(claimed);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.size, 0u);
}

TEST_F(FeedbackPlanningTest, DatabaseGenerationStampTracksMutation) {
  const uint64_t before = DatabaseGenerationStamp(db_);
  EXPECT_EQ(DatabaseGenerationStamp(db_), before);  // pure
  db_.AddRow(s_, {Value::Int(3)});
  EXPECT_NE(DatabaseGenerationStamp(db_), before);
}

TEST_F(FeedbackPlanningTest, OptimizeReplansOnceThenConverges) {
  LruPlanCache cache(4, /*q_error_threshold=*/4.0);
  OptimizeOptions opt;
  opt.plan_cache = &cache;
  Result<OptimizeOutcome> first = Optimize(query_, db_, opt);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  EXPECT_FALSE(first->replanned);
  EXPECT_FALSE(first->op_estimates.empty());

  // Executions drift far past the threshold: the entry goes stale.
  cache.RecordExecution(query_->hash(), 64.0);
  cache.RecordExecution(query_->hash(), 64.0);

  // The next optimization claims the (single) re-plan and re-runs the
  // pipeline with corrections applied.
  FeedbackStore store;
  store.Observe(first->plan->hash(), query_->hash(), 2.0, 128.0);
  const CardinalityFeedback corrected = store.Snapshot();
  opt.feedback = &corrected;
  Result<OptimizeOutcome> second = Optimize(query_, db_, opt);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cache_hit);
  EXPECT_TRUE(second->replanned);
  // The re-planned entry's estimates are the corrected ones, so stable
  // actuals now measure a low Q-error ...
  const double* est = second->op_estimates.Find(query_->hash());
  ASSERT_NE(est, nullptr);
  EXPECT_DOUBLE_EQ(*est, 128.0);
  // ... and accurate executions leave the entry fresh: no thrashing.
  cache.RecordExecution(query_->hash(), 1.1);
  Result<OptimizeOutcome> third = Optimize(query_, db_, opt);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->cache_hit);
  EXPECT_FALSE(third->replanned);
  EXPECT_EQ(cache.stats().replans, 1u);
}

TEST_F(FeedbackPlanningTest, OptimizeInvalidatesOnDataChange) {
  LruPlanCache cache(4);
  OptimizeOptions opt;
  opt.plan_cache = &cache;
  ASSERT_TRUE(Optimize(query_, db_, opt).ok());
  Result<OptimizeOutcome> warm = Optimize(query_, db_, opt);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);

  // New data: the cached plan (and the feedback it was chosen with) was
  // measured against rows that no longer exist.
  db_.AddRow(s_, {Value::Int(4)});
  Result<OptimizeOutcome> cold = Optimize(query_, db_, opt);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->cache_hit);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  // And the re-inserted entry serves hits at the new generation.
  Result<OptimizeOutcome> rewarm = Optimize(query_, db_, opt);
  ASSERT_TRUE(rewarm.ok());
  EXPECT_TRUE(rewarm->cache_hit);
}

}  // namespace
}  // namespace fro
