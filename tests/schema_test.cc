#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/schema.h"

namespace fro {
namespace {

TEST(AttrSetTest, BuildSortsAndDedups) {
  AttrSet s({3, 1, 3, 2});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ids(), (std::vector<AttrId>{1, 2, 3}));
}

TEST(AttrSetTest, SetAlgebra) {
  AttrSet a = AttrSet::Of({1, 2, 3});
  AttrSet b = AttrSet::Of({3, 4});
  EXPECT_EQ(a.Union(b).ids(), (std::vector<AttrId>{1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b).ids(), (std::vector<AttrId>{3}));
  EXPECT_EQ(a.Subtract(b).ids(), (std::vector<AttrId>{1, 2}));
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_FALSE(a.Overlaps(AttrSet::Of({9})));
  EXPECT_TRUE(a.Contains(2));
  EXPECT_FALSE(a.Contains(4));
  EXPECT_TRUE(a.ContainsAll(AttrSet::Of({1, 3})));
  EXPECT_FALSE(a.ContainsAll(b));
  EXPECT_TRUE(a.ContainsAll(AttrSet()));
}

TEST(AttrSetTest, InsertKeepsSorted) {
  AttrSet s;
  s.Insert(5);
  s.Insert(1);
  s.Insert(5);
  EXPECT_EQ(s.ids(), (std::vector<AttrId>{1, 5}));
}

TEST(SchemeTest, IndexAndConcat) {
  Scheme a({10, 11});
  Scheme b({20});
  EXPECT_EQ(a.IndexOf(11), 1);
  EXPECT_EQ(a.IndexOf(99), -1);
  Scheme c = a.Concat(b);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.IndexOf(20), 2);
  EXPECT_TRUE(c.Contains(10));
}

TEST(SchemeTest, ConcatOverlapDies) {
  Scheme a({10, 11});
  Scheme b({11});
  EXPECT_DEATH(a.Concat(b), "duplicate attribute");
}

TEST(CatalogTest, RegistrationAndLookup) {
  Catalog catalog;
  Result<RelId> r = catalog.RegisterRelation("R");
  ASSERT_TRUE(r.ok());
  Result<AttrId> a = catalog.RegisterAttr(*r, "x");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(catalog.AttrName(*a), "R.x");
  EXPECT_EQ(catalog.AttrRelation(*a), *r);
  EXPECT_EQ(*catalog.FindRelation("R"), *r);
  EXPECT_EQ(*catalog.FindAttr("R", "x"), *a);
  EXPECT_FALSE(catalog.FindRelation("S").ok());
  EXPECT_FALSE(catalog.FindAttr("R", "y").ok());
  // Duplicate registrations fail.
  EXPECT_FALSE(catalog.RegisterRelation("R").ok());
  EXPECT_FALSE(catalog.RegisterAttr(*r, "x").ok());
}

TEST(DatabaseTest, AddRelationWiresSchemeAndRows) {
  Database db;
  Result<RelId> r = db.AddRelation("T", {"a", "b"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(db.scheme(*r).size(), 2u);
  db.AddRow(*r, {Value::Int(1), Value::Int(2)});
  EXPECT_EQ(db.relation(*r).NumRows(), 1u);
  EXPECT_EQ(db.relation(*r).ValueOf(0, db.Attr("T", "b")).AsInt(), 2);
  EXPECT_EQ(db.Rel("T"), *r);
}

TEST(DatabaseTest, SetRowsReplaces) {
  Database db;
  RelId r = *db.AddRelation("T", {"a"});
  db.AddRow(r, {Value::Int(1)});
  db.SetRows(r, {Tuple({Value::Int(7)}), Tuple({Value::Int(8)})});
  EXPECT_EQ(db.relation(r).NumRows(), 2u);
}

}  // namespace
}  // namespace fro
