// Histogram-based range selectivity tests.

#include <gtest/gtest.h>

#include "optimizer/cardinality.h"
#include "relational/database.h"

namespace fro {
namespace {

// R(a) with values 0..99 (uniform), one null.
std::unique_ptr<Database> UniformDb() {
  auto db = std::make_unique<Database>();
  RelId r = *db->AddRelation("R", {"a"});
  for (int i = 0; i < 100; ++i) db->AddRow(r, {Value::Int(i)});
  db->AddRow(r, {Value::Null()});
  return db;
}

TEST(HistogramTest, FractionBelowInterpolates) {
  auto db = UniformDb();
  CardinalityEstimator est(*db);
  const Histogram& h = est.StatsOf(db->Attr("R", "a")).histogram;
  ASSERT_TRUE(h.populated);
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 99.0);
  EXPECT_NEAR(h.FractionBelow(49.5), 0.5, 0.05);
  EXPECT_NEAR(h.FractionBelow(25.0), 0.25, 0.05);
  EXPECT_DOUBLE_EQ(h.FractionBelow(-1), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(1000), 1.0);
}

TEST(HistogramTest, RangeSelectivityTracksUniformData) {
  auto db = UniformDb();
  CardinalityEstimator est(*db);
  AttrId a = db->Attr("R", "a");
  // About half the rows satisfy a < 50 (nulls never do).
  double sel_lt = est.Selectivity(CmpLit(CmpOp::kLt, a, Value::Int(50)));
  EXPECT_NEAR(sel_lt, 0.5, 0.07);
  double sel_ge = est.Selectivity(CmpLit(CmpOp::kGe, a, Value::Int(75)));
  EXPECT_NEAR(sel_ge, 0.25, 0.07);
  // Out-of-range literals give ~0 / ~1 (times the non-null fraction).
  EXPECT_NEAR(est.Selectivity(CmpLit(CmpOp::kLt, a, Value::Int(-5))), 0.0,
              0.01);
  EXPECT_NEAR(est.Selectivity(CmpLit(CmpOp::kLe, a, Value::Int(500))),
              1.0 - est.StatsOf(a).null_fraction, 0.02);
}

TEST(HistogramTest, FlippedOperandOrder) {
  auto db = UniformDb();
  CardinalityEstimator est(*db);
  AttrId a = db->Attr("R", "a");
  // "25 > a" == "a < 25".
  PredicatePtr flipped = Predicate::Cmp(
      CmpOp::kGt, Operand::Literal(Value::Int(25)), Operand::Column(a));
  EXPECT_NEAR(est.Selectivity(flipped), 0.25, 0.07);
}

TEST(HistogramTest, SkewedDataReflectsSkew) {
  auto db = std::make_unique<Database>();
  RelId r = *db->AddRelation("S", {"v"});
  // 90 small values, 10 large.
  for (int i = 0; i < 90; ++i) db->AddRow(r, {Value::Int(i % 10)});
  for (int i = 0; i < 10; ++i) db->AddRow(r, {Value::Int(90 + i)});
  CardinalityEstimator est(*db);
  AttrId v = db->Attr("S", "v");
  double sel = est.Selectivity(CmpLit(CmpOp::kLt, v, Value::Int(50)));
  EXPECT_GT(sel, 0.8);  // a uniform model would say ~0.5
}

TEST(HistogramTest, ColumnToColumnRangeKeepsDefault) {
  auto db = std::make_unique<Database>();
  RelId r = *db->AddRelation("T", {"a", "b"});
  for (int i = 0; i < 10; ++i) {
    db->AddRow(r, {Value::Int(i), Value::Int(10 - i)});
  }
  CardinalityEstimator est(*db);
  double sel = est.Selectivity(
      CmpCols(CmpOp::kLt, db->Attr("T", "a"), db->Attr("T", "b")));
  EXPECT_DOUBLE_EQ(sel, 1.0 / 3.0);
}

TEST(HistogramTest, ConstantColumnHasNoHistogram) {
  auto db = std::make_unique<Database>();
  RelId r = *db->AddRelation("C", {"k"});
  for (int i = 0; i < 5; ++i) db->AddRow(r, {Value::Int(7)});
  CardinalityEstimator est(*db);
  // hi == lo: histogram not populated; range predicates use the default.
  EXPECT_FALSE(est.StatsOf(db->Attr("C", "k")).histogram.populated);
  EXPECT_DOUBLE_EQ(
      est.Selectivity(CmpLit(CmpOp::kLt, db->Attr("C", "k"), Value::Int(3))),
      1.0 / 3.0);
}

TEST(HistogramTest, StringColumnsUnaffected) {
  auto db = std::make_unique<Database>();
  RelId r = *db->AddRelation("N", {"s"});
  db->AddRow(r, {Value::String("a")});
  db->AddRow(r, {Value::String("b")});
  CardinalityEstimator est(*db);
  EXPECT_FALSE(est.StatsOf(db->Attr("N", "s")).histogram.populated);
}

}  // namespace
}  // namespace fro
