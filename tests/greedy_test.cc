// Greedy ordering tests: validity (plan implements the graph, results
// agree), quality bounds relative to the exact DP, and scaling past DP's
// comfortable range.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "graph/from_expr.h"
#include "optimizer/greedy.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

TEST(GreedyTest, PlanIsValidAndAgrees) {
  Rng rng(2301);
  for (int trial = 0; trial < 25; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(5));
    options.rows.rows_min = 1;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    CostModel model(*q.db, CostKind::kCout);
    Result<PlanResult> greedy = OptimizeGreedy(q.graph, *q.db, model);
    ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
    // The plan is an implementing tree of the graph.
    Result<QueryGraph> regraphed = GraphOf(greedy->plan, *q.db);
    ASSERT_TRUE(regraphed.ok()) << greedy->plan->ToString();
    EXPECT_EQ(regraphed->num_edges(), q.graph.num_edges());
    // And computes the same result as any other implementing tree.
    ExprPtr reference = RandomIt(q.graph, *q.db, &rng);
    EXPECT_TRUE(
        BagEquals(Eval(greedy->plan, *q.db), Eval(reference, *q.db)));
  }
}

TEST(GreedyTest, NeverWorseThanWorstAndOftenNearBest) {
  Rng rng(2302);
  double ratio_sum = 0;
  int cases = 0;
  for (int trial = 0; trial < 20; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 5 + static_cast<int>(rng.Uniform(3));
    options.rows.rows_min = 2;
    options.rows.rows_max = 10;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    CostModel model(*q.db, CostKind::kCout);
    Result<PlanResult> greedy = OptimizeGreedy(q.graph, *q.db, model);
    Result<PlanResult> best = OptimizeReorderable(q.graph, *q.db, model);
    Result<PlanResult> worst =
        OptimizeReorderable(q.graph, *q.db, model, /*maximize=*/true);
    ASSERT_TRUE(greedy.ok() && best.ok() && worst.ok());
    double greedy_cost = model.PlanCost(greedy->plan);
    double best_cost = model.PlanCost(best->plan);
    double worst_cost = model.PlanCost(worst->plan);
    EXPECT_GE(greedy_cost, best_cost - 1e-9);
    EXPECT_LE(greedy_cost, worst_cost + 1e-9);
    if (best_cost > 0) {
      ratio_sum += greedy_cost / best_cost;
      ++cases;
    }
  }
  ASSERT_GT(cases, 10);
  // Greedy should average within 3x of optimal on these small instances.
  EXPECT_LT(ratio_sum / cases, 3.0);
}

TEST(GreedyTest, ScalesToGraphsDpCannotTouch) {
  Rng rng(2303);
  RandomQueryOptions options;
  options.num_relations = 24;  // DP over 2^24 masks would be infeasible
  options.rows.rows_min = 1;
  options.rows.rows_max = 4;
  GeneratedQuery q = GenerateRandomQuery(options, &rng);
  CostModel model(*q.db, CostKind::kCout);
  Result<PlanResult> greedy = OptimizeGreedy(q.graph, *q.db, model);
  ASSERT_TRUE(greedy.ok());
  EXPECT_EQ(greedy->plan->num_leaves(), 24);
  // Still a valid implementing tree.
  Result<QueryGraph> regraphed = GraphOf(greedy->plan, *q.db);
  ASSERT_TRUE(regraphed.ok());
}

TEST(GreedyTest, DisconnectedGraphRejected) {
  Database db;
  RelId r = *db.AddRelation("R", {"a"});
  RelId s = *db.AddRelation("S", {"b"});
  QueryGraph g;
  g.AddNode(r, db.scheme(r).ToAttrSet());
  g.AddNode(s, db.scheme(s).ToAttrSet());
  CostModel model(db, CostKind::kCout);
  EXPECT_FALSE(OptimizeGreedy(g, db, model).ok());
}

TEST(GreedyTest, SingleRelationGraph) {
  Database db;
  RelId r = *db.AddRelation("R", {"a"});
  db.AddRow(r, {Value::Int(1)});
  QueryGraph g;
  g.AddNode(r, db.scheme(r).ToAttrSet());
  CostModel model(db, CostKind::kCout);
  Result<PlanResult> plan = OptimizeGreedy(g, db, model);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->plan->is_leaf());
}

}  // namespace
}  // namespace fro
