#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace fro {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  FRO_ASSIGN_OR_RETURN(int h, Half(x));
  FRO_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> err = Quarter(6);  // 6/2 = 3 is odd
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(StrUtilTest, JoinAndSplit) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  std::vector<std::string> parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StrUtilTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    int64_t w = rng.UniformInt(-5, 5);
    EXPECT_GE(w, -5);
    EXPECT_LE(w, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  bool seen[4] = {false, false, false, false};
  for (int i = 0; i < 200; ++i) seen[rng.Uniform(4)] = true;
  EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

}  // namespace
}  // namespace fro
