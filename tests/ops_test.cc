#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/database.h"
#include "relational/ops.h"
#include "testing/datagen.h"

namespace fro {
namespace {

// Fixture: R(a,b) and S(c,d) with a few rows including nulls.
class OpsTest : public ::testing::TestWithParam<JoinAlgo> {
 protected:
  void SetUp() override {
    r_ = *db_.AddRelation("R", {"a", "b"});
    s_ = *db_.AddRelation("S", {"c", "d"});
    a_ = db_.Attr("R", "a");
    b_ = db_.Attr("R", "b");
    c_ = db_.Attr("S", "c");
    d_ = db_.Attr("S", "d");
    db_.AddRow(r_, {Value::Int(1), Value::Int(10)});
    db_.AddRow(r_, {Value::Int(2), Value::Int(20)});
    db_.AddRow(r_, {Value::Null(), Value::Int(30)});
    db_.AddRow(s_, {Value::Int(1), Value::Int(100)});
    db_.AddRow(s_, {Value::Int(1), Value::Int(101)});
    db_.AddRow(s_, {Value::Int(3), Value::Int(103)});
    db_.AddRow(s_, {Value::Null(), Value::Int(104)});
  }

  const Relation& R() { return db_.relation(r_); }
  const Relation& S() { return db_.relation(s_); }
  PredicatePtr EqAC() { return EqCols(a_, c_); }

  Database db_;
  RelId r_, s_;
  AttrId a_, b_, c_, d_;
};

TEST_P(OpsTest, JoinMatchesAndDropsNullKeys) {
  KernelStats stats;
  Relation out = Join(R(), S(), EqAC(), GetParam(), &stats);
  // a=1 matches two S rows; a=2 and null-a match nothing.
  EXPECT_EQ(out.NumRows(), 2u);
  EXPECT_EQ(stats.emitted, 2u);
  for (size_t i = 0; i < out.NumRows(); ++i) {
    EXPECT_EQ(out.ValueOf(i, a_).AsInt(), 1);
    EXPECT_EQ(out.ValueOf(i, c_).AsInt(), 1);
  }
}

TEST_P(OpsTest, LeftOuterJoinPadsUnmatched) {
  Relation out = LeftOuterJoin(R(), S(), EqAC(), GetParam(), nullptr);
  // 2 matches + 2 padded rows (a=2 and a=null).
  EXPECT_EQ(out.NumRows(), 4u);
  size_t padded = 0;
  for (size_t i = 0; i < out.NumRows(); ++i) {
    if (out.ValueOf(i, c_).is_null() && out.ValueOf(i, d_).is_null()) {
      ++padded;
    }
  }
  EXPECT_EQ(padded, 2u);
}

TEST_P(OpsTest, AntijoinKeepsNonMatchers) {
  Relation out = Antijoin(R(), S(), EqAC(), GetParam(), nullptr);
  EXPECT_EQ(out.NumRows(), 2u);  // a=2 and a=null
  EXPECT_EQ(out.scheme().size(), 2u);  // scheme of R only
}

TEST_P(OpsTest, SemijoinKeepsMatchersOnce) {
  Relation out = Semijoin(R(), S(), EqAC(), GetParam(), nullptr);
  EXPECT_EQ(out.NumRows(), 1u);  // a=1 kept once despite two matches
  EXPECT_EQ(out.ValueOf(0, a_).AsInt(), 1);
}

TEST_P(OpsTest, JoinOuterjoinAntijoinPartition) {
  // OJ = JN  union  (AJ padded): identity 10 at the kernel level.
  Relation oj = LeftOuterJoin(R(), S(), EqAC(), GetParam(), nullptr);
  Relation jn = Join(R(), S(), EqAC(), GetParam(), nullptr);
  Relation aj = Antijoin(R(), S(), EqAC(), GetParam(), nullptr);
  EXPECT_TRUE(BagEquals(oj, BagUnionPadded(jn, aj)));
}

TEST_P(OpsTest, EmptyInputs) {
  Relation empty_r((Scheme({a_, b_})));
  Relation empty_s((Scheme({c_, d_})));
  EXPECT_EQ(Join(empty_r, S(), EqAC(), GetParam(), nullptr).NumRows(), 0u);
  EXPECT_EQ(Join(R(), empty_s, EqAC(), GetParam(), nullptr).NumRows(), 0u);
  // Outerjoin of R against empty S pads every R row.
  Relation oj = LeftOuterJoin(R(), empty_s, EqAC(), GetParam(), nullptr);
  EXPECT_EQ(oj.NumRows(), R().NumRows());
  // Antijoin keeps everything.
  EXPECT_EQ(Antijoin(R(), empty_s, EqAC(), GetParam(), nullptr).NumRows(),
            R().NumRows());
}

TEST_P(OpsTest, NonEquiPredicate) {
  PredicatePtr lt = CmpCols(CmpOp::kLt, a_, c_);
  Relation out = Join(R(), S(), lt, GetParam(), nullptr);
  // a=1 < c=3; a=2 < c=3. (null a never matches.)
  EXPECT_EQ(out.NumRows(), 2u);
}

TEST_P(OpsTest, MixedEquiAndResidualPredicate) {
  PredicatePtr pred = Predicate::And(
      {EqCols(a_, c_), CmpCols(CmpOp::kLt, b_, d_)});
  Relation out = Join(R(), S(), pred, GetParam(), &*std::make_unique<KernelStats>());
  EXPECT_EQ(out.NumRows(), 2u);  // both (1,10)x(1,100) and (1,10)x(1,101)
}

TEST_P(OpsTest, RestrictFilters) {
  PredicatePtr p = CmpLit(CmpOp::kGe, b_, Value::Int(20));
  Relation out = Restrict(R(), p, nullptr);
  EXPECT_EQ(out.NumRows(), 2u);
}

TEST_P(OpsTest, ProjectBagAndSet) {
  Relation dup((Scheme({a_})));
  dup.AddRow(Tuple({Value::Int(1)}));
  dup.AddRow(Tuple({Value::Int(1)}));
  EXPECT_EQ(Project(dup, {a_}, /*dedup=*/false, nullptr).NumRows(), 2u);
  EXPECT_EQ(Project(dup, {a_}, /*dedup=*/true, nullptr).NumRows(), 1u);
}

TEST_P(OpsTest, CrossProductCounts) {
  KernelStats stats;
  Relation out = CrossProduct(R(), S(), &stats);
  EXPECT_EQ(out.NumRows(), R().NumRows() * S().NumRows());
  EXPECT_EQ(stats.emitted, out.NumRows());
}

INSTANTIATE_TEST_SUITE_P(Algos, OpsTest,
                         ::testing::Values(JoinAlgo::kNestedLoop,
                                           JoinAlgo::kHash, JoinAlgo::kAuto),
                         [](const auto& info) {
                           switch (info.param) {
                             case JoinAlgo::kNestedLoop:
                               return "NestedLoop";
                             case JoinAlgo::kHash:
                               return "Hash";
                             case JoinAlgo::kAuto:
                               return "Auto";
                           }
                           return "Unknown";
                         });

TEST(EquiKeysTest, ExtractsCrossingEqualities) {
  Database db;
  RelId r = *db.AddRelation("R", {"a"});
  RelId s = *db.AddRelation("S", {"c"});
  AttrId a = db.Attr("R", "a");
  AttrId c = db.Attr("S", "c");
  PredicatePtr pred = Predicate::And(
      {EqCols(a, c), CmpCols(CmpOp::kLt, a, c)});
  EquiKeys keys = ExtractEquiKeys(pred, db.scheme(r), db.scheme(s));
  ASSERT_TRUE(keys.Usable());
  EXPECT_EQ(keys.left, (std::vector<AttrId>{a}));
  EXPECT_EQ(keys.right, (std::vector<AttrId>{c}));
  // Pure inequality: no keys.
  EquiKeys none = ExtractEquiKeys(CmpCols(CmpOp::kLt, a, c), db.scheme(r),
                                  db.scheme(s));
  EXPECT_FALSE(none.Usable());
}

// Property: all kernel algorithms agree on random inputs for every
// operator.
TEST(OpsPropertyTest, AlgorithmsAgreeOnRandomData) {
  Rng rng(2026);
  for (int trial = 0; trial < 40; ++trial) {
    RandomRowsOptions rows;
    rows.rows_max = 8;
    rows.null_prob = 0.2;
    auto db = MakeRandomDatabase(2, 2, rows, &rng);
    const Relation& r = db->relation(0);
    const Relation& s = db->relation(1);
    AttrId a0 = db->Attr("R0", "a0");
    AttrId b0 = db->Attr("R1", "a0");
    AttrId b1 = db->Attr("R1", "a1");
    PredicatePtr pred =
        trial % 2 == 0
            ? EqCols(a0, b0)
            : Predicate::And({EqCols(a0, b0), CmpCols(CmpOp::kLe, a0, b1)});
    for (auto op : {0, 1, 2, 3}) {
      Relation nl, hash;
      switch (op) {
        case 0:
          nl = Join(r, s, pred, JoinAlgo::kNestedLoop, nullptr);
          hash = Join(r, s, pred, JoinAlgo::kHash, nullptr);
          break;
        case 1:
          nl = LeftOuterJoin(r, s, pred, JoinAlgo::kNestedLoop, nullptr);
          hash = LeftOuterJoin(r, s, pred, JoinAlgo::kHash, nullptr);
          break;
        case 2:
          nl = Antijoin(r, s, pred, JoinAlgo::kNestedLoop, nullptr);
          hash = Antijoin(r, s, pred, JoinAlgo::kHash, nullptr);
          break;
        case 3:
          nl = Semijoin(r, s, pred, JoinAlgo::kNestedLoop, nullptr);
          hash = Semijoin(r, s, pred, JoinAlgo::kHash, nullptr);
          break;
      }
      EXPECT_TRUE(BagEquals(nl, hash))
          << "trial " << trial << " op " << op;
    }
  }
}

}  // namespace
}  // namespace fro
