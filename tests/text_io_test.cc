#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/text_io.h"
#include "testing/datagen.h"

namespace fro {
namespace {

TEST(ValueTextTest, RoundTripsEveryKind) {
  for (const Value& v :
       {Value::Null(), Value::Int(42), Value::Int(-7), Value::Double(1.5),
        Value::Double(3.0), Value::String("hi"), Value::String("")}) {
    Result<Value> back = ValueFromText(ValueToText(v));
    ASSERT_TRUE(back.ok()) << v.ToString();
    EXPECT_EQ(*back, v) << v.ToString();
  }
}

TEST(ValueTextTest, Errors) {
  EXPECT_FALSE(ValueFromText("'oops").ok());
  EXPECT_FALSE(ValueFromText("12x").ok());
  EXPECT_FALSE(ValueFromText("1.2.3").ok());
}

TEST(TextIoTest, DatabaseRoundTrip) {
  Database db;
  RelId r = *db.AddRelation("R", {"a", "b"});
  RelId s = *db.AddRelation("S", {"c"});
  db.AddRow(r, {Value::Int(1), Value::String("x")});
  db.AddRow(r, {Value::Null(), Value::Double(2.5)});
  db.AddRow(s, {Value::Int(9)});
  std::string text = DatabaseToText(db);
  Result<std::unique_ptr<Database>> loaded = LoadDatabaseText(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->num_relations(), 2u);
  EXPECT_TRUE(BagEquals((*loaded)->relation(0), db.relation(r)));
  EXPECT_TRUE(BagEquals((*loaded)->relation(1), db.relation(s)));
  EXPECT_EQ((*loaded)->catalog().RelationName(0), "R");
  // Attribute names survive (qualified form).
  EXPECT_EQ((*loaded)->Attr("R", "b"), db.Attr("R", "b"));
}

TEST(TextIoTest, CommentsAndBlankLinesIgnored) {
  Result<std::unique_ptr<Database>> loaded = LoadDatabaseText(
      "# a comment\n"
      "relation T x y\n"
      "\n"
      "1,2\n"
      "# another\n"
      ",'s'\n");
  ASSERT_TRUE(loaded.ok());
  const Relation& t = (*loaded)->relation(0);
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_TRUE(t.row(1).value(0).is_null());
  EXPECT_EQ(t.row(1).value(1).AsString(), "s");
}

TEST(TextIoTest, MalformedInputsRejected) {
  EXPECT_FALSE(LoadDatabaseText("1,2\n").ok());           // row before header
  EXPECT_FALSE(LoadDatabaseText("relation T\n").ok());    // no columns
  EXPECT_FALSE(LoadDatabaseText("relation T a\n1,2\n").ok());  // arity
  EXPECT_FALSE(LoadDatabaseText("relation T a\nbad\n").ok());  // bad token
  EXPECT_FALSE(
      LoadDatabaseText("relation T a\nrelation T a\n").ok());  // duplicate
}

TEST(TextIoTest, RandomDatabasesRoundTrip) {
  Rng rng(2201);
  for (int trial = 0; trial < 20; ++trial) {
    RandomRowsOptions options;
    options.rows_max = 8;
    options.null_prob = 0.3;
    auto db = MakeRandomDatabase(3, 3, options, &rng);
    Result<std::unique_ptr<Database>> loaded =
        LoadDatabaseText(DatabaseToText(*db));
    ASSERT_TRUE(loaded.ok());
    for (RelId r = 0; r < 3; ++r) {
      EXPECT_TRUE(BagEquals((*loaded)->relation(r), db->relation(r)));
    }
  }
}

}  // namespace
}  // namespace fro
