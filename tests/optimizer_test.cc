// DP optimizer and facade tests.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "graph/from_expr.h"
#include "graph/nice.h"
#include "optimizer/optimizer.h"
#include "testing/datagen.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

// Example 1: under the base-retrievals cost model the DP must discover
// the (R1 - R2) -> R3 order with cost 3, against the naive 2N+1.
TEST(DpOptimizerTest, Example1FindsTheReorderedPlan) {
  const int n = 100;
  auto db = MakeExample1Database(n);
  QueryGraph g;
  g.AddNode(db->Rel("R1"), db->scheme(db->Rel("R1")).ToAttrSet());
  g.AddNode(db->Rel("R2"), db->scheme(db->Rel("R2")).ToAttrSet());
  g.AddNode(db->Rel("R3"), db->scheme(db->Rel("R3")).ToAttrSet());
  ASSERT_TRUE(
      g.AddJoinEdge(0, 1, EqCols(db->Attr("R1", "k"), db->Attr("R2", "k")))
          .ok());
  ASSERT_TRUE(g.AddOuterJoinEdge(1, 2, EqCols(db->Attr("R2", "fk"),
                                              db->Attr("R3", "k")))
                  .ok());
  CostModel model(*db, CostKind::kBaseRetrievals);
  Result<PlanResult> best = OptimizeReorderable(g, *db, model);
  ASSERT_TRUE(best.ok());
  // Expected plan shape: join first, outerjoin last.
  EXPECT_EQ(best->plan->kind(), OpKind::kOuterJoin);
  EXPECT_EQ(best->plan->left()->kind(), OpKind::kJoin);
  EXPECT_DOUBLE_EQ(best->cost, 3.0);
  // And the worst plan is the paper's naive order, costing ~2N+1.
  Result<PlanResult> worst =
      OptimizeReorderable(g, *db, model, /*maximize=*/true);
  ASSERT_TRUE(worst.ok());
  EXPECT_GE(worst->cost, 2.0 * n);
}

TEST(DpOptimizerTest, PlanImplementsTheGraphAndEvaluatesEqual) {
  Rng rng(901);
  for (int trial = 0; trial < 25; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(4));
    options.rows.rows_min = 1;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    CostModel model(*q.db, CostKind::kCout);
    Result<PlanResult> best = OptimizeReorderable(q.graph, *q.db, model);
    ASSERT_TRUE(best.ok());
    // The plan is an implementing tree of the graph.
    Result<QueryGraph> regraphed = GraphOf(best->plan, *q.db);
    ASSERT_TRUE(regraphed.ok());
    EXPECT_EQ(regraphed->num_edges(), q.graph.num_edges());
    // It evaluates identically to an arbitrary implementing tree
    // (Theorem 1 guarantees equivalence; this checks the DP built a
    // genuine IT).
    ExprPtr reference = RandomIt(q.graph, *q.db, &rng);
    EXPECT_TRUE(BagEquals(Eval(best->plan, *q.db), Eval(reference, *q.db)));
    // Best <= worst.
    Result<PlanResult> worst =
        OptimizeReorderable(q.graph, *q.db, model, /*maximize=*/true);
    ASSERT_TRUE(worst.ok());
    EXPECT_LE(best->cost, worst->cost + 1e-9);
  }
}

TEST(DpOptimizerTest, BestMatchesExhaustiveEnumerationCost) {
  Rng rng(902);
  for (int trial = 0; trial < 10; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 4;
    options.rows.rows_min = 1;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    CostModel model(*q.db, CostKind::kCout);
    Result<PlanResult> best = OptimizeReorderable(q.graph, *q.db, model);
    ASSERT_TRUE(best.ok());
    double exhaustive_best = 1e300;
    for (const ExprPtr& t : EnumerateIts(q.graph, *q.db)) {
      exhaustive_best = std::min(exhaustive_best, model.PlanCost(t));
    }
    EXPECT_NEAR(best->cost, exhaustive_best, 1e-6 * (1 + exhaustive_best));
  }
}

TEST(DpOptimizerTest, DisconnectedGraphRejected) {
  Database db;
  RelId r = *db.AddRelation("R", {"a"});
  RelId s = *db.AddRelation("S", {"b"});
  QueryGraph g;
  g.AddNode(r, db.scheme(r).ToAttrSet());
  g.AddNode(s, db.scheme(s).ToAttrSet());
  CostModel model(db, CostKind::kCout);
  EXPECT_FALSE(OptimizeReorderable(g, db, model).ok());
}

// --- Facade -------------------------------------------------------------

TEST(OptimizeFacadeTest, ReorderableQueryGetsDpPlan) {
  auto db = MakeExample1Database(50);
  ExprPtr r1 = Expr::Leaf(db->Rel("R1"), *db);
  ExprPtr r2 = Expr::Leaf(db->Rel("R2"), *db);
  ExprPtr r3 = Expr::Leaf(db->Rel("R3"), *db);
  ExprPtr naive = Expr::Join(
      r1,
      Expr::OuterJoin(r2, r3,
                      EqCols(db->Attr("R2", "fk"), db->Attr("R3", "k"))),
      EqCols(db->Attr("R1", "k"), db->Attr("R2", "k")));
  OptimizeOptions options;
  options.cost_kind = CostKind::kBaseRetrievals;
  Result<OptimizeOutcome> outcome = Optimize(naive, *db, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->freely_reorderable);
  EXPECT_LT(outcome->cost, outcome->original_cost);
  EXPECT_DOUBLE_EQ(outcome->cost, 3.0);
  EXPECT_TRUE(BagEquals(Eval(naive, *db), Eval(outcome->plan, *db)));
}

TEST(OptimizeFacadeTest, SimplificationThenReorder) {
  // sigma[R3.k >= 0](R1 - (R2 -> R3)): the strong filter converts the
  // outerjoin to a join; the whole query is then a join chain the DP can
  // reorder freely.
  auto db = MakeExample1Database(20);
  ExprPtr r1 = Expr::Leaf(db->Rel("R1"), *db);
  ExprPtr r2 = Expr::Leaf(db->Rel("R2"), *db);
  ExprPtr r3 = Expr::Leaf(db->Rel("R3"), *db);
  ExprPtr q = Expr::Restrict(
      Expr::Join(r1,
                 Expr::OuterJoin(
                     r2, r3,
                     EqCols(db->Attr("R2", "fk"), db->Attr("R3", "k"))),
                 EqCols(db->Attr("R1", "k"), db->Attr("R2", "k"))),
      CmpLit(CmpOp::kGe, db->Attr("R3", "k"), Value::Int(0)));
  Result<OptimizeOutcome> outcome = Optimize(q, *db);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->PassApplications("simplify"), 1);
  EXPECT_TRUE(outcome->freely_reorderable);
  EXPECT_TRUE(BagEquals(Eval(q, *db), Eval(outcome->plan, *db)));
  // The plan is a pure join tree; the restriction (on R3.k only) has been
  // pushed down to the R3 scan.
  EXPECT_EQ(outcome->plan->kind(), OpKind::kJoin);
  EXPECT_EQ(outcome->PassApplications("pushdown"), 1);
  // Disabling pushdown keeps the restrict on top.
  OptimizeOptions no_push;
  no_push.pipeline = RewritePipeline::Default().Without("pushdown");
  Result<OptimizeOutcome> unpushed = Optimize(q, *db, no_push);
  ASSERT_TRUE(unpushed.ok());
  EXPECT_EQ(unpushed->plan->kind(), OpKind::kRestrict);
  EXPECT_EQ(unpushed->plan->left()->kind(), OpKind::kJoin);
}

TEST(OptimizeFacadeTest, NonReorderableQueryGetsGojPlan) {
  // Example 2's shape: X -> (Y - Z). Not freely reorderable; the facade
  // left-deepens it via identity 15 and the plan still evaluates equal.
  Database db;
  RelId rx = *db.AddRelation("X", {"a"});
  RelId ry = *db.AddRelation("Y", {"b"});
  RelId rz = *db.AddRelation("Z", {"c"});
  AttrId a = db.Attr("X", "a");
  AttrId b = db.Attr("Y", "b");
  AttrId c = db.Attr("Z", "c");
  db.AddRow(rx, {Value::Int(1)});
  db.AddRow(rx, {Value::Int(2)});
  db.AddRow(ry, {Value::Int(1)});
  db.AddRow(ry, {Value::Int(3)});
  db.AddRow(rz, {Value::Int(3)});
  ExprPtr q = Expr::OuterJoin(
      Expr::Leaf(rx, db),
      Expr::Join(Expr::Leaf(ry, db), Expr::Leaf(rz, db), EqCols(b, c)),
      EqCols(a, b));
  Result<OptimizeOutcome> outcome = Optimize(q, db);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->freely_reorderable);
  EXPECT_EQ(outcome->PassApplications("goj"), 1);
  EXPECT_EQ(outcome->plan->kind(), OpKind::kGoj);
  EXPECT_TRUE(BagEquals(Eval(q, db), Eval(outcome->plan, db)));
}

TEST(OptimizeFacadeTest, WeakPredicateBlocksReordering) {
  Database db;
  RelId rx = *db.AddRelation("X", {"a"});
  RelId ry = *db.AddRelation("Y", {"b"});
  AttrId a = db.Attr("X", "a");
  AttrId b = db.Attr("Y", "b");
  db.AddRow(rx, {Value::Null()});
  db.AddRow(ry, {Value::Int(1)});
  PredicatePtr weak =
      Predicate::Or({EqCols(a, b), Predicate::IsNull(Operand::Column(a))});
  ExprPtr q = Expr::OuterJoin(Expr::Leaf(rx, db), Expr::Leaf(ry, db), weak);
  Result<OptimizeOutcome> outcome = Optimize(q, db);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->freely_reorderable);
  EXPECT_NE(outcome->classification.find("non-strong"), std::string::npos);
  EXPECT_TRUE(BagEquals(Eval(q, db), Eval(outcome->plan, db)));
}

TEST(OptimizeFacadeTest, RandomQueriesAlwaysPreserved) {
  // The facade must never change results, whatever the query class.
  Rng rng(903);
  for (int trial = 0; trial < 30; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(3));
    options.weak_pred_prob = trial % 2 == 0 ? 0.0 : 0.6;
    options.rows.rows_min = 1;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ExprPtr it = RandomIt(q.graph, *q.db, &rng);
    ASSERT_NE(it, nullptr);
    Result<OptimizeOutcome> outcome = Optimize(it, *q.db);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(BagEquals(Eval(it, *q.db), Eval(outcome->plan, *q.db)))
        << it->ToString() << " => " << outcome->plan->ToString();
  }
}

}  // namespace
}  // namespace fro
