// Fuzzing the predicate machinery: random predicate trees over a small
// attribute universe, cross-validating
//   (a) the strength analysis against brute force over the whole domain
//       (conservative soundness: a claimed-strong predicate never
//       evaluates True on the nulled rows), and
//   (b) evaluation totality (never crashes, always yields a TriBool), and
//   (c) References() completeness (evaluation only touches reported
//       attributes).

#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "relational/predicate.h"

namespace fro {
namespace {

constexpr int kNumAttrs = 3;

// The full value domain used by the brute force: null plus small ints
// and one string (to exercise cross-kind comparisons).
std::vector<Value> Domain() {
  return {Value::Null(), Value::Int(0), Value::Int(1), Value::String("s")};
}

Operand RandomOperand(Rng* rng) {
  switch (rng->Uniform(4)) {
    case 0:
      return Operand::Literal(Value::Int(rng->UniformInt(0, 1)));
    case 1:
      return Operand::Literal(Value::Null());
    default:
      return Operand::Column(
          static_cast<AttrId>(rng->Uniform(kNumAttrs)));
  }
}

PredicatePtr RandomPredicate(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.4)) {
    // Leaf: comparison or IS NULL.
    if (rng->Bernoulli(0.25)) {
      return Predicate::IsNull(RandomOperand(rng));
    }
    CmpOp op = static_cast<CmpOp>(rng->Uniform(6));
    return Predicate::Cmp(op, RandomOperand(rng), RandomOperand(rng));
  }
  switch (rng->Uniform(3)) {
    case 0:
      return Predicate::And(
          {RandomPredicate(rng, depth - 1), RandomPredicate(rng, depth - 1)});
    case 1:
      return Predicate::Or(
          {RandomPredicate(rng, depth - 1), RandomPredicate(rng, depth - 1)});
    default:
      return Predicate::Not(RandomPredicate(rng, depth - 1));
  }
}

// Enumerates every tuple over kNumAttrs columns with values from Domain(),
// with the attributes in `nulled` forced to null.
void ForEachTuple(const AttrSet& nulled,
                  const std::function<void(const Tuple&)>& fn) {
  std::vector<Value> domain = Domain();
  const size_t d = domain.size();
  size_t combos = 1;
  for (int i = 0; i < kNumAttrs; ++i) combos *= d;
  for (size_t code = 0; code < combos; ++code) {
    std::vector<Value> values;
    size_t rest = code;
    for (int i = 0; i < kNumAttrs; ++i) {
      values.push_back(nulled.Contains(static_cast<AttrId>(i))
                           ? Value::Null()
                           : domain[rest % d]);
      rest /= d;
    }
    fn(Tuple(std::move(values)));
  }
}

const Scheme& FuzzScheme() {
  static const Scheme* scheme = new Scheme({0, 1, 2});
  return *scheme;
}

TEST(PredicateFuzzTest, StrengthClaimsAreSound) {
  Rng rng(2401);
  int strong_claims = 0;
  for (int trial = 0; trial < 400; ++trial) {
    PredicatePtr pred = RandomPredicate(&rng, 3);
    for (const AttrSet& nulled :
         {AttrSet::Of({0}), AttrSet::Of({1}), AttrSet::Of({0, 2}),
          AttrSet::Of({0, 1, 2})}) {
      if (!pred->IsStrongWrt(nulled)) continue;
      ++strong_claims;
      ForEachTuple(nulled, [&](const Tuple& tuple) {
        ASSERT_FALSE(IsTrue(pred->Eval(tuple, FuzzScheme())))
            << pred->ToString(nullptr) << " claimed strong but is true on "
            << tuple.ToString();
      });
    }
  }
  // The analysis is not vacuous: plenty of strength claims were made.
  EXPECT_GT(strong_claims, 100);
}

TEST(PredicateFuzzTest, EvaluationIsTotalAndDeterministic) {
  Rng rng(2402);
  for (int trial = 0; trial < 200; ++trial) {
    PredicatePtr pred = RandomPredicate(&rng, 4);
    ForEachTuple(AttrSet(), [&](const Tuple& tuple) {
      TriBool a = pred->Eval(tuple, FuzzScheme());
      TriBool b = pred->Eval(tuple, FuzzScheme());
      EXPECT_EQ(a, b);
    });
  }
}

TEST(PredicateFuzzTest, DoubleNegationAgrees) {
  Rng rng(2403);
  for (int trial = 0; trial < 200; ++trial) {
    PredicatePtr pred = RandomPredicate(&rng, 3);
    PredicatePtr double_neg = Predicate::Not(Predicate::Not(pred));
    ForEachTuple(AttrSet(), [&](const Tuple& tuple) {
      EXPECT_EQ(pred->Eval(tuple, FuzzScheme()),
                double_neg->Eval(tuple, FuzzScheme()));
    });
  }
}

TEST(PredicateFuzzTest, DeMorganHolds) {
  Rng rng(2404);
  for (int trial = 0; trial < 150; ++trial) {
    PredicatePtr a = RandomPredicate(&rng, 2);
    PredicatePtr b = RandomPredicate(&rng, 2);
    PredicatePtr lhs = Predicate::Not(Predicate::And({a, b}));
    PredicatePtr rhs =
        Predicate::Or({Predicate::Not(a), Predicate::Not(b)});
    ForEachTuple(AttrSet(), [&](const Tuple& tuple) {
      EXPECT_EQ(lhs->Eval(tuple, FuzzScheme()),
                rhs->Eval(tuple, FuzzScheme()));
    });
  }
}

TEST(PredicateFuzzTest, StrengthMonotoneInNulledSet) {
  // Strength w.r.t. S implies strength w.r.t. any superset of S.
  Rng rng(2405);
  for (int trial = 0; trial < 300; ++trial) {
    PredicatePtr pred = RandomPredicate(&rng, 3);
    if (pred->IsStrongWrt(AttrSet::Of({0}))) {
      EXPECT_TRUE(pred->IsStrongWrt(AttrSet::Of({0, 1})))
          << pred->ToString(nullptr);
      EXPECT_TRUE(pred->IsStrongWrt(AttrSet::Of({0, 1, 2})))
          << pred->ToString(nullptr);
    }
  }
}

}  // namespace
}  // namespace fro
