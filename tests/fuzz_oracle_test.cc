// The reference oracle must reproduce the paper's worked examples by
// hand-checkable arithmetic, and agree with the materializing evaluator
// on randomized queries — the one cross-check the oracle itself gets
// (everything else in the harness is checked *against* the oracle).

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "fuzz/case_gen.h"
#include "fuzz/oracle.h"
#include "relational/ops.h"
#include "testing/datagen.h"

namespace fro {
namespace {

// Example 1 at scale n: R1 -> (R2 -> R3) keeps R1's single row joined
// through the matching chain, and both associations agree (identity 11).
TEST(FuzzOracleTest, Example1BothAssociations) {
  std::unique_ptr<Database> db = MakeExample1Database(5);
  RelId r1 = db->Rel("R1");
  RelId r2 = db->Rel("R2");
  RelId r3 = db->Rel("R3");
  AttrId r1k = db->Attr("R1", "k");
  AttrId r2k = db->Attr("R2", "k");
  AttrId r2fk = db->Attr("R2", "fk");
  AttrId r3k = db->Attr("R3", "k");

  ExprPtr naive = Expr::OuterJoin(
      Expr::Leaf(r1, *db),
      Expr::OuterJoin(Expr::Leaf(r2, *db), Expr::Leaf(r3, *db),
                      EqCols(r2fk, r3k), /*preserves_left=*/true),
      EqCols(r1k, r2k), /*preserves_left=*/true);
  ExprPtr reordered = Expr::OuterJoin(
      Expr::OuterJoin(Expr::Leaf(r1, *db), Expr::Leaf(r2, *db),
                      EqCols(r1k, r2k), /*preserves_left=*/true),
      Expr::Leaf(r3, *db), EqCols(r2fk, r3k), /*preserves_left=*/true);

  Relation naive_out = OracleEval(naive, *db);
  Relation reordered_out = OracleEval(reordered, *db);
  // R1 = {0} matches R2 key 0 which links to R3 key 0: one full row.
  EXPECT_EQ(naive_out.NumRows(), 1u);
  EXPECT_TRUE(BagEquals(naive_out, reordered_out));
}

// Example 2: the two bracketings of R1 -> (R2 - R3) genuinely differ —
// the oracle must reproduce the counterexample, not paper over it.
TEST(FuzzOracleTest, Example2CounterexampleHolds) {
  Database db;
  RelId r1 = *db.AddRelation("R1", {"a"});
  RelId r2 = *db.AddRelation("R2", {"b"});
  RelId r3 = *db.AddRelation("R3", {"c"});
  db.AddRow(r1, {Value::Int(1)});
  db.AddRow(r2, {Value::Int(1)});
  db.AddRow(r3, {Value::Int(99)});
  PredicatePtr poj = EqCols(db.Attr("R1", "a"), db.Attr("R2", "b"));
  PredicatePtr pjn = EqCols(db.Attr("R2", "b"), db.Attr("R3", "c"));

  ExprPtr oj_of_join = Expr::OuterJoin(
      Expr::Leaf(r1, db),
      Expr::Join(Expr::Leaf(r2, db), Expr::Leaf(r3, db), pjn), poj,
      /*preserves_left=*/true);
  ExprPtr join_of_oj = Expr::Join(
      Expr::OuterJoin(Expr::Leaf(r1, db), Expr::Leaf(r2, db), poj,
                      /*preserves_left=*/true),
      Expr::Leaf(r3, db), pjn);

  EXPECT_EQ(OracleEval(oj_of_join, db).NumRows(), 1u);  // padded r1 row
  EXPECT_EQ(OracleEval(join_of_oj, db).NumRows(), 0u);
}

// Example 3: a null-supplied tuple satisfies the weak predicate through
// its IS NULL disjunct — Kleene 3VL at the padding boundary.
TEST(FuzzOracleTest, Example3WeakPredicateAcceptsPadding) {
  Database db;
  RelId ra = *db.AddRelation("A", {"attr1"});
  RelId rb = *db.AddRelation("B", {"attr1", "attr2"});
  RelId rc = *db.AddRelation("C", {"attr1"});
  AttrId b2 = db.Attr("B", "attr2");
  db.AddRow(ra, {Value::Int(0)});
  db.AddRow(rb, {Value::Int(1), Value::Null()});
  db.AddRow(rc, {Value::Int(2)});
  PredicatePtr pab = EqCols(db.Attr("A", "attr1"), db.Attr("B", "attr1"));
  PredicatePtr pbc = Predicate::Or(
      {EqCols(b2, db.Attr("C", "attr1")),
       Predicate::IsNull(Operand::Column(b2))});

  ExprPtr left_assoc = Expr::OuterJoin(
      Expr::OuterJoin(Expr::Leaf(ra, db), Expr::Leaf(rb, db), pab,
                      /*preserves_left=*/true),
      Expr::Leaf(rc, db), pbc, /*preserves_left=*/true);
  ExprPtr right_assoc = Expr::OuterJoin(
      Expr::Leaf(ra, db),
      Expr::OuterJoin(Expr::Leaf(rb, db), Expr::Leaf(rc, db), pbc,
                      /*preserves_left=*/true),
      pab, /*preserves_left=*/true);

  // Left association: A's row pads B (no match), then the all-null B
  // columns satisfy pbc via IS NULL and join every C row.
  EXPECT_FALSE(
      BagEquals(OracleEval(left_assoc, db), OracleEval(right_assoc, db)));
}

// GOJ semantics (eq. 14): one padded row per DISTINCT preserved-side
// projection — not per row, the property the optimizer gate relies on.
TEST(FuzzOracleTest, GojPadsPerDistinctProjection) {
  Database db;
  RelId rl = *db.AddRelation("L", {"a"});
  RelId rr = *db.AddRelation("R", {"b"});
  AttrId a = db.Attr("L", "a");
  db.AddRow(rl, {Value::Int(1)});
  db.AddRow(rl, {Value::Int(1)});  // duplicate projection
  db.AddRow(rl, {Value::Int(2)});
  PredicatePtr never = Predicate::Const(false);

  ExprPtr goj = Expr::Goj(Expr::Leaf(rl, db), Expr::Leaf(rr, db), never,
                          AttrSet::Of({a}));
  ExprPtr oj = Expr::OuterJoin(Expr::Leaf(rl, db), Expr::Leaf(rr, db),
                               never, /*preserves_left=*/true);
  EXPECT_EQ(OracleEval(goj, db).NumRows(), 2u);  // distinct {1, 2}
  EXPECT_EQ(OracleEval(oj, db).NumRows(), 3u);   // one per row
}

// The only external cross-check the oracle gets: on randomized cases of
// every profile it must agree with the materializing evaluator (which
// predates this harness and is tested independently).
TEST(FuzzOracleTest, AgreesWithEvalOnRandomCases) {
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    FuzzCase fuzz_case = GenerateFuzzCase(DeriveSeed(0xacc0de, seed));
    Relation oracle = OracleEval(fuzz_case.query, *fuzz_case.db);
    Relation eval = Eval(fuzz_case.query, *fuzz_case.db);
    EXPECT_TRUE(BagEquals(oracle, eval))
        << "case seed " << fuzz_case.seed << " profile "
        << FuzzProfileName(fuzz_case.profile);
  }
}

}  // namespace
}  // namespace fro
