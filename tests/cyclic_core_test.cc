// Cyclic-core detection (wcoj/cyclic_core.h): which join-edge subgraphs
// count as cores, and the guarantee that core presence never changes the
// Theorem 1 classification of the surrounding outerjoin shell.

#include <gtest/gtest.h>

#include <vector>

#include "graph/nice.h"
#include "graph/query_graph.h"
#include "relational/database.h"
#include "wcoj/cyclic_core.h"

namespace fro {
namespace {

// A database of n single-attribute relations R0..R{n-1}, plus a graph
// with one node per relation; tests wire up edges with Join(u, v).
class CyclicCoreTest : public ::testing::Test {
 protected:
  void Init(int n) {
    for (int i = 0; i < n; ++i) {
      RelId rel = *db_.AddRelation("R" + std::to_string(i), {"a"});
      attr_.push_back(db_.Attr("R" + std::to_string(i), "a"));
      graph_.AddNode(rel, db_.scheme(rel).ToAttrSet());
    }
  }

  void Join(int u, int v) {
    Status s = graph_.AddJoinEdge(u, v, EqCols(attr_[u], attr_[v]));
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  void Outer(int u, int v) {
    Status s = graph_.AddOuterJoinEdge(u, v, EqCols(attr_[u], attr_[v]));
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  static uint64_t Mask(std::initializer_list<int> nodes) {
    uint64_t m = 0;
    for (int n : nodes) m |= uint64_t{1} << n;
    return m;
  }

  Database db_;
  QueryGraph graph_;
  std::vector<AttrId> attr_;
};

TEST_F(CyclicCoreTest, ChainHasNoCore) {
  Init(4);
  Join(0, 1);
  Join(1, 2);
  Join(2, 3);
  EXPECT_TRUE(FindCyclicCores(graph_).empty());
}

TEST_F(CyclicCoreTest, StarHasNoCore) {
  Init(4);
  Join(0, 1);
  Join(0, 2);
  Join(0, 3);
  EXPECT_TRUE(FindCyclicCores(graph_).empty());
}

TEST_F(CyclicCoreTest, TriangleIsOneCore) {
  Init(3);
  Join(0, 1);
  Join(1, 2);
  Join(2, 0);
  std::vector<CyclicCore> cores = FindCyclicCores(graph_);
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0].node_mask, Mask({0, 1, 2}));
  EXPECT_EQ(cores[0].edge_indices.size(), 3u);
}

TEST_F(CyclicCoreTest, FourCycleIsOneCore) {
  Init(4);
  Join(0, 1);
  Join(1, 2);
  Join(2, 3);
  Join(3, 0);
  std::vector<CyclicCore> cores = FindCyclicCores(graph_);
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0].node_mask, Mask({0, 1, 2, 3}));
  EXPECT_EQ(cores[0].edge_indices.size(), 4u);
}

TEST_F(CyclicCoreTest, CliqueIsOneCore) {
  Init(4);
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) Join(u, v);
  }
  std::vector<CyclicCore> cores = FindCyclicCores(graph_);
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0].node_mask, Mask({0, 1, 2, 3}));
  EXPECT_EQ(cores[0].edge_indices.size(), 6u);
}

TEST_F(CyclicCoreTest, TwoTrianglesSharingAVertexMergeIntoOneCore) {
  // Node 2 is an articulation vertex, but no edge is a bridge and every
  // node pair has two edge-disjoint paths, so the union of the two
  // triangles is a single 2-edge-connected component — one core
  // covering all five relations.
  Init(5);
  Join(0, 1);
  Join(1, 2);
  Join(2, 0);
  Join(2, 3);
  Join(3, 4);
  Join(4, 2);
  std::vector<CyclicCore> cores = FindCyclicCores(graph_);
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0].node_mask, Mask({0, 1, 2, 3, 4}));
  EXPECT_EQ(cores[0].edge_indices.size(), 6u);
}

TEST_F(CyclicCoreTest, TrianglesLinkedByABridgeAreTwoCores) {
  // Two triangles joined by a bridge edge: the bridge separates the
  // 2-edge-connected components, so each triangle is its own core.
  Init(6);
  Join(0, 1);
  Join(1, 2);
  Join(2, 0);
  Join(2, 3);  // bridge
  Join(3, 4);
  Join(4, 5);
  Join(5, 3);
  std::vector<CyclicCore> cores = FindCyclicCores(graph_);
  ASSERT_EQ(cores.size(), 2u);
  EXPECT_EQ(cores[0].node_mask, Mask({0, 1, 2}));
  EXPECT_EQ(cores[1].node_mask, Mask({3, 4, 5}));
}

TEST_F(CyclicCoreTest, BridgeTailStaysOutsideTheCore) {
  Init(5);
  Join(0, 1);
  Join(1, 2);
  Join(2, 0);
  Join(2, 3);  // bridge
  Join(3, 4);  // bridge
  std::vector<CyclicCore> cores = FindCyclicCores(graph_);
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0].node_mask, Mask({0, 1, 2}));
  EXPECT_EQ(cores[0].edge_indices.size(), 3u);
}

TEST_F(CyclicCoreTest, ParallelConjunctsCannotFakeACycle) {
  // Two conjuncts between the same pair collapse into one graph edge,
  // so a two-node "cycle" never forms.
  Init(2);
  Join(0, 1);
  Join(0, 1);
  ASSERT_EQ(graph_.edges().size(), 1u);
  EXPECT_TRUE(FindCyclicCores(graph_).empty());
}

TEST_F(CyclicCoreTest, OuterjoinEdgesNeverJoinACore) {
  // An outerjoin cycle is not a core, and an outerjoin edge incident to
  // a join triangle does not extend it.
  Init(5);
  Outer(0, 1);
  Outer(1, 2);
  Outer(2, 0);
  EXPECT_TRUE(FindCyclicCores(graph_).empty());

  Join(2, 3);
  Join(3, 4);
  Join(4, 2);
  std::vector<CyclicCore> cores = FindCyclicCores(graph_);
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0].node_mask, Mask({2, 3, 4}));
}

// Theorem 1 classifies the outerjoin shell; a cyclic join core must not
// change that classification in either direction.
TEST_F(CyclicCoreTest, ShellClassificationIgnoresCorePresence) {
  // Nice shell: triangle core with one outerjoin node hanging off.
  Init(4);
  Join(0, 1);
  Join(1, 2);
  Outer(0, 3);
  const bool before = CheckFreelyReorderable(graph_).freely_reorderable();
  EXPECT_TRUE(before);
  Join(2, 0);  // close the cycle
  ASSERT_EQ(FindCyclicCores(graph_).size(), 1u);
  EXPECT_EQ(CheckFreelyReorderable(graph_).freely_reorderable(), before);
}

TEST_F(CyclicCoreTest, ShellViolationUnaffectedByCore) {
  // Join at a null-supplied node (Lemma 1 violation) stays a violation
  // whether or not the join part is cyclic.
  Init(5);
  Join(0, 1);
  Join(1, 2);
  Outer(0, 3);
  Join(3, 4);  // X -> Y - Z: join edge at null-supplied node 3
  const ReorderabilityCheck before = CheckFreelyReorderable(graph_);
  EXPECT_FALSE(before.freely_reorderable());
  Join(2, 0);  // close the join cycle
  ASSERT_EQ(FindCyclicCores(graph_).size(), 1u);
  const ReorderabilityCheck after = CheckFreelyReorderable(graph_);
  EXPECT_FALSE(after.freely_reorderable());
  EXPECT_EQ(after.nice.violation, before.nice.violation);
}

}  // namespace
}  // namespace fro
