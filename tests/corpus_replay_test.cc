// Replays every checked-in corpus case (tests/corpus/*.case) through the
// full differential driver. A case lands here either as a paper example
// or as a shrunken fuzzer finding whose bug has been fixed — so each one
// is a regression test: it must stay divergence-free forever.

#include <gtest/gtest.h>

#include "fuzz/corpus.h"
#include "fuzz/differential.h"

#ifndef FRO_CORPUS_DIR
#error "build must define FRO_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace fro {
namespace {

TEST(CorpusReplayTest, DirectoryIsNonEmpty) {
  EXPECT_GE(ListCorpusFiles(FRO_CORPUS_DIR).size(), 6u)
      << "corpus directory missing or depleted: " << FRO_CORPUS_DIR;
}

TEST(CorpusReplayTest, EveryCaseIsDivergenceFree) {
  for (const std::string& path : ListCorpusFiles(FRO_CORPUS_DIR)) {
    SCOPED_TRACE(path);
    Result<CorpusCase> loaded = LoadCorpusCase(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    DiffReport report = RunDifferential(loaded->fuzz_case);
    EXPECT_TRUE(report.ok()) << report.ToString();
    EXPECT_GT(report.checks_run, 0u);
  }
}

// Serialization is stable: load -> serialize -> parse -> serialize is a
// fixed point, so shrunken repros can be checked in verbatim.
TEST(CorpusReplayTest, SerializationRoundTrips) {
  for (const std::string& path : ListCorpusFiles(FRO_CORPUS_DIR)) {
    SCOPED_TRACE(path);
    Result<CorpusCase> loaded = LoadCorpusCase(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const std::string once =
        CorpusCaseToText(loaded->fuzz_case, loaded->check);
    Result<CorpusCase> reparsed = ParseCorpusCase(once);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_EQ(CorpusCaseToText(reparsed->fuzz_case, reparsed->check), once);
    EXPECT_EQ(reparsed->fuzz_case.query->Fingerprint(),
              loaded->fuzz_case.query->Fingerprint());
  }
}

}  // namespace
}  // namespace fro
