// The Section 2.3 reassociation identities for outerjoins (equations
// 11-13), their side conditions, and the paper's counterexamples
// (Examples 2 and 3) replayed exactly.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "testing/datagen.h"

namespace fro {
namespace {

struct Tri {
  std::unique_ptr<Database> db;
  ExprPtr x, y, z;
  AttrId xa, ya, yb, za;
  PredicatePtr pxy, pyz;
};

Tri MakeTri(Rng* rng, bool weak_pyz_wrt_y = false,
            bool weak_pxy_wrt_y = false) {
  Tri t;
  RandomRowsOptions rows;
  rows.rows_min = 0;
  rows.rows_max = 5;
  rows.domain = 3;
  rows.null_prob = 0.25;
  t.db = MakeRandomDatabase(3, 2, rows, rng);
  t.x = Expr::Leaf(t.db->Rel("R0"), *t.db);
  t.y = Expr::Leaf(t.db->Rel("R1"), *t.db);
  t.z = Expr::Leaf(t.db->Rel("R2"), *t.db);
  t.xa = t.db->Attr("R0", "a0");
  t.ya = t.db->Attr("R1", "a0");
  t.yb = t.db->Attr("R1", "a1");
  t.za = t.db->Attr("R2", "a0");
  t.pxy = weak_pxy_wrt_y
              ? Predicate::Or({EqCols(t.xa, t.ya),
                               Predicate::IsNull(Operand::Column(t.ya))})
              : EqCols(t.xa, t.ya);
  t.pyz = weak_pyz_wrt_y
              ? Predicate::Or({EqCols(t.yb, t.za),
                               Predicate::IsNull(Operand::Column(t.yb))})
              : EqCols(t.yb, t.za);
  return t;
}

constexpr int kTrials = 60;

#define EXPECT_SAME_RESULT(lhs, rhs, t, trial)                          \
  EXPECT_TRUE(BagEquals(Eval((lhs), *(t).db), Eval((rhs), *(t).db)))    \
      << "trial " << (trial) << "\n lhs=" << (lhs)->ToString()          \
      << "\n rhs=" << (rhs)->ToString()

// Pattern (-, ->): (X - Y) -> Z = X - (Y -> Z). Unconditional.
TEST(ReassocTest, JoinBelowOuterjoin) {
  Rng rng(201);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::OuterJoin(Expr::Join(t.x, t.y, t.pxy), t.z, t.pyz);
    ExprPtr rhs = Expr::Join(t.x, Expr::OuterJoin(t.y, t.z, t.pyz), t.pxy);
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

// Pattern (->, ->): (X -> Y) -> Z = X -> (Y -> Z), REQUIRES P_yz strong
// with respect to Y (identity 12).
TEST(ReassocTest, Identity12OuterjoinAssociativityWithStrongPred) {
  Rng rng(202);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::OuterJoin(Expr::OuterJoin(t.x, t.y, t.pxy), t.z,
                                  t.pyz);
    ExprPtr rhs = Expr::OuterJoin(t.x, Expr::OuterJoin(t.y, t.z, t.pyz),
                                  t.pxy);
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

// Pattern (<-, ->): (X <- Y) -> Z = X <- (Y -> Z) (identity 13): two
// outerjoins sharing the preserved operand Y. Unconditional.
TEST(ReassocTest, Identity13SharedPreservedOperand) {
  Rng rng(203);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::OuterJoin(
        Expr::OuterJoin(t.x, t.y, t.pxy, /*preserves_left=*/false), t.z,
        t.pyz);
    ExprPtr rhs = Expr::OuterJoin(t.x, Expr::OuterJoin(t.y, t.z, t.pyz),
                                  t.pxy, /*preserves_left=*/false);
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

// Pattern (<-, -): (X <- Y) - Z = X <- (Y - Z): a join on the preserved
// side of an outerjoin commutes with it. Unconditional.
TEST(ReassocTest, JoinOnPreservedSideCommutes) {
  Rng rng(204);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::Join(
        Expr::OuterJoin(t.x, t.y, t.pxy, /*preserves_left=*/false), t.z,
        t.pyz);
    ExprPtr rhs = Expr::OuterJoin(t.x, Expr::Join(t.y, t.z, t.pyz), t.pxy,
                                  /*preserves_left=*/false);
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

// Mirrored identity 12, pattern (<-, <-): (X <- Y) <- Z = X <- (Y <- Z)
// requires P_xy strong w.r.t. Y.
TEST(ReassocTest, MirroredIdentity12) {
  Rng rng(205);
  for (int i = 0; i < kTrials; ++i) {
    Tri t = MakeTri(&rng);
    ExprPtr lhs = Expr::OuterJoin(
        Expr::OuterJoin(t.x, t.y, t.pxy, /*preserves_left=*/false), t.z,
        t.pyz, /*preserves_left=*/false);
    ExprPtr rhs = Expr::OuterJoin(
        t.x, Expr::OuterJoin(t.y, t.z, t.pyz, /*preserves_left=*/false),
        t.pxy, /*preserves_left=*/false);
    EXPECT_SAME_RESULT(lhs, rhs, t, i);
  }
}

// --- Counterexamples ----------------------------------------------------

// Example 2 of the paper, replayed exactly: despite having the same query
// graph, R1 -> (R2 - R3) differs from (R1 -> R2) - R3 when (r2, r3) does
// not satisfy the join predicate.
TEST(CounterexampleTest, Example2JoinUnderOuterjoinDoesNotAssociate) {
  Database db;
  RelId r1 = *db.AddRelation("R1", {"a"});
  RelId r2 = *db.AddRelation("R2", {"b"});
  RelId r3 = *db.AddRelation("R3", {"c"});
  AttrId a = db.Attr("R1", "a");
  AttrId b = db.Attr("R2", "b");
  AttrId c = db.Attr("R3", "c");
  db.AddRow(r1, {Value::Int(1)});
  db.AddRow(r2, {Value::Int(1)});   // matches r1 on the outerjoin pred
  db.AddRow(r3, {Value::Int(99)});  // does NOT match r2 on the join pred
  ExprPtr e1 = Expr::Leaf(r1, db);
  ExprPtr e2 = Expr::Leaf(r2, db);
  ExprPtr e3 = Expr::Leaf(r3, db);
  PredicatePtr poj = EqCols(a, b);
  PredicatePtr pjn = EqCols(b, c);

  ExprPtr oj_of_join = Expr::OuterJoin(e1, Expr::Join(e2, e3, pjn), poj);
  ExprPtr join_of_oj = Expr::Join(Expr::OuterJoin(e1, e2, poj), e3, pjn);

  Relation first = Eval(oj_of_join, db);
  Relation second = Eval(join_of_oj, db);
  // First yields {(r1, -, -)}; second yields the empty set.
  ASSERT_EQ(first.NumRows(), 1u);
  EXPECT_EQ(first.ValueOf(0, a).AsInt(), 1);
  EXPECT_TRUE(first.ValueOf(0, b).is_null());
  EXPECT_TRUE(first.ValueOf(0, c).is_null());
  EXPECT_EQ(second.NumRows(), 0u);
  EXPECT_FALSE(BagEquals(first, second));
}

// Example 3 of the paper, replayed exactly: a non-strong predicate
// precludes outerjoin reassociation. A = {(a)}, B = {(b, -)}, C = {(c)};
// P_ab = (A.attr1 = B.attr1); P_bc = (B.attr2 = C.attr1 OR B.attr2 IS
// NULL).
TEST(CounterexampleTest, Example3NonstrongPredicateBreaksIdentity12) {
  Database db;
  RelId ra = *db.AddRelation("A", {"attr1"});
  RelId rb = *db.AddRelation("B", {"attr1", "attr2"});
  RelId rc = *db.AddRelation("C", {"attr1"});
  AttrId a1 = db.Attr("A", "attr1");
  AttrId b1 = db.Attr("B", "attr1");
  AttrId b2 = db.Attr("B", "attr2");
  AttrId c1 = db.Attr("C", "attr1");
  db.AddRow(ra, {Value::Int(0)});
  db.AddRow(rb, {Value::Int(1), Value::Null()});  // (b, -): b != a
  db.AddRow(rc, {Value::Int(2)});
  PredicatePtr pab = EqCols(a1, b1);
  PredicatePtr pbc = Predicate::Or(
      {EqCols(b2, c1), Predicate::IsNull(Operand::Column(b2))});
  ASSERT_FALSE(pbc->IsStrongWrt(AttrSet::Of({b2})));

  ExprPtr ea = Expr::Leaf(ra, db);
  ExprPtr eb = Expr::Leaf(rb, db);
  ExprPtr ec = Expr::Leaf(rc, db);
  ExprPtr left_assoc =
      Expr::OuterJoin(Expr::OuterJoin(ea, eb, pab), ec, pbc);
  ExprPtr right_assoc =
      Expr::OuterJoin(ea, Expr::OuterJoin(eb, ec, pbc), pab);

  Relation lhs = Eval(left_assoc, db);
  Relation rhs = Eval(right_assoc, db);
  // (A -> B) -> C: A's row pads B, then the padded B.attr2 (null)
  // satisfies P_bc via the IS NULL disjunct -> (a, -, -, c).
  ASSERT_EQ(lhs.NumRows(), 1u);
  EXPECT_EQ(lhs.ValueOf(0, c1).AsInt(), 2);
  // A -> (B -> C): B's row pairs with C, but A matches nothing -> padded
  // (a, -, -, -).
  ASSERT_EQ(rhs.NumRows(), 1u);
  EXPECT_TRUE(rhs.ValueOf(0, c1).is_null());
  EXPECT_FALSE(BagEquals(lhs, rhs));
}

// The forbidden pattern (->, <-): (X -> Y) <- Z vs X -> (Y <- Z).
TEST(CounterexampleTest, TwoInwardOuterjoinsDoNotAssociate) {
  Database db;
  RelId rx = *db.AddRelation("X", {"a"});
  RelId ry = *db.AddRelation("Y", {"b"});
  RelId rz = *db.AddRelation("Z", {"c"});
  AttrId a = db.Attr("X", "a");
  AttrId b = db.Attr("Y", "b");
  AttrId c = db.Attr("Z", "c");
  db.AddRow(rx, {Value::Int(1)});
  db.AddRow(ry, {Value::Int(1)});
  db.AddRow(rz, {Value::Int(9)});  // no match with y
  ExprPtr x = Expr::Leaf(rx, db);
  ExprPtr y = Expr::Leaf(ry, db);
  ExprPtr z = Expr::Leaf(rz, db);
  ExprPtr lhs = Expr::OuterJoin(Expr::OuterJoin(x, y, EqCols(a, b)), z,
                                EqCols(b, c), /*preserves_left=*/false);
  ExprPtr rhs = Expr::OuterJoin(
      x, Expr::OuterJoin(y, z, EqCols(b, c), /*preserves_left=*/false),
      EqCols(a, b));
  EXPECT_FALSE(BagEquals(Eval(lhs, db), Eval(rhs, db)));
}

// Identity 12's strength requirement is necessary: randomized search
// confirms the weak-predicate variant disagrees on some database (and the
// strong variant never does; see Identity12... test above).
TEST(CounterexampleTest, WeakPredicateDisagreementIsReachable) {
  Rng rng(206);
  int disagreements = 0;
  for (int i = 0; i < 200; ++i) {
    Tri t = MakeTri(&rng, /*weak_pyz_wrt_y=*/true);
    ExprPtr lhs = Expr::OuterJoin(Expr::OuterJoin(t.x, t.y, t.pxy), t.z,
                                  t.pyz);
    ExprPtr rhs = Expr::OuterJoin(t.x, Expr::OuterJoin(t.y, t.z, t.pyz),
                                  t.pxy);
    if (!BagEquals(Eval(lhs, *t.db), Eval(rhs, *t.db))) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

}  // namespace
}  // namespace fro
