// Concurrency smoke test: many threads drive RunQuery over one shared
// read-only NestedDb and one shared LruPlanCache, then every result is
// compared against a serial baseline. This is the ThreadSanitizer target
// for the shared-state audit: the hash-consing interner (sharded
// mutexes), the plan cache (single mutex), and the catalog/schema
// structures are all exercised from every thread at once.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "lang/lang.h"
#include "relational/relation.h"
#include "optimizer/plan_cache.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

const char* kQueries[] = {
    "Select All From EMPLOYEE*ChildName, DEPARTMENT "
    "Where EMPLOYEE.D# = DEPARTMENT.D#",
    "Select All From DEPARTMENT-->Manager-->Audit",
    "Select All From DEPARTMENT-->Manager*ChildName "
    "Where DEPARTMENT.Location = 'Zurich'",
    "Select All From EMPLOYEE Where EMPLOYEE.Rank = 7",
    "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Secretary "
    "Where EMPLOYEE.D# = DEPARTMENT.D#",
    "Select EMPLOYEE.Rank, DEPARTMENT.Location From EMPLOYEE, DEPARTMENT "
    "Where EMPLOYEE.D# = DEPARTMENT.D#",
};
constexpr size_t kNumQueries = std::size(kQueries);

TEST(ConcurrentSmokeTest, ParallelRunQueryMatchesSerialBaseline) {
  const NestedDb db = MakeCompanyNestedDb();
  LruPlanCache cache(32);
  RunOptions options;
  options.plan_cache = &cache;

  // Serial baseline, recorded with a cold cache so the concurrent phase
  // below starts warm (every plan already inserted).
  std::vector<std::string> baseline(kNumQueries);
  for (size_t i = 0; i < kNumQueries; ++i) {
    Result<QueryRunResult> r = RunQuery(db, kQueries[i], options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    baseline[i] =
        CanonicalString(r->relation, &r->translation.db->catalog());
    ASSERT_FALSE(baseline[i].empty());
  }

  constexpr int kThreads = 8;
  constexpr int kPasses = 6;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int pass = 0; pass < kPasses; ++pass) {
        for (size_t i = 0; i < kNumQueries; ++i) {
          // Stagger offsets so threads collide on the same cache keys.
          const size_t q = (i + static_cast<size_t>(t)) % kNumQueries;
          Result<QueryRunResult> r = RunQuery(db, kQueries[q], options);
          if (!r.ok()) {
            failures.fetch_add(1);
            continue;
          }
          const std::string got =
              CanonicalString(r->relation, &r->translation.db->catalog());
          if (got != baseline[q]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // Every concurrent run after the serial warmup must have hit.
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, kNumQueries);
  EXPECT_EQ(stats.hits,
            static_cast<uint64_t>(kThreads) * kPasses * kNumQueries);
}

// Cold-start contention: all threads race to plan the same queries with
// nothing cached. Duplicate inserts are expected (last writer wins per
// key); correctness and crash-freedom are the assertions.
TEST(ConcurrentSmokeTest, ColdCacheStampedeIsSafe) {
  const NestedDb db = MakeCompanyNestedDb();
  LruPlanCache cache(32);
  RunOptions options;
  options.plan_cache = &cache;

  std::vector<std::string> baseline(kNumQueries);
  {
    // Baseline computed without any cache.
    for (size_t i = 0; i < kNumQueries; ++i) {
      Result<QueryRunResult> r = RunQuery(db, kQueries[i], RunOptions());
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      baseline[i] =
          CanonicalString(r->relation, &r->translation.db->catalog());
    }
  }

  constexpr int kThreads = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t q = 0; q < kNumQueries; ++q) {
        Result<QueryRunResult> r = RunQuery(db, kQueries[q], options);
        if (!r.ok() ||
            CanonicalString(r->relation, &r->translation.db->catalog()) !=
                baseline[q]) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(cache.stats().size, 32u);
}

}  // namespace
}  // namespace fro
