// Self-joins via relation copies: Database::CloneRelation at the
// relational level and From-list aliases in the Section 5 language (the
// paper's "several copies of the same relation with renamed attributes").

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "graph/from_expr.h"
#include "graph/nice.h"
#include "lang/lang.h"
#include "lang/parser.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

TEST(CloneRelationTest, CopiesSchemaAndRows) {
  Database db;
  RelId r = *db.AddRelation("R", {"a", "b"});
  db.AddRow(r, {Value::Int(1), Value::Int(2)});
  Result<RelId> copy = db.CloneRelation(r, "R2");
  ASSERT_TRUE(copy.ok());
  // Same rows positionally (attribute ids intentionally differ, so the
  // schemes are disjoint and BagEquals would pad them apart).
  ASSERT_EQ(db.relation(*copy).NumRows(), db.relation(r).NumRows());
  for (size_t i = 0; i < db.relation(r).NumRows(); ++i) {
    EXPECT_TRUE(db.relation(*copy).row(i) == db.relation(r).row(i));
  }
  // Attributes are freshly qualified: distinct ids, same short names.
  EXPECT_NE(db.Attr("R", "a"), db.Attr("R2", "a"));
  // Clashing names fail.
  EXPECT_FALSE(db.CloneRelation(r, "R").ok());
  EXPECT_FALSE(db.CloneRelation(99, "R3").ok());
}

TEST(CloneRelationTest, EnablesSelfJoin) {
  // Employees sharing a department: EMP self-join on dno.
  Database db;
  RelId e1 = *db.AddRelation("E1", {"eno", "dno"});
  db.AddRow(e1, {Value::Int(1), Value::Int(10)});
  db.AddRow(e1, {Value::Int(2), Value::Int(10)});
  db.AddRow(e1, {Value::Int(3), Value::Int(20)});
  RelId e2 = *db.CloneRelation(e1, "E2");
  ExprPtr q = Expr::Join(Expr::Leaf(e1, db), Expr::Leaf(e2, db),
                         EqCols(db.Attr("E1", "dno"), db.Attr("E2", "dno")));
  // Pairs within dept 10: 2x2; within dept 20: 1x1.
  EXPECT_EQ(Eval(q, db).NumRows(), 5u);
  // The self-join is an ordinary two-node graph: freely reorderable.
  Result<QueryGraph> g = GraphOf(q, db);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(CheckFreelyReorderable(*g).freely_reorderable());
}

TEST(AliasTest, ParserReadsAliases) {
  Result<SelectQuery> q = ParseQuery(
      "Select All From EMPLOYEE e1, EMPLOYEE e2 "
      "Where e1.D# = e2.D# and e1.Rank > 10");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->from.size(), 2u);
  EXPECT_EQ(q->from[0].type_name, "EMPLOYEE");
  EXPECT_EQ(q->from[0].alias, "e1");
  EXPECT_EQ(q->from[1].alias, "e2");
  // Alias followed by chain steps.
  Result<SelectQuery> chained =
      ParseQuery("Select All From EMPLOYEE boss*ChildName");
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(chained->from[0].alias, "boss");
  ASSERT_EQ(chained->from[0].steps.size(), 1u);
}

TEST(AliasTest, SelfJoinQueryRuns) {
  NestedDb db = MakeCompanyNestedDb();
  // Colleague pairs: employees in the same department (including an
  // employee with itself).
  Result<QueryRunResult> run = RunQuery(
      db,
      "Select e1.Rank, e2.Rank From EMPLOYEE e1, EMPLOYEE e2 "
      "Where e1.D# = e2.D#");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Dept 1 has Ana+Bo (4 pairs), dept 2 has Cy (1 pair); Dee's null D#
  // matches nothing.
  EXPECT_EQ(run->relation.NumRows(), 5u);
  EXPECT_TRUE(run->translation.audit.freely_reorderable());
}

TEST(AliasTest, AliasedChainsStayReorderable) {
  NestedDb db = MakeCompanyNestedDb();
  Result<QueryRunResult> run = RunQuery(
      db,
      "Select All From EMPLOYEE e1*ChildName, EMPLOYEE e2 "
      "Where e1.D# = e2.D#");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->translation.audit.freely_reorderable());
  // The chain relation is named after the alias.
  EXPECT_TRUE(
      run->translation.db->catalog().FindRelation("e1_ChildName").ok());
}

TEST(AliasTest, DuplicateVariableStillRejected) {
  NestedDb db = MakeCompanyNestedDb();
  Result<QueryRunResult> bare =
      RunQuery(db, "Select All From EMPLOYEE, EMPLOYEE");
  EXPECT_FALSE(bare.ok());
  Result<QueryRunResult> same_alias = RunQuery(
      db, "Select All From EMPLOYEE x, EMPLOYEE x Where x.D# = x.D#");
  EXPECT_FALSE(same_alias.ok());
}

}  // namespace
}  // namespace fro
