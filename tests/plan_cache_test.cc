// Plan-cache correctness: hash-keyed reuse through Optimize and the lang
// facade. The soundness claim under test is Theorem 1's: for the freely
// reorderable class the cached implementing tree is result-identical, so
// a hit must change nothing observable but the latency.

#include "optimizer/plan_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>

#include "algebra/expr.h"
#include "lang/lang.h"
#include "relational/relation.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

CachedPlan DummyPlan(const std::string& notes) {
  CachedPlan plan;
  plan.notes = notes;
  return plan;
}

TEST(LruPlanCacheTest, InsertLookupTouchEvict) {
  LruPlanCache cache(2);
  cache.Insert(1, DummyPlan("one"));
  cache.Insert(2, DummyPlan("two"));
  // Touch key 1 so key 2 is the LRU entry.
  ASSERT_TRUE(cache.Lookup(1).has_value());
  cache.Insert(3, DummyPlan("three"));
  EXPECT_TRUE(cache.Lookup(1).has_value());
  EXPECT_FALSE(cache.Lookup(2).has_value());
  EXPECT_TRUE(cache.Lookup(3).has_value());

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(LruPlanCacheTest, CapacityOneEvictsOnEveryAlternation) {
  LruPlanCache cache(1);
  EXPECT_FALSE(cache.Lookup(10).has_value());
  cache.Insert(10, DummyPlan("a"));
  EXPECT_FALSE(cache.Lookup(20).has_value());
  cache.Insert(20, DummyPlan("b"));  // evicts 10
  EXPECT_FALSE(cache.Lookup(10).has_value());
  cache.Insert(10, DummyPlan("a"));  // evicts 20
  EXPECT_FALSE(cache.Lookup(20).has_value());

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(LruPlanCacheTest, CapacityZeroDisablesCaching) {
  LruPlanCache cache(0);
  cache.Insert(1, DummyPlan("dropped"));
  EXPECT_FALSE(cache.Lookup(1).has_value());
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(LruPlanCacheTest, ConcurrentReplanClaimIsExclusive) {
  // Two racers hit a stale entry simultaneously: exactly one may win the
  // re-plan claim, and the loser must keep being served the old (sound)
  // plan. Repeated rounds give the scheduler — and the TSan CI leg —
  // room to interleave the lookups both ways.
  for (int round = 0; round < 200; ++round) {
    LruPlanCache cache(2, /*q_error_threshold=*/2.0);
    CachedPlan plan;
    plan.db_generation = 5;
    cache.Insert(7, plan);
    cache.RecordExecution(7, 100.0);  // far past the threshold: stale

    std::atomic<int> start{0};
    std::atomic<int> claims{0};
    std::atomic<int> served{0};
    auto racer = [&] {
      start.fetch_add(1);
      while (start.load() < 2) {
      }  // spin barrier: both lookups in flight together
      bool claimed = false;
      std::optional<CachedPlan> got =
          cache.LookupForPlanning(7, 5, &claimed);
      if (claimed) claims.fetch_add(1);
      if (got.has_value()) served.fetch_add(1);
      // The claimant re-optimizes and resolves its claim.
      if (claimed) cache.Insert(7, plan);
    };
    std::thread a(racer);
    std::thread b(racer);
    a.join();
    b.join();
    // Whether the loser raced ahead of or behind the claimant's Insert,
    // it was served a plan; the claim itself is exclusive.
    EXPECT_EQ(claims.load(), 1);
    EXPECT_EQ(served.load(), 1);
    EXPECT_EQ(cache.stats().replans, 1u);
  }
}

class PlanCacheQueryTest : public ::testing::Test {
 protected:
  PlanCacheQueryTest() : db_(MakeCompanyNestedDb()) {}

  Result<QueryRunResult> Run(const std::string& text, LruPlanCache* cache) {
    RunOptions options;
    options.plan_cache = cache;
    return RunQuery(db_, text, options);
  }

  NestedDb db_;
};

TEST_F(PlanCacheQueryTest, RepeatedQueryHitsAndPlansAreIdentical) {
  LruPlanCache cache(8);
  const std::string query =
      "Select All From EMPLOYEE*ChildName, DEPARTMENT "
      "Where EMPLOYEE.D# = DEPARTMENT.D#";

  Result<QueryRunResult> cold = Run(query, &cache);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->optimize.cache_hit);

  Result<QueryRunResult> warm = Run(query, &cache);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->optimize.cache_hit);

  // Same structural hash => the very same interned plan tree.
  EXPECT_EQ(cold->optimize.plan->hash(), warm->optimize.plan->hash());
  EXPECT_TRUE(ExprEquals(cold->optimize.plan, warm->optimize.plan));

  // And the same result, byte for byte.
  const Catalog& catalog = warm->translation.db->catalog();
  EXPECT_EQ(CanonicalString(cold->relation, &catalog),
            CanonicalString(warm->relation, &catalog));

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(PlanCacheQueryTest, AliasRenamedStructurallyIdenticalQueryHits) {
  LruPlanCache cache(8);
  // Same shape, different tuple-variable names: the flattened relations
  // and attributes get identical ids in identical order, so the
  // translated queries share one structural hash.
  const std::string original =
      "Select All From EMPLOYEE X, DEPARTMENT Y "
      "Where X.D# = Y.D# and Y.Location = 'Zurich'";
  const std::string renamed =
      "Select All From EMPLOYEE Emp, DEPARTMENT Dept "
      "Where Emp.D# = Dept.D# and Dept.Location = 'Zurich'";

  Result<QueryRunResult> first = Run(original, &cache);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->optimize.cache_hit);

  Result<QueryRunResult> second = Run(renamed, &cache);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->optimize.cache_hit)
      << "alias renaming changed the structural hash";

  EXPECT_EQ(first->translation.query->hash(),
            second->translation.query->hash());
  // The cached plan still evaluates correctly under the renamed catalog.
  // Compare without catalogs: the display names differ by alias ("X.D#"
  // vs "Emp.D#") but the attribute ids and tuples must be identical.
  EXPECT_EQ(CanonicalString(first->relation),
            CanonicalString(second->relation));
}

TEST_F(PlanCacheQueryTest, DifferentQueriesDoNotCollide) {
  LruPlanCache cache(8);
  Result<QueryRunResult> a =
      Run("Select All From EMPLOYEE Where EMPLOYEE.Rank = 7", &cache);
  Result<QueryRunResult> b =
      Run("Select All From EMPLOYEE Where EMPLOYEE.Rank = 11", &cache);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->optimize.cache_hit);
  EXPECT_NE(a->translation.query->hash(), b->translation.query->hash());
  EXPECT_EQ(a->relation.NumRows(), 1u);
  EXPECT_EQ(b->relation.NumRows(), 1u);
}

TEST_F(PlanCacheQueryTest, EvictionUnderCapacityOne) {
  LruPlanCache cache(1);
  const std::string q1 = "Select All From EMPLOYEE*ChildName";
  const std::string q2 = "Select All From DEPARTMENT-->Manager";

  ASSERT_TRUE(Run(q1, &cache).ok());
  Result<QueryRunResult> hit = Run(q1, &cache);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->optimize.cache_hit);

  ASSERT_TRUE(Run(q2, &cache).ok());  // evicts q1
  Result<QueryRunResult> evicted = Run(q1, &cache);
  ASSERT_TRUE(evicted.ok());
  EXPECT_FALSE(evicted->optimize.cache_hit);

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.capacity, 1u);
  EXPECT_GE(stats.evictions, 2u);
}

}  // namespace
}  // namespace fro
