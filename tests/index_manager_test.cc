// Persistent index tests: manager bookkeeping and evaluator integration
// (results identical with and without indexes; probes hit the prebuilt
// structure).

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "relational/index_manager.h"
#include "testing/datagen.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

TEST(IndexManagerTest, CreateFindReplace) {
  auto db = MakeExample1Database(10);
  AttrId r3k = db->Attr("R3", "k");
  IndexManager manager;
  EXPECT_EQ(manager.Find(*db, db->Rel("R3"), {r3k}), nullptr);
  manager.CreateIndex(*db, db->Rel("R3"), {r3k});
  const HashIndex* index = manager.Find(*db, db->Rel("R3"), {r3k});
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->num_keys(), 10u);
  // Rebuilding replaces rather than duplicates.
  manager.CreateIndex(*db, db->Rel("R3"), {r3k});
  EXPECT_EQ(manager.num_indexes(), 1u);
  // Different key set: distinct entry.
  manager.CreateIndex(*db, db->Rel("R2"), {db->Attr("R2", "fk")});
  EXPECT_EQ(manager.num_indexes(), 2u);
  // Wrong relation or keys: not found.
  EXPECT_EQ(manager.Find(*db, db->Rel("R1"), {r3k}), nullptr);
}

TEST(IndexManagerTest, EvaluatorUsesIndexAndAgrees) {
  auto db = MakeExample1Database(200);
  IndexManager manager;
  manager.CreateIndex(*db, db->Rel("R2"), {db->Attr("R2", "k")});
  manager.CreateIndex(*db, db->Rel("R3"), {db->Attr("R3", "k")});

  ExprPtr plan = Expr::OuterJoin(
      Expr::Join(Expr::Leaf(db->Rel("R1"), *db),
                 Expr::Leaf(db->Rel("R2"), *db),
                 EqCols(db->Attr("R1", "k"), db->Attr("R2", "k"))),
      Expr::Leaf(db->Rel("R3"), *db),
      EqCols(db->Attr("R2", "fk"), db->Attr("R3", "k")));

  EvalOptions with_indexes;
  with_indexes.indexes = &manager;
  EvalStats indexed_stats, plain_stats;
  Relation indexed = Eval(plan, *db, with_indexes, &indexed_stats);
  Relation plain = Eval(plan, *db, EvalOptions(), &plain_stats);
  EXPECT_TRUE(BagEquals(indexed, plain));
  // Example 1's counters are unchanged by index reuse.
  EXPECT_EQ(indexed_stats.base_tuples_read, 3u);
  EXPECT_EQ(plain_stats.base_tuples_read, 3u);
}

TEST(IndexManagerTest, IndexOnlyUsedWhenKeysMatch) {
  auto db = MakeExample1Database(10);
  IndexManager manager;
  // Index on R2.fk, but the join keys on R2.k: the manager must not
  // serve it, and the evaluation still agrees.
  manager.CreateIndex(*db, db->Rel("R2"), {db->Attr("R2", "fk")});
  ExprPtr join = Expr::Join(
      Expr::Leaf(db->Rel("R1"), *db), Expr::Leaf(db->Rel("R2"), *db),
      EqCols(db->Attr("R1", "k"), db->Attr("R2", "k")));
  EvalOptions with_indexes;
  with_indexes.indexes = &manager;
  EXPECT_TRUE(BagEquals(Eval(join, *db, with_indexes), Eval(join, *db)));
}

TEST(IndexManagerTest, RandomQueriesAgreeUnderIndexes) {
  Rng rng(2901);
  for (int trial = 0; trial < 25; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(3));
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    // Index every edge's endpoint columns.
    IndexManager manager;
    for (const GraphEdge& e : q.graph.edges()) {
      for (int node : {e.u, e.v}) {
        RelId rel = q.graph.node_rel(node);
        AttrSet cols =
            e.pred->References().Intersect(q.graph.node_attrs(node));
        if (cols.size() == 1) {
          manager.CreateIndex(*q.db, rel, {cols.ids()[0]});
        }
      }
    }
    ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
    EvalOptions with_indexes;
    with_indexes.indexes = &manager;
    EXPECT_TRUE(
        BagEquals(Eval(tree, *q.db, with_indexes), Eval(tree, *q.db)))
        << tree->ToString();
  }
}

TEST(IndexManagerTest, KernelLevelPrebuiltIndex) {
  Database db;
  RelId l = *db.AddRelation("L", {"x"});
  RelId r = *db.AddRelation("R", {"y"});
  db.AddRow(l, {Value::Int(1)});
  db.AddRow(l, {Value::Int(2)});
  db.AddRow(r, {Value::Int(1)});
  IndexManager manager;
  manager.CreateIndex(db, r, {db.Attr("R", "y")});
  const HashIndex* index = manager.Find(db, r, {db.Attr("R", "y")});
  ASSERT_NE(index, nullptr);
  PredicatePtr pred = EqCols(db.Attr("L", "x"), db.Attr("R", "y"));
  KernelStats stats;
  Relation out = Join(db.relation(l), db.relation(r), pred,
                      JoinAlgo::kAuto, &stats, index);
  EXPECT_EQ(out.NumRows(), 1u);
  EXPECT_EQ(stats.probes, 2u);  // one probe per left row
  // A nested-loop request ignores the index.
  Relation nl = Join(db.relation(l), db.relation(r), pred,
                     JoinAlgo::kNestedLoop, nullptr, index);
  EXPECT_TRUE(BagEquals(out, nl));
}

// Regression: an index built before a mutation used to keep serving the
// pre-mutation rows. Snapshots now carry the relation's generation and a
// stale entry is refused, so evaluation falls back to an ad-hoc join and
// stays correct; Refresh() rebuilds against the current contents.
TEST(IndexManagerTest, StaleSnapshotsAreRefused) {
  Database db;
  RelId l = *db.AddRelation("L", {"x"});
  RelId r = *db.AddRelation("R", {"y"});
  db.AddRow(l, {Value::Int(1)});
  db.AddRow(l, {Value::Int(2)});
  db.AddRow(r, {Value::Int(1)});
  AttrId ry = db.Attr("R", "y");

  IndexManager manager;
  manager.CreateIndex(db, r, {ry});
  ASSERT_NE(manager.Find(db, r, {ry}), nullptr);

  // Any mutation bumps the relation's generation: the snapshot is stale
  // and must not be served.
  db.AddRow(r, {Value::Int(2)});
  EXPECT_EQ(manager.Find(db, r, {ry}), nullptr);
  ASSERT_EQ(manager.ListIndexes(db).size(), 1u);
  EXPECT_TRUE(manager.ListIndexes(db)[0].stale);

  // The evaluator consults the manager but silently falls back, so the
  // post-mutation row participates in the join.
  ExprPtr join = Expr::Join(Expr::Leaf(l, db), Expr::Leaf(r, db),
                            EqCols(db.Attr("L", "x"), ry));
  EvalOptions with_indexes;
  with_indexes.indexes = &manager;
  Relation out = Eval(join, db, with_indexes);
  EXPECT_EQ(out.NumRows(), 2u);
  EXPECT_TRUE(BagEquals(out, Eval(join, db)));

  // Refresh rebuilds the stale entry against the current contents.
  EXPECT_EQ(manager.Refresh(db), 1u);
  const HashIndex* fresh = manager.Find(db, r, {ry});
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->num_keys(), 2u);
  EXPECT_FALSE(manager.ListIndexes(db)[0].stale);

  // mutable_relation hands out write access, so it too invalidates.
  db.mutable_relation(r);
  EXPECT_EQ(manager.Find(db, r, {ry}), nullptr);
}

}  // namespace
}  // namespace fro
