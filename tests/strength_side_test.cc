// Which side's strength does Theorem 1 need?
//
// The paper's theorem statement (Section 1.3) says outerjoin predicates
// must "return False when all attributes of the PRESERVED relation are
// null", while Lemma 2's sketch mentions the null-supplied relation. The
// two sides are distinguishable with asymmetric predicates, and this test
// settles the question empirically (the library implements the
// preserved-side reading):
//
//  * strong w.r.t. preserved, weak w.r.t. null-supplied  => all
//    implementing trees agree (free reorderability holds);
//  * weak w.r.t. preserved, strong w.r.t. null-supplied  => implementing
//    trees can disagree.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "graph/nice.h"
#include "testing/datagen.h"

namespace fro {
namespace {

struct Chain {
  std::unique_ptr<Database> db;
  QueryGraph graph;
  AttrId attr[3][2];  // [relation][column]
};

// X -> Y -> Z with predicate factory f(preserved_attr, null_side_attr).
template <typename PredFactory>
Chain MakeChain(Rng* rng, PredFactory&& factory) {
  Chain c;
  RandomRowsOptions rows;
  rows.rows_min = 1;
  rows.rows_max = 5;
  rows.domain = 3;
  rows.null_prob = 0.3;  // plenty of nulls: the asymmetry needs them
  c.db = MakeRandomDatabase(3, 2, rows, rng);
  for (int r = 0; r < 3; ++r) {
    for (int a = 0; a < 2; ++a) {
      c.attr[r][a] =
          c.db->Attr("R" + std::to_string(r), "a" + std::to_string(a));
    }
    c.graph.AddNode(static_cast<RelId>(r),
                    c.db->scheme(static_cast<RelId>(r)).ToAttrSet());
  }
  // Edge X -> Y (Y null-supplied) and Y -> Z (Z null-supplied).
  FRO_CHECK(c.graph
                .AddOuterJoinEdge(0, 1, factory(c.attr[0][0], c.attr[1][0]))
                .ok());
  FRO_CHECK(c.graph
                .AddOuterJoinEdge(1, 2, factory(c.attr[1][1], c.attr[2][0]))
                .ok());
  return c;
}

// Strong w.r.t. `preserved`, weak w.r.t. `null_side`:
// p OR (null_side IS NULL AND preserved IS NOT NULL).
PredicatePtr WeakOnNullSide(AttrId preserved, AttrId null_side) {
  return Predicate::Or(
      {EqCols(preserved, null_side),
       Predicate::And(
           {Predicate::IsNull(Operand::Column(null_side)),
            Predicate::Not(
                Predicate::IsNull(Operand::Column(preserved)))})});
}

// Weak w.r.t. `preserved`, strong w.r.t. `null_side`.
PredicatePtr WeakOnPreserved(AttrId preserved, AttrId null_side) {
  return Predicate::Or(
      {EqCols(preserved, null_side),
       Predicate::And(
           {Predicate::IsNull(Operand::Column(preserved)),
            Predicate::Not(
                Predicate::IsNull(Operand::Column(null_side)))})});
}

TEST(StrengthSideTest, PredicateShapesHaveTheClaimedStrength) {
  Database db;
  RelId r = *db.AddRelation("T", {"p", "n"});
  (void)r;
  AttrId p = db.Attr("T", "p");
  AttrId n = db.Attr("T", "n");
  PredicatePtr weak_null = WeakOnNullSide(p, n);
  EXPECT_TRUE(weak_null->IsStrongWrt(AttrSet::Of({p})));
  EXPECT_FALSE(weak_null->IsStrongWrt(AttrSet::Of({n})));
  PredicatePtr weak_pres = WeakOnPreserved(p, n);
  EXPECT_FALSE(weak_pres->IsStrongWrt(AttrSet::Of({p})));
  EXPECT_TRUE(weak_pres->IsStrongWrt(AttrSet::Of({n})));
}

TEST(StrengthSideTest, PreservedSideStrengthSuffices) {
  // Nice chain, predicates weak w.r.t. the null-supplied side only: the
  // classifier accepts it and — the real content — ALL implementing
  // trees agree on every random database.
  Rng rng(3201);
  for (int trial = 0; trial < 120; ++trial) {
    Chain c = MakeChain(&rng, WeakOnNullSide);
    ReorderabilityCheck check = CheckFreelyReorderable(c.graph);
    ASSERT_TRUE(check.freely_reorderable());
    ASSERT_FALSE(check.all_strong_wrt_null_supplied);  // truly asymmetric
    std::vector<ExprPtr> trees = EnumerateIts(c.graph, *c.db);
    ASSERT_EQ(trees.size(), 2u);
    EXPECT_TRUE(BagEquals(Eval(trees[0], *c.db), Eval(trees[1], *c.db)))
        << "preserved-side strength did NOT suffice on trial " << trial
        << "\n " << trees[0]->ToString() << "\n " << trees[1]->ToString();
  }
}

TEST(StrengthSideTest, NullSuppliedSideStrengthDoesNotSuffice) {
  // Same chain with the asymmetry flipped: strong w.r.t. null-supplied,
  // weak w.r.t. preserved. The classifier rejects it, and implementing
  // trees really do disagree on some databases.
  Rng rng(3202);
  int disagreements = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Chain c = MakeChain(&rng, WeakOnPreserved);
    ReorderabilityCheck check = CheckFreelyReorderable(c.graph);
    ASSERT_TRUE(check.nice.nice);
    ASSERT_FALSE(check.freely_reorderable());
    std::vector<ExprPtr> trees = EnumerateIts(c.graph, *c.db);
    ASSERT_EQ(trees.size(), 2u);
    if (!BagEquals(Eval(trees[0], *c.db), Eval(trees[1], *c.db))) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0)
      << "expected null-side-only strength to break reorderability";
}

}  // namespace
}  // namespace fro
