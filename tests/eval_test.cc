#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "testing/datagen.h"

namespace fro {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = *db_.AddRelation("X", {"a"});
    y_ = *db_.AddRelation("Y", {"b"});
    a_ = db_.Attr("X", "a");
    b_ = db_.Attr("Y", "b");
    db_.AddRow(x_, {Value::Int(1)});
    db_.AddRow(x_, {Value::Int(2)});
    db_.AddRow(y_, {Value::Int(1)});
    db_.AddRow(y_, {Value::Int(3)});
  }

  Database db_;
  RelId x_, y_;
  AttrId a_, b_;
};

TEST_F(EvalTest, LeafReturnsRelation) {
  Relation out = Eval(Expr::Leaf(x_, db_), db_);
  EXPECT_TRUE(BagEquals(out, db_.relation(x_)));
}

TEST_F(EvalTest, JoinAndOuterJoin) {
  ExprPtr x = Expr::Leaf(x_, db_);
  ExprPtr y = Expr::Leaf(y_, db_);
  EXPECT_EQ(Eval(Expr::Join(x, y, EqCols(a_, b_)), db_).NumRows(), 1u);
  EXPECT_EQ(Eval(Expr::OuterJoin(x, y, EqCols(a_, b_)), db_).NumRows(), 2u);
}

TEST_F(EvalTest, SymmetricFormEvaluatesIdentically) {
  // X -> Y equals Y <- X (the paper's symmetric form).
  ExprPtr forward = Expr::OuterJoin(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                                    EqCols(a_, b_), /*preserves_left=*/true);
  ExprPtr backward = Expr::OuterJoin(Expr::Leaf(y_, db_), Expr::Leaf(x_, db_),
                                     EqCols(a_, b_),
                                     /*preserves_left=*/false);
  EXPECT_TRUE(BagEquals(Eval(forward, db_), Eval(backward, db_)));
}

TEST_F(EvalTest, SymmetricAntijoinAndSemijoin) {
  ExprPtr aj_fwd = Expr::Antijoin(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                                  EqCols(a_, b_), true);
  ExprPtr aj_bwd = Expr::Antijoin(Expr::Leaf(y_, db_), Expr::Leaf(x_, db_),
                                  EqCols(a_, b_), false);
  EXPECT_TRUE(BagEquals(Eval(aj_fwd, db_), Eval(aj_bwd, db_)));
  ExprPtr sj_fwd = Expr::Semijoin(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                                  EqCols(a_, b_), true);
  ExprPtr sj_bwd = Expr::Semijoin(Expr::Leaf(y_, db_), Expr::Leaf(x_, db_),
                                  EqCols(a_, b_), false);
  EXPECT_TRUE(BagEquals(Eval(sj_fwd, db_), Eval(sj_bwd, db_)));
}

TEST_F(EvalTest, RestrictProjectUnion) {
  ExprPtr x = Expr::Leaf(x_, db_);
  Relation restricted =
      Eval(Expr::Restrict(x, CmpLit(CmpOp::kGt, a_, Value::Int(1))), db_);
  EXPECT_EQ(restricted.NumRows(), 1u);
  Relation unioned =
      Eval(Expr::Union(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_)), db_);
  EXPECT_EQ(unioned.NumRows(), 4u);
  EXPECT_EQ(unioned.scheme().size(), 2u);  // padded to X u Y
  Relation projected = Eval(Expr::Project(x, {a_}, false), db_);
  EXPECT_EQ(projected.NumRows(), 2u);
}

TEST_F(EvalTest, KernelChoiceDoesNotChangeResults) {
  ExprPtr q = Expr::OuterJoin(Expr::Leaf(x_, db_), Expr::Leaf(y_, db_),
                              EqCols(a_, b_));
  EvalOptions nl;
  nl.algo = JoinAlgo::kNestedLoop;
  EvalOptions hash;
  hash.algo = JoinAlgo::kHash;
  EXPECT_TRUE(BagEquals(Eval(q, db_, nl), Eval(q, db_, hash)));
}

// Example 1 of the paper, instrumented: the naive order retrieves 2N+1
// base tuples, the reordered plan retrieves 3, independent of N.
TEST(Example1Test, BaseRetrievalAccounting) {
  for (int n : {10, 50, 200}) {
    auto db = MakeExample1Database(n);
    AttrId r1k = db->Attr("R1", "k");
    AttrId r2k = db->Attr("R2", "k");
    AttrId r2fk = db->Attr("R2", "fk");
    AttrId r3k = db->Attr("R3", "k");
    ExprPtr r1 = Expr::Leaf(db->Rel("R1"), *db);
    ExprPtr r2 = Expr::Leaf(db->Rel("R2"), *db);
    ExprPtr r3 = Expr::Leaf(db->Rel("R3"), *db);

    // Naive: R1 - (R2 -> R3).
    ExprPtr naive = Expr::Join(
        r1, Expr::OuterJoin(r2, r3, EqCols(r2fk, r3k)), EqCols(r1k, r2k));
    // Reordered: (R1 - R2) -> R3.
    ExprPtr reordered = Expr::OuterJoin(
        Expr::Join(r1, r2, EqCols(r1k, r2k)), r3, EqCols(r2fk, r3k));

    EvalStats naive_stats, reordered_stats;
    Relation naive_out = Eval(naive, *db, EvalOptions(), &naive_stats);
    Relation reordered_out =
        Eval(reordered, *db, EvalOptions(), &reordered_stats);

    // Same result (Example 1's equivalence, proved by identity 11).
    EXPECT_TRUE(BagEquals(naive_out, reordered_out));
    EXPECT_EQ(naive_out.NumRows(), 1u);

    // The paper's arithmetic: 2N+1 vs 3.
    EXPECT_EQ(naive_stats.base_tuples_read,
              static_cast<uint64_t>(2 * n + 1));
    EXPECT_EQ(reordered_stats.base_tuples_read, 3u);
  }
}

TEST(EvalStatsTest, IntermediateTuplesCounted) {
  auto db = MakeExample1Database(10);
  AttrId r2fk = db->Attr("R2", "fk");
  AttrId r3k = db->Attr("R3", "k");
  ExprPtr q = Expr::OuterJoin(Expr::Leaf(db->Rel("R2"), *db),
                              Expr::Leaf(db->Rel("R3"), *db),
                              EqCols(r2fk, r3k));
  // Root results are not "intermediate".
  EvalStats stats;
  Eval(q, *db, EvalOptions(), &stats);
  EXPECT_EQ(stats.intermediate_tuples, 0u);
  // Wrap in a restrict: now the outerjoin result is intermediate.
  EvalStats stats2;
  Eval(Expr::Restrict(q, CmpLit(CmpOp::kGe, r2fk, Value::Int(0))), *db,
       EvalOptions(), &stats2);
  EXPECT_EQ(stats2.intermediate_tuples, 10u);
}

}  // namespace
}  // namespace fro
