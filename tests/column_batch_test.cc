// Columnar storage and batch tests: ColumnVector tagging/demotion,
// ColumnBatch's three content modes and selection-vector edge cases
// (empty selection, full-capacity batch, all-null columns, single-row
// selection), VectorPredicate kernel equivalence with the row-at-a-time
// BoundPredicate (including NaN and mixed-kind quirks of CompareSql),
// and HashColumns agreement with the scalar key normalization + hash.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "exec/batch.h"
#include "relational/column.h"
#include "relational/ops.h"
#include "relational/predicate.h"
#include "relational/relation.h"

namespace fro {
namespace {

// --- ColumnVector ----------------------------------------------------------

TEST(ColumnVectorTest, IntColumnStaysDense) {
  ColumnVector col;
  col.Append(Value::Int(1));
  col.AppendNull();
  col.Append(Value::Int(-7));
  EXPECT_EQ(col.tag(), ColumnVector::Tag::kInt);
  EXPECT_EQ(col.size(), 3u);
  EXPECT_FALSE(col.is_null(0));
  EXPECT_TRUE(col.is_null(1));
  EXPECT_EQ(col.ints()[0], 1);
  EXPECT_EQ(col.ints()[2], -7);
  EXPECT_EQ(col.ValueAt(1), Value::Null());
  EXPECT_EQ(col.ValueAt(2), Value::Int(-7));
}

TEST(ColumnVectorTest, AllNullColumnStaysEmptyTagged) {
  ColumnVector col;
  for (int i = 0; i < 5; ++i) col.AppendNull();
  EXPECT_EQ(col.tag(), ColumnVector::Tag::kEmpty);
  EXPECT_EQ(col.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(col.is_null(i));
    EXPECT_EQ(col.ValueAt(i), Value::Null());
  }
}

// Mixing numeric kinds (or adding a string) demotes to generic storage,
// but ValueAt must reproduce the appended values exactly — structural
// kind included, because bag semantics distinguish Int(1) from
// Double(1.0).
TEST(ColumnVectorTest, DemotionPreservesExactValues) {
  ColumnVector col;
  col.Append(Value::Int(2));
  col.AppendNull();
  col.Append(Value::Double(2.5));  // demotes kInt -> kGeneric
  col.Append(Value::String("x"));
  EXPECT_EQ(col.tag(), ColumnVector::Tag::kGeneric);
  EXPECT_EQ(col.ValueAt(0), Value::Int(2));
  EXPECT_EQ(col.ValueAt(1), Value::Null());
  EXPECT_EQ(col.ValueAt(2), Value::Double(2.5));
  EXPECT_EQ(col.ValueAt(3), Value::String("x"));
}

TEST(ColumnVectorTest, AppendFromCopiesAcrossTags) {
  ColumnVector src;
  src.Append(Value::Int(4));
  src.Append(Value::Double(4.5));  // generic source
  src.AppendNull();

  ColumnVector dst;
  for (size_t i = 0; i < src.size(); ++i) dst.AppendFrom(src, i);
  ASSERT_EQ(dst.size(), src.size());
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(dst.ValueAt(i), src.ValueAt(i)) << i;
  }
}

TEST(ColumnVectorTest, ClearRetagsForReuse) {
  ColumnVector col;
  col.Append(Value::String("s"));
  EXPECT_EQ(col.tag(), ColumnVector::Tag::kGeneric);
  col.Clear();
  EXPECT_EQ(col.size(), 0u);
  col.Append(Value::Int(9));
  EXPECT_EQ(col.tag(), ColumnVector::Tag::kInt);
  EXPECT_EQ(col.ValueAt(0), Value::Int(9));
}

// --- ColumnBatch selection-vector edge cases -------------------------------

Tuple Row2(Value a, Value b) {
  return Tuple({std::move(a), std::move(b)});
}

TEST(ColumnBatchTest, EmptySelectionIsEmptyButKeepsRawRows) {
  ColumnBatch batch(8);
  batch.Append(Row2(Value::Int(1), Value::Int(2)));
  batch.Append(Row2(Value::Int(3), Value::Int(4)));

  std::vector<uint8_t> keep(batch.NumRows(), 0);
  batch.NarrowToMask(keep.data());
  EXPECT_TRUE(batch.sel_active());
  EXPECT_EQ(batch.size(), 0u);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.NumRows(), 2u);  // raw content survives

  // Narrowing an already-empty selection stays empty.
  batch.NarrowSelection([](const Tuple&, size_t) { return true; });
  EXPECT_EQ(batch.size(), 0u);
}

TEST(ColumnBatchTest, FullCapacityBatchRoundTrips) {
  const size_t cap = 16;
  ColumnBatch batch(cap);
  for (size_t i = 0; i < cap; ++i) {
    EXPECT_FALSE(batch.full());
    batch.Append(Row2(Value::Int(static_cast<int64_t>(i)), Value::Null()));
  }
  EXPECT_TRUE(batch.full());
  EXPECT_EQ(batch.size(), cap);

  // Columnar read of a full row-mode batch: one transpose, dense ints.
  size_t offset = 77;
  const ColumnVector* c0 = batch.Column(0, &offset);
  ASSERT_NE(c0, nullptr);
  EXPECT_EQ(offset, 0u);
  ASSERT_EQ(c0->size(), cap);
  EXPECT_EQ(c0->tag(), ColumnVector::Tag::kInt);
  for (size_t i = 0; i < cap; ++i) {
    EXPECT_EQ(c0->ints()[i], static_cast<int64_t>(i));
  }
  const ColumnVector* c1 = batch.Column(1, &offset);
  EXPECT_EQ(c1->tag(), ColumnVector::Tag::kEmpty);
  EXPECT_TRUE(c1->is_null(cap - 1));
}

TEST(ColumnBatchTest, SingleRowSelection) {
  ColumnBatch batch(8);
  for (int i = 0; i < 5; ++i) {
    batch.Append(Row2(Value::Int(i), Value::Int(10 * i)));
  }
  batch.NarrowSelection([](const Tuple& row, size_t) {
    return row.value(0) == Value::Int(3);
  });
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.sel_index(0), 3u);
  EXPECT_EQ(batch.selected(0).value(1), Value::Int(30));

  // A raw-indexed mask applies on top of the active selection.
  std::vector<uint8_t> keep(batch.NumRows(), 1);
  keep[3] = 0;
  batch.NarrowToMask(keep.data());
  EXPECT_EQ(batch.size(), 0u);
}

TEST(ColumnBatchTest, ViewWithRelationColumnsIsOffsetRead) {
  Relation rel(Scheme({100, 101}));
  for (int i = 0; i < 10; ++i) {
    rel.AddRow({Value::Int(i), i % 3 == 0 ? Value::Null() : Value::Int(-i)});
  }
  RelationColumns cols(&rel);

  ColumnBatch batch(4);
  batch.SetView(&rel.rows()[6], 3, &cols, 6);
  EXPECT_TRUE(batch.is_view());
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.row(0).value(0), Value::Int(6));

  size_t offset = 0;
  const ColumnVector* c1 = batch.Column(1, &offset);
  EXPECT_EQ(offset, 6u);  // relation-backed: no per-batch transpose
  EXPECT_EQ(c1, &cols.Column(1));
  EXPECT_FALSE(c1->is_null(offset + 1));   // row 7
  EXPECT_TRUE(c1->is_null(offset + 3 - 0));  // raw row 9 is null (9 % 3 == 0)
  EXPECT_EQ(c1->ValueAt(offset + 1), Value::Int(-7));
}

TEST(ColumnBatchTest, ColumnarEmissionMaterializesRows) {
  ColumnBatch batch(8);
  batch.Clear();
  batch.BeginColumns(2);
  ASSERT_TRUE(batch.columnar());
  batch.mutable_column(0)->Append(Value::Int(1));
  batch.mutable_column(1)->AppendNull();
  batch.CommitColumnRow();
  batch.mutable_column(0)->Append(Value::Double(2.5));
  batch.mutable_column(1)->Append(Value::String("y"));
  batch.CommitColumnRow();

  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.row(0).value(0), Value::Int(1));
  EXPECT_EQ(batch.row(0).value(1), Value::Null());
  EXPECT_EQ(batch.row(1).value(0), Value::Double(2.5));
  EXPECT_EQ(batch.row(1).value(1), Value::String("y"));

  // Selection machinery works identically over columnar content.
  std::vector<uint8_t> keep = {0, 1};
  batch.NarrowToMask(keep.data());
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.selected(0).value(1), Value::String("y"));
}

// --- VectorPredicate equivalence -------------------------------------------

// A value pool spanning every CompareSql regime: typed ints/doubles,
// NaN (which CompareSql treats as equal to every numeric), +-0.0,
// strings, and nulls.
std::vector<Value> ValuePool() {
  return {
      Value::Null(),
      Value::Int(0),
      Value::Int(1),
      Value::Int(-2),
      Value::Double(0.0),
      Value::Double(-0.0),
      Value::Double(1.0),
      Value::Double(2.5),
      Value::Double(std::numeric_limits<double>::quiet_NaN()),
      Value::Double(std::numeric_limits<double>::infinity()),
      Value::String(""),
      Value::String("a"),
      Value::String("b"),
  };
}

// Columnizes `rows` and checks VectorPredicate mask-for-row agreement
// with BoundPredicate under every narrowing-relevant reading.
void ExpectKernelAgreesWithRowEval(const PredicatePtr& pred,
                                   const Scheme& scheme,
                                   const std::vector<Tuple>& rows) {
  BoundPredicate row_eval(pred, scheme);
  VectorPredicate kernel(pred, scheme);

  std::vector<ColumnVector> cols(scheme.size());
  for (const Tuple& row : rows) {
    for (size_t c = 0; c < scheme.size(); ++c) cols[c].Append(row.value(c));
  }
  std::vector<const ColumnVector*> ptrs(scheme.size());
  for (size_t c = 0; c < scheme.size(); ++c) ptrs[c] = &cols[c];

  std::vector<uint8_t> is_true(rows.size()), is_false(rows.size());
  kernel.Eval(ptrs.data(), 0, rows.size(), is_true.data(), is_false.data());

  for (size_t i = 0; i < rows.size(); ++i) {
    const TriBool want = row_eval.Eval(rows[i]);
    EXPECT_EQ(is_true[i] != 0, want == TriBool::kTrue)
        << pred->ToString() << " row " << rows[i].ToString();
    EXPECT_EQ(is_false[i] != 0, want == TriBool::kFalse)
        << pred->ToString() << " row " << rows[i].ToString();
  }
}

TEST(VectorPredicateTest, MatchesBoundPredicateOnAllPoolPairs) {
  const Scheme scheme({1, 2});
  const std::vector<Value> pool = ValuePool();
  std::vector<Tuple> rows;
  for (const Value& a : pool) {
    for (const Value& b : pool) rows.push_back(Tuple({a, b}));
  }

  std::vector<PredicatePtr> preds;
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe,
                   CmpOp::kGt, CmpOp::kGe}) {
    preds.push_back(CmpCols(op, 1, 2));
    preds.push_back(CmpLit(op, 1, Value::Int(1)));
    preds.push_back(CmpLit(op, 2, Value::Double(
        std::numeric_limits<double>::quiet_NaN())));
    preds.push_back(CmpLit(op, 1, Value::String("a")));
    preds.push_back(CmpLit(op, 2, Value::Null()));
  }
  preds.push_back(Predicate::IsNull(Operand::Column(1)));
  preds.push_back(Predicate::Not(Predicate::IsNull(Operand::Column(2))));
  preds.push_back(Predicate::Const(true));
  preds.push_back(Predicate::Const(false));
  preds.push_back(AndOf(CmpCols(CmpOp::kLe, 1, 2),
                        Predicate::Not(CmpLit(CmpOp::kEq, 2, Value::Int(0)))));
  preds.push_back(Predicate::Or(
      {CmpLit(CmpOp::kGt, 1, Value::Int(0)),
       Predicate::IsNull(Operand::Column(2))}));

  for (const PredicatePtr& pred : preds) {
    ExpectKernelAgreesWithRowEval(pred, scheme, rows);
  }
}

TEST(VectorPredicateTest, MatchesBoundPredicateOnRandomWideRows) {
  // Random wide rows over a mixed pool: whole columns can come out
  // dense-int, dense-double, all-null, or generic, exercising every
  // kernel dispatch arm against the row evaluator.
  const size_t kArity = 12;
  std::vector<AttrId> attrs;
  for (size_t c = 0; c < kArity; ++c) attrs.push_back(static_cast<AttrId>(c + 1));
  const Scheme scheme(attrs);
  const std::vector<Value> pool = ValuePool();

  Rng rng(0xC01);
  std::vector<Tuple> rows;
  for (int i = 0; i < 200; ++i) {
    std::vector<Value> vals;
    for (size_t c = 0; c < kArity; ++c) {
      // Bias a few columns towards one kind so dense paths actually hit.
      if (c % 4 == 0) {
        vals.push_back(rng.Bernoulli(0.2) ? Value::Null()
                                          : Value::Int(rng.UniformInt(-3, 3)));
      } else if (c % 4 == 1) {
        vals.push_back(rng.Bernoulli(0.2)
                           ? Value::Null()
                           : Value::Double(0.5 * rng.UniformInt(-4, 4)));
      } else {
        vals.push_back(pool[rng.Uniform(pool.size())]);
      }
    }
    rows.push_back(Tuple(std::move(vals)));
  }

  for (uint64_t s = 0; s < 20; ++s) {
    Rng prng(DeriveSeed(0xBEEF, s));
    AttrId a = attrs[prng.Uniform(attrs.size())];
    AttrId b = attrs[prng.Uniform(attrs.size())];
    CmpOp op = static_cast<CmpOp>(prng.Uniform(6));
    PredicatePtr pred = AndOf(
        CmpCols(op, a, b),
        Predicate::Or({CmpLit(static_cast<CmpOp>(prng.Uniform(6)), a,
                              Value::Int(prng.UniformInt(-2, 2))),
                       Predicate::IsNull(Operand::Column(b))}));
    if (prng.Bernoulli(0.3)) pred = Predicate::Not(pred);
    ExpectKernelAgreesWithRowEval(pred, scheme, rows);
  }
}

TEST(VectorPredicateTest, AllNullColumnYieldsAllUnknown) {
  const Scheme scheme({1, 2});
  std::vector<Tuple> rows;
  for (int i = 0; i < 7; ++i) {
    rows.push_back(Tuple({Value::Null(), Value::Int(i)}));
  }
  // Comparisons against the all-null column are Unknown everywhere;
  // IS NULL on it is True everywhere.
  ExpectKernelAgreesWithRowEval(CmpCols(CmpOp::kEq, 1, 2), scheme, rows);
  ExpectKernelAgreesWithRowEval(CmpLit(CmpOp::kLt, 1, Value::Int(0)), scheme,
                                rows);
  ExpectKernelAgreesWithRowEval(Predicate::IsNull(Operand::Column(1)), scheme,
                                rows);
}

// --- HashColumns -----------------------------------------------------------

TEST(HashColumnsTest, AgreesWithScalarNormalizationAndHash) {
  ColumnVector ints, dbls;
  std::vector<Value> int_vals = {Value::Int(0), Value::Null(), Value::Int(-5),
                                 Value::Int(7)};
  std::vector<Value> dbl_vals = {Value::Double(-0.0), Value::Double(2.5),
                                 Value::Null(), Value::Double(0.0)};
  for (const Value& v : int_vals) ints.Append(v);
  for (const Value& v : dbl_vals) dbls.Append(v);

  for (const ColumnVector* col : {&ints, &dbls}) {
    const size_t n = col->size();
    std::vector<double> keys(n);
    std::vector<uint64_t> hashes(n);
    std::vector<uint8_t> has(n);
    ASSERT_TRUE(HashColumns({col}, 0, n, keys.data(), hashes.data(),
                            has.data()));
    for (size_t i = 0; i < n; ++i) {
      if (col->is_null(i)) {
        EXPECT_EQ(has[i], 0) << i;
        continue;
      }
      ASSERT_EQ(has[i], 1) << i;
      // Same normalization as the row path: ints widen to double,
      // -0.0 collapses to +0.0 (NormalizeHashKeyValue + flat-index rule).
      const Value norm = NormalizeHashKeyValue(col->ValueAt(i));
      double want_key = norm.AsDouble();
      if (want_key == 0.0) want_key = 0.0;  // +0.0 canonical form
      EXPECT_EQ(keys[i], want_key) << i;
      EXPECT_EQ(hashes[i], HashNumericKey(want_key)) << i;
    }
  }
}

TEST(HashColumnsTest, NegativeZeroHashesLikePositiveZero) {
  // Columns stay type-pure (an int mixed into a double column would
  // demote to generic and take the row path); equal keys must hash
  // equally across an int column and a double column, -0.0 included.
  ColumnVector dbls;
  dbls.Append(Value::Double(-0.0));
  dbls.Append(Value::Double(0.0));
  ColumnVector ints;
  ints.Append(Value::Int(0));
  ints.Append(Value::Int(0));

  std::vector<double> dkeys(2), ikeys(2);
  std::vector<uint64_t> dhashes(2), ihashes(2);
  std::vector<uint8_t> has(2);
  ASSERT_TRUE(HashColumns({&dbls}, 0, 2, dkeys.data(), dhashes.data(),
                          has.data()));
  ASSERT_TRUE(HashColumns({&ints}, 0, 2, ikeys.data(), ihashes.data(),
                          has.data()));
  EXPECT_EQ(dhashes[0], dhashes[1]);  // -0.0 vs +0.0
  EXPECT_EQ(dhashes[0], ihashes[0]);  // double 0.0 vs int 0
  EXPECT_FALSE(std::signbit(dkeys[0]));
}

TEST(HashColumnsTest, AllNullAndGenericColumns) {
  ColumnVector all_null;
  for (int i = 0; i < 4; ++i) all_null.AppendNull();
  std::vector<double> keys(4);
  std::vector<uint64_t> hashes(4);
  std::vector<uint8_t> has(4, 0xFF);
  // kEmpty column: every row lacks a key, but the batch path applies.
  ASSERT_TRUE(HashColumns({&all_null}, 0, 4, keys.data(), hashes.data(),
                          has.data()));
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(has[i], 0) << i;

  // A generic (string) column forces the row-at-a-time fallback.
  ColumnVector generic;
  generic.Append(Value::String("k"));
  generic.Append(Value::Int(1));
  EXPECT_FALSE(HashColumns({&generic}, 0, 2, keys.data(), hashes.data(),
                           has.data()));
}

TEST(HashColumnsTest, MultiColumnMixDependsOnAllColumns) {
  ColumnVector a, b;
  a.Append(Value::Int(1));
  a.Append(Value::Int(1));
  b.Append(Value::Int(2));
  b.Append(Value::Int(3));
  std::vector<uint64_t> hashes(2);
  std::vector<uint8_t> has(2);
  ASSERT_TRUE(HashColumns({&a, &b}, 0, 2, /*out_keys=*/nullptr, hashes.data(),
                          has.data()));
  EXPECT_EQ(has[0], 1);
  EXPECT_EQ(has[1], 1);
  EXPECT_NE(hashes[0], hashes[1]);  // differing second column changes the mix

  // Null in any key column kills the row's key.
  ColumnVector c;
  c.Append(Value::Int(9));
  c.AppendNull();
  ASSERT_TRUE(HashColumns({&a, &c}, 0, 2, nullptr, hashes.data(), has.data()));
  EXPECT_EQ(has[0], 1);
  EXPECT_EQ(has[1], 0);
}

}  // namespace
}  // namespace fro
