// DPccp-vs-all-masks equivalence: both DP strategies must pick plans of
// identical cost on every graph (the csg-cmp enumeration is a pure
// search-space reduction), and the parallel closure must visit exactly
// the serial closure's state set.

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "enumerate/closure.h"
#include "enumerate/it_enum.h"
#include "optimizer/dp.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

// Relative cost equality: the two algorithms examine bipartitions in a
// different order, so double accumulation may differ in the last bits.
void ExpectCostsEqual(double a, double b) {
  double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  EXPECT_LE(std::fabs(a - b), 1e-9 * scale);
}

void CheckEquivalence(const GeneratedQuery& q, CostKind kind) {
  CostModel model(*q.db, kind);
  for (bool maximize : {false, true}) {
    DpOptions ccp;
    ccp.algorithm = DpAlgorithm::kDpccp;
    DpOptions oracle;
    oracle.algorithm = DpAlgorithm::kAllMasks;
    Result<PlanResult> fast =
        OptimizeReorderable(q.graph, *q.db, model, maximize, ccp);
    Result<PlanResult> slow =
        OptimizeReorderable(q.graph, *q.db, model, maximize, oracle);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    ExpectCostsEqual(fast->cost, slow->cost);
    // Both materialize a best plan for the same connected subsets.
    EXPECT_EQ(fast->states_visited, slow->states_visited);
    // DPccp must never examine more candidates than the submask scan.
    EXPECT_LE(fast->plans_considered, slow->plans_considered);
  }
}

TEST(DpccpEquivTest, RandomNiceGraphs) {
  Rng rng(7101);
  for (int n = 2; n <= 10; ++n) {
    for (int trial = 0; trial < 6; ++trial) {
      RandomQueryOptions options;
      options.num_relations = n;
      options.oj_fraction = 0.4;
      options.extra_join_edge_prob = 0.0;
      GeneratedQuery q = GenerateRandomQuery(options, &rng);
      CheckEquivalence(q, CostKind::kCout);
    }
  }
}

TEST(DpccpEquivTest, RandomCyclicGraphs) {
  Rng rng(7202);
  for (int n = 3; n <= 10; ++n) {
    for (int trial = 0; trial < 6; ++trial) {
      RandomQueryOptions options;
      options.num_relations = n;
      options.oj_fraction = 0.3;
      options.extra_join_edge_prob = 0.4;  // cycles in the join core
      GeneratedQuery q = GenerateRandomQuery(options, &rng);
      CheckEquivalence(q, CostKind::kCout);
    }
  }
}

// Builds a pure join chain R0 - R1 - ... - R{n-1}.
GeneratedQuery MakeJoinChain(int n) {
  GeneratedQuery q;
  q.db = std::make_unique<Database>();
  for (int i = 0; i < n; ++i) {
    RelId r = *q.db->AddRelation("R" + std::to_string(i), {"a"});
    q.graph.AddNode(r, q.db->scheme(r).ToAttrSet());
    q.db->AddRow(r, {Value::Int(i % 3)});
  }
  for (int i = 0; i + 1 < n; ++i) {
    PredicatePtr pred = EqCols(q.db->Attr("R" + std::to_string(i), "a"),
                               q.db->Attr("R" + std::to_string(i + 1), "a"));
    EXPECT_TRUE(q.graph.AddJoinEdge(i, i + 1, pred).ok());
  }
  return q;
}

// The headline search-space reduction: on a 14-relation chain DPccp
// examines at least 10x fewer candidate bipartitions than the all-masks
// submask scan, while choosing a plan of identical cost.
TEST(DpccpEquivTest, ChainSearchSpaceReduction) {
  GeneratedQuery q = MakeJoinChain(14);
  CostModel model(*q.db, CostKind::kCout);
  DpOptions ccp;
  ccp.algorithm = DpAlgorithm::kDpccp;
  DpOptions oracle;
  oracle.algorithm = DpAlgorithm::kAllMasks;
  Result<PlanResult> fast =
      OptimizeReorderable(q.graph, *q.db, model, /*maximize=*/false, ccp);
  Result<PlanResult> slow =
      OptimizeReorderable(q.graph, *q.db, model, /*maximize=*/false, oracle);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  ExpectCostsEqual(fast->cost, slow->cost);
  // A 14-chain has (14^3 - 14) / 6 = 455 csg-cmp pairs.
  EXPECT_EQ(fast->plans_considered, 455u);
  EXPECT_GE(slow->plans_considered, 10 * fast->plans_considered);
}

// The parallel closure must discover exactly the serial closure's states
// (same canonical trees, order-independent), and both must agree with
// the direct enumeration count.
TEST(DpccpEquivTest, ParallelClosureMatchesSerial) {
  Rng rng(7303);
  for (int n = 4; n <= 6; ++n) {
    RandomQueryOptions options;
    options.num_relations = n;
    options.oj_fraction = 0.4;
    options.extra_join_edge_prob = 0.15;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ExprPtr start = RandomIt(q.graph, *q.db, &rng);
    ASSERT_NE(start, nullptr);

    ClosureOptions serial_opts;
    serial_opts.num_threads = 1;
    ClosureResult serial = BtClosure(start, serial_opts);
    ASSERT_FALSE(serial.truncated);

    ClosureOptions parallel_opts;
    parallel_opts.num_threads = 4;
    ClosureResult parallel = BtClosure(start, parallel_opts);
    ASSERT_FALSE(parallel.truncated);

    std::unordered_set<uint64_t> serial_hashes;
    for (const ExprPtr& tree : serial.trees) {
      serial_hashes.insert(tree->hash());
    }
    std::unordered_set<uint64_t> parallel_hashes;
    for (const ExprPtr& tree : parallel.trees) {
      parallel_hashes.insert(tree->hash());
    }
    EXPECT_EQ(serial_hashes, parallel_hashes);
    EXPECT_EQ(serial.trees.size(), serial_hashes.size());
    EXPECT_EQ(parallel.trees.size(), parallel_hashes.size());
    // Lemma 3: the all-BTs closure covers every implementing tree.
    EXPECT_EQ(serial.trees.size(), CountIts(q.graph));
  }
}

}  // namespace
}  // namespace fro
