// The acyclic subsystem: GYO ear reduction (chains, stars, eq-class
// collapse, cross-join forests, the 64-variable cap), Yannakakis
// semijoin programs held to the binary plan's bag on both engines with
// counter parity, safe-subjoin gating through the estimator, the
// cost-gated ApplyAcyclic rewrite, and the optimizer pipeline end to
// end (Section 4 simplification unlocking the fast path).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "acyclic/gyo.h"
#include "acyclic/yannakakis.h"
#include "algebra/eval.h"
#include "exec/build.h"
#include "optimizer/acyclic_rewrite.h"
#include "optimizer/cost.h"
#include "optimizer/optimizer.h"
#include "optimizer/rewrite_pass.h"
#include "testing/datagen.h"

namespace fro {
namespace {

// Counts kSemijoin nodes in a plan.
int CountSemijoins(const ExprPtr& expr) {
  if (expr == nullptr || expr->kind() == OpKind::kLeaf) return 0;
  int n = expr->kind() == OpKind::kSemijoin ? 1 : 0;
  if (expr->is_multiway()) {
    for (const ExprPtr& child : expr->mj_children()) {
      n += CountSemijoins(child);
    }
    return n;
  }
  return n + CountSemijoins(expr->left()) + CountSemijoins(expr->right());
}

// A database of n relations R0(a,b), R1(a,b), ...; operands are the
// leaves and tests wire conjuncts between named attributes.
class GyoTest : public ::testing::Test {
 protected:
  void Init(int n, int attrs_per_rel = 2) {
    static const char* kNames[] = {"a", "b", "c", "d", "e", "f"};
    for (int i = 0; i < n; ++i) {
      std::vector<std::string> attrs;
      for (int j = 0; j < attrs_per_rel; ++j) attrs.push_back(kNames[j]);
      RelId rel = *db_.AddRelation("R" + std::to_string(i), attrs);
      operands_.push_back(Expr::Leaf(rel, db_));
    }
  }

  AttrId At(int rel, const char* attr) {
    return db_.Attr("R" + std::to_string(rel), attr);
  }

  void Eq(int u, const char* ua, int v, const char* va) {
    conjuncts_.push_back(EqCols(At(u, ua), At(v, va)));
  }

  JoinTree Reduce() {
    return GyoReduce(BuildJoinHypergraph(operands_, conjuncts_));
  }

  // Every non-root operand appears in removal_order before its parent
  // (bottom-up), and parent pointers are acyclic.
  void ExpectBottomUp(const JoinTree& tree) {
    std::vector<bool> removed(tree.parent.size(), false);
    for (int op : tree.removal_order) {
      ASSERT_GE(tree.parent[op], 0);
      EXPECT_FALSE(removed[tree.parent[op]])
          << "operand " << op << " removed after its parent";
      removed[op] = true;
    }
  }

  Database db_;
  std::vector<ExprPtr> operands_;
  std::vector<PredicatePtr> conjuncts_;
};

TEST_F(GyoTest, ChainIsAcyclic) {
  Init(4);
  Eq(0, "b", 1, "a");
  Eq(1, "b", 2, "a");
  Eq(2, "b", 3, "a");
  JoinTree tree = Reduce();
  ASSERT_TRUE(tree.acyclic);
  EXPECT_EQ(tree.roots.size(), 1u);
  EXPECT_EQ(tree.removal_order.size(), 3u);
  ExpectBottomUp(tree);
}

TEST_F(GyoTest, StarIsAcyclic) {
  Init(4);
  Eq(0, "a", 1, "a");
  Eq(0, "b", 2, "a");
  Eq(0, "b", 3, "b");
  JoinTree tree = Reduce();
  ASSERT_TRUE(tree.acyclic);
  // The hub covers every leaf's variables, so the star reduces fully to
  // one tree. Equal-variable-set edges may chain rather than all point
  // at the hub (the tie-break is deterministic but order-dependent), so
  // only the structural invariants are pinned.
  EXPECT_EQ(tree.roots.size(), 1u);
  EXPECT_EQ(tree.removal_order.size(), 3u);
  ExpectBottomUp(tree);
}

TEST_F(GyoTest, TriangleOnDistinctVariablesIsCyclic) {
  Init(3);
  Eq(0, "b", 1, "a");
  Eq(1, "b", 2, "a");
  Eq(2, "b", 0, "a");
  JoinTree tree = Reduce();
  EXPECT_FALSE(tree.acyclic);
  EXPECT_TRUE(tree.removal_order.empty());
}

TEST_F(GyoTest, TriangleCollapsedToOneVariableIsAcyclic) {
  // All three pairwise conjuncts join transitively-equal attributes:
  // the equivalence classes merge into ONE join variable, every edge
  // covers it, and the "triangle" reduces. The eq-class collapse is
  // what distinguishes alpha-acyclicity from graph acyclicity.
  Init(3);
  Eq(0, "a", 1, "a");
  Eq(1, "a", 2, "a");
  Eq(2, "a", 0, "a");
  JoinTree tree = Reduce();
  ASSERT_TRUE(tree.acyclic);
  EXPECT_EQ(tree.roots.size(), 1u);
  ExpectBottomUp(tree);
}

TEST_F(GyoTest, CrossJoinIslandsReduceToAForest) {
  Init(4);
  Eq(0, "b", 1, "a");  // island {0, 1}
  Eq(2, "b", 3, "a");  // island {2, 3}
  JoinTree tree = Reduce();
  ASSERT_TRUE(tree.acyclic);
  EXPECT_EQ(tree.roots.size(), 2u);
  ExpectBottomUp(tree);
}

TEST_F(GyoTest, ContainedEdgeIsAnEarOfItsContainer) {
  // R1's variables {ab-class} are a subset of R0's {ab-class, b-class}:
  // R1 must reduce as an ear with R0 (its container) as parent.
  Init(3);
  Eq(0, "a", 1, "a");
  Eq(0, "b", 2, "a");
  JoinTree tree = Reduce();
  ASSERT_TRUE(tree.acyclic);
  EXPECT_EQ(tree.roots.size(), 1u);
  ExpectBottomUp(tree);
  // R1's single variable is strictly contained in R0's set, so R1 is
  // the first ear and R0 is its recorded parent.
  EXPECT_EQ(tree.parent[1], 0);
}

TEST_F(GyoTest, IsolatedOperandIsItsOwnRoot) {
  // R2 shares no join variable: a cross-join island of one.
  Init(3);
  Eq(0, "b", 1, "a");
  JoinTree tree = Reduce();
  ASSERT_TRUE(tree.acyclic);
  EXPECT_EQ(tree.roots.size(), 2u);
  EXPECT_EQ(tree.parent[2], -1);
}

TEST(GyoCapTest, MoreThan64VariablesReportsCyclic) {
  // Two 70-attribute relations joined attribute-by-attribute: 70 join
  // variables overflow the 64-bit edge representation, the hypergraph
  // is flagged !ok, and GyoReduce conservatively reports cyclic.
  Database db;
  std::vector<std::string> attrs;
  for (int j = 0; j < 70; ++j) attrs.push_back("a" + std::to_string(j));
  RelId r0 = *db.AddRelation("R0", attrs);
  RelId r1 = *db.AddRelation("R1", attrs);
  std::vector<ExprPtr> operands = {Expr::Leaf(r0, db), Expr::Leaf(r1, db)};
  std::vector<PredicatePtr> conjuncts;
  for (int j = 0; j < 70; ++j) {
    conjuncts.push_back(EqCols(db.Attr("R0", attrs[j]),
                               db.Attr("R1", attrs[j])));
  }
  JoinHypergraph hypergraph = BuildJoinHypergraph(operands, conjuncts);
  EXPECT_FALSE(hypergraph.ok);
  EXPECT_FALSE(GyoReduce(hypergraph).acyclic);
}

// --- Yannakakis programs ------------------------------------------------

// A 3-chain R0(a,b) - R1(b,c) - R2(c,d) where most of R1 dangles: rows
// dead toward R2, dead toward R0, or null-keyed. Returns the database;
// the query helpers below build operands/conjuncts against it.
class YannakakisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r0_ = *db_.AddRelation("R0", {"a", "b"});
    r1_ = *db_.AddRelation("R1", {"b", "c"});
    r2_ = *db_.AddRelation("R2", {"c", "d"});
    // R0: fan of 3 rows on the live key 0, one dangling row.
    for (int i = 0; i < 3; ++i) {
      db_.AddRow(r0_, {Value::Int(i), Value::Int(0)});
    }
    db_.AddRow(r0_, {Value::Int(9), Value::Int(7)});
    // R1: one live row (b=0, c=0), rows dead toward R2, dead toward R0,
    // and a null join key.
    db_.AddRow(r1_, {Value::Int(0), Value::Int(0)});
    db_.AddRow(r1_, {Value::Int(0), Value::Int(8)});
    db_.AddRow(r1_, {Value::Int(6), Value::Int(0)});
    db_.AddRow(r1_, {Value::Null(), Value::Int(0)});
    // R2: fan of 2 rows on the live key 0, one dangling row.
    for (int i = 0; i < 2; ++i) {
      db_.AddRow(r2_, {Value::Int(0), Value::Int(i)});
    }
    db_.AddRow(r2_, {Value::Int(5), Value::Int(5)});

    operands_ = {Expr::Leaf(r0_, db_), Expr::Leaf(r1_, db_),
                 Expr::Leaf(r2_, db_)};
    conjuncts_ = {EqCols(db_.Attr("R0", "b"), db_.Attr("R1", "b")),
                  EqCols(db_.Attr("R1", "c"), db_.Attr("R2", "c"))};
    binary_ = Expr::Join(
        Expr::Join(operands_[0], operands_[1], conjuncts_[0]),
        operands_[2], conjuncts_[1]);
  }

  Database db_;
  RelId r0_, r1_, r2_;
  std::vector<ExprPtr> operands_;
  std::vector<PredicatePtr> conjuncts_;
  ExprPtr binary_;
};

TEST_F(YannakakisTest, ForcedProgramMatchesBinaryPlanOnBothEngines) {
  JoinTree tree = GyoReduce(BuildJoinHypergraph(operands_, conjuncts_));
  ASSERT_TRUE(tree.acyclic);
  for (const bool top_down : {false, true}) {
    YannakakisOptions options;
    options.top_down = top_down;
    SemijoinProgram program =
        PlanYannakakis(operands_, conjuncts_, tree, nullptr, options);
    ASSERT_NE(program.expr, nullptr);
    // The tree re-uses reduced operands in several joins (no CSE), so
    // the path count is at least the number of inserted reductions.
    EXPECT_GE(CountSemijoins(program.expr), program.semijoins);
    EXPECT_GE(program.semijoins, top_down ? 3 : 2);

    const Relation want = Eval(binary_, db_);
    EXPECT_TRUE(BagEquals(want, Eval(program.expr, db_)));
    EXPECT_TRUE(BagEquals(want, ExecutePipelined(program.expr, db_)));
    EXPECT_TRUE(BagEquals(want, ExecuteBatched(program.expr, db_)));
  }
}

TEST_F(YannakakisTest, TupleAndBatchEnginesAgreeOnProgramStats) {
  JoinTree tree = GyoReduce(BuildJoinHypergraph(operands_, conjuncts_));
  ASSERT_TRUE(tree.acyclic);
  SemijoinProgram program =
      PlanYannakakis(operands_, conjuncts_, tree, nullptr);
  ASSERT_GE(program.semijoins, 2);

  IteratorPtr tuple_root = BuildIterator(program.expr, db_);
  Relation tuple_out = Drain(tuple_root.get());
  BatchIteratorPtr batch_root = BuildBatchIterator(program.expr, db_);
  Relation batch_out = DrainBatches(batch_root.get());
  EXPECT_TRUE(BagEquals(tuple_out, batch_out));

  const ExecStats t = CollectPipelineStats(tuple_root.get());
  const ExecStats b = CollectPipelineStats(batch_root.get());
  EXPECT_EQ(t.left_reads, b.left_reads);
  EXPECT_EQ(t.right_reads, b.right_reads);
  EXPECT_EQ(t.emitted, b.emitted);
  EXPECT_EQ(t.probes, b.probes);
  EXPECT_EQ(t.predicate_evals, b.predicate_evals);
}

TEST_F(YannakakisTest, EstimatorGateSkipsReductionsThatKeepEverything) {
  // A fully-connected chain: every R0 and R1 row survives every
  // semijoin, so the estimated survivor fraction is ~1 and the gate
  // must skip all reductions (the program degenerates to plain joins).
  Database db;
  RelId s0 = *db.AddRelation("R0", {"a", "b"});
  RelId s1 = *db.AddRelation("R1", {"b", "c"});
  RelId s2 = *db.AddRelation("R2", {"c", "d"});
  for (int i = 0; i < 4; ++i) {
    db.AddRow(s0, {Value::Int(i), Value::Int(0)});
    db.AddRow(s1, {Value::Int(0), Value::Int(0)});
    db.AddRow(s2, {Value::Int(0), Value::Int(i)});
  }
  std::vector<ExprPtr> operands = {Expr::Leaf(s0, db), Expr::Leaf(s1, db),
                                   Expr::Leaf(s2, db)};
  std::vector<PredicatePtr> conjuncts = {
      EqCols(db.Attr("R0", "b"), db.Attr("R1", "b")),
      EqCols(db.Attr("R1", "c"), db.Attr("R2", "c"))};
  JoinTree tree = GyoReduce(BuildJoinHypergraph(operands, conjuncts));
  ASSERT_TRUE(tree.acyclic);

  CardinalityEstimator estimator(db);
  SemijoinProgram gated =
      PlanYannakakis(operands, conjuncts, tree, &estimator);
  EXPECT_EQ(gated.semijoins, 0);
  // Forced mode still reduces — the gate, not the planner, skipped.
  SemijoinProgram forced =
      PlanYannakakis(operands, conjuncts, tree, nullptr);
  EXPECT_GE(forced.semijoins, 2);
}

TEST_F(YannakakisTest, ApplyAcyclicIsCostGatedAndPreservesResults) {
  CostModel cost_model(db_, CostKind::kCout);
  AcyclicRewriteResult rewritten = ApplyAcyclic(binary_, db_, cost_model);
  ASSERT_NE(rewritten.expr, nullptr);
  EXPECT_TRUE(BagEquals(Eval(binary_, db_), Eval(rewritten.expr, db_)));
  if (rewritten.programs_planned > 0) {
    // Whenever the gate fires, the program must actually be cheaper.
    EXPECT_GE(rewritten.semijoins, 1);
    EXPECT_LT(cost_model.PlanCost(rewritten.expr),
              cost_model.PlanCost(binary_));
  }
}

TEST_F(YannakakisTest, ForceAcyclicProgramsLeavesCyclicRegionsAlone) {
  // A triangle on distinct variables is cyclic: the fuzzing rewrite
  // must return the query unchanged.
  Database db;
  RelId t0 = *db.AddRelation("R0", {"a", "b"});
  RelId t1 = *db.AddRelation("R1", {"b", "c"});
  RelId t2 = *db.AddRelation("R2", {"c", "a"});
  db.AddRow(t0, {Value::Int(0), Value::Int(0)});
  db.AddRow(t1, {Value::Int(0), Value::Int(0)});
  db.AddRow(t2, {Value::Int(0), Value::Int(0)});
  ExprPtr triangle = Expr::Join(
      Expr::Join(Expr::Leaf(t0, db), Expr::Leaf(t1, db),
                 EqCols(db.Attr("R0", "b"), db.Attr("R1", "b"))),
      Expr::Leaf(t2, db),
      Predicate::And({EqCols(db.Attr("R1", "c"), db.Attr("R2", "c")),
                      EqCols(db.Attr("R2", "a"), db.Attr("R0", "a"))}));
  EXPECT_EQ(ForceAcyclicPrograms(triangle), triangle);
  // The chain, in contrast, is rewritten into a semijoin program.
  ExprPtr forced = ForceAcyclicPrograms(binary_);
  EXPECT_NE(forced, binary_);
  EXPECT_GE(CountSemijoins(forced), 2);
  EXPECT_TRUE(BagEquals(Eval(binary_, db_), Eval(forced, db_)));
}

// --- the optimizer pipeline end to end ----------------------------------

TEST_F(YannakakisTest, OptimizerRunsTheAcyclicPassAndStaysCorrect) {
  Result<OptimizeOutcome> outcome = Optimize(binary_, db_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const PassStats* pass = outcome->FindPass("acyclic");
  ASSERT_NE(pass, nullptr);
  EXPECT_TRUE(pass->ran);
  EXPECT_TRUE(BagEquals(Eval(binary_, db_), Eval(outcome->plan, db_)));
  // Disabling the pass through the pipeline keeps the plan semijoin-free.
  OptimizeOptions off;
  off.pipeline = RewritePipeline::Default().Without("acyclic");
  Result<OptimizeOutcome> without = Optimize(binary_, db_, off);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without->FindPass("acyclic"), nullptr);
  EXPECT_EQ(CountSemijoins(without->plan), 0);
  EXPECT_TRUE(BagEquals(Eval(binary_, db_), Eval(without->plan, db_)));
}

TEST_F(YannakakisTest, StrongRestrictionUnlocksTheFastPathThroughSimplify) {
  // The Section 4 interplay: an outerjoin shell node D under a strong
  // restriction. The simplifier converts the outerjoin to a join, the
  // enlarged region is acyclic, and the acyclic pass sees 4 operands.
  RelId d = *db_.AddRelation("D", {"d"});
  db_.AddRow(d, {Value::Int(0)});
  db_.AddRow(d, {Value::Int(5)});
  ExprPtr shell = Expr::OuterJoin(
      binary_, Expr::Leaf(d, db_),
      EqCols(db_.Attr("R2", "d"), db_.Attr("D", "d")));
  ExprPtr query = Expr::Restrict(
      shell, CmpLit(CmpOp::kEq, db_.Attr("D", "d"), Value::Int(0)));

  Result<OptimizeOutcome> outcome = Optimize(query, db_);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(outcome->PassApplications("simplify"), 1);
  const PassStats* pass = outcome->FindPass("acyclic");
  ASSERT_NE(pass, nullptr);
  EXPECT_TRUE(pass->ran);
  EXPECT_TRUE(BagEquals(Eval(query, db_), Eval(outcome->plan, db_)));
  EXPECT_TRUE(BagEquals(Eval(query, db_),
                        ExecutePipelined(outcome->plan, db_)));
  EXPECT_TRUE(BagEquals(Eval(query, db_),
                        ExecuteBatched(outcome->plan, db_)));
}

}  // namespace
}  // namespace fro
