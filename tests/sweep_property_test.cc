// Parameterized property sweeps: Theorem 1 and the executor invariants
// checked across a grid of data distributions (null density, domain
// size, outerjoin density), not just the defaults.

#include <gtest/gtest.h>

#include <tuple>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/closure.h"
#include "enumerate/it_enum.h"
#include "graph/nice.h"
#include "optimizer/optimizer.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

// (null_prob_percent, domain, oj_fraction_percent)
using SweepParam = std::tuple<int, int, int>;

class TheoremSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TheoremSweepTest, AllImplementingTreesAgree) {
  auto [null_pct, domain, oj_pct] = GetParam();
  Rng rng(1400 + static_cast<uint64_t>(null_pct * 100 + domain * 10 +
                                       oj_pct));
  int graphs = 0;
  for (int trial = 0; trial < 25 && graphs < 12; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(4));
    options.oj_fraction = oj_pct / 100.0;
    options.rows.null_prob = null_pct / 100.0;
    options.rows.domain = domain;
    options.rows.rows_min = 1;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ASSERT_TRUE(CheckFreelyReorderable(q.graph).freely_reorderable());
    if (CountIts(q.graph) > 300) continue;
    ++graphs;
    std::vector<ExprPtr> trees = EnumerateIts(q.graph, *q.db);
    Relation reference = Eval(trees[0], *q.db);
    for (const ExprPtr& tree : trees) {
      ASSERT_TRUE(BagEquals(reference, Eval(tree, *q.db)))
          << "null%=" << null_pct << " domain=" << domain
          << " oj%=" << oj_pct << "\n tree: " << tree->ToString();
    }
  }
  EXPECT_GE(graphs, 8);
}

TEST_P(TheoremSweepTest, KernelsAgreeOnRandomTrees) {
  auto [null_pct, domain, oj_pct] = GetParam();
  Rng rng(1500 + static_cast<uint64_t>(null_pct * 100 + domain * 10 +
                                       oj_pct));
  for (int trial = 0; trial < 10; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 4;
    options.oj_fraction = oj_pct / 100.0;
    options.rows.null_prob = null_pct / 100.0;
    options.rows.domain = domain;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
    ASSERT_NE(tree, nullptr);
    EvalOptions nl;
    nl.algo = JoinAlgo::kNestedLoop;
    EvalOptions hash;
    hash.algo = JoinAlgo::kHash;
    EXPECT_TRUE(BagEquals(Eval(tree, *q.db, nl), Eval(tree, *q.db, hash)))
        << tree->ToString();
  }
}

TEST_P(TheoremSweepTest, OptimizerPreservesResults) {
  auto [null_pct, domain, oj_pct] = GetParam();
  Rng rng(1600 + static_cast<uint64_t>(null_pct * 100 + domain * 10 +
                                       oj_pct));
  for (int trial = 0; trial < 10; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 4 + static_cast<int>(rng.Uniform(3));
    options.oj_fraction = oj_pct / 100.0;
    options.rows.null_prob = null_pct / 100.0;
    options.rows.domain = domain;
    options.rows.rows_min = 1;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
    Result<OptimizeOutcome> outcome = Optimize(tree, *q.db);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->freely_reorderable);
    EXPECT_TRUE(BagEquals(Eval(tree, *q.db), Eval(outcome->plan, *q.db)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TheoremSweepTest,
    ::testing::Combine(::testing::Values(0, 20, 50),   // null density %
                       ::testing::Values(2, 4, 8),     // value domain
                       ::testing::Values(20, 60)),     // OJ density %
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "null" + std::to_string(std::get<0>(info.param)) + "_dom" +
             std::to_string(std::get<1>(info.param)) + "_oj" +
             std::to_string(std::get<2>(info.param));
    });

// The BT closure is independent of the starting implementing tree.
TEST(ClosureInvarianceTest, SameClosureFromAnyStart) {
  Rng rng(1700);
  for (int trial = 0; trial < 10; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 4 + static_cast<int>(rng.Uniform(2));
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    if (CountIts(q.graph) > 200) continue;
    std::vector<ExprPtr> trees = EnumerateIts(q.graph, *q.db);
    std::set<std::string> first_closure;
    for (size_t start = 0; start < trees.size(); start += 7) {
      ClosureResult closure = BtClosure(trees[start]);
      std::set<std::string> fingerprints;
      for (const ExprPtr& t : closure.trees) {
        fingerprints.insert(t->Fingerprint());
      }
      if (first_closure.empty()) {
        first_closure = std::move(fingerprints);
      } else {
        EXPECT_EQ(fingerprints, first_closure);
      }
    }
  }
}

// Determinism: the same seed yields the same database, graph, trees, and
// results.
TEST(DeterminismTest, GenerationAndEvaluationAreReproducible) {
  for (uint64_t seed : {1ULL, 42ULL, 2026ULL}) {
    RandomQueryOptions options;
    options.num_relations = 5;
    Rng rng1(seed);
    Rng rng2(seed);
    GeneratedQuery q1 = GenerateRandomQuery(options, &rng1);
    GeneratedQuery q2 = GenerateRandomQuery(options, &rng2);
    ASSERT_EQ(q1.graph.num_edges(), q2.graph.num_edges());
    Rng sample1(seed + 1);
    Rng sample2(seed + 1);
    ExprPtr t1 = RandomIt(q1.graph, *q1.db, &sample1);
    ExprPtr t2 = RandomIt(q2.graph, *q2.db, &sample2);
    EXPECT_EQ(t1->Fingerprint(), t2->Fingerprint());
    EXPECT_TRUE(BagEquals(Eval(t1, *q1.db), Eval(t2, *q2.db)));
  }
}

}  // namespace
}  // namespace fro
