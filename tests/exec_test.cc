// Volcano executor tests: per-operator behaviour, rescans, and the
// cross-validation property: the pipelined executor agrees with the
// materializing evaluator on every expression.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "exec/build.h"
#include "exec/operators.h"
#include "testing/datagen.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = *db_.AddRelation("R", {"a", "b"});
    s_ = *db_.AddRelation("S", {"c"});
    a_ = db_.Attr("R", "a");
    b_ = db_.Attr("R", "b");
    c_ = db_.Attr("S", "c");
    db_.AddRow(r_, {Value::Int(1), Value::Int(10)});
    db_.AddRow(r_, {Value::Int(2), Value::Int(20)});
    db_.AddRow(r_, {Value::Null(), Value::Int(30)});
    db_.AddRow(s_, {Value::Int(1)});
    db_.AddRow(s_, {Value::Int(1)});
    db_.AddRow(s_, {Value::Int(3)});
  }

  Database db_;
  RelId r_, s_;
  AttrId a_, b_, c_;
};

TEST_F(ExecTest, ScanStreamsAllRows) {
  ScanIterator scan(&db_.relation(r_));
  Relation out = Drain(&scan);
  EXPECT_TRUE(BagEquals(out, db_.relation(r_)));
  EXPECT_EQ(scan.produced(), 3u);
}

TEST_F(ExecTest, ScanRescans) {
  ScanIterator scan(&db_.relation(r_));
  Relation first = Drain(&scan);
  Relation second = Drain(&scan);
  EXPECT_TRUE(BagEquals(first, second));
}

TEST_F(ExecTest, FilterDropsNonMatching) {
  auto filter = std::make_unique<FilterIterator>(
      std::make_unique<ScanIterator>(&db_.relation(r_)),
      CmpLit(CmpOp::kGe, b_, Value::Int(20)));
  EXPECT_EQ(Drain(filter.get()).NumRows(), 2u);
}

TEST_F(ExecTest, ProjectWithAndWithoutDedup) {
  auto bag = std::make_unique<ProjectIterator>(
      std::make_unique<ScanIterator>(&db_.relation(s_)),
      std::vector<AttrId>{c_}, /*dedup=*/false);
  EXPECT_EQ(Drain(bag.get()).NumRows(), 3u);
  auto set = std::make_unique<ProjectIterator>(
      std::make_unique<ScanIterator>(&db_.relation(s_)),
      std::vector<AttrId>{c_}, /*dedup=*/true);
  EXPECT_EQ(Drain(set.get()).NumRows(), 2u);
}

TEST_F(ExecTest, UnionPads) {
  auto u = std::make_unique<UnionIterator>(
      std::make_unique<ScanIterator>(&db_.relation(r_)),
      std::make_unique<ScanIterator>(&db_.relation(s_)));
  Relation out = Drain(u.get());
  EXPECT_EQ(out.NumRows(), 6u);
  EXPECT_EQ(out.scheme().size(), 3u);
}

TEST_F(ExecTest, JoinModesNestedLoop) {
  auto make = [&](JoinMode mode) {
    auto it = std::make_unique<NestedLoopJoinIterator>(
        std::make_unique<ScanIterator>(&db_.relation(r_)),
        std::make_unique<ScanIterator>(&db_.relation(s_)), EqCols(a_, c_),
        mode);
    return Drain(it.get());
  };
  EXPECT_EQ(make(JoinMode::kInner).NumRows(), 2u);      // a=1 matches twice
  EXPECT_EQ(make(JoinMode::kLeftOuter).NumRows(), 4u);  // + 2 padded
  EXPECT_EQ(make(JoinMode::kAnti).NumRows(), 2u);       // a=2, a=null
  EXPECT_EQ(make(JoinMode::kSemi).NumRows(), 1u);       // a=1 once
}

TEST_F(ExecTest, JoinModesHash) {
  auto make = [&](JoinMode mode) {
    auto it = std::make_unique<HashJoinIterator>(
        std::make_unique<ScanIterator>(&db_.relation(r_)),
        std::make_unique<ScanIterator>(&db_.relation(s_)), EqCols(a_, c_),
        mode, std::vector<AttrId>{a_}, std::vector<AttrId>{c_});
    return Drain(it.get());
  };
  EXPECT_EQ(make(JoinMode::kInner).NumRows(), 2u);
  EXPECT_EQ(make(JoinMode::kLeftOuter).NumRows(), 4u);
  EXPECT_EQ(make(JoinMode::kAnti).NumRows(), 2u);
  EXPECT_EQ(make(JoinMode::kSemi).NumRows(), 1u);
}

TEST_F(ExecTest, SortMergeIteratorModes) {
  auto make = [&](JoinMode mode) {
    auto it = std::make_unique<SortMergeJoinIterator>(
        std::make_unique<ScanIterator>(&db_.relation(r_)),
        std::make_unique<ScanIterator>(&db_.relation(s_)), EqCols(a_, c_),
        mode);
    return Drain(it.get());
  };
  EXPECT_EQ(make(JoinMode::kInner).NumRows(), 2u);
  EXPECT_EQ(make(JoinMode::kLeftOuter).NumRows(), 4u);
  EXPECT_EQ(make(JoinMode::kAnti).NumRows(), 2u);
  EXPECT_EQ(make(JoinMode::kSemi).NumRows(), 1u);
  // Rescan safety for the blocking operator.
  auto it = std::make_unique<SortMergeJoinIterator>(
      std::make_unique<ScanIterator>(&db_.relation(r_)),
      std::make_unique<ScanIterator>(&db_.relation(s_)), EqCols(a_, c_),
      JoinMode::kInner);
  Relation first = Drain(it.get());
  Relation second = Drain(it.get());
  EXPECT_TRUE(BagEquals(first, second));
}

TEST_F(ExecTest, HashAndNestedLoopAgree) {
  for (JoinMode mode : {JoinMode::kInner, JoinMode::kLeftOuter,
                        JoinMode::kAnti, JoinMode::kSemi}) {
    auto nl = std::make_unique<NestedLoopJoinIterator>(
        std::make_unique<ScanIterator>(&db_.relation(r_)),
        std::make_unique<ScanIterator>(&db_.relation(s_)), EqCols(a_, c_),
        mode);
    auto hash = std::make_unique<HashJoinIterator>(
        std::make_unique<ScanIterator>(&db_.relation(r_)),
        std::make_unique<ScanIterator>(&db_.relation(s_)), EqCols(a_, c_),
        mode, std::vector<AttrId>{a_}, std::vector<AttrId>{c_});
    EXPECT_TRUE(BagEquals(Drain(nl.get()), Drain(hash.get())));
  }
}

TEST_F(ExecTest, BuildIteratorMatchesEvalOnHandwrittenQuery) {
  ExprPtr q = Expr::Restrict(
      Expr::OuterJoin(Expr::Leaf(r_, db_), Expr::Leaf(s_, db_),
                      EqCols(a_, c_)),
      CmpLit(CmpOp::kGe, b_, Value::Int(20)));
  EXPECT_TRUE(BagEquals(ExecutePipelined(q, db_), Eval(q, db_)));
}

TEST_F(ExecTest, SymmetricFormsExecute) {
  ExprPtr backward = Expr::OuterJoin(Expr::Leaf(s_, db_),
                                     Expr::Leaf(r_, db_), EqCols(a_, c_),
                                     /*preserves_left=*/false);
  ExprPtr forward = Expr::OuterJoin(Expr::Leaf(r_, db_),
                                    Expr::Leaf(s_, db_), EqCols(a_, c_));
  EXPECT_TRUE(BagEquals(ExecutePipelined(backward, db_),
                        ExecutePipelined(forward, db_)));
}

TEST_F(ExecTest, GojIteratorMatchesKernel) {
  ExprPtr goj = Expr::Goj(Expr::Leaf(r_, db_), Expr::Leaf(s_, db_),
                          EqCols(a_, c_), AttrSet::Of({a_}));
  EXPECT_TRUE(BagEquals(ExecutePipelined(goj, db_), Eval(goj, db_)));
}

TEST_F(ExecTest, EmptyInputs) {
  Database db;
  RelId e1 = *db.AddRelation("E1", {"x"});
  RelId e2 = *db.AddRelation("E2", {"y"});
  ExprPtr q = Expr::OuterJoin(Expr::Leaf(e1, db), Expr::Leaf(e2, db),
                              EqCols(db.Attr("E1", "x"), db.Attr("E2", "y")));
  EXPECT_EQ(ExecutePipelined(q, db).NumRows(), 0u);
}

// The flagship cross-validation: pipelined execution agrees with the
// reference evaluator on random implementing trees, under both physical
// strategies.
TEST(ExecPropertyTest, PipelinedAgreesWithEvalOnRandomQueries) {
  Rng rng(1801);
  for (int trial = 0; trial < 40; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(4));
    options.rows.null_prob = 0.2;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
    ASSERT_NE(tree, nullptr);
    Relation reference = Eval(tree, *q.db);
    EXPECT_TRUE(BagEquals(reference,
                          ExecutePipelined(tree, *q.db, JoinAlgo::kAuto)))
        << tree->ToString();
    EXPECT_TRUE(BagEquals(
        reference, ExecutePipelined(tree, *q.db, JoinAlgo::kNestedLoop)))
        << tree->ToString();
  }
}

// Pipelines are restartable: draining twice gives the same bag.
TEST(ExecPropertyTest, PipelinesRescanCleanly) {
  Rng rng(1802);
  RandomQueryOptions options;
  options.num_relations = 4;
  GeneratedQuery q = GenerateRandomQuery(options, &rng);
  ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
  IteratorPtr root = BuildIterator(tree, *q.db);
  Relation first = Drain(root.get());
  Relation second = Drain(root.get());
  EXPECT_TRUE(BagEquals(first, second));
}

// Early termination: closing a pipeline mid-stream is safe and a
// subsequent reopen starts fresh.
TEST(ExecPropertyTest, EarlyCloseAndReopen) {
  Rng rng(1803);
  RandomQueryOptions options;
  options.num_relations = 4;
  options.rows.rows_min = 3;
  GeneratedQuery q = GenerateRandomQuery(options, &rng);
  ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
  IteratorPtr root = BuildIterator(tree, *q.db);
  root->Open();
  Tuple tuple;
  root->Next(&tuple);  // consume at most one row
  root->Close();
  Relation full = Drain(root.get());
  EXPECT_TRUE(BagEquals(full, Eval(tree, *q.db)));
}

}  // namespace
}  // namespace fro
