// Section 6.3's conjecture: tree-side conditions equivalent to graph
// niceness. The refinement implemented in graph/tree_conditions.h is
// validated empirically: over random implementing trees, the tree
// conditions hold iff graph(Q) is nice.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "graph/from_expr.h"
#include "graph/nice.h"
#include "graph/tree_conditions.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

class TreeCondTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = *db_.AddRelation("X", {"a"});
    y_ = *db_.AddRelation("Y", {"b"});
    z_ = *db_.AddRelation("Z", {"c"});
    a_ = db_.Attr("X", "a");
    b_ = db_.Attr("Y", "b");
    c_ = db_.Attr("Z", "c");
  }
  ExprPtr X() { return Expr::Leaf(x_, db_); }
  ExprPtr Y() { return Expr::Leaf(y_, db_); }
  ExprPtr Z() { return Expr::Leaf(z_, db_); }

  Database db_;
  RelId x_, y_, z_;
  AttrId a_, b_, c_;
};

TEST_F(TreeCondTest, NiceShapesPass) {
  // (X - Y) -> Z.
  EXPECT_TRUE(CheckTreeConditions(
                  Expr::OuterJoin(Expr::Join(X(), Y(), EqCols(a_, b_)), Z(),
                                  EqCols(b_, c_)))
                  .ok);
  // X - (Y -> Z): padded Z attrs are not referenced above.
  EXPECT_TRUE(CheckTreeConditions(
                  Expr::Join(X(), Expr::OuterJoin(Y(), Z(), EqCols(b_, c_)),
                             EqCols(a_, b_)))
                  .ok);
  // The outerjoin chain (X -> Y) -> Z: the upper predicate references the
  // padded Y from the PRESERVED side — legal.
  EXPECT_TRUE(CheckTreeConditions(
                  Expr::OuterJoin(Expr::OuterJoin(X(), Y(), EqCols(a_, b_)),
                                  Z(), EqCols(b_, c_)))
                  .ok);
}

TEST_F(TreeCondTest, NullSuppliedJoinFails) {
  // X -> (Y - Z): Example 2. Condition (a).
  TreeConditionCheck check = CheckTreeConditions(Expr::OuterJoin(
      X(), Expr::Join(Y(), Z(), EqCols(b_, c_)), EqCols(a_, b_)));
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.violation.find("regular join"), std::string::npos);
}

TEST_F(TreeCondTest, PaddedAttrsInLaterJoinFails) {
  // (X -> Y) - Z with the join predicate on Y: the padded Y attributes
  // are "involved later as an operand of a regular join".
  TreeConditionCheck check = CheckTreeConditions(Expr::Join(
      Expr::OuterJoin(X(), Y(), EqCols(a_, b_)), Z(), EqCols(b_, c_)));
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.violation.find("regular join"), std::string::npos);
}

TEST_F(TreeCondTest, TwoInwardOuterjoinsFail) {
  // (X -> Y) <- Z: Z preserves itself over the padded Y and references it
  // from its null-supplied side.
  TreeConditionCheck check = CheckTreeConditions(
      Expr::OuterJoin(Expr::OuterJoin(X(), Y(), EqCols(a_, b_)), Z(),
                      EqCols(b_, c_), /*preserves_left=*/false));
  EXPECT_FALSE(check.ok);
}

TEST_F(TreeCondTest, NonItOperatorsRejected) {
  TreeConditionCheck check = CheckTreeConditions(
      Expr::Antijoin(X(), Y(), EqCols(a_, b_)));
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.violation.find("Antijoin"), std::string::npos);
}

// The conjecture, validated: tree conditions <=> graph niceness, over
// random implementing trees of nice and violated graphs.
TEST(TreeCondPropertyTest, EquivalentToGraphNiceness) {
  Rng rng(1101);
  int nice_cases = 0;
  int non_nice_cases = 0;
  for (int trial = 0; trial < 120; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(4));
    switch (trial % 4) {
      case 0:
      case 1:
        options.violation = RandomQueryOptions::Violation::kNone;
        break;
      case 2:
        options.violation =
            RandomQueryOptions::Violation::kJoinAtNullSupplied;
        break;
      case 3:
        options.violation = RandomQueryOptions::Violation::kTwoInEdges;
        break;
    }
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ExprPtr it = RandomIt(q.graph, *q.db, &rng);
    if (it == nullptr) continue;
    const bool graph_nice = CheckNice(q.graph).nice;
    TreeConditionCheck tree = CheckTreeConditions(it);
    EXPECT_EQ(tree.ok, graph_nice)
        << "tree conditions and Lemma 1 disagree on " << it->ToString()
        << "\n graph:\n"
        << q.graph.ToString() << " tree violation: " << tree.violation;
    graph_nice ? ++nice_cases : ++non_nice_cases;
  }
  EXPECT_GT(nice_cases, 30);
  EXPECT_GT(non_nice_cases, 20);
}

// Every implementing tree of a graph agrees with every other on the tree
// conditions (they all implement the same graph).
TEST(TreeCondPropertyTest, ConsistentAcrossAllItsOfAGraph) {
  Rng rng(1102);
  for (int trial = 0; trial < 20; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 4;
    options.violation = trial % 2 == 0
                            ? RandomQueryOptions::Violation::kNone
                            : RandomQueryOptions::Violation::kTwoInEdges;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    std::vector<ExprPtr> trees = EnumerateIts(q.graph, *q.db, 100);
    if (trees.empty()) continue;
    const bool first = CheckTreeConditions(trees[0]).ok;
    for (const ExprPtr& tree : trees) {
      EXPECT_EQ(CheckTreeConditions(tree).ok, first) << tree->ToString();
    }
  }
}

}  // namespace
}  // namespace fro
