// Tests for the textual algebra parser, including the round trip
// parse(ToString(Q)) == Q.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/parse.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

class AlgebraParseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = *db_.AddRelation("X", {"a"});
    y_ = *db_.AddRelation("Y", {"b"});
    z_ = *db_.AddRelation("Z", {"c"});
    db_.AddRow(x_, {Value::Int(1)});
    db_.AddRow(y_, {Value::Int(1)});
    db_.AddRow(z_, {Value::Int(2)});
  }

  Database db_;
  RelId x_, y_, z_;
};

TEST_F(AlgebraParseTest, LeafAndJoin) {
  Result<ExprPtr> leaf = ParseAlgebra("X", db_);
  ASSERT_TRUE(leaf.ok());
  EXPECT_TRUE((*leaf)->is_leaf());

  Result<ExprPtr> join = ParseAlgebra("(X -[X.a=Y.b] Y)", db_);
  ASSERT_TRUE(join.ok());
  EXPECT_EQ((*join)->kind(), OpKind::kJoin);
  EXPECT_EQ((*join)->ToString(&db_.catalog()), "(X - Y)");
}

TEST_F(AlgebraParseTest, AllOperatorSymbols) {
  struct Case {
    const char* text;
    OpKind kind;
    bool preserves_left;
  };
  for (const Case& c : std::initializer_list<Case>{
           {"(X ->[X.a=Y.b] Y)", OpKind::kOuterJoin, true},
           {"(X <-[X.a=Y.b] Y)", OpKind::kOuterJoin, false},
           {"(X |>[X.a=Y.b] Y)", OpKind::kAntijoin, true},
           {"(X <|[X.a=Y.b] Y)", OpKind::kAntijoin, false},
           {"(X >-[X.a=Y.b] Y)", OpKind::kSemijoin, true},
           {"(X -<[X.a=Y.b] Y)", OpKind::kSemijoin, false}}) {
    Result<ExprPtr> parsed = ParseAlgebra(c.text, db_);
    ASSERT_TRUE(parsed.ok()) << c.text;
    EXPECT_EQ((*parsed)->kind(), c.kind) << c.text;
    EXPECT_EQ((*parsed)->preserves_left(), c.preserves_left) << c.text;
  }
}

TEST_F(AlgebraParseTest, NestedExpression) {
  Result<ExprPtr> q =
      ParseAlgebra("((X -[X.a=Y.b] Y) ->[Y.b=Z.c] Z)", db_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->ToString(&db_.catalog()), "((X - Y) -> Z)");
  Relation out = Eval(*q, db_);
  EXPECT_EQ(out.NumRows(), 1u);  // x-y match; z padded
}

TEST_F(AlgebraParseTest, PredicateForms) {
  Result<PredicatePtr> p1 = ParseAlgebraPredicate(
      "X.a = Y.b and Y.b < 5 or not(X.a is null)", db_);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ((*p1)->kind(), Predicate::Kind::kOr);
  Result<PredicatePtr> p2 =
      ParseAlgebraPredicate("(X.a >= 1.5) and Y.b <> 'abc'", db_);
  ASSERT_TRUE(p2.ok());
  Result<PredicatePtr> p3 = ParseAlgebraPredicate("X.a = null", db_);
  ASSERT_TRUE(p3.ok());  // comparison to the null literal: always unknown
}

TEST_F(AlgebraParseTest, WeakPredicateStrengthVisible) {
  Result<PredicatePtr> weak =
      ParseAlgebraPredicate("X.a = Y.b or X.a is null", db_);
  ASSERT_TRUE(weak.ok());
  EXPECT_FALSE((*weak)->IsStrongWrt(AttrSet::Of({db_.Attr("X", "a")})));
  Result<PredicatePtr> strong = ParseAlgebraPredicate("X.a = Y.b", db_);
  ASSERT_TRUE(strong.ok());
  EXPECT_TRUE((*strong)->IsStrongWrt(AttrSet::Of({db_.Attr("X", "a")})));
}

TEST_F(AlgebraParseTest, PredicateFreeOperatorsAndConstants) {
  // `(X - Y)` is a cartesian join — exactly what ToString prints for a
  // predicate-free operator, so it must round-trip.
  Result<ExprPtr> cartesian = ParseAlgebra("(X - Y)", db_);
  ASSERT_TRUE(cartesian.ok());
  EXPECT_EQ((*cartesian)->kind(), OpKind::kJoin);
  EXPECT_EQ((*cartesian)->pred(), nullptr);
  EXPECT_EQ(Eval(*cartesian, db_).NumRows(), 1u);

  Result<ExprPtr> constant = ParseAlgebra("(X -[TRUE] Y)", db_);
  ASSERT_TRUE(constant.ok());
  ASSERT_NE((*constant)->pred(), nullptr);
  EXPECT_EQ((*constant)->pred()->kind(), Predicate::Kind::kConst);
  Result<PredicatePtr> false_pred = ParseAlgebraPredicate("false", db_);
  ASSERT_TRUE(false_pred.ok());
  EXPECT_FALSE((*false_pred)->const_value());

  Result<ExprPtr> restricted =
      ParseAlgebra("sigma[X.a is null]((X -[X.a=Y.b] Y))", db_);
  ASSERT_TRUE(restricted.ok());
  EXPECT_EQ((*restricted)->kind(), OpKind::kRestrict);
  // Parse of ToString(with_preds) is the identity on the restrict form.
  const std::string printed =
      (*restricted)->ToString(&db_.catalog(), /*with_preds=*/true);
  Result<ExprPtr> reparsed = ParseAlgebra(printed, db_);
  ASSERT_TRUE(reparsed.ok()) << printed;
  EXPECT_EQ((*reparsed)->Fingerprint(), (*restricted)->Fingerprint());
}

TEST_F(AlgebraParseTest, Errors) {
  EXPECT_FALSE(ParseAlgebra("", db_).ok());
  EXPECT_FALSE(ParseAlgebra("NOPE", db_).ok());             // unknown rel
  EXPECT_FALSE(ParseAlgebra("(X -[] Y)", db_).ok());        // empty pred
  EXPECT_FALSE(ParseAlgebra("(X -[X.a=Y.b] Y", db_).ok());  // unbalanced
  EXPECT_FALSE(ParseAlgebra("(X ~[X.a=Y.b] Y)", db_).ok());  // bad op
  EXPECT_FALSE(ParseAlgebra("(X -[X.q=Y.b] Y)", db_).ok());  // bad attr
  EXPECT_FALSE(ParseAlgebra("X Y", db_).ok());               // trailing
  EXPECT_FALSE(ParseAlgebraPredicate("X.a =", db_).ok());
  EXPECT_FALSE(ParseAlgebraPredicate("X.a is notnull", db_).ok());
}

// Round trip: for random implementing trees, parsing the printed form
// (with predicates) reproduces the tree exactly.
TEST(AlgebraParseRoundTripTest, ParseOfToStringIsIdentity) {
  Rng rng(1301);
  for (int trial = 0; trial < 30; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(4));
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ExprPtr tree = RandomIt(q.graph, *q.db, &rng);
    ASSERT_NE(tree, nullptr);
    std::string text = tree->ToString(&q.db->catalog(), /*with_preds=*/true);
    Result<ExprPtr> reparsed = ParseAlgebra(text, *q.db);
    ASSERT_TRUE(reparsed.ok())
        << text << " -> " << reparsed.status().ToString();
    EXPECT_TRUE(ExprEquals(tree, *reparsed)) << text;
  }
}

}  // namespace
}  // namespace fro
