// Full-stack integration fuzzing: random nested databases and random
// Section 5 query texts driven through lexer -> parser -> translator ->
// reorderability audit -> optimizer -> BOTH executors, asserting
// agreement everywhere.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/it_enum.h"
#include "exec/build.h"
#include "lang/lang.h"
#include "testing/nested_gen.h"

namespace fro {
namespace {

TEST(IntegrationTest, FullStackAgreesOnRandomNestedQueries) {
  Rng rng(2101);
  int executed = 0;
  for (int trial = 0; trial < 60; ++trial) {
    RandomNestedOptions options;
    options.num_types = 2 + static_cast<int>(rng.Uniform(3));
    GeneratedNestedQuery g = GenerateRandomNestedQuery(options, &rng);

    RunOptions no_opt;
    no_opt.optimize = false;
    Result<QueryRunResult> plain = RunQuery(g.db, g.query_text, no_opt);
    ASSERT_TRUE(plain.ok())
        << g.query_text << " -> " << plain.status().ToString();
    Result<QueryRunResult> optimized = RunQuery(g.db, g.query_text);
    ASSERT_TRUE(optimized.ok()) << g.query_text;

    // Translation invariant (Section 5.3): always freely reorderable.
    EXPECT_TRUE(plain->translation.audit.freely_reorderable())
        << g.query_text;

    // Optimized and unoptimized agree.
    EXPECT_TRUE(BagEquals(plain->relation, optimized->relation))
        << g.query_text;

    // The Volcano executor agrees with the materializing evaluator on
    // the optimized plan.
    Relation pipelined = ExecutePipelined(optimized->optimize.plan,
                                          *optimized->translation.db);
    EXPECT_TRUE(BagEquals(pipelined, optimized->relation)) << g.query_text;

    // And every implementing tree of the translated block agrees with
    // the executed result (Theorem 1, end to end). Bound the tree count
    // to keep the test fast.
    const QueryGraph& graph = plain->translation.graph;
    if (CountIts(graph) <= 60) {
      // Compare the cores only (restrictions commute; compare via the
      // unrestricted trees against the translator's own tree core).
      ExprPtr translated = plain->translation.query;
      PredicatePtr filter;
      if (translated->kind() == OpKind::kRestrict) {
        filter = translated->pred();
      }
      for (const ExprPtr& tree :
           EnumerateIts(graph, *plain->translation.db, 60)) {
        ExprPtr candidate =
            filter != nullptr ? Expr::Restrict(tree, filter) : tree;
        EXPECT_TRUE(BagEquals(Eval(candidate, *plain->translation.db),
                              plain->relation))
            << g.query_text << "\n tree: " << tree->ToString();
      }
    }
    ++executed;
  }
  EXPECT_EQ(executed, 60);
}

TEST(IntegrationTest, GeneratedQueriesAreDeterministic) {
  RandomNestedOptions options;
  Rng a(7);
  Rng b(7);
  GeneratedNestedQuery q1 = GenerateRandomNestedQuery(options, &a);
  GeneratedNestedQuery q2 = GenerateRandomNestedQuery(options, &b);
  EXPECT_EQ(q1.query_text, q2.query_text);
  Result<QueryRunResult> r1 = RunQuery(q1.db, q1.query_text);
  Result<QueryRunResult> r2 = RunQuery(q2.db, q2.query_text);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(BagEquals(r1->relation, r2->relation));
}

TEST(IntegrationTest, StressManySmallQueries) {
  Rng rng(2102);
  for (int trial = 0; trial < 150; ++trial) {
    RandomNestedOptions options;
    options.num_types = 2;
    options.rows_max = 4;
    GeneratedNestedQuery g = GenerateRandomNestedQuery(options, &rng);
    Result<QueryRunResult> run = RunQuery(g.db, g.query_text);
    ASSERT_TRUE(run.ok()) << g.query_text;
  }
}

}  // namespace
}  // namespace fro
