// The wcoj subsystem: trie indexes and cursors, the leapfrog triejoin
// against the reference evaluator (nulls, duplicates, mixed numeric
// types), engine stats parity, trie caching through the IndexManager,
// and the optimizer-side variable order and core collapse.

#include <gtest/gtest.h>

#include <vector>

#include "algebra/eval.h"
#include "common/rng.h"
#include "exec/build.h"
#include "optimizer/cost.h"
#include "optimizer/optimizer.h"
#include "optimizer/wcoj_rewrite.h"
#include "relational/index_manager.h"
#include "testing/datagen.h"
#include "wcoj/leapfrog.h"
#include "wcoj/trie_index.h"

namespace fro {
namespace {

// Finds the first kMultiwayJoin node in a plan, or null.
const Expr* FindMultiway(const ExprPtr& expr) {
  if (expr == nullptr) return nullptr;
  if (expr->is_multiway()) return expr.get();
  if (expr->kind() == OpKind::kLeaf) return nullptr;
  if (const Expr* hit = FindMultiway(expr->left())) return hit;
  return FindMultiway(expr->right());
}

// --- TrieIndex ---------------------------------------------------------

TEST(TrieIndexTest, ExcludesNullKeysKeepsOriginalValues) {
  Database db;
  RelId r = *db.AddRelation("R", {"a", "b"});
  AttrId a = db.Attr("R", "a");
  db.AddRow(r, {Value::Int(1), Value::Int(10)});
  db.AddRow(r, {Value::Null(), Value::Int(20)});   // null key: excluded
  db.AddRow(r, {Value::Double(1.0), Value::Int(5)});
  db.AddRow(r, {Value::Int(0), Value::Null()});    // null NON-key: kept

  TrieIndex index(db.relation(r), {a});
  EXPECT_EQ(index.source_rows(), 4u);
  EXPECT_EQ(index.num_rows(), 3u);
  EXPECT_EQ(index.num_levels(), 1u);
  // Keys are normalized (int widened to double) and sorted; 1 and 1.0
  // share one key run while rows keep their original representation.
  EXPECT_EQ(index.key(0, 0), Value::Double(0));
  EXPECT_EQ(index.key(0, 1), index.key(0, 2));
  EXPECT_EQ(index.row(0).value(0), Value::Int(0));
}

TEST(TrieIndexTest, CursorWalksDistinctKeysAndSeeks) {
  Database db;
  RelId r = *db.AddRelation("R", {"a", "b"});
  db.AddRow(r, {Value::Int(0), Value::Int(1)});
  db.AddRow(r, {Value::Int(2), Value::Int(0)});
  db.AddRow(r, {Value::Int(2), Value::Int(0)});
  db.AddRow(r, {Value::Int(2), Value::Int(3)});
  db.AddRow(r, {Value::Int(5), Value::Int(9)});

  TrieIndex index(db.relation(r),
                  {db.Attr("R", "a"), db.Attr("R", "b")});
  TrieCursor cursor(&index);
  ASSERT_TRUE(cursor.Open());  // level 0: keys 0, 2, 5
  EXPECT_EQ(cursor.Key(), Value::Double(0));
  cursor.Next();
  EXPECT_EQ(cursor.Key(), Value::Double(2));
  EXPECT_EQ(cursor.CurrentRange().second - cursor.CurrentRange().first, 3u);

  ASSERT_TRUE(cursor.Open());  // level 1 under a=2: keys 0, 3
  EXPECT_EQ(cursor.Key(), Value::Double(0));
  EXPECT_EQ(cursor.CurrentRange().second - cursor.CurrentRange().first, 2u);
  cursor.SeekGeq(Value::Double(1));
  EXPECT_EQ(cursor.Key(), Value::Double(3));
  cursor.Next();
  EXPECT_TRUE(cursor.AtEnd());
  cursor.Up();

  cursor.SeekGeq(Value::Double(3));  // level 0 again
  EXPECT_EQ(cursor.Key(), Value::Double(5));
  cursor.Next();
  EXPECT_TRUE(cursor.AtEnd());
  EXPECT_GT(cursor.seeks(), 0u);
}

TEST(TrieIndexTest, BuildTrieIndexCachesUntilMutation) {
  Database db;
  RelId r = *db.AddRelation("R", {"a"});
  db.AddRow(r, {Value::Int(1)});
  std::vector<AttrId> levels = {db.Attr("R", "a")};

  IndexManager cache;
  std::unique_ptr<TrieIndex> owned;
  const TrieIndex* first = BuildTrieIndex(db, r, levels, &cache, &owned);
  EXPECT_EQ(owned, nullptr);
  const TrieIndex* again = BuildTrieIndex(db, r, levels, &cache, &owned);
  EXPECT_EQ(first, again);

  db.AddRow(r, {Value::Int(2)});  // bumps the generation
  const TrieIndex* rebuilt = BuildTrieIndex(db, r, levels, &cache, &owned);
  EXPECT_NE(rebuilt, first);
  EXPECT_EQ(rebuilt->num_rows(), 2u);

  // Without a cache the caller owns the trie.
  const TrieIndex* uncached = BuildTrieIndex(db, r, levels, nullptr, &owned);
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(uncached, owned.get());
}

// --- Leapfrog vs the reference evaluator -------------------------------

// Triangle query over R(a,b), S(c,d), T(e,f): R.b=S.c, S.d=T.e, T.f=R.a.
ExprPtr TriangleQuery(const Database& db) {
  ExprPtr r = Expr::Leaf(0, db);
  ExprPtr s = Expr::Leaf(1, db);
  ExprPtr t = Expr::Leaf(2, db);
  PredicatePtr rs = EqCols(db.Attr("R0", "a1"), db.Attr("R1", "a0"));
  PredicatePtr st = EqCols(db.Attr("R1", "a1"), db.Attr("R2", "a0"));
  PredicatePtr tr = EqCols(db.Attr("R2", "a1"), db.Attr("R0", "a0"));
  return Expr::Join(Expr::Join(r, s, rs), t, AndOf(st, tr));
}

// 4-cycle over four 2-attribute relations.
ExprPtr FourCycleQuery(const Database& db) {
  ExprPtr a = Expr::Leaf(0, db);
  ExprPtr b = Expr::Leaf(1, db);
  ExprPtr c = Expr::Leaf(2, db);
  ExprPtr d = Expr::Leaf(3, db);
  PredicatePtr ab = EqCols(db.Attr("R0", "a1"), db.Attr("R1", "a0"));
  PredicatePtr bc = EqCols(db.Attr("R1", "a1"), db.Attr("R2", "a0"));
  PredicatePtr cd = EqCols(db.Attr("R2", "a1"), db.Attr("R3", "a0"));
  PredicatePtr da = EqCols(db.Attr("R3", "a1"), db.Attr("R0", "a0"));
  return Expr::Join(Expr::Join(Expr::Join(a, b, ab), c, bc), d,
                    AndOf(cd, da));
}

void ExpectForcedMultiwayAgrees(const ExprPtr& query, const Database& db) {
  ExprPtr forced = ForceMultiwayJoins(query);
  ASSERT_NE(FindMultiway(forced), nullptr);
  Relation expected = Eval(query, db);

  IteratorPtr tuple_root = BuildIterator(forced, db);
  Relation tuple_out = Drain(tuple_root.get());
  EXPECT_TRUE(BagEquals(tuple_out, expected))
      << "tuple engine diverged from reference";

  BatchIteratorPtr batch_root = BuildBatchIterator(forced, db);
  Relation batch_out = DrainBatches(batch_root.get());
  EXPECT_TRUE(BagEquals(batch_out, expected))
      << "batch engine diverged from reference";

  // Both engines drive the same LeapfrogCore: counters must agree
  // exactly, not just results.
  ExecStats t = CollectPipelineStats(tuple_root.get());
  ExecStats b = CollectPipelineStats(batch_root.get());
  EXPECT_EQ(t.left_reads, b.left_reads);
  EXPECT_EQ(t.emitted, b.emitted);
  EXPECT_EQ(t.probes, b.probes);
  EXPECT_EQ(t.predicate_evals, b.predicate_evals);
}

TEST(LeapfrogTest, TriangleWithNullsAndDuplicates) {
  Database db;
  RelId r0 = *db.AddRelation("R0", {"a0", "a1"});
  RelId r1 = *db.AddRelation("R1", {"a0", "a1"});
  RelId r2 = *db.AddRelation("R2", {"a0", "a1"});
  db.AddRow(r0, {Value::Int(0), Value::Int(0)});
  db.AddRow(r0, {Value::Int(0), Value::Int(0)});  // duplicate
  db.AddRow(r0, {Value::Null(), Value::Int(1)});
  db.AddRow(r0, {Value::Int(1), Value::Null()});
  db.AddRow(r1, {Value::Int(0), Value::Int(0)});
  db.AddRow(r1, {Value::Double(0.0), Value::Int(1)});  // joins with Int 0
  db.AddRow(r1, {Value::Null(), Value::Null()});
  db.AddRow(r2, {Value::Int(0), Value::Int(0)});
  db.AddRow(r2, {Value::Int(1), Value::Int(0)});
  db.AddRow(r2, {Value::Int(1), Value::Null()});
  ExpectForcedMultiwayAgrees(TriangleQuery(db), db);
}

TEST(LeapfrogTest, RandomTrianglesMatchReference) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(DeriveSeed(0x7c03, seed));
    RandomRowsOptions rows;
    rows.rows_max = 8;
    rows.domain = 3;
    rows.null_prob = 0.3;
    rows.skew = 2;
    std::unique_ptr<Database> db = MakeRandomDatabase(3, 2, rows, &rng);
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectForcedMultiwayAgrees(TriangleQuery(*db), *db);
  }
}

TEST(LeapfrogTest, RandomFourCyclesMatchReference) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(DeriveSeed(0x4c9c, seed));
    RandomRowsOptions rows;
    rows.rows_max = 6;
    rows.domain = 3;
    rows.null_prob = 0.25;
    rows.skew = 1;
    std::unique_ptr<Database> db = MakeRandomDatabase(4, 2, rows, &rng);
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectForcedMultiwayAgrees(FourCycleQuery(*db), *db);
  }
}

TEST(LeapfrogTest, EmptyOperandYieldsEmptyResult) {
  Database db;
  RelId r0 = *db.AddRelation("R0", {"a0", "a1"});
  *db.AddRelation("R1", {"a0", "a1"});  // empty
  RelId r2 = *db.AddRelation("R2", {"a0", "a1"});
  db.AddRow(r0, {Value::Int(0), Value::Int(0)});
  db.AddRow(r2, {Value::Int(0), Value::Int(0)});
  ExprPtr forced = ForceMultiwayJoins(TriangleQuery(db));
  EXPECT_EQ(ExecutePipelined(forced, db).NumRows(), 0u);
  EXPECT_EQ(ExecuteBatched(forced, db).NumRows(), 0u);
}

// --- Optimizer side ----------------------------------------------------

TEST(WcojRewriteTest, ForceCollapsesWholeJoinRegion) {
  Database db;
  RelId r0 = *db.AddRelation("R0", {"a0", "a1"});
  RelId r1 = *db.AddRelation("R1", {"a0", "a1"});
  RelId r2 = *db.AddRelation("R2", {"a0", "a1"});
  db.AddRow(r0, {Value::Int(0), Value::Int(0)});
  db.AddRow(r1, {Value::Int(0), Value::Int(0)});
  db.AddRow(r2, {Value::Int(0), Value::Int(0)});
  ExprPtr forced = ForceMultiwayJoins(TriangleQuery(db));
  ASSERT_TRUE(forced->is_multiway());
  EXPECT_EQ(forced->mj_children().size(), 3u);
  EXPECT_FALSE(forced->mj_var_order().empty());
}

TEST(WcojRewriteTest, ChooseVarOrderIsDeterministicAndComplete) {
  Database db;
  *db.AddRelation("R0", {"a0", "a1"});
  *db.AddRelation("R1", {"a0", "a1"});
  *db.AddRelation("R2", {"a0", "a1"});
  std::vector<ExprPtr> operands = {Expr::Leaf(0, db), Expr::Leaf(1, db),
                                   Expr::Leaf(2, db)};
  PredicatePtr pred = AndOf(
      AndOf(EqCols(db.Attr("R0", "a1"), db.Attr("R1", "a0")),
            EqCols(db.Attr("R1", "a1"), db.Attr("R2", "a0"))),
      EqCols(db.Attr("R2", "a1"), db.Attr("R0", "a0")));
  CostModel cost(db, CostKind::kCout);
  std::vector<AttrId> order =
      ChooseVarOrder(operands, pred, &cost.estimator());
  // The triangle has exactly three inter-operand equality classes.
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(order, ChooseVarOrder(operands, pred, &cost.estimator()));
  // Heuristic path (no estimator) is deterministic too.
  EXPECT_EQ(ChooseVarOrder(operands, pred, nullptr),
            ChooseVarOrder(operands, pred, nullptr));
}

TEST(WcojRewriteTest, AcyclicPlanIsNeverCollapsed) {
  Database db;
  RelId r0 = *db.AddRelation("R0", {"a0", "a1"});
  RelId r1 = *db.AddRelation("R1", {"a0", "a1"});
  RelId r2 = *db.AddRelation("R2", {"a0", "a1"});
  db.AddRow(r0, {Value::Int(0), Value::Int(0)});
  db.AddRow(r1, {Value::Int(0), Value::Int(0)});
  db.AddRow(r2, {Value::Int(0), Value::Int(0)});
  // Chain R0 - R1 - R2: no cycle, no core.
  ExprPtr chain = Expr::Join(
      Expr::Join(Expr::Leaf(0, db), Expr::Leaf(1, db),
                 EqCols(db.Attr("R0", "a1"), db.Attr("R1", "a0"))),
      Expr::Leaf(2, db),
      EqCols(db.Attr("R1", "a1"), db.Attr("R2", "a0")));
  CostModel cost(db, CostKind::kCout);
  WcojRewriteResult result = ApplyWcoj(chain, db, cost);
  EXPECT_EQ(result.cores_collapsed, 0);
  EXPECT_EQ(result.expr, chain);
}

TEST(WcojRewriteTest, SkewedTriangleCollapsesAndStaysCorrect) {
  // Heavy-hitter join keys: the estimated binary intermediate is
  // quadratic while the multiway plan only scans the operands, so the
  // cost gate accepts the collapse.
  Database db;
  RelId r0 = *db.AddRelation("R0", {"a0", "a1"});
  RelId r1 = *db.AddRelation("R1", {"a0", "a1"});
  RelId r2 = *db.AddRelation("R2", {"a0", "a1"});
  for (int i = 0; i < 8; ++i) {
    db.AddRow(r0, {Value::Int(0), Value::Int(0)});
    db.AddRow(r1, {Value::Int(0), Value::Int(0)});
    db.AddRow(r2, {Value::Int(0), Value::Int(0)});
  }
  ExprPtr query = TriangleQuery(db);
  CostModel cost(db, CostKind::kCout);
  WcojRewriteResult result = ApplyWcoj(query, db, cost);
  EXPECT_EQ(result.cores_collapsed, 1);
  EXPECT_NE(FindMultiway(result.expr), nullptr);
  EXPECT_TRUE(BagEquals(Eval(result.expr, db), Eval(query, db)));
}

TEST(WcojRewriteTest, OptimizeReportsMultiwayCollapse) {
  Database db;
  RelId r0 = *db.AddRelation("R0", {"a0", "a1"});
  RelId r1 = *db.AddRelation("R1", {"a0", "a1"});
  RelId r2 = *db.AddRelation("R2", {"a0", "a1"});
  for (int i = 0; i < 8; ++i) {
    db.AddRow(r0, {Value::Int(0), Value::Int(0)});
    db.AddRow(r1, {Value::Int(0), Value::Int(0)});
    db.AddRow(r2, {Value::Int(0), Value::Int(0)});
  }
  ExprPtr query = TriangleQuery(db);
  Result<OptimizeOutcome> outcome = Optimize(query, db);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->PassApplications("wcoj"), 1);
  EXPECT_TRUE(BagEquals(Eval(outcome->plan, db), Eval(query, db)));

  // Dropping the pass keeps the plan binary.
  OptimizeOptions off;
  off.pipeline = RewritePipeline::Default().Without("wcoj");
  Result<OptimizeOutcome> binary = Optimize(query, db, off);
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(binary->PassApplications("wcoj"), 0);
  EXPECT_EQ(FindMultiway(binary->plan), nullptr);
}

}  // namespace
}  // namespace fro
