#include <gtest/gtest.h>

#include "relational/relation.h"

namespace fro {
namespace {

Relation MakeRel(std::vector<AttrId> cols,
                 std::vector<std::vector<int>> rows) {
  Relation rel((Scheme(std::move(cols))));
  for (const auto& row : rows) {
    std::vector<Value> values;
    for (int v : row) values.push_back(Value::Int(v));
    rel.AddRow(Tuple(std::move(values)));
  }
  return rel;
}

TEST(TupleTest, ConcatAndNulls) {
  Tuple a({Value::Int(1)});
  Tuple b({Value::Int(2), Value::Int(3)});
  Tuple c = a.Concat(b);
  EXPECT_EQ(c.arity(), 3u);
  EXPECT_EQ(c.value(2).AsInt(), 3);
  Tuple n = Tuple::Nulls(2);
  EXPECT_TRUE(n.value(0).is_null());
  EXPECT_TRUE(n.value(1).is_null());
}

TEST(RelationTest, ArityChecked) {
  Relation rel((Scheme({1, 2})));
  EXPECT_DEATH(rel.AddRow(Tuple({Value::Int(1)})), "arity");
}

TEST(RelationTest, PadToScheme) {
  Relation rel = MakeRel({1}, {{5}});
  Relation padded = PadToScheme(rel, Scheme({2, 1}));
  ASSERT_EQ(padded.NumRows(), 1u);
  EXPECT_TRUE(padded.row(0).value(0).is_null());
  EXPECT_EQ(padded.row(0).value(1).AsInt(), 5);
}

TEST(RelationTest, BagUnionPadded) {
  Relation a = MakeRel({1}, {{5}});
  Relation b = MakeRel({2}, {{6}, {7}});
  Relation u = BagUnionPadded(a, b);
  EXPECT_EQ(u.NumRows(), 3u);
  EXPECT_EQ(u.scheme().size(), 2u);
}

TEST(RelationTest, BagEqualsIgnoresColumnAndRowOrder) {
  Relation a = MakeRel({1, 2}, {{1, 2}, {3, 4}});
  Relation b = MakeRel({2, 1}, {{4, 3}, {2, 1}});
  EXPECT_TRUE(BagEquals(a, b));
}

TEST(RelationTest, BagEqualsIsMultisetSensitive) {
  Relation a = MakeRel({1}, {{1}, {1}});
  Relation b = MakeRel({1}, {{1}});
  EXPECT_FALSE(BagEquals(a, b));
  Relation c = MakeRel({1}, {{1}, {1}});
  EXPECT_TRUE(BagEquals(a, c));
}

TEST(RelationTest, BagEqualsPadsNarrowerScheme) {
  // A relation with an extra all-null column equals the narrower one under
  // the paper's padding convention.
  Relation narrow = MakeRel({1}, {{5}});
  Relation wide((Scheme({1, 2})));
  wide.AddRow(Tuple({Value::Int(5), Value::Null()}));
  EXPECT_TRUE(BagEquals(narrow, wide));
}

TEST(RelationTest, BagEqualsDistinguishesValues) {
  Relation a = MakeRel({1}, {{1}});
  Relation b = MakeRel({1}, {{2}});
  EXPECT_FALSE(BagEquals(a, b));
}

TEST(RelationTest, EmptyRelationsEqual) {
  Relation a((Scheme({1})));
  Relation b((Scheme({2})));
  EXPECT_TRUE(BagEquals(a, b));  // both empty, padded schemes
}

TEST(RelationTest, CanonicalStringMatchesBagEquality) {
  Relation a = MakeRel({1, 2}, {{1, 2}, {3, 4}});
  Relation b = MakeRel({2, 1}, {{4, 3}, {2, 1}});
  EXPECT_EQ(CanonicalString(a), CanonicalString(b));
  Relation c = MakeRel({1, 2}, {{1, 2}});
  EXPECT_NE(CanonicalString(a), CanonicalString(c));
}

}  // namespace
}  // namespace fro
