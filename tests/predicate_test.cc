#include <gtest/gtest.h>

#include "relational/predicate.h"

namespace fro {
namespace {

// Attributes 0 and 1 on a two-column scheme.
const Scheme& TwoCols() {
  static const Scheme* scheme = new Scheme({0, 1});
  return *scheme;
}

Tuple Row(Value a, Value b) { return Tuple({std::move(a), std::move(b)}); }

TEST(PredicateTest, ConstEval) {
  EXPECT_EQ(Predicate::Const(true)->Eval(Row(Value::Null(), Value::Null()),
                                         TwoCols()),
            TriBool::kTrue);
  EXPECT_EQ(Predicate::Const(false)->Eval(Row(Value::Null(), Value::Null()),
                                          TwoCols()),
            TriBool::kFalse);
}

TEST(PredicateTest, ComparisonThreeValued) {
  PredicatePtr eq = EqCols(0, 1);
  EXPECT_EQ(eq->Eval(Row(Value::Int(1), Value::Int(1)), TwoCols()),
            TriBool::kTrue);
  EXPECT_EQ(eq->Eval(Row(Value::Int(1), Value::Int(2)), TwoCols()),
            TriBool::kFalse);
  EXPECT_EQ(eq->Eval(Row(Value::Null(), Value::Int(2)), TwoCols()),
            TriBool::kUnknown);
}

TEST(PredicateTest, ComparisonAgainstLiteral) {
  PredicatePtr p = CmpLit(CmpOp::kGt, 0, Value::Int(10));
  EXPECT_EQ(p->Eval(Row(Value::Int(11), Value::Null()), TwoCols()),
            TriBool::kTrue);
  EXPECT_EQ(p->Eval(Row(Value::Int(9), Value::Null()), TwoCols()),
            TriBool::kFalse);
  EXPECT_EQ(p->Eval(Row(Value::Null(), Value::Null()), TwoCols()),
            TriBool::kUnknown);
}

TEST(PredicateTest, AndOrNotKleene) {
  PredicatePtr eq = EqCols(0, 1);                      // U on null
  PredicatePtr lit = CmpLit(CmpOp::kEq, 1, Value::Int(2));
  Tuple null_two = Row(Value::Null(), Value::Int(2));  // eq: U, lit: T
  EXPECT_EQ(Predicate::And({eq, lit})->Eval(null_two, TwoCols()),
            TriBool::kUnknown);
  EXPECT_EQ(Predicate::Or({eq, lit})->Eval(null_two, TwoCols()),
            TriBool::kTrue);
  EXPECT_EQ(Predicate::Not(eq)->Eval(null_two, TwoCols()),
            TriBool::kUnknown);
}

TEST(PredicateTest, IsNull) {
  PredicatePtr p = Predicate::IsNull(Operand::Column(0));
  EXPECT_EQ(p->Eval(Row(Value::Null(), Value::Int(1)), TwoCols()),
            TriBool::kTrue);
  EXPECT_EQ(p->Eval(Row(Value::Int(0), Value::Int(1)), TwoCols()),
            TriBool::kFalse);
}

TEST(PredicateTest, References) {
  PredicatePtr p = Predicate::And(
      {EqCols(0, 1), CmpLit(CmpOp::kLt, 1, Value::Int(5))});
  EXPECT_EQ(p->References().ids(), (std::vector<AttrId>{0, 1}));
}

TEST(PredicateTest, ConjunctsSplitTopLevelAnd) {
  PredicatePtr a = EqCols(0, 1);
  PredicatePtr b = CmpLit(CmpOp::kLt, 0, Value::Int(5));
  PredicatePtr both = Predicate::And({a, b});
  EXPECT_EQ(both->Conjuncts(both).size(), 2u);
  EXPECT_EQ(a->Conjuncts(a).size(), 1u);
  PredicatePtr truth = Predicate::Const(true);
  EXPECT_TRUE(truth->Conjuncts(truth).empty());
}

TEST(PredicateTest, AndFlattensNested) {
  PredicatePtr a = EqCols(0, 1);
  PredicatePtr b = CmpLit(CmpOp::kLt, 0, Value::Int(5));
  PredicatePtr c = Predicate::IsNull(Operand::Column(1));
  PredicatePtr nested = Predicate::And({Predicate::And({a, b}), c});
  EXPECT_EQ(nested->Conjuncts(nested).size(), 3u);
}

TEST(PredicateTest, AndOfSingletonIsIdentity) {
  PredicatePtr a = EqCols(0, 1);
  EXPECT_EQ(Predicate::And({a}), a);
  EXPECT_EQ(AndOf(nullptr, a), a);
  EXPECT_EQ(AndOf(a, nullptr), a);
}

TEST(PredicateTest, ToStringReadable) {
  PredicatePtr p = Predicate::Or(
      {EqCols(0, 1), Predicate::IsNull(Operand::Column(0))});
  EXPECT_EQ(p->ToString(nullptr), "(#0=#1 or #0 is null)");
}

// ---- Strength analysis -------------------------------------------------

TEST(StrengthTest, EqualityIsStrongBothSides) {
  PredicatePtr eq = EqCols(0, 1);
  EXPECT_TRUE(eq->IsStrongWrt(AttrSet::Of({0})));
  EXPECT_TRUE(eq->IsStrongWrt(AttrSet::Of({1})));
  EXPECT_TRUE(eq->IsStrongWrt(AttrSet::Of({0, 1})));
}

TEST(StrengthTest, NotStrongWrtUnreferencedAttrs) {
  PredicatePtr eq = EqCols(0, 1);
  // Nulling attribute 9 doesn't prevent the predicate from being true.
  EXPECT_FALSE(eq->IsStrongWrt(AttrSet::Of({9})));
  EXPECT_FALSE(eq->IsStrongWrt(AttrSet()));
}

TEST(StrengthTest, OrIsNullIsWeak) {
  // Example 3's predicate shape: (a = b OR a IS NULL) is not strong wrt a.
  PredicatePtr p = Predicate::Or(
      {EqCols(0, 1), Predicate::IsNull(Operand::Column(0))});
  EXPECT_FALSE(p->IsStrongWrt(AttrSet::Of({0})));
  // Not strong w.r.t. b either: a tuple with BOTH attributes null has b
  // null and still satisfies the IS NULL disjunct. (Strength quantifies
  // over all tuples null on the given set, not only those.)
  EXPECT_FALSE(p->IsStrongWrt(AttrSet::Of({1})));
  // The disjunction that pins the other side non-null IS strong wrt b:
  // (a = b OR (a IS NULL AND NOT(b IS NULL))).
  PredicatePtr pinned = Predicate::Or(
      {EqCols(0, 1),
       Predicate::And(
           {Predicate::IsNull(Operand::Column(0)),
            Predicate::Not(Predicate::IsNull(Operand::Column(1)))})});
  EXPECT_TRUE(pinned->IsStrongWrt(AttrSet::Of({1})));
  EXPECT_FALSE(pinned->IsStrongWrt(AttrSet::Of({0})));
}

TEST(StrengthTest, IsNullAloneIsAntiStrong) {
  PredicatePtr p = Predicate::IsNull(Operand::Column(0));
  EXPECT_FALSE(p->IsStrongWrt(AttrSet::Of({0})));
}

TEST(StrengthTest, NotOfEqualityIsStrong) {
  // NOT(a = b) on a null a evaluates to NOT(unknown) = unknown: never true.
  PredicatePtr p = Predicate::Not(EqCols(0, 1));
  EXPECT_TRUE(p->IsStrongWrt(AttrSet::Of({0})));
}

TEST(StrengthTest, NotIsNullIsStrong) {
  // NOT(a IS NULL) is false when a is null: strong.
  PredicatePtr p = Predicate::Not(Predicate::IsNull(Operand::Column(0)));
  EXPECT_TRUE(p->IsStrongWrt(AttrSet::Of({0})));
}

TEST(StrengthTest, ConjunctionStrongIfAnyConjunctStrong) {
  PredicatePtr p = Predicate::And(
      {Predicate::IsNull(Operand::Column(0)), EqCols(0, 1)});
  EXPECT_TRUE(p->IsStrongWrt(AttrSet::Of({0})));
}

TEST(StrengthTest, DisjunctionNeedsAllBranchesStrong) {
  PredicatePtr strong = Predicate::Or(
      {EqCols(0, 1), CmpCols(CmpOp::kLt, 0, 1)});
  EXPECT_TRUE(strong->IsStrongWrt(AttrSet::Of({0})));
  PredicatePtr weak = Predicate::Or(
      {EqCols(0, 1), Predicate::Const(true)});
  EXPECT_FALSE(weak->IsStrongWrt(AttrSet::Of({0})));
}

TEST(StrengthTest, ConstFalseIsVacuouslyStrong) {
  EXPECT_TRUE(Predicate::Const(false)->IsStrongWrt(AttrSet()));
  EXPECT_FALSE(Predicate::Const(true)->IsStrongWrt(AttrSet::Of({0})));
}

TEST(StrengthTest, NullLiteralComparisonIsStrong) {
  // a = NULL is always unknown: never true, hence strong wrt anything.
  PredicatePtr p = Predicate::Cmp(CmpOp::kEq, Operand::Column(0),
                                  Operand::Literal(Value::Null()));
  EXPECT_TRUE(p->IsStrongWrt(AttrSet()));
}

TEST(StrengthTest, LiteralOnlyComparisonEvaluatedExactly) {
  PredicatePtr true_cmp = Predicate::Cmp(CmpOp::kLt,
                                         Operand::Literal(Value::Int(1)),
                                         Operand::Literal(Value::Int(2)));
  EXPECT_FALSE(true_cmp->IsStrongWrt(AttrSet::Of({0})));
  PredicatePtr false_cmp = Predicate::Cmp(CmpOp::kGt,
                                          Operand::Literal(Value::Int(1)),
                                          Operand::Literal(Value::Int(2)));
  EXPECT_TRUE(false_cmp->IsStrongWrt(AttrSet::Of({0})));
}

// Cross-validation: structural strength analysis must agree with brute
// force over a small domain.
TEST(StrengthTest, AgreesWithBruteForceOnSmallDomain) {
  std::vector<PredicatePtr> predicates = {
      EqCols(0, 1),
      CmpCols(CmpOp::kLt, 0, 1),
      Predicate::Or({EqCols(0, 1), Predicate::IsNull(Operand::Column(0))}),
      Predicate::Or({EqCols(0, 1), Predicate::IsNull(Operand::Column(1))}),
      Predicate::And({EqCols(0, 1), Predicate::IsNull(Operand::Column(1))}),
      Predicate::Not(EqCols(0, 1)),
      Predicate::Not(Predicate::IsNull(Operand::Column(0))),
      CmpLit(CmpOp::kEq, 0, Value::Int(1)),
  };
  std::vector<Value> domain = {Value::Int(0), Value::Int(1), Value::Int(2)};
  for (const PredicatePtr& p : predicates) {
    for (AttrSet nulled : {AttrSet::Of({0}), AttrSet::Of({1}),
                           AttrSet::Of({0, 1})}) {
      // Brute force: enumerate all rows with `nulled` attrs null.
      bool can_be_true = false;
      for (const Value& a : domain) {
        for (const Value& b : domain) {
          Value va = nulled.Contains(0) ? Value::Null() : a;
          Value vb = nulled.Contains(1) ? Value::Null() : b;
          if (IsTrue(p->Eval(Row(va, vb), TwoCols()))) can_be_true = true;
        }
      }
      if (p->IsStrongWrt(nulled)) {
        // Strength claims are exact: never true on the nulled rows.
        EXPECT_FALSE(can_be_true)
            << p->ToString(nullptr) << " claimed strong but can be true";
      }
    }
  }
}

}  // namespace
}  // namespace fro
