#include <gtest/gtest.h>

#include "relational/pretty.h"
#include "testing/datagen.h"

namespace fro {
namespace {

TEST(PrettyTest, AlignedTableWithNulls) {
  auto db = MakeDeptEmpDatabase();
  PrettyOptions options;
  options.null_text = "-";
  std::string table =
      PrettyTable(db->relation(db->Rel("DEPT")), &db->catalog(), options);
  // Header, separator, three rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 5);
  EXPECT_NE(table.find("DEPT.dname"), std::string::npos);
  EXPECT_NE(table.find("Research"), std::string::npos);
  // Separator line uses -+- junctions.
  EXPECT_NE(table.find("-+-"), std::string::npos);
}

TEST(PrettyTest, CanonicalSortsRows) {
  Database db;
  RelId r = *db.AddRelation("R", {"a"});
  db.AddRow(r, {Value::Int(3)});
  db.AddRow(r, {Value::Int(1)});
  db.AddRow(r, {Value::Int(2)});
  std::string table = PrettyTable(db.relation(r), &db.catalog());
  size_t p1 = table.find("1");
  size_t p2 = table.find("2", p1 + 1);
  size_t p3 = table.find("3", p2 + 1);
  EXPECT_NE(p1, std::string::npos);
  EXPECT_NE(p2, std::string::npos);
  EXPECT_NE(p3, std::string::npos);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
}

TEST(PrettyTest, RowCapSummarizesRemainder) {
  Database db;
  RelId r = *db.AddRelation("R", {"a"});
  for (int i = 0; i < 10; ++i) db.AddRow(r, {Value::Int(i)});
  PrettyOptions options;
  options.max_rows = 3;
  std::string table = PrettyTable(db.relation(r), &db.catalog(), options);
  EXPECT_NE(table.find("... (7 more)"), std::string::npos);
}

TEST(PrettyTest, NullMarkerDefaultIsSingleWidth) {
  Database db;
  RelId r = *db.AddRelation("R", {"ab"});
  db.AddRow(r, {Value::Null()});
  db.AddRow(r, {Value::Int(12)});
  std::string table = PrettyTable(db.relation(r), &db.catalog());
  // All data lines have the same display width as the header line.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < table.size()) {
    size_t end = table.find('\n', start);
    lines.push_back(table.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_GE(lines.size(), 4u);
  // Compare display widths (the null marker is multi-byte UTF-8).
  auto width = [](const std::string& s) {
    size_t w = 0;
    for (size_t i = 0; i < s.size();) {
      unsigned char c = static_cast<unsigned char>(s[i]);
      i += c < 0x80 ? 1 : c < 0xE0 ? 2 : c < 0xF0 ? 3 : 4;
      ++w;
    }
    return w;
  };
  EXPECT_EQ(width(lines[0]), width(lines[2]));
  EXPECT_EQ(width(lines[0]), width(lines[3]));
}

TEST(PrettyTest, EmptyRelation) {
  Database db;
  RelId r = *db.AddRelation("R", {"a", "b"});
  std::string table = PrettyTable(db.relation(r), &db.catalog());
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 2);  // header+sep
}

}  // namespace
}  // namespace fro
