// Translation tests: Section 5.2's outerjoin reformulation and the
// Section 5.3 free-reorderability observation, on the paper's own
// example queries.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "graph/nice.h"
#include "lang/lang.h"
#include "lang/parser.h"
#include "lang/translate.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

TranslationResult MustTranslate(const NestedDb& db, const std::string& text) {
  Result<SelectQuery> ast = ParseQuery(text);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  Result<TranslationResult> translated = TranslateQuery(db, *ast);
  EXPECT_TRUE(translated.ok()) << translated.status().ToString();
  return std::move(*translated);
}

TEST(ModelTest, TypeAndEntityBasics) {
  NestedDb db = MakeCompanyNestedDb();
  const EntityType* emp = db.FindType("EMPLOYEE");
  ASSERT_NE(emp, nullptr);
  EXPECT_EQ(emp->FieldIndex("ChildName"), 2);
  EXPECT_EQ(emp->FieldIndex("nope"), -1);
  EXPECT_EQ(db.Rows("EMPLOYEE").size(), 4u);
  EXPECT_EQ(db.Rows("DEPARTMENT").size(), 3u);
  EXPECT_EQ(db.FindType("GHOST"), nullptr);
  // Duplicate type definition fails.
  NestedDb db2;
  ASSERT_TRUE(db2.DefineType("T", {}).ok());
  EXPECT_FALSE(db2.DefineType("T", {}).ok());
  // Field-count mismatch fails.
  EXPECT_FALSE(db2.AddEntity("T", {FieldValue::Scalar(Value::Int(1))}).ok());
  EXPECT_FALSE(db2.AddEntity("U", {}).ok());
}

TEST(TranslateTest, UnnestBecomesOuterjoin) {
  NestedDb db = MakeCompanyNestedDb();
  TranslationResult t = MustTranslate(db, "Select All From EMPLOYEE*ChildName");
  // Two relations: EMPLOYEE and the ValueOfChildName virtual relation.
  EXPECT_EQ(t.db->num_relations(), 2u);
  ASSERT_EQ(t.graph.num_edges(), 1);
  EXPECT_TRUE(t.graph.edge(0).directed);
  // Preserved: EMPLOYEE; null-supplied: the values.
  EXPECT_EQ(t.db->catalog().RelationName(
                t.graph.node_rel(t.graph.edge(0).u)),
            "EMPLOYEE");
  EXPECT_TRUE(t.audit.freely_reorderable());
  // Evaluation: 4 employees; Ana has 2 children -> 5 rows, childless Bo
  // padded with null ChildName.
  Relation out = Eval(t.query, *t.db);
  EXPECT_EQ(out.NumRows(), 5u);
  AttrId child = t.db->Attr("EMPLOYEE_ChildName", "ChildName");
  size_t padded = 0;
  for (size_t i = 0; i < out.NumRows(); ++i) {
    if (out.ValueOf(i, child).is_null()) ++padded;
  }
  EXPECT_EQ(padded, 1u);
}

TEST(TranslateTest, LinkBecomesOuterjoin) {
  NestedDb db = MakeCompanyNestedDb();
  TranslationResult t =
      MustTranslate(db, "Select All From DEPARTMENT-->Audit");
  EXPECT_EQ(t.db->num_relations(), 2u);
  Relation out = Eval(t.query, *t.db);
  // 3 departments; dept 3 has no audit -> padded, not dropped.
  EXPECT_EQ(out.NumRows(), 3u);
  AttrId title = t.db->Attr("DEPARTMENT_Audit", "Title");
  size_t padded = 0;
  for (size_t i = 0; i < out.NumRows(); ++i) {
    if (out.ValueOf(i, title).is_null()) ++padded;
  }
  EXPECT_EQ(padded, 1u);
}

TEST(TranslateTest, PaperProsecutorQueryShape) {
  // The paper's Section 5.1 example: employees' children joined with the
  // department info, manager attributes, and audit report.
  NestedDb db = MakeCompanyNestedDb();
  TranslationResult t = MustTranslate(
      db,
      "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit "
      "Where EMPLOYEE.D# = DEPARTMENT.D# and "
      "DEPARTMENT.Location = 'Zurich' and EMPLOYEE.Rank > 10");
  // Relations: EMPLOYEE, EMPLOYEE_ChildName, DEPARTMENT,
  // DEPARTMENT_Manager, DEPARTMENT_Audit.
  EXPECT_EQ(t.db->num_relations(), 5u);
  // Graph: join edge EMPLOYEE--DEPARTMENT; three outerjoin edges outward.
  int join_edges = 0, oj_edges = 0;
  for (const GraphEdge& e : t.graph.edges()) {
    e.directed ? ++oj_edges : ++join_edges;
  }
  EXPECT_EQ(join_edges, 1);
  EXPECT_EQ(oj_edges, 3);
  NiceCheck nice = CheckNice(t.graph);
  EXPECT_TRUE(nice.nice) << nice.violation;
  EXPECT_TRUE(t.audit.freely_reorderable());
  // Restrictions became a top-level Restrict node.
  EXPECT_EQ(t.query->kind(), OpKind::kRestrict);

  // Semantics: Zurich departments are 1 and 3. Employees with rank > 10
  // in those: Ana (dept 1, rank 12). Ana has two children -> 2 rows.
  Relation out = Eval(t.query, *t.db);
  EXPECT_EQ(out.NumRows(), 2u);
}

TEST(TranslateTest, AuditChainFieldResolvedOnBaseEntity) {
  // DEPARTMENT-->Manager-->Audit: Audit is a DEPARTMENT field (not an
  // EMPLOYEE field), so the chain search must fall back to the base.
  NestedDb db = MakeCompanyNestedDb();
  TranslationResult t =
      MustTranslate(db, "Select All From DEPARTMENT-->Manager-->Audit");
  // Both outerjoin edges hang off DEPARTMENT.
  int from_department = 0;
  for (const GraphEdge& e : t.graph.edges()) {
    if (t.db->catalog().RelationName(t.graph.node_rel(e.u)) == "DEPARTMENT") {
      ++from_department;
    }
  }
  EXPECT_EQ(from_department, 2);
}

TEST(TranslateTest, ChainedLinkThenUnnest) {
  // DEPARTMENT-->Manager*ChildName: ChildName resolves on the linked
  // EMPLOYEE, producing a two-step outerjoin chain.
  NestedDb db = MakeCompanyNestedDb();
  TranslationResult t =
      MustTranslate(db, "Select All From DEPARTMENT-->Manager*ChildName");
  ASSERT_EQ(t.graph.num_edges(), 2);
  // One edge DEPARTMENT -> DEPARTMENT_Manager, one
  // DEPARTMENT_Manager -> DEPARTMENT_Manager_ChildName.
  const Catalog& catalog = t.db->catalog();
  std::set<std::string> edges;
  for (const GraphEdge& e : t.graph.edges()) {
    edges.insert(catalog.RelationName(t.graph.node_rel(e.u)) + ">" +
                 catalog.RelationName(t.graph.node_rel(e.v)));
  }
  EXPECT_TRUE(edges.count("DEPARTMENT>DEPARTMENT_Manager"));
  EXPECT_TRUE(edges.count("DEPARTMENT_Manager>DEPARTMENT_Manager_ChildName"));
  EXPECT_TRUE(t.audit.freely_reorderable());
  // 3 departments: dept 1 manager Ana (2 children) -> 2 rows; dept 2
  // manager Cy (1 child) -> 1 row; dept 3 manager Bo (childless) ->
  // 1 padded row. Total 4.
  EXPECT_EQ(Eval(t.query, *t.db).NumRows(), 4u);
}

TEST(TranslateTest, Errors) {
  NestedDb db = MakeCompanyNestedDb();
  auto translate = [&](const std::string& text) {
    Result<SelectQuery> ast = ParseQuery(text);
    EXPECT_TRUE(ast.ok());
    return TranslateQuery(db, *ast);
  };
  // Unknown type.
  EXPECT_FALSE(translate("Select All From GHOST").ok());
  // Unknown field in a chain.
  EXPECT_FALSE(translate("Select All From EMPLOYEE*Nope").ok());
  // Wrong field kind for the operator.
  EXPECT_FALSE(translate("Select All From EMPLOYEE->ChildName").ok());
  EXPECT_FALSE(translate("Select All From DEPARTMENT*Manager").ok());
  // Duplicate base variable.
  EXPECT_FALSE(translate("Select All From EMPLOYEE, EMPLOYEE").ok());
  // Where may not reference chain-introduced relations.
  EXPECT_FALSE(
      translate("Select All From EMPLOYEE*ChildName "
                "Where EMPLOYEE_ChildName.ChildName = 'Mia'")
          .ok());
  // Disconnected From items (no join predicate).
  EXPECT_FALSE(translate("Select All From EMPLOYEE, DEPARTMENT").ok());
  // Unknown Where attribute.
  EXPECT_FALSE(
      translate("Select All From EMPLOYEE Where EMPLOYEE.Nope = 1").ok());
}

TEST(RunQueryTest, QueretaroExampleEndToEnd) {
  // "returns at least one tuple for each employee in a Queretaro
  //  department. For Queretaro employees with children, one tuple is
  //  returned for each child; otherwise, a tuple with null ChildName is
  //  returned."
  NestedDb db = MakeCompanyNestedDb();
  Result<QueryRunResult> run = RunQuery(
      db,
      "Select All From EMPLOYEE*ChildName, DEPARTMENT "
      "Where EMPLOYEE.D# = DEPARTMENT.D# and "
      "DEPARTMENT.Location = 'Queretaro'");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Queretaro employees: Cy (one child) -> 1 row.
  EXPECT_EQ(run->relation.NumRows(), 1u);
  EXPECT_TRUE(run->translation.audit.freely_reorderable());
  EXPECT_TRUE(run->optimize.freely_reorderable);
}

TEST(RunQueryTest, OptimizedAndUnoptimizedAgree) {
  NestedDb db = MakeCompanyNestedDb();
  const std::string text =
      "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit "
      "Where EMPLOYEE.D# = DEPARTMENT.D#";
  RunOptions no_opt;
  no_opt.optimize = false;
  Result<QueryRunResult> plain = RunQuery(db, text, no_opt);
  Result<QueryRunResult> optimized = RunQuery(db, text);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(optimized.ok());
  EXPECT_TRUE(BagEquals(plain->relation, optimized->relation));
}

TEST(RunQueryTest, ChildlessEmployeePreserved) {
  // The motivating requirement: listing must keep entities with empty
  // repeating groups.
  NestedDb db = MakeCompanyNestedDb();
  Result<QueryRunResult> run =
      RunQuery(db, "Select All From EMPLOYEE*ChildName");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->relation.NumRows(), 5u);  // 4 employees, Ana twice
}

}  // namespace
}  // namespace fro
