// Section 4 simplification-rule tests: strong predicates above an
// outerjoin's null-supplied side convert the outerjoin to a join.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "algebra/simplify.h"
#include "common/rng.h"
#include "testing/datagen.h"

namespace fro {
namespace {

class SimplifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = *db_.AddRelation("X", {"a"});
    y_ = *db_.AddRelation("Y", {"b"});
    z_ = *db_.AddRelation("Z", {"c"});
    a_ = db_.Attr("X", "a");
    b_ = db_.Attr("Y", "b");
    c_ = db_.Attr("Z", "c");
    db_.AddRow(x_, {Value::Int(1)});
    db_.AddRow(x_, {Value::Int(2)});
    db_.AddRow(y_, {Value::Int(1)});
    db_.AddRow(z_, {Value::Int(1)});
  }

  ExprPtr X() { return Expr::Leaf(x_, db_); }
  ExprPtr Y() { return Expr::Leaf(y_, db_); }
  ExprPtr Z() { return Expr::Leaf(z_, db_); }

  Database db_;
  RelId x_, y_, z_;
  AttrId a_, b_, c_;
};

TEST_F(SimplifyTest, StrongRestrictionConvertsOuterjoin) {
  // sigma[b > 0](X -> Y): the restriction rejects padded tuples, so the
  // outerjoin may as well be a join.
  ExprPtr q = Expr::Restrict(Expr::OuterJoin(X(), Y(), EqCols(a_, b_)),
                             CmpLit(CmpOp::kGt, b_, Value::Int(0)));
  SimplifyResult result = SimplifyOuterjoins(q);
  EXPECT_EQ(result.outerjoins_converted, 1);
  EXPECT_EQ(result.expr->left()->kind(), OpKind::kJoin);
  // Equivalence on the data.
  EXPECT_TRUE(BagEquals(Eval(q, db_), Eval(result.expr, db_)));
}

TEST_F(SimplifyTest, RestrictionOnPreservedSideDoesNotConvert) {
  ExprPtr q = Expr::Restrict(Expr::OuterJoin(X(), Y(), EqCols(a_, b_)),
                             CmpLit(CmpOp::kGt, a_, Value::Int(0)));
  SimplifyResult result = SimplifyOuterjoins(q);
  EXPECT_EQ(result.outerjoins_converted, 0);
  EXPECT_EQ(result.expr->left()->kind(), OpKind::kOuterJoin);
}

TEST_F(SimplifyTest, NonStrongRestrictionDoesNotConvert) {
  // IS NULL keeps padded tuples: conversion would be wrong.
  ExprPtr q = Expr::Restrict(Expr::OuterJoin(X(), Y(), EqCols(a_, b_)),
                             Predicate::IsNull(Operand::Column(b_)));
  SimplifyResult result = SimplifyOuterjoins(q);
  EXPECT_EQ(result.outerjoins_converted, 0);
  // And indeed converting would change the result:
  ExprPtr converted = Expr::Restrict(Expr::Join(X(), Y(), EqCols(a_, b_)),
                                     Predicate::IsNull(Operand::Column(b_)));
  EXPECT_FALSE(BagEquals(Eval(q, db_), Eval(converted, db_)));
}

TEST_F(SimplifyTest, JoinPredicateAboveConverts) {
  // X - (Y <- Z) with the join predicate strong on Z's attributes: the
  // inner outerjoin (preserving Y... note <- preserves the right operand
  // here: Z <- ... careful) — build X -[pxz] (Z -> Y)? Use the clean
  // shape: X -[a=c] (Z -> Y): wait the join must reference the
  // null-supplied side. Simplest: X -[a=b] (Z <- Y) where Z <- Y preserves
  // Y and null-supplies Z... the join pred references Y (preserved):
  // should NOT convert. Then X -[a=c] (Z <- Y): references Z
  // (null-supplied): SHOULD convert.
  ExprPtr inner = Expr::OuterJoin(Z(), Y(), EqCols(c_, b_),
                                  /*preserves_left=*/false);  // Y preserved
  ExprPtr on_preserved = Expr::Join(X(), inner, EqCols(a_, b_));
  EXPECT_EQ(SimplifyOuterjoins(on_preserved).outerjoins_converted, 0);
  ExprPtr on_null_side = Expr::Join(X(), inner, EqCols(a_, c_));
  SimplifyResult result = SimplifyOuterjoins(on_null_side);
  EXPECT_EQ(result.outerjoins_converted, 1);
  EXPECT_TRUE(BagEquals(Eval(on_null_side, db_), Eval(result.expr, db_)));
}

TEST_F(SimplifyTest, CascadesDownChains) {
  // sigma[c > 0]((X -> Y) -> Z): the restriction is strong on Z, so the
  // upper outerjoin converts; it is NOT strong on Y, and no other
  // predicate above Y's outerjoin filters Y... the restriction references
  // only Z. The lower outerjoin stays.
  ExprPtr q = Expr::Restrict(
      Expr::OuterJoin(Expr::OuterJoin(X(), Y(), EqCols(a_, b_)), Z(),
                      EqCols(b_, c_)),
      CmpLit(CmpOp::kGt, c_, Value::Int(0)));
  SimplifyResult result = SimplifyOuterjoins(q);
  EXPECT_EQ(result.outerjoins_converted, 2);
  // Converting the upper outerjoin to a join makes its predicate (b = c,
  // strong on b) a filter above the lower outerjoin, which then converts
  // too — the cascade the paper's rule implies.
  EXPECT_EQ(result.expr->left()->kind(), OpKind::kJoin);
  EXPECT_EQ(result.expr->left()->left()->kind(), OpKind::kJoin);
  EXPECT_TRUE(BagEquals(Eval(q, db_), Eval(result.expr, db_)));
}

TEST_F(SimplifyTest, AntijoinPredicateDoesNotFilter) {
  // (X -> Y) |> Z: the antijoin predicate does not reject padded X->Y
  // tuples (failing it KEEPS the tuple), so no conversion.
  ExprPtr q = Expr::Antijoin(Expr::OuterJoin(X(), Y(), EqCols(a_, b_)), Z(),
                             EqCols(b_, c_));
  EXPECT_EQ(SimplifyOuterjoins(q).outerjoins_converted, 0);
}

TEST_F(SimplifyTest, SemijoinPredicateFilters) {
  ExprPtr q = Expr::Semijoin(Expr::OuterJoin(X(), Y(), EqCols(a_, b_)), Z(),
                             EqCols(b_, c_));
  SimplifyResult result = SimplifyOuterjoins(q);
  EXPECT_EQ(result.outerjoins_converted, 1);
  EXPECT_TRUE(BagEquals(Eval(q, db_), Eval(result.expr, db_)));
}

TEST_F(SimplifyTest, NoFiltersNoChange) {
  ExprPtr q = Expr::OuterJoin(X(), Y(), EqCols(a_, b_));
  SimplifyResult result = SimplifyOuterjoins(q);
  EXPECT_EQ(result.outerjoins_converted, 0);
  EXPECT_EQ(result.expr, q);  // pointer-identical: no rebuild
}

// Property: simplification never changes results, across random databases
// and filter shapes.
TEST(SimplifyPropertyTest, AlwaysEquivalentOnRandomData) {
  Rng rng(801);
  for (int trial = 0; trial < 60; ++trial) {
    RandomRowsOptions rows;
    rows.rows_max = 6;
    rows.null_prob = 0.25;
    rows.domain = 3;
    auto db = MakeRandomDatabase(3, 2, rows, &rng);
    AttrId xa = db->Attr("R0", "a0");
    AttrId yb = db->Attr("R1", "a0");
    AttrId yc = db->Attr("R1", "a1");
    AttrId zc = db->Attr("R2", "a0");
    ExprPtr x = Expr::Leaf(db->Rel("R0"), *db);
    ExprPtr y = Expr::Leaf(db->Rel("R1"), *db);
    ExprPtr z = Expr::Leaf(db->Rel("R2"), *db);
    // sigma[filter]((X -> Y) -> Z) with alternating filter strength.
    PredicatePtr filter;
    switch (trial % 3) {
      case 0:
        filter = CmpLit(CmpOp::kGe, zc, Value::Int(0));  // strong on Z
        break;
      case 1:
        filter = Predicate::IsNull(Operand::Column(zc));  // weak
        break;
      case 2:
        filter = CmpLit(CmpOp::kGe, yc, Value::Int(1));  // strong on Y
        break;
    }
    ExprPtr q = Expr::Restrict(
        Expr::OuterJoin(Expr::OuterJoin(x, y, EqCols(xa, yb)), z,
                        EqCols(yc, zc)),
        filter);
    SimplifyResult result = SimplifyOuterjoins(q);
    EXPECT_TRUE(BagEquals(Eval(q, *db), Eval(result.expr, *db)))
        << "trial " << trial << ": " << q->ToString() << " => "
        << result.expr->ToString();
  }
}

}  // namespace
}  // namespace fro
