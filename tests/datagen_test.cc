// Tests for the testing-support generators themselves.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "testing/datagen.h"
#include "testing/graphgen.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

TEST(DatagenTest, RespectsRowBoundsAndDomain) {
  Rng rng(1);
  RandomRowsOptions options;
  options.rows_min = 2;
  options.rows_max = 5;
  options.domain = 3;
  options.null_prob = 0.0;
  for (int i = 0; i < 30; ++i) {
    auto db = MakeRandomDatabase(1, 2, options, &rng);
    const Relation& rel = db->relation(0);
    EXPECT_GE(rel.NumRows(), 2u);
    EXPECT_LE(rel.NumRows(), 5u);
    for (const Tuple& row : rel.rows()) {
      for (const Value& v : row.values()) {
        ASSERT_FALSE(v.is_null());
        EXPECT_GE(v.AsInt(), 0);
        EXPECT_LT(v.AsInt(), 3);
      }
    }
  }
}

TEST(DatagenTest, NullProbabilityOneIsAllNulls) {
  Rng rng(2);
  RandomRowsOptions options;
  options.rows_min = 5;
  options.rows_max = 5;
  options.null_prob = 1.0;
  auto db = MakeRandomDatabase(1, 2, options, &rng);
  for (const Tuple& row : db->relation(0).rows()) {
    for (const Value& v : row.values()) EXPECT_TRUE(v.is_null());
  }
}

TEST(DatagenTest, UniqueRowsDeduplicates) {
  Rng rng(3);
  RandomRowsOptions options;
  options.rows_min = 30;
  options.rows_max = 30;
  options.domain = 2;  // only 4 distinct rows possible
  options.null_prob = 0.0;
  options.unique_rows = true;
  auto db = MakeRandomDatabase(1, 2, options, &rng);
  const Relation& rel = db->relation(0);
  EXPECT_LE(rel.NumRows(), 4u);
  std::set<std::vector<Value>> seen;
  for (const Tuple& row : rel.rows()) {
    EXPECT_TRUE(seen.insert(row.values()).second);
  }
}

TEST(DatagenTest, DeterministicGivenSeed) {
  RandomRowsOptions options;
  Rng a(9);
  Rng b(9);
  auto db1 = MakeRandomDatabase(2, 2, options, &a);
  auto db2 = MakeRandomDatabase(2, 2, options, &b);
  for (RelId r = 0; r < 2; ++r) {
    EXPECT_TRUE(BagEquals(db1->relation(r), db2->relation(r)));
  }
}

TEST(DatagenTest, DeptEmpShape) {
  auto db = MakeDeptEmpDatabase();
  EXPECT_EQ(db->relation(db->Rel("DEPT")).NumRows(), 3u);
  EXPECT_EQ(db->relation(db->Rel("EMP")).NumRows(), 3u);
  // The Archive department (dno=3) has no employees.
  const Relation& emp = db->relation(db->Rel("EMP"));
  AttrId dno = db->Attr("EMP", "dno");
  for (size_t i = 0; i < emp.NumRows(); ++i) {
    EXPECT_NE(emp.ValueOf(i, dno).AsInt(), 3);
  }
}

TEST(DatagenTest, Example1Shape) {
  auto db = MakeExample1Database(7);
  EXPECT_EQ(db->relation(db->Rel("R1")).NumRows(), 1u);
  EXPECT_EQ(db->relation(db->Rel("R2")).NumRows(), 7u);
  EXPECT_EQ(db->relation(db->Rel("R3")).NumRows(), 7u);
  // R1's key matches exactly one R2 row; every R2.fk has an R3 partner.
  EXPECT_EQ(db->relation(db->Rel("R1")).ValueOf(0, db->Attr("R1", "k"))
                .AsInt(),
            0);
}

TEST(GraphgenTest, NodeAndEdgeCounts) {
  Rng rng(4);
  RandomQueryOptions options;
  options.num_relations = 6;
  options.extra_join_edge_prob = 0.0;
  GeneratedQuery q = GenerateRandomQuery(options, &rng);
  EXPECT_EQ(q.graph.num_nodes(), 6);
  // A spanning structure: exactly n-1 edges without extras.
  EXPECT_EQ(q.graph.num_edges(), 5);
  EXPECT_TRUE(q.graph.IsConnected(q.graph.AllMask()));
}

TEST(GraphgenTest, OjFractionExtremes) {
  Rng rng(5);
  RandomQueryOptions options;
  options.num_relations = 6;
  options.oj_fraction = 0.0;
  GeneratedQuery all_join = GenerateRandomQuery(options, &rng);
  for (const GraphEdge& e : all_join.graph.edges()) {
    EXPECT_FALSE(e.directed);
  }
  options.oj_fraction = 1.0;
  GeneratedQuery all_oj = GenerateRandomQuery(options, &rng);
  int directed = 0;
  for (const GraphEdge& e : all_oj.graph.edges()) {
    if (e.directed) ++directed;
  }
  EXPECT_EQ(directed, 5);  // everything hangs off the single core node
}

TEST(NestedSampleTest, CompanyShape) {
  NestedDb db = MakeCompanyNestedDb();
  EXPECT_EQ(db.Rows("EMPLOYEE").size(), 4u);
  EXPECT_EQ(db.Rows("DEPARTMENT").size(), 3u);
  EXPECT_EQ(db.Rows("REPORT").size(), 2u);
  // Oids are unique across types.
  std::set<int64_t> oids;
  for (const char* type : {"EMPLOYEE", "DEPARTMENT", "REPORT"}) {
    for (const EntityRow& row : db.Rows(type)) {
      EXPECT_TRUE(oids.insert(row.oid).second);
    }
  }
}

}  // namespace
}  // namespace fro
