// Contract enforcement: misusing the API trips FRO_CHECK with a
// diagnostic instead of corrupting state. (Status/Result cover the
// recoverable paths; these are the programming-error paths.)

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/status.h"
#include "relational/database.h"

namespace fro {
namespace {

TEST(ApiMisuseDeathTest, ResultValueOnError) {
  Result<int> err = NotFound("nope");
  EXPECT_DEATH((void)err.value(), "Result::value");
}

TEST(ApiMisuseDeathTest, OkStatusIsNotAnError) {
  EXPECT_DEATH(Status(StatusCode::kOk, "fine"), "requires a code");
  EXPECT_DEATH((Result<int>{Status()}), "OK status");
}

TEST(ApiMisuseDeathTest, DatabaseAccessorsValidateIds) {
  Database db;
  EXPECT_DEATH(db.relation(0), "");
  RelId r = *db.AddRelation("R", {"a"});
  (void)r;
  EXPECT_DEATH(db.Attr("R", "nope"), "NotFound");
  EXPECT_DEATH(db.Rel("S"), "NotFound");
}

TEST(ApiMisuseDeathTest, ValueKindAccessors) {
  EXPECT_DEATH(Value::Null().AsInt(), "AsInt");
  EXPECT_DEATH(Value::Int(1).AsString(), "AsString");
  EXPECT_DEATH(Value::String("x").NumericValue(), "non-numeric");
}

TEST(ApiMisuseDeathTest, OperandAccessorsMatchKind) {
  Operand col = Operand::Column(0);
  EXPECT_DEATH(col.literal(), "");
  Operand lit = Operand::Literal(Value::Int(1));
  EXPECT_DEATH(lit.attr(), "");
}

TEST(ApiMisuseDeathTest, LeafRelIdCapped) {
  Database db;
  for (int i = 0; i < 65; ++i) {
    ASSERT_TRUE(db.AddRelation("R" + std::to_string(i), {"a"}).ok());
  }
  EXPECT_DEATH(Expr::Leaf(64, db), "64-bit relation mask");
}

TEST(ApiMisuseDeathTest, PredicateEvalNeedsItsColumns) {
  // Evaluating a predicate against a scheme missing its column.
  PredicatePtr p = EqCols(5, 6);
  Tuple row({Value::Int(1)});
  Scheme scheme({1});
  EXPECT_DEATH((void)p->Eval(row, scheme), "not in scheme");
}

TEST(ApiMisuseDeathTest, CheckMacroStreamsContext) {
  EXPECT_DEATH([] { FRO_CHECK(1 == 2) << "custom context 42"; }(),
               "custom context 42");
}

TEST(ApiMisuseDeathTest, RelationRowArity) {
  Database db;
  RelId r = *db.AddRelation("R", {"a", "b"});
  EXPECT_DEATH(db.AddRow(r, {Value::Int(1)}), "arity");
}

}  // namespace
}  // namespace fro
