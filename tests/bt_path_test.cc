// Constructive Theorem 1: explicit result-preserving BT sequences
// between implementing trees, with every intermediate step verified.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "common/rng.h"
#include "enumerate/bt_path.h"
#include "enumerate/it_enum.h"
#include "graph/nice.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

TEST(BtPathTest, TrivialPathToSelf) {
  Database db;
  RelId x = *db.AddRelation("X", {"a"});
  RelId y = *db.AddRelation("Y", {"b"});
  ExprPtr q = Expr::Join(Expr::Leaf(x, db), Expr::Leaf(y, db),
                         EqCols(db.Attr("X", "a"), db.Attr("Y", "b")));
  BtPathResult path = FindBtPath(q, q);
  ASSERT_TRUE(path.found);
  EXPECT_EQ(path.steps.size(), 1u);
  // Reversal-related trees are the same state (path of length one).
  ExprPtr reversed = Expr::Join(Expr::Leaf(y, db), Expr::Leaf(x, db),
                                EqCols(db.Attr("X", "a"), db.Attr("Y", "b")));
  BtPathResult rev_path = FindBtPath(q, reversed);
  ASSERT_TRUE(rev_path.found);
  EXPECT_EQ(rev_path.steps.size(), 1u);
}

TEST(BtPathTest, Example1SingleStep) {
  // R1 - (R2 -> R3)  ~identity 11~>  (R1 - R2) -> R3.
  Database db;
  RelId r1 = *db.AddRelation("R1", {"k"});
  RelId r2 = *db.AddRelation("R2", {"k", "fk"});
  RelId r3 = *db.AddRelation("R3", {"k"});
  PredicatePtr p12 = EqCols(db.Attr("R1", "k"), db.Attr("R2", "k"));
  PredicatePtr p23 = EqCols(db.Attr("R2", "fk"), db.Attr("R3", "k"));
  ExprPtr naive = Expr::Join(
      Expr::Leaf(r1, db),
      Expr::OuterJoin(Expr::Leaf(r2, db), Expr::Leaf(r3, db), p23), p12);
  ExprPtr reordered = Expr::OuterJoin(
      Expr::Join(Expr::Leaf(r1, db), Expr::Leaf(r2, db), p12),
      Expr::Leaf(r3, db), p23);
  BtPathResult path = FindBtPath(naive, reordered);
  ASSERT_TRUE(path.found);
  EXPECT_EQ(path.steps.size(), 2u);  // start + one reassociation
  EXPECT_NE(path.steps[1].rule.find("identity 11"), std::string::npos);
}

TEST(BtPathTest, NoPreservingPathAcrossExample2) {
  // X -> (Y - Z) and (X -> Y) - Z: connected by an (unrestricted) BT but
  // NOT by result-preserving BTs.
  Database db;
  RelId rx = *db.AddRelation("X", {"a"});
  RelId ry = *db.AddRelation("Y", {"b"});
  RelId rz = *db.AddRelation("Z", {"c"});
  PredicatePtr pxy = EqCols(db.Attr("X", "a"), db.Attr("Y", "b"));
  PredicatePtr pyz = EqCols(db.Attr("Y", "b"), db.Attr("Z", "c"));
  ExprPtr right_deep = Expr::OuterJoin(
      Expr::Leaf(rx, db),
      Expr::Join(Expr::Leaf(ry, db), Expr::Leaf(rz, db), pyz), pxy);
  ExprPtr left_deep = Expr::Join(
      Expr::OuterJoin(Expr::Leaf(rx, db), Expr::Leaf(ry, db), pxy),
      Expr::Leaf(rz, db), pyz);
  EXPECT_FALSE(
      FindBtPath(right_deep, left_deep, /*only_result_preserving=*/true)
          .found);
  EXPECT_TRUE(
      FindBtPath(right_deep, left_deep, /*only_result_preserving=*/false)
          .found);
}

// The paper's Theorem 1 proof, replayed end to end on random inputs: a
// preserving path exists between ANY two implementing trees of a nice
// graph, and evaluating every intermediate step gives the same relation.
TEST(BtPathPropertyTest, PreservingPathsExistAndEveryStepAgrees) {
  Rng rng(2501);
  int paths_checked = 0;
  for (int trial = 0; trial < 20 && paths_checked < 12; ++trial) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(4));
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ASSERT_TRUE(CheckFreelyReorderable(q.graph).freely_reorderable());
    if (CountIts(q.graph) > 200) continue;
    ExprPtr from = RandomIt(q.graph, *q.db, &rng);
    ExprPtr to = RandomIt(q.graph, *q.db, &rng);
    BtPathResult path = FindBtPath(from, to);
    ASSERT_TRUE(path.found)
        << "no preserving path on a nice graph:\n"
        << q.graph.ToString() << "from: " << from->ToString()
        << "\nto:   " << to->ToString();
    Relation reference = Eval(from, *q.db);
    for (const BtPathStep& step : path.steps) {
      EXPECT_TRUE(BagEquals(reference, Eval(step.tree, *q.db)))
          << "intermediate step changed the result: "
          << step.tree->ToString() << " via " << step.rule;
    }
    ++paths_checked;
  }
  EXPECT_GE(paths_checked, 8);
}

TEST(BtPathTest, MaxStatesBudgetRespected) {
  Rng rng(2502);
  RandomQueryOptions options;
  options.num_relations = 6;
  options.oj_fraction = 0.0;
  GeneratedQuery q = GenerateRandomQuery(options, &rng);
  ExprPtr from = RandomIt(q.graph, *q.db, &rng);
  ExprPtr to = RandomIt(q.graph, *q.db, &rng);
  if (ExprEquals(CanonicalOrientation(from), CanonicalOrientation(to))) {
    return;  // degenerate draw
  }
  BtPathResult path = FindBtPath(from, to, true, /*max_states=*/1);
  EXPECT_FALSE(path.found);
}

}  // namespace
}  // namespace fro
