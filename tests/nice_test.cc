// Lemma 1 ("nice" graphs) and Theorem 1 precondition tests.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/nice.h"
#include "testing/graphgen.h"

namespace fro {
namespace {

// Attribute i belongs to "relation" i in these synthetic graphs.
QueryGraph MakeNodes(int n) {
  QueryGraph g;
  for (int i = 0; i < n; ++i) {
    g.AddNode(static_cast<RelId>(i), AttrSet::Of({static_cast<AttrId>(i)}));
  }
  return g;
}

PredicatePtr P(int u, int v) {
  return EqCols(static_cast<AttrId>(u), static_cast<AttrId>(v));
}

TEST(NiceTest, Fig2TopologyIsNice) {
  // The paper's Fig. 2: a connected join core with outerjoin trees going
  // outward. Core: 0-1-2 (triangle), OJ: 1->3, 3->4, 2->5.
  QueryGraph g = MakeNodes(6);
  ASSERT_TRUE(g.AddJoinEdge(0, 1, P(0, 1)).ok());
  ASSERT_TRUE(g.AddJoinEdge(1, 2, P(1, 2)).ok());
  ASSERT_TRUE(g.AddJoinEdge(0, 2, P(0, 2)).ok());
  ASSERT_TRUE(g.AddOuterJoinEdge(1, 3, P(1, 3)).ok());
  ASSERT_TRUE(g.AddOuterJoinEdge(3, 4, P(3, 4)).ok());
  ASSERT_TRUE(g.AddOuterJoinEdge(2, 5, P(2, 5)).ok());
  NiceCheck check = CheckNice(g);
  EXPECT_TRUE(check.connected);
  EXPECT_TRUE(check.nice) << check.violation;
}

TEST(NiceTest, PureJoinGraphIsNice) {
  QueryGraph g = MakeNodes(3);
  ASSERT_TRUE(g.AddJoinEdge(0, 1, P(0, 1)).ok());
  ASSERT_TRUE(g.AddJoinEdge(1, 2, P(1, 2)).ok());
  EXPECT_TRUE(CheckNice(g).nice);
}

TEST(NiceTest, PureOuterjoinChainIsNice) {
  QueryGraph g = MakeNodes(3);
  ASSERT_TRUE(g.AddOuterJoinEdge(0, 1, P(0, 1)).ok());
  ASSERT_TRUE(g.AddOuterJoinEdge(1, 2, P(1, 2)).ok());
  EXPECT_TRUE(CheckNice(g).nice);
}

TEST(NiceTest, JoinAtNullSuppliedNodeViolates) {
  // X -> Y - Z: Example 2's graph.
  QueryGraph g = MakeNodes(3);
  ASSERT_TRUE(g.AddOuterJoinEdge(0, 1, P(0, 1)).ok());
  ASSERT_TRUE(g.AddJoinEdge(1, 2, P(1, 2)).ok());
  NiceCheck check = CheckNice(g);
  EXPECT_FALSE(check.nice);
  EXPECT_NE(check.violation.find("X -> Y - Z"), std::string::npos);
}

TEST(NiceTest, JoinAtOuterjoinTailIsFine) {
  // Y - X plus X -> Z: join edge at the *preserved* node is allowed.
  QueryGraph g = MakeNodes(3);
  ASSERT_TRUE(g.AddJoinEdge(1, 0, P(1, 0)).ok());
  ASSERT_TRUE(g.AddOuterJoinEdge(0, 2, P(0, 2)).ok());
  EXPECT_TRUE(CheckNice(g).nice);
}

TEST(NiceTest, TwoInEdgesViolate) {
  // X -> Y <- Z.
  QueryGraph g = MakeNodes(3);
  ASSERT_TRUE(g.AddOuterJoinEdge(0, 1, P(0, 1)).ok());
  ASSERT_TRUE(g.AddOuterJoinEdge(2, 1, P(2, 1)).ok());
  NiceCheck check = CheckNice(g);
  EXPECT_FALSE(check.nice);
  EXPECT_NE(check.violation.find("X -> Y <- Z"), std::string::npos);
}

TEST(NiceTest, OuterjoinCycleViolates) {
  QueryGraph g = MakeNodes(3);
  ASSERT_TRUE(g.AddOuterJoinEdge(0, 1, P(0, 1)).ok());
  ASSERT_TRUE(g.AddOuterJoinEdge(1, 2, P(1, 2)).ok());
  ASSERT_TRUE(g.AddOuterJoinEdge(2, 0, P(2, 0)).ok());
  NiceCheck check = CheckNice(g);
  EXPECT_FALSE(check.nice);
  EXPECT_NE(check.violation.find("cycle"), std::string::npos);
}

TEST(NiceTest, TwoOutEdgesAreFine) {
  // X <- Y -> Z: a node preserving into two directions is a forest.
  QueryGraph g = MakeNodes(3);
  ASSERT_TRUE(g.AddOuterJoinEdge(1, 0, P(1, 0)).ok());
  ASSERT_TRUE(g.AddOuterJoinEdge(1, 2, P(1, 2)).ok());
  EXPECT_TRUE(CheckNice(g).nice);
}

TEST(NiceTest, DisconnectedGraphReported) {
  QueryGraph g = MakeNodes(3);
  ASSERT_TRUE(g.AddJoinEdge(0, 1, P(0, 1)).ok());
  NiceCheck check = CheckNice(g);
  EXPECT_FALSE(check.connected);
}

TEST(ReorderableTest, StrongPredicatesRequired) {
  QueryGraph g = MakeNodes(2);
  PredicatePtr weak =
      Predicate::Or({P(0, 1), Predicate::IsNull(Operand::Column(0))});
  ASSERT_TRUE(g.AddOuterJoinEdge(0, 1, weak).ok());
  ReorderabilityCheck check = CheckFreelyReorderable(g);
  EXPECT_TRUE(check.nice.nice);
  EXPECT_FALSE(check.all_outerjoin_preds_strong);
  EXPECT_FALSE(check.freely_reorderable());
}

TEST(ReorderableTest, StrongWrtPreservedSideIsWhatMatters) {
  // Predicate weak w.r.t. the NULL-SUPPLIED side but strong w.r.t. the
  // preserved side: Theorem 1 still applies.
  QueryGraph g = MakeNodes(2);
  // (a0 = a1 OR (a1 IS NULL AND a0 IS NOT NULL)): can be true when the
  // null-supplied attribute a1 is null, but never when the preserved
  // attribute a0 is null.
  PredicatePtr weak_null_side = Predicate::Or(
      {P(0, 1),
       Predicate::And(
           {Predicate::IsNull(Operand::Column(1)),
            Predicate::Not(Predicate::IsNull(Operand::Column(0)))})});
  ASSERT_TRUE(g.AddOuterJoinEdge(0, 1, weak_null_side).ok());
  ReorderabilityCheck check = CheckFreelyReorderable(g);
  EXPECT_TRUE(check.all_outerjoin_preds_strong);
  EXPECT_FALSE(check.all_strong_wrt_null_supplied);
  EXPECT_TRUE(check.freely_reorderable());
}

TEST(ReorderableTest, EqualityChainIsFreelyReorderable) {
  QueryGraph g = MakeNodes(3);
  ASSERT_TRUE(g.AddJoinEdge(0, 1, P(0, 1)).ok());
  ASSERT_TRUE(g.AddOuterJoinEdge(1, 2, P(1, 2)).ok());
  EXPECT_TRUE(CheckFreelyReorderable(g).freely_reorderable());
}

TEST(GraphGenTest, DefaultOptionsProduceReorderableGraphs) {
  Rng rng(401);
  for (int i = 0; i < 30; ++i) {
    RandomQueryOptions options;
    options.num_relations = 3 + static_cast<int>(rng.Uniform(5));
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    EXPECT_TRUE(CheckFreelyReorderable(q.graph).freely_reorderable())
        << q.graph.ToString();
  }
}

TEST(GraphGenTest, ViolationsBreakNiceness) {
  Rng rng(402);
  for (auto violation : {RandomQueryOptions::Violation::kJoinAtNullSupplied,
                         RandomQueryOptions::Violation::kTwoInEdges,
                         RandomQueryOptions::Violation::kOjCycle}) {
    for (int i = 0; i < 10; ++i) {
      RandomQueryOptions options;
      options.num_relations = 4 + static_cast<int>(rng.Uniform(3));
      options.violation = violation;
      GeneratedQuery q = GenerateRandomQuery(options, &rng);
      EXPECT_FALSE(CheckNice(q.graph).nice) << q.graph.ToString();
    }
  }
}

TEST(GraphGenTest, WeakPredicatesBreakStrength) {
  Rng rng(403);
  int weak_seen = 0;
  for (int i = 0; i < 20; ++i) {
    RandomQueryOptions options;
    options.num_relations = 5;
    options.oj_fraction = 0.9;  // mostly outerjoins
    options.weak_pred_prob = 1.0;
    GeneratedQuery q = GenerateRandomQuery(options, &rng);
    ReorderabilityCheck check = CheckFreelyReorderable(q.graph);
    if (!check.all_outerjoin_preds_strong) ++weak_seen;
  }
  EXPECT_GT(weak_seen, 10);
}

}  // namespace
}  // namespace fro
