// Golden regression corpus: fixed queries over the fixed sample
// databases, compared byte-for-byte against checked-in canonical results.
// CanonicalString sorts columns and rows, so these are stable across
// plan, executor, and hash-order changes — any diff is a semantic
// regression.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "exec/build.h"
#include "lang/lang.h"
#include "testing/datagen.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

TEST(GoldenTest, DeptEmpOuterjoinListing) {
  auto db = MakeDeptEmpDatabase();
  ExprPtr listing = Expr::OuterJoin(
      Expr::Leaf(db->Rel("DEPT"), *db), Expr::Leaf(db->Rel("EMP"), *db),
      EqCols(db->Attr("DEPT", "dno"), db->Attr("EMP", "dno")));
  const char kExpected[] =
      "[DEPT.dno, DEPT.dname, DEPT.location, EMP.eno, EMP.ename, EMP.dno, "
      "EMP.rank]\n"
      "  (1, 'Research', 'Zurich', 10, 'Ana', 1, 12)\n"
      "  (1, 'Research', 'Zurich', 11, 'Bo', 1, 7)\n"
      "  (2, 'Sales', 'Queretaro', 12, 'Cy', 2, 11)\n"
      "  (3, 'Archive', 'Zurich', -, -, -, -)\n";
  EXPECT_EQ(CanonicalString(Eval(listing, *db), &db->catalog()), kExpected);
  // The pipelined executor produces the identical canonical text.
  EXPECT_EQ(CanonicalString(ExecutePipelined(listing, *db), &db->catalog()),
            kExpected);
}

TEST(GoldenTest, ZurichEmployeesWithChildren) {
  NestedDb company = MakeCompanyNestedDb();
  Result<QueryRunResult> run = RunQuery(
      company,
      "Select All From EMPLOYEE*ChildName, DEPARTMENT "
      "Where EMPLOYEE.D# = DEPARTMENT.D# and "
      "DEPARTMENT.Location = 'Zurich'");
  ASSERT_TRUE(run.ok());
  const char kExpected[] =
      "[EMPLOYEE.@oid, EMPLOYEE.D#, EMPLOYEE.Rank, "
      "EMPLOYEE_ChildName.@owner, EMPLOYEE_ChildName.ChildName, "
      "DEPARTMENT.@oid, DEPARTMENT.D#, DEPARTMENT.Location, "
      "DEPARTMENT.Manager@ref, DEPARTMENT.Secretary@ref, "
      "DEPARTMENT.Audit@ref]\n"
      "  (3, 1, 12, 3, 'Ben', 7, 1, 'Zurich', 3, 4, 1)\n"
      "  (3, 1, 12, 3, 'Mia', 7, 1, 'Zurich', 3, 4, 1)\n"
      "  (4, 1, 7, -, -, 7, 1, 'Zurich', 3, 4, 1)\n";
  EXPECT_EQ(CanonicalString(run->relation,
                            &run->translation.db->catalog()),
            kExpected);
}

TEST(GoldenTest, ProjectionOverLink) {
  NestedDb company = MakeCompanyNestedDb();
  Result<QueryRunResult> run = RunQuery(
      company,
      "Select DEPARTMENT.D#, DEPARTMENT.Location From DEPARTMENT-->Audit");
  ASSERT_TRUE(run.ok());
  const char kExpected[] =
      "[DEPARTMENT.D#, DEPARTMENT.Location]\n"
      "  (1, 'Zurich')\n"
      "  (2, 'Queretaro')\n"
      "  (3, 'Zurich')\n";
  EXPECT_EQ(CanonicalString(run->relation,
                            &run->translation.db->catalog()),
            kExpected);
}

TEST(GoldenTest, StableUnderEveryImplementingTree) {
  // The Zurich query's canonical text is identical no matter which
  // implementing tree executes (Theorem 1 rendered as bytes).
  NestedDb company = MakeCompanyNestedDb();
  RunOptions no_opt;
  no_opt.optimize = false;
  Result<QueryRunResult> a = RunQuery(
      company,
      "Select All From EMPLOYEE*ChildName, DEPARTMENT "
      "Where EMPLOYEE.D# = DEPARTMENT.D# and "
      "DEPARTMENT.Location = 'Zurich'",
      no_opt);
  Result<QueryRunResult> b = RunQuery(
      company,
      "Select All From EMPLOYEE*ChildName, DEPARTMENT "
      "Where EMPLOYEE.D# = DEPARTMENT.D# and "
      "DEPARTMENT.Location = 'Zurich'");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(CanonicalString(a->relation, &a->translation.db->catalog()),
            CanonicalString(b->relation, &b->translation.db->catalog()));
}

}  // namespace
}  // namespace fro
