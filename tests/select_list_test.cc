// The Select-list extension: explicit projection columns instead of
// `Select All`, including columns from chain-introduced relations.

#include <gtest/gtest.h>

#include "algebra/eval.h"
#include "lang/lang.h"
#include "lang/parser.h"
#include "testing/nested_sample.h"

namespace fro {
namespace {

TEST(SelectListTest, ParserAcceptsColumnList) {
  Result<SelectQuery> q = ParseQuery(
      "Select EMPLOYEE.D#, DEPARTMENT.Location From EMPLOYEE, DEPARTMENT "
      "Where EMPLOYEE.D# = DEPARTMENT.D#");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->select_columns.size(), 2u);
  EXPECT_EQ(q->select_columns[0].qualifier, "EMPLOYEE");
  EXPECT_EQ(q->select_columns[0].field, "D#");
  EXPECT_EQ(q->select_columns[1].field, "Location");
}

TEST(SelectListTest, SelectAllLeavesListEmpty) {
  Result<SelectQuery> q = ParseQuery("Select All From EMPLOYEE");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->select_columns.empty());
}

TEST(SelectListTest, ParserRejectsLiteralsInSelect) {
  EXPECT_FALSE(ParseQuery("Select 1 From EMPLOYEE").ok());
  EXPECT_FALSE(ParseQuery("Select EMPLOYEE From EMPLOYEE").ok());
}

TEST(SelectListTest, ProjectsBaseColumns) {
  NestedDb db = MakeCompanyNestedDb();
  Result<QueryRunResult> run = RunQuery(
      db,
      "Select DEPARTMENT.Location From DEPARTMENT");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->relation.scheme().size(), 1u);
  EXPECT_EQ(run->relation.NumRows(), 3u);  // bag projection: no dedup
}

TEST(SelectListTest, ProjectsChainIntroducedColumns) {
  // Children per employee: project the unnested value and the rank.
  NestedDb db = MakeCompanyNestedDb();
  Result<QueryRunResult> run = RunQuery(
      db,
      "Select EMPLOYEE.Rank, EMPLOYEE_ChildName.ChildName "
      "From EMPLOYEE*ChildName");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->relation.scheme().size(), 2u);
  // 5 rows (4 employees, Ana twice), childless Bo's ChildName is null.
  EXPECT_EQ(run->relation.NumRows(), 5u);
}

TEST(SelectListTest, UnknownColumnRejected) {
  NestedDb db = MakeCompanyNestedDb();
  Result<QueryRunResult> run =
      RunQuery(db, "Select EMPLOYEE.Nope From EMPLOYEE");
  EXPECT_FALSE(run.ok());
}

TEST(SelectListTest, OptimizerStillReordersUnderProjection) {
  NestedDb db = MakeCompanyNestedDb();
  Result<QueryRunResult> run = RunQuery(
      db,
      "Select EMPLOYEE.Rank, DEPARTMENT.Location "
      "From EMPLOYEE*ChildName, DEPARTMENT "
      "Where EMPLOYEE.D# = DEPARTMENT.D#");
  ASSERT_TRUE(run.ok());
  // The block is still recognized as freely reorderable and planned by
  // the DP (projection and restriction are peeled, the core reordered).
  EXPECT_TRUE(run->optimize.freely_reorderable);
  RunOptions no_opt;
  no_opt.optimize = false;
  Result<QueryRunResult> plain = RunQuery(
      db,
      "Select EMPLOYEE.Rank, DEPARTMENT.Location "
      "From EMPLOYEE*ChildName, DEPARTMENT "
      "Where EMPLOYEE.D# = DEPARTMENT.D#",
      no_opt);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(BagEquals(run->relation, plain->relation));
}

}  // namespace
}  // namespace fro
