// Lexer and parser tests for the Section 5 language.

#include <gtest/gtest.h>

#include "lang/lexer.h"
#include "lang/parser.h"

namespace fro {
namespace {

TEST(LexerTest, BasicTokens) {
  Result<std::vector<Token>> tokens =
      Lex("Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager "
          "Where EMPLOYEE.D# = DEPARTMENT.D# and EMPLOYEE.Rank>10");
  ASSERT_TRUE(tokens.ok());
  // Spot-check a few interesting tokens.
  std::vector<Token::Kind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(tokens->front().text, "Select");
  EXPECT_EQ((*tokens)[3].kind, Token::Kind::kIdent);  // EMPLOYEE
  EXPECT_EQ((*tokens)[4].kind, Token::Kind::kStar);
  EXPECT_EQ((*tokens)[5].text, "ChildName");
  EXPECT_EQ((*tokens)[6].kind, Token::Kind::kComma);
  EXPECT_EQ((*tokens)[8].kind, Token::Kind::kArrow);  // -->
  EXPECT_EQ(tokens->back().kind, Token::Kind::kEnd);
}

TEST(LexerTest, IdentifiersWithHash) {
  Result<std::vector<Token>> tokens = Lex("EMPLOYEE.D#");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].text, "D#");
}

TEST(LexerTest, NumbersAndStrings) {
  Result<std::vector<Token>> tokens = Lex("12 3.5 'Queretaro'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, Token::Kind::kNumber);
  EXPECT_EQ((*tokens)[0].text, "12");
  EXPECT_EQ((*tokens)[1].text, "3.5");
  EXPECT_EQ((*tokens)[2].kind, Token::Kind::kString);
  EXPECT_EQ((*tokens)[2].text, "Queretaro");
}

TEST(LexerTest, ComparisonOperators) {
  Result<std::vector<Token>> tokens = Lex("= <> < <= > >=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, Token::Kind::kEq);
  EXPECT_EQ((*tokens)[1].kind, Token::Kind::kNe);
  EXPECT_EQ((*tokens)[2].kind, Token::Kind::kLt);
  EXPECT_EQ((*tokens)[3].kind, Token::Kind::kLe);
  EXPECT_EQ((*tokens)[4].kind, Token::Kind::kGt);
  EXPECT_EQ((*tokens)[5].kind, Token::Kind::kGe);
}

TEST(LexerTest, ArrowVariants) {
  ASSERT_TRUE(Lex("A->B").ok());
  ASSERT_TRUE(Lex("A-->B").ok());
  EXPECT_FALSE(Lex("A - B").ok());          // stray '-'
  EXPECT_FALSE(Lex("'unterminated").ok());  // bad string
  EXPECT_FALSE(Lex("A ? B").ok());          // unknown char
}

TEST(ParserTest, PaperQueryOne) {
  Result<SelectQuery> q = ParseQuery(
      "Select All From EMPLOYEE*ChildName, DEPARTMENT "
      "Where EMPLOYEE.D# = DEPARTMENT.D# and "
      "DEPARTMENT.Location = 'Queretaro'");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->from.size(), 2u);
  EXPECT_EQ(q->from[0].type_name, "EMPLOYEE");
  ASSERT_EQ(q->from[0].steps.size(), 1u);
  EXPECT_EQ(q->from[0].steps[0].op, ChainStep::Op::kUnnest);
  EXPECT_EQ(q->from[0].steps[0].field, "ChildName");
  EXPECT_TRUE(q->from[1].steps.empty());
  ASSERT_EQ(q->where.size(), 2u);
  EXPECT_TRUE(q->where[0].lhs.is_column);
  EXPECT_EQ(q->where[0].lhs.qualifier, "EMPLOYEE");
  EXPECT_EQ(q->where[0].lhs.field, "D#");
  EXPECT_FALSE(q->where[1].rhs.is_column);
  EXPECT_EQ(q->where[1].rhs.literal.AsString(), "Queretaro");
}

TEST(ParserTest, PaperQueryChainedLinks) {
  Result<SelectQuery> q = ParseQuery(
      "Select All From DEPARTMENT-->Manager-->Audit "
      "Where DEPARTMENT.Location = 'Zurich'");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->from.size(), 1u);
  ASSERT_EQ(q->from[0].steps.size(), 2u);
  EXPECT_EQ(q->from[0].steps[0].op, ChainStep::Op::kLink);
  EXPECT_EQ(q->from[0].steps[0].field, "Manager");
  EXPECT_EQ(q->from[0].steps[1].field, "Audit");
}

TEST(ParserTest, MixedChain) {
  Result<SelectQuery> q =
      ParseQuery("Select All From DEPARTMENT-->Manager*ChildName");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->from[0].steps.size(), 2u);
  EXPECT_EQ(q->from[0].steps[0].op, ChainStep::Op::kLink);
  EXPECT_EQ(q->from[0].steps[1].op, ChainStep::Op::kUnnest);
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  EXPECT_TRUE(ParseQuery("select all from R").ok());
  EXPECT_TRUE(ParseQuery("SELECT ALL FROM R").ok());
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseQuery("Select From R").ok());           // missing ALL
  EXPECT_FALSE(ParseQuery("Select All From").ok());         // no items
  EXPECT_FALSE(ParseQuery("Select All From R Where").ok()); // no conjunct
  EXPECT_FALSE(ParseQuery("Select All From R Where R.a").ok());  // no op
  EXPECT_FALSE(
      ParseQuery("Select All From R Where a = 1").ok());  // unqualified
  // A bare identifier after a relation is an ALIAS, not trailing junk...
  Result<SelectQuery> aliased = ParseQuery("Select All From R r2");
  ASSERT_TRUE(aliased.ok());
  EXPECT_EQ(aliased->from[0].alias, "r2");
  // ...but anything further still errors.
  EXPECT_FALSE(ParseQuery("Select All From R r2 junk").ok());
}

TEST(ParserTest, NumericLiterals) {
  Result<SelectQuery> q =
      ParseQuery("Select All From R Where R.a >= 2.5 and R.b <> 4");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where[0].op, CmpOp::kGe);
  EXPECT_EQ(q->where[0].rhs.literal.kind(), Value::Kind::kDouble);
  EXPECT_EQ(q->where[1].op, CmpOp::kNe);
  EXPECT_EQ(q->where[1].rhs.literal.AsInt(), 4);
}

}  // namespace
}  // namespace fro
