// Operator trees ("queries" / "implementing trees" in the paper).
//
// An Expr is an immutable algebraic expression over ground relations:
// leaves name relations, internal nodes are join-like operators (join,
// one-sided outerjoin, antijoin, semijoin, generalized outerjoin) or
// auxiliary operators (union-with-padding, restrict, project).
//
// The paper's *symmetric forms* (Section 2.1) are first-class: a
// join-like node records which operand is the preserved/kept one, so the
// reversal basic transform (Fig. 4) literally swaps children and flips the
// flag.

#ifndef FRO_ALGEBRA_EXPR_H_
#define FRO_ALGEBRA_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/predicate.h"
#include "relational/schema.h"

namespace fro {

enum class OpKind : uint8_t {
  kLeaf,
  kJoin,       // regular join, paper's "-"
  kOuterJoin,  // one-sided outerjoin, paper's "->" / "<-"
  kAntijoin,   // paper's right-pointing / left-pointing triangle
  kSemijoin,   // future-work operator (Section 6.3)
  kGoj,        // generalized outerjoin (Section 6.2, eq. 14)
  kUnion,        // bag union with the padding convention (Section 2.1)
  kRestrict,
  kProject,
  kMultiwayJoin,  // n-ary worst-case-optimal join over a cyclic core
};

const char* OpKindName(OpKind kind);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node. Construct through the static factories.
class Expr {
 public:
  /// A ground-relation leaf. The database supplies the leaf's scheme.
  static ExprPtr Leaf(RelId rel, const Database& db);

  /// Regular join `left - right` on `pred`.
  static ExprPtr Join(ExprPtr left, ExprPtr right, PredicatePtr pred);

  /// One-sided outerjoin. `preserves_left` selects the paper's `->`
  /// (left preserved, right null-supplied); false selects `<-`.
  static ExprPtr OuterJoin(ExprPtr left, ExprPtr right, PredicatePtr pred,
                           bool preserves_left = true);

  /// Antijoin. `keeps_left` selects which operand's unmatched tuples are
  /// returned (the output scheme is that operand's).
  static ExprPtr Antijoin(ExprPtr left, ExprPtr right, PredicatePtr pred,
                          bool keeps_left = true);

  /// Semijoin (kept operand selected like Antijoin).
  static ExprPtr Semijoin(ExprPtr left, ExprPtr right, PredicatePtr pred,
                          bool keeps_left = true);

  /// Generalized outerjoin GOJ[subset](left, right); `subset` must be a
  /// subset of the left operand's attributes. Always preserves (the
  /// S-projection of) the left operand.
  static ExprPtr Goj(ExprPtr left, ExprPtr right, PredicatePtr pred,
                     AttrSet subset);

  /// Bag union; operands are padded to the union scheme.
  static ExprPtr Union(ExprPtr left, ExprPtr right);

  static ExprPtr Restrict(ExprPtr child, PredicatePtr pred);

  static ExprPtr Project(ExprPtr child, std::vector<AttrId> cols, bool dedup);

  /// N-ary inner join over `children` (all pairwise relation-disjoint),
  /// executed worst-case-optimally by leapfrog triejoin over `var_order`
  /// (one representative attribute per join variable, in search order).
  /// `pred` is the full conjunction for the core — equality conjuncts
  /// define the variables, everything else runs as a residual filter.
  /// Output scheme is the concatenation of the children's schemes, i.e. it
  /// is result-equivalent to the left-deep chain of regular joins over
  /// `children` in order. Appears only in optimizer output plans; the
  /// query-side rewrites (closure, GOJ, simplification) never see it.
  static ExprPtr MultiwayJoin(std::vector<ExprPtr> children,
                              PredicatePtr pred,
                              std::vector<AttrId> var_order);

  OpKind kind() const { return kind_; }
  bool is_leaf() const { return kind_ == OpKind::kLeaf; }
  /// True for the binary operators that participate in implementing trees
  /// and basic transforms (join, outerjoin, antijoin, semijoin).
  bool is_join_like() const {
    return kind_ == OpKind::kJoin || kind_ == OpKind::kOuterJoin ||
           kind_ == OpKind::kAntijoin || kind_ == OpKind::kSemijoin;
  }
  bool is_binary() const { return right_ != nullptr; }
  bool is_multiway() const { return kind_ == OpKind::kMultiwayJoin; }

  RelId rel() const;  // leaf only
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  /// kMultiwayJoin only: the n-ary operands, in output-scheme order.
  const std::vector<ExprPtr>& mj_children() const { return children_; }
  /// kMultiwayJoin only: global leapfrog variable order (representative
  /// attribute per join variable).
  const std::vector<AttrId>& mj_var_order() const { return var_order_; }
  const PredicatePtr& pred() const { return pred_; }
  bool preserves_left() const { return preserves_left_; }
  const AttrSet& goj_subset() const { return goj_subset_; }
  const std::vector<AttrId>& project_cols() const { return project_cols_; }
  bool project_dedup() const { return project_dedup_; }

  /// Cached 64-bit structural hash, computed bottom-up at construction in
  /// O(1) per node. Structurally equal trees (same shapes, operators,
  /// orientation flags, and predicate structure modulo AND/OR conjunct
  /// order) have equal hashes; this is the key the closure engine, BT-path
  /// search, and interner use instead of `Fingerprint()`.
  uint64_t hash() const { return hash_; }

  /// Attributes visible in this expression's result.
  const AttrSet& attrs() const { return attrs_; }
  /// Bitmask over RelIds of the ground relations mentioned below this node
  /// (requires RelId < 64).
  uint64_t rel_mask() const { return rel_mask_; }
  /// Number of ground-relation leaves.
  int num_leaves() const { return num_leaves_; }

  /// Infix rendering, e.g. `(R1 - R2) -> R3`. With `with_preds`, each
  /// operator shows its predicate: `(R1 -[R1.k=R2.k] R2)`.
  std::string ToString(const Catalog* catalog = nullptr,
                       bool with_preds = false) const;

  /// Deterministic structural serialization: equal strings iff equal trees
  /// (same shapes, operators, orientation flags, and predicate structure).
  /// Kept as a debug / golden-test renderer; hot paths key on `hash()`.
  std::string Fingerprint() const;

 private:
  Expr() = default;
  static std::shared_ptr<Expr> Make() {
    return std::shared_ptr<Expr>(new Expr());
  }
  static ExprPtr FinishBinary(std::shared_ptr<Expr> node);
  static ExprPtr FinishFiltering(std::shared_ptr<Expr> node);
  /// Computes the node's hash and hands it to the interning arena;
  /// returns the canonical shared node. Every factory funnels through it.
  static ExprPtr Seal(std::shared_ptr<Expr> node);

  OpKind kind_ = OpKind::kLeaf;
  RelId rel_ = 0;
  ExprPtr left_;
  ExprPtr right_;
  PredicatePtr pred_;
  bool preserves_left_ = true;
  AttrSet goj_subset_;
  std::vector<AttrId> project_cols_;
  bool project_dedup_ = false;
  std::vector<ExprPtr> children_;    // kMultiwayJoin only
  std::vector<AttrId> var_order_;    // kMultiwayJoin only

  AttrSet attrs_;
  uint64_t rel_mask_ = 0;
  int num_leaves_ = 0;
  uint64_t hash_ = 0;
};

/// Counters of the hash-consing arena the Expr factories intern through.
/// `hits` counts constructions that returned an existing structurally
/// equal node; `live` is the number of interned nodes still referenced
/// somewhere (expired entries are pruned lazily).
struct ExprInternStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  size_t live = 0;
};
ExprInternStats GetExprInternStats();

/// The operator symbol as it appears between this node's operands in the
/// paper's infix notation: "-", "->", "<-", "|>", "<|", ">-", "-<",
/// "GOJ". (">-"/"-<" denote semijoin keeping left/right.)
std::string OpSymbol(const Expr& node);

/// Structural equality via the cached hashes. With the interning arena,
/// structurally equal live trees are normally the same pointer already;
/// the hash comparison covers nodes whose twins were constructed after
/// the originals expired.
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);

}  // namespace fro

#endif  // FRO_ALGEBRA_EXPR_H_
