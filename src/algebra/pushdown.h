// Restriction pushdown (paper Section 4: "we do not usually want to
// explore alternative positions, but instead just want to do restrictions
// as early as possible").
//
// Rules, conservative with respect to outerjoin semantics:
//  * through a regular join, a conjunct moves into whichever operand
//    covers all its attributes; conjuncts spanning both operands stay;
//  * through an outerjoin, a conjunct may move only into the PRESERVED
//    operand ("a restriction on the preserved operand of an outerjoin can
//    be moved"); conjuncts on null-supplied attributes stay above the
//    outerjoin — pushing them would change results (e.g. IS NULL
//    restrictions select exactly the padded tuples);
//  * through antijoin/semijoin, into the kept operand;
//  * never into a generalized outerjoin (its padding depends on the full
//    operand);
//  * restrictions merge and projections/unions are transparent when the
//    referenced attributes survive.
//
// Use together with SimplifyOuterjoins: simplification first turns
// outerjoins under strong filters into joins, unlocking deeper pushdown.

#ifndef FRO_ALGEBRA_PUSHDOWN_H_
#define FRO_ALGEBRA_PUSHDOWN_H_

#include "algebra/expr.h"

namespace fro {

struct PushdownResult {
  ExprPtr expr;
  /// Conjuncts now evaluated strictly below an operator they used to sit
  /// above.
  int conjuncts_pushed = 0;
};

PushdownResult PushDownRestrictions(const ExprPtr& expr);

}  // namespace fro

#endif  // FRO_ALGEBRA_PUSHDOWN_H_
