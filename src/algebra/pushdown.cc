#include "algebra/pushdown.h"

#include <vector>

#include "common/check.h"

namespace fro {

namespace {

// Rewrites `expr` with `pending` restriction conjuncts arriving from
// above. Conjuncts that can sink into an operand are forwarded (counted
// in `*pushed`); the rest wrap the rewritten node in a Restrict.
ExprPtr Push(const ExprPtr& expr, std::vector<PredicatePtr> pending,
             int* pushed) {
  auto wrap = [&](ExprPtr node, std::vector<PredicatePtr> stay) -> ExprPtr {
    if (stay.empty()) return node;
    return Expr::Restrict(std::move(node), Predicate::And(std::move(stay)));
  };

  switch (expr->kind()) {
    case OpKind::kRestrict: {
      for (const PredicatePtr& conjunct :
           expr->pred()->Conjuncts(expr->pred())) {
        pending.push_back(conjunct);
      }
      return Push(expr->left(), std::move(pending), pushed);
    }
    case OpKind::kLeaf:
      return wrap(expr, std::move(pending));
    case OpKind::kProject: {
      // A conjunct survives projection if its attributes are kept.
      std::vector<PredicatePtr> below, stay;
      AttrSet kept = expr->attrs();
      for (const PredicatePtr& conjunct : pending) {
        if (kept.ContainsAll(conjunct->References())) {
          below.push_back(conjunct);
          ++*pushed;
        } else {
          stay.push_back(conjunct);
        }
      }
      ExprPtr child = Push(expr->left(), std::move(below), pushed);
      return wrap(Expr::Project(child, expr->project_cols(),
                                expr->project_dedup()),
                  std::move(stay));
    }
    case OpKind::kUnion: {
      // Restrictions distribute over (padded) union only when every
      // branch carries the referenced attributes; otherwise padding could
      // turn the conjunct's columns to null and an IS NULL conjunct would
      // change meaning. Keep it simple and safe: only push conjuncts
      // covered by BOTH branches.
      std::vector<PredicatePtr> both, stay;
      for (const PredicatePtr& conjunct : pending) {
        if (expr->left()->attrs().ContainsAll(conjunct->References()) &&
            expr->right()->attrs().ContainsAll(conjunct->References())) {
          both.push_back(conjunct);
          ++*pushed;
        } else {
          stay.push_back(conjunct);
        }
      }
      ExprPtr left = Push(expr->left(), both, pushed);
      ExprPtr right = Push(expr->right(), both, pushed);
      return wrap(Expr::Union(std::move(left), std::move(right)),
                  std::move(stay));
    }
    case OpKind::kGoj: {
      // Never through a GOJ.
      ExprPtr left = Push(expr->left(), {}, pushed);
      ExprPtr right = Push(expr->right(), {}, pushed);
      return wrap(Expr::Goj(std::move(left), std::move(right), expr->pred(),
                            expr->goj_subset()),
                  std::move(pending));
    }
    case OpKind::kMultiwayJoin: {
      // Inner-join semantics: a conjunct covered by a single operand may
      // sink into it; the rest stay above the node.
      std::vector<std::vector<PredicatePtr>> to_child(
          expr->mj_children().size());
      std::vector<PredicatePtr> stay;
      for (const PredicatePtr& conjunct : pending) {
        const AttrSet& refs = conjunct->References();
        bool sunk = false;
        for (size_t i = 0; i < expr->mj_children().size(); ++i) {
          if (expr->mj_children()[i]->attrs().ContainsAll(refs)) {
            to_child[i].push_back(conjunct);
            ++*pushed;
            sunk = true;
            break;
          }
        }
        if (!sunk) stay.push_back(conjunct);
      }
      std::vector<ExprPtr> children;
      children.reserve(expr->mj_children().size());
      for (size_t i = 0; i < expr->mj_children().size(); ++i) {
        children.push_back(
            Push(expr->mj_children()[i], std::move(to_child[i]), pushed));
      }
      return wrap(Expr::MultiwayJoin(std::move(children), expr->pred(),
                                     expr->mj_var_order()),
                  std::move(stay));
    }
    default: {
      FRO_CHECK(expr->is_join_like());
      // Which operands may receive conjuncts?
      bool left_open = true;
      bool right_open = true;
      if (expr->kind() == OpKind::kOuterJoin) {
        (expr->preserves_left() ? right_open : left_open) = false;
      } else if (expr->kind() == OpKind::kAntijoin ||
                 expr->kind() == OpKind::kSemijoin) {
        // Only the kept operand's attributes are visible above anyway.
        (expr->preserves_left() ? right_open : left_open) = false;
      }
      std::vector<PredicatePtr> to_left, to_right, stay;
      for (const PredicatePtr& conjunct : pending) {
        const AttrSet& refs = conjunct->References();
        if (left_open && expr->left()->attrs().ContainsAll(refs)) {
          to_left.push_back(conjunct);
          ++*pushed;
        } else if (right_open &&
                   expr->right()->attrs().ContainsAll(refs)) {
          to_right.push_back(conjunct);
          ++*pushed;
        } else {
          stay.push_back(conjunct);
        }
      }
      ExprPtr left = Push(expr->left(), std::move(to_left), pushed);
      ExprPtr right = Push(expr->right(), std::move(to_right), pushed);
      ExprPtr node;
      switch (expr->kind()) {
        case OpKind::kJoin:
          node = Expr::Join(std::move(left), std::move(right), expr->pred());
          break;
        case OpKind::kOuterJoin:
          node = Expr::OuterJoin(std::move(left), std::move(right),
                                 expr->pred(), expr->preserves_left());
          break;
        case OpKind::kAntijoin:
          node = Expr::Antijoin(std::move(left), std::move(right),
                                expr->pred(), expr->preserves_left());
          break;
        case OpKind::kSemijoin:
          node = Expr::Semijoin(std::move(left), std::move(right),
                                expr->pred(), expr->preserves_left());
          break;
        default:
          FRO_CHECK(false);
      }
      return wrap(std::move(node), std::move(stay));
    }
  }
}

}  // namespace

PushdownResult PushDownRestrictions(const ExprPtr& expr) {
  PushdownResult result;
  result.expr = Push(expr, {}, &result.conjuncts_pushed);
  return result;
}

}  // namespace fro
