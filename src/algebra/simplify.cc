#include "algebra/simplify.h"

#include <vector>

#include "common/check.h"

namespace fro {

namespace {

// True if any ancestor filtering predicate rejects tuples that are null on
// all of `padded_attrs`.
bool SomePredicateRejectsPadding(const std::vector<PredicatePtr>& filters,
                                 const AttrSet& padded_attrs) {
  for (const PredicatePtr& pred : filters) {
    AttrSet overlap = pred->References().Intersect(padded_attrs);
    if (overlap.empty()) continue;
    if (pred->IsStrongWrt(overlap)) return true;
  }
  return false;
}

ExprPtr Rewrite(const ExprPtr& expr, std::vector<PredicatePtr>* filters,
                int* converted) {
  switch (expr->kind()) {
    case OpKind::kLeaf:
      return expr;
    case OpKind::kRestrict: {
      filters->push_back(expr->pred());
      ExprPtr child = Rewrite(expr->left(), filters, converted);
      filters->pop_back();
      return child == expr->left() ? expr
                                   : Expr::Restrict(child, expr->pred());
    }
    case OpKind::kProject: {
      // Projection neither filters nor blocks the rule.
      ExprPtr child = Rewrite(expr->left(), filters, converted);
      return child == expr->left()
                 ? expr
                 : Expr::Project(child, expr->project_cols(),
                                 expr->project_dedup());
    }
    case OpKind::kUnion: {
      // Filters above a union apply to both branches.
      ExprPtr left = Rewrite(expr->left(), filters, converted);
      ExprPtr right = Rewrite(expr->right(), filters, converted);
      return (left == expr->left() && right == expr->right())
                 ? expr
                 : Expr::Union(left, right);
    }
    case OpKind::kJoin:
    case OpKind::kSemijoin: {
      // Join and semijoin predicates filter: a tuple failing them is
      // dropped, so they participate in the rule.
      filters->push_back(expr->pred());
      ExprPtr left = Rewrite(expr->left(), filters, converted);
      ExprPtr right = Rewrite(expr->right(), filters, converted);
      filters->pop_back();
      if (left == expr->left() && right == expr->right()) return expr;
      if (expr->kind() == OpKind::kJoin) {
        return Expr::Join(left, right, expr->pred());
      }
      return Expr::Semijoin(left, right, expr->pred(),
                            expr->preserves_left());
    }
    case OpKind::kAntijoin: {
      // An antijoin *keeps* tuples that fail its predicate, so its
      // predicate does not reject padded tuples below the kept side; and
      // the dropped side does not reach the output at all.
      ExprPtr left = Rewrite(expr->left(), filters, converted);
      ExprPtr right = Rewrite(expr->right(), filters, converted);
      if (left == expr->left() && right == expr->right()) return expr;
      return Expr::Antijoin(left, right, expr->pred(),
                            expr->preserves_left());
    }
    case OpKind::kGoj: {
      ExprPtr left = Rewrite(expr->left(), filters, converted);
      ExprPtr right = Rewrite(expr->right(), filters, converted);
      if (left == expr->left() && right == expr->right()) return expr;
      return Expr::Goj(left, right, expr->pred(), expr->goj_subset());
    }
    case OpKind::kMultiwayJoin: {
      // A multiway join filters like an inner join: its predicate drops
      // failing tuples, so it participates in the rule. The predicate may
      // be absent (pure cross core).
      if (expr->pred() != nullptr) filters->push_back(expr->pred());
      bool changed = false;
      std::vector<ExprPtr> children;
      children.reserve(expr->mj_children().size());
      for (const ExprPtr& child : expr->mj_children()) {
        children.push_back(Rewrite(child, filters, converted));
        if (children.back() != child) changed = true;
      }
      if (expr->pred() != nullptr) filters->pop_back();
      if (!changed) return expr;
      return Expr::MultiwayJoin(std::move(children), expr->pred(),
                                expr->mj_var_order());
    }
    case OpKind::kOuterJoin: {
      const ExprPtr& null_side =
          expr->preserves_left() ? expr->right() : expr->left();
      if (SomePredicateRejectsPadding(*filters, null_side->attrs())) {
        ++*converted;
        ExprPtr as_join = Expr::Join(expr->left(), expr->right(),
                                     expr->pred());
        return Rewrite(as_join, filters, converted);
      }
      // The outerjoin's own predicate does not filter its preserved side
      // and filters only matched tuples of the null-supplied side (an
      // unmatched lower padded tuple survives as a newly padded tuple), so
      // it is not pushed as a filter into either branch.
      ExprPtr left = Rewrite(expr->left(), filters, converted);
      ExprPtr right = Rewrite(expr->right(), filters, converted);
      if (left == expr->left() && right == expr->right()) return expr;
      return Expr::OuterJoin(left, right, expr->pred(),
                             expr->preserves_left());
    }
  }
  FRO_CHECK(false) << "unhandled kind";
  return nullptr;
}

}  // namespace

SimplifyResult SimplifyOuterjoins(const ExprPtr& expr) {
  SimplifyResult result;
  std::vector<PredicatePtr> filters;
  result.expr = Rewrite(expr, &filters, &result.outerjoins_converted);
  return result;
}

}  // namespace fro
