#include "algebra/eval.h"

#include "common/check.h"

namespace fro {

namespace {

class Evaluator {
 public:
  Evaluator(const Database& db, const EvalOptions& options, EvalStats* stats)
      : db_(db), options_(options), stats_(stats) {}

  Relation EvalNode(const ExprPtr& expr, bool is_root) {
    FRO_CHECK(expr != nullptr);
    switch (expr->kind()) {
      case OpKind::kLeaf:
        return db_.relation(expr->rel());
      case OpKind::kRestrict: {
        Relation input = EvalNode(expr->left(), /*is_root=*/false);
        KernelStats ks;
        Relation out = Restrict(input, expr->pred(), &ks);
        Account(ks, expr->left(), nullptr, out, is_root);
        return out;
      }
      case OpKind::kProject: {
        Relation input = EvalNode(expr->left(), /*is_root=*/false);
        KernelStats ks;
        Relation out = Project(input, expr->project_cols(),
                               expr->project_dedup(), &ks);
        Account(ks, expr->left(), nullptr, out, is_root);
        return out;
      }
      case OpKind::kUnion: {
        Relation a = EvalNode(expr->left(), /*is_root=*/false);
        Relation b = EvalNode(expr->right(), /*is_root=*/false);
        Relation out = BagUnionPadded(a, b);
        KernelStats ks;
        ks.left_reads = a.NumRows();
        ks.right_reads = b.NumRows();
        ks.emitted = out.NumRows();
        Account(ks, expr->left(), expr->right().get(), out, is_root);
        return out;
      }
      case OpKind::kMultiwayJoin: {
        // Reference semantics: the filtered cross product of the operands
        // in scheme order. The leapfrog executor must agree with this
        // exactly (bag multiplicities, 3VL residuals, column order).
        Relation acc = EvalNode(expr->mj_children()[0], /*is_root=*/false);
        if (expr->mj_children()[0]->is_leaf() && stats_ != nullptr) {
          stats_->base_tuples_read += acc.NumRows();
        }
        for (size_t i = 1; i < expr->mj_children().size(); ++i) {
          const ExprPtr& child = expr->mj_children()[i];
          Relation next = EvalNode(child, /*is_root=*/false);
          KernelStats ks;
          Relation joined = CrossProduct(acc, next, &ks);
          if (stats_ != nullptr) {
            stats_->totals += ks;
            if (child->is_leaf()) stats_->base_tuples_read += ks.right_reads;
            stats_->intermediate_tuples += joined.NumRows();
          }
          acc = std::move(joined);
        }
        if (expr->pred() == nullptr) return acc;
        KernelStats ks;
        Relation out = Restrict(acc, expr->pred(), &ks);
        if (stats_ != nullptr) {
          stats_->totals += ks;
          if (!is_root) stats_->intermediate_tuples += out.NumRows();
        }
        return out;
      }
      default:
        return EvalJoinLike(expr, is_root);
    }
  }

 private:
  Relation EvalJoinLike(const ExprPtr& expr, bool is_root) {
    // Kernels are left-anchored; realize `<-` style forms by swapping.
    ExprPtr anchor = expr->left();
    ExprPtr other = expr->right();
    const bool swapped =
        !expr->preserves_left() && expr->kind() != OpKind::kJoin;
    if (swapped) std::swap(anchor, other);

    Relation anchor_rel = EvalNode(anchor, /*is_root=*/false);
    Relation other_rel = EvalNode(other, /*is_root=*/false);

    // A persistent index on the inner base relation, if one covers the
    // predicate's equi-key columns.
    const HashIndex* prebuilt = nullptr;
    if (options_.indexes != nullptr && other->is_leaf()) {
      EquiKeys keys = ExtractEquiKeys(expr->pred(), anchor_rel.scheme(),
                                      other_rel.scheme());
      if (keys.Usable()) {
        prebuilt = options_.indexes->Find(db_, other->rel(), keys.right);
      }
    }

    KernelStats ks;
    Relation out;
    switch (expr->kind()) {
      case OpKind::kJoin:
        out = Join(anchor_rel, other_rel, expr->pred(), options_.algo, &ks,
                   prebuilt);
        break;
      case OpKind::kOuterJoin:
        out = LeftOuterJoin(anchor_rel, other_rel, expr->pred(),
                            options_.algo, &ks, prebuilt);
        break;
      case OpKind::kAntijoin:
        out = Antijoin(anchor_rel, other_rel, expr->pred(), options_.algo,
                       &ks, prebuilt);
        break;
      case OpKind::kSemijoin:
        out = Semijoin(anchor_rel, other_rel, expr->pred(), options_.algo,
                       &ks, prebuilt);
        break;
      case OpKind::kGoj:
        FRO_CHECK(!swapped);
        out = GeneralizedOuterJoin(anchor_rel, other_rel, expr->pred(),
                                   expr->goj_subset(), options_.algo, &ks);
        break;
      default:
        FRO_CHECK(false) << "not a join-like operator";
    }
    Account(ks, anchor, other.get(), out, is_root);
    return out;
  }

  // `left_child` / `right_child` are the expressions whose evaluations fed
  // the kernel's left/right inputs (right_child may be null for unary
  // operators).
  void Account(const KernelStats& ks, const ExprPtr& left_child,
               const Expr* right_child, const Relation& out, bool is_root) {
    if (stats_ == nullptr) return;
    stats_->totals += ks;
    if (left_child->is_leaf()) stats_->base_tuples_read += ks.left_reads;
    if (right_child != nullptr && right_child->is_leaf()) {
      stats_->base_tuples_read += ks.right_reads;
    }
    if (!is_root) stats_->intermediate_tuples += out.NumRows();
  }

  const Database& db_;
  const EvalOptions& options_;
  EvalStats* stats_;
};

}  // namespace

Relation Eval(const ExprPtr& expr, const Database& db,
              const EvalOptions& options, EvalStats* stats) {
  Evaluator evaluator(db, options, stats);
  return evaluator.EvalNode(expr, /*is_root=*/true);
}

}  // namespace fro
