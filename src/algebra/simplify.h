// The Section 4 simplification rule: outerjoin-to-join conversion under
// strong predicates.
//
// "Suppose the query includes a predicate (restriction or regular join)
//  that is strong in some attributes of relation R. Consider the path in
//  the implementing tree going from that predicate to R. If an outerjoin
//  is in that path and R is in its null-supplied subtree, then replace the
//  operator by regular join. This simplification is carried out before
//  creation of the query graph."
//
// Implementation note: a predicate above an outerjoin kills that
// outerjoin's padded tuples exactly when it is strong with respect to the
// subset of its referenced attributes that come from the null-supplied
// subtree (all of those are null in a padded tuple). Strength w.r.t. a
// subset implies strength w.r.t. any superset, so testing against the full
// intersection is the weakest sufficient check.

#ifndef FRO_ALGEBRA_SIMPLIFY_H_
#define FRO_ALGEBRA_SIMPLIFY_H_

#include "algebra/expr.h"

namespace fro {

struct SimplifyResult {
  ExprPtr expr;
  /// Number of outerjoin operators replaced by regular joins.
  int outerjoins_converted = 0;
};

/// Applies the Section 4 rule throughout the tree. Filtering predicates
/// considered are those of Restrict, Join, and Semijoin ancestors; an
/// outerjoin's own predicate and predicates of antijoin ancestors never
/// filter padded tuples and are ignored.
SimplifyResult SimplifyOuterjoins(const ExprPtr& expr);

}  // namespace fro

#endif  // FRO_ALGEBRA_SIMPLIFY_H_
