// Basic transforms (BTs) on implementing trees: reversal and
// reassociation (paper Section 3.2, Fig. 4), plus the classification of
// each reassociation as result-preserving / conditionally preserving /
// non-preserving according to the identities of Section 2.
//
// A reassociation site is named after the paper's `[X o1 Y o2 Z]`
// notation: the left-to-right form rewrites ((X o1 Y) o2 Z) into
// (X o1 (Y o2 Z)); the right-to-left form is its inverse. Conjuncts of the
// upper predicate that reference X are migrated between the operators (the
// cyclic-graph case of identity 1), which is permitted only when both
// operators are regular joins.
//
// Classification table (operator symbols written as in `OpSymbol`; the key
// is the pair (o1, o2) of the identity's left-hand side `(X o1 Y) o2 Z`):
//
//   ( -, -)  always   identity 1
//   ( -,->)  always   identity 11
//   (<-,->)  always   identity 13
//   (->,->)  requires o2's predicate strong w.r.t. Y   identity 12
//   (<-,<-)  requires o1's predicate strong w.r.t. Y   identity 12 mirrored
//   (<-, -)  always   join on the preserved side commutes (from 11/13)
//   ( -,|>)  always   identity 2
//   (<||,|>) always   identity 3       [written (<| , |>)]
//   (<|, -), (<|,->), (<-,|>)          always (derived; checked empirically)
//   ( -,>-), (<-,>-)                   always (semijoin; Section 6.3)
//   everything else                    non-preserving
//
// The two non-preserving patterns the paper highlights, [X -> Y - Z]
// (Example 2) and [X -> Y <- Z], land in the "everything else" row; Lemma 2
// shows they cannot be applicable when the query graph is nice.

#ifndef FRO_ALGEBRA_TRANSFORM_H_
#define FRO_ALGEBRA_TRANSFORM_H_

#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/status.h"

namespace fro {

/// Identifies a node: child directions from the root (false = left).
using ExprPath = std::vector<bool>;

/// A basic-transform application site.
struct BtSite {
  enum class Kind : uint8_t {
    kReversal,  // swap operands, flip to the symmetric form
    kAssocLR,   // ((X o1 Y) o2 Z) -> (X o1 (Y o2 Z))
    kAssocRL,   // (X o1 (Y o2 Z)) -> ((X o1 Y) o2 Z)
  };
  Kind kind;
  ExprPath path;
};

enum class Preservation : uint8_t {
  kAlways,
  kConditional,  // preserving iff the strength side condition holds
  kNever,
};

struct BtClassification {
  Preservation preservation = Preservation::kNever;
  /// For kConditional: whether the strength condition holds here.
  bool condition_holds = false;
  /// Human-readable rule, e.g. "identity 12 (requires P_yz strong wrt Y)".
  std::string rule;

  bool IsPreserving() const {
    return preservation == Preservation::kAlways ||
           (preservation == Preservation::kConditional && condition_holds);
  }
};

/// The node at `path`, or null if the path walks off the tree.
const Expr* NodeAt(const ExprPtr& root, const ExprPath& path);

/// Returns a copy of the tree with the subtree at `path` replaced.
ExprPtr ReplaceAt(const ExprPtr& root, const ExprPath& path,
                  ExprPtr replacement);

/// True if `site` can be applied to `root` (right node kinds, predicate
/// reference pattern splittable, resulting tree well formed).
bool IsApplicable(const ExprPtr& root, const BtSite& site);

/// All applicable BT sites in the tree (reversals at every join-like node
/// plus every applicable reassociation).
std::vector<BtSite> FindApplicableBts(const ExprPtr& root);

/// Applies the BT; fails if not applicable.
Result<ExprPtr> ApplyBt(const ExprPtr& root, const BtSite& site);

/// Classifies the (applicable) BT per the table above. Reversals are
/// always preserving.
BtClassification ClassifyBt(const ExprPtr& root, const BtSite& site);

}  // namespace fro

#endif  // FRO_ALGEBRA_TRANSFORM_H_
