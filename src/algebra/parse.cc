#include "algebra/parse.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace fro {

namespace {

struct AlgToken {
  enum class Kind : uint8_t { kIdent, kNumber, kString, kPunct, kEnd };
  Kind kind;
  std::string text;
  size_t offset;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '@';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '#' || c == '@';
}

// Multi-character operators, longest first.
const char* kPuncts[] = {"->", "<-", "|>", "<|", ">-", "-<", "<=",
                         ">=", "<>", "-",  "=",  "<",  ">",  "(",
                         ")",  "[",  "]",  "."};

Result<std::vector<AlgToken>> Tokenize(const std::string& input) {
  std::vector<AlgToken> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(input[j])) ++j;
      out.push_back({AlgToken::Kind::kIdent, input.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      bool saw_dot = false;
      while (j < n &&
             (std::isdigit(static_cast<unsigned char>(input[j])) ||
              (!saw_dot && input[j] == '.' && j + 1 < n &&
               std::isdigit(static_cast<unsigned char>(input[j + 1]))))) {
        if (input[j] == '.') saw_dot = true;
        ++j;
      }
      out.push_back({AlgToken::Kind::kNumber, input.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && input[j] != '\'') ++j;
      if (j == n) {
        return InvalidArgument("unterminated string at offset " +
                               std::to_string(start));
      }
      out.push_back(
          {AlgToken::Kind::kString, input.substr(i + 1, j - i - 1), start});
      i = j + 1;
      continue;
    }
    bool matched = false;
    for (const char* punct : kPuncts) {
      size_t len = std::char_traits<char>::length(punct);
      if (input.compare(i, len, punct) == 0) {
        out.push_back({AlgToken::Kind::kPunct, punct, start});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      return InvalidArgument(std::string("unexpected character '") + c +
                             "' at offset " + std::to_string(start));
    }
  }
  out.push_back({AlgToken::Kind::kEnd, "", n});
  return out;
}

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

class AlgebraParser {
 public:
  AlgebraParser(std::vector<AlgToken> tokens, const Database& db)
      : tokens_(std::move(tokens)), db_(db) {}

  Result<ExprPtr> ParseFullExpr() {
    FRO_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    FRO_RETURN_IF_ERROR(ExpectEnd());
    return expr;
  }

  Result<PredicatePtr> ParseFullPredicate() {
    FRO_ASSIGN_OR_RETURN(PredicatePtr pred, ParsePredicate());
    FRO_RETURN_IF_ERROR(ExpectEnd());
    return pred;
  }

 private:
  const AlgToken& Peek() const { return tokens_[pos_]; }
  const AlgToken& Advance() { return tokens_[pos_++]; }
  bool IsPunct(const char* text) const {
    return Peek().kind == AlgToken::Kind::kPunct && Peek().text == text;
  }
  bool IsKeyword(const char* word) const {
    return Peek().kind == AlgToken::Kind::kIdent &&
           Lower(Peek().text) == word;
  }
  Status Err(const std::string& message) const {
    return InvalidArgument(message + " at offset " +
                           std::to_string(Peek().offset));
  }
  Status ExpectPunct(const char* text) {
    if (!IsPunct(text)) return Err(std::string("expected '") + text + "'");
    Advance();
    return Status::Ok();
  }
  Status ExpectEnd() {
    if (Peek().kind != AlgToken::Kind::kEnd) {
      return Err("unexpected trailing input");
    }
    return Status::Ok();
  }

  Result<ExprPtr> ParseExpr() {
    if (Peek().kind == AlgToken::Kind::kIdent) {
      // `sigma[pred](expr)` is a restriction (matching ToString); a bare
      // identifier — even one spelled "sigma" — is a relation name.
      if (Lower(Peek().text) == "sigma" &&
          tokens_[pos_ + 1].kind == AlgToken::Kind::kPunct &&
          tokens_[pos_ + 1].text == "[") {
        Advance();
        Advance();
        FRO_ASSIGN_OR_RETURN(PredicatePtr pred, ParsePredicate());
        FRO_RETURN_IF_ERROR(ExpectPunct("]"));
        FRO_RETURN_IF_ERROR(ExpectPunct("("));
        FRO_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
        FRO_RETURN_IF_ERROR(ExpectPunct(")"));
        return Expr::Restrict(std::move(child), std::move(pred));
      }
      std::string name = Advance().text;
      FRO_ASSIGN_OR_RETURN(RelId rel, db_.catalog().FindRelation(name));
      return Expr::Leaf(rel, db_);
    }
    FRO_RETURN_IF_ERROR(ExpectPunct("("));
    FRO_ASSIGN_OR_RETURN(ExprPtr left, ParseExpr());
    // The operator symbol.
    if (Peek().kind != AlgToken::Kind::kPunct) {
      return Err("expected an operator symbol");
    }
    std::string op = Advance().text;
    // `[pred]` is optional: ToString omits it for predicate-free
    // (cartesian) operators, which must still round-trip.
    PredicatePtr pred;
    if (IsPunct("[")) {
      Advance();
      FRO_ASSIGN_OR_RETURN(pred, ParsePredicate());
      FRO_RETURN_IF_ERROR(ExpectPunct("]"));
    }
    FRO_ASSIGN_OR_RETURN(ExprPtr right, ParseExpr());
    FRO_RETURN_IF_ERROR(ExpectPunct(")"));
    if (op == "-") return Expr::Join(left, right, pred);
    if (op == "->") return Expr::OuterJoin(left, right, pred, true);
    if (op == "<-") return Expr::OuterJoin(left, right, pred, false);
    if (op == "|>") return Expr::Antijoin(left, right, pred, true);
    if (op == "<|") return Expr::Antijoin(left, right, pred, false);
    if (op == ">-") return Expr::Semijoin(left, right, pred, true);
    if (op == "-<") return Expr::Semijoin(left, right, pred, false);
    return InvalidArgument("unknown operator '" + op + "'");
  }

  Result<PredicatePtr> ParsePredicate() {
    FRO_ASSIGN_OR_RETURN(PredicatePtr first, ParseConjunction());
    std::vector<PredicatePtr> disjuncts = {first};
    while (IsKeyword("or")) {
      Advance();
      FRO_ASSIGN_OR_RETURN(PredicatePtr next, ParseConjunction());
      disjuncts.push_back(next);
    }
    return Predicate::Or(std::move(disjuncts));
  }

  Result<PredicatePtr> ParseConjunction() {
    FRO_ASSIGN_OR_RETURN(PredicatePtr first, ParseAtom());
    std::vector<PredicatePtr> conjuncts = {first};
    while (IsKeyword("and")) {
      Advance();
      FRO_ASSIGN_OR_RETURN(PredicatePtr next, ParseAtom());
      conjuncts.push_back(next);
    }
    return Predicate::And(std::move(conjuncts));
  }

  Result<PredicatePtr> ParseAtom() {
    if (IsKeyword("true")) {
      Advance();
      return Predicate::Const(true);
    }
    if (IsKeyword("false")) {
      Advance();
      return Predicate::Const(false);
    }
    if (IsKeyword("not")) {
      Advance();
      FRO_RETURN_IF_ERROR(ExpectPunct("("));
      FRO_ASSIGN_OR_RETURN(PredicatePtr inner, ParsePredicate());
      FRO_RETURN_IF_ERROR(ExpectPunct(")"));
      return Predicate::Not(inner);
    }
    if (IsPunct("(")) {
      Advance();
      FRO_ASSIGN_OR_RETURN(PredicatePtr inner, ParsePredicate());
      FRO_RETURN_IF_ERROR(ExpectPunct(")"));
      return inner;
    }
    FRO_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    if (IsKeyword("is")) {
      Advance();
      if (!IsKeyword("null")) return Err("expected 'null' after 'is'");
      Advance();
      return Predicate::IsNull(lhs);
    }
    if (Peek().kind != AlgToken::Kind::kPunct) {
      return Err("expected a comparison operator");
    }
    std::string op = Advance().text;
    FRO_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());
    CmpOp cmp;
    if (op == "=") {
      cmp = CmpOp::kEq;
    } else if (op == "<>") {
      cmp = CmpOp::kNe;
    } else if (op == "<") {
      cmp = CmpOp::kLt;
    } else if (op == "<=") {
      cmp = CmpOp::kLe;
    } else if (op == ">") {
      cmp = CmpOp::kGt;
    } else if (op == ">=") {
      cmp = CmpOp::kGe;
    } else {
      return InvalidArgument("unknown comparison '" + op + "'");
    }
    return Predicate::Cmp(cmp, lhs, rhs);
  }

  Result<Operand> ParseOperand() {
    switch (Peek().kind) {
      case AlgToken::Kind::kIdent: {
        std::string rel = Advance().text;
        if (Lower(rel) == "null") return Operand::Literal(Value::Null());
        FRO_RETURN_IF_ERROR(ExpectPunct("."));
        if (Peek().kind != AlgToken::Kind::kIdent) {
          return Err("expected attribute name");
        }
        std::string attr = Advance().text;
        FRO_ASSIGN_OR_RETURN(AttrId id, db_.catalog().FindAttr(rel, attr));
        return Operand::Column(id);
      }
      case AlgToken::Kind::kNumber: {
        std::string text = Advance().text;
        if (text.find('.') != std::string::npos) {
          return Operand::Literal(Value::Double(std::stod(text)));
        }
        return Operand::Literal(Value::Int(std::stoll(text)));
      }
      case AlgToken::Kind::kString:
        return Operand::Literal(Value::String(Advance().text));
      default:
        return Err("expected a column or literal");
    }
  }

  std::vector<AlgToken> tokens_;
  const Database& db_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseAlgebra(const std::string& text, const Database& db) {
  FRO_ASSIGN_OR_RETURN(std::vector<AlgToken> tokens, Tokenize(text));
  AlgebraParser parser(std::move(tokens), db);
  return parser.ParseFullExpr();
}

Result<PredicatePtr> ParseAlgebraPredicate(const std::string& text,
                                           const Database& db) {
  FRO_ASSIGN_OR_RETURN(std::vector<AlgToken> tokens, Tokenize(text));
  AlgebraParser parser(std::move(tokens), db);
  return parser.ParseFullPredicate();
}

}  // namespace fro
