// Textual form of algebra expressions, matching the notation the paper
// (and this library's ToString) uses.
//
// Grammar (fully parenthesized; keywords case-insensitive):
//   expr    := IDENT                                  -- a relation name
//            | '(' expr OP '[' pred ']' expr ')'
//            | 'sigma' '[' pred ']' '(' expr ')'      -- restriction
//   OP      := '-'   (join)        | '->' | '<-'  (outerjoin)
//            | '|>' | '<|' (antijoin) | '>-' | '-<' (semijoin)
//   pred    := conj ('or' conj)*
//   conj    := atom ('and' atom)*
//   atom    := '(' pred ')'
//            | 'not' '(' pred ')'
//            | 'TRUE' | 'FALSE'
//            | operand 'is' 'null'
//            | operand CMP operand
//   CMP     := '=' | '<>' | '<' | '<=' | '>' | '>='
//   operand := IDENT '.' IDENT | NUMBER | 'STRING'
//
// Example:
//   ParseAlgebra("((R1 -[R1.k=R2.k] R2) ->[R2.fk=R3.k] R3)", db)

#ifndef FRO_ALGEBRA_PARSE_H_
#define FRO_ALGEBRA_PARSE_H_

#include <string>

#include "algebra/expr.h"
#include "common/status.h"

namespace fro {

/// Parses `text` against the relations and attributes registered in `db`.
Result<ExprPtr> ParseAlgebra(const std::string& text, const Database& db);

/// Parses just a predicate (the `pred` production above).
Result<PredicatePtr> ParseAlgebraPredicate(const std::string& text,
                                           const Database& db);

}  // namespace fro

#endif  // FRO_ALGEBRA_PARSE_H_
