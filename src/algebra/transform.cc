#include "algebra/transform.h"

#include "common/check.h"

namespace fro {

namespace {

// Single-character operator codes for classification keys:
//   '-' join, '>' outerjoin preserving left, '<' outerjoin preserving
//   right, 'a' antijoin keeping left, 'A' antijoin keeping right,
//   's' semijoin keeping left, 'S' semijoin keeping right, '?' other.
char OpCode(const Expr& node) {
  switch (node.kind()) {
    case OpKind::kJoin:
      return '-';
    case OpKind::kOuterJoin:
      return node.preserves_left() ? '>' : '<';
    case OpKind::kAntijoin:
      return node.preserves_left() ? 'a' : 'A';
    case OpKind::kSemijoin:
      return node.preserves_left() ? 's' : 'S';
    default:
      return '?';
  }
}

// Rebuilds a join-like node with the given children (keeping kind,
// orientation flag, and GOJ payload are not needed here: GOJ is excluded
// from BTs).
ExprPtr MakeJoinLike(OpKind kind, bool preserves_left, ExprPtr left,
                     ExprPtr right, PredicatePtr pred) {
  switch (kind) {
    case OpKind::kJoin:
      return Expr::Join(std::move(left), std::move(right), std::move(pred));
    case OpKind::kOuterJoin:
      return Expr::OuterJoin(std::move(left), std::move(right),
                             std::move(pred), preserves_left);
    case OpKind::kAntijoin:
      return Expr::Antijoin(std::move(left), std::move(right),
                            std::move(pred), preserves_left);
    case OpKind::kSemijoin:
      return Expr::Semijoin(std::move(left), std::move(right),
                            std::move(pred), preserves_left);
    default:
      FRO_CHECK(false) << "MakeJoinLike on " << OpKindName(kind);
  }
  return nullptr;
}

// The ingredients of a reassociation, independent of direction: the three
// subtrees and the two operators of the *identity's left-hand side*
// `(X o1 Y) o2 Z`.
struct AssocParts {
  ExprPtr x, y, z;
  // Lower operator (o1: between X and Y).
  OpKind kind1;
  bool flag1;
  PredicatePtr pred1;
  // Upper operator (o2: between (X o1 Y) and Z).
  OpKind kind2;
  bool flag2;
  PredicatePtr pred2;
  char code1, code2;
};

// Extracts reassociation parts; returns false if the node shapes do not
// match (non-binary operators, GOJ, etc.).
bool ExtractParts(const Expr* node, BtSite::Kind kind, AssocParts* parts) {
  if (node == nullptr || !node->is_join_like()) return false;
  if (kind == BtSite::Kind::kAssocLR) {
    const ExprPtr& lower = node->left();
    if (!lower->is_join_like()) return false;
    parts->x = lower->left();
    parts->y = lower->right();
    parts->z = node->right();
    parts->kind1 = lower->kind();
    parts->flag1 = lower->preserves_left();
    parts->pred1 = lower->pred();
    parts->kind2 = node->kind();
    parts->flag2 = node->preserves_left();
    parts->pred2 = node->pred();
    parts->code1 = OpCode(*lower);
    parts->code2 = OpCode(*node);
    return true;
  }
  // kAssocRL: the current tree is the identity's right-hand side
  // X o1 (Y o2 Z); o1 is this node, o2 is the right child.
  const ExprPtr& lower = node->right();
  if (!lower->is_join_like()) return false;
  parts->x = node->left();
  parts->y = lower->left();
  parts->z = lower->right();
  parts->kind1 = node->kind();
  parts->flag1 = node->preserves_left();
  parts->pred1 = node->pred();
  parts->kind2 = lower->kind();
  parts->flag2 = lower->preserves_left();
  parts->pred2 = lower->pred();
  parts->code1 = OpCode(*node);
  parts->code2 = OpCode(*lower);
  return true;
}

// Splits the conjuncts of the predicate that crosses between {X, Y} and
// the third subtree into those anchored at X and those anchored at Y.
// Returns false when the split is impossible (a conjunct touches both X
// and Y, or touches neither).
bool SplitConjuncts(const PredicatePtr& pred, const AttrSet& x_attrs,
                    const AttrSet& y_attrs,
                    std::vector<PredicatePtr>* touching_x,
                    std::vector<PredicatePtr>* touching_y) {
  if (pred == nullptr) return false;
  for (const PredicatePtr& conjunct : pred->Conjuncts(pred)) {
    const bool tx = conjunct->References().Overlaps(x_attrs);
    const bool ty = conjunct->References().Overlaps(y_attrs);
    if (tx == ty) return false;  // both or neither: cannot split
    (tx ? touching_x : touching_y)->push_back(conjunct);
  }
  return true;
}

// Checks that a join-like node's predicate is evaluable and meaningful:
// its references are covered by the operand outputs and every conjunct
// touches both sides.
bool WellFormedPred(const PredicatePtr& pred, const AttrSet& left_attrs,
                    const AttrSet& right_attrs) {
  if (pred == nullptr) return false;
  AttrSet visible = left_attrs.Union(right_attrs);
  if (!visible.ContainsAll(pred->References())) return false;
  for (const PredicatePtr& conjunct : pred->Conjuncts(pred)) {
    if (!conjunct->References().Overlaps(left_attrs)) return false;
    if (!conjunct->References().Overlaps(right_attrs)) return false;
  }
  return true;
}

// Builds the reassociation result. For kAssocLR the result is
// X o1 (Y o2 Z); for kAssocRL the result is (X o1 Y) o2 Z. Returns null if
// the transform is not applicable.
ExprPtr BuildAssocResult(const Expr* node, BtSite::Kind kind) {
  AssocParts parts;
  if (!ExtractParts(node, kind, &parts)) return nullptr;

  if (kind == BtSite::Kind::kAssocLR) {
    // Split o2's conjuncts: those touching X migrate up to o1.
    std::vector<PredicatePtr> movable, staying;
    if (!SplitConjuncts(parts.pred2, parts.x->attrs(), parts.y->attrs(),
                        &movable, &staying)) {
      return nullptr;
    }
    // "Applicable only if the predicate in o2 references some relation in
    // Q2" — and the new lower operator may not become a cross product.
    if (staying.empty()) return nullptr;
    // Conjunct migration is legal only between two regular joins.
    if (!movable.empty() &&
        (parts.kind1 != OpKind::kJoin || parts.kind2 != OpKind::kJoin)) {
      return nullptr;
    }
    PredicatePtr lower_pred = Predicate::And(staying);
    std::vector<PredicatePtr> upper_parts =
        parts.pred1->Conjuncts(parts.pred1);
    upper_parts.insert(upper_parts.end(), movable.begin(), movable.end());
    PredicatePtr upper_pred = Predicate::And(upper_parts);

    if (!WellFormedPred(lower_pred, parts.y->attrs(), parts.z->attrs())) {
      return nullptr;
    }
    ExprPtr lower = MakeJoinLike(parts.kind2, parts.flag2, parts.y, parts.z,
                                 lower_pred);
    if (!WellFormedPred(upper_pred, parts.x->attrs(), lower->attrs())) {
      return nullptr;
    }
    return MakeJoinLike(parts.kind1, parts.flag1, parts.x, lower, upper_pred);
  }

  // kAssocRL: conjuncts of o1 touching Z migrate down to o2.
  std::vector<PredicatePtr> movable, staying;
  if (!SplitConjuncts(parts.pred1, parts.z->attrs(), parts.y->attrs(),
                      &movable, &staying)) {
    return nullptr;
  }
  if (staying.empty()) return nullptr;  // new lower op would be a product
  if (!movable.empty() &&
      (parts.kind1 != OpKind::kJoin || parts.kind2 != OpKind::kJoin)) {
    return nullptr;
  }
  PredicatePtr lower_pred = Predicate::And(staying);
  std::vector<PredicatePtr> upper_parts = parts.pred2->Conjuncts(parts.pred2);
  upper_parts.insert(upper_parts.end(), movable.begin(), movable.end());
  PredicatePtr upper_pred = Predicate::And(upper_parts);

  if (!WellFormedPred(lower_pred, parts.x->attrs(), parts.y->attrs())) {
    return nullptr;
  }
  ExprPtr lower = MakeJoinLike(parts.kind1, parts.flag1, parts.x, parts.y,
                               lower_pred);
  if (!WellFormedPred(upper_pred, lower->attrs(), parts.z->attrs())) {
    return nullptr;
  }
  return MakeJoinLike(parts.kind2, parts.flag2, lower, parts.z, upper_pred);
}

ExprPtr BuildReversalResult(const Expr* node) {
  if (node == nullptr || !node->is_join_like()) return nullptr;
  return MakeJoinLike(node->kind(), !node->preserves_left(), node->right(),
                      node->left(), node->pred());
}

ExprPtr BuildResult(const Expr* node, BtSite::Kind kind) {
  if (kind == BtSite::Kind::kReversal) return BuildReversalResult(node);
  return BuildAssocResult(node, kind);
}

}  // namespace

const Expr* NodeAt(const ExprPtr& root, const ExprPath& path) {
  const Expr* node = root.get();
  for (bool go_right : path) {
    if (node == nullptr) return nullptr;
    node = go_right ? node->right().get() : node->left().get();
  }
  return node;
}

namespace {

// Returns the shared_ptr at `path` (needed to reuse subtrees).
ExprPtr SharedNodeAt(const ExprPtr& root, const ExprPath& path) {
  ExprPtr node = root;
  for (bool go_right : path) {
    FRO_CHECK(node != nullptr);
    node = go_right ? node->right() : node->left();
  }
  return node;
}

ExprPtr ReplaceAtImpl(const ExprPtr& root, const ExprPath& path, size_t depth,
                      ExprPtr replacement) {
  if (depth == path.size()) return replacement;
  FRO_CHECK(root != nullptr);
  const bool go_right = path[depth];
  ExprPtr new_left = root->left();
  ExprPtr new_right = root->right();
  if (go_right) {
    new_right = ReplaceAtImpl(root->right(), path, depth + 1,
                              std::move(replacement));
  } else {
    new_left =
        ReplaceAtImpl(root->left(), path, depth + 1, std::move(replacement));
  }
  switch (root->kind()) {
    case OpKind::kJoin:
    case OpKind::kOuterJoin:
    case OpKind::kAntijoin:
    case OpKind::kSemijoin:
      return MakeJoinLike(root->kind(), root->preserves_left(),
                          std::move(new_left), std::move(new_right),
                          root->pred());
    case OpKind::kGoj:
      return Expr::Goj(std::move(new_left), std::move(new_right),
                       root->pred(), root->goj_subset());
    case OpKind::kUnion:
      return Expr::Union(std::move(new_left), std::move(new_right));
    case OpKind::kRestrict:
      return Expr::Restrict(std::move(new_left), root->pred());
    case OpKind::kProject:
      return Expr::Project(std::move(new_left), root->project_cols(),
                           root->project_dedup());
    case OpKind::kLeaf:
      FRO_CHECK(false) << "path descends through a leaf";
  }
  return nullptr;
}

}  // namespace

ExprPtr ReplaceAt(const ExprPtr& root, const ExprPath& path,
                  ExprPtr replacement) {
  return ReplaceAtImpl(root, path, 0, std::move(replacement));
}

bool IsApplicable(const ExprPtr& root, const BtSite& site) {
  const Expr* node = NodeAt(root, site.path);
  return BuildResult(node, site.kind) != nullptr;
}

namespace {

void CollectSites(const ExprPtr& root, const ExprPtr& node, ExprPath* path,
                  std::vector<BtSite>* out) {
  if (node == nullptr || node->is_leaf()) return;
  if (node->is_join_like()) {
    for (BtSite::Kind kind :
         {BtSite::Kind::kReversal, BtSite::Kind::kAssocLR,
          BtSite::Kind::kAssocRL}) {
      BtSite site{kind, *path};
      if (BuildResult(node.get(), kind) != nullptr) out->push_back(site);
    }
  }
  if (node->left() != nullptr) {
    path->push_back(false);
    CollectSites(root, node->left(), path, out);
    path->pop_back();
  }
  if (node->right() != nullptr) {
    path->push_back(true);
    CollectSites(root, node->right(), path, out);
    path->pop_back();
  }
}

}  // namespace

std::vector<BtSite> FindApplicableBts(const ExprPtr& root) {
  std::vector<BtSite> out;
  ExprPath path;
  CollectSites(root, root, &path, &out);
  return out;
}

Result<ExprPtr> ApplyBt(const ExprPtr& root, const BtSite& site) {
  const ExprPtr node = SharedNodeAt(root, site.path);
  ExprPtr result = BuildResult(node.get(), site.kind);
  if (result == nullptr) {
    return FailedPrecondition("basic transform not applicable at site");
  }
  return ReplaceAt(root, site.path, std::move(result));
}

BtClassification ClassifyBt(const ExprPtr& root, const BtSite& site) {
  BtClassification out;
  if (site.kind == BtSite::Kind::kReversal) {
    out.preservation = Preservation::kAlways;
    out.rule = "reversal (symmetric form)";
    return out;
  }
  const Expr* node = NodeAt(root, site.path);
  AssocParts parts;
  FRO_CHECK(ExtractParts(node, site.kind, &parts))
      << "ClassifyBt on a non-applicable site";

  const std::string key{parts.code1, parts.code2};
  auto always = [&](const char* rule) {
    out.preservation = Preservation::kAlways;
    out.rule = rule;
  };
  auto never = [&](const char* rule) {
    out.preservation = Preservation::kNever;
    out.rule = rule;
  };

  if (key == "--") {
    always("identity 1 (join associativity)");
  } else if (key == "->") {
    always("identity 11 (join below outerjoin)");
  } else if (key == "<>") {
    always("identity 13 (outerjoins sharing the preserved operand)");
  } else if (key == ">>") {
    out.preservation = Preservation::kConditional;
    out.condition_holds = parts.pred2->IsStrongWrt(
        parts.pred2->References().Intersect(parts.y->attrs()));
    out.rule = "identity 12 (requires P_yz strong w.r.t. Y)";
  } else if (key == "<<") {
    out.preservation = Preservation::kConditional;
    out.condition_holds = parts.pred1->IsStrongWrt(
        parts.pred1->References().Intersect(parts.y->attrs()));
    out.rule = "identity 12 mirrored (requires P_xy strong w.r.t. Y)";
  } else if (key == "<-") {
    always("join on the preserved side of an outerjoin commutes");
  } else if (key == "-a") {
    always("identity 2 (join/antijoin associativity)");
  } else if (key == "Aa") {
    always("identity 3 (antijoin associativity)");
  } else if (key == "A-" || key == "A>" || key == "<a") {
    always("derived antijoin/outerjoin commutation");
  } else if (key == "-s" || key == "<s") {
    always("semijoin over join/preserved outerjoin (Section 6.3)");
  } else if (key == ">-") {
    never("forbidden pattern [X -> Y - Z] (Example 2)");
  } else if (key == "><") {
    never("forbidden pattern [X -> Y <- Z]");
  } else {
    never("no supporting identity");
  }
  return out;
}

}  // namespace fro
