#include "algebra/expr.h"

#include <algorithm>

#include "common/check.h"

namespace fro {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kLeaf:
      return "Leaf";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kOuterJoin:
      return "OuterJoin";
    case OpKind::kAntijoin:
      return "Antijoin";
    case OpKind::kSemijoin:
      return "Semijoin";
    case OpKind::kGoj:
      return "Goj";
    case OpKind::kUnion:
      return "Union";
    case OpKind::kRestrict:
      return "Restrict";
    case OpKind::kProject:
      return "Project";
  }
  return "?";
}

ExprPtr Expr::Leaf(RelId rel, const Database& db) {
  FRO_CHECK_LT(rel, 64u) << "RelIds must fit the 64-bit relation mask";
  auto node = Make();
  node->kind_ = OpKind::kLeaf;
  node->rel_ = rel;
  node->attrs_ = db.scheme(rel).ToAttrSet();
  node->rel_mask_ = 1ULL << rel;
  node->num_leaves_ = 1;
  return node;
}

ExprPtr Expr::FinishBinary(std::shared_ptr<Expr> node) {
  FRO_CHECK(node->left_ != nullptr && node->right_ != nullptr);
  FRO_CHECK((node->left_->rel_mask_ & node->right_->rel_mask_) == 0)
      << "operands share ground relations";
  node->rel_mask_ = node->left_->rel_mask_ | node->right_->rel_mask_;
  node->num_leaves_ = node->left_->num_leaves_ + node->right_->num_leaves_;
  return node;
}

ExprPtr Expr::Join(ExprPtr left, ExprPtr right, PredicatePtr pred) {
  auto node = Make();
  node->kind_ = OpKind::kJoin;
  node->attrs_ = left->attrs().Union(right->attrs());
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->pred_ = std::move(pred);
  return FinishBinary(std::move(node));
}

ExprPtr Expr::OuterJoin(ExprPtr left, ExprPtr right, PredicatePtr pred,
                        bool preserves_left) {
  auto node = Make();
  node->kind_ = OpKind::kOuterJoin;
  node->attrs_ = left->attrs().Union(right->attrs());
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->pred_ = std::move(pred);
  node->preserves_left_ = preserves_left;
  return FinishBinary(std::move(node));
}

ExprPtr Expr::Antijoin(ExprPtr left, ExprPtr right, PredicatePtr pred,
                       bool keeps_left) {
  auto node = Make();
  node->kind_ = OpKind::kAntijoin;
  node->attrs_ = keeps_left ? left->attrs() : right->attrs();
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->pred_ = std::move(pred);
  node->preserves_left_ = keeps_left;
  return FinishBinary(std::move(node));
}

ExprPtr Expr::Semijoin(ExprPtr left, ExprPtr right, PredicatePtr pred,
                       bool keeps_left) {
  auto node = Make();
  node->kind_ = OpKind::kSemijoin;
  node->attrs_ = keeps_left ? left->attrs() : right->attrs();
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->pred_ = std::move(pred);
  node->preserves_left_ = keeps_left;
  return FinishBinary(std::move(node));
}

ExprPtr Expr::Goj(ExprPtr left, ExprPtr right, PredicatePtr pred,
                  AttrSet subset) {
  FRO_CHECK(left->attrs().ContainsAll(subset))
      << "GOJ subset must come from the left operand";
  auto node = Make();
  node->kind_ = OpKind::kGoj;
  node->attrs_ = left->attrs().Union(right->attrs());
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->pred_ = std::move(pred);
  node->goj_subset_ = std::move(subset);
  return FinishBinary(std::move(node));
}

ExprPtr Expr::Union(ExprPtr left, ExprPtr right) {
  auto node = Make();
  node->kind_ = OpKind::kUnion;
  node->attrs_ = left->attrs().Union(right->attrs());
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  // Union operands may (and in the paper's identities, do) mention the
  // same ground relations, so bypass the disjointness check.
  node->rel_mask_ = node->left_->rel_mask() | node->right_->rel_mask();
  node->num_leaves_ = node->left_->num_leaves() + node->right_->num_leaves();
  return node;
}

ExprPtr Expr::Restrict(ExprPtr child, PredicatePtr pred) {
  FRO_CHECK(pred != nullptr);
  auto node = Make();
  node->kind_ = OpKind::kRestrict;
  node->attrs_ = child->attrs();
  node->rel_mask_ = child->rel_mask();
  node->num_leaves_ = child->num_leaves();
  node->left_ = std::move(child);
  node->pred_ = std::move(pred);
  return node;
}

ExprPtr Expr::Project(ExprPtr child, std::vector<AttrId> cols, bool dedup) {
  auto node = Make();
  node->kind_ = OpKind::kProject;
  node->attrs_ = AttrSet(cols);
  node->rel_mask_ = child->rel_mask();
  node->num_leaves_ = child->num_leaves();
  node->left_ = std::move(child);
  node->project_cols_ = std::move(cols);
  node->project_dedup_ = dedup;
  return node;
}

RelId Expr::rel() const {
  FRO_CHECK(kind_ == OpKind::kLeaf);
  return rel_;
}

std::string OpSymbol(const Expr& node) {
  switch (node.kind()) {
    case OpKind::kJoin:
      return "-";
    case OpKind::kOuterJoin:
      return node.preserves_left() ? "->" : "<-";
    case OpKind::kAntijoin:
      return node.preserves_left() ? "|>" : "<|";
    case OpKind::kSemijoin:
      return node.preserves_left() ? ">-" : "-<";
    case OpKind::kGoj:
      return "GOJ";
    case OpKind::kUnion:
      return "U";
    default:
      return OpKindName(node.kind());
  }
}

std::string Expr::ToString(const Catalog* catalog, bool with_preds) const {
  switch (kind_) {
    case OpKind::kLeaf:
      return catalog != nullptr ? catalog->RelationName(rel_)
                                : "R" + std::to_string(rel_);
    case OpKind::kRestrict:
      return "sigma[" + pred_->ToString(catalog) + "](" +
             left_->ToString(catalog, with_preds) + ")";
    case OpKind::kProject: {
      std::string cols;
      for (size_t i = 0; i < project_cols_.size(); ++i) {
        if (i > 0) cols += ",";
        cols += catalog != nullptr ? catalog->AttrName(project_cols_[i])
                                   : "#" + std::to_string(project_cols_[i]);
      }
      return std::string(project_dedup_ ? "pi" : "pi_bag") + "[" + cols +
             "](" + left_->ToString(catalog, with_preds) + ")";
    }
    default: {
      std::string op = OpSymbol(*this);
      if (kind_ == OpKind::kGoj) {
        op += "[";
        for (size_t i = 0; i < goj_subset_.size(); ++i) {
          if (i > 0) op += ",";
          AttrId attr = goj_subset_.ids()[i];
          op += catalog != nullptr ? catalog->AttrName(attr)
                                   : "#" + std::to_string(attr);
        }
        op += "]";
      }
      if (with_preds && pred_ != nullptr) {
        op += "[" + pred_->ToString(catalog) + "]";
      }
      return "(" + left_->ToString(catalog, with_preds) + " " + op + " " +
             right_->ToString(catalog, with_preds) + ")";
    }
  }
}

namespace {

// Deterministic predicate rendering that is insensitive to the order of
// AND/OR children: basic transforms migrate conjuncts between operators
// and rebuild conjunctions in different orders, and two trees differing
// only in conjunct order are the same implementing tree.
std::string CanonicalPredFingerprint(const Predicate& pred) {
  if (pred.kind() == Predicate::Kind::kAnd ||
      pred.kind() == Predicate::Kind::kOr) {
    std::vector<std::string> parts;
    parts.reserve(pred.children().size());
    for (const PredicatePtr& child : pred.children()) {
      parts.push_back(CanonicalPredFingerprint(*child));
    }
    std::sort(parts.begin(), parts.end());
    std::string sep = pred.kind() == Predicate::Kind::kAnd ? "&" : "|";
    std::string out = "(";
    for (size_t i = 0; i < parts.size(); ++i) {
      if (i > 0) out += sep;
      out += parts[i];
    }
    return out + ")";
  }
  if (pred.kind() == Predicate::Kind::kNot) {
    return "!(" + CanonicalPredFingerprint(*pred.children()[0]) + ")";
  }
  return pred.ToString(nullptr);
}

}  // namespace

std::string Expr::Fingerprint() const {
  switch (kind_) {
    case OpKind::kLeaf:
      return "L" + std::to_string(rel_);
    case OpKind::kRestrict:
      return "S{" + CanonicalPredFingerprint(*pred_) + "}(" +
             left_->Fingerprint() + ")";
    case OpKind::kProject: {
      std::string cols;
      for (AttrId attr : project_cols_) cols += std::to_string(attr) + ",";
      return std::string(project_dedup_ ? "P" : "Pb") + "{" + cols + "}(" +
             left_->Fingerprint() + ")";
    }
    default: {
      std::string op = OpSymbol(*this);
      if (kind_ == OpKind::kGoj) {
        op += "{";
        for (AttrId attr : goj_subset_) op += std::to_string(attr) + ",";
        op += "}";
      }
      std::string pred_part =
          pred_ != nullptr ? "{" + CanonicalPredFingerprint(*pred_) + "}"
                           : "{}";
      return "(" + left_->Fingerprint() + op + pred_part +
             right_->Fingerprint() + ")";
    }
  }
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->Fingerprint() == b->Fingerprint();
}

}  // namespace fro
