#include "algebra/expr.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <unordered_map>

#include "common/check.h"
#include "common/hash.h"

namespace fro {

namespace {

// --- Structural hashing ---------------------------------------------------

// Bottom-up: children are already sealed, so their hashes are O(1) reads.
// Leaf hashes include the scheme because the same RelId can carry
// different attributes under different databases, and the arena is
// process-global.
uint64_t ComputeNodeHash(const Expr& node) {
  uint64_t h = HashMix(0x51, static_cast<uint64_t>(node.kind()));
  switch (node.kind()) {
    case OpKind::kLeaf:
      h = HashMix(h, node.rel());
      for (AttrId attr : node.attrs()) h = HashMix(h, attr);
      return h;
    case OpKind::kRestrict:
      h = HashMix(h, node.pred()->Hash());
      return HashMix(h, node.left()->hash());
    case OpKind::kProject:
      h = HashMix(h, node.project_dedup() ? 1 : 2);
      for (AttrId attr : node.project_cols()) h = HashMix(h, attr);
      return HashMix(h, node.left()->hash());
    case OpKind::kMultiwayJoin:
      h = HashMix(h, node.pred() != nullptr ? node.pred()->Hash() : 0);
      for (const ExprPtr& child : node.mj_children()) {
        h = HashMix(h, child->hash());
      }
      for (AttrId attr : node.mj_var_order()) h = HashMix(h, attr);
      return h;
    default:
      h = HashMix(h, node.preserves_left() ? 1 : 2);
      h = HashMix(h, node.pred() != nullptr ? node.pred()->Hash() : 0);
      if (node.kind() == OpKind::kGoj) {
        for (AttrId attr : node.goj_subset()) h = HashMix(h, attr);
      }
      h = HashMix(h, node.left()->hash());
      return HashMix(h, node.right()->hash());
  }
}

// --- Hash-consing arena ---------------------------------------------------

// Structural equality between a candidate and an interned node with the
// same hash. Children of both nodes are interned, so structurally equal
// subtrees are pointer-equal and the check stays shallow; predicates are
// not interned, so they compare structurally (cheap: hash first).
bool SameNode(const Expr& a, const Expr& b) {
  if (a.kind() != b.kind()) return false;
  auto preds_equal = [&]() {
    if (a.pred() == b.pred()) return true;  // covers both-null and shared
    if (a.pred() == nullptr || b.pred() == nullptr) return false;
    return PredEquals(*a.pred(), *b.pred());
  };
  switch (a.kind()) {
    case OpKind::kLeaf:
      return a.rel() == b.rel() && a.attrs() == b.attrs();
    case OpKind::kRestrict:
      return a.left() == b.left() && preds_equal();
    case OpKind::kProject:
      return a.left() == b.left() &&
             a.project_dedup() == b.project_dedup() &&
             a.project_cols() == b.project_cols();
    case OpKind::kMultiwayJoin:
      return a.mj_children() == b.mj_children() &&
             a.mj_var_order() == b.mj_var_order() && preds_equal();
    default:
      return a.left() == b.left() && a.right() == b.right() &&
             a.preserves_left() == b.preserves_left() &&
             a.goj_subset() == b.goj_subset() && preds_equal();
  }
}

// The arena is sharded so parallel enumeration (closure workers) can
// intern concurrently without a global bottleneck. Entries are weak: the
// arena never keeps a tree alive, and expired slots are swept lazily when
// a shard grows past its high-water mark.
struct InternShard {
  std::mutex mu;
  std::unordered_multimap<uint64_t, std::weak_ptr<const Expr>> nodes;
  size_t prune_at = 256;
};

constexpr size_t kInternShards = 64;

std::array<InternShard, kInternShards>& InternShards() {
  // Leaked intentionally: interning may run during static destruction of
  // test fixtures holding ExprPtrs.
  static auto* shards = new std::array<InternShard, kInternShards>();
  return *shards;
}

std::atomic<uint64_t> g_intern_hits{0};
std::atomic<uint64_t> g_intern_misses{0};

}  // namespace

ExprInternStats GetExprInternStats() {
  ExprInternStats stats;
  stats.hits = g_intern_hits.load(std::memory_order_relaxed);
  stats.misses = g_intern_misses.load(std::memory_order_relaxed);
  for (InternShard& shard : InternShards()) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [hash, weak] : shard.nodes) {
      if (!weak.expired()) ++stats.live;
    }
  }
  return stats;
}

ExprPtr Expr::Seal(std::shared_ptr<Expr> node) {
  node->hash_ = ComputeNodeHash(*node);
  InternShard& shard = InternShards()[node->hash_ % kInternShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [lo, hi] = shard.nodes.equal_range(node->hash_);
  for (auto it = lo; it != hi; ++it) {
    if (ExprPtr existing = it->second.lock()) {
      if (SameNode(*existing, *node)) {
        g_intern_hits.fetch_add(1, std::memory_order_relaxed);
        return existing;
      }
    }
  }
  g_intern_misses.fetch_add(1, std::memory_order_relaxed);
  if (shard.nodes.size() >= shard.prune_at) {
    for (auto it = shard.nodes.begin(); it != shard.nodes.end();) {
      it = it->second.expired() ? shard.nodes.erase(it) : std::next(it);
    }
    shard.prune_at = std::max<size_t>(256, shard.nodes.size() * 2);
  }
  shard.nodes.emplace(node->hash_, node);
  return node;
}

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kLeaf:
      return "Leaf";
    case OpKind::kJoin:
      return "Join";
    case OpKind::kOuterJoin:
      return "OuterJoin";
    case OpKind::kAntijoin:
      return "Antijoin";
    case OpKind::kSemijoin:
      return "Semijoin";
    case OpKind::kGoj:
      return "Goj";
    case OpKind::kUnion:
      return "Union";
    case OpKind::kRestrict:
      return "Restrict";
    case OpKind::kProject:
      return "Project";
    case OpKind::kMultiwayJoin:
      return "MultiwayJoin";
  }
  return "?";
}

ExprPtr Expr::Leaf(RelId rel, const Database& db) {
  FRO_CHECK_LT(rel, 64u) << "RelIds must fit the 64-bit relation mask";
  auto node = Make();
  node->kind_ = OpKind::kLeaf;
  node->rel_ = rel;
  node->attrs_ = db.scheme(rel).ToAttrSet();
  node->rel_mask_ = 1ULL << rel;
  node->num_leaves_ = 1;
  return Seal(std::move(node));
}

ExprPtr Expr::FinishBinary(std::shared_ptr<Expr> node) {
  FRO_CHECK(node->left_ != nullptr && node->right_ != nullptr);
  FRO_CHECK((node->left_->rel_mask_ & node->right_->rel_mask_) == 0)
      << "operands share ground relations";
  node->rel_mask_ = node->left_->rel_mask_ | node->right_->rel_mask_;
  node->num_leaves_ = node->left_->num_leaves_ + node->right_->num_leaves_;
  return Seal(std::move(node));
}

ExprPtr Expr::FinishFiltering(std::shared_ptr<Expr> node) {
  FRO_CHECK(node->left_ != nullptr && node->right_ != nullptr);
  // Semijoin/antijoin emit tuples of the kept side only, so rel_mask_
  // (output provenance) covers just that side. This lets a Yannakakis
  // program join a relation that already served as a probe side without
  // tripping the plain-join disjointness check.
  const ExprPtr& kept = node->preserves_left_ ? node->left_ : node->right_;
  node->rel_mask_ = kept->rel_mask_;
  node->num_leaves_ = node->left_->num_leaves_ + node->right_->num_leaves_;
  return Seal(std::move(node));
}

ExprPtr Expr::Join(ExprPtr left, ExprPtr right, PredicatePtr pred) {
  auto node = Make();
  node->kind_ = OpKind::kJoin;
  node->attrs_ = left->attrs().Union(right->attrs());
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->pred_ = std::move(pred);
  return FinishBinary(std::move(node));
}

ExprPtr Expr::OuterJoin(ExprPtr left, ExprPtr right, PredicatePtr pred,
                        bool preserves_left) {
  auto node = Make();
  node->kind_ = OpKind::kOuterJoin;
  node->attrs_ = left->attrs().Union(right->attrs());
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->pred_ = std::move(pred);
  node->preserves_left_ = preserves_left;
  return FinishBinary(std::move(node));
}

ExprPtr Expr::Antijoin(ExprPtr left, ExprPtr right, PredicatePtr pred,
                       bool keeps_left) {
  auto node = Make();
  node->kind_ = OpKind::kAntijoin;
  node->attrs_ = keeps_left ? left->attrs() : right->attrs();
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->pred_ = std::move(pred);
  node->preserves_left_ = keeps_left;
  return FinishFiltering(std::move(node));
}

ExprPtr Expr::Semijoin(ExprPtr left, ExprPtr right, PredicatePtr pred,
                       bool keeps_left) {
  auto node = Make();
  node->kind_ = OpKind::kSemijoin;
  node->attrs_ = keeps_left ? left->attrs() : right->attrs();
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->pred_ = std::move(pred);
  node->preserves_left_ = keeps_left;
  return FinishFiltering(std::move(node));
}

ExprPtr Expr::Goj(ExprPtr left, ExprPtr right, PredicatePtr pred,
                  AttrSet subset) {
  FRO_CHECK(left->attrs().ContainsAll(subset))
      << "GOJ subset must come from the left operand";
  auto node = Make();
  node->kind_ = OpKind::kGoj;
  node->attrs_ = left->attrs().Union(right->attrs());
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  node->pred_ = std::move(pred);
  node->goj_subset_ = std::move(subset);
  return FinishBinary(std::move(node));
}

ExprPtr Expr::Union(ExprPtr left, ExprPtr right) {
  auto node = Make();
  node->kind_ = OpKind::kUnion;
  node->attrs_ = left->attrs().Union(right->attrs());
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  // Union operands may (and in the paper's identities, do) mention the
  // same ground relations, so bypass the disjointness check.
  node->rel_mask_ = node->left_->rel_mask() | node->right_->rel_mask();
  node->num_leaves_ = node->left_->num_leaves() + node->right_->num_leaves();
  return Seal(std::move(node));
}

ExprPtr Expr::Restrict(ExprPtr child, PredicatePtr pred) {
  FRO_CHECK(pred != nullptr);
  auto node = Make();
  node->kind_ = OpKind::kRestrict;
  node->attrs_ = child->attrs();
  node->rel_mask_ = child->rel_mask();
  node->num_leaves_ = child->num_leaves();
  node->left_ = std::move(child);
  node->pred_ = std::move(pred);
  return Seal(std::move(node));
}

ExprPtr Expr::Project(ExprPtr child, std::vector<AttrId> cols, bool dedup) {
  auto node = Make();
  node->kind_ = OpKind::kProject;
  node->attrs_ = AttrSet(cols);
  node->rel_mask_ = child->rel_mask();
  node->num_leaves_ = child->num_leaves();
  node->left_ = std::move(child);
  node->project_cols_ = std::move(cols);
  node->project_dedup_ = dedup;
  return Seal(std::move(node));
}

ExprPtr Expr::MultiwayJoin(std::vector<ExprPtr> children, PredicatePtr pred,
                           std::vector<AttrId> var_order) {
  FRO_CHECK_GE(children.size(), 2u) << "MultiwayJoin needs >= 2 operands";
  auto node = Make();
  node->kind_ = OpKind::kMultiwayJoin;
  for (const ExprPtr& child : children) {
    FRO_CHECK(child != nullptr);
    FRO_CHECK((node->rel_mask_ & child->rel_mask()) == 0)
        << "multiway operands share ground relations";
    node->rel_mask_ |= child->rel_mask();
    node->num_leaves_ += child->num_leaves();
    node->attrs_ = node->attrs_.Union(child->attrs());
  }
  node->children_ = std::move(children);
  node->pred_ = std::move(pred);
  node->var_order_ = std::move(var_order);
  return Seal(std::move(node));
}

RelId Expr::rel() const {
  FRO_CHECK(kind_ == OpKind::kLeaf);
  return rel_;
}

std::string OpSymbol(const Expr& node) {
  switch (node.kind()) {
    case OpKind::kJoin:
      return "-";
    case OpKind::kOuterJoin:
      return node.preserves_left() ? "->" : "<-";
    case OpKind::kAntijoin:
      return node.preserves_left() ? "|>" : "<|";
    case OpKind::kSemijoin:
      return node.preserves_left() ? ">-" : "-<";
    case OpKind::kGoj:
      return "GOJ";
    case OpKind::kUnion:
      return "U";
    default:
      return OpKindName(node.kind());
  }
}

std::string Expr::ToString(const Catalog* catalog, bool with_preds) const {
  switch (kind_) {
    case OpKind::kLeaf:
      return catalog != nullptr ? catalog->RelationName(rel_)
                                : "R" + std::to_string(rel_);
    case OpKind::kRestrict:
      return "sigma[" + pred_->ToString(catalog) + "](" +
             left_->ToString(catalog, with_preds) + ")";
    case OpKind::kProject: {
      std::string cols;
      for (size_t i = 0; i < project_cols_.size(); ++i) {
        if (i > 0) cols += ",";
        cols += catalog != nullptr ? catalog->AttrName(project_cols_[i])
                                   : "#" + std::to_string(project_cols_[i]);
      }
      return std::string(project_dedup_ ? "pi" : "pi_bag") + "[" + cols +
             "](" + left_->ToString(catalog, with_preds) + ")";
    }
    case OpKind::kMultiwayJoin: {
      std::string out = "MJ(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString(catalog, with_preds);
      }
      out += ")";
      if (with_preds && pred_ != nullptr) {
        out += "[" + pred_->ToString(catalog) + "]";
      }
      return out;
    }
    default: {
      std::string op = OpSymbol(*this);
      if (kind_ == OpKind::kGoj) {
        op += "[";
        for (size_t i = 0; i < goj_subset_.size(); ++i) {
          if (i > 0) op += ",";
          AttrId attr = goj_subset_.ids()[i];
          op += catalog != nullptr ? catalog->AttrName(attr)
                                   : "#" + std::to_string(attr);
        }
        op += "]";
      }
      if (with_preds && pred_ != nullptr) {
        op += "[" + pred_->ToString(catalog) + "]";
      }
      return "(" + left_->ToString(catalog, with_preds) + " " + op + " " +
             right_->ToString(catalog, with_preds) + ")";
    }
  }
}

namespace {

// Deterministic predicate rendering that is insensitive to the order of
// AND/OR children: basic transforms migrate conjuncts between operators
// and rebuild conjunctions in different orders, and two trees differing
// only in conjunct order are the same implementing tree.
std::string CanonicalPredFingerprint(const Predicate& pred) {
  if (pred.kind() == Predicate::Kind::kAnd ||
      pred.kind() == Predicate::Kind::kOr) {
    std::vector<std::string> parts;
    parts.reserve(pred.children().size());
    for (const PredicatePtr& child : pred.children()) {
      parts.push_back(CanonicalPredFingerprint(*child));
    }
    std::sort(parts.begin(), parts.end());
    std::string sep = pred.kind() == Predicate::Kind::kAnd ? "&" : "|";
    std::string out = "(";
    for (size_t i = 0; i < parts.size(); ++i) {
      if (i > 0) out += sep;
      out += parts[i];
    }
    return out + ")";
  }
  if (pred.kind() == Predicate::Kind::kNot) {
    return "!(" + CanonicalPredFingerprint(*pred.children()[0]) + ")";
  }
  return pred.ToString(nullptr);
}

}  // namespace

std::string Expr::Fingerprint() const {
  switch (kind_) {
    case OpKind::kLeaf:
      return "L" + std::to_string(rel_);
    case OpKind::kRestrict:
      return "S{" + CanonicalPredFingerprint(*pred_) + "}(" +
             left_->Fingerprint() + ")";
    case OpKind::kProject: {
      std::string cols;
      for (AttrId attr : project_cols_) cols += std::to_string(attr) + ",";
      return std::string(project_dedup_ ? "P" : "Pb") + "{" + cols + "}(" +
             left_->Fingerprint() + ")";
    }
    case OpKind::kMultiwayJoin: {
      std::string out = "MJ{";
      out += pred_ != nullptr ? CanonicalPredFingerprint(*pred_) : "";
      out += "}[";
      for (AttrId attr : var_order_) out += std::to_string(attr) + ",";
      out += "](";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ",";
        out += children_[i]->Fingerprint();
      }
      return out + ")";
    }
    default: {
      std::string op = OpSymbol(*this);
      if (kind_ == OpKind::kGoj) {
        op += "{";
        for (AttrId attr : goj_subset_) op += std::to_string(attr) + ",";
        op += "}";
      }
      std::string pred_part =
          pred_ != nullptr ? "{" + CanonicalPredFingerprint(*pred_) + "}"
                           : "{}";
      return "(" + left_->Fingerprint() + op + pred_part +
             right_->Fingerprint() + ")";
    }
  }
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return a->hash() == b->hash();
}

}  // namespace fro
