// Bottom-up evaluation of expression trees (the paper's eval(Q)).

#ifndef FRO_ALGEBRA_EVAL_H_
#define FRO_ALGEBRA_EVAL_H_

#include "algebra/expr.h"
#include "relational/database.h"
#include "relational/exec_stats.h"
#include "relational/index_manager.h"
#include "relational/ops.h"

namespace fro {

struct EvalOptions {
  /// Kernel selection for all join-like operators.
  JoinAlgo algo = JoinAlgo::kAuto;
  /// Optional persistent indexes: when a join-like operator's inner input
  /// is a base relation with a matching index, the kernel probes it
  /// instead of building an ad-hoc hash table. Must outlive the call.
  const IndexManager* indexes = nullptr;
};

struct EvalStats {
  /// Counters summed over every operator of the tree (the same per-kernel
  /// counters the pipelined executor keeps per operator).
  ExecStats totals;
  /// Tuples retrieved from *ground* relations only — the accounting used by
  /// Example 1 of the paper (intermediate results live in memory and are
  /// not "retrieved").
  uint64_t base_tuples_read = 0;
  /// Sum of intermediate (non-root, non-leaf) result cardinalities: the
  /// classic C_out cost.
  uint64_t intermediate_tuples = 0;
};

/// Evaluates `expr` against `db`. All operator semantics follow the paper:
/// three-valued predicate logic, left/right symmetric forms, padding on
/// union. Deterministic for a fixed database.
Relation Eval(const ExprPtr& expr, const Database& db,
              const EvalOptions& options = EvalOptions(),
              EvalStats* stats = nullptr);

}  // namespace fro

#endif  // FRO_ALGEBRA_EVAL_H_
