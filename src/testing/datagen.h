// Random data generation for tests and benchmarks. Everything is
// deterministic given the caller's Rng.

#ifndef FRO_TESTING_DATAGEN_H_
#define FRO_TESTING_DATAGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "relational/database.h"

namespace fro {

struct RandomRowsOptions {
  int rows_min = 0;
  int rows_max = 6;
  /// Integer values are drawn uniformly from [0, domain).
  int domain = 4;
  /// Probability that any individual value is null instead.
  double null_prob = 0.15;
  /// Value skew: 0 draws uniformly; k > 0 draws k+1 uniform values and
  /// keeps the minimum, concentrating mass on small values (heavy hitters
  /// share join keys, the worst case binary join plans over cyclic cores
  /// blow up on). Integer-only, so replay is exact across platforms.
  int skew = 0;
  /// Remove duplicate rows (the GOJ identities of Section 6.2 assume
  /// duplicate-free relations).
  bool unique_rows = false;
};

/// Replaces the body of `rel` with random rows.
void FillRandomRows(Database* db, RelId rel, const RandomRowsOptions& options,
                    Rng* rng);

/// Creates a database with `num_relations` relations named R0..R{n-1},
/// each with `attrs_per_rel` integer columns named a0..a{k-1}, filled with
/// random rows.
std::unique_ptr<Database> MakeRandomDatabase(int num_relations,
                                             int attrs_per_rel,
                                             const RandomRowsOptions& options,
                                             Rng* rng);

/// The paper's motivating schema: DEPT(dno, dname, location) and
/// EMP(eno, ename, dno, rank), including a department with no employees.
std::unique_ptr<Database> MakeDeptEmpDatabase();

/// Builds the three-relation database of the paper's Example 1:
/// R1(k) with one row; R2(k, fk) and R3(k) with `n` rows each, where
/// R1.k = R2.k matches exactly one row and R2.fk = R3.k matches all rows
/// one-to-one.
std::unique_ptr<Database> MakeExample1Database(int n);

}  // namespace fro

#endif  // FRO_TESTING_DATAGEN_H_
