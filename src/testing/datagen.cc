#include "testing/datagen.h"

#include <algorithm>

#include "common/check.h"

namespace fro {

void FillRandomRows(Database* db, RelId rel, const RandomRowsOptions& options,
                    Rng* rng) {
  const size_t arity = db->scheme(rel).size();
  const int num_rows = static_cast<int>(
      rng->UniformInt(options.rows_min, options.rows_max));
  std::vector<Tuple> rows;
  rows.reserve(static_cast<size_t>(num_rows));
  for (int i = 0; i < num_rows; ++i) {
    std::vector<Value> values;
    values.reserve(arity);
    for (size_t c = 0; c < arity; ++c) {
      if (rng->Bernoulli(options.null_prob)) {
        values.push_back(Value::Null());
      } else {
        int64_t v = rng->UniformInt(0, options.domain - 1);
        for (int k = 0; k < options.skew; ++k) {
          v = std::min(v, rng->UniformInt(0, options.domain - 1));
        }
        values.push_back(Value::Int(v));
      }
    }
    rows.emplace_back(std::move(values));
  }
  if (options.unique_rows) {
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  }
  db->SetRows(rel, std::move(rows));
}

std::unique_ptr<Database> MakeRandomDatabase(int num_relations,
                                             int attrs_per_rel,
                                             const RandomRowsOptions& options,
                                             Rng* rng) {
  auto db = std::make_unique<Database>();
  for (int r = 0; r < num_relations; ++r) {
    std::vector<std::string> cols;
    for (int c = 0; c < attrs_per_rel; ++c) {
      cols.push_back("a" + std::to_string(c));
    }
    Result<RelId> rel = db->AddRelation("R" + std::to_string(r), cols);
    FRO_CHECK(rel.ok()) << rel.status().ToString();
    FillRandomRows(db.get(), *rel, options, rng);
  }
  return db;
}

std::unique_ptr<Database> MakeDeptEmpDatabase() {
  auto db = std::make_unique<Database>();
  RelId dept = *db->AddRelation("DEPT", {"dno", "dname", "location"});
  RelId emp = *db->AddRelation("EMP", {"eno", "ename", "dno", "rank"});
  db->AddRow(dept, {Value::Int(1), Value::String("Research"),
                    Value::String("Zurich")});
  db->AddRow(dept, {Value::Int(2), Value::String("Sales"),
                    Value::String("Queretaro")});
  db->AddRow(dept, {Value::Int(3), Value::String("Archive"),
                    Value::String("Zurich")});  // no employees
  db->AddRow(emp, {Value::Int(10), Value::String("Ana"), Value::Int(1),
                   Value::Int(12)});
  db->AddRow(emp, {Value::Int(11), Value::String("Bo"), Value::Int(1),
                   Value::Int(7)});
  db->AddRow(emp, {Value::Int(12), Value::String("Cy"), Value::Int(2),
                   Value::Int(11)});
  return db;
}

std::unique_ptr<Database> MakeExample1Database(int n) {
  FRO_CHECK_GE(n, 1);
  auto db = std::make_unique<Database>();
  RelId r1 = *db->AddRelation("R1", {"k"});
  RelId r2 = *db->AddRelation("R2", {"k", "fk"});
  RelId r3 = *db->AddRelation("R3", {"k"});
  // R1 holds the single key 0; R2's key i links to R3's key i.
  db->AddRow(r1, {Value::Int(0)});
  for (int i = 0; i < n; ++i) {
    db->AddRow(r2, {Value::Int(i), Value::Int(i)});
    db->AddRow(r3, {Value::Int(i)});
  }
  return db;
}

}  // namespace fro
