// The paper's Section 5 sample schema: EMPLOYEEs with a set-valued
// ChildName field, DEPARTMENTs with entity-valued Manager / Secretary /
// Audit fields, and REPORTs.

#ifndef FRO_TESTING_NESTED_SAMPLE_H_
#define FRO_TESTING_NESTED_SAMPLE_H_

#include "lang/model.h"

namespace fro {

/// Builds the company database used by the paper's Section 5 examples:
///
///   EMPLOYEE(D#, Rank, ChildName*)            4 employees; one childless;
///                                             one in no department
///   DEPARTMENT(D#, Location, ->Manager, ->Secretary, ->Audit)
///                                             3 departments (Zurich x2,
///                                             Queretaro x1); one with no
///                                             audit report and no
///                                             secretary
///   REPORT(Title, Cost)                       2 reports
NestedDb MakeCompanyNestedDb();

/// The company database scaled up for load tests: `scale` copies of the
/// base population (scale*4 employees across scale*3 departments and
/// scale*2 reports, department numbers disjoint per copy, ranks drawn
/// from a small domain so self-joins on Rank fan out quadratically —
/// the long-running query the deadline and CANCEL paths need).
NestedDb MakeScaledCompanyNestedDb(int scale);

}  // namespace fro

#endif  // FRO_TESTING_NESTED_SAMPLE_H_
