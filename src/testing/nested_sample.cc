#include "testing/nested_sample.h"

#include "common/check.h"

namespace fro {

NestedDb MakeCompanyNestedDb() {
  NestedDb db;
  FRO_CHECK(db.DefineType("REPORT",
                          {{"Title", FieldDef::Kind::kScalar, ""},
                           {"Cost", FieldDef::Kind::kScalar, ""}})
                .ok());
  FRO_CHECK(db.DefineType("EMPLOYEE",
                          {{"D#", FieldDef::Kind::kScalar, ""},
                           {"Rank", FieldDef::Kind::kScalar, ""},
                           {"ChildName", FieldDef::Kind::kSetValued, ""}})
                .ok());
  FRO_CHECK(db.DefineType(
                  "DEPARTMENT",
                  {{"D#", FieldDef::Kind::kScalar, ""},
                   {"Location", FieldDef::Kind::kScalar, ""},
                   {"Manager", FieldDef::Kind::kEntityRef, "EMPLOYEE"},
                   {"Secretary", FieldDef::Kind::kEntityRef, "EMPLOYEE"},
                   {"Audit", FieldDef::Kind::kEntityRef, "REPORT"}})
                .ok());

  int64_t audit1 = *db.AddEntity(
      "REPORT", {FieldValue::Scalar(Value::String("FY89 Audit")),
                 FieldValue::Scalar(Value::Int(120))});
  int64_t audit2 = *db.AddEntity(
      "REPORT", {FieldValue::Scalar(Value::String("Fraud Inquiry")),
                 FieldValue::Scalar(Value::Int(900))});

  int64_t ana = *db.AddEntity(
      "EMPLOYEE",
      {FieldValue::Scalar(Value::Int(1)), FieldValue::Scalar(Value::Int(12)),
       FieldValue::Set({Value::String("Mia"), Value::String("Ben")})});
  int64_t bo = *db.AddEntity(
      "EMPLOYEE",
      {FieldValue::Scalar(Value::Int(1)), FieldValue::Scalar(Value::Int(7)),
       FieldValue::Set({})});  // childless
  int64_t cy = *db.AddEntity(
      "EMPLOYEE",
      {FieldValue::Scalar(Value::Int(2)), FieldValue::Scalar(Value::Int(11)),
       FieldValue::Set({Value::String("Lea")})});
  int64_t dee = *db.AddEntity(
      "EMPLOYEE",
      {FieldValue::Scalar(Value::Null()),  // in no department
       FieldValue::Scalar(Value::Int(13)),
       FieldValue::Set({Value::String("Rex")})});
  (void)dee;

  // Department 1 (Zurich): manager Ana, secretary Bo, audited.
  FRO_CHECK(db.AddEntity("DEPARTMENT",
                         {FieldValue::Scalar(Value::Int(1)),
                          FieldValue::Scalar(Value::String("Zurich")),
                          FieldValue::Ref(ana), FieldValue::Ref(bo),
                          FieldValue::Ref(audit1)})
                .ok());
  // Department 2 (Queretaro): manager Cy, no secretary, audited.
  FRO_CHECK(db.AddEntity("DEPARTMENT",
                         {FieldValue::Scalar(Value::Int(2)),
                          FieldValue::Scalar(Value::String("Queretaro")),
                          FieldValue::Ref(cy), FieldValue::NullRef(),
                          FieldValue::Ref(audit2)})
                .ok());
  // Department 3 (Zurich): manager Bo, no secretary, never audited.
  FRO_CHECK(db.AddEntity("DEPARTMENT",
                         {FieldValue::Scalar(Value::Int(3)),
                          FieldValue::Scalar(Value::String("Zurich")),
                          FieldValue::Ref(bo), FieldValue::NullRef(),
                          FieldValue::NullRef()})
                .ok());
  return db;
}

NestedDb MakeScaledCompanyNestedDb(int scale) {
  NestedDb db;
  FRO_CHECK(db.DefineType("REPORT",
                          {{"Title", FieldDef::Kind::kScalar, ""},
                           {"Cost", FieldDef::Kind::kScalar, ""}})
                .ok());
  FRO_CHECK(db.DefineType("EMPLOYEE",
                          {{"D#", FieldDef::Kind::kScalar, ""},
                           {"Rank", FieldDef::Kind::kScalar, ""},
                           {"ChildName", FieldDef::Kind::kSetValued, ""}})
                .ok());
  FRO_CHECK(db.DefineType(
                  "DEPARTMENT",
                  {{"D#", FieldDef::Kind::kScalar, ""},
                   {"Location", FieldDef::Kind::kScalar, ""},
                   {"Manager", FieldDef::Kind::kEntityRef, "EMPLOYEE"},
                   {"Secretary", FieldDef::Kind::kEntityRef, "EMPLOYEE"},
                   {"Audit", FieldDef::Kind::kEntityRef, "REPORT"}})
                .ok());
  const char* locations[] = {"Zurich", "Queretaro", "Lisbon", "Osaka"};
  for (int copy = 0; copy < scale; ++copy) {
    const int64_t d1 = copy * 3 + 1;
    const int64_t d2 = copy * 3 + 2;
    const int64_t d3 = copy * 3 + 3;
    int64_t audit1 = *db.AddEntity(
        "REPORT",
        {FieldValue::Scalar(Value::String("Audit#" + std::to_string(copy))),
         FieldValue::Scalar(Value::Int(100 + copy))});
    int64_t audit2 = *db.AddEntity(
        "REPORT",
        {FieldValue::Scalar(Value::String("Inquiry#" + std::to_string(copy))),
         FieldValue::Scalar(Value::Int(900 + copy))});
    // Ranks cycle through a domain of 4 so EMPLOYEE-by-Rank self-joins
    // produce ~(4*scale)^2/4 matches.
    int64_t e1 = *db.AddEntity(
        "EMPLOYEE", {FieldValue::Scalar(Value::Int(d1)),
                     FieldValue::Scalar(Value::Int(copy % 4)),
                     FieldValue::Set({Value::String("Mia"),
                                      Value::String("Ben")})});
    int64_t e2 = *db.AddEntity(
        "EMPLOYEE", {FieldValue::Scalar(Value::Int(d1)),
                     FieldValue::Scalar(Value::Int((copy + 1) % 4)),
                     FieldValue::Set({})});
    int64_t e3 = *db.AddEntity(
        "EMPLOYEE", {FieldValue::Scalar(Value::Int(d2)),
                     FieldValue::Scalar(Value::Int((copy + 2) % 4)),
                     FieldValue::Set({Value::String("Lea")})});
    FRO_CHECK(db.AddEntity("EMPLOYEE",
                           {FieldValue::Scalar(Value::Null()),
                            FieldValue::Scalar(Value::Int((copy + 3) % 4)),
                            FieldValue::Set({Value::String("Rex")})})
                  .ok());
    FRO_CHECK(
        db.AddEntity("DEPARTMENT",
                     {FieldValue::Scalar(Value::Int(d1)),
                      FieldValue::Scalar(Value::String(locations[copy % 4])),
                      FieldValue::Ref(e1), FieldValue::Ref(e2),
                      FieldValue::Ref(audit1)})
            .ok());
    FRO_CHECK(
        db.AddEntity("DEPARTMENT",
                     {FieldValue::Scalar(Value::Int(d2)),
                      FieldValue::Scalar(Value::String(
                          locations[(copy + 1) % 4])),
                      FieldValue::Ref(e3), FieldValue::NullRef(),
                      FieldValue::Ref(audit2)})
            .ok());
    FRO_CHECK(
        db.AddEntity("DEPARTMENT",
                     {FieldValue::Scalar(Value::Int(d3)),
                      FieldValue::Scalar(Value::String(locations[copy % 4])),
                      FieldValue::Ref(e2), FieldValue::NullRef(),
                      FieldValue::NullRef()})
            .ok());
  }
  return db;
}

}  // namespace fro
