#include "testing/nested_sample.h"

#include "common/check.h"

namespace fro {

NestedDb MakeCompanyNestedDb() {
  NestedDb db;
  FRO_CHECK(db.DefineType("REPORT",
                          {{"Title", FieldDef::Kind::kScalar, ""},
                           {"Cost", FieldDef::Kind::kScalar, ""}})
                .ok());
  FRO_CHECK(db.DefineType("EMPLOYEE",
                          {{"D#", FieldDef::Kind::kScalar, ""},
                           {"Rank", FieldDef::Kind::kScalar, ""},
                           {"ChildName", FieldDef::Kind::kSetValued, ""}})
                .ok());
  FRO_CHECK(db.DefineType(
                  "DEPARTMENT",
                  {{"D#", FieldDef::Kind::kScalar, ""},
                   {"Location", FieldDef::Kind::kScalar, ""},
                   {"Manager", FieldDef::Kind::kEntityRef, "EMPLOYEE"},
                   {"Secretary", FieldDef::Kind::kEntityRef, "EMPLOYEE"},
                   {"Audit", FieldDef::Kind::kEntityRef, "REPORT"}})
                .ok());

  int64_t audit1 = *db.AddEntity(
      "REPORT", {FieldValue::Scalar(Value::String("FY89 Audit")),
                 FieldValue::Scalar(Value::Int(120))});
  int64_t audit2 = *db.AddEntity(
      "REPORT", {FieldValue::Scalar(Value::String("Fraud Inquiry")),
                 FieldValue::Scalar(Value::Int(900))});

  int64_t ana = *db.AddEntity(
      "EMPLOYEE",
      {FieldValue::Scalar(Value::Int(1)), FieldValue::Scalar(Value::Int(12)),
       FieldValue::Set({Value::String("Mia"), Value::String("Ben")})});
  int64_t bo = *db.AddEntity(
      "EMPLOYEE",
      {FieldValue::Scalar(Value::Int(1)), FieldValue::Scalar(Value::Int(7)),
       FieldValue::Set({})});  // childless
  int64_t cy = *db.AddEntity(
      "EMPLOYEE",
      {FieldValue::Scalar(Value::Int(2)), FieldValue::Scalar(Value::Int(11)),
       FieldValue::Set({Value::String("Lea")})});
  int64_t dee = *db.AddEntity(
      "EMPLOYEE",
      {FieldValue::Scalar(Value::Null()),  // in no department
       FieldValue::Scalar(Value::Int(13)),
       FieldValue::Set({Value::String("Rex")})});
  (void)dee;

  // Department 1 (Zurich): manager Ana, secretary Bo, audited.
  FRO_CHECK(db.AddEntity("DEPARTMENT",
                         {FieldValue::Scalar(Value::Int(1)),
                          FieldValue::Scalar(Value::String("Zurich")),
                          FieldValue::Ref(ana), FieldValue::Ref(bo),
                          FieldValue::Ref(audit1)})
                .ok());
  // Department 2 (Queretaro): manager Cy, no secretary, audited.
  FRO_CHECK(db.AddEntity("DEPARTMENT",
                         {FieldValue::Scalar(Value::Int(2)),
                          FieldValue::Scalar(Value::String("Queretaro")),
                          FieldValue::Ref(cy), FieldValue::NullRef(),
                          FieldValue::Ref(audit2)})
                .ok());
  // Department 3 (Zurich): manager Bo, no secretary, never audited.
  FRO_CHECK(db.AddEntity("DEPARTMENT",
                         {FieldValue::Scalar(Value::Int(3)),
                          FieldValue::Scalar(Value::String("Zurich")),
                          FieldValue::Ref(bo), FieldValue::NullRef(),
                          FieldValue::NullRef()})
                .ok());
  return db;
}

}  // namespace fro
