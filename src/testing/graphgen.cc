#include "testing/graphgen.h"

#include <vector>

#include "common/check.h"

namespace fro {

namespace {

AttrId RandomAttrOf(const Database& db, RelId rel, Rng* rng) {
  const std::vector<AttrId>& attrs = db.catalog().RelationAttrs(rel);
  FRO_CHECK(!attrs.empty());
  return attrs[rng->Uniform(attrs.size())];
}

// Equality predicate between random attributes of the two relations —
// strong with respect to both sides.
PredicatePtr StrongPred(const Database& db, RelId a, RelId b, Rng* rng) {
  return EqCols(RandomAttrOf(db, a, rng), RandomAttrOf(db, b, rng));
}

// `a = b OR a IS NULL` — accepts tuples whose `preserved`-side attribute
// is null, i.e. NOT strong w.r.t. the preserved relation.
PredicatePtr WeakPred(const Database& db, RelId preserved, RelId null_side,
                      Rng* rng) {
  AttrId pa = RandomAttrOf(db, preserved, rng);
  AttrId na = RandomAttrOf(db, null_side, rng);
  return Predicate::Or(
      {EqCols(pa, na), Predicate::IsNull(Operand::Column(pa))});
}

bool Adjacent(const QueryGraph& graph, int u, int v) {
  for (const GraphEdge& e : graph.edges()) {
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) return true;
  }
  return false;
}

}  // namespace

GeneratedQuery GenerateRandomQuery(const RandomQueryOptions& options,
                                   Rng* rng) {
  FRO_CHECK_GE(options.num_relations, 1);
  GeneratedQuery out;
  out.db = MakeRandomDatabase(options.num_relations, options.attrs_per_rel,
                              options.rows, rng);
  Database& db = *out.db;
  QueryGraph& graph = out.graph;

  const int n = options.num_relations;
  for (RelId r = 0; r < static_cast<RelId>(n); ++r) {
    graph.AddNode(r, db.scheme(r).ToAttrSet());
  }

  // For the "extra edge" violations, the last node is reserved: it is
  // attached only by the violating edge, reproducing Example 2's shape
  // (X -> Y - Z) rather than a triangle with a single implementing tree.
  const bool reserve_last =
      options.violation ==
          RandomQueryOptions::Violation::kJoinAtNullSupplied ||
      options.violation == RandomQueryOptions::Violation::kTwoInEdges;
  const int base = reserve_last ? n - 1 : n;
  FRO_CHECK_GE(base, 2);

  int core;
  if (options.core_shape == RandomQueryOptions::CoreShape::kChain) {
    // A fixed chordless path R0 - R1 - ... : the canonical acyclic join
    // core. Remaining nodes become outerjoin shell.
    core = options.chain_length;
    FRO_CHECK_GE(core, 2) << "a chain core needs >= 2 relations";
    FRO_CHECK_GE(base, core) << "core shape needs more relations";
    for (int v = 0; v + 1 < core; ++v) {
      Status s = graph.AddJoinEdge(
          v, v + 1,
          StrongPred(db, static_cast<RelId>(v), static_cast<RelId>(v + 1),
                     rng));
      FRO_CHECK(s.ok()) << s.ToString();
    }
  } else if (options.core_shape != RandomQueryOptions::CoreShape::kRandom) {
    // A fixed chordless cycle: the core size is the cycle length and
    // every other node becomes outerjoin shell.
    core = options.core_shape == RandomQueryOptions::CoreShape::kTriangle
               ? 3
               : 4;
    FRO_CHECK_GE(base, core) << "core shape needs more relations";
    for (int v = 0; v < core; ++v) {
      int w = (v + 1) % core;
      Status s = graph.AddJoinEdge(
          v, w,
          StrongPred(db, static_cast<RelId>(v), static_cast<RelId>(w), rng));
      FRO_CHECK(s.ok()) << s.ToString();
    }
  } else {
    // Decide the join-core size: at least 1 node; remaining nodes hang as
    // an outerjoin forest.
    core = 1;
    for (int i = 1; i < base; ++i) {
      if (!rng->Bernoulli(options.oj_fraction)) ++core;
    }
    // Certain violations need at least one outerjoin node (two for a
    // cycle).
    if (options.violation != RandomQueryOptions::Violation::kNone) {
      int needed = options.violation ==
                           RandomQueryOptions::Violation::kOjCycle
                       ? 2
                       : 1;
      core = std::min(core, base - needed);
      core = std::max(core, 1);
    }

    // Join core: random spanning tree over nodes [0, core).
    for (int v = 1; v < core; ++v) {
      int u = static_cast<int>(rng->Uniform(static_cast<uint64_t>(v)));
      Status s = graph.AddJoinEdge(
          u, v,
          StrongPred(db, static_cast<RelId>(u), static_cast<RelId>(v), rng));
      FRO_CHECK(s.ok()) << s.ToString();
    }
    // Extra core conjuncts (cycles / collapsed parallel edges).
    for (int u = 0; u < core; ++u) {
      for (int v = u + 1; v < core; ++v) {
        if (!rng->Bernoulli(options.extra_join_edge_prob)) continue;
        Status s = graph.AddJoinEdge(
            u, v,
            StrongPred(db, static_cast<RelId>(u), static_cast<RelId>(v),
                       rng));
        FRO_CHECK(s.ok()) << s.ToString();
      }
    }
  }

  // Outerjoin forest going outward: each node v in [core, n) picks a parent
  // among the already-present nodes.
  std::vector<int> forest_parent(static_cast<size_t>(n), -1);
  for (int v = core; v < base; ++v) {
    int parent = static_cast<int>(rng->Uniform(static_cast<uint64_t>(v)));
    forest_parent[static_cast<size_t>(v)] = parent;
    RelId pr = static_cast<RelId>(parent);
    RelId vr = static_cast<RelId>(v);
    PredicatePtr pred = rng->Bernoulli(options.weak_pred_prob)
                            ? WeakPred(db, pr, vr, rng)
                            : StrongPred(db, pr, vr, rng);
    Status s = graph.AddOuterJoinEdge(parent, v, pred);
    FRO_CHECK(s.ok()) << s.ToString();
  }

  // Inject the requested niceness violation.
  switch (options.violation) {
    case RandomQueryOptions::Violation::kNone:
      break;
    case RandomQueryOptions::Violation::kJoinAtNullSupplied: {
      // The reserved node joins a null-supplied node: ... -> v - w.
      FRO_CHECK_LT(core, base);
      int v = base - 1;  // a null-supplied forest node
      int w = n - 1;     // the reserved node
      Status s = graph.AddJoinEdge(
          v, w,
          StrongPred(db, static_cast<RelId>(v), static_cast<RelId>(w), rng));
      FRO_CHECK(s.ok()) << s.ToString();
      break;
    }
    case RandomQueryOptions::Violation::kTwoInEdges: {
      // The reserved node supplies a second in-edge: ... -> v <- w.
      FRO_CHECK_LT(core, base);
      int v = base - 1;
      int w = n - 1;
      Status s = graph.AddOuterJoinEdge(
          w, v,
          StrongPred(db, static_cast<RelId>(w), static_cast<RelId>(v), rng));
      FRO_CHECK(s.ok()) << s.ToString();
      break;
    }
    case RandomQueryOptions::Violation::kOjCycle: {
      // Build an undirected cycle of outerjoin edges among v1, v2, and
      // v1's forest parent x: the edges x->v1 (existing), v1->v2, and
      // v2->x together close a cycle. If v2's own forest parent happens
      // to be v1 or x, some edges already exist and the cycle still
      // closes.
      FRO_CHECK_LE(core, n - 2);
      int v1 = n - 2;
      int v2 = n - 1;
      int x = forest_parent[static_cast<size_t>(v1)];
      FRO_CHECK_GE(x, 0);
      if (!Adjacent(graph, v1, v2)) {
        Status s = graph.AddOuterJoinEdge(
            v1, v2,
            StrongPred(db, static_cast<RelId>(v1), static_cast<RelId>(v2),
                       rng));
        FRO_CHECK(s.ok()) << s.ToString();
      }
      if (!Adjacent(graph, x, v2)) {
        Status s = graph.AddOuterJoinEdge(
            v2, x,
            StrongPred(db, static_cast<RelId>(v2), static_cast<RelId>(x),
                       rng));
        FRO_CHECK(s.ok()) << s.ToString();
      }
      break;
    }
  }
  return out;
}

}  // namespace fro
