#include "testing/nested_gen.h"

#include <vector>

#include "common/check.h"

namespace fro {

namespace {

std::string TypeName(int i) { return "T" + std::to_string(i); }

}  // namespace

GeneratedNestedQuery GenerateRandomNestedQuery(
    const RandomNestedOptions& options, Rng* rng) {
  GeneratedNestedQuery out;
  NestedDb& db = out.db;
  const int n = std::max(1, options.num_types);

  // --- Schema ------------------------------------------------------------
  // fields[i] records which optional fields type i has.
  struct TypeShape {
    bool has_tags = false;
    std::vector<int> ref_targets;  // earlier type indices
  };
  std::vector<TypeShape> shapes(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    TypeShape& shape = shapes[static_cast<size_t>(i)];
    std::vector<FieldDef> fields = {
        {"k", FieldDef::Kind::kScalar, ""},
        {"v", FieldDef::Kind::kScalar, ""},
    };
    if (rng->Bernoulli(0.6)) {
      shape.has_tags = true;
      fields.push_back({"tags", FieldDef::Kind::kSetValued, ""});
    }
    for (int r = 0; r < 2 && i > 0; ++r) {
      if (!rng->Bernoulli(0.5)) continue;
      int target = static_cast<int>(rng->Uniform(static_cast<uint64_t>(i)));
      shape.ref_targets.push_back(target);
      fields.push_back({"ref" + std::to_string(shape.ref_targets.size() - 1),
                        FieldDef::Kind::kEntityRef, TypeName(target)});
    }
    FRO_CHECK(db.DefineType(TypeName(i), std::move(fields)).ok());
  }

  // --- Data ----------------------------------------------------------------
  // Oids of each type's rows, to wire references.
  std::vector<std::vector<int64_t>> oids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const TypeShape& shape = shapes[static_cast<size_t>(i)];
    int rows = static_cast<int>(
        rng->UniformInt(options.rows_min, options.rows_max));
    for (int r = 0; r < rows; ++r) {
      std::vector<FieldValue> values;
      values.push_back(FieldValue::Scalar(
          Value::Int(rng->UniformInt(0, options.key_domain - 1))));
      values.push_back(FieldValue::Scalar(Value::Int(r)));
      if (shape.has_tags) {
        std::vector<Value> tags;
        int count =
            static_cast<int>(rng->Uniform(
                static_cast<uint64_t>(options.max_set_elements) + 1));
        for (int t = 0; t < count; ++t) {
          tags.push_back(Value::String("t" + std::to_string(t)));
        }
        values.push_back(FieldValue::Set(std::move(tags)));
      }
      for (int target : shape.ref_targets) {
        const std::vector<int64_t>& pool =
            oids[static_cast<size_t>(target)];
        if (pool.empty() || rng->Bernoulli(options.null_ref_prob)) {
          values.push_back(FieldValue::NullRef());
        } else {
          values.push_back(
              FieldValue::Ref(pool[rng->Uniform(pool.size())]));
        }
      }
      oids[static_cast<size_t>(i)].push_back(
          *db.AddEntity(TypeName(i), std::move(values)));
    }
  }

  // --- Query ----------------------------------------------------------------
  // One or two base types; chains built from each base's own fields.
  const int bases = n >= 2 && rng->Bernoulli(0.5) ? 2 : 1;
  std::vector<int> base_types;
  base_types.push_back(static_cast<int>(rng->Uniform(static_cast<uint64_t>(n))));
  if (bases == 2) {
    int second;
    do {
      second = static_cast<int>(rng->Uniform(static_cast<uint64_t>(n)));
    } while (second == base_types[0]);
    base_types.push_back(second);
  }

  std::string from;
  for (size_t b = 0; b < base_types.size(); ++b) {
    int type = base_types[b];
    const TypeShape& shape = shapes[static_cast<size_t>(type)];
    if (b > 0) from += ", ";
    from += TypeName(type);
    if (shape.has_tags && rng->Bernoulli(0.6)) from += "*tags";
    for (size_t r = 0; r < shape.ref_targets.size(); ++r) {
      if (rng->Bernoulli(0.6)) {
        from += "->ref" + std::to_string(r);
      }
    }
  }

  std::string where;
  if (bases == 2) {
    where = TypeName(base_types[0]) + ".k = " + TypeName(base_types[1]) +
            ".k";
  }
  if (rng->Bernoulli(0.5)) {
    std::string restriction =
        TypeName(base_types[0]) + ".k >= " +
        std::to_string(rng->UniformInt(0, options.key_domain - 1));
    where = where.empty() ? restriction : where + " and " + restriction;
  }

  out.query_text = "Select All From " + from;
  if (!where.empty()) out.query_text += " Where " + where;
  return out;
}

}  // namespace fro
