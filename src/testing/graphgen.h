// Random query-graph generation: nice graphs (connected join core with an
// outerjoin forest hanging outward, Fig. 2 of the paper), optionally with
// injected niceness violations or non-strong ("weak") outerjoin
// predicates.

#ifndef FRO_TESTING_GRAPHGEN_H_
#define FRO_TESTING_GRAPHGEN_H_

#include <memory>

#include "common/rng.h"
#include "graph/query_graph.h"
#include "relational/database.h"
#include "testing/datagen.h"

namespace fro {

struct RandomQueryOptions {
  int num_relations = 5;
  int attrs_per_rel = 2;
  /// Probability of each extra join conjunct inside the core (creates
  /// cycles and collapsed parallel edges).
  double extra_join_edge_prob = 0.25;
  /// Expected fraction of relations hanging off the core as outerjoin
  /// forest nodes.
  double oj_fraction = 0.5;
  /// Probability that an outerjoin predicate is *weak*: it accepts when
  /// the preserved-side attribute is null (Example 3's shape), breaking
  /// Theorem 1's strength precondition.
  double weak_pred_prob = 0.0;

  enum class Violation {
    kNone,
    kJoinAtNullSupplied,  // adds a join edge at a null-supplied node
    kTwoInEdges,          // adds a second outerjoin edge into a node
    kOjCycle,             // creates a cycle of outerjoin edges
  };
  Violation violation = Violation::kNone;

  /// Join-core topology. kRandom grows a spanning tree plus
  /// `extra_join_edge_prob` chords; kTriangle / kFourCycle force the core
  /// to be exactly that chordless cycle (the canonical cyclic cores the
  /// wcoj subsystem collapses), with every remaining node hanging off it
  /// as outerjoin shell. kChain forces a chordless path over
  /// `chain_length` nodes — the canonical alpha-acyclic core the GYO /
  /// Yannakakis fast path reduces. Requires num_relations >= the cycle /
  /// chain length.
  enum class CoreShape {
    kRandom,
    kTriangle,
    kFourCycle,
    kChain,
  };
  CoreShape core_shape = CoreShape::kRandom;
  /// Core size when core_shape == kChain.
  int chain_length = 3;

  RandomRowsOptions rows;
};

struct GeneratedQuery {
  std::unique_ptr<Database> db;
  QueryGraph graph;
};

/// Generates a random database and query graph. With default options the
/// graph satisfies Theorem 1's preconditions (nice + strong predicates).
GeneratedQuery GenerateRandomQuery(const RandomQueryOptions& options,
                                   Rng* rng);

}  // namespace fro

#endif  // FRO_TESTING_GRAPHGEN_H_
