// Random nested databases and Section 5 query texts, for full-stack
// integration fuzzing (parser -> translator -> audit -> optimizer ->
// executors).

#ifndef FRO_TESTING_NESTED_GEN_H_
#define FRO_TESTING_NESTED_GEN_H_

#include <string>

#include "common/rng.h"
#include "lang/model.h"

namespace fro {

struct RandomNestedOptions {
  int num_types = 3;
  /// Rows per entity table, inclusive bounds.
  int rows_min = 1;
  int rows_max = 6;
  /// Domain of the shared join key field "k".
  int key_domain = 4;
  /// Maximum elements per set-valued field.
  int max_set_elements = 3;
  /// Probability an entity-ref field is null.
  double null_ref_prob = 0.25;
};

struct GeneratedNestedQuery {
  NestedDb db;
  /// A syntactically valid Section 5 query over `db`.
  std::string query_text;
};

/// Generates a random schema (every type has a scalar key "k" and a
/// scalar "v"; types may add a set-valued "tags" and entity-ref fields
/// "ref0"/"ref1" to earlier types), fills random entities, and composes a
/// random query: 1-2 From items with random UnNest/Link chains, joined on
/// "k", optionally restricted.
GeneratedNestedQuery GenerateRandomNestedQuery(
    const RandomNestedOptions& options, Rng* rng);

}  // namespace fro

#endif  // FRO_TESTING_NESTED_GEN_H_
