// Query graphs (paper Section 1.2): relations as nodes, join predicates as
// undirected edges, outerjoin predicates as edges directed toward the
// null-supplied relation. Parallel join edges (conjuncts between the same
// pair of relations) are collapsed into one edge whose label is their
// conjunction.

#ifndef FRO_GRAPH_QUERY_GRAPH_H_
#define FRO_GRAPH_QUERY_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/predicate.h"
#include "relational/schema.h"

namespace fro {

class Catalog;

struct GraphEdge {
  int u = 0;
  int v = 0;
  /// Directed edges are outerjoin edges: u is the preserved relation, v
  /// the null-supplied one. Undirected edges are join edges.
  bool directed = false;
  PredicatePtr pred;
};

/// A query graph over at most 64 nodes. Node subsets are 64-bit masks.
class QueryGraph {
 public:
  QueryGraph() = default;

  /// Adds a node for ground relation `rel` with output attributes `attrs`;
  /// returns its node index.
  int AddNode(RelId rel, AttrSet attrs);

  /// Adds a join conjunct between nodes `u` and `v`; collapses into an
  /// existing parallel join edge if present. Fails on a parallel
  /// outerjoin edge.
  Status AddJoinEdge(int u, int v, PredicatePtr conjunct);

  /// Adds an outerjoin edge directed from preserved `u` to null-supplied
  /// `v`. Fails if any parallel edge exists.
  Status AddOuterJoinEdge(int u, int v, PredicatePtr pred);

  int num_nodes() const { return static_cast<int>(node_rel_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const GraphEdge& edge(int i) const { return edges_[i]; }
  const std::vector<GraphEdge>& edges() const { return edges_; }
  RelId node_rel(int i) const { return node_rel_[i]; }
  const AttrSet& node_attrs(int i) const { return node_attrs_[i]; }
  /// Node index of relation `rel`, or -1.
  int NodeOf(RelId rel) const;

  /// Mask with one bit per node.
  uint64_t AllMask() const;
  /// True if the nodes of `mask` induce a connected subgraph (an empty
  /// mask is not connected; a singleton is).
  bool IsConnected(uint64_t mask) const;
  /// Indices of edges with one endpoint in `a` and the other in `b`.
  std::vector<int> EdgesCrossing(uint64_t a, uint64_t b) const;
  /// Nodes adjacent to `mask` (excluding `mask` itself).
  uint64_t Neighbors(uint64_t mask) const;
  /// Precomputed neighbor bitset of a single node.
  uint64_t adjacency(int node) const {
    return adjacency_[static_cast<size_t>(node)];
  }
  /// Edges with both endpoints inside `mask`.
  std::vector<int> EdgesWithin(uint64_t mask) const;

  std::string ToString(const Catalog* catalog = nullptr) const;

 private:
  int FindEdgeBetween(int u, int v) const;

  std::vector<RelId> node_rel_;
  std::vector<AttrSet> node_attrs_;
  std::vector<GraphEdge> edges_;
  std::vector<uint64_t> adjacency_;  // node -> neighbor mask
};

}  // namespace fro

#endif  // FRO_GRAPH_QUERY_GRAPH_H_
