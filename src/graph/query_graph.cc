#include "graph/query_graph.h"

#include <bit>

#include "common/check.h"

namespace fro {

int QueryGraph::AddNode(RelId rel, AttrSet attrs) {
  FRO_CHECK_LT(node_rel_.size(), 64u) << "query graphs support <= 64 nodes";
  FRO_CHECK_EQ(NodeOf(rel), -1) << "relation already has a node";
  node_rel_.push_back(rel);
  node_attrs_.push_back(std::move(attrs));
  adjacency_.push_back(0);
  return static_cast<int>(node_rel_.size()) - 1;
}

int QueryGraph::FindEdgeBetween(int u, int v) const {
  for (size_t i = 0; i < edges_.size(); ++i) {
    const GraphEdge& e = edges_[i];
    if ((e.u == u && e.v == v) || (e.u == v && e.v == u)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status QueryGraph::AddJoinEdge(int u, int v, PredicatePtr conjunct) {
  FRO_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes() && u != v);
  int existing = FindEdgeBetween(u, v);
  if (existing >= 0) {
    GraphEdge& e = edges_[static_cast<size_t>(existing)];
    if (e.directed) {
      return InvalidArgument(
          "parallel join and outerjoin edges between the same relations");
    }
    // Collapse parallel conjuncts into one edge (Section 1.2).
    e.pred = AndOf(e.pred, std::move(conjunct));
    return Status::Ok();
  }
  edges_.push_back(GraphEdge{u, v, /*directed=*/false, std::move(conjunct)});
  adjacency_[static_cast<size_t>(u)] |= 1ULL << v;
  adjacency_[static_cast<size_t>(v)] |= 1ULL << u;
  return Status::Ok();
}

Status QueryGraph::AddOuterJoinEdge(int u, int v, PredicatePtr pred) {
  FRO_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes() && u != v);
  if (FindEdgeBetween(u, v) >= 0) {
    return InvalidArgument(
        "outerjoin edge parallel to an existing edge between the same "
        "relations");
  }
  edges_.push_back(GraphEdge{u, v, /*directed=*/true, std::move(pred)});
  adjacency_[static_cast<size_t>(u)] |= 1ULL << v;
  adjacency_[static_cast<size_t>(v)] |= 1ULL << u;
  return Status::Ok();
}

int QueryGraph::NodeOf(RelId rel) const {
  for (size_t i = 0; i < node_rel_.size(); ++i) {
    if (node_rel_[i] == rel) return static_cast<int>(i);
  }
  return -1;
}

uint64_t QueryGraph::AllMask() const {
  int n = num_nodes();
  return n == 64 ? ~0ULL : (1ULL << n) - 1;
}

bool QueryGraph::IsConnected(uint64_t mask) const {
  if (mask == 0) return false;
  uint64_t start = mask & (~mask + 1);  // lowest set bit
  uint64_t reached = start;
  for (;;) {
    uint64_t frontier = 0;
    uint64_t pending = reached;
    while (pending != 0) {
      int node = std::countr_zero(pending);
      pending &= pending - 1;
      frontier |= adjacency_[static_cast<size_t>(node)];
    }
    uint64_t next = (reached | frontier) & mask;
    if (next == reached) break;
    reached = next;
  }
  return reached == mask;
}

std::vector<int> QueryGraph::EdgesCrossing(uint64_t a, uint64_t b) const {
  std::vector<int> out;
  for (size_t i = 0; i < edges_.size(); ++i) {
    const GraphEdge& e = edges_[i];
    uint64_t mu = 1ULL << e.u;
    uint64_t mv = 1ULL << e.v;
    if (((mu & a) != 0 && (mv & b) != 0) ||
        ((mu & b) != 0 && (mv & a) != 0)) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

uint64_t QueryGraph::Neighbors(uint64_t mask) const {
  uint64_t out = 0;
  uint64_t pending = mask;
  while (pending != 0) {
    int node = std::countr_zero(pending);
    pending &= pending - 1;
    out |= adjacency_[static_cast<size_t>(node)];
  }
  return out & ~mask;
}

std::vector<int> QueryGraph::EdgesWithin(uint64_t mask) const {
  std::vector<int> out;
  for (size_t i = 0; i < edges_.size(); ++i) {
    const GraphEdge& e = edges_[i];
    if ((mask & (1ULL << e.u)) != 0 && (mask & (1ULL << e.v)) != 0) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::string QueryGraph::ToString(const Catalog* catalog) const {
  std::string out;
  for (int i = 0; i < num_nodes(); ++i) {
    if (i > 0) out += ", ";
    out += catalog != nullptr ? catalog->RelationName(node_rel_[i])
                              : "R" + std::to_string(node_rel_[i]);
  }
  out += "\n";
  for (const GraphEdge& e : edges_) {
    std::string lhs = catalog != nullptr
                          ? catalog->RelationName(node_rel_[e.u])
                          : "R" + std::to_string(node_rel_[e.u]);
    std::string rhs = catalog != nullptr
                          ? catalog->RelationName(node_rel_[e.v])
                          : "R" + std::to_string(node_rel_[e.v]);
    out += "  " + lhs + (e.directed ? " -> " : " -- ") + rhs;
    if (e.pred != nullptr) out += "  [" + e.pred->ToString(catalog) + "]";
    out += "\n";
  }
  return out;
}

}  // namespace fro
