#include "graph/nice.h"

#include <numeric>
#include <vector>

namespace fro {

namespace {

// Union-find for outerjoin-edge cycle detection.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  /// Returns false if x and y were already connected.
  bool Union(int x, int y) {
    int rx = Find(x);
    int ry = Find(y);
    if (rx == ry) return false;
    parent_[static_cast<size_t>(rx)] = ry;
    return true;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

NiceCheck CheckNice(const QueryGraph& graph) {
  NiceCheck out;
  out.connected = graph.IsConnected(graph.AllMask());

  const int n = graph.num_nodes();
  std::vector<int> incoming_oj(static_cast<size_t>(n), 0);
  std::vector<bool> has_join_edge(static_cast<size_t>(n), false);
  UnionFind oj_forest(n);

  for (const GraphEdge& e : graph.edges()) {
    if (e.directed) {
      ++incoming_oj[static_cast<size_t>(e.v)];
      if (!oj_forest.Union(e.u, e.v)) {
        out.violation = "cycle composed of outerjoin edges";
        return out;
      }
    } else {
      has_join_edge[static_cast<size_t>(e.u)] = true;
      has_join_edge[static_cast<size_t>(e.v)] = true;
    }
  }
  for (int v = 0; v < n; ++v) {
    if (incoming_oj[static_cast<size_t>(v)] >= 2) {
      out.violation = "path of the form X -> Y <- Z (node " +
                      std::to_string(v) + " null-supplied twice)";
      return out;
    }
    if (incoming_oj[static_cast<size_t>(v)] >= 1 &&
        has_join_edge[static_cast<size_t>(v)]) {
      out.violation = "path of the form X -> Y - Z (join edge at "
                      "null-supplied node " +
                      std::to_string(v) + ")";
      return out;
    }
  }
  out.nice = true;
  return out;
}

ReorderabilityCheck CheckFreelyReorderable(const QueryGraph& graph) {
  ReorderabilityCheck out;
  out.nice = CheckNice(graph);
  out.all_outerjoin_preds_strong = true;
  out.all_strong_wrt_null_supplied = true;
  for (const GraphEdge& e : graph.edges()) {
    if (!e.directed) continue;
    AttrSet preserved_refs =
        e.pred->References().Intersect(graph.node_attrs(e.u));
    AttrSet null_side_refs =
        e.pred->References().Intersect(graph.node_attrs(e.v));
    if (!e.pred->IsStrongWrt(preserved_refs)) {
      out.all_outerjoin_preds_strong = false;
      out.detail +=
          "outerjoin predicate not strong w.r.t. preserved relation: " +
          e.pred->ToString(nullptr) + "; ";
    }
    if (!e.pred->IsStrongWrt(null_side_refs)) {
      out.all_strong_wrt_null_supplied = false;
    }
  }
  if (!out.nice.nice) out.detail += out.nice.violation;
  return out;
}

}  // namespace fro
