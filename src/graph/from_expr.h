// graph(Q): deriving the query graph of a Join/Outerjoin expression
// (paper Section 1.2).

#ifndef FRO_GRAPH_FROM_EXPR_H_
#define FRO_GRAPH_FROM_EXPR_H_

#include "algebra/expr.h"
#include "common/status.h"
#include "graph/query_graph.h"
#include "relational/database.h"

namespace fro {

/// Builds graph(Q) for a Join/Outerjoin query.
///
/// Fails (the paper's "graph is undefined") when:
///  * the expression contains operators other than Join/OuterJoin/Leaf,
///  * a join conjunct does not reference exactly two ground relations,
///    one on each side of its operator,
///  * an outerjoin predicate does not reference exactly two ground
///    relations, one on each side,
///  * an outerjoin edge would be parallel to another edge.
Result<QueryGraph> GraphOf(const ExprPtr& expr, const Database& db);

}  // namespace fro

#endif  // FRO_GRAPH_FROM_EXPR_H_
