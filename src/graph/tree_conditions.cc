#include "graph/tree_conditions.h"

#include <vector>

namespace fro {

namespace {

bool ContainsJoin(const ExprPtr& expr) {
  if (expr->is_leaf()) return false;
  if (expr->kind() == OpKind::kJoin) return true;
  return (expr->left() != nullptr && ContainsJoin(expr->left())) ||
         (expr->right() != nullptr && ContainsJoin(expr->right()));
}

// An ancestor frame: the ancestor's kind and whether the path to the
// current node goes through its null-supplied operand, plus its
// predicate's references.
struct AncestorFrame {
  OpKind kind;
  bool via_null_supplied;
  AttrSet pred_refs;
};

bool Walk(const ExprPtr& node, std::vector<AncestorFrame>* ancestors,
          TreeConditionCheck* out) {
  if (node->is_leaf()) return true;
  if (node->kind() != OpKind::kJoin && node->kind() != OpKind::kOuterJoin) {
    out->violation = std::string("operator ") + OpKindName(node->kind()) +
                     " outside the Join/Outerjoin class";
    return false;
  }

  if (node->kind() == OpKind::kOuterJoin) {
    const ExprPtr& null_side =
        node->preserves_left() ? node->right() : node->left();
    // (a) The null-supplied input must not be created by a regular join.
    if (ContainsJoin(null_side)) {
      out->violation =
          "null-supplied input contains a regular join: " +
          null_side->ToString();
      return false;
    }
    // (b) Ancestors must not touch the padded attributes from an unsafe
    // position.
    for (const AncestorFrame& frame : *ancestors) {
      const bool touches = frame.pred_refs.Overlaps(null_side->attrs());
      if (!touches) continue;
      if (frame.kind == OpKind::kJoin) {
        out->violation =
            "padded attributes are later an operand of a regular join";
        return false;
      }
      if (frame.kind == OpKind::kOuterJoin && frame.via_null_supplied) {
        out->violation =
            "padded attributes are referenced from an ancestor "
            "outerjoin's null-supplied side";
        return false;
      }
    }
  }

  AttrSet refs =
      node->pred() != nullptr ? node->pred()->References() : AttrSet();
  for (bool go_right : {false, true}) {
    const ExprPtr& child = go_right ? node->right() : node->left();
    bool via_null =
        node->kind() == OpKind::kOuterJoin &&
        (go_right ? node->preserves_left() : !node->preserves_left());
    ancestors->push_back({node->kind(), via_null, refs});
    bool ok = Walk(child, ancestors, out);
    ancestors->pop_back();
    if (!ok) return false;
  }
  return true;
}

}  // namespace

TreeConditionCheck CheckTreeConditions(const ExprPtr& expr) {
  TreeConditionCheck out;
  std::vector<AncestorFrame> ancestors;
  out.ok = Walk(expr, &ancestors, &out);
  return out;
}

}  // namespace fro
