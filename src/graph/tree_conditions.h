// Expression-tree-side reorderability conditions (paper Section 6.3).
//
// The paper conjectures that free reorderability, characterized on query
// graphs by Lemma 1, also has "simple conditions on the expression trees:
// for example, the null-supplied input of an operand should not be
// created by a regular join, nor involved later as an operand of a
// regular join."
//
// This module implements a refinement of that conjecture. A Join/
// Outerjoin tree Q satisfies the *tree conditions* iff for every
// outerjoin operator N with null-supplied subtree S:
//
//   (a) S contains no regular join operator (N's null-supplied input is
//       not created by a join, even indirectly), and
//   (b) no proper ancestor A of N references attributes of S from an
//       unsafe position: a join ancestor must not reference attrs(S) at
//       all, and an outerjoin ancestor must not reference attrs(S) when N
//       lies in A's null-supplied operand. (Referencing padded attributes
//       from an ancestor's *preserved* side is the legal outerjoin chain
//       X -> Y -> Z.)
//
// `tests/tree_conditions_test.cc` validates the refinement empirically:
// on randomly generated implementing trees, the tree conditions hold iff
// graph(Q) is nice.

#ifndef FRO_GRAPH_TREE_CONDITIONS_H_
#define FRO_GRAPH_TREE_CONDITIONS_H_

#include <string>

#include "algebra/expr.h"

namespace fro {

struct TreeConditionCheck {
  bool ok = false;
  /// Empty when ok; otherwise the first violated condition.
  std::string violation;
};

/// Checks the tree-side conditions. The expression must be a pure
/// Join/Outerjoin tree (the class graph(Q) is defined for); any other
/// operator yields a violation.
TreeConditionCheck CheckTreeConditions(const ExprPtr& expr);

}  // namespace fro

#endif  // FRO_GRAPH_TREE_CONDITIONS_H_
