#include "graph/from_expr.h"

#include <set>

#include "common/check.h"

namespace fro {

namespace {

// The ground relations referenced by a predicate.
std::set<RelId> ReferencedRelations(const PredicatePtr& pred,
                                    const Catalog& catalog) {
  std::set<RelId> out;
  for (AttrId attr : pred->References()) {
    out.insert(catalog.AttrRelation(attr));
  }
  return out;
}

Status AddLeaves(const ExprPtr& expr, const Database& db, QueryGraph* graph) {
  if (expr->is_leaf()) {
    graph->AddNode(expr->rel(), expr->attrs());
    return Status::Ok();
  }
  if (expr->kind() != OpKind::kJoin && expr->kind() != OpKind::kOuterJoin) {
    return InvalidArgument(
        std::string("graph(Q) is defined for Join/Outerjoin queries only; "
                    "found ") +
        OpKindName(expr->kind()));
  }
  FRO_RETURN_IF_ERROR(AddLeaves(expr->left(), db, graph));
  return AddLeaves(expr->right(), db, graph);
}

Status AddEdges(const ExprPtr& expr, const Database& db, QueryGraph* graph) {
  if (expr->is_leaf()) return Status::Ok();
  const Catalog& catalog = db.catalog();

  if (expr->kind() == OpKind::kJoin) {
    if (expr->pred() == nullptr ||
        expr->pred()->Conjuncts(expr->pred()).empty()) {
      return InvalidArgument("join without a predicate (Cartesian product)");
    }
    for (const PredicatePtr& conjunct : expr->pred()->Conjuncts(expr->pred())) {
      std::set<RelId> rels = ReferencedRelations(conjunct, catalog);
      if (rels.size() != 2) {
        return InvalidArgument(
            "join conjunct must reference exactly two ground relations: " +
            conjunct->ToString(&catalog));
      }
      auto it = rels.begin();
      RelId r1 = *it++;
      RelId r2 = *it;
      // The two relations must sit on opposite sides of the operator.
      const bool r1_left =
          (expr->left()->rel_mask() & (1ULL << r1)) != 0;
      const bool r2_left =
          (expr->left()->rel_mask() & (1ULL << r2)) != 0;
      if (r1_left == r2_left) {
        return InvalidArgument(
            "join conjunct does not cross the operator's operands: " +
            conjunct->ToString(&catalog));
      }
      FRO_RETURN_IF_ERROR(graph->AddJoinEdge(graph->NodeOf(r1),
                                             graph->NodeOf(r2), conjunct));
    }
  } else if (expr->kind() == OpKind::kOuterJoin) {
    if (expr->pred() == nullptr) {
      return InvalidArgument("outerjoin without a predicate");
    }
    std::set<RelId> rels = ReferencedRelations(expr->pred(), catalog);
    if (rels.size() != 2) {
      return InvalidArgument(
          "outerjoin predicate must reference exactly two ground "
          "relations: " +
          expr->pred()->ToString(&catalog));
    }
    auto it = rels.begin();
    RelId r1 = *it++;
    RelId r2 = *it;
    const ExprPtr& preserved =
        expr->preserves_left() ? expr->left() : expr->right();
    const ExprPtr& null_side =
        expr->preserves_left() ? expr->right() : expr->left();
    RelId preserved_rel, null_rel;
    if ((preserved->rel_mask() & (1ULL << r1)) != 0 &&
        (null_side->rel_mask() & (1ULL << r2)) != 0) {
      preserved_rel = r1;
      null_rel = r2;
    } else if ((preserved->rel_mask() & (1ULL << r2)) != 0 &&
               (null_side->rel_mask() & (1ULL << r1)) != 0) {
      preserved_rel = r2;
      null_rel = r1;
    } else {
      return InvalidArgument(
          "outerjoin predicate does not cross the operator's operands: " +
          expr->pred()->ToString(&catalog));
    }
    FRO_RETURN_IF_ERROR(graph->AddOuterJoinEdge(
        graph->NodeOf(preserved_rel), graph->NodeOf(null_rel), expr->pred()));
  } else {
    return InvalidArgument(
        std::string("graph(Q) is defined for Join/Outerjoin queries only; "
                    "found ") +
        OpKindName(expr->kind()));
  }

  FRO_RETURN_IF_ERROR(AddEdges(expr->left(), db, graph));
  return AddEdges(expr->right(), db, graph);
}

}  // namespace

Result<QueryGraph> GraphOf(const ExprPtr& expr, const Database& db) {
  FRO_CHECK(expr != nullptr);
  QueryGraph graph;
  FRO_RETURN_IF_ERROR(AddLeaves(expr, db, &graph));
  FRO_RETURN_IF_ERROR(AddEdges(expr, db, &graph));
  return graph;
}

}  // namespace fro
