// The "nice" query-graph class (paper Section 3.1) and the Theorem 1
// free-reorderability test.
//
// Lemma 1: a graph is nice iff
//   (1) there is no cycle composed of outerjoin edges,
//   (2) there is no path of the form X -> Y - Z (a join edge incident to a
//       null-supplied node), and
//   (3) there is no path of the form X -> Y <- Z (two outerjoin edges into
//       the same node).
//
// Theorem 1 additionally requires every outerjoin predicate to be strong —
// i.e. the predicate returns False when the attributes it references from
// the *preserved* relation are all null. (With the ubiquitous equality
// predicates, strength holds with respect to both sides; the preserved
// side is the one identity 12 needs, as Example 3's counterexample shows.)

#ifndef FRO_GRAPH_NICE_H_
#define FRO_GRAPH_NICE_H_

#include <string>

#include "graph/query_graph.h"

namespace fro {

struct NiceCheck {
  bool connected = false;
  bool nice = false;
  /// Empty when nice; otherwise names the first violated Lemma 1
  /// condition.
  std::string violation;
};

/// Checks the Lemma 1 conditions (plus connectivity, which implementing
/// trees require).
NiceCheck CheckNice(const QueryGraph& graph);

struct ReorderabilityCheck {
  NiceCheck nice;
  bool all_outerjoin_preds_strong = false;
  /// Diagnostic: strength with respect to the null-supplied side, which
  /// equality predicates also satisfy but Theorem 1 does not need.
  bool all_strong_wrt_null_supplied = false;
  std::string detail;

  /// Theorem 1's precondition.
  bool freely_reorderable() const {
    return nice.connected && nice.nice && all_outerjoin_preds_strong;
  }
};

/// Tests Theorem 1's precondition: nice graph + strong outerjoin
/// predicates.
ReorderabilityCheck CheckFreelyReorderable(const QueryGraph& graph);

}  // namespace fro

#endif  // FRO_GRAPH_NICE_H_
