#include "graph/attr_classes.h"

#include <algorithm>

namespace fro {

bool IsColEqCol(const PredicatePtr& pred) {
  return pred->kind() == Predicate::Kind::kCmp &&
         pred->cmp_op() == CmpOp::kEq && pred->lhs().is_column() &&
         pred->rhs().is_column();
}

std::map<AttrId, std::vector<AttrId>> AttrEqClasses(const PredicatePtr& pred) {
  std::map<AttrId, std::vector<AttrId>> classes;
  if (pred == nullptr) return classes;

  AttrUnionFind uf;
  std::vector<AttrId> eq_attrs;
  for (const PredicatePtr& c : pred->Conjuncts(pred)) {
    if (!IsColEqCol(c)) continue;
    uf.Union(c->lhs().attr(), c->rhs().attr());
    eq_attrs.push_back(c->lhs().attr());
    eq_attrs.push_back(c->rhs().attr());
  }
  std::sort(eq_attrs.begin(), eq_attrs.end());
  eq_attrs.erase(std::unique(eq_attrs.begin(), eq_attrs.end()),
                 eq_attrs.end());

  for (AttrId a : eq_attrs) classes[uf.Find(a)].push_back(a);
  return classes;
}

}  // namespace fro
