// Attribute equivalence classes under column-equality join conjuncts.
//
// Several consumers need the same grouping: the leapfrog executor turns
// `a = b` conjuncts into join variables, the wcoj planner's variable-
// order search weighs the classes by distinct counts, and the acyclic
// subsystem's hypergraph uses them as vertices. They must all agree on
// the classes AND on the canonical representative (the minimum AttrId of
// the class), so the grouping lives here once.

#ifndef FRO_GRAPH_ATTR_CLASSES_H_
#define FRO_GRAPH_ATTR_CLASSES_H_

#include <map>
#include <vector>

#include "relational/predicate.h"
#include "relational/schema.h"

namespace fro {

/// Union-find over attribute ids. Roots are canonical: Find always
/// returns the minimum AttrId of the merged class.
class AttrUnionFind {
 public:
  AttrId Find(AttrId a) {
    auto it = parent_.find(a);
    if (it == parent_.end()) {
      parent_.emplace(a, a);
      return a;
    }
    if (it->second == a) return a;
    const AttrId root = Find(it->second);
    it->second = root;
    return root;
  }

  void Union(AttrId a, AttrId b) {
    const AttrId ra = Find(a);
    const AttrId rb = Find(b);
    if (ra != rb) parent_[std::max(ra, rb)] = std::min(ra, rb);
  }

 private:
  std::map<AttrId, AttrId> parent_;
};

/// True for a `column = column` equality conjunct — the shape that
/// merges two attributes into one class (and defines a join variable).
bool IsColEqCol(const PredicatePtr& pred);

/// Groups the attributes mentioned by the column-equality conjuncts of
/// `pred` (a conjunction; null allowed) into equivalence classes, keyed
/// by canonical representative and listing members in ascending order.
std::map<AttrId, std::vector<AttrId>> AttrEqClasses(const PredicatePtr& pred);

}  // namespace fro

#endif  // FRO_GRAPH_ATTR_CLASSES_H_
