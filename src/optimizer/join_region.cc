#include "optimizer/join_region.h"

#include "common/check.h"

namespace fro {

void CollectJoinRegion(const ExprPtr& expr, std::vector<ExprPtr>* operands,
                       std::vector<PredicatePtr>* conjuncts) {
  if (expr->kind() != OpKind::kJoin) {
    operands->push_back(expr);
    return;
  }
  CollectJoinRegion(expr->left(), operands, conjuncts);
  CollectJoinRegion(expr->right(), operands, conjuncts);
  if (expr->pred() != nullptr) {
    for (PredicatePtr& c : expr->pred()->Conjuncts(expr->pred())) {
      conjuncts->push_back(std::move(c));
    }
  }
}

PredicatePtr FoldAnd(const std::vector<PredicatePtr>& conjuncts) {
  PredicatePtr out;
  for (const PredicatePtr& c : conjuncts) out = AndOf(out, c);
  return out;
}

ExprPtr LeftDeepJoin(std::vector<ExprPtr> items,
                     std::vector<PredicatePtr> conjuncts) {
  FRO_CHECK(!items.empty());
  std::vector<bool> used(conjuncts.size(), false);
  ExprPtr current = items[0];
  std::vector<bool> taken(items.size(), false);
  taken[0] = true;
  for (size_t step = 1; step < items.size(); ++step) {
    // Prefer an item connected to the current prefix by some conjunct.
    size_t pick = items.size();
    for (size_t i = 0; i < items.size(); ++i) {
      if (taken[i]) continue;
      if (pick == items.size()) pick = i;  // fallback: first untaken
      bool connected = false;
      const AttrSet joined = current->attrs().Union(items[i]->attrs());
      for (size_t k = 0; k < conjuncts.size(); ++k) {
        if (used[k]) continue;
        const AttrSet& refs = conjuncts[k]->References();
        if (joined.ContainsAll(refs) && refs.Overlaps(current->attrs()) &&
            refs.Overlaps(items[i]->attrs())) {
          connected = true;
          break;
        }
      }
      if (connected) {
        pick = i;
        break;
      }
    }
    taken[pick] = true;
    const AttrSet joined = current->attrs().Union(items[pick]->attrs());
    PredicatePtr pred;
    for (size_t k = 0; k < conjuncts.size(); ++k) {
      if (used[k]) continue;
      if (joined.ContainsAll(conjuncts[k]->References())) {
        pred = AndOf(std::move(pred), conjuncts[k]);
        used[k] = true;
      }
    }
    current = Expr::Join(std::move(current), items[pick], std::move(pred));
  }
  PredicatePtr leftover;
  for (size_t k = 0; k < conjuncts.size(); ++k) {
    if (!used[k]) leftover = AndOf(std::move(leftover), conjuncts[k]);
  }
  if (leftover != nullptr) {
    current = Expr::Restrict(std::move(current), std::move(leftover));
  }
  return current;
}

ExprPtr RebuildSameShape(const ExprPtr& expr,
                         const std::vector<ExprPtr>& operands, size_t* next) {
  if (expr->kind() != OpKind::kJoin) return operands[(*next)++];
  ExprPtr left = RebuildSameShape(expr->left(), operands, next);
  ExprPtr right = RebuildSameShape(expr->right(), operands, next);
  return Expr::Join(std::move(left), std::move(right), expr->pred());
}

ExprPtr MapJoinRegions(const ExprPtr& expr, const JoinRegionRewrite& rewrite) {
  switch (expr->kind()) {
    case OpKind::kLeaf:
      return expr;
    case OpKind::kJoin: {
      std::vector<ExprPtr> operands;
      std::vector<PredicatePtr> conjuncts;
      CollectJoinRegion(expr, &operands, &conjuncts);
      for (ExprPtr& operand : operands) {
        operand = MapJoinRegions(operand, rewrite);
      }
      return rewrite(expr, operands, conjuncts);
    }
    case OpKind::kRestrict:
      return Expr::Restrict(MapJoinRegions(expr->left(), rewrite),
                            expr->pred());
    case OpKind::kProject:
      return Expr::Project(MapJoinRegions(expr->left(), rewrite),
                           expr->project_cols(), expr->project_dedup());
    case OpKind::kUnion:
      return Expr::Union(MapJoinRegions(expr->left(), rewrite),
                         MapJoinRegions(expr->right(), rewrite));
    case OpKind::kOuterJoin:
      return Expr::OuterJoin(MapJoinRegions(expr->left(), rewrite),
                             MapJoinRegions(expr->right(), rewrite),
                             expr->pred(), expr->preserves_left());
    case OpKind::kAntijoin:
      return Expr::Antijoin(MapJoinRegions(expr->left(), rewrite),
                            MapJoinRegions(expr->right(), rewrite),
                            expr->pred(), expr->preserves_left());
    case OpKind::kSemijoin:
      return Expr::Semijoin(MapJoinRegions(expr->left(), rewrite),
                            MapJoinRegions(expr->right(), rewrite),
                            expr->pred(), expr->preserves_left());
    case OpKind::kGoj:
      return Expr::Goj(MapJoinRegions(expr->left(), rewrite),
                       MapJoinRegions(expr->right(), rewrite), expr->pred(),
                       expr->goj_subset());
    case OpKind::kMultiwayJoin: {
      // Already multiway (idempotent re-application): walk the operands.
      std::vector<ExprPtr> children;
      children.reserve(expr->mj_children().size());
      for (const ExprPtr& child : expr->mj_children()) {
        children.push_back(MapJoinRegions(child, rewrite));
      }
      return Expr::MultiwayJoin(std::move(children), expr->pred(),
                                expr->mj_var_order());
    }
  }
  FRO_CHECK(false) << "unhandled operator kind";
  return expr;
}

}  // namespace fro
