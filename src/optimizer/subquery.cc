#include "optimizer/subquery.h"

#include "common/check.h"
#include "graph/from_expr.h"
#include "graph/nice.h"
#include "optimizer/dp.h"

namespace fro {

namespace {

// Tries to reorder this whole subtree; on success returns the optimized
// plan, otherwise recurses into children looking for smaller islands.
ExprPtr Visit(const ExprPtr& expr, const Database& db,
              const CostModel& cost_model, int* reordered) {
  if (expr->is_leaf()) return expr;

  // Whole-subtree attempt: pure Join/Outerjoin, >= 3 relations, nice,
  // strong.
  if ((expr->kind() == OpKind::kJoin ||
       expr->kind() == OpKind::kOuterJoin) &&
      expr->num_leaves() >= 3) {
    Result<QueryGraph> graph = GraphOf(expr, db);
    if (graph.ok() &&
        CheckFreelyReorderable(*graph).freely_reorderable()) {
      Result<PlanResult> best = OptimizeReorderable(*graph, db, cost_model);
      if (best.ok()) {
        ++*reordered;
        return best->plan;
      }
    }
  }

  // Otherwise: rebuild with reordered children.
  ExprPtr left = expr->left() != nullptr
                     ? Visit(expr->left(), db, cost_model, reordered)
                     : nullptr;
  ExprPtr right = expr->right() != nullptr
                      ? Visit(expr->right(), db, cost_model, reordered)
                      : nullptr;
  if (left == expr->left() && right == expr->right()) return expr;
  switch (expr->kind()) {
    case OpKind::kJoin:
      return Expr::Join(left, right, expr->pred());
    case OpKind::kOuterJoin:
      return Expr::OuterJoin(left, right, expr->pred(),
                             expr->preserves_left());
    case OpKind::kAntijoin:
      return Expr::Antijoin(left, right, expr->pred(),
                            expr->preserves_left());
    case OpKind::kSemijoin:
      return Expr::Semijoin(left, right, expr->pred(),
                            expr->preserves_left());
    case OpKind::kGoj:
      return Expr::Goj(left, right, expr->pred(), expr->goj_subset());
    case OpKind::kUnion:
      return Expr::Union(left, right);
    case OpKind::kRestrict:
      return Expr::Restrict(left, expr->pred());
    case OpKind::kProject:
      return Expr::Project(left, expr->project_cols(),
                           expr->project_dedup());
    case OpKind::kLeaf:
      break;
  }
  FRO_CHECK(false);
  return nullptr;
}

}  // namespace

SubqueryReorderResult ReorderSubqueries(const ExprPtr& expr,
                                        const Database& db,
                                        const CostModel& cost_model) {
  SubqueryReorderResult result;
  result.expr = Visit(expr, db, cost_model, &result.subqueries_reordered);
  return result;
}

}  // namespace fro
