#include "optimizer/greedy.h"

#include <vector>

#include "common/check.h"
#include "enumerate/cuts.h"

namespace fro {

Result<PlanResult> OptimizeGreedy(const QueryGraph& graph,
                                  const Database& db,
                                  const CostModel& cost_model) {
  if (graph.num_nodes() == 0) {
    return InvalidArgument("empty query graph");
  }
  if (!graph.IsConnected(graph.AllMask())) {
    return FailedPrecondition("query graph is not connected");
  }
  const CardinalityEstimator& estimator = cost_model.estimator();

  struct Component {
    uint64_t mask;
    ExprPtr plan;
    double rows;
    double cost;
  };
  std::vector<Component> components;
  components.reserve(static_cast<size_t>(graph.num_nodes()));
  for (int node = 0; node < graph.num_nodes(); ++node) {
    components.push_back({1ULL << node,
                          Expr::Leaf(graph.node_rel(node), db),
                          estimator.BaseRows(graph.node_rel(node)), 0.0});
  }

  uint64_t considered = 0;
  while (components.size() > 1) {
    double best_rows = 0;
    double best_cost = 0;
    int best_i = -1, best_j = -1;
    Cut best_cut;
    for (size_t i = 0; i < components.size(); ++i) {
      for (size_t j = i + 1; j < components.size(); ++j) {
        Cut cut;
        if (!MakeCut(graph, components[i].mask, components[j].mask, &cut)) {
          continue;
        }
        ++considered;
        // Map canonical cut sides back to component order.
        const Component& lhs =
            cut.left == components[i].mask ? components[i] : components[j];
        const Component& rhs =
            cut.left == components[i].mask ? components[j] : components[i];
        OpKind kind = cut.outerjoin ? OpKind::kOuterJoin : OpKind::kJoin;
        double rows = estimator.JoinLikeCard(kind, cut.preserves_left,
                                             cut.pred, lhs.rows, rhs.rows);
        double cost =
            lhs.cost + rhs.cost +
            cost_model.NodeCost(kind, cut.preserves_left, lhs.rows,
                                lhs.plan->is_leaf(), rhs.rows,
                                rhs.plan->is_leaf(), rows);
        if (best_i < 0 || rows < best_rows) {
          best_rows = rows;
          best_cost = cost;
          best_i = static_cast<int>(i);
          best_j = static_cast<int>(j);
          best_cut = cut;
        }
      }
    }
    if (best_i < 0) {
      return Internal(
          "no realizable component pair (graph is not nice?); greedy "
          "ordering is defined for freely-reorderable graphs");
    }
    Component& a = components[static_cast<size_t>(best_i)];
    Component& b = components[static_cast<size_t>(best_j)];
    const Component& lhs = best_cut.left == a.mask ? a : b;
    const Component& rhs = best_cut.left == a.mask ? b : a;
    ExprPtr plan =
        best_cut.outerjoin
            ? Expr::OuterJoin(lhs.plan, rhs.plan, best_cut.pred,
                              best_cut.preserves_left)
            : Expr::Join(lhs.plan, rhs.plan, best_cut.pred);
    Component merged{a.mask | b.mask, std::move(plan), best_rows, best_cost};
    components[static_cast<size_t>(best_i)] = std::move(merged);
    components.erase(components.begin() + best_j);
  }

  PlanResult result;
  result.plan = components[0].plan;
  result.cost = components[0].cost;
  result.plans_considered = considered;
  return result;
}

}  // namespace fro
