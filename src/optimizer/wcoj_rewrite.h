// Multiway-join planning: collapse cyclic join-only cores of an
// optimized plan into kMultiwayJoin nodes (executed by the leapfrog
// triejoin in src/wcoj/), keeping the freely-reorderable outerjoin
// shell binary. This is where worst-case-optimal evaluation enters the
// paper's pipeline: Theorem 1 governs the shell, the core is handed to
// an operator whose runtime is bounded by the core's AGM fractional
// edge cover instead of its best binary join order.

#ifndef FRO_OPTIMIZER_WCOJ_REWRITE_H_
#define FRO_OPTIMIZER_WCOJ_REWRITE_H_

#include <vector>

#include "algebra/expr.h"
#include "optimizer/cost.h"

namespace fro {

struct WcojRewriteResult {
  ExprPtr expr;
  /// Cyclic cores collapsed into kMultiwayJoin nodes.
  int cores_collapsed = 0;
};

/// Cost-gated core collapse over an optimized plan: every maximal
/// pure-join region is scanned for cyclic cores (wcoj/cyclic_core.h);
/// each core found is collapsed into one kMultiwayJoin node — variable
/// order picked by exhaustive search up to 8 variables, by a
/// degree/cardinality heuristic beyond — and the rewritten region is
/// kept only when the cost model prefers it to the binary plan.
/// Non-join operators (the outerjoin shell) are untouched.
WcojRewriteResult ApplyWcoj(const ExprPtr& plan, const Database& db,
                            const CostModel& cost_model);

/// Fuzzing aid: collapses EVERY maximal pure-join region with >= 2
/// operands into a single kMultiwayJoin — no core detection, no cost
/// gate — so the differential driver can exercise the leapfrog operator
/// on arbitrary join structures (including acyclic ones and cross
/// products). Semantics-preserving: the result evaluates to the same
/// bag as the input query.
ExprPtr ForceMultiwayJoins(const ExprPtr& query);

/// Picks the global variable order for a multiway join over `operands`
/// with predicate `pred`: variables are the column=column equality
/// classes spanning >= 2 operands; returns one representative attribute
/// per variable in execution order. With an estimator and <= 8
/// variables the order minimizes the sum of prefix products of
/// per-variable minimum distinct counts (exhaustive); otherwise a
/// heuristic orders by descending operand coverage, then ascending
/// distinct count, then attribute id. Exposed for tests.
std::vector<AttrId> ChooseVarOrder(const std::vector<ExprPtr>& operands,
                                   const PredicatePtr& pred,
                                   const CardinalityEstimator* estimator);

}  // namespace fro

#endif  // FRO_OPTIMIZER_WCOJ_REWRITE_H_
