#include "optimizer/cardinality.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace fro {

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;

}  // namespace

double Histogram::FractionBelow(double x) const {
  if (!populated) return kDefaultRangeSelectivity;
  if (x <= lo) return 0.0;
  if (x >= hi) return 1.0;
  const double width = (hi - lo) / kBuckets;
  double below = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const double bucket_lo = lo + b * width;
    const double bucket_hi = bucket_lo + width;
    if (x >= bucket_hi) {
      below += fractions[b];
    } else {
      below += fractions[b] * (x - bucket_lo) / width;
      break;
    }
  }
  return Clamp01(below);
}

CardinalityEstimator::CardinalityEstimator(const Database& db) : db_(db) {
  for (RelId rel = 0; rel < db.num_relations(); ++rel) {
    const Relation& relation = db.relation(rel);
    const Scheme& scheme = relation.scheme();
    for (size_t c = 0; c < scheme.size(); ++c) {
      std::set<Value> distinct;
      size_t nulls = 0;
      std::vector<double> numeric_values;
      for (const Tuple& row : relation.rows()) {
        const Value& v = row.value(c);
        if (v.is_null()) {
          ++nulls;
        } else {
          distinct.insert(v);
          if (v.kind() == Value::Kind::kInt ||
              v.kind() == Value::Kind::kDouble) {
            numeric_values.push_back(v.NumericValue());
          }
        }
      }
      AttrStats stats;
      stats.distinct = std::max<double>(1.0, distinct.size());
      stats.null_fraction =
          relation.NumRows() == 0
              ? 0.0
              : static_cast<double>(nulls) / relation.NumRows();
      if (numeric_values.size() >= 2) {
        auto [lo_it, hi_it] =
            std::minmax_element(numeric_values.begin(),
                                numeric_values.end());
        Histogram& h = stats.histogram;
        h.lo = *lo_it;
        h.hi = *hi_it;
        if (h.hi > h.lo) {
          const double width = (h.hi - h.lo) / Histogram::kBuckets;
          for (double v : numeric_values) {
            int bucket = static_cast<int>((v - h.lo) / width);
            bucket = std::min(bucket, Histogram::kBuckets - 1);
            h.fractions[bucket] += 1.0;
          }
          for (double& f : h.fractions) f /= numeric_values.size();
          h.populated = true;
        }
      }
      attr_stats_[scheme.col(c)] = stats;
    }
  }
}

double CardinalityEstimator::BaseRows(RelId rel) const {
  return static_cast<double>(db_.relation(rel).NumRows());
}

const AttrStats& CardinalityEstimator::StatsOf(AttrId attr) const {
  static const AttrStats kDefault;
  auto it = attr_stats_.find(attr);
  return it == attr_stats_.end() ? kDefault : it->second;
}

double CardinalityEstimator::Selectivity(const PredicatePtr& pred) const {
  if (pred == nullptr) return 1.0;
  switch (pred->kind()) {
    case Predicate::Kind::kConst:
      return pred->const_value() ? 1.0 : 0.0;
    case Predicate::Kind::kCmp: {
      const Operand& a = pred->lhs();
      const Operand& b = pred->rhs();
      if (pred->cmp_op() == CmpOp::kEq) {
        if (a.is_column() && b.is_column()) {
          return 1.0 / std::max(StatsOf(a.attr()).distinct,
                                StatsOf(b.attr()).distinct);
        }
        if (a.is_column()) return 1.0 / StatsOf(a.attr()).distinct;
        if (b.is_column()) return 1.0 / StatsOf(b.attr()).distinct;
        return 0.5;
      }
      if (pred->cmp_op() == CmpOp::kNe) {
        // Complement of the equality estimate.
        PredicatePtr eq = Predicate::Cmp(CmpOp::kEq, a, b);
        return Clamp01(1.0 - Selectivity(eq));
      }
      // Range comparison: use the column's histogram when one side is a
      // numeric literal.
      const bool a_col = a.is_column();
      const bool b_col = b.is_column();
      if (a_col != b_col) {
        const Operand& col = a_col ? a : b;
        const Operand& lit = a_col ? b : a;
        if (!lit.literal().is_null() &&
            (lit.literal().kind() == Value::Kind::kInt ||
             lit.literal().kind() == Value::Kind::kDouble)) {
          const Histogram& h = StatsOf(col.attr()).histogram;
          if (h.populated) {
            const double x = lit.literal().NumericValue();
            double below = h.FractionBelow(x);
            // Normalize the operator to "col OP lit".
            CmpOp op = pred->cmp_op();
            if (!a_col) {
              // lit OP col  ==  col (flipped OP) lit.
              switch (op) {
                case CmpOp::kLt:
                  op = CmpOp::kGt;
                  break;
                case CmpOp::kLe:
                  op = CmpOp::kGe;
                  break;
                case CmpOp::kGt:
                  op = CmpOp::kLt;
                  break;
                case CmpOp::kGe:
                  op = CmpOp::kLe;
                  break;
                default:
                  break;
              }
            }
            const double eq = 1.0 / StatsOf(col.attr()).distinct;
            const double non_null =
                1.0 - StatsOf(col.attr()).null_fraction;
            switch (op) {
              case CmpOp::kLt:
                return Clamp01(below) * non_null;
              case CmpOp::kLe:
                return Clamp01(below + eq) * non_null;
              case CmpOp::kGt:
                return Clamp01(1.0 - below - eq) * non_null;
              case CmpOp::kGe:
                return Clamp01(1.0 - below) * non_null;
              default:
                break;
            }
          }
        }
      }
      return kDefaultRangeSelectivity;
    }
    case Predicate::Kind::kAnd: {
      double s = 1.0;
      for (const PredicatePtr& child : pred->children()) {
        s *= Selectivity(child);
      }
      return s;
    }
    case Predicate::Kind::kOr: {
      double not_any = 1.0;
      for (const PredicatePtr& child : pred->children()) {
        not_any *= 1.0 - Selectivity(child);
      }
      return Clamp01(1.0 - not_any);
    }
    case Predicate::Kind::kNot:
      return Clamp01(1.0 - Selectivity(pred->children()[0]));
    case Predicate::Kind::kIsNull: {
      const Operand& op = pred->operand();
      if (!op.is_column()) return op.literal().is_null() ? 1.0 : 0.0;
      return StatsOf(op.attr()).null_fraction;
    }
  }
  return 0.5;
}

double CardinalityEstimator::JoinLikeCard(OpKind kind, bool preserves_left,
                                          const PredicatePtr& pred,
                                          double left_rows,
                                          double right_rows) const {
  const double sel = Selectivity(pred);
  const double join_rows = left_rows * right_rows * sel;
  switch (kind) {
    case OpKind::kJoin:
      return join_rows;
    case OpKind::kOuterJoin:
    case OpKind::kGoj: {
      const double preserved = preserves_left ? left_rows : right_rows;
      const double other = preserves_left ? right_rows : left_rows;
      // Probability a preserved tuple finds no partner, under
      // independence.
      const double p_unmatched = Clamp01(1.0 - sel * other);
      return join_rows + preserved * p_unmatched;
    }
    case OpKind::kAntijoin: {
      const double kept = preserves_left ? left_rows : right_rows;
      const double other = preserves_left ? right_rows : left_rows;
      return kept * Clamp01(1.0 - sel * other);
    }
    case OpKind::kSemijoin: {
      const double kept = preserves_left ? left_rows : right_rows;
      const double other = preserves_left ? right_rows : left_rows;
      return kept * Clamp01(sel * other);
    }
    default:
      FRO_CHECK(false) << "JoinLikeCard on " << OpKindName(kind);
  }
  return 0;
}

double CardinalityEstimator::MatchFraction(const PredicatePtr& pred,
                                           const AttrSet& kept_attrs,
                                           double other_rows) const {
  if (pred == nullptr) return other_rows > 0 ? 1.0 : 0.0;
  if (pred->kind() == Predicate::Kind::kAnd) {
    double fraction = 1.0;
    for (const PredicatePtr& child : pred->children()) {
      fraction *= MatchFraction(child, kept_attrs, other_rows);
    }
    return Clamp01(fraction);
  }
  if (pred->kind() == Predicate::Kind::kCmp &&
      pred->cmp_op() == CmpOp::kEq && pred->lhs().is_column() &&
      pred->rhs().is_column()) {
    const AttrId lhs = pred->lhs().attr();
    const AttrId rhs = pred->rhs().attr();
    const bool lhs_kept = kept_attrs.Contains(lhs);
    if (lhs_kept != kept_attrs.Contains(rhs)) {
      const AttrId kept_attr = lhs_kept ? lhs : rhs;
      const AttrId other_attr = lhs_kept ? rhs : lhs;
      const AttrStats& kept_stats = StatsOf(kept_attr);
      const double d_kept = kept_stats.distinct;
      const double d_other = StatsOf(other_attr).distinct;
      // Containment of value sets: the min(d_kept, d_other) shared
      // values cover that fraction of the kept side's distinct values;
      // nulls never match.
      return Clamp01(std::min(d_kept, d_other) / d_kept) *
             (1.0 - kept_stats.null_fraction);
    }
  }
  return Clamp01(Selectivity(pred) * other_rows);
}

double CardinalityEstimator::Estimate(const ExprPtr& expr) const {
  // Runtime feedback wins over every static rule: a measured cardinality
  // for this exact subexpression is ground truth (modulo decay), and the
  // estimates of enclosing operators compound from it.
  if (feedback_ != nullptr) {
    if (const double* rows = feedback_->Lookup(expr->hash())) return *rows;
  }
  switch (expr->kind()) {
    case OpKind::kLeaf:
      return BaseRows(expr->rel());
    case OpKind::kRestrict:
      return Estimate(expr->left()) * Selectivity(expr->pred());
    case OpKind::kProject: {
      double input = Estimate(expr->left());
      if (!expr->project_dedup()) return input;
      double distinct = 1.0;
      for (AttrId attr : expr->project_cols()) {
        distinct *= StatsOf(attr).distinct;
      }
      return std::min(input, distinct);
    }
    case OpKind::kUnion:
      return Estimate(expr->left()) + Estimate(expr->right());
    case OpKind::kMultiwayJoin: {
      // Filtered cross product of the operands, same independence
      // assumptions as the binary estimate it replaces.
      double rows = Selectivity(expr->pred());
      for (const ExprPtr& child : expr->mj_children()) {
        rows *= Estimate(child);
      }
      return rows;
    }
    case OpKind::kSemijoin:
    case OpKind::kAntijoin: {
      const bool kept_left = expr->preserves_left();
      const ExprPtr& kept = kept_left ? expr->left() : expr->right();
      const ExprPtr& other = kept_left ? expr->right() : expr->left();
      const double kept_rows = Estimate(kept);
      const double match =
          MatchFraction(expr->pred(), kept->attrs(), Estimate(other));
      return expr->kind() == OpKind::kSemijoin ? kept_rows * match
                                               : kept_rows * (1.0 - match);
    }
    default:
      return JoinLikeCard(expr->kind(), expr->preserves_left(), expr->pred(),
                          Estimate(expr->left()), Estimate(expr->right()));
  }
}

}  // namespace fro
