#include "optimizer/constraints.h"

#include <set>

#include "common/check.h"
#include "graph/from_expr.h"

namespace fro {

bool ConstraintSet::Covers(AttrId referencing, AttrId referenced) const {
  for (const ForeignKey& key : keys_) {
    if (key.referencing == referencing && key.referenced == referenced) {
      return true;
    }
  }
  return false;
}

Status ConstraintSet::Validate(const Database& db) const {
  for (const ForeignKey& key : keys_) {
    const Catalog& catalog = db.catalog();
    RelId from_rel = catalog.AttrRelation(key.referencing);
    RelId to_rel = catalog.AttrRelation(key.referenced);
    std::set<Value> targets;
    for (const Tuple& row : db.relation(to_rel).rows()) {
      int pos = db.scheme(to_rel).IndexOf(key.referenced);
      targets.insert(row.value(static_cast<size_t>(pos)));
    }
    int pos = db.scheme(from_rel).IndexOf(key.referencing);
    for (const Tuple& row : db.relation(from_rel).rows()) {
      const Value& v = row.value(static_cast<size_t>(pos));
      if (v.is_null()) {
        return FailedPrecondition(
            "foreign key violated: null value in " +
            catalog.AttrName(key.referencing));
      }
      if (targets.count(v) == 0) {
        return FailedPrecondition(
            "foreign key violated: " + catalog.AttrName(key.referencing) +
            " value " + v.ToString() + " has no match in " +
            catalog.AttrName(key.referenced));
      }
    }
  }
  return Status::Ok();
}

namespace {

// Attributes that some outerjoin inside `expr` can pad with nulls.
AttrSet PaddedAttrs(const ExprPtr& expr) {
  if (expr->is_leaf()) return AttrSet();
  AttrSet out;
  if (expr->left() != nullptr) out = out.Union(PaddedAttrs(expr->left()));
  if (expr->right() != nullptr) out = out.Union(PaddedAttrs(expr->right()));
  if (expr->kind() == OpKind::kOuterJoin) {
    const ExprPtr& null_side =
        expr->preserves_left() ? expr->right() : expr->left();
    out = out.Union(null_side->attrs());
  } else if (expr->kind() == OpKind::kGoj) {
    out = out.Union(expr->attrs().Subtract(expr->goj_subset()));
  }
  return out;
}

// True when the outerjoin node is guaranteed lossless by a constraint.
bool Convertible(const Expr& node, const ConstraintSet& constraints) {
  if (node.kind() != OpKind::kOuterJoin) return false;
  const PredicatePtr& pred = node.pred();
  if (pred->kind() != Predicate::Kind::kCmp ||
      pred->cmp_op() != CmpOp::kEq || !pred->lhs().is_column() ||
      !pred->rhs().is_column()) {
    return false;
  }
  const ExprPtr& preserved =
      node.preserves_left() ? node.left() : node.right();
  const ExprPtr& null_side =
      node.preserves_left() ? node.right() : node.left();
  AttrId a = pred->lhs().attr();
  AttrId b = pred->rhs().attr();
  if (!preserved->attrs().Contains(a)) std::swap(a, b);
  if (!preserved->attrs().Contains(a) || !null_side->attrs().Contains(b)) {
    return false;
  }
  if (!constraints.Covers(a, b)) return false;
  // The referencing column must reach this operator unpadded, and the
  // null-supplied operand must not drop referenced values: require it to
  // be the base relation itself (a leaf).
  if (PaddedAttrs(preserved).Contains(a)) return false;
  return null_side->is_leaf();
}

ExprPtr Rewrite(const ExprPtr& expr, const ConstraintSet& constraints,
                int* converted) {
  if (expr->is_leaf()) return expr;
  ExprPtr left = expr->left() != nullptr
                     ? Rewrite(expr->left(), constraints, converted)
                     : nullptr;
  ExprPtr right = expr->right() != nullptr
                      ? Rewrite(expr->right(), constraints, converted)
                      : nullptr;
  switch (expr->kind()) {
    case OpKind::kOuterJoin: {
      ExprPtr node = Expr::OuterJoin(left, right, expr->pred(),
                                     expr->preserves_left());
      if (Convertible(*node, constraints)) {
        ++*converted;
        return Expr::Join(node->left(), node->right(), node->pred());
      }
      return node;
    }
    case OpKind::kJoin:
      return Expr::Join(left, right, expr->pred());
    case OpKind::kAntijoin:
      return Expr::Antijoin(left, right, expr->pred(),
                            expr->preserves_left());
    case OpKind::kSemijoin:
      return Expr::Semijoin(left, right, expr->pred(),
                            expr->preserves_left());
    case OpKind::kGoj:
      return Expr::Goj(left, right, expr->pred(), expr->goj_subset());
    case OpKind::kUnion:
      return Expr::Union(left, right);
    case OpKind::kRestrict:
      return Expr::Restrict(left, expr->pred());
    case OpKind::kProject:
      return Expr::Project(left, expr->project_cols(),
                           expr->project_dedup());
    case OpKind::kLeaf:
      break;
  }
  FRO_CHECK(false);
  return nullptr;
}

}  // namespace

Result<ConstraintSimplifyResult> SimplifyWithConstraints(
    const ExprPtr& expr, const ConstraintSet& constraints,
    const Database& db) {
  FRO_RETURN_IF_ERROR(constraints.Validate(db));
  ConstraintSimplifyResult result;
  result.expr = Rewrite(expr, constraints, &result.converted);
  Result<QueryGraph> graph = GraphOf(result.expr, db);
  result.still_freely_reorderable =
      graph.ok() && CheckFreelyReorderable(*graph).freely_reorderable();
  return result;
}

}  // namespace fro
