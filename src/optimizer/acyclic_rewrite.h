// Acyclic fast path: rewrite alpha-acyclic join-only regions of an
// optimized plan into Yannakakis semijoin programs (src/acyclic/). The
// complement of the WCOJ rewrite: cyclic cores go to the leapfrog
// triejoin, acyclic regions — the common case once the Section 4
// simplifier has turned outerjoins into joins — get semijoin reduction
// so no intermediate outgrows input + output. The outerjoin shell and
// Theorem 1 classification are untouched. Runs after the WCOJ pass:
// collapsed kMultiwayJoin cores become frontier operands, and the
// remaining region is often newly acyclic.

#ifndef FRO_OPTIMIZER_ACYCLIC_REWRITE_H_
#define FRO_OPTIMIZER_ACYCLIC_REWRITE_H_

#include "algebra/expr.h"
#include "optimizer/cost.h"

namespace fro {

struct AcyclicRewriteResult {
  ExprPtr expr;
  /// Regions rewritten into semijoin programs.
  int programs_planned = 0;
  /// Total semijoin reductions inserted across those programs.
  int semijoins = 0;
};

/// Cost-gated rewrite over an optimized plan: every maximal pure-join
/// region with 3..64 operands is GYO-reduced; when acyclic, a
/// Yannakakis program (bottom-up reductions gated per edge by the
/// estimated survivor fraction, then joins along the tree) replaces the
/// region if the cost model prefers it to the binary plan. Regions
/// whose program inserts no semijoin are left alone.
AcyclicRewriteResult ApplyAcyclic(const ExprPtr& plan, const Database& db,
                                  const CostModel& cost_model);

/// Fuzzing aid: rewrites EVERY acyclic pure-join region with >= 2
/// operands into a fully-reduced semijoin program (bottom-up and
/// top-down passes, no estimator gate, no cost gate); cyclic regions
/// are left as-is. Semantics-preserving: the result evaluates to the
/// same bag as the input query.
ExprPtr ForceAcyclicPrograms(const ExprPtr& query);

}  // namespace fro

#endif  // FRO_OPTIMIZER_ACYCLIC_REWRITE_H_
