// The optimizer facade: a composable rewrite-pass pipeline (see
// rewrite_pass.h) over the algebra Sections 4 and 6 of the paper
// suggest, extended with the structural rewrites later PRs added. The
// default pipeline runs, in order:
//
//   1. "simplify" — the Section 4 simplification (strong filters
//      convert outerjoins to joins), "carried out before creation of
//      the query graph".
//   2. "reorder" — peel top-level restrictions, derive graph(Q), and
//      classify per Theorem 1: freely-reorderable graphs get the DP
//      search over all implementing trees (greedy past
//      max_dp_relations); everything else keeps its association but has
//      every maximal freely-reorderable subtree DP-optimized in place
//      (Section 6.1).
//   3. "goj" — for non-freely-reorderable queries over duplicate-free
//      base relations, left-deepen with the generalized-outerjoin
//      rewrites (identities 15/16).
//   4. "wcoj" — collapse cyclic join-only cores into worst-case-optimal
//      leapfrog multiway joins (cost-gated); the outerjoin shell stays
//      binary.
//   5. "acyclic" — rewrite alpha-acyclic join-only regions (GYO) into
//      Yannakakis semijoin programs (cost-gated, per-edge safe-subjoin
//      analysis).
//   6. "pushdown" — re-sink restriction conjuncts as deep as outerjoin
//      semantics allow ("do restrictions as early as possible").
//
// Callers tailor the pipeline instead of toggling booleans:
// `RewritePipeline::Default().Without("wcoj")` drops a pass, Append
// adds one. Each pass reports uniform PassStats in the outcome.

#ifndef FRO_OPTIMIZER_OPTIMIZER_H_
#define FRO_OPTIMIZER_OPTIMIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "algebra/expr.h"
#include "common/status.h"
#include "optimizer/cost.h"
#include "optimizer/dp.h"
#include "optimizer/plan_cache.h"
#include "optimizer/rewrite_pass.h"

namespace fro {

struct OptimizeOptions {
  CostKind cost_kind = CostKind::kCout;
  /// Largest relation count handled by the exact DP; bigger
  /// freely-reorderable graphs use greedy operator ordering instead.
  int max_dp_relations = 14;
  /// The rewrite passes to run, in order.
  RewritePipeline pipeline = RewritePipeline::Default();
  /// Optional plan cache, keyed on the input query's structural hash.
  /// On a hit the whole pipeline is skipped and the cached plan returned
  /// (sound for structurally identical queries; see plan_cache.h). Not
  /// owned; must be thread-safe if Optimize runs concurrently. Callers
  /// sharing one cache must share one pipeline shape, or replayed plans
  /// may embed rewrites the replaying caller opted out of.
  PlanCacheInterface* plan_cache = nullptr;
  /// Optional runtime cardinality feedback (optimizer/feedback.h),
  /// attached to the pipeline's shared estimator: the DP search, the
  /// wcoj/acyclic cost gates, and the safe-subjoin survivor analysis all
  /// see corrected numbers. Feedback changes plan *choice* only — every
  /// candidate is result-equivalent regardless. Not owned; must outlive
  /// the call.
  const CardinalityFeedback* feedback = nullptr;
};

struct OptimizeOutcome {
  ExprPtr plan;
  /// Estimated cost of `plan` under the requested model.
  double cost = 0;
  /// Estimated cost of the input query, for comparison.
  double original_cost = 0;
  bool freely_reorderable = false;
  /// True when the plan came from `options.plan_cache` and the pipeline
  /// was skipped entirely (passes is then empty).
  bool cache_hit = false;
  /// Uniform per-pass stats, one entry per pipeline pass in run order.
  std::vector<PassStats> passes;
  /// Theorem 1 classification prose from the reorder pass (or the
  /// cache-hit banner).
  std::string classification;
  /// Per-node estimates of `plan` under the estimates it was chosen with
  /// (feedback included) — the execution layer measures per-operator
  /// Q-error against these (optimizer/feedback.h).
  OpEstimates op_estimates;
  /// True when this outcome resolved a stale cache entry's re-plan claim
  /// (LookupForPlanning granted the claim and the pipeline re-ran).
  bool replanned = false;

  /// The stats of the named pass, or nullptr when it did not run this
  /// outcome (absent from the pipeline, or a cache hit).
  const PassStats* FindPass(std::string_view name) const;
  /// Applications of the named pass (0 when absent or skipped).
  int PassApplications(std::string_view name) const;
  /// One-line rollup: classification, then every pass detail that
  /// changed the plan. The string cached alongside the plan.
  std::string Summary() const;
};

/// Optimizes a query consisting of Join/Outerjoin operators, optionally
/// under top-level Restrict operators. Returns a plan guaranteed to
/// evaluate to the same result.
Result<OptimizeOutcome> Optimize(const ExprPtr& query, const Database& db,
                                 const OptimizeOptions& options =
                                     OptimizeOptions());

}  // namespace fro

#endif  // FRO_OPTIMIZER_OPTIMIZER_H_
