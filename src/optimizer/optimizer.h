// The optimizer facade, implementing the pipeline Section 4 + Section 6
// of the paper suggest:
//
//   1. Apply the Section 4 simplification (strong filters convert
//      outerjoins to joins) — "carried out before creation of the query
//      graph".
//   2. Peel top-level restrictions, derive graph(Q).
//   3. If the graph is freely reorderable (Theorem 1), run the DP search
//      over all implementing trees and pick the cheapest.
//   4. Otherwise, optionally left-deepen the query with the generalized-
//      outerjoin rewrites (identities 15/16) so a conventional left-deep
//      executor can run it; no cross-association search is attempted.
//   5. Re-apply the peeled restrictions on top.

#ifndef FRO_OPTIMIZER_OPTIMIZER_H_
#define FRO_OPTIMIZER_OPTIMIZER_H_

#include <string>

#include "algebra/expr.h"
#include "common/status.h"
#include "optimizer/cost.h"
#include "optimizer/dp.h"
#include "optimizer/plan_cache.h"

namespace fro {

struct OptimizeOptions {
  CostKind cost_kind = CostKind::kCout;
  /// Apply the Section 4 outerjoin-to-join simplification first.
  bool apply_simplification = true;
  /// For non-freely-reorderable queries, left-deepen with GOJ rewrites.
  bool apply_goj_rewrites = true;
  /// After planning, sink restriction conjuncts as deep as outerjoin
  /// semantics allow ("do restrictions as early as possible", Section 4).
  bool push_down_restrictions = true;
  /// Largest relation count handled by the exact DP; bigger
  /// freely-reorderable graphs use greedy operator ordering instead.
  int max_dp_relations = 14;
  /// After the binary plan search, collapse cyclic join-only cores into
  /// worst-case-optimal multiway joins (leapfrog triejoin) when the
  /// cost model prefers them; the outerjoin shell stays binary.
  bool enable_multiway_joins = true;
  /// Optional plan cache, keyed on the input query's structural hash.
  /// On a hit the whole pipeline is skipped and the cached plan returned
  /// (sound for structurally identical queries; see plan_cache.h). Not
  /// owned; must be thread-safe if Optimize runs concurrently.
  PlanCacheInterface* plan_cache = nullptr;
};

struct OptimizeOutcome {
  ExprPtr plan;
  /// Estimated cost of `plan` under the requested model.
  double cost = 0;
  /// Estimated cost of the input query, for comparison.
  double original_cost = 0;
  bool freely_reorderable = false;
  int outerjoins_simplified = 0;
  int goj_rewrites = 0;
  int restrictions_pushed = 0;
  /// Cyclic cores collapsed into kMultiwayJoin nodes.
  int multiway_joins = 0;
  /// For non-reorderable queries: maximal freely-reorderable subtrees
  /// that were DP-optimized in place (the Section 6.1 extension).
  int subqueries_reordered = 0;
  uint64_t plans_considered = 0;
  /// True when the plan came from `options.plan_cache` and the search was
  /// skipped entirely.
  bool cache_hit = false;
  std::string notes;
};

/// Optimizes a query consisting of Join/Outerjoin operators, optionally
/// under top-level Restrict operators. Returns a plan guaranteed to
/// evaluate to the same result.
Result<OptimizeOutcome> Optimize(const ExprPtr& query, const Database& db,
                                 const OptimizeOptions& options =
                                     OptimizeOptions());

}  // namespace fro

#endif  // FRO_OPTIMIZER_OPTIMIZER_H_
