// Cardinality estimation in the System R tradition: per-attribute
// distinct-value and null-fraction statistics collected from the database,
// independence-assumption selectivities, and recursive cardinality
// estimates for every operator the algebra supports.

#ifndef FRO_OPTIMIZER_CARDINALITY_H_
#define FRO_OPTIMIZER_CARDINALITY_H_

#include <unordered_map>

#include "algebra/expr.h"
#include "optimizer/feedback.h"
#include "relational/database.h"

namespace fro {

/// Equi-width histogram over an attribute's numeric values, used for
/// range-predicate selectivity (col < literal and friends).
struct Histogram {
  static constexpr int kBuckets = 8;
  double lo = 0;
  double hi = 0;
  /// Fraction of (numeric, non-null) values per bucket; sums to 1 when
  /// populated.
  double fractions[kBuckets] = {0};
  bool populated = false;

  /// Estimated fraction of values strictly below `x` (linear
  /// interpolation within the containing bucket).
  double FractionBelow(double x) const;
};

/// Per-attribute statistics gathered by scanning a relation once.
struct AttrStats {
  double distinct = 1.0;       // non-null distinct values (>= 1)
  double null_fraction = 0.0;  // fraction of null values
  Histogram histogram;         // numeric attributes only
};

class CardinalityEstimator {
 public:
  /// Scans every relation of `db` to collect statistics. The database must
  /// outlive the estimator.
  explicit CardinalityEstimator(const Database& db);

  double BaseRows(RelId rel) const;
  const AttrStats& StatsOf(AttrId attr) const;

  /// Attaches runtime cardinality feedback (optimizer/feedback.h): any
  /// subtree whose structural hash has a correction is estimated as its
  /// measured row count, shadowing the static model entirely — the
  /// override has precedence over every rule below it, including exact
  /// leaf counts. Not owned; must outlive the estimator (or be detached
  /// with null). Null disables feedback.
  void set_feedback(const CardinalityFeedback* feedback) {
    feedback_ = feedback;
  }
  const CardinalityFeedback* feedback() const { return feedback_; }

  /// True when Estimate(expr) is served from feedback rather than the
  /// static model — EXPLAIN ANALYZE's "feedback-corrected" marker.
  bool IsCorrected(const ExprPtr& expr) const {
    return feedback_ != nullptr && expr != nullptr &&
           feedback_->Lookup(expr->hash()) != nullptr;
  }

  /// Estimated fraction of candidate tuples satisfying `pred` (in [0, 1]).
  double Selectivity(const PredicatePtr& pred) const;

  /// Estimated output cardinality of `expr`.
  double Estimate(const ExprPtr& expr) const;

  /// Cardinality of a join-like operator given operand estimates; used by
  /// the DP optimizer to avoid re-walking subtrees.
  double JoinLikeCard(OpKind kind, bool preserves_left,
                      const PredicatePtr& pred, double left_rows,
                      double right_rows) const;

 private:
  /// Estimated fraction of kept-side tuples with at least one partner
  /// across `pred`, used for semijoin/antijoin cardinalities. Column
  /// equalities use the containment-of-value-sets assumption — the
  /// smaller value set is contained in the larger, so
  /// min(d_kept, d_other) / d_kept of the kept rows survive — which,
  /// unlike kept * sel * other_rows, stays small when the other side
  /// repeats few values many times (the skew a semijoin reduction
  /// exploits). Other conjuncts fall back to the independence bound.
  double MatchFraction(const PredicatePtr& pred, const AttrSet& kept_attrs,
                       double other_rows) const;

  const Database& db_;
  std::unordered_map<AttrId, AttrStats> attr_stats_;
  const CardinalityFeedback* feedback_ = nullptr;
};

}  // namespace fro

#endif  // FRO_OPTIMIZER_CARDINALITY_H_
