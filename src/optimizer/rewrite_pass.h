// The composable rewrite-pass surface of the optimizer. Three
// structural rewrites (GOJ left-deepening, WCOJ core collapse, acyclic
// semijoin programs) plus simplification and restriction pushdown all
// used to hang off ad-hoc booleans in OptimizeOptions and per-rewrite
// counters in OptimizeOutcome; they are now uniform passes over a
// shared PlanState, ordered by a RewritePipeline, each reporting the
// same PassStats shape. Dropping a rewrite is `Default().Without(name)`
// instead of a new boolean; adding one is a new factory, not a new
// field in every struct between the server and the tests.

#ifndef FRO_OPTIMIZER_REWRITE_PASS_H_
#define FRO_OPTIMIZER_REWRITE_PASS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/expr.h"
#include "common/status.h"
#include "optimizer/cost.h"

namespace fro {

/// Everything a pass may consult but not mutate.
struct RewriteContext {
  const Database& db;
  const CostModel& cost_model;
  /// Largest relation count handled by the exact DP; bigger
  /// freely-reorderable graphs use greedy operator ordering instead.
  int max_dp_relations = 14;
};

/// Uniform per-pass report. One entry per pipeline pass, in run order.
struct PassStats {
  /// Pass name (RewritePass::name()).
  std::string pass;
  /// False when the pass declined to run; `skipped` says why.
  bool ran = false;
  std::string skipped;
  /// Rewrites the pass applied: outerjoins simplified, islands
  /// reordered, GOJ identities used, cores collapsed, semijoin programs
  /// planned, conjuncts pushed. Zero when the pass ran but found
  /// nothing to do.
  int applications = 0;
  /// Search effort, for passes that enumerate (the reorder DP).
  uint64_t plans_considered = 0;
  /// One-line human-readable detail ("DP over all implementing trees").
  std::string detail;
};

/// The plan plus the facts passes establish about it. Later passes key
/// off facts recorded by earlier ones (GOJ only left-deepens queries
/// the reorder pass proved not freely reorderable).
struct PlanState {
  ExprPtr expr;
  /// Set by the reorder pass; false until then, and false when the
  /// query graph is undefined for the expression.
  bool reorderability_known = false;
  bool freely_reorderable = false;
  /// Classification prose: "freely reorderable: DP over all
  /// implementing trees", "not freely reorderable (<violation>)",
  /// "graph undefined (<why>); keeping the given association".
  std::string classification;
};

/// One rewrite pass. Stateless and immutable: a pass may be shared by
/// any number of pipelines and invoked concurrently.
class RewritePass {
 public:
  virtual ~RewritePass() = default;
  virtual std::string_view name() const = 0;
  /// Rewrites `state` in place; fills `stats` (pre-initialized with the
  /// pass name, ran=false). A pass that does not apply records a
  /// skipped reason and leaves the state untouched.
  virtual Status Apply(PlanState* state, const RewriteContext& context,
                       PassStats* stats) const = 0;
};

using RewritePassPtr = std::shared_ptr<const RewritePass>;

/// An ordered sequence of rewrite passes.
class RewritePipeline {
 public:
  /// The standard pipeline, in order: "simplify" (Section 4 outerjoin →
  /// join conversion), "reorder" (Theorem 1 classification + DP/greedy
  /// search, or per-island reordering), "goj" (identity 15/16
  /// left-deepening of non-reorderable queries), "wcoj" (cyclic cores →
  /// leapfrog multiway joins), "acyclic" (GYO + Yannakakis semijoin
  /// programs — after wcoj so collapsed cores count as operands),
  /// "pushdown" (sink restriction conjuncts).
  static RewritePipeline Default();
  /// No passes: Optimize only costs the query.
  static RewritePipeline Empty();

  RewritePipeline& Append(RewritePassPtr pass);
  /// Copy of this pipeline with the named pass removed (no-op when the
  /// name is absent).
  RewritePipeline Without(std::string_view name) const;
  bool Has(std::string_view name) const;
  const std::vector<RewritePassPtr>& passes() const { return passes_; }

  /// Runs the passes in order, appending one PassStats each.
  Status Run(PlanState* state, const RewriteContext& context,
             std::vector<PassStats>* stats) const;

 private:
  std::vector<RewritePassPtr> passes_;
};

RewritePassPtr MakeSimplifyPass();
RewritePassPtr MakeReorderPass();
RewritePassPtr MakeGojPass();
RewritePassPtr MakeWcojPass();
RewritePassPtr MakeAcyclicPass();
RewritePassPtr MakePushdownPass();

/// One line per pass ("pass <name>: ..."), the single rendering used by
/// EXPLAIN ANALYZE, the shell's \analyze, and the server's STATS text.
std::string FormatPassStats(const std::vector<PassStats>& passes);

}  // namespace fro

#endif  // FRO_OPTIMIZER_REWRITE_PASS_H_
