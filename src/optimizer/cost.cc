#include "optimizer/cost.h"

#include "common/check.h"

namespace fro {

double CostModel::NodeCost(OpKind kind, bool preserves_left,
                           double left_rows, bool left_is_leaf,
                           double right_rows, bool right_is_leaf,
                           double out_rows) const {
  switch (kind_) {
    case CostKind::kCout:
      return out_rows;
    case CostKind::kBaseRetrievals: {
      // Pick the driving (outer) input: the preserved side for outerjoins
      // (the executor must preserve it), the cheaper side for joins.
      bool outer_is_left;
      if (kind == OpKind::kOuterJoin || kind == OpKind::kGoj ||
          kind == OpKind::kAntijoin || kind == OpKind::kSemijoin) {
        outer_is_left = preserves_left;
      } else {
        outer_is_left = left_rows <= right_rows;
      }
      const double outer_rows = outer_is_left ? left_rows : right_rows;
      const bool outer_leaf = outer_is_left ? left_is_leaf : right_is_leaf;
      const bool inner_leaf = outer_is_left ? right_is_leaf : left_is_leaf;
      // Outer side: scanned in full. Inner side: matched rows fetched via
      // an index probe (approximated by the output cardinality). Only
      // ground-relation retrievals count.
      double cost = 0;
      if (outer_leaf) cost += outer_rows;
      if (inner_leaf) cost += out_rows;
      return cost;
    }
  }
  FRO_CHECK(false);
  return 0;
}

double CostModel::PlanCost(const ExprPtr& expr) const {
  switch (expr->kind()) {
    case OpKind::kLeaf:
      return 0;
    case OpKind::kRestrict:
    case OpKind::kProject:
      // Free in both models (pipelined over their input).
      return PlanCost(expr->left());
    case OpKind::kUnion:
      return PlanCost(expr->left()) + PlanCost(expr->right());
    case OpKind::kMultiwayJoin: {
      // Leapfrog never materializes an intermediate wider than the
      // output: charge the output rows (Cout) plus, for base retrievals,
      // one full scan of each leaf operand (the trie builds).
      double cost = 0;
      for (const ExprPtr& child : expr->mj_children()) {
        cost += PlanCost(child);
        if (kind_ == CostKind::kBaseRetrievals && child->is_leaf()) {
          cost += estimator_.Estimate(child);
        }
      }
      return cost + estimator_.Estimate(expr);
    }
    default: {
      const double left_rows = estimator_.Estimate(expr->left());
      const double right_rows = estimator_.Estimate(expr->right());
      const double out_rows = estimator_.Estimate(expr);
      return PlanCost(expr->left()) + PlanCost(expr->right()) +
             NodeCost(expr->kind(), expr->preserves_left(), left_rows,
                      expr->left()->is_leaf(), right_rows,
                      expr->right()->is_leaf(), out_rows);
    }
  }
}

}  // namespace fro
