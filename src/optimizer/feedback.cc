#include "optimizer/feedback.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/hash.h"
#include "exec/stats_view.h"
#include "optimizer/cardinality.h"
#include "relational/database.h"

namespace fro {

double QError(double est, double actual) {
  const double e = std::max(est, 1.0);
  const double a = std::max(actual, 1.0);
  return std::max(e, a) / std::min(e, a);
}

std::string FeedbackStoreStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "size=%zu capacity=%zu observations=%llu evictions=%llu "
                "merged=%llu max_q_error=%.2f",
                size, capacity,
                static_cast<unsigned long long>(observations),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(merged), max_q_error);
  return buf;
}

FeedbackStore::FeedbackStore(FeedbackOptions options)
    : options_(options) {}

double FeedbackStore::DecayedWeight(const Entry& entry) const {
  const double age = static_cast<double>(tick_ - entry.last_tick);
  return entry.weight * std::pow(options_.decay, age);
}

void FeedbackStore::ObserveLocked(uint64_t plan_hash, uint64_t op_hash,
                                  double est_rows, double actual_rows) {
  ++tick_;
  ++observations_;

  const double q = QError(est_rows, actual_rows);
  max_q_error_ = std::max(max_q_error_, q);
  int bucket = 0;
  for (double edge = 2.0;
       bucket < FeedbackStoreStats::kQErrorBuckets - 1 && q >= edge;
       edge *= 2.0) {
    ++bucket;
  }
  ++q_error_hist_[bucket];

  auto it = entries_.find(op_hash);
  if (it == entries_.end()) {
    Entry entry;
    entry.rows = actual_rows;
    entry.weight = 1.0;
    entry.last_tick = tick_;
    entry.plan_hash = plan_hash;
    entries_.emplace(op_hash, entry);
    EvictLocked();
    return;
  }
  Entry& entry = it->second;
  entry.weight = DecayedWeight(entry) + 1.0;
  entry.rows = options_.ewma_alpha * actual_rows +
               (1.0 - options_.ewma_alpha) * entry.rows;
  entry.last_tick = tick_;
  entry.plan_hash = plan_hash;
}

void FeedbackStore::EvictLocked() {
  while (entries_.size() > options_.capacity) {
    auto victim = entries_.end();
    double victim_weight = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      const double w = DecayedWeight(it->second);
      if (w < options_.min_weight) {
        // Fully faded: drop outright, no contest needed.
        it = entries_.erase(it);
        ++evictions_;
        continue;
      }
      if (victim == entries_.end() || w < victim_weight) {
        victim = it;
        victim_weight = w;
      }
      ++it;
    }
    if (entries_.size() <= options_.capacity) break;
    if (victim == entries_.end()) break;  // unreachable: size > 0
    entries_.erase(victim);
    ++evictions_;
  }
}

void FeedbackStore::Observe(uint64_t plan_hash, uint64_t op_hash,
                            double est_rows, double actual_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  ObserveLocked(plan_hash, op_hash, est_rows, actual_rows);
}

CardinalityFeedback FeedbackStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  CardinalityFeedback snapshot;
  for (const auto& [op_hash, entry] : entries_) {
    snapshot.Set(op_hash, entry.rows);
  }
  return snapshot;
}

void FeedbackStore::Merge(const CardinalityFeedback& other) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [op_hash, rows] : other.entries()) {
    // A merged correction arrives without the estimate it was measured
    // against; fold it as an exact observation (q-error 1).
    ObserveLocked(/*plan_hash=*/0, op_hash, rows, rows);
    ++merged_;
  }
}

std::optional<double> FeedbackStore::CorrectedRows(uint64_t op_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(op_hash);
  if (it == entries_.end()) return std::nullopt;
  return it->second.rows;
}

std::optional<double> FeedbackStore::WeightOf(uint64_t op_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(op_hash);
  if (it == entries_.end()) return std::nullopt;
  return DecayedWeight(it->second);
}

FeedbackStoreStats FeedbackStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FeedbackStoreStats out;
  out.size = entries_.size();
  out.capacity = options_.capacity;
  out.observations = observations_;
  out.evictions = evictions_;
  out.merged = merged_;
  out.max_q_error = max_q_error_;
  for (int b = 0; b < FeedbackStoreStats::kQErrorBuckets; ++b) {
    out.q_error_hist[b] = q_error_hist_[b];
  }
  return out;
}

std::string FeedbackStore::Describe(size_t top_n) const {
  const FeedbackStoreStats s = stats();
  std::string out = "feedback " + s.ToString() + "\n";
  out += "q-error histogram:";
  bool any = false;
  for (int b = 0; b < FeedbackStoreStats::kQErrorBuckets; ++b) {
    if (s.q_error_hist[b] == 0) continue;
    any = true;
    char buf[64];
    if (b == FeedbackStoreStats::kQErrorBuckets - 1) {
      std::snprintf(buf, sizeof(buf), "  [>=%d]=%llu", 1 << b,
                    static_cast<unsigned long long>(s.q_error_hist[b]));
    } else {
      std::snprintf(buf, sizeof(buf), "  [%d,%d)=%llu", b == 0 ? 1 : 1 << b,
                    1 << (b + 1),
                    static_cast<unsigned long long>(s.q_error_hist[b]));
    }
    out += buf;
  }
  if (!any) out += " (empty)";
  out += "\n";

  struct Row {
    uint64_t op_hash;
    double rows;
    double weight;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows.reserve(entries_.size());
    for (const auto& [op_hash, entry] : entries_) {
      rows.push_back({op_hash, entry.rows, DecayedWeight(entry)});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.weight > b.weight; });
  if (rows.size() > top_n) rows.resize(top_n);
  for (const Row& r : rows) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "  op=%016llx rows=%.6g weight=%.3f\n",
                  static_cast<unsigned long long>(r.op_hash), r.rows,
                  r.weight);
    out += buf;
  }
  return out;
}

void FeedbackStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

const double* OpEstimates::Find(uint64_t op_hash) const {
  for (const auto& [hash, rows] : entries) {
    if (hash == op_hash) return &rows;
  }
  return nullptr;
}

namespace {

void CollectOpEstimatesNode(const ExprPtr& node,
                            const CardinalityEstimator& estimator,
                            OpEstimates* out) {
  if (node == nullptr) return;
  const uint64_t h = node->hash();
  if (out->Find(h) == nullptr) {
    out->entries.emplace_back(h, estimator.Estimate(node));
  }
  CollectOpEstimatesNode(node->left(), estimator, out);
  CollectOpEstimatesNode(node->right(), estimator, out);
  for (const ExprPtr& child : node->mj_children()) {
    CollectOpEstimatesNode(child, estimator, out);
  }
}

}  // namespace

OpEstimates CollectOpEstimates(const ExprPtr& plan,
                               const CardinalityEstimator& estimator) {
  OpEstimates out;
  CollectOpEstimatesNode(plan, estimator, &out);
  return out;
}

double ObservePlanExecution(FeedbackStore* store, uint64_t plan_hash,
                            const PlanOpStats& snapshot,
                            const OpEstimates& estimates) {
  // Dedup by source-expr hash, keeping the larger count: a wrapper node
  // reporting the same expression (exchange over its merged spine) must
  // not double the entry's observation weight, and the larger count is
  // the full-plan one if any partial ever leaks into a snapshot.
  std::unordered_map<uint64_t, double> actuals;
  ForEachOp(snapshot, [&](const PlanOpStats& op, int) {
    if (op.passthrough || op.source_expr == nullptr) return;
    const uint64_t h = op.source_expr->hash();
    const double actual = static_cast<double>(op.stats.emitted);
    auto [it, inserted] = actuals.emplace(h, actual);
    if (!inserted) it->second = std::max(it->second, actual);
  });

  double worst = 1.0;
  for (const auto& [op_hash, actual] : actuals) {
    const double* est = estimates.Find(op_hash);
    // Un-estimated operators (hand-assembled pipelines) observe as exact.
    const double est_rows = est != nullptr ? *est : actual;
    worst = std::max(worst, QError(est_rows, actual));
    if (store != nullptr) {
      store->Observe(plan_hash, op_hash, est_rows, actual);
    }
  }
  return worst;
}

uint64_t DatabaseGenerationStamp(const Database& db) {
  uint64_t stamp = HashMix(0, db.num_relations());
  for (RelId rel = 0; rel < db.num_relations(); ++rel) {
    stamp = HashMix(stamp, db.generation(rel));
  }
  return stamp;
}

}  // namespace fro
