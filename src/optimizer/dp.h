// Dynamic-programming plan search over connected subgraphs for
// freely-reorderable queries (paper Section 6.1).
//
// "Optimizers already implement a query graph by generating expression
//  trees with different associations of the graph edges; now it must fill
//  in Join or else Outerjoin (preserving the operator direction)."
//
// Theorem 1 guarantees every implementing tree computes the same result,
// so the search is pure cost minimization: best plan per connected node
// subset, combined over realizable cuts. The default strategy enumerates
// csg-cmp pairs directly (DPccp); the seed all-masks submask scan is kept
// behind `DpAlgorithm::kAllMasks` as a cross-check oracle.

#ifndef FRO_OPTIMIZER_DP_H_
#define FRO_OPTIMIZER_DP_H_

#include <cstdint>

#include "common/status.h"
#include "graph/query_graph.h"
#include "optimizer/cost.h"

namespace fro {

enum class DpAlgorithm : uint8_t {
  /// Connected-subgraph / connected-complement pair enumeration
  /// (Moerkotte & Neumann); work is linear in the number of csg-cmp
  /// pairs.
  kDpccp,
  /// The original ascending-mask scan with a full submask loop per
  /// connected mask (Theta(3^n) over cliques). Retained as an oracle for
  /// equivalence tests and benchmarks.
  kAllMasks,
};

struct DpOptions {
  DpAlgorithm algorithm = DpAlgorithm::kDpccp;
};

struct PlanResult {
  ExprPtr plan;
  double cost = 0;
  /// Candidate bipartitions examined during the search: every emitted
  /// csg-cmp pair under kDpccp, every submask attempt on a connected
  /// mask under kAllMasks.
  uint64_t plans_considered = 0;
  /// Node subsets holding a materialized best plan (incl. singletons).
  uint64_t states_visited = 0;
};

/// Finds the cheapest (or, with `maximize`, the costliest) implementing
/// tree of `graph` under `cost_model`. The graph must be connected; the
/// caller is responsible for having verified free reorderability (the
/// plan is otherwise not guaranteed equivalent to the original query).
/// Both algorithms choose identical plans and costs; they differ only in
/// how the candidate space is walked.
Result<PlanResult> OptimizeReorderable(const QueryGraph& graph,
                                       const Database& db,
                                       const CostModel& cost_model,
                                       bool maximize = false,
                                       const DpOptions& options = {});

}  // namespace fro

#endif  // FRO_OPTIMIZER_DP_H_
