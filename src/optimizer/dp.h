// Dynamic-programming plan search over connected subgraphs for
// freely-reorderable queries (paper Section 6.1).
//
// "Optimizers already implement a query graph by generating expression
//  trees with different associations of the graph edges; now it must fill
//  in Join or else Outerjoin (preserving the operator direction)."
//
// Theorem 1 guarantees every implementing tree computes the same result,
// so the search is pure cost minimization: best plan per connected node
// subset, combined over realizable cuts (the DPsub strategy).

#ifndef FRO_OPTIMIZER_DP_H_
#define FRO_OPTIMIZER_DP_H_

#include "common/status.h"
#include "graph/query_graph.h"
#include "optimizer/cost.h"

namespace fro {

struct PlanResult {
  ExprPtr plan;
  double cost = 0;
  /// Candidate (sub)plans examined during the search.
  uint64_t plans_considered = 0;
};

/// Finds the cheapest (or, with `maximize`, the costliest) implementing
/// tree of `graph` under `cost_model`. The graph must be connected; the
/// caller is responsible for having verified free reorderability (the
/// plan is otherwise not guaranteed equivalent to the original query).
Result<PlanResult> OptimizeReorderable(const QueryGraph& graph,
                                       const Database& db,
                                       const CostModel& cost_model,
                                       bool maximize = false);

}  // namespace fro

#endif  // FRO_OPTIMIZER_DP_H_
