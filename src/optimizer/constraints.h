// Referential-integrity constraints and the Section 4 "legal but
// dangerous" rewrite:
//
//   "suppose we know that some outerjoin operation yields the same result
//    as a regular join ... a referential integrity constraint could
//    supply this information. It is legal to replace the outerjoin
//    operator by a join operation ... However, the resulting query may
//    not be freely reorderable."
//
// A foreign key `referencing -> referenced` asserts that every
// referencing value is non-null and appears among the referenced values,
// so an equi-outerjoin preserving the referencing side pads nothing and
// equals the join. The rewrite reports whether reorderability survived —
// the caveat the paper closes Section 4 with.

#ifndef FRO_OPTIMIZER_CONSTRAINTS_H_
#define FRO_OPTIMIZER_CONSTRAINTS_H_

#include <vector>

#include "algebra/expr.h"
#include "common/status.h"
#include "graph/nice.h"
#include "relational/database.h"

namespace fro {

struct ForeignKey {
  /// Column whose every value must be non-null and present in
  /// `referenced`.
  AttrId referencing;
  AttrId referenced;
};

/// A set of declared foreign keys.
class ConstraintSet {
 public:
  void AddForeignKey(AttrId referencing, AttrId referenced) {
    keys_.push_back({referencing, referenced});
  }
  const std::vector<ForeignKey>& keys() const { return keys_; }

  /// True if `referencing -> referenced` is declared.
  bool Covers(AttrId referencing, AttrId referenced) const;

  /// Checks every declared key against the data; fails with a description
  /// of the first violation.
  Status Validate(const Database& db) const;

 private:
  std::vector<ForeignKey> keys_;
};

struct ConstraintSimplifyResult {
  ExprPtr expr;
  /// Outerjoins replaced by regular joins.
  int converted = 0;
  /// Whether the rewritten query's graph is still freely reorderable —
  /// false demonstrates the paper's caveat.
  bool still_freely_reorderable = false;
};

/// Replaces outerjoins guaranteed lossless by a foreign key with regular
/// joins. An outerjoin converts when its predicate is a single equality
/// `referencing = referenced` covered by `constraints`, with the
/// referencing column on the preserved side, and no outerjoin *inside*
/// the preserved operand can pad the referencing column.
Result<ConstraintSimplifyResult> SimplifyWithConstraints(
    const ExprPtr& expr, const ConstraintSet& constraints,
    const Database& db);

}  // namespace fro

#endif  // FRO_OPTIMIZER_CONSTRAINTS_H_
