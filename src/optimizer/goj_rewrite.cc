#include "optimizer/goj_rewrite.h"

#include <unordered_set>
#include <vector>

#include "algebra/transform.h"
#include "relational/tuple.h"

namespace fro {

Result<ExprPtr> ApplyIdentity15(const ExprPtr& expr) {
  // Root must be X -> (Y - Z), left preserved.
  if (expr->kind() != OpKind::kOuterJoin || !expr->preserves_left()) {
    return FailedPrecondition("root is not a left-preserving outerjoin");
  }
  const ExprPtr& x = expr->left();
  const ExprPtr& inner = expr->right();
  if (inner->kind() != OpKind::kJoin) {
    return FailedPrecondition("null-supplied operand is not a join");
  }
  const ExprPtr& y = inner->left();
  const ExprPtr& z = inner->right();
  // P_oj must reference only X and Y (the form P_xy).
  if (!x->attrs().Union(y->attrs()).ContainsAll(expr->pred()->References())) {
    return FailedPrecondition(
        "outerjoin predicate references the join's right operand");
  }
  // (X OJ Y) GOJ[sch(X)] Z on the join predicate.
  ExprPtr oj = Expr::OuterJoin(x, y, expr->pred(), /*preserves_left=*/true);
  return Expr::Goj(oj, z, inner->pred(), x->attrs());
}

Result<ExprPtr> ApplyIdentity16(const ExprPtr& expr) {
  // Root must be X - (Y GOJ[S] Z).
  if (expr->kind() != OpKind::kJoin) {
    return FailedPrecondition("root is not a join");
  }
  const ExprPtr& x = expr->left();
  const ExprPtr& inner = expr->right();
  if (inner->kind() != OpKind::kGoj) {
    return FailedPrecondition("right operand is not a GOJ");
  }
  const ExprPtr& y = inner->left();
  const ExprPtr& z = inner->right();
  const AttrSet& subset = inner->goj_subset();
  // S must lie within sch(Y) and cover the X-Y join attributes on Y's
  // side; the join predicate must not touch Z.
  if (!y->attrs().ContainsAll(subset)) {
    return FailedPrecondition("GOJ subset exceeds sch(Y)");
  }
  AttrSet join_refs = expr->pred()->References();
  if (!x->attrs().Union(y->attrs()).ContainsAll(join_refs)) {
    return FailedPrecondition("join predicate references Z");
  }
  if (!subset.ContainsAll(join_refs.Intersect(y->attrs()))) {
    return FailedPrecondition(
        "GOJ subset does not contain all X-Y join attributes");
  }
  ExprPtr join = Expr::Join(x, y, expr->pred());
  return Expr::Goj(join, z, inner->pred(), subset.Union(x->attrs()));
}

ExprPtr LeftDeepenWithGoj(const ExprPtr& expr, int* rewrites) {
  if (expr->is_leaf() || !expr->is_binary()) return expr;
  // First normalize the right spine below this node so identity 16 can
  // see GOJs produced deeper in the tree.
  ExprPtr node = expr;
  ExprPtr new_right = LeftDeepenWithGoj(node->right(), rewrites);
  if (new_right != node->right()) {
    switch (node->kind()) {
      case OpKind::kJoin:
        node = Expr::Join(node->left(), new_right, node->pred());
        break;
      case OpKind::kOuterJoin:
        node = Expr::OuterJoin(node->left(), new_right, node->pred(),
                               node->preserves_left());
        break;
      default:
        return expr;  // other operators: leave untouched
    }
  }
  // Then pull the rightmost operand up while possible: first by the
  // ordinary result-preserving reassociations (identities 1, 11-13 — the
  // right-to-left basic transform), then by the GOJ identities 15/16.
  for (;;) {
    BtSite site{BtSite::Kind::kAssocRL, {}};
    if (IsApplicable(node, site) && ClassifyBt(node, site).IsPreserving()) {
      Result<ExprPtr> reassoc = ApplyBt(node, site);
      FRO_CHECK(reassoc.ok());
      node = *reassoc;
      if (rewrites != nullptr) ++*rewrites;
      continue;
    }
    Result<ExprPtr> r15 = ApplyIdentity15(node);
    if (r15.ok()) {
      node = *r15;
      if (rewrites != nullptr) ++*rewrites;
      continue;
    }
    Result<ExprPtr> r16 = ApplyIdentity16(node);
    if (r16.ok()) {
      node = *r16;
      if (rewrites != nullptr) ++*rewrites;
      continue;
    }
    break;
  }
  // Finally recurse into the (possibly new) left child.
  if (!node->is_leaf() && node->is_binary()) {
    ExprPtr new_left = LeftDeepenWithGoj(node->left(), rewrites);
    if (new_left != node->left()) {
      switch (node->kind()) {
        case OpKind::kJoin:
          node = Expr::Join(new_left, node->right(), node->pred());
          break;
        case OpKind::kOuterJoin:
          node = Expr::OuterJoin(new_left, node->right(), node->pred(),
                                 node->preserves_left());
          break;
        case OpKind::kGoj:
          node = Expr::Goj(new_left, node->right(), node->pred(),
                           node->goj_subset());
          break;
        default:
          break;
      }
    }
  }
  return node;
}

bool BaseRelationsDuplicateFree(const ExprPtr& query, const Database& db) {
  uint64_t mask = query->rel_mask();
  for (RelId rel = 0; mask != 0; ++rel, mask >>= 1) {
    if ((mask & 1) == 0) continue;
    const Relation& relation = db.relation(rel);
    std::unordered_set<size_t> hashes;
    std::vector<Tuple> seen;
    for (const Tuple& row : relation.rows()) {
      if (hashes.insert(row.Hash()).second) {
        seen.push_back(row);
        continue;
      }
      // Hash collision or true duplicate: confirm structurally.
      for (const Tuple& prior : seen) {
        if (prior == row) return false;
      }
      seen.push_back(row);
    }
  }
  return true;
}

}  // namespace fro
