// Greedy Operator Ordering for large freely-reorderable queries.
//
// The DP search in dp.h is exact but exponential in the number of
// relations; beyond ~16 relations a heuristic is needed. This greedy
// planner (in the spirit of Fegaras' GOO) repeatedly combines the pair
// of connected components whose combined operator has the smallest
// estimated output cardinality, restricted to realizable cuts (all join
// edges, or exactly one outerjoin edge, direction preserved).
//
// For nice graphs a realizable pair always exists at every step: a mixed
// cut between two connected components would require a second path into
// a null-supplied subtree, which Lemma 1 forbids.

#ifndef FRO_OPTIMIZER_GREEDY_H_
#define FRO_OPTIMIZER_GREEDY_H_

#include "optimizer/dp.h"

namespace fro {

/// Builds an implementing tree bottom-up by greedy pairwise merging.
/// Requirements match OptimizeReorderable: a connected graph whose free
/// reorderability the caller has verified.
Result<PlanResult> OptimizeGreedy(const QueryGraph& graph,
                                  const Database& db,
                                  const CostModel& cost_model);

}  // namespace fro

#endif  // FRO_OPTIMIZER_GREEDY_H_
