// Plan cost models.
//
// Two models are provided:
//  * kCout — the classic sum of intermediate result cardinalities. Robust
//    and algorithm-agnostic; the default.
//  * kBaseRetrievals — the accounting of the paper's Example 1: with key
//    indexes, a join-like operator "retrieves" the rows of its outer
//    (driving) input plus the matched rows probed from its inner input,
//    and only ground-relation retrievals are charged. Under this model
//    Example 1's naive order costs 2N+1 and the reordered plan costs 3.

#ifndef FRO_OPTIMIZER_COST_H_
#define FRO_OPTIMIZER_COST_H_

#include "optimizer/cardinality.h"

namespace fro {

enum class CostKind : uint8_t {
  kCout,
  kBaseRetrievals,
};

class CostModel {
 public:
  CostModel(const Database& db, CostKind kind)
      : estimator_(db), kind_(kind) {}

  /// As above, with runtime cardinality feedback attached to the
  /// estimator (optimizer/feedback.h): PlanCost and every pass sharing
  /// this model's estimator — the DP search, the wcoj/acyclic gates, the
  /// safe-subjoin analysis — see corrected numbers. `feedback` is not
  /// owned and must outlive the model; null behaves like the static
  /// constructor.
  CostModel(const Database& db, CostKind kind,
            const CardinalityFeedback* feedback)
      : estimator_(db), kind_(kind) {
    estimator_.set_feedback(feedback);
  }

  CostKind kind() const { return kind_; }
  const CardinalityEstimator& estimator() const { return estimator_; }

  /// Total estimated cost of a plan tree.
  double PlanCost(const ExprPtr& expr) const;

  /// Incremental cost of one join-like operator, given operand
  /// cardinalities and whether each operand is a ground relation; used by
  /// the DP search. `out_rows` is the operator's estimated output.
  double NodeCost(OpKind kind, bool preserves_left, double left_rows,
                  bool left_is_leaf, double right_rows, bool right_is_leaf,
                  double out_rows) const;

 private:
  CardinalityEstimator estimator_;
  CostKind kind_;
};

}  // namespace fro

#endif  // FRO_OPTIMIZER_COST_H_
