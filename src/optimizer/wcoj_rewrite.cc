#include "optimizer/wcoj_rewrite.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/check.h"
#include "graph/attr_classes.h"
#include "optimizer/join_region.h"
#include "wcoj/cyclic_core.h"

namespace fro {

namespace {

/// Collapses the cyclic cores of one join region; returns the new
/// region expression (cost-gated) and bumps *cores_collapsed.
ExprPtr CollapseRegion(const ExprPtr& region_root,
                       const std::vector<ExprPtr>& operands,
                       const std::vector<PredicatePtr>& conjuncts,
                       const CostModel& cost_model, int* cores_collapsed) {
  size_t next = 0;
  ExprPtr baseline = RebuildSameShape(region_root, operands, &next);
  if (operands.size() < 3 || operands.size() > 64) return baseline;

  // Operand graph: one node per frontier operand, one join edge per
  // inter-operand equality conjunct (QueryGraph collapses parallels).
  QueryGraph graph;
  for (const ExprPtr& operand : operands) {
    const uint64_t mask = operand->rel_mask();
    const RelId rep = static_cast<RelId>(__builtin_ctzll(mask));
    graph.AddNode(rep, operand->attrs());
  }
  for (const PredicatePtr& c : conjuncts) {
    if (!IsColEqCol(c)) continue;
    int u = -1, v = -1;
    for (size_t i = 0; i < operands.size(); ++i) {
      if (operands[i]->attrs().Contains(c->lhs().attr())) {
        u = static_cast<int>(i);
      }
      if (operands[i]->attrs().Contains(c->rhs().attr())) {
        v = static_cast<int>(i);
      }
    }
    if (u < 0 || v < 0 || u == v) continue;
    (void)graph.AddJoinEdge(u, v, c);
  }

  const std::vector<CyclicCore> cores = FindCyclicCores(graph);
  if (cores.empty()) return baseline;

  // Cores from distinct 2-edge-connected components may share one
  // articulation operand; collapse greedily, skipping overlaps.
  std::vector<bool> conjunct_used(conjuncts.size(), false);
  std::vector<bool> operand_used(operands.size(), false);
  std::vector<ExprPtr> items;
  int collapsed = 0;
  for (const CyclicCore& core : cores) {
    bool overlaps = false;
    for (size_t i = 0; i < operands.size(); ++i) {
      if (((core.node_mask >> i) & 1) != 0 && operand_used[i]) {
        overlaps = true;
      }
    }
    if (overlaps) continue;
    std::vector<ExprPtr> members;
    AttrSet core_attrs;
    for (size_t i = 0; i < operands.size(); ++i) {
      if (((core.node_mask >> i) & 1) == 0) continue;
      operand_used[i] = true;
      members.push_back(operands[i]);
      core_attrs = core_attrs.Union(operands[i]->attrs());
    }
    std::vector<PredicatePtr> mj_conjuncts;
    for (size_t k = 0; k < conjuncts.size(); ++k) {
      if (conjunct_used[k]) continue;
      if (core_attrs.ContainsAll(conjuncts[k]->References())) {
        mj_conjuncts.push_back(conjuncts[k]);
        conjunct_used[k] = true;
      }
    }
    PredicatePtr mj_pred = FoldAnd(mj_conjuncts);
    std::vector<AttrId> var_order =
        ChooseVarOrder(members, mj_pred, &cost_model.estimator());
    items.push_back(Expr::MultiwayJoin(std::move(members),
                                       std::move(mj_pred),
                                       std::move(var_order)));
    ++collapsed;
  }
  if (collapsed == 0) return baseline;
  for (size_t i = 0; i < operands.size(); ++i) {
    if (!operand_used[i]) items.push_back(operands[i]);
  }
  std::vector<PredicatePtr> remaining;
  for (size_t k = 0; k < conjuncts.size(); ++k) {
    if (!conjunct_used[k]) remaining.push_back(conjuncts[k]);
  }
  ExprPtr rewritten = LeftDeepJoin(std::move(items), std::move(remaining));

  if (cost_model.PlanCost(rewritten) < cost_model.PlanCost(baseline)) {
    *cores_collapsed += collapsed;
    return rewritten;
  }
  return baseline;
}

}  // namespace

std::vector<AttrId> ChooseVarOrder(const std::vector<ExprPtr>& operands,
                                   const PredicatePtr& pred,
                                   const CardinalityEstimator* estimator) {
  if (pred == nullptr) return {};

  const std::map<AttrId, std::vector<AttrId>> classes = AttrEqClasses(pred);

  struct Var {
    AttrId rep;
    int coverage = 0;   // operands containing a member
    double weight = 1;  // min distinct count over covering operands
  };
  std::vector<Var> vars;
  for (const auto& [root, members] : classes) {
    Var var;
    var.rep = root;
    double weight = -1;
    for (const ExprPtr& operand : operands) {
      double operand_weight = -1;
      for (AttrId member : members) {
        if (!operand->attrs().Contains(member)) continue;
        const double distinct =
            estimator != nullptr ? estimator->StatsOf(member).distinct : 1.0;
        if (operand_weight < 0 || distinct < operand_weight) {
          operand_weight = distinct;
        }
      }
      if (operand_weight < 0) continue;
      ++var.coverage;
      if (weight < 0 || operand_weight < weight) weight = operand_weight;
    }
    if (var.coverage < 2) continue;  // intra-operand class: residual only
    var.weight = std::max(weight, 1.0);
    vars.push_back(var);
  }
  if (vars.empty()) return {};

  std::vector<size_t> order(vars.size());
  std::iota(order.begin(), order.end(), size_t{0});
  if (estimator != nullptr && vars.size() <= 8) {
    // Exhaustive: minimize the sum of prefix products of variable
    // weights — the number of distinct bindings the leapfrog search
    // touches at each depth under an independence assumption.
    std::vector<size_t> perm = order;
    std::vector<size_t> best = order;
    double best_score = -1;
    do {
      double score = 0, product = 1;
      for (size_t i : perm) {
        product *= vars[i].weight;
        score += product;
      }
      if (best_score < 0 || score < best_score) {
        best_score = score;
        best = perm;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    order = best;
  } else {
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                       if (vars[a].coverage != vars[b].coverage) {
                         return vars[a].coverage > vars[b].coverage;
                       }
                       if (vars[a].weight != vars[b].weight) {
                         return vars[a].weight < vars[b].weight;
                       }
                       return vars[a].rep < vars[b].rep;
                     });
  }
  std::vector<AttrId> out;
  out.reserve(order.size());
  for (size_t i : order) out.push_back(vars[i].rep);
  return out;
}

WcojRewriteResult ApplyWcoj(const ExprPtr& plan, const Database& db,
                            const CostModel& cost_model) {
  (void)db;
  WcojRewriteResult result;
  result.expr = MapJoinRegions(
      plan, [&](const ExprPtr& region_root,
                const std::vector<ExprPtr>& operands,
                const std::vector<PredicatePtr>& conjuncts) {
        return CollapseRegion(region_root, operands, conjuncts, cost_model,
                              &result.cores_collapsed);
      });
  return result;
}

ExprPtr ForceMultiwayJoins(const ExprPtr& query) {
  return MapJoinRegions(query, [](const ExprPtr& region_root,
                                  const std::vector<ExprPtr>& operands,
                                  const std::vector<PredicatePtr>& conjuncts) {
    (void)region_root;
    FRO_CHECK_GE(operands.size(), 2u);
    PredicatePtr pred = FoldAnd(conjuncts);
    std::vector<AttrId> var_order =
        ChooseVarOrder(operands, pred, /*estimator=*/nullptr);
    return Expr::MultiwayJoin(std::vector<ExprPtr>(operands),
                              std::move(pred), std::move(var_order));
  });
}

}  // namespace fro
