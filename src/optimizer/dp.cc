#include "optimizer/dp.h"

#include <bit>
#include <unordered_map>

#include "common/check.h"
#include "enumerate/cuts.h"

namespace fro {

namespace {

struct Entry {
  ExprPtr plan;
  double cost = 0;
  double rows = 0;
};

}  // namespace

Result<PlanResult> OptimizeReorderable(const QueryGraph& graph,
                                       const Database& db,
                                       const CostModel& cost_model,
                                       bool maximize) {
  if (graph.num_nodes() == 0) {
    return InvalidArgument("empty query graph");
  }
  const uint64_t all = graph.AllMask();
  if (!graph.IsConnected(all)) {
    return FailedPrecondition("query graph is not connected");
  }
  const CardinalityEstimator& estimator = cost_model.estimator();

  std::unordered_map<uint64_t, Entry> best;
  uint64_t considered = 0;

  // Singletons.
  for (int node = 0; node < graph.num_nodes(); ++node) {
    Entry entry;
    entry.plan = Expr::Leaf(graph.node_rel(node), db);
    entry.cost = 0;
    entry.rows = estimator.BaseRows(graph.node_rel(node));
    best.emplace(1ULL << node, std::move(entry));
  }

  // Enumerate connected masks in increasing popcount order by iterating
  // all masks ascending (any submask is numerically smaller, so its entry
  // exists by the time it is needed).
  for (uint64_t mask = 1; mask <= all; ++mask) {
    if (std::popcount(mask) < 2) continue;
    if ((mask & all) != mask) continue;
    if (!graph.IsConnected(mask)) continue;
    Entry chosen;
    bool have = false;
    ForEachCut(graph, mask, [&](const Cut& cut) {
      auto lit = best.find(cut.left);
      auto rit = best.find(cut.right);
      if (lit == best.end() || rit == best.end()) return true;
      const Entry& lhs = lit->second;
      const Entry& rhs = rit->second;
      OpKind kind = cut.outerjoin ? OpKind::kOuterJoin : OpKind::kJoin;
      double rows = estimator.JoinLikeCard(kind, cut.preserves_left,
                                           cut.pred, lhs.rows, rhs.rows);
      double cost =
          lhs.cost + rhs.cost +
          cost_model.NodeCost(kind, cut.preserves_left, lhs.rows,
                              lhs.plan->is_leaf(), rhs.rows,
                              rhs.plan->is_leaf(), rows);
      ++considered;
      const bool better =
          !have || (maximize ? cost > chosen.cost : cost < chosen.cost);
      if (better) {
        Entry entry;
        entry.plan = cut.outerjoin
                         ? Expr::OuterJoin(lhs.plan, rhs.plan, cut.pred,
                                           cut.preserves_left)
                         : Expr::Join(lhs.plan, rhs.plan, cut.pred);
        entry.cost = cost;
        entry.rows = rows;
        chosen = std::move(entry);
        have = true;
      }
      return true;
    });
    if (have) best.emplace(mask, std::move(chosen));
  }

  auto it = best.find(all);
  if (it == best.end()) {
    return Internal("no implementing tree found for a connected graph");
  }
  PlanResult result;
  result.plan = it->second.plan;
  result.cost = it->second.cost;
  result.plans_considered = considered;
  return result;
}

}  // namespace fro
