#include "optimizer/dp.h"

#include <bit>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "enumerate/cuts.h"
#include "enumerate/dpccp.h"

namespace fro {

namespace {

struct Entry {
  ExprPtr plan;
  double cost = 0;
  double rows = 0;
};

}  // namespace

Result<PlanResult> OptimizeReorderable(const QueryGraph& graph,
                                       const Database& db,
                                       const CostModel& cost_model,
                                       bool maximize,
                                       const DpOptions& options) {
  if (graph.num_nodes() == 0) {
    return InvalidArgument("empty query graph");
  }
  const uint64_t all = graph.AllMask();
  // Nodes are numbered densely from bit 0; both enumeration strategies
  // rely on that.
  FRO_CHECK(all == ~0ULL || std::has_single_bit(all + 1))
      << "query graph node mask is not contiguous";
  if (!graph.IsConnected(all)) {
    return FailedPrecondition("query graph is not connected");
  }
  const CardinalityEstimator& estimator = cost_model.estimator();

  std::unordered_map<uint64_t, Entry> best;
  uint64_t considered = 0;

  // Singletons.
  for (int node = 0; node < graph.num_nodes(); ++node) {
    Entry entry;
    entry.plan = Expr::Leaf(graph.node_rel(node), db);
    entry.cost = 0;
    entry.rows = estimator.BaseRows(graph.node_rel(node));
    best.emplace(1ULL << node, std::move(entry));
  }

  // Combines the best plans of the bipartition (a, b) into a candidate
  // for a|b, keeping it if it beats the incumbent. Skips unrealizable
  // bipartitions (Cartesian products, mixed or multi-directed cuts) and
  // parts with no plan of their own.
  auto try_combine = [&](uint64_t a, uint64_t b) {
    Cut cut;
    if (!MakeCut(graph, a, b, &cut)) return;
    auto lit = best.find(cut.left);
    auto rit = best.find(cut.right);
    if (lit == best.end() || rit == best.end()) return;
    const Entry& lhs = lit->second;
    const Entry& rhs = rit->second;
    OpKind kind = cut.outerjoin ? OpKind::kOuterJoin : OpKind::kJoin;
    double rows = estimator.JoinLikeCard(kind, cut.preserves_left, cut.pred,
                                         lhs.rows, rhs.rows);
    double cost =
        lhs.cost + rhs.cost +
        cost_model.NodeCost(kind, cut.preserves_left, lhs.rows,
                            lhs.plan->is_leaf(), rhs.rows,
                            rhs.plan->is_leaf(), rows);
    const uint64_t united = a | b;
    auto it = best.find(united);
    const bool better =
        it == best.end() ||
        (maximize ? cost > it->second.cost : cost < it->second.cost);
    if (!better) return;
    Entry entry;
    entry.plan = cut.outerjoin ? Expr::OuterJoin(lhs.plan, rhs.plan, cut.pred,
                                                 cut.preserves_left)
                               : Expr::Join(lhs.plan, rhs.plan, cut.pred);
    entry.cost = cost;
    entry.rows = rows;
    if (it == best.end()) {
      best.emplace(united, std::move(entry));
    } else {
      it->second = std::move(entry);
    }
  };

  if (options.algorithm == DpAlgorithm::kDpccp) {
    ForEachCsgCmpPair(graph, [&](uint64_t s1, uint64_t s2) {
      ++considered;
      try_combine(s1, s2);
    });
  } else {
    // Ascending-mask scan: any submask is numerically smaller than its
    // mask, so part entries exist by the time they are needed. Every
    // submask of every connected mask is examined (the mirror half is
    // skipped via the low bit, but still counted as work done).
    for (uint64_t mask = 1; mask != 0 && mask <= all; ++mask) {
      if (std::popcount(mask) < 2) continue;
      if (!graph.IsConnected(mask)) continue;
      const uint64_t low = mask & (~mask + 1);
      for (uint64_t sub = (mask - 1) & mask; sub != 0;
           sub = (sub - 1) & mask) {
        ++considered;
        if ((sub & low) == 0) continue;
        try_combine(sub, mask & ~sub);
      }
    }
  }

  auto it = best.find(all);
  if (it == best.end()) {
    return Internal("no implementing tree found for a connected graph");
  }
  PlanResult result;
  result.plan = it->second.plan;
  result.cost = it->second.cost;
  result.plans_considered = considered;
  result.states_visited = best.size();
  return result;
}

}  // namespace fro
