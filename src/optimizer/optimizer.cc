#include "optimizer/optimizer.h"

#include "optimizer/feedback.h"

namespace fro {

namespace {

// The full pipeline, bypassing `options.plan_cache`.
Result<OptimizeOutcome> OptimizeUncached(const ExprPtr& query,
                                         const Database& db,
                                         const OptimizeOptions& options) {
  OptimizeOutcome outcome;
  CostModel cost_model(db, options.cost_kind, options.feedback);
  outcome.original_cost = cost_model.PlanCost(query);

  RewriteContext context{db, cost_model, options.max_dp_relations};
  PlanState state;
  state.expr = query;
  FRO_RETURN_IF_ERROR(options.pipeline.Run(&state, context, &outcome.passes));

  outcome.plan = state.expr;
  outcome.cost = cost_model.PlanCost(state.expr);
  outcome.op_estimates = CollectOpEstimates(state.expr,
                                            cost_model.estimator());
  outcome.freely_reorderable =
      state.reorderability_known && state.freely_reorderable;
  outcome.classification = state.classification;
  return outcome;
}

}  // namespace

const PassStats* OptimizeOutcome::FindPass(std::string_view name) const {
  for (const PassStats& p : passes) {
    if (p.pass == name) return &p;
  }
  return nullptr;
}

int OptimizeOutcome::PassApplications(std::string_view name) const {
  const PassStats* stats = FindPass(name);
  return stats == nullptr ? 0 : stats->applications;
}

std::string OptimizeOutcome::Summary() const {
  std::string out = classification;
  for (const PassStats& p : passes) {
    if (!p.ran || p.applications == 0 || p.detail.empty()) continue;
    if (p.detail == classification) continue;  // reorder: already leads
    if (!out.empty()) out += "; ";
    out += p.detail;
  }
  return out;
}

Result<OptimizeOutcome> Optimize(const ExprPtr& query, const Database& db,
                                 const OptimizeOptions& options) {
  if (options.plan_cache == nullptr) {
    return OptimizeUncached(query, db, options);
  }
  // The key is the canonical query's structural hash: alias-renamed but
  // structurally identical queries flatten to the same relation/attribute
  // ids and therefore collide here on purpose (plan_cache.h explains why
  // replaying the plan is then sound).
  const uint64_t key = query->hash();
  const uint64_t db_generation = DatabaseGenerationStamp(db);
  bool replan_claimed = false;
  if (std::optional<CachedPlan> cached = options.plan_cache->LookupForPlanning(
          key, db_generation, &replan_claimed)) {
    OptimizeOutcome outcome;
    outcome.plan = cached->plan;
    outcome.cost = cached->cost;
    outcome.op_estimates = std::move(cached->op_estimates);
    outcome.freely_reorderable =
        cached->plan_class == PlanClass::kFreelyReorderable;
    outcome.cache_hit = true;
    outcome.classification = "plan cache hit [" +
                             std::string(PlanClassName(cached->plan_class)) +
                             "]: " + cached->notes;
    return outcome;
  }
  FRO_ASSIGN_OR_RETURN(OptimizeOutcome outcome,
                       OptimizeUncached(query, db, options));
  outcome.replanned = replan_claimed;
  CachedPlan entry;
  entry.plan = outcome.plan;
  entry.plan_class = outcome.freely_reorderable
                         ? PlanClass::kFreelyReorderable
                         : PlanClass::kGojRewritten;
  entry.cost = outcome.cost;
  entry.notes = outcome.Summary();
  if (outcome.replanned) entry.notes += "; feedback re-plan";
  entry.op_estimates = outcome.op_estimates;
  entry.db_generation = db_generation;
  options.plan_cache->Insert(key, std::move(entry));
  return outcome;
}

}  // namespace fro
