#include "optimizer/optimizer.h"

#include <vector>

#include "algebra/pushdown.h"
#include "algebra/simplify.h"
#include "graph/from_expr.h"
#include "graph/nice.h"
#include "optimizer/goj_rewrite.h"
#include "optimizer/greedy.h"
#include "optimizer/subquery.h"
#include "optimizer/wcoj_rewrite.h"

namespace fro {

namespace {

// A peeled top-level wrapper (Restrict or Project), to be re-applied
// around the reordered core.
struct Wrapper {
  OpKind kind;
  PredicatePtr pred;           // kRestrict
  std::vector<AttrId> cols;    // kProject
  bool dedup = false;          // kProject
};

// Strips Restrict/Project operators off the root, outermost first.
ExprPtr PeelWrappers(const ExprPtr& expr, std::vector<Wrapper>* wrappers) {
  ExprPtr core = expr;
  for (;;) {
    if (core->kind() == OpKind::kRestrict) {
      wrappers->push_back({OpKind::kRestrict, core->pred(), {}, false});
    } else if (core->kind() == OpKind::kProject) {
      wrappers->push_back({OpKind::kProject, nullptr, core->project_cols(),
                           core->project_dedup()});
    } else {
      return core;
    }
    core = core->left();
  }
}

ExprPtr RewrapRestricts(ExprPtr core, const std::vector<Wrapper>& wrappers) {
  // Re-apply innermost first so the original order is restored.
  for (auto it = wrappers.rbegin(); it != wrappers.rend(); ++it) {
    if (it->kind == OpKind::kRestrict) {
      core = Expr::Restrict(std::move(core), it->pred);
    } else {
      core = Expr::Project(std::move(core), it->cols, it->dedup);
    }
  }
  return core;
}

// Post-planning pass: sink restrictions when requested.
ExprPtr MaybePushDown(ExprPtr plan, const OptimizeOptions& options,
                      OptimizeOutcome* outcome) {
  if (!options.push_down_restrictions) return plan;
  PushdownResult pushed = PushDownRestrictions(plan);
  outcome->restrictions_pushed = pushed.conjuncts_pushed;
  return pushed.expr;
}

// Post-search pass: collapse cyclic join-only cores into worst-case-
// optimal multiway joins (cost-gated) when requested.
ExprPtr MaybeApplyWcoj(ExprPtr plan, const Database& db,
                       const CostModel& cost_model,
                       const OptimizeOptions& options,
                       OptimizeOutcome* outcome) {
  if (!options.enable_multiway_joins) return plan;
  WcojRewriteResult rewritten = ApplyWcoj(plan, db, cost_model);
  outcome->multiway_joins = rewritten.cores_collapsed;
  return rewritten.expr;
}

// The full pipeline, bypassing `options.plan_cache`.
Result<OptimizeOutcome> OptimizeUncached(const ExprPtr& query,
                                         const Database& db,
                                         const OptimizeOptions& options) {
  OptimizeOutcome outcome;
  CostModel cost_model(db, options.cost_kind);
  outcome.original_cost = cost_model.PlanCost(query);

  ExprPtr current = query;
  if (options.apply_simplification) {
    SimplifyResult simplified = SimplifyOuterjoins(current);
    outcome.outerjoins_simplified = simplified.outerjoins_converted;
    current = simplified.expr;
  }

  std::vector<Wrapper> filters;
  ExprPtr core = PeelWrappers(current, &filters);

  Result<QueryGraph> graph = GraphOf(core, db);
  if (!graph.ok()) {
    outcome.plan = current;
    outcome.cost = cost_model.PlanCost(current);
    outcome.notes = "graph undefined (" + graph.status().message() +
                    "); keeping the given association";
    return outcome;
  }

  ReorderabilityCheck check = CheckFreelyReorderable(*graph);
  outcome.freely_reorderable = check.freely_reorderable();

  if (outcome.freely_reorderable) {
    const bool use_dp = graph->num_nodes() <= options.max_dp_relations;
    PlanResult best;
    if (use_dp) {
      FRO_ASSIGN_OR_RETURN(best, OptimizeReorderable(*graph, db, cost_model));
    } else {
      FRO_ASSIGN_OR_RETURN(best, OptimizeGreedy(*graph, db, cost_model));
    }
    outcome.plans_considered = best.plans_considered;
    ExprPtr core_plan =
        MaybeApplyWcoj(best.plan, db, cost_model, options, &outcome);
    outcome.plan = MaybePushDown(RewrapRestricts(core_plan, filters),
                                 options, &outcome);
    outcome.cost = cost_model.PlanCost(outcome.plan);
    outcome.notes = use_dp
                        ? "freely reorderable: DP over all implementing trees"
                        : "freely reorderable: greedy ordering (graph too "
                          "large for exact DP)";
    if (outcome.multiway_joins > 0) {
      outcome.notes += "; " + std::to_string(outcome.multiway_joins) +
                       " cyclic core(s) collapsed to leapfrog multiway "
                       "join(s)";
    }
    return outcome;
  }

  // Not freely reorderable: keep the overall association but DP-optimize
  // every maximal freely-reorderable subtree (Section 6.1's extension),
  // then optionally left-deepen with GOJ so a pipelined executor can run
  // it.
  SubqueryReorderResult islands =
      ReorderSubqueries(core, db, cost_model);
  outcome.subqueries_reordered = islands.subqueries_reordered;
  ExprPtr plan = islands.expr;
  // Identity 15 pads one row per distinct preserved-side projection while
  // the outerjoin it replaces pads per row, so the rewrite is only sound
  // over duplicate-free base relations (goj_rewrite.h).
  bool goj_blocked_by_duplicates = false;
  if (options.apply_goj_rewrites) {
    if (BaseRelationsDuplicateFree(plan, db)) {
      plan = LeftDeepenWithGoj(plan, &outcome.goj_rewrites);
    } else {
      goj_blocked_by_duplicates = true;
    }
  }
  plan = MaybeApplyWcoj(plan, db, cost_model, options, &outcome);
  outcome.plan = MaybePushDown(RewrapRestricts(plan, filters), options,
                               &outcome);
  outcome.cost = cost_model.PlanCost(outcome.plan);
  outcome.notes =
      "not freely reorderable (" +
      (check.nice.nice ? std::string("non-strong outerjoin predicate")
                       : check.nice.violation) +
      ")" +
      (outcome.goj_rewrites > 0
           ? "; left-deepened with " + std::to_string(outcome.goj_rewrites) +
                 " GOJ rewrite(s)"
           : "") +
      (goj_blocked_by_duplicates
           ? "; GOJ rewrites skipped (duplicate rows in a base relation)"
           : "") +
      (outcome.multiway_joins > 0
           ? "; " + std::to_string(outcome.multiway_joins) +
                 " cyclic core(s) collapsed to leapfrog multiway join(s)"
           : "");
  return outcome;
}

}  // namespace

Result<OptimizeOutcome> Optimize(const ExprPtr& query, const Database& db,
                                 const OptimizeOptions& options) {
  if (options.plan_cache == nullptr) {
    return OptimizeUncached(query, db, options);
  }
  // The key is the canonical query's structural hash: alias-renamed but
  // structurally identical queries flatten to the same relation/attribute
  // ids and therefore collide here on purpose (plan_cache.h explains why
  // replaying the plan is then sound).
  const uint64_t key = query->hash();
  if (std::optional<CachedPlan> cached = options.plan_cache->Lookup(key)) {
    OptimizeOutcome outcome;
    outcome.plan = cached->plan;
    outcome.cost = cached->cost;
    outcome.freely_reorderable =
        cached->plan_class == PlanClass::kFreelyReorderable;
    outcome.goj_rewrites = cached->goj_rewrites;
    outcome.cache_hit = true;
    outcome.notes = "plan cache hit [" +
                    std::string(PlanClassName(cached->plan_class)) + "]: " +
                    cached->notes;
    return outcome;
  }
  FRO_ASSIGN_OR_RETURN(OptimizeOutcome outcome,
                       OptimizeUncached(query, db, options));
  CachedPlan entry;
  entry.plan = outcome.plan;
  entry.plan_class = outcome.freely_reorderable
                         ? PlanClass::kFreelyReorderable
                         : PlanClass::kGojRewritten;
  entry.cost = outcome.cost;
  entry.goj_rewrites = outcome.goj_rewrites;
  entry.notes = outcome.notes;
  options.plan_cache->Insert(key, std::move(entry));
  return outcome;
}

}  // namespace fro
