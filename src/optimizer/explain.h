// Plan explanation: tree-rendered operator plans annotated with
// estimated cardinalities, plus Graphviz DOT output for expression trees
// and query graphs (the paper's Fig. 1 shows exactly these two views of
// a query).

#ifndef FRO_OPTIMIZER_EXPLAIN_H_
#define FRO_OPTIMIZER_EXPLAIN_H_

#include <string>

#include "algebra/expr.h"
#include "graph/query_graph.h"
#include "optimizer/cardinality.h"

namespace fro {

struct ExplainOptions {
  /// Annotate each operator with its estimated output cardinality.
  bool show_cardinalities = true;
  /// Show each operator's predicate.
  bool show_predicates = true;
};

/// Multi-line, indentation-structured rendering, e.g.:
///
///   OuterJoin -> [ORDERS.id=SHIPMENT.order_id]  ~3 rows
///     Join [CUSTOMER.id=ORDERS.cust_id]  ~3 rows
///       Scan CUSTOMER  ~2 rows
///       Scan ORDERS  ~3 rows
///     Scan SHIPMENT  ~2 rows
std::string Explain(const ExprPtr& expr, const Database& db,
                    const ExplainOptions& options = ExplainOptions());

/// Graphviz DOT for an expression tree.
std::string ExprToDot(const ExprPtr& expr, const Database& db);

/// Graphviz DOT for a query graph: join edges undirected, outerjoin
/// edges directed toward the null-supplied relation (as in the paper's
/// figures).
std::string GraphToDot(const QueryGraph& graph, const Database& db);

}  // namespace fro

#endif  // FRO_OPTIMIZER_EXPLAIN_H_
