// Plan explanation: tree-rendered operator plans annotated with
// estimated cardinalities, plus Graphviz DOT output for expression trees
// and query graphs (the paper's Fig. 1 shows exactly these two views of
// a query).

#ifndef FRO_OPTIMIZER_EXPLAIN_H_
#define FRO_OPTIMIZER_EXPLAIN_H_

#include <string>

#include "algebra/expr.h"
#include "exec/batch.h"
#include "graph/query_graph.h"
#include "optimizer/cardinality.h"
#include "relational/exec_stats.h"
#include "relational/ops.h"
#include "relational/relation.h"

namespace fro {

struct ExplainOptions {
  /// Annotate each operator with its estimated output cardinality.
  bool show_cardinalities = true;
  /// Show each operator's predicate.
  bool show_predicates = true;
};

/// Multi-line, indentation-structured rendering, e.g.:
///
///   OuterJoin -> [ORDERS.id=SHIPMENT.order_id]  ~3 rows
///     Join [CUSTOMER.id=ORDERS.cust_id]  ~3 rows
///       Scan CUSTOMER  ~2 rows
///       Scan ORDERS  ~3 rows
///     Scan SHIPMENT  ~2 rows
std::string Explain(const ExprPtr& expr, const Database& db,
                    const ExplainOptions& options = ExplainOptions());

/// Everything EXPLAIN ANALYZE learned from one instrumented execution.
struct ExplainAnalyzeResult {
  /// Tree rendering, one operator per line: the physical operator, the
  /// logical label, `~est rows` next to `actual rows / reads / evals /
  /// probes / time`, and a per-node Q-error for the estimator.
  std::string text;
  /// The query result (the plan is executed for real).
  Relation result;
  /// Counters summed over all non-scan operators; equals the totals the
  /// materializing evaluator reports for the same expression.
  ExecStats totals;
  /// Tuples retrieved from ground relations — Example 1's accounting
  /// (2·10⁷+1 vs. 3), measured through the pipelined executor.
  uint64_t base_tuples_read = 0;
  /// Worst per-node Q-error, max(est, actual) / min(est, actual) with
  /// both clamped to at least one row.
  double max_q_error = 1.0;
};

/// Executes `expr` through the chosen execution engine (batch by
/// default) with per-operator instrumentation (including wall-clock
/// timing) and renders estimated-versus-actual rows for every plan node.
/// The engines agree on results and counters, so the choice only affects
/// the timing figures. With the batch engine and `threads > 1`,
/// parallelizable regions execute as morsel-driven exchanges
/// (exec/morsel.h): the rendering shows the Exchange node with the
/// node-wise cross-worker merge of its spine beneath it, and every
/// counter still sums to the serial totals. With `feedback`
/// (optimizer/feedback.h), estimates served from runtime corrections are
/// rendered with a `[feedback-corrected]` marker.
ExplainAnalyzeResult ExplainAnalyze(
    const ExprPtr& expr, const Database& db, JoinAlgo algo = JoinAlgo::kAuto,
    ExecEngine engine = ExecEngine::kBatch, int threads = 1,
    const CardinalityFeedback* feedback = nullptr);

/// Graphviz DOT for an expression tree.
std::string ExprToDot(const ExprPtr& expr, const Database& db);

/// Graphviz DOT for a query graph: join edges undirected, outerjoin
/// edges directed toward the null-supplied relation (as in the paper's
/// figures).
std::string GraphToDot(const QueryGraph& graph, const Database& db);

}  // namespace fro

#endif  // FRO_OPTIMIZER_EXPLAIN_H_
