// Runtime cardinality feedback (the MariaDB-style optimizer-feedback
// loop): every execution snapshots true per-operator cardinalities
// (exec/stats_view.h), the FeedbackStore remembers them keyed by the
// operator's *source-expression structural hash*, and the estimator
// consults those actuals before falling back to the static model.
//
// Why the op-hash is the lookup key: the true cardinality of a logical
// subexpression is a property of the expression and the data, not of the
// plan that happened to compute it — any plan containing a node with the
// same structural hash produces the same number of rows (Theorem 1 for
// the reorderable class; hash identity for everything else). The
// plan-hash rides along per entry as provenance only.
//
// Why correction is sound: feedback enters exclusively through
// CardinalityEstimator::Estimate, which no executor consults — it can
// change which implementing tree the optimizer picks (DP search, the
// wcoj/acyclic cost gates, safe-subjoin survivor analysis) but never
// what a tree evaluates to. The differential fuzzer's `feedback-*`
// checks pin this down: re-planned queries are held to the 3VL oracle.

#ifndef FRO_OPTIMIZER_FEEDBACK_H_
#define FRO_OPTIMIZER_FEEDBACK_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/expr.h"

namespace fro {

class CardinalityEstimator;
class Database;
struct PlanOpStats;

/// Q-error of an estimate against the measured cardinality:
/// max(est, actual) / min(est, actual), both clamped to at least one row
/// so zero-cardinality operators (empty intermediates) never divide by
/// zero. Always >= 1; 1 means the estimate was exact (to within a row).
double QError(double est, double actual);

/// An immutable point-in-time view of the store's corrections:
/// source-expr hash -> measured output rows. This is what the estimator
/// holds (optimizer/cardinality.h) — plain data, no locks, safe to copy
/// into an optimization and drop after.
class CardinalityFeedback {
 public:
  bool empty() const { return corrected_.empty(); }
  size_t size() const { return corrected_.size(); }

  /// The corrected row count for `op_hash`, or null when the store has
  /// never seen that subexpression execute.
  const double* Lookup(uint64_t op_hash) const {
    auto it = corrected_.find(op_hash);
    return it == corrected_.end() ? nullptr : &it->second;
  }

  /// Direct injection, used by tests and the differential fuzzer to
  /// force a correction without going through a store.
  void Set(uint64_t op_hash, double rows) { corrected_[op_hash] = rows; }

  const std::unordered_map<uint64_t, double>& entries() const {
    return corrected_;
  }

 private:
  std::unordered_map<uint64_t, double> corrected_;
};

struct FeedbackOptions {
  /// Distinct subexpressions remembered; beyond it the entry with the
  /// lowest decayed weight is evicted.
  size_t capacity = 1024;
  /// Per-observation-tick multiplier applied to an entry's weight while
  /// it is *not* being re-observed; entries that stop executing fade and
  /// lose eviction contests to live ones.
  double decay = 0.95;
  /// Weight of the newest actual in the running (EWMA) cardinality.
  double ewma_alpha = 0.5;
  /// Entries whose decayed weight falls below this are dropped outright
  /// during eviction sweeps.
  double min_weight = 0.05;
};

/// Point-in-time counters of a FeedbackStore, including the log-scale
/// Q-error histogram STATS renders (bucket i counts observations with
/// q-error in [2^i, 2^(i+1)); the last bucket is open-ended).
struct FeedbackStoreStats {
  static constexpr int kQErrorBuckets = 16;

  size_t size = 0;
  size_t capacity = 0;
  uint64_t observations = 0;
  uint64_t evictions = 0;
  uint64_t merged = 0;
  double max_q_error = 1.0;
  uint64_t q_error_hist[kQErrorBuckets] = {0};

  std::string ToString() const;
};

/// The server's shared actuals registry. Thread-safe: workers Observe
/// concurrently after every execution, and each optimization takes a
/// Snapshot (plain copy) to plan against. Bounded: `capacity` live
/// entries, exponential decay retires subexpressions that stopped
/// executing (see FeedbackOptions).
class FeedbackStore {
 public:
  explicit FeedbackStore(FeedbackOptions options = FeedbackOptions());

  /// Records one operator's measured cardinality. `plan_hash` is the
  /// executed plan's structural hash (provenance); `op_hash` the
  /// operator's source-expression hash; `est_rows` the estimate the plan
  /// was chosen with, feeding the Q-error histogram.
  void Observe(uint64_t plan_hash, uint64_t op_hash, double est_rows,
               double actual_rows);

  /// Copies the current corrections out (op-hash -> EWMA actual rows).
  CardinalityFeedback Snapshot() const;

  /// Folds externally collected corrections in (e.g. a peer shard's
  /// snapshot), each counting as one fresh observation.
  void Merge(const CardinalityFeedback& other);

  /// The remembered cardinality for `op_hash`, or nullopt.
  std::optional<double> CorrectedRows(uint64_t op_hash) const;

  /// The entry's decayed weight (recency mass), or nullopt. Exposed for
  /// decay tests and the shell's \feedback listing.
  std::optional<double> WeightOf(uint64_t op_hash) const;

  FeedbackStoreStats stats() const;

  /// Human-readable rollup: the stats line, the Q-error histogram, and
  /// the `top_n` heaviest entries. The shell's \feedback payload.
  std::string Describe(size_t top_n = 10) const;

  void Clear();

 private:
  struct Entry {
    double rows = 0;       // EWMA of observed actuals
    double weight = 0;     // decayed observation mass
    uint64_t last_tick = 0;
    uint64_t plan_hash = 0;  // last contributing plan (provenance)
  };

  // Both require mu_ held.
  double DecayedWeight(const Entry& entry) const;
  void ObserveLocked(uint64_t plan_hash, uint64_t op_hash, double est_rows,
                     double actual_rows);
  void EvictLocked();

  FeedbackOptions options_;
  mutable std::mutex mu_;
  uint64_t tick_ = 0;
  std::unordered_map<uint64_t, Entry> entries_;
  uint64_t observations_ = 0;
  uint64_t evictions_ = 0;
  uint64_t merged_ = 0;
  double max_q_error_ = 1.0;
  uint64_t q_error_hist_[FeedbackStoreStats::kQErrorBuckets] = {0};
};

/// The estimates a chosen plan was costed with, one entry per distinct
/// subexpression hash. Recorded at planning time and cached alongside
/// the plan, so post-execution Q-error measures the estimates that
/// *picked* this plan — after a feedback-driven re-plan the stored
/// estimates are the corrected ones, actuals match, the running Q-error
/// stays low, and the cache entry is not re-marked stale (re-plan once,
/// no thrashing while actuals are stable).
struct OpEstimates {
  std::vector<std::pair<uint64_t, double>> entries;

  bool empty() const { return entries.empty(); }
  const double* Find(uint64_t op_hash) const;
};

/// Walks `plan` and records the estimator's output estimate for every
/// node (feedback corrections included if the estimator carries any).
OpEstimates CollectOpEstimates(const ExprPtr& plan,
                               const CardinalityEstimator& estimator);

/// Feeds one execution back: walks the engine-agnostic PlanOpStats
/// snapshot, records each operator's measured cardinality into `store`
/// (null store = measure only), and returns the worst per-operator
/// Q-error against `estimates`. Passthrough adapters and nodes without a
/// source expression are skipped; duplicate hashes (e.g. a morsel
/// exchange wrapping its spine) are observed once with the larger count.
double ObservePlanExecution(FeedbackStore* store, uint64_t plan_hash,
                            const PlanOpStats& snapshot,
                            const OpEstimates& estimates);

/// One stamp summarizing every base relation's mutation generation
/// (relational/database.h) — the plan-cache invalidation token: a cached
/// plan optimized at stamp G is stale once any relation's generation
/// bumps, because both its shape and its feedback were measured against
/// data that no longer exists.
uint64_t DatabaseGenerationStamp(const Database& db);

}  // namespace fro

#endif  // FRO_OPTIMIZER_FEEDBACK_H_
