#include "optimizer/plan_cache.h"

#include <cstdio>

namespace fro {

const char* PlanClassName(PlanClass plan_class) {
  switch (plan_class) {
    case PlanClass::kFreelyReorderable:
      return "freely-reorderable";
    case PlanClass::kGojRewritten:
      return "goj-rewritten";
  }
  return "unknown";
}

std::string PlanCacheStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "hits=%llu misses=%llu insertions=%llu evictions=%llu "
                "size=%zu capacity=%zu hit_rate=%.4f",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(insertions),
                static_cast<unsigned long long>(evictions), size, capacity,
                hit_rate());
  return buf;
}

std::optional<CachedPlan> LruPlanCache::Lookup(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return it->second->plan;
}

void LruPlanCache::Insert(uint64_t key, CachedPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent optimizers can race to fill the same key; both plans are
    // equally valid (the search is deterministic), keep the newer.
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++insertions_;
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    ++evictions_;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void LruPlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

PlanCacheStats LruPlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.insertions = insertions_;
  out.evictions = evictions_;
  out.size = lru_.size();
  out.capacity = capacity_;
  return out;
}

}  // namespace fro
