#include "optimizer/plan_cache.h"

#include <cstdio>

namespace fro {

const char* PlanClassName(PlanClass plan_class) {
  switch (plan_class) {
    case PlanClass::kFreelyReorderable:
      return "freely-reorderable";
    case PlanClass::kGojRewritten:
      return "goj-rewritten";
  }
  return "unknown";
}

std::string PlanCacheStats::ToString() const {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "hits=%llu misses=%llu insertions=%llu evictions=%llu "
                "size=%zu capacity=%zu hit_rate=%.4f stale=%zu "
                "stale_marks=%llu replans=%llu invalidations=%llu",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(insertions),
                static_cast<unsigned long long>(evictions), size, capacity,
                hit_rate(), stale_entries,
                static_cast<unsigned long long>(stale_marks),
                static_cast<unsigned long long>(replans),
                static_cast<unsigned long long>(invalidations));
  return buf;
}

std::optional<CachedPlan> LruPlanCache::Lookup(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return it->second->plan;
}

std::optional<CachedPlan> LruPlanCache::LookupForPlanning(
    uint64_t key, uint64_t db_generation, bool* replan_claimed) {
  if (replan_claimed != nullptr) *replan_claimed = false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  Entry& entry = *it->second;
  if (entry.plan.db_generation != db_generation) {
    // The base data moved on: plan shape, estimates, and feedback were
    // all measured against relations that no longer exist.
    ++invalidations_;
    ++misses_;
    lru_.erase(it->second);
    index_.erase(it);
    return std::nullopt;
  }
  if (entry.stale && !entry.replanning) {
    // Exactly one caller wins the claim; the flag stays up until its
    // Insert lands, so racing lookups fall through to the hit below and
    // keep executing the old (sound) plan meanwhile.
    entry.stale = false;
    entry.replanning = true;
    ++replans_;
    ++misses_;
    if (replan_claimed != nullptr) *replan_claimed = true;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  return entry.plan;
}

void LruPlanCache::RecordExecution(uint64_t key, double q_error) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  Entry& entry = *it->second;
  entry.q_error = entry.executions == 0
                      ? q_error
                      : 0.5 * q_error + 0.5 * entry.q_error;
  ++entry.executions;
  if (!entry.stale && !entry.replanning &&
      entry.q_error > q_error_threshold_) {
    entry.stale = true;
    ++stale_marks_;
  }
}

std::optional<double> LruPlanCache::RunningQError(uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end() || it->second->executions == 0) return std::nullopt;
  return it->second->q_error;
}

void LruPlanCache::Insert(uint64_t key, CachedPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent optimizers can race to fill the same key; both plans are
    // equally valid (the search is deterministic), keep the newer. A
    // resolved re-plan claim lands here too: the fresh plan starts with a
    // clean Q-error record, measured against its own estimates.
    Entry& entry = *it->second;
    entry.plan = std::move(plan);
    entry.q_error = 0;
    entry.executions = 0;
    entry.stale = false;
    entry.replanning = false;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++insertions_;
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    ++evictions_;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void LruPlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

PlanCacheStats LruPlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.insertions = insertions_;
  out.evictions = evictions_;
  out.size = lru_.size();
  out.capacity = capacity_;
  for (const Entry& entry : lru_) {
    if (entry.stale) ++out.stale_entries;
  }
  out.stale_marks = stale_marks_;
  out.replans = replans_;
  out.invalidations = invalidations_;
  return out;
}

}  // namespace fro
