#include "optimizer/acyclic_rewrite.h"

#include "acyclic/gyo.h"
#include "acyclic/yannakakis.h"
#include "optimizer/join_region.h"

namespace fro {

namespace {

// True if the subtree already carries a semijoin/antijoin reduction.
// Attribute statistics describe base relations only, so the estimator
// would credit a second reduction of an already-reduced operand with
// the same survivor fraction again (double counting); skipping such
// regions keeps the pass idempotent — re-optimizing a planned program
// leaves it alone.
bool ContainsReduction(const ExprPtr& expr) {
  if (expr == nullptr || expr->kind() == OpKind::kLeaf) return false;
  if (expr->kind() == OpKind::kSemijoin ||
      expr->kind() == OpKind::kAntijoin) {
    return true;
  }
  if (expr->is_multiway()) {
    for (const ExprPtr& child : expr->mj_children()) {
      if (ContainsReduction(child)) return true;
    }
    return false;
  }
  return ContainsReduction(expr->left()) ||
         ContainsReduction(expr->right());
}

}  // namespace

AcyclicRewriteResult ApplyAcyclic(const ExprPtr& plan, const Database& db,
                                  const CostModel& cost_model) {
  (void)db;
  AcyclicRewriteResult result;
  result.expr = MapJoinRegions(
      plan, [&](const ExprPtr& region_root,
                const std::vector<ExprPtr>& operands,
                const std::vector<PredicatePtr>& conjuncts) {
        size_t next = 0;
        ExprPtr baseline = RebuildSameShape(region_root, operands, &next);
        // Two operands cannot beat their own binary join; > 64 exceeds
        // the hypergraph representation.
        if (operands.size() < 3 || operands.size() > 64) return baseline;
        for (const ExprPtr& operand : operands) {
          if (ContainsReduction(operand)) return baseline;
        }

        const JoinHypergraph hg = BuildJoinHypergraph(operands, conjuncts);
        const JoinTree tree = GyoReduce(hg);
        if (!tree.acyclic) return baseline;

        SemijoinProgram program = PlanYannakakis(
            operands, conjuncts, tree, &cost_model.estimator());
        if (program.semijoins == 0) return baseline;
        if (cost_model.PlanCost(program.expr) <
            cost_model.PlanCost(baseline)) {
          ++result.programs_planned;
          result.semijoins += program.semijoins;
          return program.expr;
        }
        return baseline;
      });
  return result;
}

ExprPtr ForceAcyclicPrograms(const ExprPtr& query) {
  return MapJoinRegions(
      query, [](const ExprPtr& region_root,
                const std::vector<ExprPtr>& operands,
                const std::vector<PredicatePtr>& conjuncts) {
        size_t next = 0;
        ExprPtr baseline = RebuildSameShape(region_root, operands, &next);
        if (operands.size() < 2 || operands.size() > 64) return baseline;

        const JoinHypergraph hg = BuildJoinHypergraph(operands, conjuncts);
        const JoinTree tree = GyoReduce(hg);
        if (!tree.acyclic) return baseline;

        YannakakisOptions options;
        options.top_down = true;
        SemijoinProgram program = PlanYannakakis(
            operands, conjuncts, tree, /*estimator=*/nullptr, options);
        return program.expr;
      });
}

}  // namespace fro
