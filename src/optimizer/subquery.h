// Reordering freely-reorderable subqueries (paper Section 6.1: "it may be
// possible to extend this approach to reorder freely-reorderable
// subqueries of the given query").
//
// For a query whose graph is undefined or not freely reorderable, this
// pass finds MAXIMAL subtrees that are pure Join/Outerjoin queries with
// nice graphs and strong predicates, and replaces each with the DP
// optimizer's cheapest implementing tree. Replacing a subtree with an
// equivalent expression is always sound (evaluation is compositional),
// so the surrounding non-reorderable operators stay fixed while every
// reorderable island is optimized.

#ifndef FRO_OPTIMIZER_SUBQUERY_H_
#define FRO_OPTIMIZER_SUBQUERY_H_

#include "algebra/expr.h"
#include "optimizer/cost.h"

namespace fro {

struct SubqueryReorderResult {
  ExprPtr expr;
  /// Maximal freely-reorderable subtrees replaced by optimized plans
  /// (subtrees of fewer than three relations are left alone — there is
  /// nothing to reorder).
  int subqueries_reordered = 0;
};

SubqueryReorderResult ReorderSubqueries(const ExprPtr& expr,
                                        const Database& db,
                                        const CostModel& cost_model);

}  // namespace fro

#endif  // FRO_OPTIMIZER_SUBQUERY_H_
