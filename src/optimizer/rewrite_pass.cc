#include "optimizer/rewrite_pass.h"

#include <algorithm>

#include "algebra/pushdown.h"
#include "algebra/simplify.h"
#include "graph/from_expr.h"
#include "graph/nice.h"
#include "optimizer/acyclic_rewrite.h"
#include "optimizer/dp.h"
#include "optimizer/goj_rewrite.h"
#include "optimizer/greedy.h"
#include "optimizer/subquery.h"
#include "optimizer/wcoj_rewrite.h"

namespace fro {

namespace {

// A peeled top-level wrapper (Restrict or Project), to be re-applied
// around the reordered core.
struct Wrapper {
  OpKind kind;
  PredicatePtr pred;         // kRestrict
  std::vector<AttrId> cols;  // kProject
  bool dedup = false;        // kProject
};

// Strips Restrict/Project operators off the root, outermost first.
ExprPtr PeelWrappers(const ExprPtr& expr, std::vector<Wrapper>* wrappers) {
  ExprPtr core = expr;
  for (;;) {
    if (core->kind() == OpKind::kRestrict) {
      wrappers->push_back({OpKind::kRestrict, core->pred(), {}, false});
    } else if (core->kind() == OpKind::kProject) {
      wrappers->push_back({OpKind::kProject, nullptr, core->project_cols(),
                           core->project_dedup()});
    } else {
      return core;
    }
    core = core->left();
  }
}

ExprPtr RewrapWrappers(ExprPtr core, const std::vector<Wrapper>& wrappers) {
  // Re-apply innermost first so the original order is restored.
  for (auto it = wrappers.rbegin(); it != wrappers.rend(); ++it) {
    if (it->kind == OpKind::kRestrict) {
      core = Expr::Restrict(std::move(core), it->pred);
    } else {
      core = Expr::Project(std::move(core), it->cols, it->dedup);
    }
  }
  return core;
}

std::string CountNoun(int n, const char* noun) {
  return std::to_string(n) + " " + noun + "(s)";
}

/// Section 4 simplification: strong filters convert outerjoins to joins
/// — "carried out before creation of the query graph".
class SimplifyPass final : public RewritePass {
 public:
  std::string_view name() const override { return "simplify"; }
  Status Apply(PlanState* state, const RewriteContext& context,
               PassStats* stats) const override {
    (void)context;
    stats->ran = true;
    SimplifyResult simplified = SimplifyOuterjoins(state->expr);
    stats->applications = simplified.outerjoins_converted;
    if (simplified.outerjoins_converted > 0) {
      stats->detail = CountNoun(simplified.outerjoins_converted,
                                "outerjoin") +
                      " simplified to join(s)";
    }
    state->expr = simplified.expr;
    return Status::Ok();
  }
};

/// Theorem 1 classification plus the plan search it licenses: DP (or
/// greedy, past max_dp_relations) over all implementing trees when the
/// query graph is freely reorderable, per-island reordering (the
/// Section 6.1 extension) when it is not. Records the classification
/// facts every later structural pass keys off.
class ReorderPass final : public RewritePass {
 public:
  std::string_view name() const override { return "reorder"; }
  Status Apply(PlanState* state, const RewriteContext& context,
               PassStats* stats) const override {
    stats->ran = true;
    std::vector<Wrapper> wrappers;
    ExprPtr core = PeelWrappers(state->expr, &wrappers);

    Result<QueryGraph> graph = GraphOf(core, context.db);
    if (!graph.ok()) {
      state->reorderability_known = false;
      state->classification = "graph undefined (" +
                              graph.status().message() +
                              "); keeping the given association";
      stats->detail = state->classification;
      return Status::Ok();
    }

    ReorderabilityCheck check = CheckFreelyReorderable(*graph);
    state->reorderability_known = true;
    state->freely_reorderable = check.freely_reorderable();

    if (state->freely_reorderable) {
      const bool use_dp = graph->num_nodes() <= context.max_dp_relations;
      PlanResult best;
      if (use_dp) {
        FRO_ASSIGN_OR_RETURN(
            best, OptimizeReorderable(*graph, context.db,
                                      context.cost_model));
      } else {
        FRO_ASSIGN_OR_RETURN(
            best, OptimizeGreedy(*graph, context.db, context.cost_model));
      }
      stats->plans_considered = best.plans_considered;
      stats->applications = 1;
      state->classification =
          use_dp ? "freely reorderable: DP over all implementing trees"
                 : "freely reorderable: greedy ordering (graph too large "
                   "for exact DP)";
      stats->detail = state->classification;
      state->expr = RewrapWrappers(best.plan, wrappers);
      return Status::Ok();
    }

    SubqueryReorderResult islands =
        ReorderSubqueries(core, context.db, context.cost_model);
    stats->applications = islands.subqueries_reordered;
    state->classification =
        "not freely reorderable (" +
        (check.nice.nice ? std::string("non-strong outerjoin predicate")
                         : check.nice.violation) +
        ")";
    stats->detail = state->classification;
    if (islands.subqueries_reordered > 0) {
      stats->detail += "; " +
                       CountNoun(islands.subqueries_reordered,
                                 "reorderable island") +
                       " DP-optimized in place";
    }
    state->expr = RewrapWrappers(islands.expr, wrappers);
    return Status::Ok();
  }
};

/// Left-deepens non-freely-reorderable queries with the generalized-
/// outerjoin identities (15/16) so a conventional left-deep executor
/// can run them.
class GojPass final : public RewritePass {
 public:
  std::string_view name() const override { return "goj"; }
  Status Apply(PlanState* state, const RewriteContext& context,
               PassStats* stats) const override {
    if (!state->reorderability_known) {
      stats->skipped = "query graph undefined";
      return Status::Ok();
    }
    if (state->freely_reorderable) {
      stats->skipped = "query freely reorderable";
      return Status::Ok();
    }
    // Identity 15 pads one row per distinct preserved-side projection
    // while the outerjoin it replaces pads per row, so the rewrite is
    // only sound over duplicate-free base relations (goj_rewrite.h).
    if (!BaseRelationsDuplicateFree(state->expr, context.db)) {
      stats->skipped = "duplicate rows in a base relation";
      return Status::Ok();
    }
    stats->ran = true;
    std::vector<Wrapper> wrappers;
    ExprPtr core = PeelWrappers(state->expr, &wrappers);
    int rewrites = 0;
    core = LeftDeepenWithGoj(core, &rewrites);
    stats->applications = rewrites;
    if (rewrites > 0) {
      stats->detail =
          "left-deepened with " + CountNoun(rewrites, "GOJ rewrite");
    }
    state->expr = RewrapWrappers(std::move(core), wrappers);
    return Status::Ok();
  }
};

/// Collapses cyclic join-only cores into worst-case-optimal multiway
/// joins (cost-gated); the outerjoin shell stays binary.
class WcojPass final : public RewritePass {
 public:
  std::string_view name() const override { return "wcoj"; }
  Status Apply(PlanState* state, const RewriteContext& context,
               PassStats* stats) const override {
    stats->ran = true;
    WcojRewriteResult rewritten =
        ApplyWcoj(state->expr, context.db, context.cost_model);
    stats->applications = rewritten.cores_collapsed;
    if (rewritten.cores_collapsed > 0) {
      stats->detail = CountNoun(rewritten.cores_collapsed, "cyclic core") +
                      " collapsed to leapfrog multiway join(s)";
    }
    state->expr = rewritten.expr;
    return Status::Ok();
  }
};

/// Rewrites alpha-acyclic join-only regions into Yannakakis semijoin
/// programs (cost-gated, per-edge safe-subjoin analysis). After wcoj:
/// collapsed cores count as single operands, so the remaining region is
/// often newly acyclic.
class AcyclicPass final : public RewritePass {
 public:
  std::string_view name() const override { return "acyclic"; }
  Status Apply(PlanState* state, const RewriteContext& context,
               PassStats* stats) const override {
    stats->ran = true;
    AcyclicRewriteResult rewritten =
        ApplyAcyclic(state->expr, context.db, context.cost_model);
    stats->applications = rewritten.programs_planned;
    if (rewritten.programs_planned > 0) {
      stats->detail = CountNoun(rewritten.programs_planned,
                                "acyclic region") +
                      " rewritten to semijoin program(s), " +
                      CountNoun(rewritten.semijoins, "reduction");
    }
    state->expr = rewritten.expr;
    return Status::Ok();
  }
};

/// Sinks restriction conjuncts as deep as outerjoin semantics allow
/// ("do restrictions as early as possible", Section 4).
class PushdownPass final : public RewritePass {
 public:
  std::string_view name() const override { return "pushdown"; }
  Status Apply(PlanState* state, const RewriteContext& context,
               PassStats* stats) const override {
    (void)context;
    stats->ran = true;
    PushdownResult pushed = PushDownRestrictions(state->expr);
    stats->applications = pushed.conjuncts_pushed;
    if (pushed.conjuncts_pushed > 0) {
      stats->detail = CountNoun(pushed.conjuncts_pushed,
                                "restriction conjunct") +
                      " pushed down";
    }
    state->expr = pushed.expr;
    return Status::Ok();
  }
};

}  // namespace

RewritePassPtr MakeSimplifyPass() {
  return std::make_shared<const SimplifyPass>();
}
RewritePassPtr MakeReorderPass() {
  return std::make_shared<const ReorderPass>();
}
RewritePassPtr MakeGojPass() { return std::make_shared<const GojPass>(); }
RewritePassPtr MakeWcojPass() { return std::make_shared<const WcojPass>(); }
RewritePassPtr MakeAcyclicPass() {
  return std::make_shared<const AcyclicPass>();
}
RewritePassPtr MakePushdownPass() {
  return std::make_shared<const PushdownPass>();
}

RewritePipeline RewritePipeline::Default() {
  RewritePipeline pipeline;
  pipeline.Append(MakeSimplifyPass())
      .Append(MakeReorderPass())
      .Append(MakeGojPass())
      .Append(MakeWcojPass())
      .Append(MakeAcyclicPass())
      .Append(MakePushdownPass());
  return pipeline;
}

RewritePipeline RewritePipeline::Empty() { return RewritePipeline(); }

RewritePipeline& RewritePipeline::Append(RewritePassPtr pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

RewritePipeline RewritePipeline::Without(std::string_view name) const {
  RewritePipeline out;
  for (const RewritePassPtr& pass : passes_) {
    if (pass->name() != name) out.passes_.push_back(pass);
  }
  return out;
}

bool RewritePipeline::Has(std::string_view name) const {
  return std::any_of(
      passes_.begin(), passes_.end(),
      [&](const RewritePassPtr& pass) { return pass->name() == name; });
}

Status RewritePipeline::Run(PlanState* state, const RewriteContext& context,
                            std::vector<PassStats>* stats) const {
  for (const RewritePassPtr& pass : passes_) {
    PassStats pass_stats;
    pass_stats.pass = std::string(pass->name());
    FRO_RETURN_IF_ERROR(pass->Apply(state, context, &pass_stats));
    stats->push_back(std::move(pass_stats));
  }
  return Status::Ok();
}

std::string FormatPassStats(const std::vector<PassStats>& passes) {
  std::string out;
  for (const PassStats& p : passes) {
    out += "pass " + p.pass + ": ";
    if (!p.ran) {
      out += "skipped (" + p.skipped + ")";
    } else {
      out += "applications=" + std::to_string(p.applications);
      if (p.plans_considered > 0) {
        out += " plans_considered=" + std::to_string(p.plans_considered);
      }
      if (!p.detail.empty()) out += " (" + p.detail + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace fro
