#include "optimizer/explain.h"

#include <algorithm>

#include "common/str_util.h"
#include "exec/build.h"
#include "exec/morsel.h"
#include "exec/stats_view.h"

namespace fro {

namespace {

std::string NodeLabel(const Expr& node, const Database& db,
                      bool with_pred) {
  const Catalog* catalog = &db.catalog();
  switch (node.kind()) {
    case OpKind::kLeaf:
      return "Scan " + catalog->RelationName(node.rel());
    case OpKind::kRestrict:
      return "Restrict [" + node.pred()->ToString(catalog) + "]";
    case OpKind::kProject: {
      std::string cols;
      for (size_t i = 0; i < node.project_cols().size(); ++i) {
        if (i > 0) cols += ", ";
        cols += catalog->AttrName(node.project_cols()[i]);
      }
      return std::string("Project") + (node.project_dedup() ? " distinct" : "") +
             " [" + cols + "]";
    }
    case OpKind::kUnion:
      return "Union (padded)";
    case OpKind::kMultiwayJoin: {
      std::string label = "MultiwayJoin (leapfrog) [vars:";
      for (size_t i = 0; i < node.mj_var_order().size(); ++i) {
        label += i > 0 ? ", " : " ";
        label += catalog->AttrName(node.mj_var_order()[i]);
      }
      label += "]";
      if (with_pred && node.pred() != nullptr) {
        label += " [" + node.pred()->ToString(catalog) + "]";
      }
      return label;
    }
    default: {
      std::string label = OpKindName(node.kind());
      if (node.kind() == OpKind::kOuterJoin) {
        label += node.preserves_left() ? " (preserves left)"
                                       : " (preserves right)";
      } else if (node.kind() == OpKind::kAntijoin ||
                 node.kind() == OpKind::kSemijoin) {
        label += node.preserves_left() ? " (keeps left)" : " (keeps right)";
      } else if (node.kind() == OpKind::kGoj) {
        label += " [S = {";
        for (size_t i = 0; i < node.goj_subset().size(); ++i) {
          if (i > 0) label += ", ";
          label += catalog->AttrName(node.goj_subset().ids()[i]);
        }
        label += "}]";
      }
      if (with_pred && node.pred() != nullptr) {
        label += " [" + node.pred()->ToString(catalog) + "]";
      }
      return label;
    }
  }
}

void ExplainNode(const ExprPtr& node, const Database& db,
                 const CardinalityEstimator& estimator,
                 const ExplainOptions& options, int depth,
                 std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(NodeLabel(*node, db, options.show_predicates));
  if (options.show_cardinalities) {
    out->append(StrFormat("  ~%.6g rows", estimator.Estimate(node)));
  }
  out->append("\n");
  if (node->left() != nullptr) {
    ExplainNode(node->left(), db, estimator, options, depth + 1, out);
  }
  if (node->right() != nullptr) {
    ExplainNode(node->right(), db, estimator, options, depth + 1, out);
  }
  for (const ExprPtr& child : node->mj_children()) {
    ExplainNode(child, db, estimator, options, depth + 1, out);
  }
}

void CollectDotNodes(const ExprPtr& node, const Database& db, int* counter,
                     std::string* out, int* my_id) {
  *my_id = (*counter)++;
  std::string label = NodeLabel(*node, db, /*with_pred=*/true);
  // Escape double quotes for DOT.
  std::string escaped;
  for (char c : label) {
    if (c == '"') escaped += "\\\"";
    else escaped += c;
  }
  out->append(StrFormat("  n%d [label=\"%s\"];\n", *my_id, escaped.c_str()));
  if (node->left() != nullptr) {
    int child;
    CollectDotNodes(node->left(), db, counter, out, &child);
    out->append(StrFormat("  n%d -> n%d;\n", *my_id, child));
  }
  if (node->right() != nullptr) {
    int child;
    CollectDotNodes(node->right(), db, counter, out, &child);
    out->append(StrFormat("  n%d -> n%d;\n", *my_id, child));
  }
  for (const ExprPtr& mj_child : node->mj_children()) {
    int child;
    CollectDotNodes(mj_child, db, counter, out, &child);
    out->append(StrFormat("  n%d -> n%d;\n", *my_id, child));
  }
}

void RenderAnalyzeNode(const PlanOpStats& node, const Database& db,
                       const CardinalityEstimator& estimator, int depth,
                       ExplainAnalyzeResult* result) {
  const ExecStats& s = node.stats;
  std::string line(static_cast<size_t>(depth) * 2, ' ');
  line += node.physical_name;
  if (node.source_expr != nullptr) {
    line += ": " + NodeLabel(*node.source_expr, db, /*with_pred=*/true);
    const double est = estimator.Estimate(node.source_expr);
    const double q = QError(est, static_cast<double>(s.emitted));
    result->max_q_error = std::max(result->max_q_error, q);
    line += StrFormat("  ~%.6g rows", est);
    if (estimator.IsCorrected(node.source_expr)) {
      line += " [feedback-corrected]";
    }
    line += StrFormat(
        "  (actual rows=%llu reads=%llu evals=%llu probes=%llu "
        "time=%.3fms q-err=%.2f)",
        static_cast<unsigned long long>(s.emitted),
        static_cast<unsigned long long>(s.tuples_read()),
        static_cast<unsigned long long>(s.predicate_evals),
        static_cast<unsigned long long>(s.probes),
        static_cast<double>(s.open_ns + s.next_ns) / 1e6, q);
  }
  line += "\n";
  result->text += line;

  for (const PlanOpStats& child : node.children) {
    RenderAnalyzeNode(child, db, estimator, depth + 1, result);
  }
}

}  // namespace

ExplainAnalyzeResult ExplainAnalyze(const ExprPtr& expr, const Database& db,
                                    JoinAlgo algo, ExecEngine engine,
                                    int threads,
                                    const CardinalityFeedback* feedback) {
  CardinalityEstimator estimator(db);
  estimator.set_feedback(feedback);
  ExplainAnalyzeResult result;
  PlanOpStats snapshot;
  if (engine == ExecEngine::kTuple) {
    IteratorPtr root = BuildIterator(expr, db, algo);
    root->EnableTiming();
    result.result = Drain(root.get());
    snapshot = SnapshotPlanStats(root.get());
  } else {
    ParallelOptions par;
    par.threads = threads;
    par.algo = algo;
    BatchIteratorPtr root = BuildParallelBatchIterator(expr, db, par);
    root->EnableTiming();
    result.result = DrainBatches(root.get());
    snapshot = SnapshotPlanStats(root.get());
  }
  result.totals = SumPipelineStats(snapshot);
  result.base_tuples_read = BaseTuplesRead(snapshot);
  RenderAnalyzeNode(snapshot, db, estimator, 0, &result);
  return result;
}

std::string Explain(const ExprPtr& expr, const Database& db,
                    const ExplainOptions& options) {
  CardinalityEstimator estimator(db);
  std::string out;
  ExplainNode(expr, db, estimator, options, 0, &out);
  return out;
}

std::string ExprToDot(const ExprPtr& expr, const Database& db) {
  std::string out = "digraph plan {\n  node [shape=box];\n";
  int counter = 0;
  int root;
  CollectDotNodes(expr, db, &counter, &out, &root);
  out += "}\n";
  return out;
}

std::string GraphToDot(const QueryGraph& graph, const Database& db) {
  const Catalog& catalog = db.catalog();
  // Mixed digraph: join edges rendered without arrowheads.
  std::string out = "digraph query_graph {\n  node [shape=ellipse];\n";
  for (int i = 0; i < graph.num_nodes(); ++i) {
    out += StrFormat("  n%d [label=\"%s\"];\n", i,
                     catalog.RelationName(graph.node_rel(i)).c_str());
  }
  for (const GraphEdge& e : graph.edges()) {
    std::string label = e.pred != nullptr ? e.pred->ToString(&catalog) : "";
    std::string escaped;
    for (char c : label) {
      if (c == '"') escaped += "\\\"";
      else escaped += c;
    }
    if (e.directed) {
      out += StrFormat("  n%d -> n%d [label=\"%s\"];\n", e.u, e.v,
                       escaped.c_str());
    } else {
      out += StrFormat("  n%d -> n%d [label=\"%s\", dir=none];\n", e.u, e.v,
                       escaped.c_str());
    }
  }
  out += "}\n";
  return out;
}

}  // namespace fro
