// The optimizer's view of a plan cache.
//
// Theorem 1 makes plan caching sound for the freely-reorderable class:
// for a nice query graph with strong outerjoin predicates, *every*
// implementing tree evaluates to the same relation, so an optimized tree
// cached under the canonical query's structural hash (algebra/expr.h,
// PR 2's hash-consing) can be replayed verbatim for any structurally
// identical query — including alias-renamed copies, whose flattened
// relations and attributes receive the same ids in the same order. For
// queries outside the class the cache stores the plan the full pipeline
// produced (simplification + Section 6.1 subquery reordering + GOJ
// left-deepening); the rewrite metadata rides along so observability
// tools can distinguish the two populations.
//
// The optimizer only consumes this interface; the concrete thread-safe
// LRU lives in server/plan_cache.h so the optimizer keeps zero
// serving-layer dependencies.

#ifndef FRO_OPTIMIZER_PLAN_CACHE_H_
#define FRO_OPTIMIZER_PLAN_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "algebra/expr.h"

namespace fro {

/// How a cached plan was obtained — mirrors the optimizer's branches.
enum class PlanClass : uint8_t {
  /// Theorem 1 held: nice graph, strong predicates; any implementing
  /// tree is result-identical, reuse is unconditionally sound.
  kFreelyReorderable,
  /// Outside the class: the plan embeds GOJ rewrites / kept association.
  kGojRewritten,
};

const char* PlanClassName(PlanClass plan_class);

/// One cached optimization outcome. Everything needed to skip the search
/// and go straight to execution.
struct CachedPlan {
  ExprPtr plan;
  PlanClass plan_class = PlanClass::kFreelyReorderable;
  double cost = 0;
  int goj_rewrites = 0;
  std::string notes;
};

/// Abstract cache handle. Implementations must be safe for concurrent
/// Lookup/Insert from multiple optimizer callers (the serving worker
/// pool); the single-threaded paths may pass nullptr everywhere.
class PlanCacheInterface {
 public:
  virtual ~PlanCacheInterface() = default;

  /// The cached plan under `key` (a canonical query's Expr::hash()), or
  /// nullopt. Implementations should treat a hit as a recency touch.
  virtual std::optional<CachedPlan> Lookup(uint64_t key) = 0;

  /// Stores `plan` under `key`, evicting as capacity demands.
  virtual void Insert(uint64_t key, CachedPlan plan) = 0;
};

}  // namespace fro

#endif  // FRO_OPTIMIZER_PLAN_CACHE_H_
