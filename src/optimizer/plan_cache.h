// The optimizer's view of a plan cache.
//
// Theorem 1 makes plan caching sound for the freely-reorderable class:
// for a nice query graph with strong outerjoin predicates, *every*
// implementing tree evaluates to the same relation, so an optimized tree
// cached under the canonical query's structural hash (algebra/expr.h,
// PR 2's hash-consing) can be replayed verbatim for any structurally
// identical query — including alias-renamed copies, whose flattened
// relations and attributes receive the same ids in the same order. For
// queries outside the class the cache stores the plan the full rewrite
// pipeline produced (simplification + Section 6.1 subquery reordering +
// GOJ left-deepening + structural rewrites); the pipeline summary rides
// along so observability tools can distinguish the two populations.
//
// This header is the single plan-cache surface: the abstract interface
// the optimizer consumes, the thread-safe LRU realization every caller
// shares (server sessions, fro_shell, lang::RunOptions), and the one
// PlanCacheStats struct that `fro_shell \cachestats` and the server's
// STATS verb both render. It depends on nothing from the serving layer.

#ifndef FRO_OPTIMIZER_PLAN_CACHE_H_
#define FRO_OPTIMIZER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "algebra/expr.h"
#include "optimizer/feedback.h"

namespace fro {

/// How a cached plan was obtained — mirrors the optimizer's branches.
enum class PlanClass : uint8_t {
  /// Theorem 1 held: nice graph, strong predicates; any implementing
  /// tree is result-identical, reuse is unconditionally sound.
  kFreelyReorderable,
  /// Outside the class: the plan embeds GOJ rewrites / kept association.
  kGojRewritten,
};

const char* PlanClassName(PlanClass plan_class);

/// One cached optimization outcome. Everything needed to skip the search
/// and go straight to execution.
struct CachedPlan {
  ExprPtr plan;
  PlanClass plan_class = PlanClass::kFreelyReorderable;
  double cost = 0;
  /// Pipeline summary (OptimizeOutcome::Summary()) of the original run.
  std::string notes;
  /// Per-node estimates the plan was chosen with (feedback included) —
  /// the yardstick post-execution Q-error is measured against
  /// (optimizer/feedback.h explains why that makes re-planning converge).
  OpEstimates op_estimates;
  /// DatabaseGenerationStamp at optimization time; a mismatching lookup
  /// invalidates the entry (the data the plan was costed on is gone).
  uint64_t db_generation = 0;
};

/// Abstract cache handle. Implementations must be safe for concurrent
/// Lookup/Insert from multiple optimizer callers (the serving worker
/// pool); the single-threaded paths may pass nullptr everywhere.
class PlanCacheInterface {
 public:
  virtual ~PlanCacheInterface() = default;

  /// The cached plan under `key` (a canonical query's Expr::hash()), or
  /// nullopt. Implementations should treat a hit as a recency touch.
  virtual std::optional<CachedPlan> Lookup(uint64_t key) = 0;

  /// Stores `plan` under `key`, evicting as capacity demands.
  virtual void Insert(uint64_t key, CachedPlan plan) = 0;

  /// Lookup extended with the re-planning protocol the optimizer speaks:
  ///  * an entry stamped with a different database generation is
  ///    invalidated — the lookup misses and the caller re-optimizes;
  ///  * a stale entry (running Q-error past the threshold) grants
  ///    exactly ONE caller a re-plan claim: `*replan_claimed` is set and
  ///    the lookup misses so the claimant re-optimizes with feedback,
  ///    while concurrent callers keep being served the old — still
  ///    sound, merely mispriced — plan until the claimant's Insert
  ///    replaces it. No execution ever blocks on re-planning.
  /// Default: plain Lookup (implementations without staleness tracking).
  virtual std::optional<CachedPlan> LookupForPlanning(
      uint64_t key, uint64_t db_generation, bool* replan_claimed) {
    (void)db_generation;
    if (replan_claimed != nullptr) *replan_claimed = false;
    return Lookup(key);
  }

  /// Feeds one execution's worst per-operator Q-error back to the entry
  /// under `key` (see optimizer/feedback.h). Default: no-op.
  virtual void RecordExecution(uint64_t key, double q_error) {
    (void)key;
    (void)q_error;
  }
};

/// Point-in-time counters of an LruPlanCache.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t size = 0;
  size_t capacity = 0;
  /// Entries currently marked stale (awaiting a re-plan claim).
  size_t stale_entries = 0;
  /// Entries whose running Q-error ever crossed the threshold.
  uint64_t stale_marks = 0;
  /// Re-plan claims granted (each produces one feedback-corrected
  /// re-optimization).
  uint64_t replans = 0;
  /// Entries dropped because the database generation moved on.
  uint64_t invalidations = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }

  std::string ToString() const;
};

/// Thread-safe LRU realization of PlanCacheInterface: a mutex-guarded
/// map keyed on uint64 plan hashes. A hit means "this exact query shape
/// was optimized before" — and by Theorem 1 replaying the cached
/// implementing tree is sound. Recency is maintained on Lookup and
/// Insert; capacity overflows evict the least recently used entry;
/// counters are cumulative for the cache's lifetime. `capacity == 0`
/// disables caching entirely (every Lookup misses, Inserts are dropped) —
/// the serving layer's "cache off" mode for A/B benchmarking.
class LruPlanCache : public PlanCacheInterface {
 public:
  /// Entries whose running Q-error (EWMA over RecordExecution calls)
  /// exceeds `q_error_threshold` are marked stale; the next
  /// LookupForPlanning grants one re-plan claim. The default tolerates
  /// estimates off by 4x either way before paying a re-optimization.
  explicit LruPlanCache(size_t capacity, double q_error_threshold = 4.0)
      : capacity_(capacity), q_error_threshold_(q_error_threshold) {}

  std::optional<CachedPlan> Lookup(uint64_t key) override;
  void Insert(uint64_t key, CachedPlan plan) override;
  std::optional<CachedPlan> LookupForPlanning(uint64_t key,
                                              uint64_t db_generation,
                                              bool* replan_claimed) override;
  void RecordExecution(uint64_t key, double q_error) override;

  /// The entry's running Q-error, or nullopt when absent / never
  /// executed. Observability (tests, \cachestats).
  std::optional<double> RunningQError(uint64_t key) const;

  /// Drops every entry; counters are kept.
  void Clear();

  PlanCacheStats stats() const;

 private:
  struct Entry {
    uint64_t key;
    CachedPlan plan;
    /// Running Q-error of executions under this plan (EWMA, alpha 0.5).
    double q_error = 0;
    uint64_t executions = 0;
    /// Past the threshold; the next planning lookup may claim a re-plan.
    bool stale = false;
    /// A claim is out: suppress further claims until Insert resolves it.
    bool replanning = false;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  double q_error_threshold_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
  uint64_t stale_marks_ = 0;
  uint64_t replans_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace fro

#endif  // FRO_OPTIMIZER_PLAN_CACHE_H_
