// The optimizer's view of a plan cache.
//
// Theorem 1 makes plan caching sound for the freely-reorderable class:
// for a nice query graph with strong outerjoin predicates, *every*
// implementing tree evaluates to the same relation, so an optimized tree
// cached under the canonical query's structural hash (algebra/expr.h,
// PR 2's hash-consing) can be replayed verbatim for any structurally
// identical query — including alias-renamed copies, whose flattened
// relations and attributes receive the same ids in the same order. For
// queries outside the class the cache stores the plan the full rewrite
// pipeline produced (simplification + Section 6.1 subquery reordering +
// GOJ left-deepening + structural rewrites); the pipeline summary rides
// along so observability tools can distinguish the two populations.
//
// This header is the single plan-cache surface: the abstract interface
// the optimizer consumes, the thread-safe LRU realization every caller
// shares (server sessions, fro_shell, lang::RunOptions), and the one
// PlanCacheStats struct that `fro_shell \cachestats` and the server's
// STATS verb both render. It depends on nothing from the serving layer.

#ifndef FRO_OPTIMIZER_PLAN_CACHE_H_
#define FRO_OPTIMIZER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "algebra/expr.h"

namespace fro {

/// How a cached plan was obtained — mirrors the optimizer's branches.
enum class PlanClass : uint8_t {
  /// Theorem 1 held: nice graph, strong predicates; any implementing
  /// tree is result-identical, reuse is unconditionally sound.
  kFreelyReorderable,
  /// Outside the class: the plan embeds GOJ rewrites / kept association.
  kGojRewritten,
};

const char* PlanClassName(PlanClass plan_class);

/// One cached optimization outcome. Everything needed to skip the search
/// and go straight to execution.
struct CachedPlan {
  ExprPtr plan;
  PlanClass plan_class = PlanClass::kFreelyReorderable;
  double cost = 0;
  /// Pipeline summary (OptimizeOutcome::Summary()) of the original run.
  std::string notes;
};

/// Abstract cache handle. Implementations must be safe for concurrent
/// Lookup/Insert from multiple optimizer callers (the serving worker
/// pool); the single-threaded paths may pass nullptr everywhere.
class PlanCacheInterface {
 public:
  virtual ~PlanCacheInterface() = default;

  /// The cached plan under `key` (a canonical query's Expr::hash()), or
  /// nullopt. Implementations should treat a hit as a recency touch.
  virtual std::optional<CachedPlan> Lookup(uint64_t key) = 0;

  /// Stores `plan` under `key`, evicting as capacity demands.
  virtual void Insert(uint64_t key, CachedPlan plan) = 0;
};

/// Point-in-time counters of an LruPlanCache.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t size = 0;
  size_t capacity = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }

  std::string ToString() const;
};

/// Thread-safe LRU realization of PlanCacheInterface: a mutex-guarded
/// map keyed on uint64 plan hashes. A hit means "this exact query shape
/// was optimized before" — and by Theorem 1 replaying the cached
/// implementing tree is sound. Recency is maintained on Lookup and
/// Insert; capacity overflows evict the least recently used entry;
/// counters are cumulative for the cache's lifetime. `capacity == 0`
/// disables caching entirely (every Lookup misses, Inserts are dropped) —
/// the serving layer's "cache off" mode for A/B benchmarking.
class LruPlanCache : public PlanCacheInterface {
 public:
  explicit LruPlanCache(size_t capacity) : capacity_(capacity) {}

  std::optional<CachedPlan> Lookup(uint64_t key) override;
  void Insert(uint64_t key, CachedPlan plan) override;

  /// Drops every entry; counters are kept.
  void Clear();

  PlanCacheStats stats() const;

 private:
  struct Entry {
    uint64_t key;
    CachedPlan plan;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace fro

#endif  // FRO_OPTIMIZER_PLAN_CACHE_H_
