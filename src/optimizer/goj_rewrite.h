// Generalized-outerjoin rewrites (paper Section 6.2, identities 15-16).
//
// These rewrites reassociate queries that are NOT freely reorderable —
// e.g. Example 2's X -> (Y - Z) — into left-deep pipelines by introducing
// GOJ operators:
//
//   identity 15:  X OJ (Y JN Z)    =  (X OJ Y) GOJ[sch(X)] Z
//   identity 16:  X JN (Y GOJ[S] Z) = (X JN Y) GOJ[S u sch(X)] Z,
//                 if S is a subset of sch(Y) containing all X-Y join
//                 attributes.
//
// Preconditions (from the paper): relations are duplicate free, predicates
// are strong, and each predicate is of the form P_xy / P_yz (references
// exactly the adjacent pair).
//
// Duplicate-freeness matters for bag results: a GOJ pads one row per
// *distinct* S-projection (eq. 14) while an outerjoin pads per *row*, so
// identity 15 changes multiplicities as soon as a preserved-side row is
// duplicated. The optimizer checks BaseRelationsDuplicateFree before
// applying these rewrites (a divergence the fuzzing harness finds within
// seconds if the gate is removed).

#ifndef FRO_OPTIMIZER_GOJ_REWRITE_H_
#define FRO_OPTIMIZER_GOJ_REWRITE_H_

#include "algebra/expr.h"
#include "common/status.h"
#include "relational/database.h"

namespace fro {

/// Applies identity 15 at the root. Fails if the root is not
/// `X -> (Y - Z)` with P_oj referencing only X and Y.
Result<ExprPtr> ApplyIdentity15(const ExprPtr& expr);

/// Applies identity 16 at the root. Fails if the root is not
/// `X - (Y GOJ[S] Z)` with the stated subset conditions.
Result<ExprPtr> ApplyIdentity16(const ExprPtr& expr);

/// Repeatedly applies identities 15/16 top-down to turn a right-deep
/// join/outerjoin spine into a left-deep chain ending in GOJ operators.
/// Returns the rewritten tree; `rewrites` (if non-null) counts
/// applications.
ExprPtr LeftDeepenWithGoj(const ExprPtr& expr, int* rewrites);

/// True when every base relation mentioned by `query` is duplicate-free —
/// the precondition under which identities 15/16 preserve bag results.
bool BaseRelationsDuplicateFree(const ExprPtr& query, const Database& db);

}  // namespace fro

#endif  // FRO_OPTIMIZER_GOJ_REWRITE_H_
