// Shared machinery for structural rewrites over pure-join regions.
//
// Both the WCOJ rewrite (cyclic cores -> kMultiwayJoin) and the acyclic
// rewrite (GYO-acyclic regions -> Yannakakis semijoin programs) work on
// the same unit: a maximal region of kJoin nodes, flattened into its
// frontier operands and the conjuncts of every join predicate inside.
// This header holds the flattening, the structural walk that visits
// every region of a plan bottom-up, and the left-deep reassembly used
// when a rewrite replaces part of a region.

#ifndef FRO_OPTIMIZER_JOIN_REGION_H_
#define FRO_OPTIMIZER_JOIN_REGION_H_

#include <functional>
#include <vector>

#include "algebra/expr.h"

namespace fro {

/// Flattens the maximal pure-kJoin region rooted at `expr` into its
/// frontier operands (non-kJoin subtrees, left-to-right) and the
/// conjuncts of every join predicate in the region.
void CollectJoinRegion(const ExprPtr& expr, std::vector<ExprPtr>* operands,
                       std::vector<PredicatePtr>* conjuncts);

/// Conjunction of `conjuncts` (null when empty).
PredicatePtr FoldAnd(const std::vector<PredicatePtr>& conjuncts);

/// Left-deep join over `items` applying each of `conjuncts` at the first
/// join where its references are available; anything never applicable
/// (cannot happen for region-local conjuncts, kept as a safety net)
/// lands in a top Restrict.
ExprPtr LeftDeepJoin(std::vector<ExprPtr> items,
                     std::vector<PredicatePtr> conjuncts);

/// Rebuilds the region's original join shape with operands substituted
/// (in frontier order, `*next` advancing through `operands`).
/// Hash-consing makes this free when nothing changed: identical operands
/// intern back to the original node.
ExprPtr RebuildSameShape(const ExprPtr& expr,
                         const std::vector<ExprPtr>& operands, size_t* next);

/// Maps `rewrite` over every maximal join region of `expr`, bottom-up:
/// operands are rewritten before the region that contains them. The
/// callback receives the region root (for RebuildSameShape), the
/// already-rewritten frontier operands, and the region's conjuncts, and
/// returns the replacement region expression. Non-join operators are
/// rebuilt around the results unchanged.
using JoinRegionRewrite = std::function<ExprPtr(
    const ExprPtr& region_root, const std::vector<ExprPtr>& operands,
    const std::vector<PredicatePtr>& conjuncts)>;
ExprPtr MapJoinRegions(const ExprPtr& expr, const JoinRegionRewrite& rewrite);

}  // namespace fro

#endif  // FRO_OPTIMIZER_JOIN_REGION_H_
