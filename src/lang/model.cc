#include "lang/model.h"

#include "common/check.h"

namespace fro {

int EntityType::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status NestedDb::DefineType(const std::string& name,
                            std::vector<FieldDef> fields) {
  if (type_index_.count(name) > 0) {
    return InvalidArgument("entity type already defined: " + name);
  }
  type_index_.emplace(name, types_.size());
  types_.emplace_back(name, std::move(fields));
  rows_.emplace_back();
  return Status::Ok();
}

const EntityType* NestedDb::FindType(const std::string& name) const {
  auto it = type_index_.find(name);
  return it == type_index_.end() ? nullptr : &types_[it->second];
}

Result<int64_t> NestedDb::AddEntity(const std::string& type_name,
                                    std::vector<FieldValue> fields) {
  auto it = type_index_.find(type_name);
  if (it == type_index_.end()) {
    return NotFound("entity type " + type_name);
  }
  const EntityType& type = types_[it->second];
  if (fields.size() != type.fields().size()) {
    return InvalidArgument("field count mismatch for " + type_name);
  }
  EntityRow row;
  row.oid = next_oid_++;
  row.fields = std::move(fields);
  rows_[it->second].push_back(std::move(row));
  return rows_[it->second].back().oid;
}

const std::vector<EntityRow>& NestedDb::Rows(
    const std::string& type_name) const {
  auto it = type_index_.find(type_name);
  FRO_CHECK(it != type_index_.end()) << "unknown entity type " << type_name;
  return rows_[it->second];
}

}  // namespace fro
