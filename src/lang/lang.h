// One-call facade for the Section 5 language: parse, translate, verify
// free reorderability, optimize, execute.
//
// Execution goes through the pipelined executor (batch engine by
// default) and drains through the Status-carrying DrainChecked surface,
// so a cancelled or deadline-exceeded run comes back as an error Status
// instead of a silently truncated relation.

#ifndef FRO_LANG_LANG_H_
#define FRO_LANG_LANG_H_

#include <chrono>
#include <optional>
#include <string>

#include "exec/batch.h"
#include "exec/iterator.h"
#include "exec/stats_view.h"
#include "lang/ast.h"
#include "lang/model.h"
#include "lang/translate.h"
#include "optimizer/feedback.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_cache.h"
#include "relational/ops.h"
#include "relational/relation.h"

namespace fro {

struct QueryRunResult {
  /// The flattened result relation.
  Relation relation;
  /// The translation artifacts (flattened database, graph, audit).
  TranslationResult translation;
  /// The optimizer's outcome (plan actually executed).
  OptimizeOutcome optimize;
  /// Per-operator execution counters of the pipeline that produced
  /// `relation`, engine-agnostic (see exec/stats_view.h). Consumers sum
  /// or roll these up without caring which engine ran.
  PlanOpStats plan_stats;
  /// The engine that executed the plan.
  ExecEngine engine = ExecEngine::kBatch;
  /// Worst per-operator Q-error of this execution against the estimates
  /// the plan was chosen with; 1.0 when no feedback store was attached
  /// (nothing measured).
  double max_q_error = 1.0;
};

/// Execution options shared by every run surface: lang::RunQuery,
/// prepared-AST replay (RunParsedQuery), and the server's per-request
/// path all consume this one struct, so deadline, cache, and engine
/// choice are set in exactly one place. Builder-style: construct, then
/// chain WithX() setters —
///
///   RunQuery(db, text, RunOptions()
///                          .WithPlanCache(&cache)
///                          .WithDeadline(std::chrono::milliseconds(50)));
struct RunOptions {
  /// Reorder via the DP optimizer; with false the translator's
  /// implementing tree is executed as is.
  bool optimize = true;
  CostKind cost_kind = CostKind::kCout;
  /// Optional plan cache threaded through to Optimize (keyed on the
  /// translated query's structural hash; see optimizer/plan_cache.h).
  /// Not owned. With caching, OptimizeOutcome::cache_hit reports reuse.
  PlanCacheInterface* plan_cache = nullptr;
  /// Which executor runs the plan. The engines agree on results and
  /// counters; batch is faster and the default.
  ExecEngine engine = ExecEngine::kBatch;
  /// Physical join strategy constraint passed to the plan builder.
  JoinAlgo join_algo = JoinAlgo::kAuto;
  /// Batch-engine worker threads for morsel-driven intra-query
  /// parallelism (exec/morsel.h); <= 1 executes the ordinary serial
  /// plan, bit-identical to the single-threaded engine. Ignored by the
  /// tuple engine.
  int threads = 1;
  /// Optional cooperative interrupt, e.g. the server's per-request cancel
  /// handle. Not owned; must outlive the run. When null and a deadline is
  /// set, the run uses an internal control.
  ExecControl* control = nullptr;
  /// Optional wall-clock budget for execution, armed on `control` (or on
  /// an internal control) when the run starts. Exceeding it surfaces as
  /// StatusCode::kDeadlineExceeded.
  std::optional<std::chrono::milliseconds> deadline;
  /// Optional cardinality-feedback store (optimizer/feedback.h). When
  /// set, each run plans against a snapshot of its corrections, then
  /// feeds its own measured per-operator cardinalities back — and, with
  /// `plan_cache` also set, reports the execution's Q-error so stale
  /// entries get re-planned. Not owned; must be thread-safe if runs are
  /// concurrent (FeedbackStore is).
  FeedbackStore* feedback = nullptr;

  RunOptions& WithOptimize(bool on) {
    optimize = on;
    return *this;
  }
  RunOptions& WithCostKind(CostKind kind) {
    cost_kind = kind;
    return *this;
  }
  RunOptions& WithPlanCache(PlanCacheInterface* cache) {
    plan_cache = cache;
    return *this;
  }
  RunOptions& WithEngine(ExecEngine e) {
    engine = e;
    return *this;
  }
  RunOptions& WithJoinAlgo(JoinAlgo algo) {
    join_algo = algo;
    return *this;
  }
  RunOptions& WithThreads(int n) {
    threads = n;
    return *this;
  }
  RunOptions& WithControl(ExecControl* c) {
    control = c;
    return *this;
  }
  RunOptions& WithDeadline(std::chrono::milliseconds budget) {
    deadline = budget;
    return *this;
  }
  RunOptions& WithFeedback(FeedbackStore* store) {
    feedback = store;
    return *this;
  }
};

/// Parses and runs `query_text` against `nested`. Fails on syntax errors,
/// unknown types/fields, or disconnected From lists — and, through the
/// DrainChecked execution surface, on cancellation (kCancelled) or an
/// exceeded deadline (kDeadlineExceeded).
Result<QueryRunResult> RunQuery(const NestedDb& nested,
                                const std::string& query_text,
                                const RunOptions& options = RunOptions());

/// Runs an already-parsed query: the translate/optimize/execute tail of
/// RunQuery. Lets a serving layer parse once and replay the AST across
/// EXPLAIN / ANALYZE / execute without re-lexing the text.
Result<QueryRunResult> RunParsedQuery(const NestedDb& nested,
                                      const SelectQuery& ast,
                                      const RunOptions& options =
                                          RunOptions());

}  // namespace fro

#endif  // FRO_LANG_LANG_H_
