// One-call facade for the Section 5 language: parse, translate, verify
// free reorderability, optimize, evaluate.

#ifndef FRO_LANG_LANG_H_
#define FRO_LANG_LANG_H_

#include <string>

#include "lang/model.h"
#include "lang/translate.h"
#include "optimizer/optimizer.h"
#include "relational/relation.h"

namespace fro {

struct QueryRunResult {
  /// The flattened result relation.
  Relation relation;
  /// The translation artifacts (flattened database, graph, audit).
  TranslationResult translation;
  /// The optimizer's outcome (plan actually executed).
  OptimizeOutcome optimize;
};

struct RunOptions {
  /// Reorder via the DP optimizer; with false the translator's
  /// implementing tree is executed as is.
  bool optimize = true;
  CostKind cost_kind = CostKind::kCout;
};

/// Parses and runs `query_text` against `nested`. Fails on syntax errors,
/// unknown types/fields, or disconnected From lists.
Result<QueryRunResult> RunQuery(const NestedDb& nested,
                                const std::string& query_text,
                                const RunOptions& options = RunOptions());

}  // namespace fro

#endif  // FRO_LANG_LANG_H_
