// One-call facade for the Section 5 language: parse, translate, verify
// free reorderability, optimize, evaluate.

#ifndef FRO_LANG_LANG_H_
#define FRO_LANG_LANG_H_

#include <string>

#include "lang/ast.h"
#include "lang/model.h"
#include "lang/translate.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_cache.h"
#include "relational/relation.h"

namespace fro {

struct QueryRunResult {
  /// The flattened result relation.
  Relation relation;
  /// The translation artifacts (flattened database, graph, audit).
  TranslationResult translation;
  /// The optimizer's outcome (plan actually executed).
  OptimizeOutcome optimize;
};

struct RunOptions {
  /// Reorder via the DP optimizer; with false the translator's
  /// implementing tree is executed as is.
  bool optimize = true;
  CostKind cost_kind = CostKind::kCout;
  /// Optional plan cache threaded through to Optimize (keyed on the
  /// translated query's structural hash; see optimizer/plan_cache.h).
  /// Not owned. With caching, OptimizeOutcome::cache_hit reports reuse.
  PlanCacheInterface* plan_cache = nullptr;
};

/// Parses and runs `query_text` against `nested`. Fails on syntax errors,
/// unknown types/fields, or disconnected From lists.
Result<QueryRunResult> RunQuery(const NestedDb& nested,
                                const std::string& query_text,
                                const RunOptions& options = RunOptions());

/// Runs an already-parsed query: the translate/optimize/execute tail of
/// RunQuery. Lets a serving layer parse once and replay the AST across
/// EXPLAIN / ANALYZE / execute without re-lexing the text.
Result<QueryRunResult> RunParsedQuery(const NestedDb& nested,
                                      const SelectQuery& ast,
                                      const RunOptions& options =
                                          RunOptions());

}  // namespace fro

#endif  // FRO_LANG_LANG_H_
