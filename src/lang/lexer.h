// Tokenizer for the Section 5 query language.

#ifndef FRO_LANG_LEXER_H_
#define FRO_LANG_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace fro {

struct Token {
  enum class Kind : uint8_t {
    kIdent,    // identifiers and keywords (keywords resolved by parser)
    kNumber,   // integer or decimal literal
    kString,   // 'quoted'
    kStar,     // *
    kArrow,    // -> or -->
    kComma,    // ,
    kDot,      // .
    kEq,       // =
    kNe,       // <>
    kLt,       // <
    kLe,       // <=
    kGt,       // >
    kGe,       // >=
    kEnd,
  };
  Kind kind;
  std::string text;  // raw text (identifier name, number, string body)
  size_t offset;     // position in the input, for error messages
};

/// Splits `input` into tokens; the last token is always kEnd. Identifiers
/// may contain letters, digits, `_`, `#`, and `@` (the paper uses names
/// like `D#`).
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace fro

#endif  // FRO_LANG_LEXER_H_
