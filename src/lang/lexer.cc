#include "lang/lexer.h"

#include <cctype>

namespace fro {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '#' || c == '@';
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(input[j])) ++j;
      out.push_back({Token::Kind::kIdent, input.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i + 1;
      bool saw_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       (!saw_dot && input[j] == '.' && j + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(
                            input[j + 1]))))) {
        if (input[j] == '.') saw_dot = true;
        ++j;
      }
      out.push_back({Token::Kind::kNumber, input.substr(i, j - i), start});
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && input[j] != '\'') ++j;
      if (j == n) {
        return InvalidArgument("unterminated string literal at offset " +
                               std::to_string(start));
      }
      out.push_back(
          {Token::Kind::kString, input.substr(i + 1, j - i - 1), start});
      i = j + 1;
      continue;
    }
    switch (c) {
      case '*':
        out.push_back({Token::Kind::kStar, "*", start});
        ++i;
        continue;
      case ',':
        out.push_back({Token::Kind::kComma, ",", start});
        ++i;
        continue;
      case '.':
        out.push_back({Token::Kind::kDot, ".", start});
        ++i;
        continue;
      case '=':
        out.push_back({Token::Kind::kEq, "=", start});
        ++i;
        continue;
      case '-': {
        // `->` or `-->`.
        size_t j = i + 1;
        while (j < n && input[j] == '-') ++j;
        if (j < n && input[j] == '>') {
          out.push_back({Token::Kind::kArrow, input.substr(i, j - i + 1),
                         start});
          i = j + 1;
          continue;
        }
        return InvalidArgument("stray '-' at offset " +
                               std::to_string(start));
      }
      case '<':
        if (i + 1 < n && input[i + 1] == '>') {
          out.push_back({Token::Kind::kNe, "<>", start});
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '=') {
          out.push_back({Token::Kind::kLe, "<=", start});
          i += 2;
        } else {
          out.push_back({Token::Kind::kLt, "<", start});
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          out.push_back({Token::Kind::kGe, ">=", start});
          i += 2;
        } else {
          out.push_back({Token::Kind::kGt, ">", start});
          ++i;
        }
        continue;
      default:
        return InvalidArgument(std::string("unexpected character '") + c +
                               "' at offset " + std::to_string(start));
    }
  }
  out.push_back({Token::Kind::kEnd, "", n});
  return out;
}

}  // namespace fro
