#include "lang/parser.h"

#include <algorithm>
#include <cctype>

#include "lang/lexer.h"

namespace fro {

namespace {

std::string Upper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectQuery> Parse() {
    SelectQuery query;
    FRO_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (IsKeyword(Peek(), "ALL")) {
      Advance();
    } else {
      // An explicit projection list of qualified columns.
      for (;;) {
        FRO_ASSIGN_OR_RETURN(WhereOperand column, ParseOperand());
        if (!column.is_column) {
          return Err("the Select list takes column references");
        }
        query.select_columns.push_back(std::move(column));
        if (Peek().kind != Token::Kind::kComma) break;
        Advance();
      }
    }
    FRO_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    for (;;) {
      FRO_ASSIGN_OR_RETURN(FromItem item, ParseFromItem());
      query.from.push_back(std::move(item));
      if (Peek().kind != Token::Kind::kComma) break;
      Advance();
    }
    if (IsKeyword(Peek(), "WHERE")) {
      Advance();
      for (;;) {
        FRO_ASSIGN_OR_RETURN(WhereComparison cmp, ParseComparison());
        query.where.push_back(std::move(cmp));
        if (!IsKeyword(Peek(), "AND")) break;
        Advance();
      }
    }
    if (Peek().kind != Token::Kind::kEnd) {
      return Err("unexpected trailing input");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  static bool IsKeyword(const Token& token, const std::string& word) {
    return token.kind == Token::Kind::kIdent && Upper(token.text) == word;
  }

  Status Err(const std::string& message) const {
    return InvalidArgument(message + " at offset " +
                           std::to_string(Peek().offset));
  }

  Status ExpectKeyword(const std::string& word) {
    if (!IsKeyword(Peek(), word)) return Err("expected " + word);
    Advance();
    return Status::Ok();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != Token::Kind::kIdent) return Err("expected identifier");
    return Advance().text;
  }

  Result<FromItem> ParseFromItem() {
    FromItem item;
    FRO_ASSIGN_OR_RETURN(item.type_name, ExpectIdent());
    // An optional alias: a bare identifier that is not the WHERE keyword.
    if (Peek().kind == Token::Kind::kIdent && !IsKeyword(Peek(), "WHERE")) {
      item.alias = Advance().text;
    }
    for (;;) {
      if (Peek().kind == Token::Kind::kStar) {
        Advance();
        FRO_ASSIGN_OR_RETURN(std::string field, ExpectIdent());
        item.steps.push_back({ChainStep::Op::kUnnest, std::move(field)});
      } else if (Peek().kind == Token::Kind::kArrow) {
        Advance();
        FRO_ASSIGN_OR_RETURN(std::string field, ExpectIdent());
        item.steps.push_back({ChainStep::Op::kLink, std::move(field)});
      } else {
        break;
      }
    }
    return item;
  }

  Result<WhereOperand> ParseOperand() {
    const Token& token = Peek();
    switch (token.kind) {
      case Token::Kind::kIdent: {
        std::string qualifier = Advance().text;
        if (Peek().kind != Token::Kind::kDot) {
          return Err("expected '.' after identifier " + qualifier);
        }
        Advance();
        FRO_ASSIGN_OR_RETURN(std::string field, ExpectIdent());
        return WhereOperand::Column(std::move(qualifier), std::move(field));
      }
      case Token::Kind::kNumber: {
        std::string text = Advance().text;
        if (text.find('.') != std::string::npos) {
          return WhereOperand::Literal(Value::Double(std::stod(text)));
        }
        return WhereOperand::Literal(Value::Int(std::stoll(text)));
      }
      case Token::Kind::kString:
        return WhereOperand::Literal(Value::String(Advance().text));
      default:
        return Err("expected column reference or literal");
    }
  }

  Result<WhereComparison> ParseComparison() {
    WhereComparison cmp;
    FRO_ASSIGN_OR_RETURN(cmp.lhs, ParseOperand());
    switch (Peek().kind) {
      case Token::Kind::kEq:
        cmp.op = CmpOp::kEq;
        break;
      case Token::Kind::kNe:
        cmp.op = CmpOp::kNe;
        break;
      case Token::Kind::kLt:
        cmp.op = CmpOp::kLt;
        break;
      case Token::Kind::kLe:
        cmp.op = CmpOp::kLe;
        break;
      case Token::Kind::kGt:
        cmp.op = CmpOp::kGt;
        break;
      case Token::Kind::kGe:
        cmp.op = CmpOp::kGe;
        break;
      default:
        return Err("expected comparison operator");
    }
    Advance();
    FRO_ASSIGN_OR_RETURN(cmp.rhs, ParseOperand());
    return cmp;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectQuery> ParseQuery(const std::string& input) {
  FRO_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace fro
