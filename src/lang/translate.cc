#include "lang/translate.h"

#include <set>
#include <unordered_map>

#include "common/check.h"
#include "enumerate/it_enum.h"

namespace fro {

namespace {

// A pending outerjoin edge, recorded before the graph exists.
struct PendingOjEdge {
  RelId preserved;
  RelId null_supplied;
  PredicatePtr pred;
};

// A pending join conjunct between two base relations.
struct PendingJoinEdge {
  RelId a;
  RelId b;
  PredicatePtr pred;
};

class Translator {
 public:
  Translator(const NestedDb& nested, const SelectQuery& ast)
      : nested_(nested), ast_(ast), db_(std::make_unique<Database>()) {}

  Result<TranslationResult> Run() {
    for (const FromItem& item : ast_.from) {
      FRO_RETURN_IF_ERROR(TranslateFromItem(item));
    }
    FRO_RETURN_IF_ERROR(TranslateWhere());
    return Assemble();
  }

 private:
  // Registers a relation for entity type `type` under `rel_name`, with
  // columns @oid + scalars + `<field>@ref` per entity-valued field, and
  // fills it from the entity table.
  Result<RelId> MaterializeEntityRelation(const EntityType& type,
                                          const std::string& rel_name) {
    std::vector<std::string> columns;
    columns.push_back("@oid");
    for (const FieldDef& field : type.fields()) {
      switch (field.kind) {
        case FieldDef::Kind::kScalar:
          columns.push_back(field.name);
          break;
        case FieldDef::Kind::kEntityRef:
          columns.push_back(field.name + "@ref");
          break;
        case FieldDef::Kind::kSetValued:
          break;  // repeating fields live in their own virtual relation
      }
    }
    FRO_ASSIGN_OR_RETURN(RelId rel, db_->AddRelation(rel_name, columns));
    for (const EntityRow& row : nested_.Rows(type.name())) {
      std::vector<Value> values;
      values.push_back(Value::Int(row.oid));
      for (size_t f = 0; f < type.fields().size(); ++f) {
        if (type.fields()[f].kind == FieldDef::Kind::kSetValued) continue;
        values.push_back(row.fields[f].scalar);
      }
      db_->AddRow(rel, std::move(values));
    }
    return rel;
  }

  // The virtual ValueOfField relation for `owner_type`.`field_index`:
  // one row (@owner, value) per element of each owner's set.
  Result<RelId> MaterializeValueOfField(const EntityType& owner_type,
                                        size_t field_index,
                                        const std::string& rel_name) {
    const FieldDef& field = owner_type.fields()[field_index];
    FRO_ASSIGN_OR_RETURN(
        RelId rel, db_->AddRelation(rel_name, {"@owner", field.name}));
    for (const EntityRow& row : nested_.Rows(owner_type.name())) {
      for (const Value& element : row.fields[field_index].elements) {
        db_->AddRow(rel, {Value::Int(row.oid), element});
      }
    }
    return rel;
  }

  std::string FreshRelName(const std::string& base) {
    std::string name = base;
    int suffix = 2;
    while (db_->catalog().FindRelation(name).ok()) {
      name = base + std::to_string(suffix++);
    }
    return name;
  }

  Status TranslateFromItem(const FromItem& item) {
    const EntityType* base_type = nested_.FindType(item.type_name);
    if (base_type == nullptr) {
      return NotFound("unknown entity type " + item.type_name);
    }
    // The tuple variable: the alias if given, else the type name. Reusing
    // a type requires distinct aliases ("several copies of the same
    // relation with renamed attributes", Section 1.2).
    const std::string& var =
        item.alias.empty() ? item.type_name : item.alias;
    if (!base_vars_.insert(var).second) {
      return InvalidArgument(
          "tuple variable used twice in the From list: " + var +
          " (give each use a distinct alias)");
    }
    FRO_ASSIGN_OR_RETURN(RelId base_rel,
                         MaterializeEntityRelation(*base_type, var));

    // The chain of entities introduced so far, newest last; UnNest steps
    // contribute no entity (their values are scalars).
    struct ChainEntity {
      RelId rel;
      const EntityType* type;
    };
    std::vector<ChainEntity> chain = {{base_rel, base_type}};

    for (const ChainStep& step : item.steps) {
      // Resolve the field against the most recent entity that has it.
      const FieldDef::Kind wanted = step.op == ChainStep::Op::kUnnest
                                        ? FieldDef::Kind::kSetValued
                                        : FieldDef::Kind::kEntityRef;
      int owner_index = -1;
      int field_index = -1;
      for (int i = static_cast<int>(chain.size()) - 1; i >= 0; --i) {
        int f = chain[static_cast<size_t>(i)].type->FieldIndex(step.field);
        if (f < 0) continue;
        if (chain[static_cast<size_t>(i)].type->fields()[static_cast<size_t>(
                f)].kind != wanted) {
          return InvalidArgument(
              "field " + step.field + " of " +
              chain[static_cast<size_t>(i)].type->name() +
              (step.op == ChainStep::Op::kUnnest
                   ? " is not set-valued (required by '*')"
                   : " is not entity-valued (required by '->')"));
        }
        owner_index = i;
        field_index = f;
        break;
      }
      if (owner_index < 0) {
        return NotFound("no entity in the chain has field " + step.field);
      }
      const ChainEntity& owner = chain[static_cast<size_t>(owner_index)];
      const std::string owner_name =
          db_->catalog().RelationName(owner.rel);

      if (step.op == ChainStep::Op::kUnnest) {
        std::string rel_name = FreshRelName(owner_name + "_" + step.field);
        FRO_ASSIGN_OR_RETURN(
            RelId value_rel,
            MaterializeValueOfField(*owner.type,
                                    static_cast<size_t>(field_index),
                                    rel_name));
        // NestedIn(@r, @value): R.@oid = V.@owner.
        PredicatePtr nested_in = EqCols(db_->Attr(owner_name, "@oid"),
                                        db_->Attr(rel_name, "@owner"));
        oj_edges_.push_back({owner.rel, value_rel, nested_in});
        // Scalars: nothing appended to the chain.
      } else {
        const FieldDef& field =
            owner.type->fields()[static_cast<size_t>(field_index)];
        const EntityType* target = nested_.FindType(field.target_type);
        if (target == nullptr) {
          return NotFound("entity type " + field.target_type +
                          " referenced by field " + field.name);
        }
        std::string rel_name = FreshRelName(owner_name + "_" + step.field);
        FRO_ASSIGN_OR_RETURN(
            RelId target_rel,
            MaterializeEntityRelation(*target, rel_name));
        // LinkedTo(@r, @value): R.Field@ref = D.@oid.
        PredicatePtr linked_to =
            EqCols(db_->Attr(owner_name, field.name + "@ref"),
                   db_->Attr(rel_name, "@oid"));
        oj_edges_.push_back({owner.rel, target_rel, linked_to});
        chain.push_back({target_rel, target});
      }
    }
    return Status::Ok();
  }

  Result<Operand> ResolveOperand(const WhereOperand& operand) {
    if (!operand.is_column) return Operand::Literal(operand.literal);
    if (base_vars_.count(operand.qualifier) == 0) {
      return InvalidArgument(
          "Where-list may only reference From-list base relations; "
          "attributes obtained from '*' or '->' are not allowed: " +
          operand.qualifier);
    }
    FRO_ASSIGN_OR_RETURN(AttrId attr, db_->catalog().FindAttr(
                                          operand.qualifier, operand.field));
    return Operand::Column(attr);
  }

  Status TranslateWhere() {
    for (const WhereComparison& cmp : ast_.where) {
      FRO_ASSIGN_OR_RETURN(Operand lhs, ResolveOperand(cmp.lhs));
      FRO_ASSIGN_OR_RETURN(Operand rhs, ResolveOperand(cmp.rhs));
      PredicatePtr pred = Predicate::Cmp(cmp.op, lhs, rhs);
      // A conjunct referencing two distinct relations is a join edge;
      // anything else is a restriction.
      if (lhs.is_column() && rhs.is_column()) {
        RelId r1 = db_->catalog().AttrRelation(lhs.attr());
        RelId r2 = db_->catalog().AttrRelation(rhs.attr());
        if (r1 != r2) {
          join_edges_.push_back({r1, r2, pred});
          continue;
        }
      }
      restrictions_.push_back(pred);
    }
    return Status::Ok();
  }

  Result<TranslationResult> Assemble() {
    TranslationResult result;
    QueryGraph& graph = result.graph;
    for (RelId rel = 0; rel < db_->num_relations(); ++rel) {
      graph.AddNode(rel, db_->scheme(rel).ToAttrSet());
    }
    for (const PendingJoinEdge& edge : join_edges_) {
      FRO_RETURN_IF_ERROR(graph.AddJoinEdge(
          graph.NodeOf(edge.a), graph.NodeOf(edge.b), edge.pred));
    }
    for (const PendingOjEdge& edge : oj_edges_) {
      FRO_RETURN_IF_ERROR(graph.AddOuterJoinEdge(
          graph.NodeOf(edge.preserved), graph.NodeOf(edge.null_supplied),
          edge.pred));
    }
    if (!graph.IsConnected(graph.AllMask())) {
      return InvalidArgument(
          "the From-list items are not connected by Where predicates "
          "(Cartesian products are not supported)");
    }
    result.audit = CheckFreelyReorderable(graph);

    std::vector<ExprPtr> trees = EnumerateIts(graph, *db_, /*limit=*/1);
    FRO_CHECK(!trees.empty());
    ExprPtr query = trees[0];
    if (!restrictions_.empty()) {
      query = Expr::Restrict(query, Predicate::And(restrictions_));
    }
    // An explicit Select list becomes a bag projection on top. Unlike the
    // Where list, it may name chain-introduced relations (their values
    // are exactly what UnNest/Link produce).
    if (!ast_.select_columns.empty()) {
      std::vector<AttrId> cols;
      for (const WhereOperand& column : ast_.select_columns) {
        FRO_ASSIGN_OR_RETURN(
            AttrId attr,
            db_->catalog().FindAttr(column.qualifier, column.field));
        cols.push_back(attr);
      }
      query = Expr::Project(query, std::move(cols), /*dedup=*/false);
    }
    result.query = std::move(query);
    result.db = std::move(db_);
    return result;
  }

  const NestedDb& nested_;
  const SelectQuery& ast_;
  std::unique_ptr<Database> db_;
  std::set<std::string> base_vars_;
  std::vector<PendingOjEdge> oj_edges_;
  std::vector<PendingJoinEdge> join_edges_;
  std::vector<PredicatePtr> restrictions_;
};

}  // namespace

Result<TranslationResult> TranslateQuery(const NestedDb& nested,
                                         const SelectQuery& ast) {
  if (ast.from.empty()) {
    return InvalidArgument("empty From list");
  }
  Translator translator(nested, ast);
  return translator.Run();
}

}  // namespace fro
