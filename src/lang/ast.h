// Abstract syntax for the Section 5 query language: SQL Select-From-Where
// extended with UnNest (`*`) and Link (`->`) in the From list.

#ifndef FRO_LANG_AST_H_
#define FRO_LANG_AST_H_

#include <string>
#include <vector>

#include "relational/predicate.h"
#include "relational/value.h"

namespace fro {

struct ChainStep {
  enum class Op : uint8_t {
    kUnnest,  // `*Field`  — flatten a set-valued field
    kLink,    // `->Field` — complete with the referenced entity
  };
  Op op;
  std::string field;
};

/// One From-list item: a base entity type, an optional alias (a fresh
/// tuple variable — the paper's "several copies of the same relation with
/// renamed attributes"), and a chain of UnNest / Link steps, e.g.
/// `DEPARTMENT->Manager->Audit`, `EMPLOYEE*ChildName`, or
/// `EMPLOYEE boss`.
struct FromItem {
  std::string type_name;
  /// Empty means the type name itself is the variable.
  std::string alias;
  std::vector<ChainStep> steps;
};

/// A scalar operand in the Where list: `Type.Field` or a literal.
struct WhereOperand {
  bool is_column = false;
  std::string qualifier;  // column: the base type name
  std::string field;      // column: the field name
  Value literal;          // literal otherwise

  static WhereOperand Column(std::string qualifier, std::string field) {
    WhereOperand out;
    out.is_column = true;
    out.qualifier = std::move(qualifier);
    out.field = std::move(field);
    return out;
  }
  static WhereOperand Literal(Value v) {
    WhereOperand out;
    out.literal = std::move(v);
    return out;
  }
};

struct WhereComparison {
  CmpOp op = CmpOp::kEq;
  WhereOperand lhs;
  WhereOperand rhs;
};

/// `SELECT (ALL | <columns>) FROM <items> [WHERE <conjuncts>]`.
struct SelectQuery {
  /// Projection columns; empty means `Select All`. Columns may reference
  /// base relations or chain-introduced ones (e.g.
  /// `EMPLOYEE_ChildName.ChildName`).
  std::vector<WhereOperand> select_columns;
  std::vector<FromItem> from;
  std::vector<WhereComparison> where;
};

}  // namespace fro

#endif  // FRO_LANG_AST_H_
