// The nested data model of Section 5: entities with identity (oids),
// repeating (set-valued) fields, and entity-valued fields.

#ifndef FRO_LANG_MODEL_H_
#define FRO_LANG_MODEL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace fro {

struct FieldDef {
  enum class Kind : uint8_t {
    kScalar,     // single value
    kSetValued,  // repeating field (UnNest's `*` operand)
    kEntityRef,  // entity-valued field (Link's `->` operand)
  };
  std::string name;
  Kind kind = Kind::kScalar;
  /// For kEntityRef: the referenced entity type's name.
  std::string target_type;
};

class EntityType {
 public:
  EntityType(std::string name, std::vector<FieldDef> fields)
      : name_(std::move(name)), fields_(std::move(fields)) {}

  const std::string& name() const { return name_; }
  const std::vector<FieldDef>& fields() const { return fields_; }
  /// Index of field `name`, or -1.
  int FieldIndex(const std::string& name) const;

 private:
  std::string name_;
  std::vector<FieldDef> fields_;
};

/// One field's content in an entity instance.
struct FieldValue {
  /// kScalar: the value. kEntityRef: the referenced entity's oid as
  /// Value::Int, or Null. kSetValued: unused.
  Value scalar;
  /// kSetValued: the elements (possibly empty).
  std::vector<Value> elements;

  static FieldValue Scalar(Value v) {
    FieldValue out;
    out.scalar = std::move(v);
    return out;
  }
  static FieldValue Ref(int64_t oid) { return Scalar(Value::Int(oid)); }
  static FieldValue NullRef() { return Scalar(Value::Null()); }
  static FieldValue Set(std::vector<Value> elements) {
    FieldValue out;
    out.elements = std::move(elements);
    return out;
  }
};

struct EntityRow {
  int64_t oid = 0;
  std::vector<FieldValue> fields;  // parallel to EntityType::fields()
};

/// A database of entity tables, one per type. Oids are unique across the
/// whole NestedDb (they model "physical addresses", Section 5.2).
class NestedDb {
 public:
  Status DefineType(const std::string& name, std::vector<FieldDef> fields);
  const EntityType* FindType(const std::string& name) const;

  /// Appends an entity; `fields` must parallel the type's field list.
  /// Returns the new entity's oid.
  Result<int64_t> AddEntity(const std::string& type_name,
                            std::vector<FieldValue> fields);

  const std::vector<EntityRow>& Rows(const std::string& type_name) const;

 private:
  std::vector<EntityType> types_;
  std::unordered_map<std::string, size_t> type_index_;
  std::vector<std::vector<EntityRow>> rows_;  // parallel to types_
  int64_t next_oid_ = 1;
};

}  // namespace fro

#endif  // FRO_LANG_MODEL_H_
