// Recursive-descent parser for the Section 5 language.
//
// Grammar (keywords case-insensitive):
//   query    := SELECT ALL FROM fromlist [WHERE conj]
//   fromlist := fromitem (',' fromitem)*
//   fromitem := IDENT (('*' | '->') IDENT)*
//   conj     := cmp (AND cmp)*
//   cmp      := operand op operand
//   operand  := IDENT '.' IDENT | NUMBER | STRING
//   op       := '=' | '<>' | '<' | '<=' | '>' | '>='

#ifndef FRO_LANG_PARSER_H_
#define FRO_LANG_PARSER_H_

#include <string>

#include "common/status.h"
#include "lang/ast.h"

namespace fro {

Result<SelectQuery> ParseQuery(const std::string& input);

}  // namespace fro

#endif  // FRO_LANG_PARSER_H_
