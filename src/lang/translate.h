// Translation of Section 5 queries into Join/Outerjoin algebra
// (Section 5.2's reformulation).
//
// Each `R * Field` (UnNest) introduces a virtual one-column-per-owner
// relation ValueOfField = { (@owner, value) : value in r.Field } and the
// outerjoin  OJ[NestedIn(@r, @value)](R, ValueOfField), where NestedIn is
// realized as the oid equality R.@oid = V.@owner.
//
// Each `R -> Field` (Link) introduces an independent copy of the target
// entity table (a fresh tuple variable) and the outerjoin
// OJ[LinkedTo(@r, @value)](R, DomainOfField), realized as the oid equality
// R.Field@ref = D.@oid.
//
// Both predicates are equalities on oids, hence strong; each virtual
// relation is null-supplied exactly once and carries no Where-list
// predicates, so the translated query block always satisfies Theorem 1's
// preconditions (the Section 5.3 observation). The translation returns
// the audit so callers can verify this invariant.

#ifndef FRO_LANG_TRANSLATE_H_
#define FRO_LANG_TRANSLATE_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "common/status.h"
#include "graph/nice.h"
#include "graph/query_graph.h"
#include "lang/ast.h"
#include "lang/model.h"
#include "relational/database.h"

namespace fro {

struct TranslationResult {
  /// The flattened relational database: one relation per base variable
  /// plus one per UnNest/Link step.
  std::unique_ptr<Database> db;
  /// The query graph of the block (join edges from Where equi-conjuncts,
  /// outerjoin edges from chain steps).
  QueryGraph graph;
  /// One implementing tree of `graph` with the Where restrictions applied
  /// on top. Any other implementing tree is equally valid (see `audit`).
  ExprPtr query;
  /// The Section 5.3 observation, verified: the block is freely
  /// reorderable.
  ReorderabilityCheck audit;
};

Result<TranslationResult> TranslateQuery(const NestedDb& nested,
                                         const SelectQuery& ast);

}  // namespace fro

#endif  // FRO_LANG_TRANSLATE_H_
