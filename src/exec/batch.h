// Batch-at-a-time execution containers (the X100/vectorized lineage).
//
// A ColumnBatch is a fixed-capacity chunk of rows plus an optional
// selection vector, with THREE content representations behind one API:
//
//  * row slots   — `capacity` owned Tuple slots, written via the
//                  peek/commit protocol (the original TupleBatch form);
//  * view        — `n` externally-owned contiguous rows presented
//                  zero-copy, optionally carrying a RelationColumns
//                  source so columnar reads are the *relation's* cached
//                  column arrays at an offset (zero transpose per batch);
//  * columns     — owned per-attribute ColumnVectors (typed contiguous
//                  values + null masks), the form columnar operators
//                  emit into.
//
// Readers pick whichever side they need: `row()`/`selected()` always
// work (a columnar batch lazily materializes its row mirror once), and
// `Column()` always works (a row batch lazily transposes once). Hot
// pipelines never hit the lazy paths: scans attach relation columns to
// their views, filters evaluate kernels over those and narrow the
// selection in place, and pure equi hash joins emit columns directly —
// rows are materialized only at engine boundaries (adapters, exchange
// staging, result drains).
//
// Selection-vector semantics are unchanged: when active, only
// rows at sel[i] are alive; `size()` counts live rows and `selected(i)`
// indexes them densely. Kernel masks are indexed by *raw* position
// (NarrowToMask), so dense kernels can evaluate a whole batch without
// gathering.

#ifndef FRO_EXEC_BATCH_H_
#define FRO_EXEC_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "relational/column.h"
#include "relational/tuple.h"

namespace fro {

/// Which execution engine a plan is compiled for. The engines agree on
/// results and ExecStats counters (asserted operator by operator in
/// tests/batch_exec_test.cc); they differ only in granularity and speed.
enum class ExecEngine : uint8_t {
  /// Tuple-at-a-time Volcano iterators (exec/iterator.h).
  kTuple,
  /// Batch-at-a-time iterators (exec/batch_iterator.h). The default.
  kBatch,
};

const char* ExecEngineName(ExecEngine engine);

/// A fixed-capacity chunk of rows with an optional selection vector and
/// interchangeable row/columnar content (see file comment).
class ColumnBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit ColumnBatch(size_t capacity = kDefaultCapacity)
      : capacity_(capacity), rows_(capacity) {
    FRO_CHECK_GT(capacity, 0u) << "ColumnBatch capacity must be positive";
  }

  size_t capacity() const { return capacity_; }

  /// Raw rows appended, ignoring any selection.
  size_t NumRows() const { return count_; }

  /// Live rows (selection applied when active).
  size_t size() const { return sel_active_ ? sel_.size() : count_; }
  bool empty() const { return size() == 0; }
  bool full() const { return count_ >= capacity_; }

  /// Forgets all content and the selection; slot and column storage is
  /// retained so refilling the batch reuses existing capacity. Resets to
  /// row-slot mode.
  void Clear() {
    count_ = 0;
    mode_ = Mode::kRows;
    view_ = nullptr;
    src_cols_ = nullptr;
    src_offset_ = 0;
    cols_valid_ = false;
    rows_valid_ = false;
    sel_active_ = false;
    sel_.clear();
  }

  /// Presents `n` externally-owned contiguous rows as the batch's
  /// content without copying anything — the zero-copy scan path. The
  /// rows must outlive every read of the batch. When the rows are a
  /// window of a columnized relation, pass its RelationColumns as
  /// `source` with `source_offset` = the window's first row index:
  /// Column() then returns the relation's cached column arrays directly
  /// instead of transposing the window. Appending into a view batch is
  /// not allowed (Clear() first).
  void SetView(const Tuple* rows, size_t n,
               const RelationColumns* source = nullptr,
               size_t source_offset = 0) {
    FRO_DCHECK(n <= capacity_);
    mode_ = Mode::kView;
    view_ = rows;
    src_cols_ = source;
    src_offset_ = source_offset;
    count_ = n;
    cols_valid_ = false;
    rows_valid_ = false;
    sel_active_ = false;
    sel_.clear();
  }

  bool is_view() const { return mode_ == Mode::kView; }

  /// The RelationColumns backing a view batch, or nullptr for other
  /// modes / plain views; *offset receives the view's first row index in
  /// the source relation. Consumers draining a whole relation through
  /// contiguous views (hash-join builds) use this to reference the
  /// relation instead of copying its tuples.
  const RelationColumns* view_source(size_t* offset) const {
    if (mode_ != Mode::kView) return nullptr;
    *offset = src_offset_;
    return src_cols_;
  }

  /// The slot the next append would fill, without committing it. Producers
  /// use the peek slot as a scratch tuple: build the candidate in place,
  /// and only CommitSlot() if it survives (e.g. passes the join
  /// predicate). The batch must not be full and must be in row-slot mode.
  Tuple* PeekSlot() {
    FRO_DCHECK(!full());
    FRO_DCHECK(mode_ == Mode::kRows);
    return &rows_[count_];
  }
  void CommitSlot() {
    ++count_;
    cols_valid_ = false;
  }

  /// Appends and returns the slot to assign into.
  Tuple* AppendSlot() {
    Tuple* slot = PeekSlot();
    ++count_;
    cols_valid_ = false;
    return slot;
  }
  void Append(const Tuple& tuple) { AppendSlot()->AssignFrom(tuple); }

  /// Raw-index access (positions 0..NumRows(), ignoring selection). A
  /// columnar batch materializes its row mirror on first access.
  const Tuple& row(size_t raw) const {
    if (mode_ == Mode::kColumns) {
      if (!rows_valid_) MaterializeRows();
      return rows_[raw];
    }
    return mode_ == Mode::kView ? view_[raw] : rows_[raw];
  }
  Tuple& mutable_row(size_t raw) {
    FRO_DCHECK(mode_ == Mode::kRows);
    return rows_[raw];
  }

  bool sel_active() const { return sel_active_; }
  const std::vector<uint32_t>& sel() const { return sel_; }

  /// Raw index of the i-th live row.
  size_t sel_index(size_t i) const {
    return sel_active_ ? sel_[i] : i;
  }

  /// The i-th live row.
  const Tuple& selected(size_t i) const { return row(sel_index(i)); }

  /// Narrows the live rows to those for which `keep(row, raw_index)`
  /// returns true; activates the selection vector. Reuses scratch storage,
  /// so repeated narrowing does not allocate.
  template <typename Keep>
  void NarrowSelection(Keep&& keep) {
    sel_scratch_.clear();
    const size_t n = size();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t raw = static_cast<uint32_t>(sel_index(i));
      if (keep(row(raw), raw)) sel_scratch_.push_back(raw);
    }
    sel_.swap(sel_scratch_);
    sel_active_ = true;
  }

  /// Narrows the live rows to those whose *raw* index has a nonzero byte
  /// in `keep` (length >= NumRows()): the kernel-mask form of
  /// NarrowSelection, fed by VectorPredicate output.
  void NarrowToMask(const uint8_t* keep) {
    sel_scratch_.clear();
    const size_t n = size();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t raw = static_cast<uint32_t>(sel_index(i));
      if (keep[raw] != 0) sel_scratch_.push_back(raw);
    }
    sel_.swap(sel_scratch_);
    sel_active_ = true;
  }

  // --- Columnar content --------------------------------------------------

  /// Columnar read of attribute position `pos` for this batch's raw rows:
  /// returns the column and sets *offset so raw row r lives at
  /// column[*offset + r]. Relation-backed views return the relation's
  /// cached columns (offset = window start, zero copies); row content is
  /// transposed once per fill and cached. Requires NumRows() > 0 unless
  /// the batch is columnar or relation-backed (a rows-mode transpose
  /// infers arity from the first row).
  const ColumnVector* Column(size_t pos, size_t* offset) const;

  /// Switches an empty (Clear()ed) batch to owned-columnar mode with
  /// `arity` columns. Producers then append one value per column via
  /// mutable_column()->Append/AppendFrom/AppendNull and CommitColumnRow()
  /// once per row; full() gates appends exactly as in row mode.
  void BeginColumns(size_t arity);
  bool columnar() const { return mode_ == Mode::kColumns; }
  ColumnVector* mutable_column(size_t pos) {
    FRO_DCHECK(mode_ == Mode::kColumns);
    return &cols_[pos];
  }
  void CommitColumnRow() {
    FRO_DCHECK(mode_ == Mode::kColumns);
    ++count_;
    rows_valid_ = false;
  }
  /// Commits `n` rows appended in bulk (AppendGather flushes).
  void CommitColumnRows(size_t n) {
    FRO_DCHECK(mode_ == Mode::kColumns);
    count_ += n;
    rows_valid_ = false;
  }

 private:
  enum class Mode : uint8_t { kRows, kView, kColumns };

  /// rows -> cols_ (all raw rows, arity from the first row); caches.
  void TransposeRows() const;
  /// cols_ -> rows_[0..count_) row mirror for a columnar batch; caches.
  void MaterializeRows() const;

  size_t capacity_;
  size_t count_ = 0;
  Mode mode_ = Mode::kRows;
  bool sel_active_ = false;
  /// When in view mode, rows live in the viewed array instead of rows_.
  const Tuple* view_ = nullptr;
  /// Optional columnar source backing a view (see SetView).
  const RelationColumns* src_cols_ = nullptr;
  size_t src_offset_ = 0;
  /// Row storage: `capacity_` slots in rows mode (reused across Clear());
  /// the lazily-materialized mirror in columnar mode.
  mutable std::vector<Tuple> rows_;
  mutable bool rows_valid_ = false;
  /// Owned columns: the content in columnar mode; the lazily-transposed
  /// cache in rows/view mode.
  mutable std::vector<ColumnVector> cols_;
  mutable bool cols_valid_ = false;
  std::vector<uint32_t> sel_;
  std::vector<uint32_t> sel_scratch_;
};

/// The historical name: operators and tests predating the columnar
/// refactor use the two interchangeably.
using TupleBatch = ColumnBatch;

}  // namespace fro

#endif  // FRO_EXEC_BATCH_H_
