// Batch-at-a-time execution containers (the X100/vectorized lineage).
//
// A TupleBatch is a fixed-capacity chunk of tuples plus an optional
// selection vector. Operators exchange whole batches instead of single
// tuples, so the per-tuple interpretation overhead of the Volcano engine
// (a virtual call, an ExecControl check, and optional clock reads per
// tuple) is paid once per batch.
//
// Storage discipline: a batch owns `capacity` tuple slots that survive
// Clear(), and producers write into slots with the Assign* helpers of
// Tuple. After the first few batches every slot's value vector has
// reached its steady-state arity, so filling a batch performs no
// allocations for numeric data — the main reason the batch engine beats
// the tuple engine on wide pipelines (see bench/bench_batch.cc).
//
// Selection-vector semantics: when active, only rows_[sel[i]] are alive;
// `size()` counts live rows and `selected(i)` indexes them densely.
// Filters narrow the selection in place rather than copying survivors, so
// a scan->filter pipeline moves no tuple bytes at all.

#ifndef FRO_EXEC_BATCH_H_
#define FRO_EXEC_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "relational/tuple.h"

namespace fro {

/// Which execution engine a plan is compiled for. The engines agree on
/// results and ExecStats counters (asserted operator by operator in
/// tests/batch_exec_test.cc); they differ only in granularity and speed.
enum class ExecEngine : uint8_t {
  /// Tuple-at-a-time Volcano iterators (exec/iterator.h).
  kTuple,
  /// Batch-at-a-time iterators (exec/batch_iterator.h). The default.
  kBatch,
};

const char* ExecEngineName(ExecEngine engine);

/// A fixed-capacity chunk of tuples with an optional selection vector.
class TupleBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit TupleBatch(size_t capacity = kDefaultCapacity)
      : capacity_(capacity), rows_(capacity) {
    FRO_CHECK_GT(capacity, 0u) << "TupleBatch capacity must be positive";
  }

  size_t capacity() const { return capacity_; }

  /// Raw rows appended, ignoring any selection.
  size_t NumRows() const { return count_; }

  /// Live rows (selection applied when active).
  size_t size() const { return sel_active_ ? sel_.size() : count_; }
  bool empty() const { return size() == 0; }
  bool full() const { return count_ >= capacity_; }

  /// Forgets all rows and the selection; slot storage is retained so
  /// refilling the batch reuses each slot's value capacity.
  void Clear() {
    count_ = 0;
    view_ = nullptr;
    sel_active_ = false;
    sel_.clear();
  }

  /// Presents `n` externally-owned contiguous rows as the batch's
  /// content without copying anything — the zero-copy scan path: a
  /// scan->filter pipeline over a materialized relation moves no tuple
  /// bytes at all. The rows must outlive every read of the batch.
  /// Appending into a view batch is not allowed (Clear() first).
  void SetView(const Tuple* rows, size_t n) {
    FRO_DCHECK(n <= capacity_);
    view_ = rows;
    count_ = n;
    sel_active_ = false;
    sel_.clear();
  }

  bool is_view() const { return view_ != nullptr; }

  /// The slot the next append would fill, without committing it. Producers
  /// use the peek slot as a scratch tuple: build the candidate in place,
  /// and only CommitSlot() if it survives (e.g. passes the join
  /// predicate). The batch must not be full.
  Tuple* PeekSlot() {
    FRO_DCHECK(!full());
    FRO_DCHECK(view_ == nullptr);
    return &rows_[count_];
  }
  void CommitSlot() { ++count_; }

  /// Appends and returns the slot to assign into.
  Tuple* AppendSlot() {
    Tuple* slot = PeekSlot();
    ++count_;
    return slot;
  }
  void Append(const Tuple& tuple) { AppendSlot()->AssignFrom(tuple); }

  /// Raw-index access (positions 0..NumRows(), ignoring selection).
  const Tuple& row(size_t raw) const {
    return view_ != nullptr ? view_[raw] : rows_[raw];
  }
  Tuple& mutable_row(size_t raw) {
    FRO_DCHECK(view_ == nullptr);
    return rows_[raw];
  }

  bool sel_active() const { return sel_active_; }
  const std::vector<uint32_t>& sel() const { return sel_; }

  /// Raw index of the i-th live row.
  size_t sel_index(size_t i) const {
    return sel_active_ ? sel_[i] : i;
  }

  /// The i-th live row.
  const Tuple& selected(size_t i) const { return row(sel_index(i)); }

  /// Narrows the live rows to those for which `keep(row, raw_index)`
  /// returns true; activates the selection vector. Reuses scratch storage,
  /// so repeated narrowing does not allocate.
  template <typename Keep>
  void NarrowSelection(Keep&& keep) {
    sel_scratch_.clear();
    const size_t n = size();
    for (size_t i = 0; i < n; ++i) {
      const uint32_t raw = static_cast<uint32_t>(sel_index(i));
      if (keep(row(raw), raw)) sel_scratch_.push_back(raw);
    }
    sel_.swap(sel_scratch_);
    sel_active_ = true;
  }

 private:
  size_t capacity_;
  size_t count_ = 0;
  bool sel_active_ = false;
  /// When non-null, rows live in the viewed array instead of rows_.
  const Tuple* view_ = nullptr;
  std::vector<Tuple> rows_;  // `capacity_` slots, reused across Clear()
  std::vector<uint32_t> sel_;
  std::vector<uint32_t> sel_scratch_;
};

}  // namespace fro

#endif  // FRO_EXEC_BATCH_H_
