#include "exec/morsel.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/hash.h"
#include "exec/batch_operators.h"
#include "exec/build.h"
#include "relational/index.h"
#include "relational/predicate.h"

namespace fro {

namespace {

JoinMode ModeOfKind(OpKind kind) {
  switch (kind) {
    case OpKind::kJoin:
      return JoinMode::kInner;
    case OpKind::kOuterJoin:
      return JoinMode::kLeftOuter;
    case OpKind::kAntijoin:
      return JoinMode::kAnti;
    case OpKind::kSemijoin:
      return JoinMode::kSemi;
    default:
      FRO_CHECK(false) << "not a join-like operator";
  }
  return JoinMode::kInner;
}

Scheme JoinOutScheme(const Scheme& left, const Scheme& right, JoinMode mode) {
  switch (mode) {
    case JoinMode::kInner:
    case JoinMode::kLeftOuter:
      return left.Concat(right);
    case JoinMode::kAnti:
    case JoinMode::kSemi:
      return left;
  }
  return left;
}

/// Partition of a normalized, null-free probe/build key: a mix of the
/// per-value structural hashes. Equal keys (post NormalizeHashKeyValue)
/// hash equally, so every build row a probe could match lives in the
/// probe's own partition.
size_t PartitionOfKey(const Value* key, size_t len, size_t partitions) {
  uint64_t h = 0x9E3779B97F4A7C15ull;
  for (size_t i = 0; i < len; ++i) {
    h = HashMix(h, static_cast<uint64_t>(key[i].Hash()));
  }
  return static_cast<size_t>(h % partitions);
}

}  // namespace

// --- Morsel queue / scan ---------------------------------------------------

MorselQueue::MorselQueue(size_t total_rows, size_t morsel_rows)
    : total_rows_(total_rows), morsel_rows_(morsel_rows) {
  FRO_CHECK_GE(morsel_rows_, size_t{1});
}

bool MorselQueue::Claim(size_t* begin, size_t* end) {
  const size_t start = next_.fetch_add(morsel_rows_, std::memory_order_relaxed);
  if (start >= total_rows_) return false;
  *begin = start;
  *end = std::min(total_rows_, start + morsel_rows_);
  return true;
}

MorselScanIterator::MorselScanIterator(const Relation* relation,
                                       std::shared_ptr<MorselQueue> queue,
                                       std::shared_ptr<RelationColumns> columns)
    : relation_(relation),
      queue_(std::move(queue)),
      columns_(std::move(columns)) {
  FRO_CHECK(relation_ != nullptr);
  FRO_CHECK(queue_ != nullptr);
}

void MorselScanIterator::OpenImpl() {
  begin_ = 0;
  end_ = 0;
}

bool MorselScanIterator::NextBatchImpl(TupleBatch* out) {
  if (begin_ >= end_ && !queue_->Claim(&begin_, &end_)) return false;
  const size_t n = std::min(out->capacity(), end_ - begin_);
  out->SetView(&relation_->rows()[begin_], n, columns_.get(), begin_);
  begin_ += n;
  return true;
}

void MorselScanIterator::CloseImpl() {}

const Scheme& MorselScanIterator::scheme() const {
  return relation_->scheme();
}

// --- Shared join inputs ----------------------------------------------------

namespace {

/// One spine join's build side, shared read-only by every worker after
/// Prepare(): the materialized rows, and — on the hash path — the rows
/// partitioned by normalized key hash with one HashIndex per partition.
/// For a GOJ it additionally hosts the cross-partition padding merge.
struct SharedJoinInput {
  // Fixed at plan time.
  bool is_goj = false;
  JoinMode mode = JoinMode::kInner;
  PredicatePtr pred;
  AttrSet goj_subset;
  bool use_hash = false;
  std::vector<AttrId> left_keys;
  std::vector<AttrId> right_keys;
  BatchIteratorPtr build_child;
  Scheme build_scheme;

  // Prepared once per exchange Open().
  Relation rows;  // the nested-loop candidate set; empty-schemed after Close
  PlanOpStats snapshot;  // build pipeline counters, captured post-drain
  size_t partitions = 0;
  std::vector<int> build_key_positions;
  std::vector<Relation> part_rows;
  std::vector<Relation> part_normalized;
  std::vector<std::unique_ptr<HashIndex>> part_index;

  // GOJ padding merge (paper eq. 14): pi[S] of the join and of the
  // preserved input, unioned across workers as each finishes its morsels;
  // the worker that drops goj_workers_remaining to zero emits the pads.
  std::mutex goj_mu;
  std::set<std::vector<Value>> goj_matched_projections;
  std::set<std::vector<Value>> goj_left_projections;
  int goj_workers_remaining = 0;

  void Prepare(int workers);
  void ReleaseExecutionState();

  /// Candidate rows for a normalized, null-free probe key: the matching
  /// partition's index probe. `*part_out` names the partition the row
  /// indices refer to.
  const std::vector<size_t>& Probe(const std::vector<Value>& key,
                                   size_t* part_out) const {
    const size_t p = PartitionOfKey(key.data(), key.size(), partitions);
    *part_out = p;
    return part_index[p]->Probe(key.data(), key.size());
  }
};

void SharedJoinInput::Prepare(int workers) {
  // Drain the build pipeline exactly once per execution; its counters are
  // captured here and spliced into rollups once, however many workers
  // probe the result.
  rows = Relation(build_scheme);
  build_child->Open();
  TupleBatch scratch;
  while (build_child->NextBatch(&scratch)) {
    const size_t n = scratch.size();
    for (size_t i = 0; i < n; ++i) rows.AddRow(scratch.selected(i));
  }
  build_child->Close();
  snapshot = SnapshotPlanStats(build_child.get());

  if (is_goj) {
    goj_matched_projections.clear();
    goj_left_projections.clear();
    goj_workers_remaining = workers;
  }

  if (!use_hash) return;

  // Partitioned build. Rows whose normalized key contains a null are left
  // out: a null key never equi-matches, so no probe could fetch them —
  // exactly the rows HashIndex declines to index.
  partitions = static_cast<size_t>(std::max(1, workers));
  build_key_positions.clear();
  for (AttrId attr : right_keys) {
    const int pos = rows.scheme().IndexOf(attr);
    FRO_CHECK_GE(pos, 0);
    build_key_positions.push_back(pos);
  }
  const size_t n = rows.NumRows();
  constexpr uint32_t kUnindexed = ~uint32_t{0};
  std::vector<uint32_t> part_of(n, kUnindexed);
  std::vector<Value> key;
  key.reserve(build_key_positions.size());
  for (size_t r = 0; r < n; ++r) {
    key.clear();
    bool null_key = false;
    for (int pos : build_key_positions) {
      Value v = NormalizeHashKeyValue(rows.row(r).value(static_cast<size_t>(pos)));
      if (v.is_null()) {
        null_key = true;
        break;
      }
      key.push_back(std::move(v));
    }
    if (!null_key) {
      part_of[r] = static_cast<uint32_t>(
          PartitionOfKey(key.data(), key.size(), partitions));
    }
  }
  part_rows.clear();
  part_normalized.clear();
  part_index.clear();
  part_index.resize(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    part_rows.emplace_back(rows.scheme());
    part_normalized.emplace_back(rows.scheme());
  }
  // One build task per partition, fanned across the worker budget. Each
  // partition keeps its rows in build order, so duplicate-key chains — and
  // therefore match order — equal the serial single-index path's.
  auto build_partition = [&](size_t p) {
    Relation& dst = part_rows[p];
    for (size_t r = 0; r < n; ++r) {
      if (part_of[r] == static_cast<uint32_t>(p)) dst.AddRow(rows.row(r));
    }
    part_normalized[p] = NormalizeOnKeyColumns(dst, right_keys);
    part_index[p] = std::make_unique<HashIndex>(part_normalized[p], right_keys);
  };
  if (partitions == 1) {
    build_partition(0);
    return;
  }
  std::atomic<size_t> next{0};
  auto pump = [&] {
    size_t p;
    while ((p = next.fetch_add(1, std::memory_order_relaxed)) < partitions) {
      build_partition(p);
    }
  };
  std::vector<std::thread> builders;
  for (int t = 1; t < workers; ++t) builders.emplace_back(pump);
  pump();
  for (std::thread& t : builders) t.join();
}

void SharedJoinInput::ReleaseExecutionState() {
  // Drop the per-execution materializations (mirroring the serial
  // operators' Close()) but keep `snapshot`: stats outlive Close.
  rows = Relation();
  partitions = 0;
  build_key_positions.clear();
  part_rows.clear();
  part_index.clear();
  part_normalized.clear();
}

// --- Worker join operators -------------------------------------------------

/// Worker-side hash join probing a SharedJoinInput's partitioned index.
/// Accounting mirrors BatchHashJoinIterator's generic path: one
/// left_read + one probe per probe row (probes always, before the
/// null-key check), one right_read + one predicate_eval per candidate,
/// residual-only re-evaluation, anti/semi stop at the first match.
class ParallelHashJoinIterator : public BatchIterator {
 public:
  ParallelHashJoinIterator(BatchIteratorPtr left,
                           std::shared_ptr<SharedJoinInput> shared,
                           size_t batch_capacity)
      : left_(std::move(left)),
        shared_(std::move(shared)),
        out_scheme_(JoinOutScheme(left_->scheme(), shared_->build_scheme,
                                  shared_->mode)),
        joined_scheme_(left_->scheme().Concat(shared_->build_scheme)),
        input_(batch_capacity) {
    for (AttrId attr : shared_->left_keys) {
      const int pos = left_->scheme().IndexOf(attr);
      FRO_CHECK_GE(pos, 0);
      left_key_positions_.push_back(pos);
    }
  }

  const Scheme& scheme() const override { return out_scheme_; }
  const char* physical_name() const override { return "HashJoin"; }
  std::vector<BatchIterator*> children() const override {
    return {left_.get()};
  }

 protected:
  void OpenImpl() override {
    left_->Open();
    residual_ = ResidualAfterEquiKeys(shared_->pred, shared_->left_keys,
                                      shared_->right_keys);
    if (residual_ != nullptr) bound_.Bind(residual_, joined_scheme_);
    input_.Clear();
    input_pos_ = 0;
    left_active_ = false;
    matches_ = nullptr;
  }

  bool NextBatchImpl(TupleBatch* out) override {
    for (;;) {
      if (!left_active_) {
        if (input_pos_ >= input_.size()) {
          if (!left_->NextBatch(&input_)) return !out->empty();
          input_pos_ = 0;
          continue;
        }
        const Tuple& lrow = input_.selected(input_pos_);
        ++mutable_stats().left_reads;
        left_had_match_ = false;
        match_pos_ = 0;
        ++mutable_stats().probes;
        probe_key_.clear();
        bool null_key = false;
        for (int pos : left_key_positions_) {
          Value v = NormalizeHashKeyValue(lrow.value(static_cast<size_t>(pos)));
          if (v.is_null()) {
            null_key = true;
            break;
          }
          probe_key_.push_back(std::move(v));
        }
        matches_ = null_key ? &no_matches_
                            : &shared_->Probe(probe_key_, &partition_);
        left_active_ = true;
      }
      const Tuple& lrow = input_.selected(input_pos_);
      bool dropped_left = false;
      while (match_pos_ < matches_->size()) {
        if (out->full()) return true;
        const size_t ridx = (*matches_)[match_pos_++];
        const Tuple& rrow = shared_->part_rows[partition_].row(ridx);
        ++mutable_stats().right_reads;
        ++mutable_stats().predicate_evals;
        if (residual_ != nullptr) {
          Tuple* slot = out->PeekSlot();
          slot->AssignConcat(lrow, rrow);
          if (!IsTrue(bound_.Eval(*slot))) continue;
          left_had_match_ = true;
          switch (shared_->mode) {
            case JoinMode::kInner:
            case JoinMode::kLeftOuter:
              out->CommitSlot();
              break;
            case JoinMode::kSemi:
              slot->AssignFrom(lrow);
              out->CommitSlot();
              dropped_left = true;
              break;
            case JoinMode::kAnti:
              dropped_left = true;
              break;
          }
        } else {
          left_had_match_ = true;
          switch (shared_->mode) {
            case JoinMode::kInner:
            case JoinMode::kLeftOuter:
              out->PeekSlot()->AssignConcat(lrow, rrow);
              out->CommitSlot();
              break;
            case JoinMode::kSemi:
              out->PeekSlot()->AssignFrom(lrow);
              out->CommitSlot();
              dropped_left = true;
              break;
            case JoinMode::kAnti:
              dropped_left = true;
              break;
          }
        }
        if (dropped_left) break;
      }
      if (!dropped_left) {
        const bool unmatched = !left_had_match_;
        if (shared_->mode == JoinMode::kLeftOuter && unmatched) {
          if (out->full()) return true;
          out->AppendSlot()->AssignConcatNulls(lrow,
                                               shared_->build_scheme.size());
        } else if (shared_->mode == JoinMode::kAnti && unmatched) {
          if (out->full()) return true;
          out->AppendSlot()->AssignFrom(lrow);
        }
      }
      left_active_ = false;
      ++input_pos_;
    }
  }

  void CloseImpl() override {
    left_->Close();
    left_active_ = false;
    matches_ = nullptr;
  }

 private:
  BatchIteratorPtr left_;
  std::shared_ptr<SharedJoinInput> shared_;
  Scheme out_scheme_;
  Scheme joined_scheme_;
  PredicatePtr residual_;
  BoundPredicate bound_;
  std::vector<int> left_key_positions_;
  std::vector<Value> probe_key_;
  size_t partition_ = 0;
  TupleBatch input_;
  size_t input_pos_ = 0;
  bool left_active_ = false;
  const std::vector<size_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
  bool left_had_match_ = false;
  const std::vector<size_t> no_matches_;
};

/// Worker-side block nested-loop join over a SharedJoinInput's
/// materialized rows. Accounting mirrors BatchNestedLoopJoinIterator.
class ParallelNestedLoopJoinIterator : public BatchIterator {
 public:
  ParallelNestedLoopJoinIterator(BatchIteratorPtr left,
                                 std::shared_ptr<SharedJoinInput> shared,
                                 size_t batch_capacity)
      : left_(std::move(left)),
        shared_(std::move(shared)),
        out_scheme_(JoinOutScheme(left_->scheme(), shared_->build_scheme,
                                  shared_->mode)),
        joined_scheme_(left_->scheme().Concat(shared_->build_scheme)),
        input_(batch_capacity) {}

  const Scheme& scheme() const override { return out_scheme_; }
  const char* physical_name() const override { return "NestedLoopJoin"; }
  std::vector<BatchIterator*> children() const override {
    return {left_.get()};
  }

 protected:
  void OpenImpl() override {
    left_->Open();
    if (shared_->pred != nullptr) bound_.Bind(shared_->pred, joined_scheme_);
    input_.Clear();
    input_pos_ = 0;
    left_active_ = false;
  }

  bool NextBatchImpl(TupleBatch* out) override {
    for (;;) {
      if (!left_active_) {
        if (input_pos_ >= input_.size()) {
          if (!left_->NextBatch(&input_)) return !out->empty();
          input_pos_ = 0;
          continue;
        }
        ++mutable_stats().left_reads;
        right_pos_ = 0;
        left_had_match_ = false;
        left_active_ = true;
      }
      const Tuple& lrow = input_.selected(input_pos_);
      bool dropped_left = false;
      while (right_pos_ < shared_->rows.NumRows()) {
        if (out->full()) return true;
        const Tuple& rrow = shared_->rows.row(right_pos_++);
        ++mutable_stats().right_reads;
        Tuple* slot = out->PeekSlot();
        slot->AssignConcat(lrow, rrow);
        ++mutable_stats().predicate_evals;
        if (shared_->pred != nullptr && !IsTrue(bound_.Eval(*slot))) {
          continue;
        }
        left_had_match_ = true;
        switch (shared_->mode) {
          case JoinMode::kInner:
          case JoinMode::kLeftOuter:
            out->CommitSlot();
            break;
          case JoinMode::kSemi:
            slot->AssignFrom(lrow);
            out->CommitSlot();
            dropped_left = true;
            break;
          case JoinMode::kAnti:
            dropped_left = true;
            break;
        }
        if (dropped_left) break;
      }
      if (!dropped_left) {
        const bool unmatched = !left_had_match_;
        if (shared_->mode == JoinMode::kLeftOuter && unmatched) {
          if (out->full()) return true;
          out->AppendSlot()->AssignConcatNulls(lrow,
                                               shared_->build_scheme.size());
        } else if (shared_->mode == JoinMode::kAnti && unmatched) {
          if (out->full()) return true;
          out->AppendSlot()->AssignFrom(lrow);
        }
      }
      left_active_ = false;
      ++input_pos_;
    }
  }

  void CloseImpl() override {
    left_->Close();
    left_active_ = false;
  }

 private:
  BatchIteratorPtr left_;
  std::shared_ptr<SharedJoinInput> shared_;
  Scheme out_scheme_;
  Scheme joined_scheme_;
  BoundPredicate bound_;
  TupleBatch input_;
  size_t input_pos_ = 0;
  bool left_active_ = false;
  size_t right_pos_ = 0;
  bool left_had_match_ = false;
};

/// Worker-side streaming GOJ (paper eq. 14). Joined tuples stream out as
/// the worker's morsels produce them; the per-DISTINCT-S-projection pads
/// need the global pi[S](L) − pi[S](JN) difference, so each worker folds
/// its local projection sets into the shared input when its stream ends
/// and the last worker to finish emits every pad exactly once.
///
/// Accounting mirrors the GeneralizedOuterJoin kernel's Matcher: one
/// left_read per preserved row, one probe per row in hash mode only, one
/// right_read + one full-predicate evaluation per candidate (the kernel
/// never elides equi-key conjuncts), pads counted as ordinary emissions.
class ParallelGojIterator : public BatchIterator {
 public:
  ParallelGojIterator(BatchIteratorPtr left,
                      std::shared_ptr<SharedJoinInput> shared,
                      size_t batch_capacity)
      : left_(std::move(left)),
        shared_(std::move(shared)),
        out_scheme_(left_->scheme().Concat(shared_->build_scheme)),
        input_(batch_capacity) {
    for (AttrId attr : shared_->goj_subset) {
      const int pos = left_->scheme().IndexOf(attr);
      FRO_CHECK_GE(pos, 0) << "GOJ subset must be contained in the left scheme";
      subset_positions_.push_back(pos);
    }
    for (AttrId attr : shared_->left_keys) {
      left_key_positions_.push_back(left_->scheme().IndexOf(attr));
    }
  }

  const Scheme& scheme() const override { return out_scheme_; }
  const char* physical_name() const override { return "Goj"; }
  std::vector<BatchIterator*> children() const override {
    return {left_.get()};
  }

 protected:
  void OpenImpl() override {
    left_->Open();
    if (shared_->pred != nullptr) bound_.Bind(shared_->pred, out_scheme_);
    local_matched_.clear();
    local_left_.clear();
    input_.Clear();
    input_pos_ = 0;
    left_active_ = false;
    matches_ = nullptr;
    merged_ = false;
    done_ = false;
    pad_rows_.clear();
    pad_pos_ = 0;
  }

  bool NextBatchImpl(TupleBatch* out) override {
    for (;;) {
      if (done_) return !out->empty();
      if (merged_) {
        // Pad phase (last worker only): stream the set-difference pads.
        while (!out->full() && pad_pos_ < pad_rows_.size()) {
          out->AppendSlot()->AssignFrom(pad_rows_[pad_pos_++]);
        }
        if (pad_pos_ >= pad_rows_.size()) {
          done_ = true;
          continue;
        }
        return true;
      }
      if (!left_active_) {
        if (input_pos_ >= input_.size()) {
          if (!left_->NextBatch(&input_)) {
            MergeProjections();
            continue;
          }
          input_pos_ = 0;
          continue;
        }
        const Tuple& lrow = input_.selected(input_pos_);
        ++mutable_stats().left_reads;
        left_had_match_ = false;
        if (shared_->use_hash) {
          match_pos_ = 0;
          ++mutable_stats().probes;
          probe_key_.clear();
          bool null_key = false;
          for (int pos : left_key_positions_) {
            Value v =
                NormalizeHashKeyValue(lrow.value(static_cast<size_t>(pos)));
            if (v.is_null()) {
              null_key = true;
              break;
            }
            probe_key_.push_back(std::move(v));
          }
          matches_ = null_key ? &no_matches_
                              : &shared_->Probe(probe_key_, &partition_);
        } else {
          right_pos_ = 0;
        }
        left_active_ = true;
      }
      const Tuple& lrow = input_.selected(input_pos_);
      for (;;) {
        const Tuple* rrow;
        if (shared_->use_hash) {
          if (match_pos_ >= matches_->size()) break;
          if (out->full()) return true;
          rrow = &shared_->part_rows[partition_].row((*matches_)[match_pos_++]);
        } else {
          if (right_pos_ >= shared_->rows.NumRows()) break;
          if (out->full()) return true;
          rrow = &shared_->rows.row(right_pos_++);
        }
        ++mutable_stats().right_reads;
        Tuple* slot = out->PeekSlot();
        slot->AssignConcat(lrow, *rrow);
        ++mutable_stats().predicate_evals;
        if (shared_->pred == nullptr || IsTrue(bound_.Eval(*slot))) {
          left_had_match_ = true;
          local_matched_.insert(ProjectSubset(lrow));
          out->CommitSlot();
        }
      }
      local_left_.insert(ProjectSubset(lrow));
      left_active_ = false;
      ++input_pos_;
    }
  }

  void CloseImpl() override {
    left_->Close();
    left_active_ = false;
    matches_ = nullptr;
    local_matched_.clear();
    local_left_.clear();
    pad_rows_.clear();
    pad_pos_ = 0;
  }

 private:
  std::vector<Value> ProjectSubset(const Tuple& lrow) const {
    std::vector<Value> key;
    key.reserve(subset_positions_.size());
    for (int pos : subset_positions_) {
      key.push_back(lrow.value(static_cast<size_t>(pos)));
    }
    return key;
  }

  void MergeProjections() {
    merged_ = true;
    std::lock_guard<std::mutex> lock(shared_->goj_mu);
    shared_->goj_matched_projections.insert(local_matched_.begin(),
                                            local_matched_.end());
    shared_->goj_left_projections.insert(local_left_.begin(),
                                         local_left_.end());
    FRO_CHECK_GT(shared_->goj_workers_remaining, 0);
    if (--shared_->goj_workers_remaining > 0) {
      // Another worker is still streaming; nothing to pad here.
      done_ = true;
      return;
    }
    // Last worker: (pi[S](L) − pi[S](JN)) × null, one pad per missing
    // DISTINCT projection — the std::set union already deduplicated
    // projections that appeared in several workers' morsels. Left columns
    // keep their positions under Concat, so the left-scheme subset
    // positions index the output scheme directly.
    for (const std::vector<Value>& key : shared_->goj_left_projections) {
      if (shared_->goj_matched_projections.count(key) > 0) continue;
      std::vector<Value> values(out_scheme_.size());
      for (size_t k = 0; k < subset_positions_.size(); ++k) {
        values[static_cast<size_t>(subset_positions_[k])] = key[k];
      }
      pad_rows_.push_back(Tuple(std::move(values)));
    }
  }

  BatchIteratorPtr left_;
  std::shared_ptr<SharedJoinInput> shared_;
  Scheme out_scheme_;
  BoundPredicate bound_;
  std::vector<int> subset_positions_;
  std::vector<int> left_key_positions_;
  std::vector<Value> probe_key_;
  size_t partition_ = 0;
  TupleBatch input_;
  size_t input_pos_ = 0;
  bool left_active_ = false;
  const std::vector<size_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
  size_t right_pos_ = 0;
  bool left_had_match_ = false;
  std::set<std::vector<Value>> local_matched_;
  std::set<std::vector<Value>> local_left_;
  bool merged_ = false;
  bool done_ = false;
  std::vector<Tuple> pad_rows_;
  size_t pad_pos_ = 0;
  const std::vector<size_t> no_matches_;
};

}  // namespace

// --- Exchange --------------------------------------------------------------

namespace {

enum class StepKind { kFilter, kProject, kJoin, kGoj };

struct ExchangeStep {
  ExprPtr expr;
  StepKind kind = StepKind::kFilter;
  std::shared_ptr<SharedJoinInput> join;  // kJoin / kGoj only
};

}  // namespace

/// Everything an exchange owns: the driver relation + morsel queue, the
/// spine steps bottom-up (with their shared join inputs), and the worker
/// pipelines compiled from them.
struct ExchangeState {
  const Relation* driver = nullptr;
  ExprPtr driver_expr;
  std::shared_ptr<MorselQueue> queue;
  /// Column cache over the driver relation, shared by all workers'
  /// morsel scans (RelationColumns builds each column once under a lock).
  std::shared_ptr<RelationColumns> driver_columns;
  std::vector<ExchangeStep> steps;
  std::vector<BatchIteratorPtr> workers;
};

BatchExchangeIterator::BatchExchangeIterator(
    std::unique_ptr<ExchangeState> state, ParallelOptions options)
    : state_(std::move(state)), options_(options) {
  FRO_CHECK(!state_->workers.empty());
  max_queued_ =
      std::max<size_t>(1, options_.queue_batches) * state_->workers.size();
}

BatchExchangeIterator::~BatchExchangeIterator() { CloseImpl(); }

const Scheme& BatchExchangeIterator::scheme() const {
  return state_->workers.front()->scheme();
}

int BatchExchangeIterator::workers() const {
  return static_cast<int>(state_->workers.size());
}

void BatchExchangeIterator::EnableTiming(bool on) {
  BatchIterator::EnableTiming(on);
  for (const BatchIteratorPtr& worker : state_->workers) {
    worker->EnableTiming(on);
  }
  for (const ExchangeStep& step : state_->steps) {
    if (step.join != nullptr) step.join->build_child->EnableTiming(on);
  }
}

void BatchExchangeIterator::SetControl(ExecControl* control) {
  BatchIterator::SetControl(control);
  for (const BatchIteratorPtr& worker : state_->workers) {
    worker->SetControl(control);
  }
  for (const ExchangeStep& step : state_->steps) {
    if (step.join != nullptr) step.join->build_child->SetControl(control);
  }
}

void BatchExchangeIterator::OpenImpl() {
  const int workers = static_cast<int>(state_->workers.size());
  for (const ExchangeStep& step : state_->steps) {
    if (step.join != nullptr) step.join->Prepare(workers);
  }
  state_->queue->Reset();
  pending_.clear();
  pending_pos_ = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ready_.clear();
    closed_ = false;
    producers_live_ = state_->workers.size();
  }
  threads_.reserve(state_->workers.size());
  for (size_t i = 0; i < state_->workers.size(); ++i) {
    threads_.emplace_back(&BatchExchangeIterator::WorkerMain, this, i);
  }
}

void BatchExchangeIterator::WorkerMain(size_t worker_index) {
  BatchIterator* worker = state_->workers[worker_index].get();
  worker->Open();
  TupleBatch batch(options_.batch_capacity);
  while (worker->NextBatch(&batch)) {
    if (batch.empty()) continue;
    std::vector<Tuple> staged;
    staged.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      staged.push_back(batch.selected(i));
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [&] {
        return closed_ || ready_.size() < max_queued_;
      });
      if (closed_) break;  // consumer abandoned the stream; drop the batch
      ready_.push_back(std::move(staged));
    }
    not_empty_.notify_one();
  }
  worker->Close();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --producers_live_;
  }
  not_empty_.notify_all();
}

bool BatchExchangeIterator::NextBatchImpl(TupleBatch* out) {
  for (;;) {
    while (!out->full() && pending_pos_ < pending_.size()) {
      out->AppendSlot()->AssignFrom(pending_[pending_pos_++]);
    }
    if (out->full()) return true;
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock,
                    [&] { return !ready_.empty() || producers_live_ == 0; });
    if (ready_.empty()) return !out->empty();
    pending_ = std::move(ready_.front());
    ready_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    pending_pos_ = 0;
  }
}

void BatchExchangeIterator::CloseImpl() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ready_.clear();
  }
  pending_.clear();
  pending_pos_ = 0;
  for (const ExchangeStep& step : state_->steps) {
    if (step.join != nullptr) step.join->ReleaseExecutionState();
  }
}

ExecStats BatchExchangeIterator::CollectWorkerStats() const {
  ExecStats totals;
  for (const BatchIteratorPtr& worker : state_->workers) {
    totals += CollectPipelineStats(worker.get());
  }
  for (const ExchangeStep& step : state_->steps) {
    if (step.join != nullptr) totals += SumPipelineStats(step.join->snapshot);
  }
  return totals;
}

namespace {

void MergeSnapshots(PlanOpStats* into, const PlanOpStats& other) {
  FRO_CHECK_EQ(into->children.size(), other.children.size())
      << "worker pipelines must be structurally identical";
  into->stats += other.stats;
  for (size_t i = 0; i < into->children.size(); ++i) {
    MergeSnapshots(&into->children[i], other.children[i]);
  }
}

}  // namespace

PlanOpStats BatchExchangeIterator::SnapshotMerged() const {
  PlanOpStats merged = SnapshotPlanStats(state_->workers.front().get());
  for (size_t i = 1; i < state_->workers.size(); ++i) {
    MergeSnapshots(&merged, SnapshotPlanStats(state_->workers[i].get()));
  }
  // Walk the spine top-down (steps are stored bottom-up) and attach each
  // shared build subtree's snapshot as its join's right child; the worker
  // chain node stays children[0], matching the serial (left, right)
  // order.
  PlanOpStats* node = &merged;
  for (auto it = state_->steps.rbegin(); it != state_->steps.rend(); ++it) {
    if (it->join != nullptr) node->children.push_back(it->join->snapshot);
    FRO_CHECK(!node->children.empty());
    node = &node->children[0];
  }
  return merged;
}

// --- Spine analysis + parallel plan builder --------------------------------

namespace {

bool JoinLike(OpKind kind) {
  return kind == OpKind::kJoin || kind == OpKind::kOuterJoin ||
         kind == OpKind::kAntijoin || kind == OpKind::kSemijoin;
}

/// The operand the worker pipelines stream: the preserved/kept side of a
/// join-like (the one the serial builder anchors left), the input of a
/// restrict/project, the preserved (left) operand of a GOJ.
const ExprPtr& SpineChild(const ExprPtr& expr) {
  if (JoinLike(expr->kind())) {
    const bool spine_is_left =
        expr->kind() == OpKind::kJoin || expr->preserves_left();
    return spine_is_left ? expr->left() : expr->right();
  }
  return expr->left();
}

bool SpineEligible(const ExprPtr& expr) {
  switch (expr->kind()) {
    case OpKind::kLeaf:
      return true;
    case OpKind::kRestrict:
    case OpKind::kGoj:
      return SpineEligible(expr->left());
    case OpKind::kProject:
      // Duplicate elimination needs a global seen-set; run it serially
      // over the merged stream instead.
      return !expr->project_dedup() && SpineEligible(expr->left());
    case OpKind::kJoin:
    case OpKind::kOuterJoin:
    case OpKind::kAntijoin:
    case OpKind::kSemijoin:
      return SpineEligible(SpineChild(expr));
    default:
      return false;
  }
}

BatchIteratorPtr BuildParallel(const ExprPtr& expr, const Database& db,
                               const ParallelOptions& options);

/// Compiles one worker pipeline from the planned spine.
BatchIteratorPtr BuildWorker(const ExchangeState& state,
                             const ParallelOptions& options) {
  BatchIteratorPtr it = std::make_unique<MorselScanIterator>(
      state.driver, state.queue, state.driver_columns);
  it->set_source_expr(state.driver_expr);
  for (const ExchangeStep& step : state.steps) {
    switch (step.kind) {
      case StepKind::kFilter:
        it = std::make_unique<BatchFilterIterator>(std::move(it),
                                                   step.expr->pred());
        break;
      case StepKind::kProject:
        it = std::make_unique<BatchProjectIterator>(
            std::move(it), step.expr->project_cols(), /*dedup=*/false,
            options.batch_capacity);
        break;
      case StepKind::kJoin:
        if (step.join->use_hash) {
          it = std::make_unique<ParallelHashJoinIterator>(
              std::move(it), step.join, options.batch_capacity);
        } else {
          it = std::make_unique<ParallelNestedLoopJoinIterator>(
              std::move(it), step.join, options.batch_capacity);
        }
        break;
      case StepKind::kGoj:
        it = std::make_unique<ParallelGojIterator>(std::move(it), step.join,
                                                   options.batch_capacity);
        break;
    }
    it->set_source_expr(step.expr);
  }
  return it;
}

/// Plans the spine of an eligible expression and assembles the exchange.
BatchIteratorPtr MakeExchange(const ExprPtr& expr, const Database& db,
                              const ParallelOptions& options) {
  // Collect the spine root-to-leaf, then plan bottom-up so each step sees
  // its input scheme (which must equal the serial left child's scheme —
  // key extraction and hash/NL choice depend on it).
  std::vector<ExprPtr> chain;
  ExprPtr cursor = expr;
  while (!cursor->is_leaf()) {
    chain.push_back(cursor);
    cursor = SpineChild(cursor);
  }
  std::reverse(chain.begin(), chain.end());

  auto state = std::make_unique<ExchangeState>();
  state->driver = &db.relation(cursor->rel());
  state->driver_expr = cursor;
  state->queue = std::make_shared<MorselQueue>(state->driver->NumRows(),
                                               options.morsel_rows);
  state->driver_columns = db.CachedColumns(cursor->rel());
  Scheme scheme = state->driver->scheme();
  for (const ExprPtr& node : chain) {
    ExchangeStep step;
    step.expr = node;
    switch (node->kind()) {
      case OpKind::kRestrict:
        step.kind = StepKind::kFilter;
        break;
      case OpKind::kProject:
        step.kind = StepKind::kProject;
        scheme = Scheme(node->project_cols());
        break;
      case OpKind::kGoj: {
        step.kind = StepKind::kGoj;
        auto shared = std::make_shared<SharedJoinInput>();
        shared->is_goj = true;
        shared->pred = node->pred();
        shared->goj_subset = node->goj_subset();
        shared->build_child = BuildParallel(node->right(), db, options);
        shared->build_scheme = shared->build_child->scheme();
        EquiKeys keys =
            ExtractEquiKeys(node->pred(), scheme, shared->build_scheme);
        // Matcher's strategy choice: hash unless forced to nested loop or
        // no equi keys exist.
        shared->use_hash =
            keys.Usable() && options.algo != JoinAlgo::kNestedLoop;
        shared->left_keys = std::move(keys.left);
        shared->right_keys = std::move(keys.right);
        step.join = std::move(shared);
        scheme = scheme.Concat(step.join->build_scheme);
        break;
      }
      default: {
        FRO_CHECK(JoinLike(node->kind()));
        step.kind = StepKind::kJoin;
        auto shared = std::make_shared<SharedJoinInput>();
        shared->mode = ModeOfKind(node->kind());
        shared->pred = node->pred();
        const bool spine_is_left =
            node->kind() == OpKind::kJoin || node->preserves_left();
        const ExprPtr& off_spine =
            spine_is_left ? node->right() : node->left();
        shared->build_child = BuildParallel(off_spine, db, options);
        shared->build_scheme = shared->build_child->scheme();
        EquiKeys keys =
            ExtractEquiKeys(node->pred(), scheme, shared->build_scheme);
        shared->use_hash = keys.Usable() && (options.algo == JoinAlgo::kHash ||
                                             options.algo == JoinAlgo::kAuto);
        shared->left_keys = std::move(keys.left);
        shared->right_keys = std::move(keys.right);
        const JoinMode mode = shared->mode;
        step.join = std::move(shared);
        scheme = JoinOutScheme(scheme, step.join->build_scheme, mode);
        break;
      }
    }
    state->steps.push_back(std::move(step));
  }
  for (int i = 0; i < options.threads; ++i) {
    state->workers.push_back(BuildWorker(*state, options));
  }
  BatchIteratorPtr it =
      std::make_unique<BatchExchangeIterator>(std::move(state), options);
  it->set_source_expr(expr);
  return it;
}

BatchIteratorPtr BuildParallel(const ExprPtr& expr, const Database& db,
                               const ParallelOptions& options) {
  if (SpineEligible(expr)) return MakeExchange(expr, db, options);
  // Serial root over recursively-parallel children: the merged exchange
  // streams feed an ordinary serial operator.
  BatchIteratorPtr it;
  switch (expr->kind()) {
    case OpKind::kRestrict:
      it = std::make_unique<BatchFilterIterator>(
          BuildParallel(expr->left(), db, options), expr->pred());
      break;
    case OpKind::kProject:
      it = std::make_unique<BatchProjectIterator>(
          BuildParallel(expr->left(), db, options), expr->project_cols(),
          expr->project_dedup(), options.batch_capacity);
      break;
    case OpKind::kUnion:
      it = std::make_unique<BatchUnionIterator>(
          BuildParallel(expr->left(), db, options),
          BuildParallel(expr->right(), db, options), options.batch_capacity);
      break;
    case OpKind::kGoj:
      it = std::make_unique<BatchGojIterator>(
          BuildParallel(expr->left(), db, options),
          BuildParallel(expr->right(), db, options), expr->pred(),
          expr->goj_subset(), options.algo);
      break;
    case OpKind::kMultiwayJoin:
      // Leapfrog runs serially over its trie indexes (no spine to
      // partition); build the whole subtree with the serial builder.
      return BuildBatchIterator(expr, db, options.algo,
                                options.batch_capacity);
    default: {
      FRO_CHECK(JoinLike(expr->kind())) << "unexpected operator kind";
      // Join-like: anchor the preserved/kept operand on the left, as the
      // serial builders do.
      ExprPtr anchor = expr->left();
      ExprPtr other = expr->right();
      if (!expr->preserves_left() && expr->kind() != OpKind::kJoin) {
        std::swap(anchor, other);
      }
      BatchIteratorPtr left = BuildParallel(anchor, db, options);
      BatchIteratorPtr right = BuildParallel(other, db, options);
      JoinMode mode = ModeOfKind(expr->kind());
      EquiKeys keys =
          ExtractEquiKeys(expr->pred(), left->scheme(), right->scheme());
      const bool use_hash =
          keys.Usable() &&
          (options.algo == JoinAlgo::kHash || options.algo == JoinAlgo::kAuto);
      if (use_hash) {
        it = std::make_unique<BatchHashJoinIterator>(
            std::move(left), std::move(right), expr->pred(), mode,
            std::move(keys.left), std::move(keys.right),
            options.batch_capacity);
      } else {
        it = std::make_unique<BatchNestedLoopJoinIterator>(
            std::move(left), std::move(right), expr->pred(), mode,
            options.batch_capacity);
      }
      break;
    }
  }
  it->set_source_expr(expr);
  return it;
}

}  // namespace

bool MorselParallelizable(const ExprPtr& expr) {
  return expr != nullptr && SpineEligible(expr);
}

BatchIteratorPtr BuildParallelBatchIterator(const ExprPtr& expr,
                                            const Database& db,
                                            const ParallelOptions& options) {
  FRO_CHECK(expr != nullptr);
  if (options.threads <= 1) {
    return BuildBatchIterator(expr, db, options.algo, options.batch_capacity);
  }
  return BuildParallel(expr, db, options);
}

Relation ExecuteParallelBatched(const ExprPtr& expr, const Database& db,
                                const ParallelOptions& options) {
  BatchIteratorPtr root = BuildParallelBatchIterator(expr, db, options);
  return DrainBatches(root.get());
}

}  // namespace fro
