#include "exec/operators.h"

#include "common/check.h"
#include "relational/ops.h"
#include "relational/sort_merge.h"

namespace fro {

Relation Drain(TupleIterator* iterator) {
  Relation out(iterator->scheme());
  iterator->Open();
  Tuple tuple;
  while (iterator->Next(&tuple)) {
    out.AddRow(tuple);
  }
  iterator->Close();
  return out;
}

Result<Relation> DrainChecked(TupleIterator* iterator, ExecControl* control) {
  Relation out(iterator->scheme());
  iterator->Open();
  Tuple tuple;
  while (iterator->Next(&tuple)) {
    out.AddRow(tuple);
  }
  iterator->Close();
  if (control != nullptr) {
    // One authoritative deadline check at completion: the per-tuple
    // stride (or per-batch check) may never have read the clock on a
    // short pipeline, but an armed deadline that has passed must
    // surface regardless of query size.
    control->ShouldStopBatch();
    FRO_RETURN_IF_ERROR(control->status());
  }
  return out;
}

ExecStats CollectPipelineStats(TupleIterator* root) {
  ExecStats totals;
  root->Visit([&](TupleIterator* node, int) {
    if (node->children().empty()) return;  // scans: charged as reads above
    totals += node->stats();
  });
  return totals;
}

// --- Scan ----------------------------------------------------------------

ScanIterator::ScanIterator(const Relation* relation) : relation_(relation) {
  FRO_CHECK(relation != nullptr);
}

void ScanIterator::OpenImpl() { pos_ = 0; }

bool ScanIterator::NextImpl(Tuple* out) {
  if (pos_ >= relation_->NumRows()) return false;
  *out = relation_->row(pos_++);
  return true;
}

void ScanIterator::CloseImpl() {}

const Scheme& ScanIterator::scheme() const { return relation_->scheme(); }

// --- Filter ----------------------------------------------------------------

FilterIterator::FilterIterator(IteratorPtr child, PredicatePtr pred)
    : child_(std::move(child)), pred_(std::move(pred)) {
  FRO_CHECK(pred_ != nullptr);
}

void FilterIterator::OpenImpl() { child_->Open(); }

bool FilterIterator::NextImpl(Tuple* out) {
  Tuple tuple;
  while (child_->Next(&tuple)) {
    ++mutable_stats().left_reads;
    ++mutable_stats().predicate_evals;
    if (IsTrue(pred_->Eval(tuple, child_->scheme()))) {
      *out = std::move(tuple);
      return true;
    }
  }
  return false;
}

void FilterIterator::CloseImpl() { child_->Close(); }

const Scheme& FilterIterator::scheme() const { return child_->scheme(); }

// --- Project ---------------------------------------------------------------

ProjectIterator::ProjectIterator(IteratorPtr child, std::vector<AttrId> cols,
                                 bool dedup)
    : child_(std::move(child)), out_scheme_(Scheme(cols)), dedup_(dedup) {
  for (AttrId attr : cols) {
    int pos = child_->scheme().IndexOf(attr);
    FRO_CHECK_GE(pos, 0) << "projection column not in child scheme";
    positions_.push_back(pos);
  }
}

void ProjectIterator::OpenImpl() {
  child_->Open();
  seen_.clear();
}

bool ProjectIterator::NextImpl(Tuple* out) {
  Tuple tuple;
  while (child_->Next(&tuple)) {
    ++mutable_stats().left_reads;
    std::vector<Value> values;
    values.reserve(positions_.size());
    for (int pos : positions_) {
      values.push_back(tuple.value(static_cast<size_t>(pos)));
    }
    if (dedup_ && !seen_.insert(values).second) continue;
    *out = Tuple(std::move(values));
    return true;
  }
  return false;
}

void ProjectIterator::CloseImpl() {
  child_->Close();
  seen_.clear();
}

const Scheme& ProjectIterator::scheme() const { return out_scheme_; }

// --- Union -----------------------------------------------------------------

UnionIterator::UnionIterator(IteratorPtr left, IteratorPtr right)
    : left_(std::move(left)), right_(std::move(right)) {
  AttrSet all =
      left_->scheme().ToAttrSet().Union(right_->scheme().ToAttrSet());
  out_scheme_ = Scheme(all.ids());
}

Tuple UnionIterator::PadFrom(const Tuple& tuple,
                             const Scheme& source) const {
  std::vector<Value> values(out_scheme_.size());
  for (size_t c = 0; c < out_scheme_.size(); ++c) {
    int pos = source.IndexOf(out_scheme_.col(c));
    if (pos >= 0) values[c] = tuple.value(static_cast<size_t>(pos));
  }
  return Tuple(std::move(values));
}

void UnionIterator::OpenImpl() {
  left_->Open();
  right_->Open();
  on_right_ = false;
}

bool UnionIterator::NextImpl(Tuple* out) {
  Tuple tuple;
  if (!on_right_) {
    if (left_->Next(&tuple)) {
      ++mutable_stats().left_reads;
      *out = PadFrom(tuple, left_->scheme());
      return true;
    }
    on_right_ = true;
  }
  if (right_->Next(&tuple)) {
    ++mutable_stats().right_reads;
    *out = PadFrom(tuple, right_->scheme());
    return true;
  }
  return false;
}

void UnionIterator::CloseImpl() {
  left_->Close();
  right_->Close();
}

const Scheme& UnionIterator::scheme() const { return out_scheme_; }

// --- Nested-loop join ------------------------------------------------------

namespace {

Scheme JoinOutScheme(const Scheme& left, const Scheme& right,
                     JoinMode mode) {
  switch (mode) {
    case JoinMode::kInner:
    case JoinMode::kLeftOuter:
      return left.Concat(right);
    case JoinMode::kAnti:
    case JoinMode::kSemi:
      return left;
  }
  return left;
}

}  // namespace

NestedLoopJoinIterator::NestedLoopJoinIterator(IteratorPtr left,
                                               IteratorPtr right,
                                               PredicatePtr pred,
                                               JoinMode mode)
    : left_(std::move(left)),
      right_(std::move(right)),
      pred_(std::move(pred)),
      mode_(mode),
      out_scheme_(JoinOutScheme(left_->scheme(), right_->scheme(), mode)),
      joined_scheme_(left_->scheme().Concat(right_->scheme())) {}

void NestedLoopJoinIterator::OpenImpl() {
  left_->Open();
  // Materialize the right input once (block nested loop).
  right_rows_.clear();
  right_->Open();
  Tuple tuple;
  while (right_->Next(&tuple)) right_rows_.push_back(tuple);
  right_->Close();
  current_left_.reset();
}

bool NestedLoopJoinIterator::AdvanceLeft() {
  Tuple tuple;
  if (!left_->Next(&tuple)) return false;
  ++mutable_stats().left_reads;
  current_left_ = std::move(tuple);
  right_pos_ = 0;
  left_had_match_ = false;
  return true;
}

bool NestedLoopJoinIterator::NextImpl(Tuple* out) {
  for (;;) {
    if (!current_left_.has_value() && !AdvanceLeft()) return false;
    bool dropped_left = false;
    while (right_pos_ < right_rows_.size()) {
      const Tuple& rrow = right_rows_[right_pos_++];
      ++mutable_stats().right_reads;
      Tuple joined = current_left_->Concat(rrow);
      ++mutable_stats().predicate_evals;
      if (pred_ != nullptr && !IsTrue(pred_->Eval(joined, joined_scheme_))) {
        continue;
      }
      left_had_match_ = true;
      switch (mode_) {
        case JoinMode::kInner:
        case JoinMode::kLeftOuter:
          *out = std::move(joined);
          return true;
        case JoinMode::kSemi:
          *out = *current_left_;
          current_left_.reset();
          return true;
        case JoinMode::kAnti:
          current_left_.reset();
          dropped_left = true;
          break;
      }
      if (dropped_left) break;
    }
    if (dropped_left) continue;
    // Right side exhausted for this left tuple.
    const bool unmatched = !left_had_match_;
    Tuple left_tuple = *current_left_;
    current_left_.reset();
    if (mode_ == JoinMode::kLeftOuter && unmatched) {
      *out = left_tuple.Concat(Tuple::Nulls(right_->scheme().size()));
      return true;
    }
    if (mode_ == JoinMode::kAnti && unmatched) {
      *out = std::move(left_tuple);
      return true;
    }
  }
}

void NestedLoopJoinIterator::CloseImpl() {
  left_->Close();
  right_rows_.clear();
  current_left_.reset();
}

const Scheme& NestedLoopJoinIterator::scheme() const { return out_scheme_; }

// --- Hash join ---------------------------------------------------------

HashJoinIterator::HashJoinIterator(IteratorPtr left, IteratorPtr right,
                                   PredicatePtr pred, JoinMode mode,
                                   std::vector<AttrId> left_keys,
                                   std::vector<AttrId> right_keys)
    : left_(std::move(left)),
      right_(std::move(right)),
      pred_(std::move(pred)),
      mode_(mode),
      out_scheme_(JoinOutScheme(left_->scheme(), right_->scheme(), mode)),
      joined_scheme_(left_->scheme().Concat(right_->scheme())),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)) {
  FRO_CHECK(!left_keys_.empty());
  FRO_CHECK_EQ(left_keys_.size(), right_keys_.size());
  for (AttrId attr : left_keys_) {
    int pos = left_->scheme().IndexOf(attr);
    FRO_CHECK_GE(pos, 0);
    left_key_positions_.push_back(pos);
  }
}

void HashJoinIterator::OpenImpl() {
  left_->Open();
  // Build phase: materialize and index the right input.
  Relation raw(right_->scheme());
  right_->Open();
  Tuple tuple;
  while (right_->Next(&tuple)) raw.AddRow(tuple);
  right_->Close();
  build_side_ = std::move(raw);
  normalized_build_ = NormalizeOnKeyColumns(build_side_, right_keys_);
  index_ = std::make_unique<HashIndex>(normalized_build_, right_keys_);
  current_left_.reset();
  matches_ = nullptr;
}

bool HashJoinIterator::AdvanceLeft() {
  Tuple tuple;
  if (!left_->Next(&tuple)) return false;
  ++mutable_stats().left_reads;
  current_left_ = std::move(tuple);
  left_had_match_ = false;
  match_pos_ = 0;
  probe_key_.clear();
  null_key_ = false;
  for (int pos : left_key_positions_) {
    Value v =
        NormalizeHashKeyValue(current_left_->value(static_cast<size_t>(pos)));
    if (v.is_null()) {
      null_key_ = true;
      break;
    }
    probe_key_.push_back(std::move(v));
  }
  ++mutable_stats().probes;
  matches_ = null_key_ ? &no_matches_
                       : &index_->Probe(probe_key_.data(), probe_key_.size());
  return true;
}

bool HashJoinIterator::NextImpl(Tuple* out) {
  for (;;) {
    if (!current_left_.has_value() && !AdvanceLeft()) return false;
    bool dropped_left = false;
    while (match_pos_ < matches_->size()) {
      const Tuple& rrow = build_side_.row((*matches_)[match_pos_++]);
      ++mutable_stats().right_reads;
      Tuple joined = current_left_->Concat(rrow);
      ++mutable_stats().predicate_evals;
      if (pred_ != nullptr && !IsTrue(pred_->Eval(joined, joined_scheme_))) {
        continue;
      }
      left_had_match_ = true;
      switch (mode_) {
        case JoinMode::kInner:
        case JoinMode::kLeftOuter:
          *out = std::move(joined);
          return true;
        case JoinMode::kSemi:
          *out = *current_left_;
          current_left_.reset();
          return true;
        case JoinMode::kAnti:
          current_left_.reset();
          dropped_left = true;
          break;
      }
      if (dropped_left) break;
    }
    if (dropped_left) continue;
    const bool unmatched = !left_had_match_;
    Tuple left_tuple = *current_left_;
    current_left_.reset();
    if (mode_ == JoinMode::kLeftOuter && unmatched) {
      *out = left_tuple.Concat(Tuple::Nulls(right_->scheme().size()));
      return true;
    }
    if (mode_ == JoinMode::kAnti && unmatched) {
      *out = std::move(left_tuple);
      return true;
    }
  }
}

void HashJoinIterator::CloseImpl() {
  left_->Close();
  index_.reset();
  build_side_ = Relation();
  normalized_build_ = Relation();
  current_left_.reset();
  matches_ = nullptr;
}

const Scheme& HashJoinIterator::scheme() const { return out_scheme_; }

// --- Sort-merge join -----------------------------------------------------

SortMergeJoinIterator::SortMergeJoinIterator(IteratorPtr left,
                                             IteratorPtr right,
                                             PredicatePtr pred,
                                             JoinMode mode)
    : left_(std::move(left)),
      right_(std::move(right)),
      pred_(std::move(pred)),
      mode_(mode),
      out_scheme_(JoinOutScheme(left_->scheme(), right_->scheme(), mode)) {}

void SortMergeJoinIterator::OpenImpl() {
  Relation left_rel = Drain(left_.get());
  Relation right_rel = Drain(right_.get());
  KernelStats ks;
  switch (mode_) {
    case JoinMode::kInner:
      result_ = SortMergeJoin(left_rel, right_rel, pred_, &ks);
      break;
    case JoinMode::kLeftOuter:
      result_ = SortMergeLeftOuterJoin(left_rel, right_rel, pred_, &ks);
      break;
    case JoinMode::kAnti:
      result_ = SortMergeAntijoin(left_rel, right_rel, pred_, &ks);
      break;
    case JoinMode::kSemi:
      result_ = SortMergeSemijoin(left_rel, right_rel, pred_, &ks);
      break;
  }
  // The kernel already counted the full output; emissions are counted by
  // the base class as rows actually stream out.
  ks.emitted = 0;
  mutable_stats() += ks;
  pos_ = 0;
}

bool SortMergeJoinIterator::NextImpl(Tuple* out) {
  if (pos_ >= result_.NumRows()) return false;
  *out = result_.row(pos_++);
  return true;
}

void SortMergeJoinIterator::CloseImpl() {
  result_ = Relation();
  pos_ = 0;
}

const Scheme& SortMergeJoinIterator::scheme() const { return out_scheme_; }

// --- Generalized outerjoin ---------------------------------------------

GojIterator::GojIterator(IteratorPtr left, IteratorPtr right,
                         PredicatePtr pred, AttrSet subset, JoinAlgo algo)
    : left_(std::move(left)),
      right_(std::move(right)),
      pred_(std::move(pred)),
      subset_(std::move(subset)),
      algo_(algo),
      out_scheme_(left_->scheme().Concat(right_->scheme())) {}

void GojIterator::OpenImpl() {
  Relation left_rel = Drain(left_.get());
  Relation right_rel = Drain(right_.get());
  KernelStats ks;
  result_ = GeneralizedOuterJoin(left_rel, right_rel, pred_, subset_, algo_,
                                 &ks);
  ks.emitted = 0;  // counted by the base class as rows stream out
  mutable_stats() += ks;
  pos_ = 0;
}

bool GojIterator::NextImpl(Tuple* out) {
  if (pos_ >= result_.NumRows()) return false;
  *out = result_.row(pos_++);
  return true;
}

void GojIterator::CloseImpl() {
  result_ = Relation();
  pos_ = 0;
}

const Scheme& GojIterator::scheme() const { return out_scheme_; }

}  // namespace fro
