// Morsel-driven intra-query parallelism for the batch engine.
//
// A parallelizable plan region — its "spine": the probe/preserved side of
// a chain of filters, projections, and join-likes down to one base
// relation — is compiled into N identical worker pipelines. Each worker
// pulls fixed-size row ranges ("morsels") of the base relation from a
// shared atomic work queue, so the scan self-balances; a
// BatchExchangeIterator gathers the workers' batches through a bounded
// queue into one merged stream that serial consumers (union,
// duplicate-eliminating projection, the rest of the plan) drain like any
// other batch operator. Build sides of spine joins are evaluated once,
// partitioned by normalized key hash, and indexed in parallel; probes
// hit exactly the partition their key hashes to, so candidate sets and
// match order equal the serial engine's.
//
// The paper-specific twist is outerjoin padding. Left-outer/anti padding
// is per probe row, hence naturally partition-local and exactly-once.
// GOJ padding (eq. 14) is not: it pads per *distinct* S-projection of
// the preserved operand absent from pi[S] of the join, a property no
// single worker can decide. Workers therefore keep local
// matched/seen-projection sets and merge them into the shared input
// under a mutex as they finish; the last worker to arrive emits the
// set-difference pads exactly once, preserving bag semantics.
//
// Counter parity: every parallel operator replicates its serial
// counterpart's ExecStats accounting tuple for tuple, and each probe row
// is processed by exactly one worker, so summing a counter across
// workers (CollectWorkerStats / SnapshotMerged) reproduces the serial
// totals — EXPLAIN ANALYZE and fro_fuzz's stats-parity checks hold
// unchanged. With threads <= 1 the builder returns the ordinary serial
// batch plan, bit-identical to today's engine.

#ifndef FRO_EXEC_MORSEL_H_
#define FRO_EXEC_MORSEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "algebra/expr.h"
#include "exec/batch_iterator.h"
#include "exec/stats_view.h"
#include "relational/column.h"
#include "relational/database.h"
#include "relational/ops.h"
#include "relational/relation.h"

namespace fro {

/// Knobs for the parallel plan builder. The defaults parallelize a
/// 200k-row scan into ~200 morsels; tests and the fuzzer shrink
/// `morsel_rows`/`batch_capacity` to force cross-morsel and
/// cross-partition paths on tiny relations.
struct ParallelOptions {
  /// Worker pipelines per exchange; <= 1 builds the serial batch plan.
  int threads = 1;
  /// Rows per morsel claimed from the shared queue.
  size_t morsel_rows = 1024;
  /// TupleBatch capacity of the worker pipelines and the merged stream.
  size_t batch_capacity = TupleBatch::kDefaultCapacity;
  /// Join strategy, as in the serial builders.
  JoinAlgo algo = JoinAlgo::kAuto;
  /// Exchange buffering: at most `queue_batches * threads` batches parked
  /// between producers and the consumer before producers block.
  size_t queue_batches = 4;
};

/// Work queue over the row range [0, total_rows): workers claim disjoint
/// morsels with one relaxed fetch_add until the range is exhausted.
class MorselQueue {
 public:
  MorselQueue(size_t total_rows, size_t morsel_rows);

  /// Re-arms the queue for a rescan. Call only while no worker claims.
  void Reset() { next_.store(0, std::memory_order_relaxed); }

  /// Claims the next morsel as [*begin, *end); false when exhausted.
  bool Claim(size_t* begin, size_t* end);

  size_t total_rows() const { return total_rows_; }
  size_t morsel_rows() const { return morsel_rows_; }

 private:
  size_t total_rows_;
  size_t morsel_rows_;
  std::atomic<size_t> next_{0};
};

/// Base-relation scan over morsels claimed from a shared queue. Each
/// claimed morsel streams out as zero-copy views of the relation's row
/// storage, at most a batch-capacity of rows at a time.
class MorselScanIterator : public BatchIterator {
 public:
  /// `columns` optionally attaches a relation-wide column cache shared by
  /// every worker (RelationColumns is internally synchronized), giving
  /// downstream vectorized operators transpose-free column access.
  MorselScanIterator(const Relation* relation,
                     std::shared_ptr<MorselQueue> queue,
                     std::shared_ptr<RelationColumns> columns = nullptr);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "MorselScan"; }

 protected:
  void OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  const Relation* relation_;
  std::shared_ptr<MorselQueue> queue_;
  std::shared_ptr<RelationColumns> columns_;
  size_t begin_ = 0;  // unconsumed remainder of the claimed morsel
  size_t end_ = 0;
};

struct ExchangeState;  // morsel.cc: spine steps, shared join inputs, workers

/// Gathers N worker pipelines into one merged batch stream.
///
/// Open() prepares the shared join inputs (drains each build side once,
/// partitions and indexes it in parallel), resets the morsel queue and
/// the GOJ padding state, and spawns one thread per worker; NextBatch()
/// hands out rows from a bounded producer/consumer queue; Close() wakes
/// and joins the workers. The workers and shared build subtrees are
/// internal — children() stays empty — so generic tree walks see a leaf;
/// stats rollups instead splice in SnapshotMerged(), a node-wise
/// cross-worker merge of the spine with each build subtree's snapshot
/// attached as its join's second child. The exchange node itself is
/// stats-passthrough, like the engine-bridging adapters.
class BatchExchangeIterator : public BatchIterator {
 public:
  BatchExchangeIterator(std::unique_ptr<ExchangeState> state,
                        ParallelOptions options);
  ~BatchExchangeIterator() override;

  const Scheme& scheme() const override;
  const char* physical_name() const override { return "Exchange"; }
  void EnableTiming(bool on = true) override;
  void SetControl(ExecControl* control) override;

  int workers() const;

  /// Pipeline totals of everything behind the exchange: worker operator
  /// counters plus the shared build subtrees' totals, each counted once.
  ExecStats CollectWorkerStats() const;

  /// The spine merged node-wise across workers (counters summed), with
  /// each shared build subtree spliced in as its join's right child.
  PlanOpStats SnapshotMerged() const;

 protected:
  void OpenImpl() override;
  bool NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override;

 private:
  void WorkerMain(size_t worker_index);

  std::unique_ptr<ExchangeState> state_;
  ParallelOptions options_;
  size_t max_queued_ = 1;

  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::vector<Tuple>> ready_;
  size_t producers_live_ = 0;
  bool closed_ = false;
  std::vector<std::thread> threads_;

  /// Batch currently being replayed to the consumer.
  std::vector<Tuple> pending_;
  size_t pending_pos_ = 0;
};

/// True when `expr` has a parallelizable spine: a chain of restricts,
/// non-deduplicating projections, GOJs, and join-likes whose
/// preserved/kept operand recursively bottoms out at a base relation.
bool MorselParallelizable(const ExprPtr& expr);

/// Parallel counterpart of BuildBatchIterator: compiles parallelizable
/// regions to exchanges over `options.threads` morsel-driven workers and
/// everything else (unions, deduplicating projections) to the ordinary
/// serial operators consuming the merged streams. With
/// `options.threads <= 1` this IS BuildBatchIterator — same objects,
/// same plan, bit-identical execution.
BatchIteratorPtr BuildParallelBatchIterator(const ExprPtr& expr,
                                            const Database& db,
                                            const ParallelOptions& options);

/// Convenience: build a parallel plan, drain it, return the result.
Relation ExecuteParallelBatched(const ExprPtr& expr, const Database& db,
                                const ParallelOptions& options);

}  // namespace fro

#endif  // FRO_EXEC_MORSEL_H_
