// Physical operators for the Volcano executor.
//
// Join-like operators come in four modes sharing one matching core:
// inner join, left outer join, antijoin (emit left tuples with no match),
// and semijoin (emit left tuples with a match, once). Two physical
// strategies exist: block nested loop (right input materialized at
// Open) and hash (build on the right input, probe from the left). The
// generalized outerjoin is inherently blocking (it needs the full set of
// matched S-projections) and is implemented as a materializing operator.
//
// Every operator maintains the ExecStats counters of its base class with
// the kernel accounting of relational/ops.h: reads count candidate tuples
// fetched from an input, probes count per-left-row hash lookups, and the
// antijoin/semijoin modes stop scanning a left row's candidates at the
// first match (exactly like the kernels).

#ifndef FRO_EXEC_OPERATORS_H_
#define FRO_EXEC_OPERATORS_H_

#include <optional>
#include <set>
#include <vector>

#include "exec/iterator.h"
#include "relational/index.h"
#include "relational/ops.h"
#include "relational/predicate.h"

namespace fro {

enum class JoinMode : uint8_t {
  kInner,
  kLeftOuter,
  kAnti,
  kSemi,
};

/// Full scan of a materialized relation (which must outlive the scan).
class ScanIterator : public TupleIterator {
 public:
  explicit ScanIterator(const Relation* relation);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "Scan"; }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

 private:
  const Relation* relation_;
  size_t pos_ = 0;
};

/// sigma[pred](child).
class FilterIterator : public TupleIterator {
 public:
  FilterIterator(IteratorPtr child, PredicatePtr pred);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "Filter"; }
  std::vector<TupleIterator*> children() const override {
    return {child_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

 private:
  IteratorPtr child_;
  PredicatePtr pred_;
};

/// pi[cols](child), optionally duplicate-eliminating (blocking the
/// duplicate check only; rows stream through).
class ProjectIterator : public TupleIterator {
 public:
  ProjectIterator(IteratorPtr child, std::vector<AttrId> cols, bool dedup);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "Project"; }
  std::vector<TupleIterator*> children() const override {
    return {child_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

 private:
  IteratorPtr child_;
  std::vector<int> positions_;
  Scheme out_scheme_;
  bool dedup_;
  std::set<std::vector<Value>> seen_;
};

/// Bag union with the padding convention; children stream sequentially.
class UnionIterator : public TupleIterator {
 public:
  UnionIterator(IteratorPtr left, IteratorPtr right);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "Union"; }
  std::vector<TupleIterator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

 private:
  Tuple PadFrom(const Tuple& tuple, const Scheme& source) const;

  IteratorPtr left_;
  IteratorPtr right_;
  Scheme out_scheme_;
  bool on_right_ = false;
};

/// Block nested-loop join-like operator: the right input is materialized
/// at Open(); left tuples stream.
class NestedLoopJoinIterator : public TupleIterator {
 public:
  NestedLoopJoinIterator(IteratorPtr left, IteratorPtr right,
                         PredicatePtr pred, JoinMode mode);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "NestedLoopJoin"; }
  std::vector<TupleIterator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

 private:
  bool AdvanceLeft();

  IteratorPtr left_;
  IteratorPtr right_;
  PredicatePtr pred_;
  JoinMode mode_;
  Scheme out_scheme_;
  Scheme joined_scheme_;
  std::vector<Tuple> right_rows_;
  std::optional<Tuple> current_left_;
  size_t right_pos_ = 0;
  bool left_had_match_ = false;
};

/// Hash join-like operator: builds a hash table on the right input's
/// equi-key columns at Open(); probes with streaming left tuples. The
/// full predicate is re-checked on candidates. Falls back to nested loop
/// behaviour is NOT provided here — the plan builder selects this
/// operator only when equi-keys exist.
class HashJoinIterator : public TupleIterator {
 public:
  HashJoinIterator(IteratorPtr left, IteratorPtr right, PredicatePtr pred,
                   JoinMode mode, std::vector<AttrId> left_keys,
                   std::vector<AttrId> right_keys);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "HashJoin"; }
  std::vector<TupleIterator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

 private:
  bool AdvanceLeft();

  IteratorPtr left_;
  IteratorPtr right_;
  PredicatePtr pred_;
  JoinMode mode_;
  Scheme out_scheme_;
  Scheme joined_scheme_;
  std::vector<AttrId> left_keys_;
  std::vector<AttrId> right_keys_;
  Relation build_side_;
  // Key-normalized copy of build_side_ the index is built over; kept as a
  // member because HashIndex requires its relation to outlive it. Probe
  // results are row indices valid for build_side_ too (same row order),
  // and output tuples come from build_side_ so key values keep their
  // original representation.
  Relation normalized_build_;
  std::unique_ptr<HashIndex> index_;
  std::vector<int> left_key_positions_;
  // Probe-key scratch reused across left tuples; probes borrow its
  // contents via HashIndex's borrowed-key Probe, so no per-tuple key
  // vector is allocated.
  std::vector<Value> probe_key_;
  std::optional<Tuple> current_left_;
  const std::vector<size_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
  bool left_had_match_ = false;
  bool null_key_ = false;
  const std::vector<size_t> no_matches_;
};

/// Sort-merge join-like operator (all four modes): blocking — both
/// inputs are materialized at Open(), merged by the sort-merge kernels,
/// and the result streamed. Requires an equi-key conjunct.
class SortMergeJoinIterator : public TupleIterator {
 public:
  SortMergeJoinIterator(IteratorPtr left, IteratorPtr right,
                        PredicatePtr pred, JoinMode mode);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "SortMergeJoin"; }
  std::vector<TupleIterator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

 private:
  IteratorPtr left_;
  IteratorPtr right_;
  PredicatePtr pred_;
  JoinMode mode_;
  Scheme out_scheme_;
  Relation result_;
  size_t pos_ = 0;
};

/// GOJ[subset, pred](left, right): blocking; materializes both inputs at
/// Open() and streams the computed result.
class GojIterator : public TupleIterator {
 public:
  GojIterator(IteratorPtr left, IteratorPtr right, PredicatePtr pred,
              AttrSet subset, JoinAlgo algo = JoinAlgo::kAuto);
  const Scheme& scheme() const override;
  const char* physical_name() const override { return "Goj"; }
  std::vector<TupleIterator*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  void OpenImpl() override;
  bool NextImpl(Tuple* out) override;
  void CloseImpl() override;

 private:
  IteratorPtr left_;
  IteratorPtr right_;
  PredicatePtr pred_;
  AttrSet subset_;
  JoinAlgo algo_;
  Scheme out_scheme_;
  Relation result_;
  size_t pos_ = 0;
};

}  // namespace fro

#endif  // FRO_EXEC_OPERATORS_H_
