// Physical operators for the Volcano executor.
//
// Join-like operators come in four modes sharing one matching core:
// inner join, left outer join, antijoin (emit left tuples with no match),
// and semijoin (emit left tuples with a match, once). Two physical
// strategies exist: block nested loop (right input materialized at
// Open) and hash (build on the right input, probe from the left). The
// generalized outerjoin is inherently blocking (it needs the full set of
// matched S-projections) and is implemented as a materializing operator.

#ifndef FRO_EXEC_OPERATORS_H_
#define FRO_EXEC_OPERATORS_H_

#include <optional>
#include <set>
#include <vector>

#include "exec/iterator.h"
#include "relational/index.h"
#include "relational/predicate.h"

namespace fro {

enum class JoinMode : uint8_t {
  kInner,
  kLeftOuter,
  kAnti,
  kSemi,
};

/// Full scan of a materialized relation (which must outlive the scan).
class ScanIterator : public TupleIterator {
 public:
  explicit ScanIterator(const Relation* relation);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const Scheme& scheme() const override;

 private:
  const Relation* relation_;
  size_t pos_ = 0;
};

/// sigma[pred](child).
class FilterIterator : public TupleIterator {
 public:
  FilterIterator(IteratorPtr child, PredicatePtr pred);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const Scheme& scheme() const override;

 private:
  IteratorPtr child_;
  PredicatePtr pred_;
};

/// pi[cols](child), optionally duplicate-eliminating (blocking the
/// duplicate check only; rows stream through).
class ProjectIterator : public TupleIterator {
 public:
  ProjectIterator(IteratorPtr child, std::vector<AttrId> cols, bool dedup);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const Scheme& scheme() const override;

 private:
  IteratorPtr child_;
  std::vector<int> positions_;
  Scheme out_scheme_;
  bool dedup_;
  std::set<std::vector<Value>> seen_;
};

/// Bag union with the padding convention; children stream sequentially.
class UnionIterator : public TupleIterator {
 public:
  UnionIterator(IteratorPtr left, IteratorPtr right);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const Scheme& scheme() const override;

 private:
  Tuple PadFrom(const Tuple& tuple, const Scheme& source) const;

  IteratorPtr left_;
  IteratorPtr right_;
  Scheme out_scheme_;
  bool on_right_ = false;
};

/// Block nested-loop join-like operator: the right input is materialized
/// at Open(); left tuples stream.
class NestedLoopJoinIterator : public TupleIterator {
 public:
  NestedLoopJoinIterator(IteratorPtr left, IteratorPtr right,
                         PredicatePtr pred, JoinMode mode);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const Scheme& scheme() const override;

 private:
  bool AdvanceLeft();

  IteratorPtr left_;
  IteratorPtr right_;
  PredicatePtr pred_;
  JoinMode mode_;
  Scheme out_scheme_;
  std::vector<Tuple> right_rows_;
  std::optional<Tuple> current_left_;
  size_t right_pos_ = 0;
  bool left_had_match_ = false;
};

/// Hash join-like operator: builds a hash table on the right input's
/// equi-key columns at Open(); probes with streaming left tuples. The
/// full predicate is re-checked on candidates. Falls back to nested loop
/// behaviour is NOT provided here — the plan builder selects this
/// operator only when equi-keys exist.
class HashJoinIterator : public TupleIterator {
 public:
  HashJoinIterator(IteratorPtr left, IteratorPtr right, PredicatePtr pred,
                   JoinMode mode, std::vector<AttrId> left_keys,
                   std::vector<AttrId> right_keys);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const Scheme& scheme() const override;

 private:
  bool AdvanceLeft();

  IteratorPtr left_;
  IteratorPtr right_;
  PredicatePtr pred_;
  JoinMode mode_;
  Scheme out_scheme_;
  std::vector<AttrId> left_keys_;
  std::vector<AttrId> right_keys_;
  Relation build_side_;
  std::unique_ptr<HashIndex> index_;
  std::vector<int> left_key_positions_;
  std::optional<Tuple> current_left_;
  const std::vector<size_t>* matches_ = nullptr;
  size_t match_pos_ = 0;
  bool left_had_match_ = false;
  bool null_key_ = false;
  const std::vector<size_t> no_matches_;
};

/// Sort-merge join-like operator (all four modes): blocking — both
/// inputs are materialized at Open(), merged by the sort-merge kernels,
/// and the result streamed. Requires an equi-key conjunct.
class SortMergeJoinIterator : public TupleIterator {
 public:
  SortMergeJoinIterator(IteratorPtr left, IteratorPtr right,
                        PredicatePtr pred, JoinMode mode);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const Scheme& scheme() const override;

 private:
  IteratorPtr left_;
  IteratorPtr right_;
  PredicatePtr pred_;
  JoinMode mode_;
  Scheme out_scheme_;
  Relation result_;
  size_t pos_ = 0;
};

/// GOJ[subset, pred](left, right): blocking; materializes both inputs at
/// Open() and streams the computed result.
class GojIterator : public TupleIterator {
 public:
  GojIterator(IteratorPtr left, IteratorPtr right, PredicatePtr pred,
              AttrSet subset);
  void Open() override;
  bool Next(Tuple* out) override;
  void Close() override;
  const Scheme& scheme() const override;

 private:
  IteratorPtr left_;
  IteratorPtr right_;
  PredicatePtr pred_;
  AttrSet subset_;
  Scheme out_scheme_;
  Relation result_;
  size_t pos_ = 0;
};

}  // namespace fro

#endif  // FRO_EXEC_OPERATORS_H_
