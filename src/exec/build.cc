#include "exec/build.h"

#include "common/check.h"
#include "exec/operators.h"

namespace fro {

namespace {

JoinMode ModeOf(OpKind kind) {
  switch (kind) {
    case OpKind::kJoin:
      return JoinMode::kInner;
    case OpKind::kOuterJoin:
      return JoinMode::kLeftOuter;
    case OpKind::kAntijoin:
      return JoinMode::kAnti;
    case OpKind::kSemijoin:
      return JoinMode::kSemi;
    default:
      FRO_CHECK(false) << "not a join-like operator";
  }
  return JoinMode::kInner;
}

IteratorPtr Build(const ExprPtr& expr, const Database& db, JoinAlgo algo) {
  switch (expr->kind()) {
    case OpKind::kLeaf:
      return std::make_unique<ScanIterator>(&db.relation(expr->rel()));
    case OpKind::kRestrict:
      return std::make_unique<FilterIterator>(
          Build(expr->left(), db, algo), expr->pred());
    case OpKind::kProject:
      return std::make_unique<ProjectIterator>(Build(expr->left(), db, algo),
                                               expr->project_cols(),
                                               expr->project_dedup());
    case OpKind::kUnion:
      return std::make_unique<UnionIterator>(Build(expr->left(), db, algo),
                                             Build(expr->right(), db, algo));
    case OpKind::kGoj:
      return std::make_unique<GojIterator>(Build(expr->left(), db, algo),
                                           Build(expr->right(), db, algo),
                                           expr->pred(), expr->goj_subset());
    default: {
      // Join-like: anchor the preserved/kept operand on the left.
      ExprPtr anchor = expr->left();
      ExprPtr other = expr->right();
      if (!expr->preserves_left() && expr->kind() != OpKind::kJoin) {
        std::swap(anchor, other);
      }
      IteratorPtr left = Build(anchor, db, algo);
      IteratorPtr right = Build(other, db, algo);
      JoinMode mode = ModeOf(expr->kind());
      EquiKeys keys =
          ExtractEquiKeys(expr->pred(), left->scheme(), right->scheme());
      const bool use_hash =
          keys.Usable() &&
          (algo == JoinAlgo::kHash || algo == JoinAlgo::kAuto);
      if (use_hash) {
        return std::make_unique<HashJoinIterator>(
            std::move(left), std::move(right), expr->pred(), mode,
            std::move(keys.left), std::move(keys.right));
      }
      return std::make_unique<NestedLoopJoinIterator>(
          std::move(left), std::move(right), expr->pred(), mode);
    }
  }
}

}  // namespace

IteratorPtr BuildIterator(const ExprPtr& expr, const Database& db,
                          JoinAlgo algo) {
  FRO_CHECK(expr != nullptr);
  return Build(expr, db, algo);
}

Relation ExecutePipelined(const ExprPtr& expr, const Database& db,
                          JoinAlgo algo) {
  IteratorPtr root = BuildIterator(expr, db, algo);
  return Drain(root.get());
}

}  // namespace fro
