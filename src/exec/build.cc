#include "exec/build.h"

#include "common/check.h"
#include "exec/batch_operators.h"
#include "exec/operators.h"
#include "wcoj/leapfrog.h"

namespace fro {

namespace {

JoinMode ModeOf(OpKind kind) {
  switch (kind) {
    case OpKind::kJoin:
      return JoinMode::kInner;
    case OpKind::kOuterJoin:
      return JoinMode::kLeftOuter;
    case OpKind::kAntijoin:
      return JoinMode::kAnti;
    case OpKind::kSemijoin:
      return JoinMode::kSemi;
    default:
      FRO_CHECK(false) << "not a join-like operator";
  }
  return JoinMode::kInner;
}

IteratorPtr Build(const ExprPtr& expr, const Database& db, JoinAlgo algo) {
  IteratorPtr it;
  switch (expr->kind()) {
    case OpKind::kLeaf:
      it = std::make_unique<ScanIterator>(&db.relation(expr->rel()));
      break;
    case OpKind::kRestrict:
      it = std::make_unique<FilterIterator>(Build(expr->left(), db, algo),
                                            expr->pred());
      break;
    case OpKind::kProject:
      it = std::make_unique<ProjectIterator>(Build(expr->left(), db, algo),
                                             expr->project_cols(),
                                             expr->project_dedup());
      break;
    case OpKind::kUnion:
      it = std::make_unique<UnionIterator>(Build(expr->left(), db, algo),
                                           Build(expr->right(), db, algo));
      break;
    case OpKind::kGoj:
      it = std::make_unique<GojIterator>(Build(expr->left(), db, algo),
                                         Build(expr->right(), db, algo),
                                         expr->pred(), expr->goj_subset(),
                                         algo);
      break;
    case OpKind::kMultiwayJoin: {
      std::vector<IteratorPtr> inputs;
      inputs.reserve(expr->mj_children().size());
      for (const ExprPtr& child : expr->mj_children()) {
        inputs.push_back(Build(child, db, algo));
      }
      return MakeLeapfrogIterator(expr, std::move(inputs));
    }
    default: {
      // Join-like: anchor the preserved/kept operand on the left.
      ExprPtr anchor = expr->left();
      ExprPtr other = expr->right();
      if (!expr->preserves_left() && expr->kind() != OpKind::kJoin) {
        std::swap(anchor, other);
      }
      IteratorPtr left = Build(anchor, db, algo);
      IteratorPtr right = Build(other, db, algo);
      JoinMode mode = ModeOf(expr->kind());
      EquiKeys keys =
          ExtractEquiKeys(expr->pred(), left->scheme(), right->scheme());
      const bool use_hash =
          keys.Usable() &&
          (algo == JoinAlgo::kHash || algo == JoinAlgo::kAuto);
      if (use_hash) {
        it = std::make_unique<HashJoinIterator>(
            std::move(left), std::move(right), expr->pred(), mode,
            std::move(keys.left), std::move(keys.right));
      } else {
        it = std::make_unique<NestedLoopJoinIterator>(
            std::move(left), std::move(right), expr->pred(), mode);
      }
      break;
    }
  }
  it->set_source_expr(expr);
  return it;
}

// Mirror of Build() for the batch engine: the same physical decisions
// (operand anchoring, hash vs. nested loop) compiled to batch operators.
BatchIteratorPtr BuildBatch(const ExprPtr& expr, const Database& db,
                            JoinAlgo algo, size_t batch_capacity) {
  BatchIteratorPtr it;
  switch (expr->kind()) {
    case OpKind::kLeaf:
      it = std::make_unique<BatchScanIterator>(&db.relation(expr->rel()),
                                               db.CachedColumns(expr->rel()));
      break;
    case OpKind::kRestrict:
      it = std::make_unique<BatchFilterIterator>(
          BuildBatch(expr->left(), db, algo, batch_capacity), expr->pred());
      break;
    case OpKind::kProject:
      it = std::make_unique<BatchProjectIterator>(
          BuildBatch(expr->left(), db, algo, batch_capacity),
          expr->project_cols(), expr->project_dedup(), batch_capacity);
      break;
    case OpKind::kUnion:
      it = std::make_unique<BatchUnionIterator>(
          BuildBatch(expr->left(), db, algo, batch_capacity),
          BuildBatch(expr->right(), db, algo, batch_capacity),
          batch_capacity);
      break;
    case OpKind::kGoj:
      it = std::make_unique<BatchGojIterator>(
          BuildBatch(expr->left(), db, algo, batch_capacity),
          BuildBatch(expr->right(), db, algo, batch_capacity), expr->pred(),
          expr->goj_subset(), algo);
      break;
    case OpKind::kMultiwayJoin: {
      std::vector<BatchIteratorPtr> inputs;
      inputs.reserve(expr->mj_children().size());
      for (const ExprPtr& child : expr->mj_children()) {
        inputs.push_back(BuildBatch(child, db, algo, batch_capacity));
      }
      return MakeBatchLeapfrogIterator(expr, std::move(inputs),
                                       batch_capacity);
    }
    default: {
      // Join-like: anchor the preserved/kept operand on the left.
      ExprPtr anchor = expr->left();
      ExprPtr other = expr->right();
      if (!expr->preserves_left() && expr->kind() != OpKind::kJoin) {
        std::swap(anchor, other);
      }
      BatchIteratorPtr left = BuildBatch(anchor, db, algo, batch_capacity);
      BatchIteratorPtr right = BuildBatch(other, db, algo, batch_capacity);
      JoinMode mode = ModeOf(expr->kind());
      EquiKeys keys =
          ExtractEquiKeys(expr->pred(), left->scheme(), right->scheme());
      const bool use_hash =
          keys.Usable() &&
          (algo == JoinAlgo::kHash || algo == JoinAlgo::kAuto);
      if (use_hash) {
        it = std::make_unique<BatchHashJoinIterator>(
            std::move(left), std::move(right), expr->pred(), mode,
            std::move(keys.left), std::move(keys.right), batch_capacity);
      } else {
        it = std::make_unique<BatchNestedLoopJoinIterator>(
            std::move(left), std::move(right), expr->pred(), mode,
            batch_capacity);
      }
      break;
    }
  }
  it->set_source_expr(expr);
  return it;
}

}  // namespace

IteratorPtr BuildIterator(const ExprPtr& expr, const Database& db,
                          JoinAlgo algo) {
  FRO_CHECK(expr != nullptr);
  return Build(expr, db, algo);
}

BatchIteratorPtr BuildBatchIterator(const ExprPtr& expr, const Database& db,
                                    JoinAlgo algo, size_t batch_capacity) {
  FRO_CHECK(expr != nullptr);
  return BuildBatch(expr, db, algo, batch_capacity);
}

Relation ExecutePipelined(const ExprPtr& expr, const Database& db,
                          JoinAlgo algo) {
  IteratorPtr root = BuildIterator(expr, db, algo);
  return Drain(root.get());
}

Relation ExecuteBatched(const ExprPtr& expr, const Database& db,
                        JoinAlgo algo, size_t batch_capacity) {
  BatchIteratorPtr root = BuildBatchIterator(expr, db, algo, batch_capacity);
  return DrainBatches(root.get());
}

}  // namespace fro
