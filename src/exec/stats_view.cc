#include "exec/stats_view.h"

#include "exec/batch_operators.h"
#include "exec/morsel.h"

namespace fro {

namespace {

template <typename Iterator>
PlanOpStats SnapshotNode(Iterator* node) {
  PlanOpStats out;
  out.physical_name = node->physical_name();
  out.source_expr = node->source_expr();
  out.stats = node->stats();
  return out;
}

}  // namespace

PlanOpStats SnapshotPlanStats(TupleIterator* root) {
  PlanOpStats out = SnapshotNode(root);
  if (auto* adapter = dynamic_cast<BatchTupleAdapter*>(root)) {
    out.passthrough = true;
    out.children.push_back(SnapshotPlanStats(adapter->batch_child()));
    return out;
  }
  for (TupleIterator* child : root->children()) {
    out.children.push_back(SnapshotPlanStats(child));
  }
  return out;
}

PlanOpStats SnapshotPlanStats(BatchIterator* root) {
  PlanOpStats out = SnapshotNode(root);
  if (auto* adapter = dynamic_cast<TupleBatchAdapter*>(root)) {
    out.passthrough = true;
    out.children.push_back(SnapshotPlanStats(adapter->tuple_child()));
    return out;
  }
  if (auto* exchange = dynamic_cast<BatchExchangeIterator*>(root)) {
    // The exchange forwards merged rows without relational work of its
    // own; its spine, merged node-wise across workers (with the shared
    // build subtrees spliced in), hangs beneath it.
    out.passthrough = true;
    out.children.push_back(exchange->SnapshotMerged());
    return out;
  }
  for (BatchIterator* child : root->children()) {
    out.children.push_back(SnapshotPlanStats(child));
  }
  return out;
}

ExecStats SumPipelineStats(const PlanOpStats& root) {
  ExecStats totals;
  ForEachOp(root, [&](const PlanOpStats& node, int) {
    if (node.is_source() || node.passthrough) return;
    totals += node.stats;
  });
  return totals;
}

uint64_t BaseTuplesRead(const PlanOpStats& root) {
  uint64_t base = 0;
  ForEachOp(root, [&](const PlanOpStats& node, int) {
    auto child_is_leaf = [&](size_t i) {
      return i < node.children.size() &&
             node.children[i].source_expr != nullptr &&
             node.children[i].source_expr->is_leaf();
    };
    if (child_is_leaf(0)) base += node.stats.left_reads;
    if (child_is_leaf(1)) base += node.stats.right_reads;
  });
  return base;
}

}  // namespace fro
