// Engine-agnostic plan statistics: a snapshot of an executed operator
// tree (names, source expressions, counters) detached from the iterators
// that produced it. EXPLAIN ANALYZE rendering and the server's metrics
// rollup consume this view, so they work unchanged over the tuple and the
// batch engine — and over mixed trees bridged by adapters, whose wrapped
// subtrees are spliced in as ordinary children.

#ifndef FRO_EXEC_STATS_VIEW_H_
#define FRO_EXEC_STATS_VIEW_H_

#include <string>
#include <vector>

#include "algebra/expr.h"
#include "exec/batch_iterator.h"
#include "exec/iterator.h"
#include "relational/exec_stats.h"

namespace fro {

/// One operator of an executed plan, with its counters at snapshot time.
struct PlanOpStats {
  std::string physical_name;
  /// The expression node the operator implements; null for hand-assembled
  /// pipelines and for engine-bridging adapters.
  ExprPtr source_expr;
  ExecStats stats;
  /// True for engine-bridging adapters: they forward rows without doing
  /// relational work, so pipeline totals skip them (their wrapped subtree
  /// appears as their only child and is accounted normally).
  bool passthrough = false;
  std::vector<PlanOpStats> children;

  bool is_source() const { return children.empty(); }
};

/// Snapshots an executed tuple pipeline. A BatchTupleAdapter contributes
/// a passthrough node whose child is the wrapped batch subtree.
PlanOpStats SnapshotPlanStats(TupleIterator* root);

/// Snapshots an executed batch pipeline. A TupleBatchAdapter contributes
/// a passthrough node whose child is the wrapped tuple subtree.
PlanOpStats SnapshotPlanStats(BatchIterator* root);

/// Sums the counters of every operator except sources (scans, whose
/// emissions are charged to their consumers as reads) and passthrough
/// adapters — the same accounting as CollectPipelineStats, but engine-
/// agnostic.
ExecStats SumPipelineStats(const PlanOpStats& root);

/// Tuples retrieved from ground relations — Example 1's accounting: each
/// operator's reads from a child that implements a leaf expression.
uint64_t BaseTuplesRead(const PlanOpStats& root);

/// Pre-order visit: fn(const PlanOpStats&, int depth). Passthrough nodes
/// are visited like any other; callers that do not want them can test
/// `node.passthrough`.
template <typename Fn>
void ForEachOp(const PlanOpStats& node, Fn&& fn, int depth = 0) {
  fn(node, depth);
  for (const PlanOpStats& child : node.children) {
    ForEachOp(child, fn, depth + 1);
  }
}

}  // namespace fro

#endif  // FRO_EXEC_STATS_VIEW_H_
