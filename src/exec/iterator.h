// Volcano-style pipelined execution: every physical operator is a tuple
// iterator with Open/Next/Close. This is the executor a downstream system
// would embed; the materializing evaluator in algebra/eval.h remains the
// semantic reference (tests assert the two agree on every operator).

#ifndef FRO_EXEC_ITERATOR_H_
#define FRO_EXEC_ITERATOR_H_

#include <memory>

#include "relational/relation.h"

namespace fro {

/// Pull-based tuple iterator. Lifecycle: Open() -> Next()* -> Close().
/// Open() may be called again after Close() to rescan.
class TupleIterator {
 public:
  virtual ~TupleIterator() = default;

  virtual void Open() = 0;
  /// Produces the next tuple; returns false when exhausted.
  virtual bool Next(Tuple* out) = 0;
  virtual void Close() = 0;

  /// The output scheme; valid before Open().
  virtual const Scheme& scheme() const = 0;

  /// Tuples produced since the last Open().
  uint64_t produced() const { return produced_; }

 protected:
  void CountProduced() { ++produced_; }
  void ResetProduced() { produced_ = 0; }

 private:
  uint64_t produced_ = 0;
};

using IteratorPtr = std::unique_ptr<TupleIterator>;

/// Runs an iterator to exhaustion and materializes the result.
Relation Drain(TupleIterator* iterator);

}  // namespace fro

#endif  // FRO_EXEC_ITERATOR_H_
