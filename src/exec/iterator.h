// Volcano-style pipelined execution: every physical operator is a tuple
// iterator with Open/Next/Close. This is the executor a downstream system
// would embed; the materializing evaluator in algebra/eval.h remains the
// semantic reference (tests assert the two agree on every operator, on
// results and on execution counters alike).
//
// Instrumentation: each iterator owns an ExecStats filled as it runs —
// tuples pulled from each child, tuples emitted, predicate evaluations,
// index probes, and (when enabled) wall-clock time spent in Open/Next.
// The counters follow the kernel accounting of relational/ops.h exactly,
// so summing the non-scan operators of a pipeline reproduces the totals
// the materializing evaluator reports for the same expression. Open()
// resets the counters, keeping rescans self-contained.

#ifndef FRO_EXEC_ITERATOR_H_
#define FRO_EXEC_ITERATOR_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "algebra/expr.h"
#include "common/status.h"
#include "relational/exec_stats.h"
#include "relational/relation.h"

namespace fro {

/// Cooperative interruption of a running pipeline: a cancel flag any
/// thread may raise and an optional wall-clock deadline. Every operator
/// consults the control at the top of Next() (see TupleIterator), so a
/// pipeline stops within one tuple of the request at any depth.
///
/// Threading: RequestCancel() may be called from any thread; arming the
/// deadline belongs to the driving thread, before Open(). ShouldStop()
/// (with its check-stride counter) is single-driver only, but
/// ShouldStopBatch(), stopped(), and status() are safe from concurrent
/// worker threads — the morsel-parallel executor shares one control
/// across all workers, so both stop flags are relaxed atomics. The
/// deadline clock is only read every kDeadlineStride checks in the tuple
/// path, keeping the per-tuple overhead to one relaxed atomic load.
class ExecControl {
 public:
  static constexpr uint64_t kDeadlineStride = 256;

  /// Raises the cancel flag; safe from any thread, idempotent.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms the deadline. Call before Open(), from the driving thread.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    has_deadline_ = true;
    deadline_ = deadline;
  }

  /// True once the pipeline should stop producing. Driving thread only.
  bool ShouldStop() {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (deadline_hit_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_ && ++checks_ % kDeadlineStride == 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      deadline_hit_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Batch-granularity variant of ShouldStop(): always consults the
  /// clock. Called once per TupleBatch, so the amortization the
  /// per-tuple stride provides is already structural. Safe from
  /// concurrent worker threads.
  bool ShouldStopBatch() {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (deadline_hit_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      deadline_hit_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// True if any stop condition fired (without re-checking the clock).
  bool stopped() const {
    return deadline_hit_.load(std::memory_order_relaxed) ||
           cancelled_.load(std::memory_order_relaxed);
  }

  /// Why the pipeline stopped: Cancelled, DeadlineExceeded, or OK.
  Status status() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return fro::Cancelled("query cancelled");
    }
    if (deadline_hit_.load(std::memory_order_relaxed)) {
      return DeadlineExceeded("query deadline exceeded");
    }
    return Status::Ok();
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::atomic<bool> deadline_hit_{false};
  uint64_t checks_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
};

/// Pull-based tuple iterator. Lifecycle: Open() -> Next()* -> Close().
/// Open() may be called again after Close() to rescan. Subclasses
/// implement the *Impl hooks; the public entry points maintain the stats.
class TupleIterator {
 public:
  virtual ~TupleIterator() = default;

  void Open() {
    stats_ = ExecStats();
    if (timing_) {
      const auto start = std::chrono::steady_clock::now();
      OpenImpl();
      stats_.open_ns += ElapsedNs(start);
    } else {
      OpenImpl();
    }
  }

  /// Produces the next tuple; returns false when exhausted — or when the
  /// attached ExecControl asks the pipeline to stop, making exhaustion
  /// indistinguishable from interruption here: callers that attached a
  /// control must check its stopped()/status() after the drain.
  bool Next(Tuple* out) {
    if (control_ != nullptr && control_->ShouldStop()) return false;
    bool produced;
    if (timing_) {
      const auto start = std::chrono::steady_clock::now();
      produced = NextImpl(out);
      stats_.next_ns += ElapsedNs(start);
    } else {
      produced = NextImpl(out);
    }
    if (produced) ++stats_.emitted;
    return produced;
  }

  void Close() { CloseImpl(); }

  /// The output scheme; valid before Open().
  virtual const Scheme& scheme() const = 0;

  /// Physical operator name, e.g. "HashJoin".
  virtual const char* physical_name() const = 0;

  /// Child operators, in (left, right) order; empty for leaves. Pointers
  /// stay valid for this iterator's lifetime.
  virtual std::vector<TupleIterator*> children() const { return {}; }

  /// Counters since the last Open().
  const ExecStats& stats() const { return stats_; }

  /// Tuples produced since the last Open().
  uint64_t produced() const { return stats_.emitted; }

  /// The expression node this operator implements; set by the plan
  /// builder, null for hand-assembled pipelines.
  const ExprPtr& source_expr() const { return source_; }
  void set_source_expr(ExprPtr expr) { source_ = std::move(expr); }

  /// Enables (or disables) wall-clock collection on this operator and its
  /// whole subtree. Off by default: timing costs two clock reads per
  /// Next() call; the counters themselves are always maintained. Virtual
  /// so engine-bridging adapters can forward into a wrapped subtree.
  virtual void EnableTiming(bool on = true) {
    timing_ = on;
    for (TupleIterator* child : children()) child->EnableTiming(on);
  }

  /// Attaches a cooperative interrupt to this operator and its whole
  /// subtree (every depth checks, so deeply buffered operators stop too).
  /// Pass nullptr to detach. The control must outlive the iterator's use.
  virtual void SetControl(ExecControl* control) {
    control_ = control;
    for (TupleIterator* child : children()) child->SetControl(control);
  }

  /// Pre-order visit of the operator tree rooted here.
  template <typename Visitor>
  void Visit(Visitor&& visitor, int depth = 0) {
    visitor(this, depth);
    for (TupleIterator* child : children()) {
      child->Visit(visitor, depth + 1);
    }
  }

 protected:
  virtual void OpenImpl() = 0;
  virtual bool NextImpl(Tuple* out) = 0;
  virtual void CloseImpl() = 0;

  ExecStats& mutable_stats() { return stats_; }

 private:
  static uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }

  ExecStats stats_;
  ExprPtr source_;
  ExecControl* control_ = nullptr;
  bool timing_ = false;
};

using IteratorPtr = std::unique_ptr<TupleIterator>;

/// Runs an iterator to exhaustion and materializes the result.
///
/// Deprecated for pipelines with an attached ExecControl: this drain is
/// blind to interruption — a cancel or deadline looks like ordinary
/// exhaustion and the caller receives a silently truncated relation
/// unless it remembers to consult control->stopped() afterwards. Use
/// DrainChecked, which folds that check into the return value. Drain
/// remains fine for control-free pipelines (tests, benchmarks, internal
/// materialization of blocking operators).
Relation Drain(TupleIterator* iterator);

/// Status-carrying drain: opens, exhausts, and closes `iterator`, then
/// returns the materialized relation — unless `control` (may be null)
/// stopped the pipeline, in which case the truncated result is discarded
/// and the control's Cancelled/DeadlineExceeded status is returned
/// instead. This is the single execution surface lang::RunQuery and the
/// server sessions drain through.
Result<Relation> DrainChecked(TupleIterator* iterator, ExecControl* control);

/// Sums the counters of every operator in the tree except scans, whose
/// emissions are already charged to their consumers as reads — the same
/// accounting the materializing evaluator uses for a whole expression.
ExecStats CollectPipelineStats(TupleIterator* root);

}  // namespace fro

#endif  // FRO_EXEC_ITERATOR_H_
