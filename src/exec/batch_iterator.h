// Batch-at-a-time pipelined execution: every physical operator is a
// batch iterator with Open/NextBatch/Close. Semantically identical to the
// tuple-at-a-time engine in exec/iterator.h — the equivalence suite
// asserts byte-identical results and identical ExecStats counters — but
// interpretation overhead (virtual dispatch, ExecControl checks, clock
// reads under timing) is paid once per TupleBatch instead of once per
// tuple.
//
// The counters follow the kernel accounting of relational/ops.h exactly,
// tuple for tuple: a batch filter that inspects 1024 tuples adds 1024 to
// left_reads and predicate_evals, just as 1024 Next() calls would.

#ifndef FRO_EXEC_BATCH_ITERATOR_H_
#define FRO_EXEC_BATCH_ITERATOR_H_

#include <chrono>
#include <memory>
#include <vector>

#include "algebra/expr.h"
#include "common/status.h"
#include "exec/batch.h"
#include "exec/iterator.h"
#include "relational/exec_stats.h"
#include "relational/relation.h"

namespace fro {

/// Pull-based batch iterator. Lifecycle: Open() -> NextBatch()* ->
/// Close(); Open() after Close() rescans. Subclasses implement the *Impl
/// hooks; the public entry points maintain stats, timing, and the
/// per-batch ExecControl check.
class BatchIterator {
 public:
  virtual ~BatchIterator() = default;

  void Open() {
    stats_ = ExecStats();
    if (timing_) {
      const auto start = std::chrono::steady_clock::now();
      OpenImpl();
      stats_.open_ns += ElapsedNs(start);
    } else {
      OpenImpl();
    }
  }

  /// Clears `out` and refills it. Returns true iff `out` holds at least
  /// one live row; false means exhausted — or that the attached
  /// ExecControl asked the pipeline to stop. Callers that attached a
  /// control should prefer DrainChecked, which surfaces the distinction
  /// as a Status.
  bool NextBatch(TupleBatch* out) {
    if (control_ != nullptr && control_->ShouldStopBatch()) return false;
    out->Clear();
    bool produced;
    if (timing_) {
      const auto start = std::chrono::steady_clock::now();
      produced = NextBatchImpl(out);
      stats_.next_ns += ElapsedNs(start);
    } else {
      produced = NextBatchImpl(out);
    }
    stats_.emitted += out->size();
    return produced;
  }

  void Close() { CloseImpl(); }

  /// The output scheme; valid before Open().
  virtual const Scheme& scheme() const = 0;

  /// Physical operator name. Batch operators reuse the tuple engine's
  /// names ("Scan", "HashJoin", ...) so per-operator metrics rollups are
  /// engine-agnostic; the engine is reported separately.
  virtual const char* physical_name() const = 0;

  /// Child operators, in (left, right) order; empty for leaves.
  virtual std::vector<BatchIterator*> children() const { return {}; }

  /// Counters since the last Open().
  const ExecStats& stats() const { return stats_; }
  uint64_t produced() const { return stats_.emitted; }

  const ExprPtr& source_expr() const { return source_; }
  void set_source_expr(ExprPtr expr) { source_ = std::move(expr); }

  /// Wall-clock collection for this subtree; one clock pair per batch,
  /// not per tuple. Virtual so adapters can forward into a wrapped
  /// tuple subtree.
  virtual void EnableTiming(bool on = true) {
    timing_ = on;
    for (BatchIterator* child : children()) child->EnableTiming(on);
  }

  /// Cooperative interrupt for this subtree, checked once per batch (the
  /// clock is consulted every check — per-batch frequency already
  /// amortizes it). Pass nullptr to detach.
  virtual void SetControl(ExecControl* control) {
    control_ = control;
    for (BatchIterator* child : children()) child->SetControl(control);
  }

  /// Pre-order visit of the operator tree rooted here.
  template <typename Visitor>
  void Visit(Visitor&& visitor, int depth = 0) {
    visitor(this, depth);
    for (BatchIterator* child : children()) {
      child->Visit(visitor, depth + 1);
    }
  }

 protected:
  virtual void OpenImpl() = 0;
  /// Fills `out` (already cleared) with at least one live row and returns
  /// true, or returns false when exhausted. Implementations loop
  /// internally over empty intermediate batches.
  virtual bool NextBatchImpl(TupleBatch* out) = 0;
  virtual void CloseImpl() = 0;

  ExecStats& mutable_stats() { return stats_; }

 private:
  static uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }

  ExecStats stats_;
  ExprPtr source_;
  ExecControl* control_ = nullptr;
  bool timing_ = false;
};

using BatchIteratorPtr = std::unique_ptr<BatchIterator>;

/// Runs a batch iterator to exhaustion and materializes the result.
/// Like the tuple-engine Drain, this is blind to interruption; prefer
/// DrainChecked when an ExecControl is attached.
Relation DrainBatches(BatchIterator* iterator);

/// Status-carrying drain: like DrainBatches, but when `control` (may be
/// null) stopped the pipeline, returns its Cancelled/DeadlineExceeded
/// status instead of a silently truncated relation.
Result<Relation> DrainChecked(BatchIterator* iterator, ExecControl* control);

/// Sums the counters of every operator in the tree except scans — the
/// same accounting as the tuple-engine overload.
ExecStats CollectPipelineStats(BatchIterator* root);

}  // namespace fro

#endif  // FRO_EXEC_BATCH_ITERATOR_H_
